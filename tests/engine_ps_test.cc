// Tests for the distributed substrates: graph-engine sharding/replication,
// parameter-server pull/push semantics, async staleness, and the 3-stage
// pipeline overlap.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <set>
#include <thread>

#include "data/taobao_generator.h"
#include "engine/distributed_graph_engine.h"
#include "ps/embedding_table.h"
#include "ps/parameter_server.h"

namespace zoomer {
namespace {

const data::RetrievalDataset& Dataset() {
  static const data::RetrievalDataset* ds = [] {
    data::TaobaoGeneratorOptions opt;
    opt.num_users = 60;
    opt.num_queries = 40;
    opt.num_items = 100;
    opt.num_sessions = 400;
    opt.num_categories = 5;
    opt.content_dim = 8;
    opt.seed = 31;
    return new data::RetrievalDataset(GenerateTaobaoDataset(opt));
  }();
  return *ds;
}

// --- GraphShard / DistributedGraphEngine ---------------------------------------

TEST(GraphShardTest, PartitionCoversAllNodesDisjointly) {
  const auto& ds = Dataset();
  const int num_shards = 4;
  int64_t total = 0;
  for (int s = 0; s < num_shards; ++s) {
    engine::GraphShard shard(&ds.graph, s, num_shards);
    total += shard.num_owned_nodes();
  }
  EXPECT_EQ(total, ds.graph.num_nodes());
}

TEST(GraphShardTest, PartitionIsBalanced) {
  const auto& ds = Dataset();
  const int num_shards = 4;
  const double expected = ds.graph.num_nodes() / double(num_shards);
  for (int s = 0; s < num_shards; ++s) {
    engine::GraphShard shard(&ds.graph, s, num_shards);
    EXPECT_NEAR(shard.num_owned_nodes(), expected, expected * 0.5)
        << "shard " << s;
  }
}

TEST(GraphShardTest, RejectsForeignAndInvalidNodes) {
  const auto& ds = Dataset();
  engine::GraphShard shard(&ds.graph, 0, 4);
  // Find a node owned by another shard.
  graph::NodeId foreign = -1;
  for (graph::NodeId v = 0; v < ds.graph.num_nodes(); ++v) {
    if (!shard.Owns(v)) {
      foreign = v;
      break;
    }
  }
  ASSERT_NE(foreign, -1);
  engine::SampleRequest req;
  req.node = foreign;
  EXPECT_FALSE(shard.Sample(req).ok());
  req.node = ds.graph.num_nodes() + 5;
  EXPECT_FALSE(shard.Sample(req).ok());
}

TEST(GraphShardTest, SampleReturnsRealNeighbors) {
  const auto& ds = Dataset();
  const int num_shards = 2;
  // Find a node with degree > 0 and sample from its owning shard.
  for (graph::NodeId v = 0; v < ds.graph.num_nodes(); ++v) {
    if (ds.graph.degree(v) == 0) continue;
    const int s = engine::GraphShard::NodeShard(v, num_shards);
    engine::GraphShard shard(&ds.graph, s, num_shards);
    engine::SampleRequest req;
    req.node = v;
    req.k = 5;
    req.rng_seed = 9;
    auto resp = shard.Sample(req);
    ASSERT_TRUE(resp.ok());
    ASSERT_FALSE(resp.value().neighbors.empty());
    auto ids = ds.graph.neighbor_ids(v);
    for (auto nb : resp.value().neighbors) {
      EXPECT_NE(std::find(ids.begin(), ids.end(), nb), ids.end());
    }
    // Distinct neighbors.
    std::set<graph::NodeId> uniq(resp.value().neighbors.begin(),
                                 resp.value().neighbors.end());
    EXPECT_EQ(uniq.size(), resp.value().neighbors.size());
    break;
  }
}

TEST(DistributedGraphEngineTest, RoutesAndServesConcurrently) {
  const auto& ds = Dataset();
  engine::EngineOptions opt;
  opt.num_shards = 4;
  opt.replication_factor = 2;
  engine::DistributedGraphEngine eng(&ds.graph, opt);
  EXPECT_EQ(eng.num_replicas(), 8);
  std::vector<std::future<StatusOr<engine::SampleResponse>>> futures;
  for (graph::NodeId v = 0; v < 100; ++v) {
    engine::SampleRequest req;
    req.node = v;
    req.k = 3;
    req.rng_seed = static_cast<uint64_t>(v);
    futures.push_back(eng.SampleAsync(req));
  }
  int ok_count = 0;
  for (auto& f : futures) {
    auto resp = f.get();
    if (resp.ok()) ++ok_count;
  }
  EXPECT_EQ(ok_count, 100);
  auto stats = eng.Stats();
  EXPECT_EQ(stats.total_requests, 100);
  EXPECT_EQ(stats.requests_per_replica.size(), 8u);
}

TEST(DistributedGraphEngineTest, ReplicationSpreadsLoad) {
  const auto& ds = Dataset();
  engine::EngineOptions opt;
  opt.num_shards = 1;  // all requests to one shard
  opt.replication_factor = 3;
  opt.simulated_rpc_micros = 100;  // keep replicas busy so routing spreads
  engine::DistributedGraphEngine eng(&ds.graph, opt);
  std::vector<std::future<StatusOr<engine::SampleResponse>>> futures;
  for (int i = 0; i < 90; ++i) {
    engine::SampleRequest req;
    req.node = i % ds.graph.num_nodes();
    req.k = 2;
    futures.push_back(eng.SampleAsync(req));
  }
  for (auto& f : futures) f.get();
  auto stats = eng.Stats();
  // Every replica should have served a meaningful share.
  for (int64_t r : stats.requests_per_replica) {
    EXPECT_GT(r, 10) << "replica starved";
  }
}

// --- EmbeddingTable / ParameterServer -------------------------------------------

TEST(EmbeddingTableTest, PullInitializesDeterministically) {
  ps::EmbeddingTableOptions opt;
  opt.dim = 4;
  ps::EmbeddingTable a(opt), b(opt);
  std::vector<float> va, vb;
  a.Pull({5, 9}, &va);
  b.Pull({5, 9}, &vb);
  EXPECT_EQ(va, vb);  // same seed, same init
  EXPECT_EQ(va.size(), 8u);
  EXPECT_EQ(a.num_keys(), 2);
}

TEST(EmbeddingTableTest, PushAppliesAdagradUpdate) {
  ps::EmbeddingTableOptions opt;
  opt.dim = 2;
  opt.learning_rate = 1.0f;
  ps::EmbeddingTable t(opt);
  std::vector<float> before, after;
  t.Pull({1}, &before);
  // grad g: update = lr * g / (sqrt(g^2)+eps) = sign(g)
  ASSERT_TRUE(t.Push({1}, {2.0f, -2.0f}).ok());
  t.Pull({1}, &after);
  EXPECT_NEAR(after[0], before[0] - 1.0f, 1e-4f);
  EXPECT_NEAR(after[1], before[1] + 1.0f, 1e-4f);
}

TEST(EmbeddingTableTest, PushToUnknownKeyIsDropped) {
  ps::EmbeddingTableOptions opt;
  opt.dim = 2;
  ps::EmbeddingTable t(opt);
  EXPECT_TRUE(t.Push({42}, {1.0f, 1.0f}).ok());
  EXPECT_EQ(t.num_keys(), 0);  // stale push without prior pull is dropped
}

TEST(EmbeddingTableTest, RejectsSizeMismatch) {
  ps::EmbeddingTableOptions opt;
  opt.dim = 3;
  ps::EmbeddingTable t(opt);
  EXPECT_FALSE(t.Push({1}, {1.0f}).ok());
}

TEST(EmbeddingTableTest, ConcurrentPullPushSafe) {
  ps::EmbeddingTableOptions opt;
  opt.dim = 4;
  ps::EmbeddingTable t(opt);
  std::vector<std::thread> threads;
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&t, w] {
      std::vector<float> buf;
      for (int i = 0; i < 500; ++i) {
        std::vector<ps::Key> keys = {i % 37, (i + w) % 37};
        t.Pull(keys, &buf);
        std::vector<float> grads(8, 0.01f);
        t.Push(keys, grads);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_LE(t.num_keys(), 40);
}

TEST(ParameterServerTest, PullPreservesRequestOrderAcrossShards) {
  ps::ParameterServerOptions opt;
  opt.num_shards = 4;
  opt.table.dim = 3;
  ps::ParameterServer server(opt);
  std::vector<ps::Key> keys = {10, 3, 77, 3, 21};
  std::vector<float> out;
  server.Pull(keys, &out);
  ASSERT_EQ(out.size(), keys.size() * 3);
  // Duplicate key 3 must return identical rows.
  for (int d = 0; d < 3; ++d) {
    EXPECT_EQ(out[1 * 3 + d], out[3 * 3 + d]);
  }
}

TEST(ParameterServerTest, AsyncPushEventuallyApplies) {
  ps::ParameterServerOptions opt;
  opt.num_shards = 2;
  opt.table.dim = 2;
  opt.table.learning_rate = 1.0f;
  ps::ParameterServer server(opt);
  std::vector<float> before, after;
  server.Pull({7}, &before);
  server.PushAsync({7}, {1.0f, 1.0f});
  server.Flush();
  EXPECT_EQ(server.pushes_applied(), server.pushes_enqueued());
  server.Pull({7}, &after);
  EXPECT_LT(after[0], before[0]);  // update landed
}

TEST(ParameterServerTest, ManyAsyncPushesFromWorkers) {
  ps::ParameterServerOptions opt;
  opt.num_shards = 4;
  opt.table.dim = 4;
  ps::ParameterServer server(opt);
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&server, w] {
      std::vector<float> buf;
      for (int i = 0; i < 200; ++i) {
        std::vector<ps::Key> keys = {(w * 200 + i) % 91};
        server.Pull(keys, &buf);
        server.PushAsync(keys, std::vector<float>(4, 0.1f));
      }
    });
  }
  for (auto& t : workers) t.join();
  server.Flush();
  EXPECT_EQ(server.pushes_applied(), server.pushes_enqueued());
  EXPECT_LE(server.num_keys(), 91);
}

TEST(AsyncPipelineTest, OverlapBeatsSequentialForBalancedStages) {
  // Three 200us stages, 30 items: sequential ~18ms, pipelined ~6ms + eps.
  auto stage = [](int64_t) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  };
  ps::AsyncPipeline pipeline(stage, stage, stage);
  const double seq = pipeline.Run(30, /*overlap=*/false);
  const double par = pipeline.Run(30, /*overlap=*/true);
  EXPECT_LT(par, seq * 0.7) << "pipeline overlap provided no speedup";
}

TEST(AsyncPipelineTest, ProcessesEveryItemExactlyOnceInOrder) {
  std::vector<int64_t> seen;
  std::mutex mu;
  ps::AsyncPipeline pipeline([](int64_t) {}, [](int64_t) {},
                             [&](int64_t i) {
                               std::lock_guard<std::mutex> lock(mu);
                               seen.push_back(i);
                             });
  pipeline.Run(50, /*overlap=*/true);
  ASSERT_EQ(seen.size(), 50u);
  for (int64_t i = 0; i < 50; ++i) EXPECT_EQ(seen[i], i);  // FIFO stages
}

}  // namespace
}  // namespace zoomer
