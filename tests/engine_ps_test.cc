// Tests for the distributed substrates: graph-engine sharding/replication,
// parameter-server pull/push semantics, async staleness, and the 3-stage
// pipeline overlap.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "data/taobao_generator.h"
#include "engine/distributed_graph_engine.h"
#include "obs/metrics.h"
#include "ps/embedding_table.h"
#include "ps/parameter_server.h"
#include "streaming/dynamic_hetero_graph.h"
#include "streaming/graph_delta_log.h"
#include "streaming/ingest_pipeline.h"

namespace zoomer {
namespace {

const data::RetrievalDataset& Dataset() {
  static const data::RetrievalDataset* ds = [] {
    data::TaobaoGeneratorOptions opt;
    opt.num_users = 60;
    opt.num_queries = 40;
    opt.num_items = 100;
    opt.num_sessions = 400;
    opt.num_categories = 5;
    opt.content_dim = 8;
    opt.seed = 31;
    return new data::RetrievalDataset(GenerateTaobaoDataset(opt));
  }();
  return *ds;
}

// --- GraphShard / DistributedGraphEngine ---------------------------------------

TEST(GraphShardTest, PartitionCoversAllNodesDisjointly) {
  const auto& ds = Dataset();
  const int num_shards = 4;
  int64_t total = 0;
  for (int s = 0; s < num_shards; ++s) {
    engine::GraphShard shard(&ds.graph, s, num_shards);
    total += shard.num_owned_nodes();
  }
  EXPECT_EQ(total, ds.graph.num_nodes());
}

TEST(GraphShardTest, PartitionIsBalanced) {
  const auto& ds = Dataset();
  const int num_shards = 4;
  const double expected = ds.graph.num_nodes() / double(num_shards);
  for (int s = 0; s < num_shards; ++s) {
    engine::GraphShard shard(&ds.graph, s, num_shards);
    EXPECT_NEAR(shard.num_owned_nodes(), expected, expected * 0.5)
        << "shard " << s;
  }
}

TEST(GraphShardTest, RejectsForeignAndInvalidNodes) {
  const auto& ds = Dataset();
  engine::GraphShard shard(&ds.graph, 0, 4);
  // Find a node owned by another shard.
  graph::NodeId foreign = -1;
  for (graph::NodeId v = 0; v < ds.graph.num_nodes(); ++v) {
    if (!shard.Owns(v)) {
      foreign = v;
      break;
    }
  }
  ASSERT_NE(foreign, -1);
  engine::SampleRequest req;
  req.node = foreign;
  EXPECT_FALSE(shard.Sample(req).ok());
  req.node = ds.graph.num_nodes() + 5;
  EXPECT_FALSE(shard.Sample(req).ok());
}

TEST(GraphShardTest, SampleReturnsRealNeighbors) {
  const auto& ds = Dataset();
  const int num_shards = 2;
  // Find a node with degree > 0 and sample from its owning shard.
  for (graph::NodeId v = 0; v < ds.graph.num_nodes(); ++v) {
    if (ds.graph.degree(v) == 0) continue;
    const int s = engine::GraphShard::NodeShard(v, num_shards);
    engine::GraphShard shard(&ds.graph, s, num_shards);
    engine::SampleRequest req;
    req.node = v;
    req.k = 5;
    req.rng_seed = 9;
    auto resp = shard.Sample(req);
    ASSERT_TRUE(resp.ok());
    ASSERT_FALSE(resp.value().neighbors.empty());
    auto ids = ds.graph.neighbor_ids(v);
    for (auto nb : resp.value().neighbors) {
      EXPECT_NE(std::find(ids.begin(), ids.end(), nb), ids.end());
    }
    // Distinct neighbors.
    std::set<graph::NodeId> uniq(resp.value().neighbors.begin(),
                                 resp.value().neighbors.end());
    EXPECT_EQ(uniq.size(), resp.value().neighbors.size());
    break;
  }
}

TEST(DistributedGraphEngineTest, RoutesAndServesConcurrently) {
  const auto& ds = Dataset();
  engine::EngineOptions opt;
  opt.num_shards = 4;
  opt.replication_factor = 2;
  engine::DistributedGraphEngine eng(&ds.graph, opt);
  EXPECT_EQ(eng.num_replicas(), 8);
  std::vector<std::future<StatusOr<engine::SampleResponse>>> futures;
  for (graph::NodeId v = 0; v < 100; ++v) {
    engine::SampleRequest req;
    req.node = v;
    req.k = 3;
    req.rng_seed = static_cast<uint64_t>(v);
    futures.push_back(eng.SampleAsync(req));
  }
  int ok_count = 0;
  for (auto& f : futures) {
    auto resp = f.get();
    if (resp.ok()) ++ok_count;
  }
  EXPECT_EQ(ok_count, 100);
  auto stats = eng.Stats();
  EXPECT_EQ(stats.total_requests, 100);
  EXPECT_EQ(stats.requests_per_replica.size(), 8u);
}

TEST(DistributedGraphEngineTest, SampleManyMatchesSingleRequests) {
  // Batched dispatch groups requests per shard (one snapshot pin + one
  // worker hop per group) but must return exactly what per-request calls
  // return under the same per-request seeds, and a bad node must fail only
  // its own slot.
  const auto& ds = Dataset();
  engine::EngineOptions opt;
  opt.num_shards = 4;
  opt.replication_factor = 2;
  engine::DistributedGraphEngine eng(&ds.graph, opt);
  std::vector<engine::SampleRequest> reqs;
  for (graph::NodeId v = 0; v < 60; ++v) {
    engine::SampleRequest req;
    req.node = v;
    req.k = 3;
    req.rng_seed = 1000 + static_cast<uint64_t>(v);
    reqs.push_back(req);
  }
  engine::SampleRequest bad;
  bad.node = ds.graph.num_nodes() + 5;
  bad.k = 3;
  reqs.push_back(bad);
  auto batched = eng.SampleMany({reqs.data(), reqs.size()});
  ASSERT_EQ(batched.size(), reqs.size());
  EXPECT_FALSE(batched.back().ok());
  for (size_t i = 0; i + 1 < reqs.size(); ++i) {
    ASSERT_TRUE(batched[i].ok()) << batched[i].status().ToString();
    auto single = eng.SampleAsync(reqs[i]).get();
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(batched[i].value().neighbors, single.value().neighbors)
        << "node " << reqs[i].node;
  }
  EXPECT_GT(eng.Stats().total_requests, 60);
}

TEST(DistributedGraphEngineTest, ReplicationSpreadsLoad) {
  const auto& ds = Dataset();
  engine::EngineOptions opt;
  opt.num_shards = 1;  // all requests to one shard
  opt.replication_factor = 3;
  opt.simulated_rpc_micros = 100;  // keep replicas busy so routing spreads
  engine::DistributedGraphEngine eng(&ds.graph, opt);
  std::vector<std::future<StatusOr<engine::SampleResponse>>> futures;
  for (int i = 0; i < 90; ++i) {
    engine::SampleRequest req;
    req.node = i % ds.graph.num_nodes();
    req.k = 2;
    futures.push_back(eng.SampleAsync(req));
  }
  for (auto& f : futures) f.get();
  auto stats = eng.Stats();
  // Every replica should have served a meaningful share.
  for (int64_t r : stats.requests_per_replica) {
    EXPECT_GT(r, 10) << "replica starved";
  }
}

TEST(GraphShardTest, KnuthHashBalancesSyntheticIdRanges) {
  // The Knuth multiplicative hash must spread both dense id ranges (offline
  // builds number nodes 0..n) and strided ones (a type-partitioned or
  // sparsely minted id-space) evenly — a plain modulo would alias the
  // strided case onto a subset of shards.
  for (int num_shards : {4, 8}) {
    for (int64_t stride : {int64_t{1}, int64_t{16}}) {
      const int64_t n = 40000;
      std::vector<int64_t> counts(num_shards, 0);
      for (int64_t i = 0; i < n; ++i) {
        const graph::NodeId id = 7 + i * stride;
        ++counts[engine::GraphShard::NodeShard(id, num_shards)];
      }
      const double expected = static_cast<double>(n) / num_shards;
      for (int s = 0; s < num_shards; ++s) {
        EXPECT_NEAR(counts[s], expected, expected * 0.1)
            << "shards=" << num_shards << " stride=" << stride
            << " shard=" << s;
      }
    }
  }
}

// --- Replica groups: fanout, freshness routing, failure recovery ----------

constexpr int kStreamDim = 8;

/// user 0, query 1, items 2..(2+num_items): base click edges 0-1 and from
/// the query to the first `base_items` items; the rest start isolated, so a
/// streamed edge is their entire neighborhood (deterministic visibility
/// checks: a replica that misses the write returns an empty sample).
graph::HeteroGraph MakeStreamGraph(int num_items, int base_items) {
  graph::HeteroGraphBuilder b(kStreamDim);
  const std::vector<float> content(kStreamDim, 0.3f);
  b.AddNode(graph::NodeType::kUser, content, {0});
  b.AddNode(graph::NodeType::kQuery, content, {1});
  for (int i = 0; i < num_items; ++i) {
    b.AddNode(graph::NodeType::kItem, content, {2});
  }
  EXPECT_TRUE(b.AddEdge(0, 1, graph::RelationKind::kClick, 1.0f).ok());
  for (int i = 0; i < base_items; ++i) {
    EXPECT_TRUE(b.AddEdge(1, 2 + static_cast<graph::NodeId>(i),
                          graph::RelationKind::kClick, 1.0f)
                    .ok());
  }
  return b.Build();
}

TEST(ReplicaGroupTest, FanoutCatchesEveryReplicaUp) {
  graph::HeteroGraph g = MakeStreamGraph(12, 4);
  const int kShards = 2;
  streaming::GraphDeltaLog log(kShards);
  streaming::DynamicHeteroGraph primary(&g);
  engine::EngineOptions opt;
  opt.num_shards = kShards;
  opt.replication_factor = 2;
  engine::DistributedGraphEngine eng(&g, opt);
  eng.ConnectUpdateFanout(&log, &primary);

  streaming::IngestOptions iopt;
  iopt.num_shards = kShards;
  iopt.batch_size = 4;
  streaming::IngestPipeline pipe(&log, &primary, iopt, &eng);
  pipe.Start();
  for (int i = 0; i < 20; ++i) {
    graph::SessionRecord session;
    session.user = 0;
    session.query = 1;
    session.clicks = {6 + (i % 8), 6 + ((i + 1) % 8)};
    ASSERT_TRUE(pipe.Offer(session));
  }
  pipe.Flush();

  for (int s = 0; s < kShards; ++s) {
    for (int r = 0; r < opt.replication_factor; ++r) {
      EXPECT_TRUE(eng.AwaitReplicaCatchUp(s, r, 5'000'000))
          << "shard" << s << ".r" << r << " never caught up";
    }
  }
  auto stats = eng.Stats();
  EXPECT_GT(stats.primary_watermark, 0u);
  ASSERT_EQ(stats.replicas.size(), 4u);
  for (const auto& rs : stats.replicas) {
    EXPECT_TRUE(rs.alive);
    EXPECT_EQ(rs.watermark, stats.primary_watermark)
        << "shard" << rs.shard << ".r" << rs.replica;
  }
  // Replica-local views serve the streamed edges: item 6 started isolated,
  // so its only neighbors are from fanned-out batches.
  engine::SampleRequest req;
  req.node = 6;
  req.k = 10;
  req.rng_seed = 11;
  auto resp = eng.Sample(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_FALSE(resp.value().neighbors.empty());
  pipe.Stop();
}

TEST(ReplicaGroupTest, KillReviveReplaysLogAndDrainsLag) {
  graph::HeteroGraph g = MakeStreamGraph(16, 4);
  obs::MetricsRegistry reg;
  streaming::GraphDeltaLog log(1);
  streaming::DynamicHeteroGraph primary(&g);
  engine::EngineOptions opt;
  opt.num_shards = 1;
  opt.replication_factor = 2;
  opt.registry = &reg;
  engine::DistributedGraphEngine eng(&g, opt);
  eng.ConnectUpdateFanout(&log, &primary);

  streaming::IngestOptions iopt;
  iopt.num_shards = 1;
  iopt.batch_size = 2;
  iopt.registry = &reg;
  streaming::IngestPipeline pipe(&log, &primary, iopt, &eng);
  pipe.Start();
  auto offer = [&](int i) {
    graph::SessionRecord session;
    session.user = 0;
    session.query = 1;
    session.clicks = {6 + (i % 12)};
    ASSERT_TRUE(pipe.Offer(session));
  };
  // Phase 1: both replicas catch up.
  for (int i = 0; i < 10; ++i) offer(i);
  pipe.Flush();
  ASSERT_TRUE(eng.AwaitReplicaCatchUp(0, 0, 5'000'000));
  ASSERT_TRUE(eng.AwaitReplicaCatchUp(0, 1, 5'000'000));
  const uint64_t phase1_wm = eng.ReplicaWatermark(0, 1);

  // Kill r1 mid-stream; phase 2 lands only on the survivor + primary.
  eng.KillReplica(0, 1);
  EXPECT_FALSE(eng.IsReplicaAlive(0, 1));
  EXPECT_EQ(eng.Stats().dead_replicas, 1);
  const int64_t dead_requests_at_kill = eng.Stats().requests_per_replica[1];
  for (int i = 10; i < 30; ++i) offer(i);
  pipe.Flush();
  ASSERT_TRUE(eng.AwaitReplicaCatchUp(0, 0, 5'000'000));
  auto stats = eng.Stats();
  EXPECT_EQ(stats.replicas[1].watermark, phase1_wm);  // applier parked
  EXPECT_LT(stats.replicas[1].watermark, stats.primary_watermark);

  // Serving stays up, degraded: every request routes to the survivor, none
  // to the dead replica after detection.
  for (int i = 0; i < 50; ++i) {
    engine::SampleRequest req;
    req.node = 1;
    req.k = 4;
    req.rng_seed = static_cast<uint64_t>(i);
    EXPECT_TRUE(eng.Sample(req).ok());
  }
  stats = eng.Stats();
  EXPECT_EQ(stats.requests_per_replica[1], dead_requests_at_kill);
  EXPECT_EQ(stats.killed_inflight_failures, 0);  // none were in flight

  // The dead replica's lag gauge keeps growing (appliers refresh it even
  // while parked) and the dead-replica gauge reads 1. Gauge refresh rides
  // the applier's 500µs wakeup, so poll.
  auto gauge = [&](const char* name) -> double {
    auto snap = reg.Snapshot();
    const obs::MetricPoint* p = snap.Find(name);
    return p == nullptr ? -1.0 : p->value;
  };
  bool lag_visible = false;
  for (int i = 0; i < 200 && !lag_visible; ++i) {
    lag_visible = gauge("engine.replica_watermark_lag.shard0.r1") > 0 &&
                  gauge("engine.dead_replicas") == 1.0;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(lag_visible);

  // Revive: the applier replays the delta log from its frozen cursor (the
  // registered consumer pinned the tail) until watermark lag returns to 0.
  eng.ReviveReplica(0, 1);
  EXPECT_TRUE(eng.AwaitReplicaCatchUp(0, 1, 5'000'000));
  EXPECT_EQ(eng.ReplicaWatermark(0, 1), eng.Stats().primary_watermark);
  bool lag_drained = false;
  for (int i = 0; i < 200 && !lag_drained; ++i) {
    lag_drained = gauge("engine.replica_watermark_lag.shard0.r1") == 0.0 &&
                  gauge("engine.replica_watermark_lag") == 0.0 &&
                  gauge("engine.dead_replicas") == 0.0;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(lag_drained);

  // The revived replica really rebuilt state: kill the survivor so every
  // read lands on r1, and check a phase-2-only streamed edge is servable
  // (node 16 was first touched after the kill — i=10 maps to 6+10 — so its
  // neighborhood exists on r1 only via log replay).
  eng.KillReplica(0, 0);
  engine::SampleRequest req;
  req.node = 16;
  req.k = 10;
  req.rng_seed = 3;
  auto resp = eng.Sample(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_FALSE(resp.value().neighbors.empty());
  pipe.Stop();
}

TEST(ReplicaGroupTest, WholeGroupDeadFailsFastAndRecovers) {
  graph::HeteroGraph g = MakeStreamGraph(8, 4);
  streaming::GraphDeltaLog log(1);
  streaming::DynamicHeteroGraph primary(&g);
  engine::EngineOptions opt;
  opt.num_shards = 1;
  opt.replication_factor = 2;
  engine::DistributedGraphEngine eng(&g, opt);
  eng.ConnectUpdateFanout(&log, &primary);
  eng.KillReplica(0, 0);
  eng.KillReplica(0, 1);
  engine::SampleRequest req;
  req.node = 1;
  req.k = 2;
  auto resp = eng.Sample(req);
  EXPECT_FALSE(resp.ok());
  eng.ReviveReplica(0, 0);
  EXPECT_TRUE(eng.Sample(req).ok());
}

TEST(ReplicaGroupTest, ReadYourWritesNeverMissesSessionEdge) {
  // Regression for the read-your-writes guarantee: write an edge, then
  // immediately sample with min_epoch = the write's epoch. Replicas apply
  // asynchronously and may lag, but the router must only use a replica
  // whose watermark covers the write — or fall back to the primary — so
  // the edge is visible on EVERY iteration, not just eventually.
  graph::HeteroGraph g = MakeStreamGraph(120, 4);
  const int kShards = 2;
  streaming::GraphDeltaLog log(kShards);
  streaming::DynamicHeteroGraph primary(&g);
  engine::EngineOptions opt;
  opt.num_shards = kShards;
  opt.replication_factor = 2;
  opt.freshness_wait_micros = 300;  // exercise the primary-fallback path too
  engine::DistributedGraphEngine eng(&g, opt);
  eng.ConnectUpdateFanout(&log, &primary);

  streaming::IngestOptions iopt;
  iopt.num_shards = kShards;
  iopt.batch_size = 8;
  streaming::IngestPipeline pipe(&log, &primary, iopt, &eng);
  std::atomic<uint64_t> last_write_epoch{0};
  pipe.AddUpdateListener(
      [&](uint64_t epoch, const std::vector<graph::NodeId>&) {
        uint64_t prev = last_write_epoch.load(std::memory_order_relaxed);
        while (epoch > prev &&
               !last_write_epoch.compare_exchange_weak(prev, epoch)) {
        }
      });
  pipe.Start();

  for (int i = 0; i < 100; ++i) {
    // Item 6+i starts isolated: the session edge below is its entire
    // neighborhood, so a stale read returns an empty sample.
    const graph::NodeId item = 6 + i;
    graph::SessionRecord session;
    session.user = 0;
    session.query = 1;
    session.clicks = {item};
    ASSERT_TRUE(pipe.Offer(session));
    pipe.Flush();  // applied to the primary; replicas lag asynchronously
    engine::SampleRequest req;
    req.node = item;
    req.k = 4;
    req.rng_seed = static_cast<uint64_t>(i);
    req.min_epoch = last_write_epoch.load(std::memory_order_acquire);
    auto resp = eng.Sample(req);
    ASSERT_TRUE(resp.ok()) << "iteration " << i;
    EXPECT_FALSE(resp.value().neighbors.empty())
        << "read-your-writes miss at iteration " << i;
  }
  pipe.Stop();
}

TEST(ReplicaGroupTest, KillReplicaRacesIngestAndSampling) {
  // Stress for TSan: kills and revivals race live ingest, replica appliers,
  // and sampling traffic. Correctness bar: no data race, every future
  // resolves (ok or Unavailable), and after the dust settles every revived
  // replica converges to the primary watermark.
  graph::HeteroGraph g = MakeStreamGraph(32, 8);
  streaming::GraphDeltaLog log(2);
  streaming::DynamicHeteroGraph primary(&g);
  engine::EngineOptions opt;
  opt.num_shards = 2;
  opt.replication_factor = 2;
  engine::DistributedGraphEngine eng(&g, opt);
  eng.ConnectUpdateFanout(&log, &primary);
  streaming::IngestOptions iopt;
  iopt.num_shards = 2;
  iopt.batch_size = 4;
  streaming::IngestPipeline pipe(&log, &primary, iopt, &eng);
  pipe.Start();

  std::atomic<bool> stop{false};
  std::thread ingester([&] {
    int i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      graph::SessionRecord session;
      session.user = 0;
      session.query = 1;
      session.clicks = {6 + (i % 24), 6 + ((i * 7) % 24)};
      pipe.Offer(session);
      ++i;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  std::thread chaos([&] {
    int round = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const int s = round % 2;
      const int r = (round / 2) % 2;
      eng.KillReplica(s, r);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      eng.ReviveReplica(s, r);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ++round;
    }
  });
  std::vector<std::thread> samplers;
  std::atomic<int64_t> served{0};
  for (int t = 0; t < 2; ++t) {
    samplers.emplace_back([&, t] {
      int i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        engine::SampleRequest req;
        req.node = (t == 0 ? 1 : 6 + (i % 24));
        req.k = 4;
        req.rng_seed = static_cast<uint64_t>(i);
        auto resp = eng.Sample(req);  // ok or Unavailable, never hangs
        if (resp.ok()) served.fetch_add(1, std::memory_order_relaxed);
        ++i;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true, std::memory_order_release);
  ingester.join();
  chaos.join();
  for (auto& t : samplers) t.join();
  pipe.Flush();
  for (int s = 0; s < 2; ++s) {
    for (int r = 0; r < 2; ++r) {
      eng.ReviveReplica(s, r);
      EXPECT_TRUE(eng.AwaitReplicaCatchUp(s, r, 10'000'000))
          << "shard" << s << ".r" << r;
    }
  }
  EXPECT_GT(served.load(), 0);
  pipe.Stop();
}

// --- EmbeddingTable / ParameterServer -------------------------------------------

TEST(EmbeddingTableTest, PullInitializesDeterministically) {
  ps::EmbeddingTableOptions opt;
  opt.dim = 4;
  ps::EmbeddingTable a(opt), b(opt);
  std::vector<float> va, vb;
  a.Pull({5, 9}, &va);
  b.Pull({5, 9}, &vb);
  EXPECT_EQ(va, vb);  // same seed, same init
  EXPECT_EQ(va.size(), 8u);
  EXPECT_EQ(a.num_keys(), 2);
}

TEST(EmbeddingTableTest, PushAppliesAdagradUpdate) {
  ps::EmbeddingTableOptions opt;
  opt.dim = 2;
  opt.learning_rate = 1.0f;
  ps::EmbeddingTable t(opt);
  std::vector<float> before, after;
  t.Pull({1}, &before);
  // grad g: update = lr * g / (sqrt(g^2)+eps) = sign(g)
  ASSERT_TRUE(t.Push({1}, {2.0f, -2.0f}).ok());
  t.Pull({1}, &after);
  EXPECT_NEAR(after[0], before[0] - 1.0f, 1e-4f);
  EXPECT_NEAR(after[1], before[1] + 1.0f, 1e-4f);
}

TEST(EmbeddingTableTest, PushToUnknownKeyIsDropped) {
  ps::EmbeddingTableOptions opt;
  opt.dim = 2;
  ps::EmbeddingTable t(opt);
  EXPECT_TRUE(t.Push({42}, {1.0f, 1.0f}).ok());
  EXPECT_EQ(t.num_keys(), 0);  // stale push without prior pull is dropped
}

TEST(EmbeddingTableTest, RejectsSizeMismatch) {
  ps::EmbeddingTableOptions opt;
  opt.dim = 3;
  ps::EmbeddingTable t(opt);
  EXPECT_FALSE(t.Push({1}, {1.0f}).ok());
}

TEST(EmbeddingTableTest, ConcurrentPullPushSafe) {
  ps::EmbeddingTableOptions opt;
  opt.dim = 4;
  ps::EmbeddingTable t(opt);
  std::vector<std::thread> threads;
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&t, w] {
      std::vector<float> buf;
      for (int i = 0; i < 500; ++i) {
        std::vector<ps::Key> keys = {i % 37, (i + w) % 37};
        t.Pull(keys, &buf);
        std::vector<float> grads(8, 0.01f);
        t.Push(keys, grads);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_LE(t.num_keys(), 40);
}

TEST(ParameterServerTest, PullPreservesRequestOrderAcrossShards) {
  ps::ParameterServerOptions opt;
  opt.num_shards = 4;
  opt.table.dim = 3;
  ps::ParameterServer server(opt);
  std::vector<ps::Key> keys = {10, 3, 77, 3, 21};
  std::vector<float> out;
  server.Pull(keys, &out);
  ASSERT_EQ(out.size(), keys.size() * 3);
  // Duplicate key 3 must return identical rows.
  for (int d = 0; d < 3; ++d) {
    EXPECT_EQ(out[1 * 3 + d], out[3 * 3 + d]);
  }
}

TEST(ParameterServerTest, AsyncPushEventuallyApplies) {
  ps::ParameterServerOptions opt;
  opt.num_shards = 2;
  opt.table.dim = 2;
  opt.table.learning_rate = 1.0f;
  ps::ParameterServer server(opt);
  std::vector<float> before, after;
  server.Pull({7}, &before);
  server.PushAsync({7}, {1.0f, 1.0f});
  server.Flush();
  EXPECT_EQ(server.pushes_applied(), server.pushes_enqueued());
  server.Pull({7}, &after);
  EXPECT_LT(after[0], before[0]);  // update landed
}

TEST(ParameterServerTest, ManyAsyncPushesFromWorkers) {
  ps::ParameterServerOptions opt;
  opt.num_shards = 4;
  opt.table.dim = 4;
  ps::ParameterServer server(opt);
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&server, w] {
      std::vector<float> buf;
      for (int i = 0; i < 200; ++i) {
        std::vector<ps::Key> keys = {(w * 200 + i) % 91};
        server.Pull(keys, &buf);
        server.PushAsync(keys, std::vector<float>(4, 0.1f));
      }
    });
  }
  for (auto& t : workers) t.join();
  server.Flush();
  EXPECT_EQ(server.pushes_applied(), server.pushes_enqueued());
  EXPECT_LE(server.num_keys(), 91);
}

TEST(AsyncPipelineTest, OverlapBeatsSequentialForBalancedStages) {
  // Three 200us stages, 30 items: sequential ~18ms, pipelined ~6ms + eps.
  auto stage = [](int64_t) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  };
  ps::AsyncPipeline pipeline(stage, stage, stage);
  const double seq = pipeline.Run(30, /*overlap=*/false);
  const double par = pipeline.Run(30, /*overlap=*/true);
  EXPECT_LT(par, seq * 0.7) << "pipeline overlap provided no speedup";
}

TEST(AsyncPipelineTest, ProcessesEveryItemExactlyOnceInOrder) {
  std::vector<int64_t> seen;
  std::mutex mu;
  ps::AsyncPipeline pipeline([](int64_t) {}, [](int64_t) {},
                             [&](int64_t i) {
                               std::lock_guard<std::mutex> lock(mu);
                               seen.push_back(i);
                             });
  pipeline.Run(50, /*overlap=*/true);
  ASSERT_EQ(seen.size(), 50u);
  for (int64_t i = 0; i < 50; ++i) EXPECT_EQ(seen[i], i);  // FIFO stages
}

}  // namespace
}  // namespace zoomer
