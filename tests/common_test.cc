// Unit tests for src/common: Status, Rng, ThreadPool, BoundedQueue, timers.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <set>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "common/status.h"
#include "common/threadpool.h"
#include "common/timer.h"

namespace zoomer {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
}

TEST(StatusTest, StatusOrHoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  StatusOr<int> e(Status::NotFound("missing"));
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kNotFound);
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  auto inner = []() { return Status::Internal("boom"); };
  auto outer = [&]() -> Status {
    ZOOMER_RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kInternal);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformBoundedChiSquare) {
  // The bounded draw uses Lemire's multiply-shift reduction; a bound that
  // is not a power of two exercises the rejection threshold. Chi-square
  // over all 37 cells, 36 dof: the 99.9th percentile is ~67.99.
  Rng rng(17);
  const uint64_t n = 37;
  const int draws = 370000;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < draws; ++i) ++counts[rng.Uniform(n)];
  const double expected = draws / static_cast<double>(n);
  double chi = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    const double d = counts[i] - expected;
    chi += d * d / expected;
  }
  EXPECT_LT(chi, 68.0);
}

TEST(RngTest, UniformBoundedStaysInRange) {
  Rng rng(19);
  const uint64_t bounds[] = {1,          2,
                             3,          (1ull << 31) + 1,
                             (1ull << 62) + 12345, ~0ull};
  for (uint64_t b : bounds) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_LT(rng.Uniform(b), b) << "bound " << b;
    }
  }
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Uniform(1), 0u);
}

TEST(RngTest, UniformFloatStrictlyBelowOne) {
  // The alias acceptance test is `u < prob` with prob == 1.0f for exact
  // buckets; a float draw that could round to 1.0f would mis-route those
  // draws to the alias slot.
  Rng rng(23);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const float v = rng.UniformFloat();
    ASSERT_GE(v, 0.0f);
    ASSERT_LT(v, 1.0f);
    sum += v;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(RngTest, NormalHasUnitMoments) {
  Rng rng(11);
  const int n = 50000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(13);
  std::vector<double> w = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(w)];
  EXPECT_NEAR(counts[0] / double(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / double(n), 0.3, 0.02);
  EXPECT_NEAR(counts[2] / double(n), 0.6, 0.02);
}

TEST(RngTest, CategoricalDegenerateAllZeros) {
  Rng rng(13);
  std::vector<double> w = {0.0, 0.0, 0.0};
  EXPECT_EQ(rng.Categorical(w), 2u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i) {
    futs.push_back(pool.Submit([&count] { ++count; }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ReturnsValues) {
  ThreadPool pool(2);
  auto f = pool.Submit([](int x) { return x * x; }, 12);
  EXPECT_EQ(f.get(), 144);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++count;
      });
    }
  }  // destructor drains
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  EXPECT_EQ(pool.Submit([] { return 5; }).get(), 5);
}

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> q(10);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.Push(i));
  for (int i = 0; i < 5; ++i) {
    int v;
    ASSERT_TRUE(q.Pop(&v));
    EXPECT_EQ(v, i);
  }
}

TEST(BoundedQueueTest, BlocksWhenFullUntilPop) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::atomic<bool> pushed{false};
  std::thread t([&] {
    q.Push(2);
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  int v;
  ASSERT_TRUE(q.Pop(&v));
  t.join();
  EXPECT_TRUE(pushed.load());
}

TEST(BoundedQueueTest, CloseUnblocksConsumers) {
  BoundedQueue<int> q(4);
  std::thread t([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.Close();
  });
  int v;
  EXPECT_FALSE(q.Pop(&v));
  t.join();
}

TEST(BoundedQueueTest, CloseStillDrainsRemaining) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.Push(1));
  ASSERT_TRUE(q.Push(2));
  q.Close();
  int v;
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(q.Pop(&v));
  EXPECT_FALSE(q.Push(3));
}

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(t.ElapsedMillis(), 15.0);
  EXPECT_LT(t.ElapsedMillis(), 2000.0);
}

TEST(LatencyStatsTest, SummaryStatistics) {
  LatencyStats s;
  for (int i = 1; i <= 100; ++i) s.Add(i);
  EXPECT_EQ(s.count(), 100u);
  EXPECT_DOUBLE_EQ(s.Mean(), 50.5);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 100.0);
  EXPECT_NEAR(s.Percentile(50), 50.5, 0.5);
  EXPECT_NEAR(s.Percentile(99), 99.0, 1.1);
}

TEST(LatencyStatsTest, EmptyIsZero) {
  LatencyStats s;
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.Percentile(50), 0.0);
  EXPECT_EQ(s.StdDev(), 0.0);
}

TEST(LatencyStatsTest, StdDevOfConstantIsZero) {
  LatencyStats s;
  for (int i = 0; i < 10; ++i) s.Add(3.0);
  EXPECT_NEAR(s.StdDev(), 0.0, 1e-12);
}

TEST(LatencyStatsTest, InterleavedAddAndPercentileStaysCorrect) {
  // The cached sort must invalidate on every Add: alternate queries and
  // inserts and re-check against the exact order statistic each time.
  LatencyStats s;
  for (int i = 1; i <= 50; ++i) {
    s.Add(i);
    EXPECT_DOUBLE_EQ(s.Percentile(100), static_cast<double>(i)) << i;
    EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0) << i;
  }
  EXPECT_NEAR(s.Percentile(50), 25.5, 0.5);
  s.Clear();
  EXPECT_EQ(s.Percentile(50), 0.0);
  s.Add(7.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 7.0);
}

TEST(LoggingTest, SetLogLevelFromEnvParsesNamesAndNumbers) {
  const LogLevel saved = GetLogLevel();
  ::setenv("ZOOMER_LOG_LEVEL", "error", 1);
  SetLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  ::setenv("ZOOMER_LOG_LEVEL", "0", 1);
  SetLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  ::setenv("ZOOMER_LOG_LEVEL", "WARN", 1);
  SetLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
  // Unparsable input leaves the threshold unchanged.
  ::setenv("ZOOMER_LOG_LEVEL", "shout", 1);
  SetLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
  ::unsetenv("ZOOMER_LOG_LEVEL");
  SetLogLevel(saved);
}

TEST(LoggingTest, ZlogEveryNFiresFirstAndEveryNth) {
  // The macro's site-local counter fires on hits 1, n+1, 2n+1, ...; the
  // side-effect probe below counts stream evaluations without depending on
  // the log threshold (ERROR always passes it).
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  int fired = 0;
  auto probe = [&fired]() {
    ++fired;
    return "";
  };
  for (int i = 0; i < 10; ++i) {
    ZLOG_EVERY_N(ERROR, 4) << probe();
  }
  EXPECT_EQ(fired, 3);  // hits 1, 5, 9
  // Dangling-else safety: the macro in an unbraced if-else must bind
  // correctly (compile-time property; the else must not attach inside).
  bool took_else = false;
  if (false)
    ZLOG_EVERY_N(ERROR, 1) << "";
  else
    took_else = true;
  EXPECT_TRUE(took_else);
  SetLogLevel(saved);
}

}  // namespace
}  // namespace zoomer
