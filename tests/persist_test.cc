// Tests for the durability layer: WAL encode/decode with torn-tail and
// corruption handling, incremental checkpointing on the segment seam,
// crash-restart recovery with bit-identical serving state (weighted draws
// and focal ROI sampling), clean failure Statuses on every corrupted
// artifact, and the janitor CheckpointPolicy cadence.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/roi_sampler.h"
#include "maintenance/checkpoint_policy.h"
#include "persist/checkpoint.h"
#include "persist/wal.h"
#include "streaming/dynamic_graph_view.h"
#include "streaming/dynamic_hetero_graph.h"
#include "streaming/graph_delta_log.h"

namespace zoomer {
namespace persist {
namespace {

namespace fs = std::filesystem;

using graph::HeteroGraph;
using graph::HeteroGraphBuilder;
using graph::NodeId;
using graph::NodeType;
using graph::RelationKind;
using streaming::DeltaBatch;
using streaming::DynamicHeteroGraph;
using streaming::DynamicHeteroGraphOptions;
using streaming::EdgeEvent;
using streaming::GraphDeltaLog;
using streaming::NodeEvent;

constexpr int kDim = 4;

/// Fresh scratch directory per test, removed on destruction.
struct TempDir {
  explicit TempDir(const std::string& tag) {
    path = (fs::path(::testing::TempDir()) / ("persist_" + tag)).string();
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

/// user 0, query 1, items 2..2+num_items-1 with tie-free random content;
/// weighted base query-item edges on the first half of the items.
HeteroGraph MakeContentGraph(int num_items, uint64_t seed) {
  Rng rng(seed);
  HeteroGraphBuilder b(kDim);
  auto content = [&rng] {
    std::vector<float> c(kDim);
    for (auto& x : c) x = 0.05f + rng.UniformFloat();
    return c;
  };
  b.AddNode(NodeType::kUser, content(), {0});
  b.AddNode(NodeType::kQuery, content(), {1});
  for (int i = 0; i < num_items; ++i) {
    b.AddNode(NodeType::kItem, content(), {2});
  }
  EXPECT_TRUE(b.AddEdge(0, 1, RelationKind::kClick, 1.0f).ok());
  for (int i = 0; i < num_items / 2; ++i) {
    EXPECT_TRUE(b.AddEdge(1, 2 + static_cast<NodeId>(i), RelationKind::kClick,
                          0.5f + 3.0f * rng.UniformFloat())
                    .ok());
  }
  return b.Build();
}

DeltaBatch MakeBatch(GraphDeltaLog* log, int shard,
                     std::vector<EdgeEvent> events, DynamicHeteroGraph* track) {
  DeltaBatch batch;
  batch.events = std::move(events);
  batch.epoch = log->Append(shard, batch.events,
                            [track](uint64_t e) { track->NoteEpochIssued(e); });
  return batch;
}

NodeEvent MakeItemEvent(float fill, int64_t timestamp = 0) {
  NodeEvent ev;
  ev.type = NodeType::kItem;
  ev.content = std::vector<float>(kDim, fill);
  ev.slots = {7, 8};
  ev.timestamp = timestamp;
  return ev;
}

DeltaBatch MakeNodeBatch(GraphDeltaLog* log, int shard,
                         DynamicHeteroGraph* graph,
                         std::vector<NodeEvent> nodes,
                         std::vector<EdgeEvent> edges = {}) {
  DeltaBatch batch;
  auto epoch = log->AppendWithNodes(
      shard, &nodes, &edges,
      [graph](const std::vector<NodeEvent>& evs, uint64_t e) {
        return graph->AllocateNodeIds(evs, e);
      },
      [graph](uint64_t e) { graph->NoteEpochIssued(e); });
  EXPECT_TRUE(epoch.ok()) << epoch.status().ToString();
  batch.epoch = epoch.value();
  batch.node_events = std::move(nodes);
  batch.events = std::move(edges);
  return batch;
}

/// Deterministic serving fingerprint: per-node degree/total-weight plus a
/// fixed-seed weighted-draw sequence and a fixed-seed focal-top-k ROI.
struct Fingerprint {
  std::vector<std::pair<int, double>> rows;  // (degree, total weight)
  std::vector<NodeId> draws;
  std::vector<NodeId> roi;

  bool operator==(const Fingerprint& o) const {
    return rows == o.rows && draws == o.draws && roi == o.roi;
  }
};

Fingerprint FingerprintOf(const DynamicHeteroGraph& g) {
  Fingerprint fp;
  auto snap = g.MakeSnapshot();
  const int64_t n = g.num_nodes_allocated();
  Rng rng(123);
  for (NodeId id = 0; id < n; ++id) {
    fp.rows.push_back({snap.Degree(id), snap.TotalWeight(id)});
    if (snap.Degree(id) > 0) {
      for (int i = 0; i < 16; ++i) fp.draws.push_back(snap.SampleNeighbor(id, &rng));
    }
  }
  core::RoiSamplerOptions opts;
  opts.k = 4;
  opts.num_hops = 2;
  core::RoiSampler sampler(opts);
  streaming::DynamicGraphView view(&g);
  Rng roi_rng(77);
  const auto fc = sampler.FocalVector(view, {0, 1});
  const auto roi = sampler.Sample(view, 1, fc, &roi_rng);
  for (const auto& node : roi.nodes) fp.roi.push_back(node.id);
  return fp;
}

void FlipByteAt(const std::string& path, int64_t offset_from_end) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekg(0, std::ios::end);
  const int64_t size = f.tellg();
  ASSERT_GT(size, offset_from_end);
  f.seekp(size - offset_from_end);
  char c = 0;
  f.seekg(size - offset_from_end);
  f.read(&c, 1);
  c ^= 0x5A;
  f.seekp(size - offset_from_end);
  f.write(&c, 1);
}

// --- WAL ------------------------------------------------------------------

TEST(WalTest, RoundTripPreservesBatches) {
  TempDir dir("wal_roundtrip");
  const std::string path = (fs::path(dir.path) / WalFileName(1)).string();
  auto writer = WalWriter::Open(path);
  ASSERT_TRUE(writer.ok());

  DeltaBatch edges;
  edges.epoch = 3;
  edges.events = {{1, 2, RelationKind::kClick, 1.5f, 42},
                  {2, 1, RelationKind::kSession, 0.5f, 43}};
  DeltaBatch nodes;
  nodes.epoch = 4;
  nodes.node_events = {MakeItemEvent(0.6f, 99)};
  nodes.node_events[0].id = 17;
  nodes.events = {{1, 17, RelationKind::kClick, 2.0f, 99}};
  ASSERT_TRUE(writer.value()->Append(0, edges).ok());
  ASSERT_TRUE(writer.value()->Append(1, nodes).ok());
  EXPECT_EQ(writer.value()->max_epoch(), 4u);
  ASSERT_TRUE(writer.value()->Close().ok());

  auto read = ReadWal(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value().torn_tail_records, 0);
  ASSERT_EQ(read.value().records.size(), 2u);
  const auto& r0 = read.value().records[0];
  EXPECT_EQ(r0.shard, 0);
  EXPECT_EQ(r0.batch.epoch, 3u);
  ASSERT_EQ(r0.batch.events.size(), 2u);
  EXPECT_EQ(r0.batch.events[0].src, 1);
  EXPECT_EQ(r0.batch.events[0].dst, 2);
  EXPECT_EQ(r0.batch.events[0].weight, 1.5f);
  EXPECT_EQ(r0.batch.events[1].kind, RelationKind::kSession);
  const auto& r1 = read.value().records[1];
  EXPECT_EQ(r1.shard, 1);
  ASSERT_EQ(r1.batch.node_events.size(), 1u);
  EXPECT_EQ(r1.batch.node_events[0].id, 17);
  EXPECT_EQ(r1.batch.node_events[0].timestamp, 99);
  EXPECT_EQ(r1.batch.node_events[0].content, std::vector<float>(kDim, 0.6f));
  EXPECT_EQ(r1.batch.node_events[0].slots, (std::vector<int64_t>{7, 8}));
}

TEST(WalTest, TornFinalRecordDroppedNotFatal) {
  TempDir dir("wal_torn");
  const std::string path = (fs::path(dir.path) / WalFileName(1)).string();
  auto writer = WalWriter::Open(path);
  ASSERT_TRUE(writer.ok());
  DeltaBatch b1, b2;
  b1.epoch = 1;
  b1.events = {{0, 1, RelationKind::kClick, 1.0f, 0}};
  b2.epoch = 2;
  b2.events = {{1, 0, RelationKind::kClick, 2.0f, 0}};
  ASSERT_TRUE(writer.value()->Append(0, b1).ok());
  ASSERT_TRUE(writer.value()->Append(0, b2).ok());
  ASSERT_TRUE(writer.value()->Close().ok());

  // Simulate a crash mid-write of the final record.
  const auto full = fs::file_size(path);
  fs::resize_file(path, full - 5);
  auto read = ReadWal(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value().torn_tail_records, 1);
  ASSERT_EQ(read.value().records.size(), 1u);
  EXPECT_EQ(read.value().records[0].batch.epoch, 1u);
}

TEST(WalTest, CorruptPayloadIsAnError) {
  TempDir dir("wal_corrupt");
  const std::string path = (fs::path(dir.path) / WalFileName(1)).string();
  auto writer = WalWriter::Open(path);
  ASSERT_TRUE(writer.ok());
  DeltaBatch b1;
  b1.epoch = 1;
  b1.events = {{0, 1, RelationKind::kClick, 1.0f, 0}};
  ASSERT_TRUE(writer.value()->Append(0, b1).ok());
  ASSERT_TRUE(writer.value()->Close().ok());

  FlipByteAt(path, 3);  // inside the payload -> CRC mismatch
  auto read = ReadWal(path);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInvalidArgument);

  EXPECT_EQ(ReadWal((fs::path(dir.path) / "nope.log").string()).status().code(),
            StatusCode::kNotFound);
}

TEST(WalTest, FileNameRoundTrip) {
  const std::string name = WalFileName(42);
  uint64_t start = 0;
  ASSERT_TRUE(ParseWalFileName(name, &start));
  EXPECT_EQ(start, 42u);
  EXPECT_FALSE(ParseWalFileName("wal-abc.log", &start));
  EXPECT_FALSE(ParseWalFileName("seg-000001-g2.ckpt", &start));
}

// --- Checkpoint + recovery round trip -------------------------------------

TEST(RecoveryTest, CrashRestartIsBitIdentical) {
  TempDir dir("roundtrip");
  HeteroGraph g = MakeContentGraph(30, 7);  // 32 nodes
  DynamicHeteroGraphOptions opts;
  opts.segment_span = 8;
  DynamicHeteroGraph dyn(&g, opts);
  GraphDeltaLog log(2);
  DeltaLogPersister persister(&log, dir.path);
  ASSERT_TRUE(persister.Start(0).ok());

  // Pre-checkpoint ingest: edge deltas across segments plus two minted
  // nodes (one with an inbound edge placeholder).
  ASSERT_TRUE(dyn.ApplyBatch(MakeBatch(&log, 0,
                                       {{1, 20, RelationKind::kClick, 2.0f, 1},
                                        {1, 25, RelationKind::kClick, 1.0f, 1}},
                                       &dyn))
                  .ok());
  ASSERT_TRUE(
      dyn.ApplyBatch(MakeNodeBatch(&log, 1, &dyn, {MakeItemEvent(0.7f, 5)},
                                   {{1, -1, RelationKind::kClick, 3.0f, 5}}))
          .ok());
  ASSERT_TRUE(dyn.ApplyBatch(MakeBatch(&log, 0,
                                       {{0, 9, RelationKind::kSession, 1.0f, 6},
                                        {2, 3, RelationKind::kClick, 0.5f, 6}},
                                       &dyn))
                  .ok());
  // Partial fold: segment 0 absorbs its deltas, the rest stay pending in
  // the overlay — checkpoint recovery must replay them (and must NOT
  // double-apply what segment 0 already folded).
  ASSERT_TRUE(dyn.CompactSegments({0}).ok());

  CheckpointWriterOptions copts;
  copts.wal_shards = 2;
  CheckpointWriter writer(&dyn, dir.path, copts);
  auto stats = writer.Write();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_TRUE(persister.OnCheckpoint(stats.value().checkpoint_epoch).ok());

  // Post-checkpoint ingest: survives only in the WAL tail.
  ASSERT_TRUE(
      dyn.ApplyBatch(MakeNodeBatch(&log, 0, &dyn, {MakeItemEvent(0.9f, 8)},
                                   {{0, -1, RelationKind::kSession, 1.5f, 8}}))
          .ok());
  ASSERT_TRUE(dyn.ApplyBatch(MakeBatch(&log, 1,
                                       {{1, 28, RelationKind::kClick, 4.0f, 9}},
                                       &dyn))
                  .ok());

  const Fingerprint before = FingerprintOf(dyn);
  const uint64_t epoch_before = dyn.epoch();

  // "Crash": recover purely from disk, nothing carried over in memory.
  RecoverOptions ropts;
  ropts.graph_options = opts;
  auto recovered = RecoverFrom(dir.path, ropts);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value().checkpoint_epoch,
            stats.value().checkpoint_epoch);
  EXPECT_GE(recovered.value().replayed_epochs, 2u);
  EXPECT_EQ(recovered.value().torn_wal_records, 0);

  DynamicHeteroGraph& rec = *recovered.value().graph;
  EXPECT_EQ(rec.epoch(), epoch_before);
  EXPECT_EQ(rec.num_nodes_allocated(), dyn.num_nodes_allocated());
  const Fingerprint after = FingerprintOf(rec);
  EXPECT_TRUE(before == after)
      << "recovered serving state diverged from the pre-crash graph";

  // The restored in-memory log must hand back the tail with original
  // epochs, so a revived replica (or the next persister) can resume.
  EXPECT_EQ(recovered.value().log->last_epoch(), log.last_epoch());
}

TEST(RecoveryTest, RecoveredGraphKeepsServing) {
  TempDir dir("reingest");
  HeteroGraph g = MakeContentGraph(14, 3);
  DynamicHeteroGraphOptions opts;
  opts.segment_span = 8;
  DynamicHeteroGraph dyn(&g, opts);
  GraphDeltaLog log(2);
  DeltaLogPersister persister(&log, dir.path);
  ASSERT_TRUE(persister.Start(0).ok());
  ASSERT_TRUE(dyn.ApplyBatch(MakeBatch(&log, 0,
                                       {{1, 10, RelationKind::kClick, 2.0f, 1}},
                                       &dyn))
                  .ok());
  CheckpointWriterOptions copts;
  copts.wal_shards = 2;
  CheckpointWriter writer(&dyn, dir.path, copts);
  auto stats = writer.Write();
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(persister.OnCheckpoint(stats.value().checkpoint_epoch).ok());
  ASSERT_TRUE(persister.Stop().ok());

  auto recovered = RecoverFrom(dir.path, {opts, nullptr});
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  DynamicHeteroGraph& rec = *recovered.value().graph;
  GraphDeltaLog& rlog = *recovered.value().log;

  // Resume durability on the recovered pair and keep ingesting: new epochs
  // continue past the pre-crash sequence, a second checkpoint is
  // incremental over the first, and a second recovery still matches.
  DeltaLogPersister persister2(&rlog, dir.path);
  ASSERT_TRUE(persister2.Start(recovered.value().checkpoint_epoch).ok());
  const uint64_t pre = rlog.last_epoch();
  ASSERT_TRUE(
      rec.ApplyBatch(MakeNodeBatch(&rlog, 1, &rec, {MakeItemEvent(0.8f, 9)},
                                   {{1, -1, RelationKind::kClick, 1.0f, 9}}))
          .ok());
  EXPECT_GT(rlog.last_epoch(), pre);
  CheckpointWriter writer2(&rec, dir.path, copts);
  auto stats2 = writer2.Write();
  ASSERT_TRUE(stats2.ok()) << stats2.status().ToString();
  EXPECT_GT(stats2.value().segments_reused, 0);
  ASSERT_TRUE(persister2.OnCheckpoint(stats2.value().checkpoint_epoch).ok());

  const Fingerprint before = FingerprintOf(rec);
  auto again = RecoverFrom(dir.path, {opts, nullptr});
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_TRUE(before == FingerprintOf(*again.value().graph));
}

TEST(CheckpointTest, IncrementalWriteReusesCleanSegments) {
  TempDir dir("incremental");
  HeteroGraph g = MakeContentGraph(62, 11);  // 64 nodes = 8 segments of 8
  DynamicHeteroGraphOptions opts;
  opts.segment_span = 8;
  DynamicHeteroGraph dyn(&g, opts);
  GraphDeltaLog log(1);
  ASSERT_TRUE(dyn.ApplyBatch(MakeBatch(&log, 0,
                                       {{1, 2, RelationKind::kClick, 1.0f, 1}},
                                       &dyn))
                  .ok());
  ASSERT_TRUE(dyn.Compact().ok());  // every segment at generation 2

  CheckpointWriter writer(&dyn, dir.path, {nullptr, 1});
  auto full = writer.Write();
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_EQ(full.value().segments_written, 8);
  EXPECT_EQ(full.value().segments_reused, 0);

  // Touch one segment (node 2 lives in segment 0) and fold only it.
  ASSERT_TRUE(dyn.ApplyBatch(MakeBatch(&log, 0,
                                       {{2, 3, RelationKind::kClick, 1.0f, 2}},
                                       &dyn))
                  .ok());
  ASSERT_TRUE(dyn.CompactSegments({0}).ok());
  auto incr = writer.Write();
  ASSERT_TRUE(incr.ok()) << incr.status().ToString();
  EXPECT_EQ(incr.value().segments_written, 1);
  EXPECT_EQ(incr.value().segments_reused, 7);
  // The dirty eighth re-serializes; everything else is re-referenced. The
  // byte gate the CI bench enforces (<= 25%) holds with slack here.
  EXPECT_LT(incr.value().bytes_written, full.value().bytes_written / 2);

  // A fresh writer over the same directory adopts the manifest and stays
  // incremental across a process restart.
  CheckpointWriter writer2(&dyn, dir.path, {nullptr, 1});
  EXPECT_EQ(writer2.last_checkpoint_epoch(), incr.value().checkpoint_epoch);
  auto again = writer2.Write();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().segments_written, 0);
  EXPECT_EQ(again.value().segments_reused, 8);
}

// --- Corruption handling --------------------------------------------------

/// Writes a minimal valid checkpoint directory and returns its stats.
CheckpointStats WriteSmallCheckpoint(const std::string& dir,
                                     DynamicHeteroGraphOptions opts) {
  HeteroGraph g = MakeContentGraph(10, 5);
  DynamicHeteroGraph dyn(&g, opts);
  GraphDeltaLog log(2);
  DeltaLogPersister persister(&log, dir);
  EXPECT_TRUE(persister.Start(0).ok());
  EXPECT_TRUE(dyn.ApplyBatch(MakeBatch(&log, 0,
                                       {{1, 5, RelationKind::kClick, 1.0f, 1}},
                                       &dyn))
                  .ok());
  CheckpointWriter writer(&dyn, dir, {nullptr, 2});
  auto stats = writer.Write();
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(dyn.ApplyBatch(MakeBatch(&log, 1,
                                       {{0, 6, RelationKind::kClick, 1.0f, 2}},
                                       &dyn))
                  .ok());
  return stats.value();
}

TEST(RecoveryTest, MissingManifestIsNotFound) {
  TempDir dir("no_manifest");
  auto st = RecoverFrom(dir.path, {});
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.status().code(), StatusCode::kNotFound);
}

TEST(RecoveryTest, CorruptManifestFailsCleanly) {
  DynamicHeteroGraphOptions opts;
  opts.segment_span = 8;
  TempDir dir("bad_manifest");
  WriteSmallCheckpoint(dir.path, opts);
  FlipByteAt((fs::path(dir.path) / "MANIFEST").string(), 6);
  auto st = RecoverFrom(dir.path, {opts, nullptr});
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.status().code(), StatusCode::kInvalidArgument);
}

TEST(RecoveryTest, TruncatedManifestFailsCleanly) {
  DynamicHeteroGraphOptions opts;
  opts.segment_span = 8;
  TempDir dir("short_manifest");
  WriteSmallCheckpoint(dir.path, opts);
  const std::string manifest = (fs::path(dir.path) / "MANIFEST").string();
  fs::resize_file(manifest, fs::file_size(manifest) - 9);
  auto st = RecoverFrom(dir.path, {opts, nullptr});
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.status().code(), StatusCode::kInvalidArgument);
}

TEST(RecoveryTest, CorruptSegmentFailsCleanly) {
  DynamicHeteroGraphOptions opts;
  opts.segment_span = 8;
  TempDir dir("bad_segment");
  WriteSmallCheckpoint(dir.path, opts);
  for (const auto& entry : fs::directory_iterator(dir.path)) {
    if (entry.path().filename().string().rfind("seg-", 0) == 0) {
      FlipByteAt(entry.path().string(), 7);
      break;
    }
  }
  auto st = RecoverFrom(dir.path, {opts, nullptr});
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.status().code(), StatusCode::kInvalidArgument);
}

TEST(RecoveryTest, MissingSegmentFailsCleanly) {
  DynamicHeteroGraphOptions opts;
  opts.segment_span = 8;
  TempDir dir("gone_segment");
  WriteSmallCheckpoint(dir.path, opts);
  for (const auto& entry : fs::directory_iterator(dir.path)) {
    if (entry.path().filename().string().rfind("seg-", 0) == 0) {
      fs::remove(entry.path());
      break;
    }
  }
  auto st = RecoverFrom(dir.path, {opts, nullptr});
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.status().code(), StatusCode::kNotFound);
}

TEST(RecoveryTest, TornRecordInSealedWalFileIsCorruption) {
  DynamicHeteroGraphOptions opts;
  opts.segment_span = 8;
  TempDir dir("sealed_torn");
  const CheckpointStats stats = WriteSmallCheckpoint(dir.path, opts);

  // Hand-craft two WAL files past the checkpoint, then tear a record in
  // the FIRST (sealed) one: that is corruption, not a crash artifact.
  const uint64_t c = stats.checkpoint_epoch;
  for (int i = 0; i < 2; ++i) {
    const std::string path =
        (fs::path(dir.path) / WalFileName(c + 1 + 10 * i)).string();
    auto writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    DeltaBatch b;
    b.epoch = c + 1 + 10 * i;
    b.events = {{0, 1, RelationKind::kClick, 1.0f, 0}};
    ASSERT_TRUE(writer.value()->Append(0, b).ok());
    ASSERT_TRUE(writer.value()->Close().ok());
  }
  const std::string sealed =
      (fs::path(dir.path) / WalFileName(c + 1)).string();
  fs::resize_file(sealed, fs::file_size(sealed) - 3);

  auto st = RecoverFrom(dir.path, {opts, nullptr});
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.status().code(), StatusCode::kInvalidArgument);
}

TEST(RecoveryTest, TornTailOfNewestWalFileIsDropped) {
  DynamicHeteroGraphOptions opts;
  opts.segment_span = 8;
  TempDir dir("tail_torn");
  const CheckpointStats stats = WriteSmallCheckpoint(dir.path, opts);

  // Tear the very last WAL record (the post-checkpoint batch the helper
  // appended): recovery drops it and reports, rather than failing.
  std::string newest;
  for (const auto& entry : fs::directory_iterator(dir.path)) {
    uint64_t start = 0;
    if (ParseWalFileName(entry.path().filename().string(), &start)) {
      if (newest.empty() || entry.path().string() > newest) {
        newest = entry.path().string();
      }
    }
  }
  ASSERT_FALSE(newest.empty());
  fs::resize_file(newest, fs::file_size(newest) - 2);

  auto recovered = RecoverFrom(dir.path, {opts, nullptr});
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value().torn_wal_records, 1);
  // The helper's first batch (epoch 1, sealed file) replays; the torn
  // second one is dropped as never-acknowledged.
  EXPECT_EQ(recovered.value().replayed_epochs, 1u);
  EXPECT_EQ(recovered.value().graph->epoch(), stats.checkpoint_epoch + 1);
}

// --- Janitor policy -------------------------------------------------------

TEST(CheckpointPolicyTest, ActsOnlyWhenEpochsAdvance) {
  TempDir dir("policy");
  HeteroGraph g = MakeContentGraph(10, 9);
  DynamicHeteroGraphOptions opts;
  opts.segment_span = 8;
  DynamicHeteroGraph dyn(&g, opts);
  GraphDeltaLog log(2);
  DeltaLogPersister persister(&log, dir.path);
  ASSERT_TRUE(persister.Start(0).ok());
  CheckpointWriter writer(&dyn, dir.path, {nullptr, 2});
  maintenance::CheckpointPolicy policy(&dyn, &writer, &persister, {});

  // Nothing ingested and folded yet: epoch 0 is already durable (the
  // trivial empty checkpoint), so the first pass is a no-op.
  auto r0 = policy.RunOnce();
  ASSERT_TRUE(r0.ok());
  EXPECT_FALSE(r0.value().acted);

  ASSERT_TRUE(dyn.ApplyBatch(MakeBatch(&log, 0,
                                       {{1, 4, RelationKind::kClick, 1.0f, 1}},
                                       &dyn))
                  .ok());
  // Pending overlay entries pin SafeTruncateEpoch at 0; a fold (the
  // compaction policy's job in a real janitor) is what advances the
  // durable-coverable epoch and arms the checkpoint trigger.
  ASSERT_TRUE(dyn.Compact().ok());
  auto r1 = policy.RunOnce();
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1.value().acted);
  EXPECT_EQ(policy.checkpoints(), 1);
  EXPECT_EQ(writer.last_checkpoint_epoch(), dyn.SafeTruncateEpoch());

  // No new epochs since: the next pass skips.
  auto r2 = policy.RunOnce();
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2.value().acted);

  // Recovery from the policy-written checkpoint works end to end.
  auto recovered = RecoverFrom(dir.path, {opts, nullptr});
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(FingerprintOf(dyn) == FingerprintOf(*recovered.value().graph));
}

}  // namespace
}  // namespace persist
}  // namespace zoomer
