// Tests for the tensor/autograd substrate. The core of this suite is a
// numeric gradient checker applied to every differentiable op, plus
// optimizer convergence tests and a small end-to-end learning test.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include "common/random.h"
#include "tensor/nn.h"
#include "tensor/optimizer.h"
#include "tensor/tensor.h"

namespace zoomer {
namespace tensor {
namespace {

// Numeric gradient check: builds loss = sum(w ⊙ f(x)) for fixed pseudo-random
// w (to make the loss sensitive to every output entry), compares autograd
// gradients of x against central differences.
void GradCheck(const std::function<Tensor(const Tensor&)>& f, Tensor x,
               float h = 5e-3f, float tol = 2e-2f) {
  Rng rng(99);
  Tensor y0 = f(x);
  Tensor w = Tensor::Randn(y0.rows(), y0.cols(), &rng, 1.0f);
  auto loss_of = [&](const Tensor& in) {
    Tensor y = f(in);
    return SumAll(Mul(y, w));
  };
  Tensor loss = loss_of(x);
  x.ZeroGrad();
  // Re-run forward graph with grad to populate x.grad.
  Tensor loss2 = loss_of(x);
  loss2.Backward();
  for (int64_t i = 0; i < x.rows(); ++i) {
    for (int64_t j = 0; j < x.cols(); ++j) {
      const float orig = x.at(i, j);
      x.at(i, j) = orig + h;
      const float fp = loss_of(x).item();
      x.at(i, j) = orig - h;
      const float fm = loss_of(x).item();
      x.at(i, j) = orig;
      const float numeric = (fp - fm) / (2.0f * h);
      const float analytic = x.grad_at(i, j);
      const float denom = std::max({std::abs(numeric), std::abs(analytic), 1.0f});
      EXPECT_NEAR(analytic / denom, numeric / denom, tol)
          << "entry (" << i << "," << j << ") analytic=" << analytic
          << " numeric=" << numeric;
    }
  }
}

Tensor RandInput(int64_t r, int64_t c, uint64_t seed, float scale = 1.0f) {
  Rng rng(seed);
  return Tensor::Randn(r, c, &rng, scale, /*requires_grad=*/true);
}

TEST(TensorTest, FactoryShapes) {
  Tensor z = Tensor::Zeros(3, 4);
  EXPECT_EQ(z.rows(), 3);
  EXPECT_EQ(z.cols(), 4);
  EXPECT_EQ(z.size(), 12);
  for (int64_t i = 0; i < 3; ++i)
    for (int64_t j = 0; j < 4; ++j) EXPECT_EQ(z.at(i, j), 0.0f);
  Tensor f = Tensor::Full(2, 2, 3.5f);
  EXPECT_EQ(f.at(1, 1), 3.5f);
  Tensor s = Tensor::Scalar(2.0f);
  EXPECT_EQ(s.item(), 2.0f);
}

TEST(TensorTest, FromVectorRoundTrip) {
  Tensor t = Tensor::FromVector({1, 2, 3, 4, 5, 6}, 2, 3);
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(0, 2), 3.0f);
  EXPECT_EQ(t.at(1, 0), 4.0f);
}

TEST(TensorTest, DetachSharesNoHistory) {
  Tensor x = RandInput(2, 2, 1);
  Tensor d = x.Detach();
  EXPECT_FALSE(d.requires_grad());
  EXPECT_EQ(d.at(0, 0), x.at(0, 0));
  d.at(0, 0) += 1.0f;  // fresh storage
  EXPECT_NE(d.at(0, 0), x.at(0, 0));
}

TEST(TensorTest, MatMulForward) {
  Tensor a = Tensor::FromVector({1, 2, 3, 4}, 2, 2);
  Tensor b = Tensor::FromVector({5, 6, 7, 8}, 2, 2);
  Tensor c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 50.0f);
}

TEST(TensorTest, AddBroadcastRow) {
  Tensor a = Tensor::FromVector({1, 2, 3, 4}, 2, 2);
  Tensor b = Tensor::FromVector({10, 20}, 1, 2);
  Tensor c = Add(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 24.0f);
}

TEST(TensorTest, SoftmaxRowsSumToOne) {
  Tensor x = RandInput(5, 7, 3);
  Tensor y = SoftmaxRows(x);
  for (int64_t i = 0; i < 5; ++i) {
    float s = 0.0f;
    for (int64_t j = 0; j < 7; ++j) {
      EXPECT_GT(y.at(i, j), 0.0f);
      s += y.at(i, j);
    }
    EXPECT_NEAR(s, 1.0f, 1e-5f);
  }
}

TEST(TensorTest, SoftmaxNumericallyStableForLargeInputs) {
  Tensor x = Tensor::FromVector({1000.0f, 1001.0f, 999.0f}, 1, 3);
  Tensor y = SoftmaxRows(x);
  EXPECT_FALSE(std::isnan(y.at(0, 0)));
  EXPECT_GT(y.at(0, 1), y.at(0, 0));
}

TEST(TensorTest, NormalizeRowsUnitNorm) {
  Tensor x = RandInput(4, 6, 5);
  Tensor y = NormalizeRows(x);
  for (int64_t i = 0; i < 4; ++i) {
    float s = 0.0f;
    for (int64_t j = 0; j < 6; ++j) s += y.at(i, j) * y.at(i, j);
    EXPECT_NEAR(s, 1.0f, 1e-4f);
  }
}

TEST(TensorTest, RowsGather) {
  Tensor x = Tensor::FromVector({1, 2, 3, 4, 5, 6}, 3, 2);
  Tensor y = Rows(x, {2, 0, 2});
  EXPECT_EQ(y.rows(), 3);
  EXPECT_FLOAT_EQ(y.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(y.at(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(y.at(2, 1), 6.0f);
}

TEST(TensorTest, RowsGatherGradientScatterAdds) {
  Tensor x = Tensor::Zeros(3, 2, /*requires_grad=*/true);
  Tensor y = Rows(x, {1, 1});
  Tensor loss = SumAll(y);
  loss.Backward();
  // Row 1 gathered twice -> gradient 2 in both columns.
  EXPECT_FLOAT_EQ(x.grad_at(1, 0), 2.0f);
  EXPECT_FLOAT_EQ(x.grad_at(1, 1), 2.0f);
  EXPECT_FLOAT_EQ(x.grad_at(0, 0), 0.0f);
}

TEST(TensorTest, RowwiseCosineOfIdenticalRowsIsOne) {
  Tensor x = RandInput(3, 5, 7);
  Tensor c = RowwiseCosine(x, x);
  for (int64_t i = 0; i < 3; ++i) EXPECT_NEAR(c.at(i, 0), 1.0f, 1e-4f);
}

TEST(TensorTest, DiamondGraphAccumulatesBothPaths) {
  // loss = sum(x*x) + sum(x) uses x twice; d/dx = 2x + 1.
  Tensor x = Tensor::FromVector({2.0f, -3.0f}, 1, 2, /*requires_grad=*/true);
  Tensor loss = Add(SumAll(Mul(x, x)), SumAll(x));
  loss.Backward();
  EXPECT_NEAR(x.grad_at(0, 0), 5.0f, 1e-5f);
  EXPECT_NEAR(x.grad_at(0, 1), -5.0f, 1e-5f);
}

TEST(TensorTest, BackwardTwiceAccumulates) {
  Tensor x = Tensor::Scalar(3.0f, /*requires_grad=*/true);
  Tensor loss = Mul(x, x);
  loss.Backward();
  EXPECT_NEAR(x.grad_at(0, 0), 6.0f, 1e-5f);
  Tensor loss2 = Mul(x, x);
  loss2.Backward();
  EXPECT_NEAR(x.grad_at(0, 0), 12.0f, 1e-5f);  // accumulated
}

// --- Parameterized gradient checks over all differentiable ops -------------

struct OpCase {
  std::string name;
  std::function<Tensor(const Tensor&)> fn;
  int64_t rows = 3;
  int64_t cols = 4;
  float scale = 1.0f;
};

class GradCheckTest : public ::testing::TestWithParam<OpCase> {};

TEST_P(GradCheckTest, MatchesNumericGradient) {
  const auto& c = GetParam();
  GradCheck(c.fn, RandInput(c.rows, c.cols, 17, c.scale));
}

Tensor FixedMat(int64_t r, int64_t c, uint64_t seed) {
  Rng rng(seed);
  return Tensor::Randn(r, c, &rng, 1.0f);
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, GradCheckTest,
    ::testing::Values(
        OpCase{"MatMulLhs", [](const Tensor& x) { return MatMul(x, FixedMat(4, 5, 2)); }},
        OpCase{"MatMulRhs", [](const Tensor& x) { return MatMul(FixedMat(5, 3, 3), x); }},
        OpCase{"AddSame", [](const Tensor& x) { return Add(x, FixedMat(3, 4, 4)); }},
        OpCase{"AddRowBroadcastGradToRow",
               [](const Tensor& x) {
                 return Add(FixedMat(5, 4, 5), MatMul(Tensor::Full(1, 3, 1.0f), x));
               },
               3, 4},
        OpCase{"Sub", [](const Tensor& x) { return Sub(x, FixedMat(3, 4, 6)); }},
        OpCase{"MulSame", [](const Tensor& x) { return Mul(x, FixedMat(3, 4, 7)); }},
        OpCase{"MulColBroadcast",
               [](const Tensor& x) { return Mul(FixedMat(3, 4, 8), SumRowsTo1(x)); }},
        OpCase{"Scale", [](const Tensor& x) { return Scale(x, -2.5f); }},
        OpCase{"AddScalar", [](const Tensor& x) { return AddScalar(x, 1.5f); }},
        OpCase{"Sigmoid", [](const Tensor& x) { return Sigmoid(x); }},
        OpCase{"Tanh", [](const Tensor& x) { return Tanh(x); }},
        OpCase{"LeakyRelu", [](const Tensor& x) { return LeakyRelu(x, 0.2f); }},
        OpCase{"Exp", [](const Tensor& x) { return Exp(x); }},
        OpCase{"LogShifted", [](const Tensor& x) { return Log(Exp(x)); }},
        OpCase{"SoftmaxRows", [](const Tensor& x) { return SoftmaxRows(x); }},
        OpCase{"Transpose", [](const Tensor& x) { return Transpose(x); }},
        OpCase{"ConcatColsLhs",
               [](const Tensor& x) { return ConcatCols(x, FixedMat(3, 2, 9)); }},
        OpCase{"ConcatRowsRhs",
               [](const Tensor& x) { return ConcatRows(FixedMat(2, 4, 10), x); }},
        OpCase{"SumAll", [](const Tensor& x) { return SumAll(x); }},
        OpCase{"MeanAll", [](const Tensor& x) { return MeanAll(x); }},
        OpCase{"SumRowsTo1", [](const Tensor& x) { return SumRowsTo1(x); }},
        OpCase{"MeanRows", [](const Tensor& x) { return MeanRows(x); }},
        OpCase{"RowsGather", [](const Tensor& x) { return Rows(x, {0, 2, 2, 1}); }},
        OpCase{"RowwiseDot",
               [](const Tensor& x) { return RowwiseDot(x, FixedMat(3, 4, 11)); }},
        OpCase{"RowwiseCosine",
               [](const Tensor& x) { return RowwiseCosine(x, FixedMat(3, 4, 12)); }},
        OpCase{"NormalizeRows", [](const Tensor& x) { return NormalizeRows(x); }},
        OpCase{"TileRows", [](const Tensor& x) { return TileRows(x, 5); }, 1, 4},
        OpCase{"SquaredNorm", [](const Tensor& x) { return SquaredNorm(x); }},
        OpCase{"BceWithLogits",
               [](const Tensor& x) {
                 Tensor labels = Tensor::FromVector({1, 0, 1}, 3, 1);
                 return BceWithLogits(x, labels);
               },
               3, 1},
        OpCase{"FocalBceWithLogits",
               [](const Tensor& x) {
                 Tensor labels = Tensor::FromVector({1, 0, 1}, 3, 1);
                 return FocalBceWithLogits(x, labels, 2.0f);
               },
               3, 1}),
    [](const ::testing::TestParamInfo<OpCase>& info) { return info.param.name; });

// --- Loss semantics ---------------------------------------------------------

TEST(LossTest, BceMatchesManualComputation) {
  Tensor logits = Tensor::FromVector({0.0f}, 1, 1);
  Tensor labels = Tensor::FromVector({1.0f}, 1, 1);
  // -log(sigmoid(0)) = log 2
  EXPECT_NEAR(BceWithLogits(logits, labels).item(), std::log(2.0f), 1e-5f);
}

TEST(LossTest, FocalGammaZeroEqualsBce) {
  Rng rng(21);
  Tensor logits = Tensor::Randn(8, 1, &rng, 2.0f);
  Tensor labels = Tensor::FromVector({1, 0, 1, 1, 0, 0, 1, 0}, 8, 1);
  EXPECT_NEAR(FocalBceWithLogits(logits, labels, 0.0f).item(),
              BceWithLogits(logits, labels).item(), 1e-4f);
}

TEST(LossTest, FocalDownweightsEasyExamples) {
  // Confident correct prediction: focal loss << BCE loss.
  Tensor logits = Tensor::FromVector({4.0f}, 1, 1);
  Tensor labels = Tensor::FromVector({1.0f}, 1, 1);
  const float bce = BceWithLogits(logits, labels).item();
  const float focal = FocalBceWithLogits(logits, labels, 2.0f).item();
  EXPECT_LT(focal, bce * 0.01f);
}

// --- Optimizers --------------------------------------------------------------

class OptimizerConvergenceTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(OptimizerConvergenceTest, MinimizesQuadratic) {
  Rng rng(31);
  Tensor x = Tensor::Randn(4, 4, &rng, 2.0f, /*requires_grad=*/true);
  std::unique_ptr<Optimizer> opt;
  const std::string kind = GetParam();
  if (kind == "sgd") opt = std::make_unique<Sgd>(std::vector<Tensor>{x}, 0.05f);
  else if (kind == "sgd_momentum")
    opt = std::make_unique<Sgd>(std::vector<Tensor>{x}, 0.02f, 0.9f);
  else if (kind == "adam")
    opt = std::make_unique<Adam>(std::vector<Tensor>{x}, 0.1f);
  else
    opt = std::make_unique<Adagrad>(std::vector<Tensor>{x}, 0.5f);
  float last = 1e9f;
  for (int step = 0; step < 300; ++step) {
    opt->ZeroGrad();
    Tensor loss = SquaredNorm(x);
    loss.Backward();
    opt->Step();
    last = SquaredNorm(x).item();
  }
  EXPECT_LT(last, 1e-2f) << "optimizer " << kind << " failed to converge";
}

INSTANTIATE_TEST_SUITE_P(AllOptimizers, OptimizerConvergenceTest,
                         ::testing::Values("sgd", "sgd_momentum", "adam",
                                           "adagrad"));

TEST(OptimizerTest, WeightDecayShrinksParams) {
  Tensor x = Tensor::Full(2, 2, 1.0f, /*requires_grad=*/true);
  Sgd opt({x}, 0.1f, 0.0f, /*weight_decay=*/0.5f);
  opt.ZeroGrad();
  opt.Step();  // gradient zero, decay only: w -= lr*wd*w
  EXPECT_NEAR(x.at(0, 0), 1.0f - 0.1f * 0.5f, 1e-6f);
}

// --- NN building blocks ------------------------------------------------------

TEST(NnTest, LinearShapes) {
  Rng rng(41);
  Linear lin(6, 3, &rng);
  Tensor x = Tensor::Randn(5, 6, &rng, 1.0f);
  Tensor y = lin.Forward(x);
  EXPECT_EQ(y.rows(), 5);
  EXPECT_EQ(y.cols(), 3);
  EXPECT_EQ(lin.Parameters().size(), 2u);
}

TEST(NnTest, MlpLearnsXor) {
  Rng rng(43);
  Mlp mlp({2, 8, 1}, &rng, Activation::kTanh);
  Tensor x = Tensor::FromVector({0, 0, 0, 1, 1, 0, 1, 1}, 4, 2);
  Tensor y = Tensor::FromVector({0, 1, 1, 0}, 4, 1);
  Adam opt(mlp.Parameters(), 0.05f);
  float loss_val = 1e9f;
  for (int step = 0; step < 500; ++step) {
    opt.ZeroGrad();
    Tensor loss = BceWithLogits(mlp.Forward(x), y);
    loss.Backward();
    opt.Step();
    loss_val = loss.item();
  }
  EXPECT_LT(loss_val, 0.1f);
}

TEST(NnTest, EmbeddingLookupAndTrain) {
  Rng rng(47);
  Embedding emb(10, 4, &rng);
  Tensor e = emb.Lookup({3, 3, 7});
  EXPECT_EQ(e.rows(), 3);
  EXPECT_EQ(e.cols(), 4);
  // Push embedding 3 towards zero.
  Sgd opt(emb.Parameters(), 0.5f);
  for (int i = 0; i < 50; ++i) {
    opt.ZeroGrad();
    Tensor loss = SquaredNorm(emb.Lookup({3}));
    loss.Backward();
    opt.Step();
  }
  EXPECT_LT(SquaredNorm(emb.Lookup({3})).item(), 1e-3f);
  EXPECT_GT(SquaredNorm(emb.Lookup({7})).item(), 1e-3f);  // untouched row
}

TEST(AllocationTrackerTest, CountsAllocatedFloats) {
  AllocationTracker::Reset();
  Tensor::Zeros(10, 10);
  Tensor::Zeros(5, 2);
  EXPECT_EQ(AllocationTracker::allocated_floats(), 110);
  EXPECT_EQ(AllocationTracker::allocated_bytes(), 440);
}

}  // namespace
}  // namespace tensor
}  // namespace zoomer
