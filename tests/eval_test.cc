// Tests for evaluation metrics: AUC (including ties), error metrics,
// HitRate@K, CDF helpers, and the online A/B metrics.
#include <gtest/gtest.h>

#include <cmath>

#include "eval/metrics.h"

namespace zoomer {
namespace eval {
namespace {

TEST(AucTest, PerfectSeparationIsOne) {
  EXPECT_DOUBLE_EQ(Auc({0.9f, 0.8f, 0.2f, 0.1f}, {1, 1, 0, 0}), 1.0);
}

TEST(AucTest, InvertedSeparationIsZero) {
  EXPECT_DOUBLE_EQ(Auc({0.1f, 0.2f, 0.8f, 0.9f}, {1, 1, 0, 0}), 0.0);
}

TEST(AucTest, RandomUninformativeScoresNearHalf) {
  // All scores identical => ties get half credit => exactly 0.5.
  EXPECT_DOUBLE_EQ(Auc({0.5f, 0.5f, 0.5f, 0.5f}, {1, 0, 1, 0}), 0.5);
}

TEST(AucTest, KnownMixedCase) {
  // scores: pos {0.8, 0.4}, neg {0.6, 0.2}.
  // Pairs: (0.8>0.6)=1, (0.8>0.2)=1, (0.4<0.6)=0, (0.4>0.2)=1 -> 3/4.
  EXPECT_DOUBLE_EQ(Auc({0.8f, 0.4f, 0.6f, 0.2f}, {1, 1, 0, 0}), 0.75);
}

TEST(AucTest, TiesGetHalfCredit) {
  // pos 0.5, neg 0.5 -> 0.5; plus a winning pair.
  // scores: pos {0.5, 0.9}, neg {0.5}. pairs: tie=0.5, win=1 -> 0.75.
  EXPECT_DOUBLE_EQ(Auc({0.5f, 0.9f, 0.5f}, {1, 1, 0}), 0.75);
}

TEST(AucTest, DegenerateSingleClass) {
  EXPECT_DOUBLE_EQ(Auc({0.5f, 0.7f}, {1, 1}), 0.5);
  EXPECT_DOUBLE_EQ(Auc({0.5f, 0.7f}, {0, 0}), 0.5);
}

TEST(MaeRmseTest, KnownValues) {
  std::vector<float> pred = {1.0f, 2.0f, 3.0f};
  std::vector<float> label = {1.5f, 1.5f, 3.5f};
  EXPECT_NEAR(Mae(pred, label), 0.5, 1e-9);
  EXPECT_NEAR(Rmse(pred, label), 0.5, 1e-9);
}

TEST(MaeRmseTest, RmseDominatesMaeOnOutliers) {
  std::vector<float> pred = {0.0f, 0.0f, 0.0f, 0.0f};
  std::vector<float> label = {0.0f, 0.0f, 0.0f, 4.0f};
  EXPECT_NEAR(Mae(pred, label), 1.0, 1e-9);
  EXPECT_NEAR(Rmse(pred, label), 2.0, 1e-9);
}

TEST(MaeRmseTest, EmptyIsZero) {
  EXPECT_EQ(Mae({}, {}), 0.0);
  EXPECT_EQ(Rmse({}, {}), 0.0);
}

TEST(HitRateTest, CountsRanksBelowK) {
  std::vector<int> ranks = {0, 5, 99, 100, 250};
  EXPECT_DOUBLE_EQ(HitRateAtK(ranks, 100), 3.0 / 5.0);
  EXPECT_DOUBLE_EQ(HitRateAtK(ranks, 200), 4.0 / 5.0);
  EXPECT_DOUBLE_EQ(HitRateAtK(ranks, 300), 1.0);
  EXPECT_DOUBLE_EQ(HitRateAtK(ranks, 1), 1.0 / 5.0);
}

TEST(HitRateTest, MonotoneInK) {
  std::vector<int> ranks = {3, 17, 42, 95, 120, 260};
  double prev = 0.0;
  for (int k : {10, 50, 100, 200, 300}) {
    double hr = HitRateAtK(ranks, k);
    EXPECT_GE(hr, prev);
    prev = hr;
  }
}

TEST(RankOfTest, CountsCandidatesAtOrAbove) {
  EXPECT_EQ(RankOf(0.9f, {0.1f, 0.2f, 0.3f}), 0);
  EXPECT_EQ(RankOf(0.25f, {0.1f, 0.2f, 0.3f}), 1);
  EXPECT_EQ(RankOf(0.05f, {0.1f, 0.2f, 0.3f}), 3);
  EXPECT_EQ(RankOf(0.2f, {0.1f, 0.2f, 0.3f}), 2);  // tie counts above
}

TEST(CdfTest, MonotoneAndNormalized) {
  auto cdf = EmpiricalCdf({3.0, 1.0, 2.0, 2.0});
  ASSERT_EQ(cdf.size(), 4u);
  EXPECT_DOUBLE_EQ(cdf.front().first, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().first, 3.0);
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].first, cdf[i].first);
    EXPECT_LT(cdf[i - 1].second, cdf[i].second);
  }
}

TEST(CdfTest, FractionBelow) {
  std::vector<double> v = {-0.5, -0.1, 0.0, 0.1, 0.5};
  EXPECT_DOUBLE_EQ(FractionBelow(v, 0.0), 2.0 / 5.0);
  EXPECT_DOUBLE_EQ(FractionBelow(v, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(FractionBelow(v, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(FractionBelow({}, 0.0), 0.0);
}

TEST(OnlineMetricsTest, FormulasMatchPaperDefinitions) {
  OnlineMetrics m;
  m.impressions = 10000;
  m.clicks = 250;
  m.revenue = 500.0;
  EXPECT_DOUBLE_EQ(m.Ctr(), 0.025);
  EXPECT_DOUBLE_EQ(m.Ppc(), 2.0);
  EXPECT_DOUBLE_EQ(m.Rpm(), 50.0);  // 500/10000*1000
}

TEST(OnlineMetricsTest, ZeroDenominatorsSafe) {
  OnlineMetrics m;
  EXPECT_DOUBLE_EQ(m.Ctr(), 0.0);
  EXPECT_DOUBLE_EQ(m.Ppc(), 0.0);
  EXPECT_DOUBLE_EQ(m.Rpm(), 0.0);
}

TEST(LiftTest, PercentLift) {
  EXPECT_NEAR(LiftPercent(1.02, 1.0), 2.0, 1e-9);
  EXPECT_NEAR(LiftPercent(0.98, 1.0), -2.0, 1e-9);
  EXPECT_DOUBLE_EQ(LiftPercent(1.0, 0.0), 0.0);
}

}  // namespace
}  // namespace eval
}  // namespace zoomer
