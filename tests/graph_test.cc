// Tests for the graph substrate: alias tables, MinHash/LSH, heterogeneous
// CSR storage, and log-to-graph construction rules from paper Sec. II.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/random.h"
#include "graph/alias_table.h"
#include "graph/graph_builder.h"
#include "graph/graph_view.h"
#include "graph/hetero_graph.h"
#include "graph/minhash.h"
#include "graph/segmented_csr.h"
#include "graph/session_log.h"

namespace zoomer {
namespace graph {
namespace {

// --- AliasTable --------------------------------------------------------------

class AliasTableDistributionTest
    : public ::testing::TestWithParam<std::vector<double>> {};

TEST_P(AliasTableDistributionTest, EmpiricalMatchesWeights) {
  const auto weights = GetParam();
  AliasTable table(weights);
  Rng rng(101);
  const int n = 200000;
  std::vector<int> counts(weights.size(), 0);
  for (int i = 0; i < n; ++i) ++counts[table.Sample(&rng)];
  double total = 0.0;
  for (double w : weights) total += w;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double expected = weights[i] / total;
    const double observed = counts[i] / double(n);
    EXPECT_NEAR(observed, expected, 0.01)
        << "bucket " << i << " of " << weights.size();
  }
}

INSTANTIATE_TEST_SUITE_P(
    WeightVectors, AliasTableDistributionTest,
    ::testing::Values(std::vector<double>{1.0},
                      std::vector<double>{1.0, 1.0},
                      std::vector<double>{1.0, 2.0, 3.0, 4.0},
                      std::vector<double>{0.0, 1.0, 0.0, 3.0},
                      std::vector<double>{10.0, 0.1, 0.1, 0.1, 0.1},
                      std::vector<double>{5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0,
                                          5.0}));

TEST(AliasTableTest, ZeroWeightNeverSampled) {
  AliasTable table(std::vector<double>{0.0, 1.0, 0.0});
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(table.Sample(&rng), 1u);
}

TEST(AliasTableTest, AllZeroFallsBackToUniform) {
  AliasTable table(std::vector<double>{0.0, 0.0, 0.0, 0.0});
  Rng rng(5);
  std::set<size_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(table.Sample(&rng));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(AliasTableTest, EmptyTableProperties) {
  AliasTable table;
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.size(), 0u);
}

TEST(AliasTableTest, SampleBatchMatchesRepeatedSampleBitIdentical) {
  // The batched (SIMD) resolve must consume the RNG exactly like repeated
  // single draws and land on the same buckets — batch sizes straddle the
  // internal chunk width to cover full-chunk, partial-tail, and sub-chunk
  // paths.
  AliasTable table(std::vector<double>{1.0, 2.0, 0.0, 3.5, 0.25, 7.0, 1.0});
  for (const size_t batch : {1u, 5u, 63u, 64u, 65u, 200u}) {
    Rng single(915 + batch), batched(915 + batch);
    std::vector<uint32_t> want(batch);
    for (size_t i = 0; i < batch; ++i) {
      want[i] = static_cast<uint32_t>(table.Sample(&single));
    }
    std::vector<uint32_t> got(batch);
    table.SampleBatch(&batched, {got.data(), got.size()});
    EXPECT_EQ(got, want) << "batch " << batch;
    // Both paths drained the same number of words.
    EXPECT_EQ(single.NextUint64(), batched.NextUint64());
  }
}

TEST(AliasTableTest, SampleBatchEmpiricalMatchesWeights) {
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  AliasTable table(weights);
  Rng rng(131);
  const int n = 200000;
  std::vector<uint32_t> out(n);
  table.SampleBatch(&rng, {out.data(), out.size()});
  std::vector<int> counts(weights.size(), 0);
  for (uint32_t v : out) ++counts[v];
  for (size_t i = 0; i < weights.size(); ++i) {
    EXPECT_NEAR(counts[i] / double(n), weights[i] / 10.0, 0.01);
  }
}

// --- MinHash ------------------------------------------------------------------

class MinHashAccuracyTest : public ::testing::TestWithParam<double> {};

TEST_P(MinHashAccuracyTest, EstimateTracksExactJaccard) {
  const double overlap = GetParam();
  Rng rng(7);
  // Build two sets with controlled overlap out of a 200-token universe.
  const int set_size = 100;
  std::vector<uint64_t> a, b;
  const int shared = static_cast<int>(overlap * set_size);
  for (int i = 0; i < shared; ++i) {
    a.push_back(i);
    b.push_back(i);
  }
  for (int i = shared; i < set_size; ++i) {
    a.push_back(1000 + i);
    b.push_back(2000 + i);
  }
  MinHasher hasher(256);
  const double exact = MinHasher::ExactJaccard(a, b);
  const double est =
      MinHasher::EstimateJaccard(hasher.Signature(a), hasher.Signature(b));
  EXPECT_NEAR(est, exact, 0.08) << "overlap " << overlap;
}

INSTANTIATE_TEST_SUITE_P(OverlapLevels, MinHashAccuracyTest,
                         ::testing::Values(0.0, 0.2, 0.5, 0.8, 1.0));

TEST(MinHashTest, IdenticalSetsHaveSimilarityOne) {
  MinHasher hasher(64);
  std::vector<uint64_t> s = {1, 5, 9, 42};
  EXPECT_DOUBLE_EQ(
      MinHasher::EstimateJaccard(hasher.Signature(s), hasher.Signature(s)),
      1.0);
}

TEST(MinHashTest, ExactJaccardEdgeCases) {
  EXPECT_DOUBLE_EQ(MinHasher::ExactJaccard({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(MinHasher::ExactJaccard({1}, {}), 0.0);
  EXPECT_DOUBLE_EQ(MinHasher::ExactJaccard({1, 2}, {1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(MinHasher::ExactJaccard({1, 2}, {2, 3}), 1.0 / 3.0);
}

TEST(MinHashLshTest, SimilarSetsBecomeCandidates) {
  MinHasher hasher(32);
  MinHashLsh lsh(8, 4);
  std::vector<uint64_t> a = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<uint64_t> b = {1, 2, 3, 4, 5, 6, 7, 9};  // high overlap
  std::vector<uint64_t> c = {100, 200, 300, 400, 500, 600, 700, 800};
  lsh.Insert(0, hasher.Signature(a));
  lsh.Insert(1, hasher.Signature(b));
  lsh.Insert(2, hasher.Signature(c));
  auto pairs = lsh.CandidatePairs();
  const bool has_ab =
      std::find(pairs.begin(), pairs.end(), std::make_pair(int64_t{0}, int64_t{1})) !=
      pairs.end();
  EXPECT_TRUE(has_ab);
  const bool has_ac =
      std::find(pairs.begin(), pairs.end(), std::make_pair(int64_t{0}, int64_t{2})) !=
      pairs.end();
  EXPECT_FALSE(has_ac);
}

// --- HeteroGraph ---------------------------------------------------------------

HeteroGraph MakeTriangleGraph() {
  // user0 -- query1 -- item2, plus user0 -- item2.
  HeteroGraphBuilder b(2);
  b.AddNode(NodeType::kUser, {1.0f, 0.0f}, {0});
  b.AddNode(NodeType::kQuery, {0.0f, 1.0f}, {1, 2});
  b.AddNode(NodeType::kItem, {0.5f, 0.5f}, {3, 4, 5});
  EXPECT_TRUE(b.AddEdge(0, 1, RelationKind::kClick, 2.0f).ok());
  EXPECT_TRUE(b.AddEdge(1, 2, RelationKind::kClick, 1.0f).ok());
  EXPECT_TRUE(b.AddEdge(0, 2, RelationKind::kSession, 3.0f).ok());
  return b.Build();
}

TEST(HeteroGraphTest, BasicCounts) {
  HeteroGraph g = MakeTriangleGraph();
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_edges(), 6);  // 3 undirected edges = 6 half-edges
  EXPECT_EQ(g.num_nodes_of_type(NodeType::kUser), 1);
  EXPECT_EQ(g.num_nodes_of_type(NodeType::kQuery), 1);
  EXPECT_EQ(g.num_nodes_of_type(NodeType::kItem), 1);
  EXPECT_EQ(g.content_dim(), 2);
}

TEST(HeteroGraphTest, NodeAccessors) {
  HeteroGraph g = MakeTriangleGraph();
  EXPECT_EQ(g.node_type(0), NodeType::kUser);
  EXPECT_EQ(g.node_type(2), NodeType::kItem);
  EXPECT_FLOAT_EQ(g.content(1)[1], 1.0f);
  EXPECT_EQ(g.slots(2).size(), 3u);
  EXPECT_EQ(g.slots(2)[0], 3);
}

TEST(HeteroGraphTest, NeighborBlocksSortedByType) {
  HeteroGraph g = MakeTriangleGraph();
  EXPECT_EQ(g.degree(0), 2);
  auto ids = g.neighbor_ids(0);
  // Neighbors of user0: query1 (type 1), item2 (type 2) in type order.
  EXPECT_EQ(ids[0], 1);
  EXPECT_EQ(ids[1], 2);
  auto q_nbrs = g.NeighborsOfType(0, NodeType::kQuery);
  ASSERT_EQ(q_nbrs.size(), 1u);
  EXPECT_EQ(q_nbrs[0], 1);
  EXPECT_EQ(g.NeighborsOfType(0, NodeType::kUser).size(), 0u);
}

TEST(HeteroGraphTest, EdgeWeightsAndKindsPreserved) {
  HeteroGraph g = MakeTriangleGraph();
  auto w = g.neighbor_weights(0);
  auto k = g.neighbor_kinds(0);
  EXPECT_FLOAT_EQ(w[0], 2.0f);  // edge to query1
  EXPECT_EQ(k[0], RelationKind::kClick);
  EXPECT_FLOAT_EQ(w[1], 3.0f);  // edge to item2
  EXPECT_EQ(k[1], RelationKind::kSession);
}

TEST(HeteroGraphTest, WeightedSamplingFollowsAliasTable) {
  HeteroGraph g = MakeTriangleGraph();
  Rng rng(11);
  int to_query = 0, to_item = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    NodeId nb = g.SampleNeighbor(0, &rng);
    (nb == 1 ? to_query : to_item) += 1;
  }
  // weights 2:3
  EXPECT_NEAR(to_query / double(n), 0.4, 0.02);
  EXPECT_NEAR(to_item / double(n), 0.6, 0.02);
}

TEST(HeteroGraphTest, SampleNeighborIsolatedNodeReturnsMinusOne) {
  HeteroGraphBuilder b(1);
  b.AddNode(NodeType::kUser, {0.0f}, {});
  HeteroGraph g = b.Build();
  Rng rng(1);
  EXPECT_EQ(g.SampleNeighbor(0, &rng), -1);
}

TEST(HeteroGraphTest, SampleNeighborsUniformDistinct) {
  HeteroGraphBuilder b(1);
  b.AddNode(NodeType::kUser, {0.0f}, {});
  for (int i = 0; i < 20; ++i) {
    b.AddNode(NodeType::kItem, {0.0f}, {});
    EXPECT_TRUE(b.AddEdge(0, i + 1, RelationKind::kClick).ok());
  }
  HeteroGraph g = b.Build();
  Rng rng(13);
  auto sample = g.SampleNeighborsUniform(0, 8, &rng);
  EXPECT_EQ(sample.size(), 8u);
  std::set<NodeId> uniq(sample.begin(), sample.end());
  EXPECT_EQ(uniq.size(), 8u);
  // Degree smaller than k returns the full block.
  auto all = g.SampleNeighborsUniform(0, 50, &rng);
  EXPECT_EQ(all.size(), 20u);
}

TEST(HeteroGraphBuilderTest, RejectsBadEdges) {
  HeteroGraphBuilder b(1);
  b.AddNode(NodeType::kUser, {0.0f}, {});
  b.AddNode(NodeType::kItem, {0.0f}, {});
  EXPECT_FALSE(b.AddEdge(0, 0, RelationKind::kClick).ok());   // self loop
  EXPECT_FALSE(b.AddEdge(0, 5, RelationKind::kClick).ok());   // out of range
  EXPECT_FALSE(b.AddEdge(-1, 1, RelationKind::kClick).ok());  // negative
  EXPECT_FALSE(b.AddEdge(0, 1, RelationKind::kClick, -2.0f).ok());  // neg w
  EXPECT_TRUE(b.AddEdge(0, 1, RelationKind::kClick, 1.0f).ok());
}

TEST(HeteroGraphTest, MemoryBytesPositiveAndDebugString) {
  HeteroGraph g = MakeTriangleGraph();
  EXPECT_GT(g.MemoryBytes(), 0u);
  EXPECT_NE(g.DebugString().find("nodes=3"), std::string::npos);
}

// --- Graph construction from logs ---------------------------------------------

std::vector<NodeSpec> MakeLogNodes() {
  std::vector<NodeSpec> nodes;
  // 2 users, 2 queries, 3 items. content_dim 2.
  for (int i = 0; i < 2; ++i) {
    nodes.push_back({NodeType::kUser, {1.0f, 0.0f}, {i}, {}});
  }
  for (int i = 0; i < 2; ++i) {
    nodes.push_back(
        {NodeType::kQuery, {0.0f, 1.0f}, {i}, {1ull, 2ull, 3ull, 100ull + static_cast<uint64_t>(i)}});
  }
  for (int i = 0; i < 3; ++i) {
    nodes.push_back(
        {NodeType::kItem, {0.5f, 0.5f}, {i}, {1ull, 2ull, 3ull, 200ull + static_cast<uint64_t>(i)}});
  }
  return nodes;
}

bool HasEdge(const HeteroGraph& g, NodeId a, NodeId b, RelationKind kind) {
  auto ids = g.neighbor_ids(a);
  auto kinds = g.neighbor_kinds(a);
  for (size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] == b && kinds[i] == kind) return true;
  }
  return false;
}

TEST(GraphBuilderTest, InteractionAndSessionEdgesFollowPaperRules) {
  auto nodes = MakeLogNodes();
  SessionLog log;
  // user0 searched query2 (node id 2), clicked items 4,5 (node ids 4,5).
  log.push_back({0, 2, {4, 5}, 10});
  GraphBuildOptions opt;
  opt.add_similarity_edges = false;
  auto result = BuildGraphFromLogs(nodes, log, opt);
  ASSERT_TRUE(result.ok());
  const HeteroGraph& g = result.value();
  EXPECT_TRUE(HasEdge(g, 0, 2, RelationKind::kClick));  // user-query
  EXPECT_TRUE(HasEdge(g, 4, 2, RelationKind::kClick));  // item-query
  EXPECT_TRUE(HasEdge(g, 5, 2, RelationKind::kClick));
  EXPECT_TRUE(HasEdge(g, 0, 4, RelationKind::kClick));  // user-item
  EXPECT_TRUE(HasEdge(g, 4, 5, RelationKind::kSession));  // adjacent clicks
}

TEST(GraphBuilderTest, DuplicateInteractionsCoalesceIntoWeight) {
  auto nodes = MakeLogNodes();
  SessionLog log;
  log.push_back({0, 2, {4}, 1});
  log.push_back({0, 2, {4}, 2});
  log.push_back({0, 2, {4}, 3});
  GraphBuildOptions opt;
  opt.add_similarity_edges = false;
  auto result = BuildGraphFromLogs(nodes, log, opt);
  ASSERT_TRUE(result.ok());
  const HeteroGraph& g = result.value();
  auto ids = g.neighbor_ids(0);
  auto w = g.neighbor_weights(0);
  bool found = false;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] == 2) {
      EXPECT_FLOAT_EQ(w[i], 3.0f);  // 3 repeated user-query interactions
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(GraphBuilderTest, SimilarityEdgesConnectOverlappingTokenSets) {
  auto nodes = MakeLogNodes();
  SessionLog log;
  log.push_back({0, 2, {4}, 1});
  GraphBuildOptions opt;
  opt.add_similarity_edges = true;
  opt.similarity_threshold = 0.2;
  auto result = BuildGraphFromLogs(nodes, log, opt);
  ASSERT_TRUE(result.ok());
  const HeteroGraph& g = result.value();
  // Queries/items share tokens {1,2,3}; expect at least one similarity edge.
  int64_t sim_edges = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto kinds = g.neighbor_kinds(v);
    for (auto k : kinds) {
      if (k == RelationKind::kSimilarity) ++sim_edges;
    }
  }
  EXPECT_GT(sim_edges, 0);
  // Users never receive similarity edges.
  for (NodeId u = 0; u < 2; ++u) {
    for (auto k : g.neighbor_kinds(u)) {
      EXPECT_NE(k, RelationKind::kSimilarity);
    }
  }
}

TEST(GraphBuilderTest, TimeWindowFiltersLateSessions) {
  auto nodes = MakeLogNodes();
  SessionLog log;
  log.push_back({0, 2, {4}, 100});
  log.push_back({1, 3, {5}, 5000});
  GraphBuildOptions opt;
  opt.add_similarity_edges = false;
  opt.time_window_seconds = 1000;
  auto result = BuildGraphFromLogs(nodes, log, opt);
  ASSERT_TRUE(result.ok());
  const HeteroGraph& g = result.value();
  EXPECT_TRUE(HasEdge(g, 0, 2, RelationKind::kClick));
  EXPECT_FALSE(HasEdge(g, 1, 3, RelationKind::kClick));  // outside window
}

TEST(GraphBuilderTest, RejectsInvalidLogs) {
  auto nodes = MakeLogNodes();
  SessionLog log;
  log.push_back({0, 99, {4}, 1});  // unknown query id
  GraphBuildOptions opt;
  EXPECT_FALSE(BuildGraphFromLogs(nodes, log, opt).ok());
  SessionLog log2;
  log2.push_back({0, 2, {99}, 1});  // unknown item id
  EXPECT_FALSE(BuildGraphFromLogs(nodes, log2, opt).ok());
  EXPECT_FALSE(BuildGraphFromLogs({}, {}, opt).ok());  // empty nodes
}

// --- SegmentedCsr (node-partitioned base for incremental compaction) --------

/// A graph wide enough to span several 4-row segments, with deterministic
/// structure: users 0..3, queries 4..7, items 8..15, edges wired so every
/// row has a non-trivial typed block.
HeteroGraph MakeWideGraph() {
  HeteroGraphBuilder b(2);
  for (int i = 0; i < 4; ++i) {
    b.AddNode(NodeType::kUser, {1.0f * i, 0.0f}, {i});
  }
  for (int i = 0; i < 4; ++i) {
    b.AddNode(NodeType::kQuery, {0.0f, 1.0f * i}, {10 + i, 20 + i});
  }
  for (int i = 0; i < 8; ++i) {
    b.AddNode(NodeType::kItem, {0.5f, 0.5f * i}, {30 + i});
  }
  for (NodeId u = 0; u < 4; ++u) {
    EXPECT_TRUE(b.AddEdge(u, 4 + u, RelationKind::kClick, 1.0f + u).ok());
  }
  for (NodeId q = 4; q < 8; ++q) {
    for (NodeId it = 8; it < 16; it += 2) {
      EXPECT_TRUE(
          b.AddEdge(q, it, RelationKind::kClick, 0.5f * (it - 7)).ok());
    }
  }
  EXPECT_TRUE(b.AddEdge(8, 10, RelationKind::kSession, 2.0f).ok());
  return b.Build();
}

TEST(SegmentedCsrTest, PartitionMatchesSourceRowForRow) {
  HeteroGraph g = MakeWideGraph();
  SegmentedCsr seg(g, /*span=*/4);
  EXPECT_EQ(seg.num_nodes(), g.num_nodes());
  EXPECT_EQ(seg.num_edges(), g.num_edges());
  EXPECT_EQ(seg.content_dim(), g.content_dim());
  EXPECT_EQ(seg.num_segments(), 4);
  EXPECT_EQ(seg.segment_span(), 4);
  for (int t = 0; t < kNumNodeTypes; ++t) {
    EXPECT_EQ(seg.num_nodes_of_type(static_cast<NodeType>(t)),
              g.num_nodes_of_type(static_cast<NodeType>(t)));
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(seg.node_type(v), g.node_type(v));
    EXPECT_EQ(seg.degree(v), g.degree(v));
    for (int d = 0; d < g.content_dim(); ++d) {
      EXPECT_FLOAT_EQ(seg.content(v)[d], g.content(v)[d]);
    }
    ASSERT_EQ(seg.slots(v).size(), g.slots(v).size());
    for (size_t i = 0; i < g.slots(v).size(); ++i) {
      EXPECT_EQ(seg.slots(v)[i], g.slots(v)[i]);
    }
    auto sids = seg.neighbor_ids(v);
    auto gids = g.neighbor_ids(v);
    ASSERT_EQ(sids.size(), gids.size());
    for (size_t i = 0; i < gids.size(); ++i) {
      EXPECT_EQ(sids[i], gids[i]);
      EXPECT_FLOAT_EQ(seg.neighbor_weights(v)[i], g.neighbor_weights(v)[i]);
      EXPECT_EQ(seg.neighbor_kinds(v)[i], g.neighbor_kinds(v)[i]);
    }
    for (int t = 0; t < kNumNodeTypes; ++t) {
      auto styped = seg.NeighborsOfType(v, static_cast<NodeType>(t));
      auto gtyped = g.NeighborsOfType(v, static_cast<NodeType>(t));
      ASSERT_EQ(styped.size(), gtyped.size());
      for (size_t i = 0; i < gtyped.size(); ++i) {
        EXPECT_EQ(styped[i], gtyped[i]);
      }
    }
  }
}

TEST(SegmentedCsrTest, TypedCsrBlockAlignsParallelSpans) {
  HeteroGraph g = MakeWideGraph();
  SegmentedCsr seg(g, 4);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (int t = 0; t < kNumNodeTypes; ++t) {
      const NeighborBlock sb = TypedCsrBlock(seg, v, static_cast<NodeType>(t));
      const NeighborBlock gb = TypedCsrBlock(g, v, static_cast<NodeType>(t));
      ASSERT_EQ(sb.size(), gb.size());
      for (int64_t i = 0; i < gb.size(); ++i) {
        EXPECT_EQ(sb.ids[i], gb.ids[i]);
        EXPECT_FLOAT_EQ(sb.weights[i], gb.weights[i]);
        EXPECT_EQ(sb.kinds[i], gb.kinds[i]);
      }
    }
  }
}

TEST(SegmentedCsrTest, SamplingMatchesMonolithicDistribution) {
  HeteroGraph g = MakeWideGraph();
  SegmentedCsr seg(g, 4);
  // Query 4's weighted item distribution through the segment alias tables
  // must match the exact weights (same guarantee the monolithic CSR gives).
  const NodeId q = 4;
  std::map<NodeId, double> want;
  double total = 0.0;
  for (size_t i = 0; i < g.neighbor_ids(q).size(); ++i) {
    want[g.neighbor_ids(q)[i]] += g.neighbor_weights(q)[i];
    total += g.neighbor_weights(q)[i];
  }
  Rng rng(23);
  std::map<NodeId, int> got;
  const int n = 60000;
  for (int i = 0; i < n; ++i) ++got[seg.SampleNeighbor(q, &rng)];
  for (const auto& [nb, w] : want) {
    EXPECT_NEAR(got[nb] / static_cast<double>(n), w / total, 0.02);
  }
}

TEST(SegmentedCsrTest, SuccessorSharesUntouchedSegments) {
  HeteroGraph g = MakeWideGraph();
  auto base = std::make_shared<const SegmentedCsr>(g, 4, /*generation=*/1);
  // Rebuild segment 1 (rows 4..7) with one extra edge on row 4.
  CsrSegmentBuilder builder(4, 4, g.content_dim(), /*generation=*/2,
                            [&g](NodeId id) { return g.node_type(id); });
  for (NodeId r = 4; r < 8; ++r) {
    std::vector<NeighborEntry> nbrs;
    auto ids = g.neighbor_ids(r);
    for (size_t i = 0; i < ids.size(); ++i) {
      nbrs.push_back({ids[i], g.neighbor_weights(r)[i],
                      g.neighbor_kinds(r)[i]});
    }
    if (r == 4) nbrs.push_back({15, 9.0f, RelationKind::kSimilarity});
    builder.AddRow(g.node_type(r), {g.content(r), 2u}, g.slots(r),
                   std::move(nbrs));
  }
  auto next = base->Successor({{1, builder.Build()}});

  // Untouched segments are the same objects (zero-copy sharing), the
  // rebuilt one is new with its own generation.
  EXPECT_EQ(next->segment_ptr(0), base->segment_ptr(0));
  EXPECT_EQ(next->segment_ptr(2), base->segment_ptr(2));
  EXPECT_EQ(next->segment_ptr(3), base->segment_ptr(3));
  EXPECT_NE(next->segment_ptr(1), base->segment_ptr(1));
  EXPECT_EQ(next->generation_of(0), 1u);
  EXPECT_EQ(next->generation_of(5), 2u);
  EXPECT_EQ(base->generation_of(5), 1u);
  // Beyond coverage: the never-folded sentinel.
  EXPECT_EQ(next->generation_of(16), 0u);

  // The new edge exists only through the successor; old spans still valid.
  EXPECT_EQ(next->degree(4), base->degree(4) + 1);
  EXPECT_EQ(base->num_edges() + 1, next->num_edges());
  auto old_span = base->neighbor_ids(4);
  EXPECT_EQ(old_span.size(), static_cast<size_t>(base->degree(4)));
}

TEST(SegmentedCsrViewTest, GraphViewParityWithCsrGraphView) {
  HeteroGraph g = MakeWideGraph();
  SegmentedCsr seg(g, 4);
  SegmentedCsrView sv(seg);
  CsrGraphView cv(g);
  NeighborScratch s1, s2;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(sv.degree(v), cv.degree(v));
    const NeighborBlock a = sv.Neighbors(v, &s1);
    const NeighborBlock b = cv.Neighbors(v, &s2);
    ASSERT_EQ(a.size(), b.size());
    for (int64_t i = 0; i < b.size(); ++i) {
      EXPECT_EQ(a.ids[i], b.ids[i]);
      EXPECT_FLOAT_EQ(a.weights[i], b.weights[i]);
    }
    // Identical alias layouts + identical RNG stream => identical draws.
    Rng ra(7 + v), rb(7 + v);
    for (int i = 0; i < 32; ++i) {
      EXPECT_EQ(sv.SampleNeighbor(v, &ra), cv.SampleNeighbor(v, &rb));
    }
  }
}

// --- Batched sampling (SampleManyNeighbors) ----------------------------------

TEST(SampleManyNeighborsTest, MatchesSingleDrawLoopOnBothStaticViews) {
  HeteroGraph g = MakeWideGraph();
  SegmentedCsr seg(g, 4);
  CsrGraphView cv(g);
  SegmentedCsrView sv(seg);
  std::vector<NodeId> nodes;
  for (NodeId v = 0; v < g.num_nodes(); ++v) nodes.push_back(v);
  const int k = 7;
  for (const GraphView* view : {static_cast<const GraphView*>(&cv),
                                static_cast<const GraphView*>(&sv)}) {
    // Contract: identical seed => the batch is bit-identical to the loop.
    Rng batched(41), looped(41);
    std::vector<NodeId> got;
    view->SampleManyNeighbors({nodes.data(), nodes.size()}, k, &batched, &got);
    ASSERT_EQ(got.size(), nodes.size() * k);
    for (size_t i = 0; i < nodes.size(); ++i) {
      for (int j = 0; j < k; ++j) {
        EXPECT_EQ(got[i * k + j], view->SampleNeighbor(nodes[i], &looped))
            << "node " << nodes[i] << " draw " << j;
      }
    }
    EXPECT_EQ(batched.NextUint64(), looped.NextUint64());
  }
}

TEST(SampleManyNeighborsTest, IsolatedNodesYieldMinusOneRows) {
  HeteroGraphBuilder b(1);
  b.AddNode(NodeType::kUser, {0.0f}, {});  // isolated
  b.AddNode(NodeType::kItem, {0.0f}, {});
  b.AddNode(NodeType::kItem, {0.0f}, {});
  EXPECT_TRUE(b.AddEdge(1, 2, RelationKind::kClick).ok());
  HeteroGraph g = b.Build();
  CsrGraphView view(g);
  // Isolated nodes consume no RNG on either path, so rows after them still
  // line up with the loop.
  std::vector<NodeId> nodes = {0, 1, 0, 2};
  Rng batched(5), looped(5);
  std::vector<NodeId> got;
  view.SampleManyNeighbors({nodes.data(), nodes.size()}, 3, &batched, &got);
  ASSERT_EQ(got.size(), 12u);
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_EQ(got[i * 3 + j], view.SampleNeighbor(nodes[i], &looped));
    }
  }
  for (int j = 0; j < 3; ++j) {
    EXPECT_EQ(got[j], -1);      // row for node 0
    EXPECT_EQ(got[6 + j], -1);  // second row for node 0
  }
}

TEST(SampleManyNeighborsTest, KZeroAndEmptyBatchAreEmpty) {
  HeteroGraph g = MakeTriangleGraph();
  CsrGraphView view(g);
  Rng rng(1);
  std::vector<NodeId> out = {99};
  view.SampleManyNeighbors({}, 4, &rng, &out);
  EXPECT_TRUE(out.empty());
  std::vector<NodeId> nodes = {0, 1};
  view.SampleManyNeighbors({nodes.data(), nodes.size()}, 0, &rng, &out);
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace graph
}  // namespace zoomer
