// Cross-module integration tests: log -> graph -> save/load -> distributed
// engine -> Zoomer training -> embedding export -> ANN serving, exercising
// the full production pipeline of paper Sec. VI in one process.
#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "core/trainer.h"
#include "core/zoomer_model.h"
#include "data/taobao_generator.h"
#include "engine/distributed_graph_engine.h"
#include "graph/graph_io.h"
#include "serving/online_server.h"

namespace zoomer {
namespace {

data::RetrievalDataset SmallDataset() {
  data::TaobaoGeneratorOptions opt;
  opt.num_users = 80;
  opt.num_queries = 50;
  opt.num_items = 160;
  opt.num_sessions = 500;
  opt.num_categories = 6;
  opt.content_dim = 12;
  opt.seed = 71;
  return data::GenerateTaobaoDataset(opt);
}

TEST(GraphIoTest, SaveLoadRoundTripPreservesStructure) {
  auto ds = SmallDataset();
  const std::string path = "/tmp/zoomer_graph_roundtrip.bin";
  ASSERT_TRUE(graph::SaveGraph(ds.graph, path).ok());
  auto loaded = graph::LoadGraph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const auto& g = loaded.value();
  EXPECT_EQ(g.num_nodes(), ds.graph.num_nodes());
  EXPECT_EQ(g.num_edges(), ds.graph.num_edges());
  EXPECT_EQ(g.content_dim(), ds.graph.content_dim());
  for (graph::NodeId v = 0; v < g.num_nodes(); v += 17) {
    EXPECT_EQ(g.node_type(v), ds.graph.node_type(v));
    EXPECT_EQ(g.degree(v), ds.graph.degree(v));
    auto s1 = g.slots(v);
    auto s2 = ds.graph.slots(v);
    ASSERT_EQ(s1.size(), s2.size());
    for (size_t i = 0; i < s1.size(); ++i) EXPECT_EQ(s1[i], s2[i]);
    for (int d = 0; d < g.content_dim(); ++d) {
      EXPECT_FLOAT_EQ(g.content(v)[d], ds.graph.content(v)[d]);
    }
    // Neighbor sets (order may differ only within equal sort keys).
    std::multiset<graph::NodeId> n1(g.neighbor_ids(v).begin(),
                                    g.neighbor_ids(v).end());
    std::multiset<graph::NodeId> n2(ds.graph.neighbor_ids(v).begin(),
                                    ds.graph.neighbor_ids(v).end());
    EXPECT_EQ(n1, n2);
  }
  std::remove(path.c_str());
}

TEST(GraphIoTest, LoadRejectsMissingAndCorruptFiles) {
  EXPECT_FALSE(graph::LoadGraph("/tmp/zoomer_no_such_file.bin").ok());
  const std::string path = "/tmp/zoomer_corrupt.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[] = "definitely not a graph";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  auto result = graph::LoadGraph(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(IntegrationTest, TrainOnLoadedGraphMatchesOriginal) {
  auto ds = SmallDataset();
  const std::string path = "/tmp/zoomer_graph_train.bin";
  ASSERT_TRUE(graph::SaveGraph(ds.graph, path).ok());
  auto loaded = graph::LoadGraph(path);
  ASSERT_TRUE(loaded.ok());
  std::remove(path.c_str());

  core::ZoomerConfig cfg;
  cfg.hidden_dim = 8;
  cfg.sampler.k = 4;
  cfg.seed = 2;
  core::ZoomerModel m1(&ds.graph, cfg);
  core::ZoomerModel m2(&loaded.value(), cfg);
  Rng r1(5), r2(5);
  // Identical graphs + identical seeds => identical logits.
  for (int i = 0; i < 5; ++i) {
    EXPECT_FLOAT_EQ(m1.ScoreLogit(ds.train[i], &r1).item(),
                    m2.ScoreLogit(ds.train[i], &r2).item());
  }
}

TEST(IntegrationTest, FullPipelineLogToServing) {
  // 1. Workload + graph (data/, graph/).
  auto ds = SmallDataset();

  // 2. Distributed engine serves samples over the same graph (engine/).
  engine::EngineOptions eopt;
  eopt.num_shards = 2;
  eopt.replication_factor = 1;
  engine::DistributedGraphEngine eng(&ds.graph, eopt);
  engine::SampleRequest sreq;
  sreq.node = ds.train[0].user;
  sreq.k = 5;
  auto sresp = eng.Sample(sreq);
  ASSERT_TRUE(sresp.ok());

  // 3. Offline training (core/).
  core::ZoomerConfig cfg;
  cfg.hidden_dim = 8;
  cfg.sampler.k = 4;
  core::ZoomerModel model(&ds.graph, cfg);
  core::TrainOptions topt;
  topt.epochs = 1;
  topt.max_examples_per_epoch = 500;
  core::ZoomerTrainer trainer(&model, topt);
  auto result = trainer.Train(ds);
  EXPECT_GT(result.examples_seen, 0);

  // 4. Embedding export + online serving (serving/).
  Rng rng(3);
  const int d = cfg.hidden_dim;
  std::vector<float> node_emb(ds.graph.num_nodes() * d, 0.0f);
  for (graph::NodeId v = 0; v < ds.graph.num_nodes(); ++v) {
    std::vector<float> e;
    if (ds.graph.node_type(v) == graph::NodeType::kItem) {
      e = model.ItemEmbeddingInference(v);
    } else {
      auto t = model.EgoEmbedding(v, v, v, &rng);
      e.assign(t.data(), t.data() + d);
    }
    std::copy(e.begin(), e.end(), node_emb.begin() + v * d);
  }
  std::vector<float> item_emb(ds.all_items.size() * d);
  for (size_t i = 0; i < ds.all_items.size(); ++i) {
    std::copy(node_emb.begin() + ds.all_items[i] * d,
              node_emb.begin() + (ds.all_items[i] + 1) * d,
              item_emb.begin() + static_cast<int64_t>(i) * d);
  }
  serving::OnlineServerOptions sopt;
  sopt.embedding_dim = d;
  sopt.top_n = 10;
  serving::OnlineServer server(&ds.graph, sopt, std::move(node_emb),
                               ds.all_items, item_emb);
  server.WarmCache({ds.test[0].user, ds.test[0].query});
  auto resp = server.Handle({ds.test[0].user, ds.test[0].query});
  ASSERT_EQ(resp.items.size(), 10u);
  for (const auto& item : resp.items) {
    EXPECT_EQ(ds.graph.node_type(item.id), graph::NodeType::kItem);
  }
}

}  // namespace
}  // namespace zoomer
