// Tests for the synthetic workload generators: determinism, structural
// properties (category coherence, information-overload shape), and dataset
// hygiene (train/test split, no test-session leakage into the graph).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/movielens_generator.h"
#include "data/taobao_generator.h"

namespace zoomer {
namespace data {
namespace {

TaobaoGeneratorOptions SmallTaobao() {
  TaobaoGeneratorOptions opt;
  opt.num_users = 100;
  opt.num_queries = 60;
  opt.num_items = 200;
  opt.num_sessions = 600;
  opt.num_categories = 8;
  opt.content_dim = 16;
  opt.seed = 5;
  return opt;
}

TEST(TaobaoGeneratorTest, NodeCountsAndTypes) {
  auto ds = GenerateTaobaoDataset(SmallTaobao());
  EXPECT_EQ(ds.graph.num_nodes(), 100 + 60 + 200);
  EXPECT_EQ(ds.graph.num_nodes_of_type(graph::NodeType::kUser), 100);
  EXPECT_EQ(ds.graph.num_nodes_of_type(graph::NodeType::kQuery), 60);
  EXPECT_EQ(ds.graph.num_nodes_of_type(graph::NodeType::kItem), 200);
  EXPECT_EQ(ds.all_items.size(), 200u);
}

TEST(TaobaoGeneratorTest, DeterministicForSameSeed) {
  auto a = GenerateTaobaoDataset(SmallTaobao());
  auto b = GenerateTaobaoDataset(SmallTaobao());
  ASSERT_EQ(a.train.size(), b.train.size());
  for (size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train[i].user, b.train[i].user);
    EXPECT_EQ(a.train[i].item, b.train[i].item);
    EXPECT_EQ(a.train[i].label, b.train[i].label);
  }
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
}

TEST(TaobaoGeneratorTest, DifferentSeedsDiffer) {
  auto a = GenerateTaobaoDataset(SmallTaobao());
  auto opt = SmallTaobao();
  opt.seed = 99;
  auto b = GenerateTaobaoDataset(opt);
  EXPECT_NE(a.graph.num_edges(), b.graph.num_edges());
}

TEST(TaobaoGeneratorTest, TrainTestSplitFractions) {
  auto ds = GenerateTaobaoDataset(SmallTaobao());
  EXPECT_GT(ds.train.size(), 0u);
  EXPECT_GT(ds.test.size(), 0u);
  const double frac =
      double(ds.train.size()) / double(ds.train.size() + ds.test.size());
  EXPECT_NEAR(frac, 0.9, 0.05);
}

TEST(TaobaoGeneratorTest, LabelsAreBinaryWithNegatives) {
  auto ds = GenerateTaobaoDataset(SmallTaobao());
  size_t pos = 0, neg = 0;
  for (const auto& e : ds.train) {
    ASSERT_TRUE(e.label == 0.0f || e.label == 1.0f);
    (e.label > 0.5f ? pos : neg) += 1;
  }
  EXPECT_GT(pos, 0u);
  EXPECT_GT(neg, pos);  // negatives_per_positive = 3 (minus collisions)
}

TEST(TaobaoGeneratorTest, ExamplesReferenceCorrectNodeTypes) {
  auto ds = GenerateTaobaoDataset(SmallTaobao());
  for (const auto& e : ds.test) {
    EXPECT_EQ(ds.graph.node_type(e.user), graph::NodeType::kUser);
    EXPECT_EQ(ds.graph.node_type(e.query), graph::NodeType::kQuery);
    EXPECT_EQ(ds.graph.node_type(e.item), graph::NodeType::kItem);
  }
}

TEST(TaobaoGeneratorTest, PositiveClicksMostlyMatchQueryCategory) {
  auto ds = GenerateTaobaoDataset(SmallTaobao());
  int match = 0, total = 0;
  for (const auto& e : ds.train) {
    if (e.label < 0.5f) continue;
    ++total;
    if (ds.category[e.query] == ds.category[e.item]) ++match;
  }
  ASSERT_GT(total, 0);
  // p_click_in_category = 0.85 by default.
  EXPECT_GT(double(match) / total, 0.7);
}

TEST(TaobaoGeneratorTest, ContentVectorsClusterByCategory) {
  auto ds = GenerateTaobaoDataset(SmallTaobao());
  const int dim = ds.graph.content_dim();
  // Mean cosine within same-category items should exceed cross-category.
  auto cosine = [&](graph::NodeId a, graph::NodeId b) {
    const float* x = ds.graph.content(a);
    const float* y = ds.graph.content(b);
    float dot = 0, nx = 0, ny = 0;
    for (int d = 0; d < dim; ++d) {
      dot += x[d] * y[d];
      nx += x[d] * x[d];
      ny += y[d] * y[d];
    }
    return dot / (std::sqrt(nx) * std::sqrt(ny) + 1e-9f);
  };
  double same = 0, cross = 0;
  int n_same = 0, n_cross = 0;
  for (size_t i = 0; i < ds.all_items.size(); i += 7) {
    for (size_t j = i + 1; j < ds.all_items.size(); j += 13) {
      const auto a = ds.all_items[i], b = ds.all_items[j];
      if (ds.category[a] == ds.category[b]) {
        same += cosine(a, b);
        ++n_same;
      } else {
        cross += cosine(a, b);
        ++n_cross;
      }
    }
  }
  ASSERT_GT(n_same, 0);
  ASSERT_GT(n_cross, 0);
  EXPECT_GT(same / n_same, cross / n_cross + 0.2);
}

TEST(TaobaoGeneratorTest, GraphBuiltFromTrainingWindowOnly) {
  auto opt = SmallTaobao();
  auto ds = GenerateTaobaoDataset(opt);
  // The last 10% of sessions produce test examples; the graph must not grow
  // when they are appended (it was built before). We verify indirectly: the
  // log retains all sessions but the graph edge count matches a rebuild from
  // the train window.
  const size_t split =
      static_cast<size_t>(ds.log.size() * opt.train_fraction);
  EXPECT_GT(ds.log.size(), split);
  // Timestamps sorted => time split.
  for (size_t i = 1; i < ds.log.size(); ++i) {
    EXPECT_LE(ds.log[i - 1].timestamp, ds.log[i].timestamp);
  }
}

TEST(TaobaoGeneratorTest, UsersHaveNoSimilarityEdges) {
  auto ds = GenerateTaobaoDataset(SmallTaobao());
  for (graph::NodeId u = 0; u < 100; ++u) {
    for (auto k : ds.graph.neighbor_kinds(u)) {
      EXPECT_NE(k, graph::RelationKind::kSimilarity);
    }
  }
}

MovieLensGeneratorOptions SmallMovieLens() {
  MovieLensGeneratorOptions opt;
  opt.num_users = 80;
  opt.num_tags = 24;
  opt.num_movies = 150;
  opt.num_genres = 6;
  opt.ratings_per_user = 10;
  opt.seed = 3;
  return opt;
}

TEST(MovieLensGeneratorTest, TriPartiteStructure) {
  auto ds = GenerateMovieLensDataset(SmallMovieLens());
  EXPECT_EQ(ds.graph.num_nodes_of_type(graph::NodeType::kUser), 80);
  EXPECT_EQ(ds.graph.num_nodes_of_type(graph::NodeType::kQuery), 24);
  EXPECT_EQ(ds.graph.num_nodes_of_type(graph::NodeType::kItem), 150);
}

TEST(MovieLensGeneratorTest, EightyTwentySplit) {
  auto ds = GenerateMovieLensDataset(SmallMovieLens());
  const double frac =
      double(ds.train.size()) / double(ds.train.size() + ds.test.size());
  EXPECT_NEAR(frac, 0.8, 0.05);
}

TEST(MovieLensGeneratorTest, TagsEvenlyCoverGenres) {
  auto ds = GenerateMovieLensDataset(SmallMovieLens());
  std::set<int> genres;
  for (graph::NodeId t = 80; t < 80 + 24; ++t) {
    genres.insert(ds.category[t]);
  }
  EXPECT_EQ(genres.size(), 6u);
}

TEST(MovieLensGeneratorTest, Deterministic) {
  auto a = GenerateMovieLensDataset(SmallMovieLens());
  auto b = GenerateMovieLensDataset(SmallMovieLens());
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  ASSERT_EQ(a.test.size(), b.test.size());
  for (size_t i = 0; i < a.test.size(); ++i) {
    EXPECT_EQ(a.test[i].item, b.test[i].item);
  }
}

TEST(MovieLensGeneratorTest, RatingsConcentrateInPreferredGenres) {
  auto ds = GenerateMovieLensDataset(SmallMovieLens());
  int match = 0, total = 0;
  for (const auto& e : ds.train) {
    if (e.label < 0.5f) continue;
    ++total;
    if (ds.category[e.query] == ds.category[e.item]) ++match;
  }
  ASSERT_GT(total, 0);
  EXPECT_GT(double(match) / total, 0.6);
}

}  // namespace
}  // namespace data
}  // namespace zoomer
