// Tests for the background graph-maintenance subsystem: the janitor
// scheduler (dispatch, background ticking, error isolation), threshold- and
// age-triggered scheduled compaction, deterministic TTL expiry and
// exponential weight decay on a manual logical clock (including per-view
// 1-hour vs 1-day windows over one stream), the hot-node overlay cache
// (distribution parity, apply/compact/expiry invalidation, decay as_of
// staleness), janitor-triggered Compact() racing mid-ingest appends and
// pinned snapshots, and serving-layer NeighborCache coordination through
// OnlineServer::AttachMaintenance.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <thread>

#include "baselines/gnn_baselines.h"
#include "common/clock.h"
#include "common/random.h"
#include "data/session_stream.h"
#include "data/taobao_generator.h"
#include "maintenance/compaction_policy.h"
#include "maintenance/hot_node_cache.h"
#include "maintenance/maintenance_scheduler.h"
#include "maintenance/metrics_export_policy.h"
#include "maintenance/ttl_decay_policy.h"
#include "obs/metrics.h"
#include "serving/neighbor_cache.h"
#include "serving/online_server.h"
#include "streaming/dynamic_graph_view.h"
#include "streaming/dynamic_hetero_graph.h"
#include "streaming/edge_decay.h"
#include "streaming/graph_delta_log.h"
#include "streaming/ingest_pipeline.h"

namespace zoomer {
namespace maintenance {
namespace {

using graph::HeteroGraph;
using graph::HeteroGraphBuilder;
using graph::NodeId;
using graph::NodeType;
using graph::RelationKind;
using streaming::DecaySpec;
using streaming::DeltaBatch;
using streaming::DynamicGraphView;
using streaming::DynamicHeteroGraph;
using streaming::EdgeEvent;
using streaming::GraphDeltaLog;

constexpr int kDim = 4;

/// user 0, query 1, items 2..2+num_items-1; a single user-query click edge
/// plus optional weighted query-item edges (same fixture as streaming_test).
HeteroGraph MakeTinyGraph(int num_items,
                          const std::vector<float>& query_item_weights = {}) {
  HeteroGraphBuilder b(kDim);
  b.AddNode(NodeType::kUser, std::vector<float>(kDim, 0.1f), {0});
  b.AddNode(NodeType::kQuery, std::vector<float>(kDim, 0.2f), {1});
  for (int i = 0; i < num_items; ++i) {
    b.AddNode(NodeType::kItem, std::vector<float>(kDim, 0.3f), {2});
  }
  EXPECT_TRUE(b.AddEdge(0, 1, RelationKind::kClick, 1.0f).ok());
  for (size_t i = 0; i < query_item_weights.size(); ++i) {
    EXPECT_TRUE(b.AddEdge(1, 2 + static_cast<NodeId>(i), RelationKind::kClick,
                          query_item_weights[i])
                    .ok());
  }
  return b.Build();
}

/// Heap-allocated graph: ThreadSanitizer identifies mutexes by address and
/// libstdc++'s std::mutex is trivially destructible (its pthread handle is
/// never destroy()-ed), so stack graphs in consecutive tests can alias
/// mutex addresses and trip false lock-order cycles. Freed heap memory has
/// its TSan metadata cleared, so heap graphs cannot alias.
std::unique_ptr<DynamicHeteroGraph> MakeDynamic(const HeteroGraph* g) {
  return std::make_unique<DynamicHeteroGraph>(g);
}

DeltaBatch MakeBatch(GraphDeltaLog* log, int shard,
                     std::vector<EdgeEvent> events,
                     DynamicHeteroGraph* track = nullptr) {
  DeltaBatch batch;
  batch.events = std::move(events);
  batch.epoch =
      track == nullptr
          ? log->Append(shard, batch.events)
          : log->Append(shard, batch.events,
                        [track](uint64_t e) { track->NoteEpochIssued(e); });
  return batch;
}

std::map<NodeId, double> SampleFrequencies(
    const DynamicHeteroGraph::Snapshot& snap, NodeId node, int draws,
    uint64_t seed) {
  Rng rng(seed);
  std::map<NodeId, double> freq;
  for (int i = 0; i < draws; ++i) {
    freq[snap.SampleNeighbor(node, &rng)] += 1.0 / draws;
  }
  return freq;
}

// --- MaintenanceScheduler ---------------------------------------------------

class CountingPolicy final : public MaintenancePolicy {
 public:
  CountingPolicy(const char* name, bool acts, bool fails = false)
      : name_(name), acts_(acts), fails_(fails) {}

  const char* name() const override { return name_; }
  StatusOr<MaintenanceReport> RunOnce() override {
    runs.fetch_add(1);
    if (fails_) return Status::Internal("deliberate test failure");
    MaintenanceReport report;
    report.acted = acts_;
    report.touched = {7};
    return report;
  }

  std::atomic<int> runs{0};

 private:
  const char* name_;
  bool acts_;
  bool fails_;
};

TEST(MaintenanceSchedulerTest, RunOnceForTestDispatchesByName) {
  MaintenanceScheduler scheduler;
  auto a = std::make_unique<CountingPolicy>("a", /*acts=*/true);
  auto b = std::make_unique<CountingPolicy>("b", /*acts=*/false);
  CountingPolicy* a_raw = a.get();
  CountingPolicy* b_raw = b.get();
  scheduler.AddPolicy(std::move(a), {});
  scheduler.AddPolicy(std::move(b), {});

  int listener_fires = 0;
  std::string last_policy;
  scheduler.AddListener([&](const std::string& name,
                            const MaintenanceReport& report) {
    ++listener_fires;
    last_policy = name;
    EXPECT_TRUE(report.acted);
  });

  auto r = scheduler.RunOnceForTest("a");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().acted);
  EXPECT_EQ(a_raw->runs.load(), 1);
  EXPECT_EQ(b_raw->runs.load(), 0);
  EXPECT_EQ(listener_fires, 1);  // acted => listener fired
  EXPECT_EQ(last_policy, "a");

  ASSERT_TRUE(scheduler.RunOnceForTest("b").ok());
  EXPECT_EQ(b_raw->runs.load(), 1);
  EXPECT_EQ(listener_fires, 1);  // no action => no fan-out

  EXPECT_FALSE(scheduler.RunOnceForTest("nope").ok());

  auto stats = scheduler.Stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].name, "a");
  EXPECT_EQ(stats[0].runs, 1);
  EXPECT_EQ(stats[0].actions, 1);
  EXPECT_EQ(stats[1].actions, 0);
}

TEST(MaintenanceSchedulerTest, JanitorTicksPoliciesInBackground) {
  MaintenanceScheduler scheduler;
  auto p = std::make_unique<CountingPolicy>("ticker", /*acts=*/false);
  CountingPolicy* raw = p.get();
  PolicySchedule schedule;
  schedule.period_ms = 2;
  schedule.jitter_frac = 0.5;
  scheduler.AddPolicy(std::move(p), schedule);
  scheduler.Start();
  for (int i = 0; i < 2000 && raw->runs.load() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  scheduler.Stop();
  EXPECT_GE(raw->runs.load(), 3);
  EXPECT_GE(scheduler.Stats()[0].runs, 3);
}

TEST(MaintenanceSchedulerTest, ErrorsAreCountedAndDoNotStopTicking) {
  MaintenanceScheduler scheduler;
  auto p = std::make_unique<CountingPolicy>("flaky", /*acts=*/false,
                                            /*fails=*/true);
  CountingPolicy* raw = p.get();
  PolicySchedule schedule;
  schedule.period_ms = 2;
  scheduler.AddPolicy(std::move(p), schedule);
  scheduler.Start();
  for (int i = 0; i < 2000 && raw->runs.load() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  scheduler.Stop();
  auto stats = scheduler.Stats();
  EXPECT_GE(stats[0].errors, 2);
  EXPECT_EQ(stats[0].actions, 0);
  EXPECT_NE(stats[0].last_error.find("deliberate"), std::string::npos);
}

TEST(MaintenanceSchedulerTest, PassesRecordLatencyAndErrorTelemetry) {
  // Private registry so the assertions see only this scheduler's passes.
  obs::MetricsRegistry reg;
  MaintenanceSchedulerOptions sopt;
  sopt.registry = &reg;
  MaintenanceScheduler scheduler(sopt);
  scheduler.AddPolicy(std::make_unique<CountingPolicy>("ok", /*acts=*/true),
                      {});
  scheduler.AddPolicy(std::make_unique<CountingPolicy>("bad", /*acts=*/false,
                                                       /*fails=*/true),
                      {});
  ASSERT_TRUE(scheduler.RunOnceForTest("ok").ok());
  ASSERT_TRUE(scheduler.RunOnceForTest("ok").ok());
  EXPECT_FALSE(scheduler.RunOnceForTest("bad").ok());

  const obs::RegistrySnapshot snap = reg.Snapshot();
  const obs::MetricPoint* ok_lat = snap.Find("maintenance.pass_latency_us.ok");
  ASSERT_NE(ok_lat, nullptr);
  EXPECT_EQ(ok_lat->hist.count(), 2);
  const obs::MetricPoint* bad_lat =
      snap.Find("maintenance.pass_latency_us.bad");
  ASSERT_NE(bad_lat, nullptr);
  EXPECT_EQ(bad_lat->hist.count(), 1);
  const obs::MetricPoint* errors = snap.Find("maintenance.pass_errors");
  ASSERT_NE(errors, nullptr);
  EXPECT_EQ(errors->value, 1.0);
}

// --- MetricsExportPolicy ----------------------------------------------------

TEST(MetricsExportPolicyTest, ScheduledExportEmitsRegistrySnapshots) {
  obs::MetricsRegistry reg;
  reg.GetCounter("export.probe")->Add(13);
  std::vector<std::string> lines;
  MetricsExportPolicyOptions eopt;
  eopt.registry = &reg;
  eopt.sink = [&lines](const std::string& line) { lines.push_back(line); };

  MaintenanceSchedulerOptions sopt;
  sopt.registry = &reg;
  MaintenanceScheduler scheduler(sopt);
  scheduler.AddPolicy(std::make_unique<MetricsExportPolicy>(eopt), {});
  auto report = scheduler.RunOnceForTest("metrics_export");
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().acted);
  EXPECT_NE(report.value().detail.find("exported"), std::string::npos);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"ts_monotonic_us\":"), std::string::npos);
  EXPECT_NE(lines[0].find("\"export.probe\":13"), std::string::npos);
  // The scheduler's own pass telemetry shows up in the next export.
  ASSERT_TRUE(scheduler.RunOnceForTest("metrics_export").ok());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[1].find("maintenance.pass_latency_us.metrics_export"),
            std::string::npos);
}

// --- CompactionPolicy -------------------------------------------------------

TEST(CompactionPolicyTest, EntryThresholdTriggersCompactAndTruncate) {
  HeteroGraph g = MakeTinyGraph(8);
  GraphDeltaLog log(1);
  auto dyn_owner = MakeDynamic(&g);
  DynamicHeteroGraph& dyn = *dyn_owner;
  CompactionPolicyOptions opt;
  opt.max_delta_entries = 4;  // 2 events = 4 half-edges
  CompactionPolicy policy(&dyn, &log, /*clock=*/nullptr, opt);

  // Below threshold: the policy inspects and stands down.
  ASSERT_TRUE(
      dyn.ApplyBatch(
             MakeBatch(&log, 0, {{1, 2, RelationKind::kClick, 1.0f, 0}}))
          .ok());
  auto r = policy.RunOnce();
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().acted);
  EXPECT_GT(dyn.num_delta_entries(), 0);

  // Crossing it folds the overlay and truncates the log.
  ASSERT_TRUE(
      dyn.ApplyBatch(
             MakeBatch(&log, 0, {{1, 3, RelationKind::kClick, 2.0f, 0}}))
          .ok());
  const uint64_t gen_before = dyn.base_generation();
  r = policy.RunOnce();
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().acted);
  EXPECT_TRUE(r.value().graph_rebuilt);
  EXPECT_EQ(policy.compactions(), 1);
  EXPECT_EQ(dyn.num_delta_entries(), 0);
  EXPECT_EQ(log.Stats().total_events, 0);
  EXPECT_EQ(dyn.base_generation(), gen_before + 1);
  EXPECT_EQ(dyn.base()->degree(1), 3);  // user + items 2, 3 folded in
}

TEST(CompactionPolicyTest, AgeThresholdFiresOnLogicalClock) {
  HeteroGraph g = MakeTinyGraph(4);
  GraphDeltaLog log(1);
  auto dyn_owner = MakeDynamic(&g);
  DynamicHeteroGraph& dyn = *dyn_owner;
  ManualClock clock(1000);
  CompactionPolicyOptions opt;
  opt.max_delta_entries = 0;  // entry-count trigger off
  opt.max_delta_age_seconds = 60;
  CompactionPolicy policy(&dyn, &log, &clock, opt);

  ASSERT_TRUE(
      dyn.ApplyBatch(
             MakeBatch(&log, 0, {{1, 2, RelationKind::kClick, 1.0f, 1000}}))
          .ok());
  auto r = policy.RunOnce();  // marks deltas pending at t=1000
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().acted);

  clock.AdvanceSeconds(59);
  ASSERT_TRUE(policy.RunOnce().ok());
  EXPECT_EQ(policy.compactions(), 0);

  clock.AdvanceSeconds(1);  // pending for exactly 60s now
  r = policy.RunOnce();
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().acted);
  EXPECT_EQ(dyn.num_delta_entries(), 0);
}

// --- TTL / decay on the manual logical clock --------------------------------

TEST(TtlDecayTest, EdgesPastTtlAreExcludedDeterministically) {
  // Base: query 1 -> user 0 (w=1), item 2 (w=1). Deltas: item 3 at t=0,
  // item 4 at t=100. With ttl=50 and the clock at 120, item 3 (age 120) is
  // out and item 4 (age 20) is in — bit-for-bit reproducible, no sleeps.
  HeteroGraph g = MakeTinyGraph(4, {1.0f});
  GraphDeltaLog log(1);
  auto dyn_owner = MakeDynamic(&g);
  DynamicHeteroGraph& dyn = *dyn_owner;
  ManualClock clock(120);
  MaintenanceScheduler scheduler;
  scheduler.AddPolicy(std::make_unique<TtlDecayPolicy>(
                          &dyn, &clock, DecaySpec::Window(50, 0.0)),
                      {});

  ASSERT_TRUE(
      dyn.ApplyBatch(MakeBatch(&log, 0,
                               {{1, 3, RelationKind::kClick, 5.0f, 0},
                                {1, 4, RelationKind::kClick, 2.0f, 100}}))
          .ok());

  auto snap = dyn.MakeSnapshot();
  EXPECT_TRUE(snap.decay_active());
  EXPECT_EQ(snap.as_of_seconds(), 120);
  EXPECT_EQ(snap.DeltaDegree(1), 1);  // item 3 aged out
  EXPECT_EQ(snap.Degree(1), 3);
  EXPECT_NEAR(snap.TotalWeight(1), 4.0, 1e-9);  // 1 + 1 + 2 (no 5)

  std::vector<graph::NeighborEntry> merged;
  snap.Neighbors(1, &merged);
  ASSERT_EQ(merged.size(), 3u);
  for (const auto& e : merged) EXPECT_NE(e.neighbor, 3);

  Rng rng(17);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_NE(snap.SampleNeighbor(1, &rng), 3);
  }

  // The physical entries are still there until the janitor sweeps; the
  // exclusion above is purely the read-time window.
  EXPECT_EQ(dyn.num_delta_entries(), 4);
  auto r = scheduler.RunOnceForTest("ttl_decay");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().acted);
  ASSERT_EQ(r.value().touched.size(), 2u);  // both endpoints of (1, 3)
  EXPECT_EQ(dyn.num_delta_entries(), 2);    // (1, 4) halves survive

  // Sweeping changed nothing a decay-aware reader can observe.
  auto after = dyn.MakeSnapshot();
  EXPECT_EQ(after.Degree(1), 3);
  EXPECT_NEAR(after.TotalWeight(1), 4.0, 1e-9);

  // Once everything ages out, reads drop to the pure base path.
  clock.SetSeconds(1000);
  ASSERT_TRUE(scheduler.RunOnceForTest("ttl_decay").ok());
  EXPECT_EQ(dyn.num_delta_entries(), 0);
  auto empty = dyn.MakeSnapshot();
  EXPECT_FALSE(empty.HasDelta(1));
  EXPECT_EQ(empty.Degree(1), 2);  // base user + item 2
}

TEST(TtlDecayTest, DecayedWeightsAlterSampledDistribution) {
  // Base: query 1 -> user 0 (w=1), item 2 (w=1); delta item 3 (w=4, t=0).
  // At age = one half-life the delta contributes weight 2, so the exact
  // distribution is {0: 1/4, 2: 1/4, 3: 2/4} — versus {1/6, 1/6, 4/6} raw.
  HeteroGraph g = MakeTinyGraph(4, {1.0f});
  GraphDeltaLog log(1);
  auto dyn_owner = MakeDynamic(&g);
  DynamicHeteroGraph& dyn = *dyn_owner;
  ManualClock clock(100);
  TtlDecayPolicy policy(&dyn, &clock, DecaySpec::Window(0, 100.0));

  ASSERT_TRUE(
      dyn.ApplyBatch(
             MakeBatch(&log, 0, {{1, 3, RelationKind::kClick, 4.0f, 0}}))
          .ok());
  auto snap = dyn.MakeSnapshot();
  EXPECT_NEAR(snap.TotalWeight(1), 4.0, 1e-6);  // 1 + 1 + 4/2

  auto freq = SampleFrequencies(snap, 1, 60000, 23);
  EXPECT_NEAR(freq[0], 0.25, 0.015);
  EXPECT_NEAR(freq[2], 0.25, 0.015);
  EXPECT_NEAR(freq[3], 0.50, 0.015);

  // One more half-life: the same edge now counts 1 of 3.
  clock.AdvanceSeconds(100);
  auto older = dyn.MakeSnapshot();
  EXPECT_NEAR(older.TotalWeight(1), 3.0, 1e-6);
  auto freq2 = SampleFrequencies(older, 1, 60000, 29);
  EXPECT_NEAR(freq2[3], 1.0 / 3.0, 0.015);

  // The merged neighbor list reports the decayed weight too.
  std::vector<graph::NeighborEntry> merged;
  older.Neighbors(1, &merged);
  for (const auto& e : merged) {
    if (e.neighbor == 3) {
      EXPECT_NEAR(e.weight, 1.0f, 1e-5f);
    }
  }
}

TEST(TtlDecayTest, PerViewWindowsServeTwoHorizonsFromOneStream) {
  HeteroGraph g = MakeTinyGraph(4);
  GraphDeltaLog log(1);
  auto dyn_owner = MakeDynamic(&g);
  DynamicHeteroGraph& dyn = *dyn_owner;
  ManualClock clock(24 * 3600);
  // Install only the clock; each view brings its own window.
  dyn.SetClock(&clock);

  // A click from half an hour ago and one from twenty hours ago.
  ASSERT_TRUE(dyn.ApplyBatch(
                     MakeBatch(&log, 0,
                               {{1, 2, RelationKind::kClick, 1.0f,
                                 24 * 3600 - 1800},
                                {1, 3, RelationKind::kClick, 1.0f,
                                 4 * 3600}}))
                  .ok());

  DynamicGraphView hour_view(&dyn, DecaySpec::Window(3600, 0.0));
  DynamicGraphView day_view(&dyn, DecaySpec::Window(24 * 3600, 0.0));
  EXPECT_EQ(hour_view.degree(1), 2);  // base user edge + the recent click
  EXPECT_EQ(day_view.degree(1), 3);   // both clicks

  graph::NeighborScratch scratch;
  auto hour_block = hour_view.Neighbors(1, &scratch);
  for (int64_t i = 0; i < hour_block.size(); ++i) {
    EXPECT_NE(hour_block.ids[i], 3);
  }
  graph::NeighborScratch day_scratch;
  auto day_block = day_view.Neighbors(1, &day_scratch);
  bool sees_old = false;
  for (int64_t i = 0; i < day_block.size(); ++i) {
    sees_old |= day_block.ids[i] == 3;
  }
  EXPECT_TRUE(sees_old);

  // Refresh re-reads the clock: one more hour retires the newer click from
  // the 1-hour view while the 1-day view keeps both.
  clock.AdvanceSeconds(3600);
  hour_view.Refresh();
  day_view.Refresh();
  EXPECT_EQ(hour_view.degree(1), 1);
  EXPECT_EQ(day_view.degree(1), 3);
}

TEST(TtlDecayTest, CompactDropsExpiredEntriesInsteadOfResurrecting) {
  // An entry past its TTL is invisible to every decay-aware reader; a
  // compaction racing the GC sweep must not fold it into the (never
  // windowed) base CSR at full weight. Surviving entries fold at raw
  // weight — graduation into the offline aggregate.
  HeteroGraph g = MakeTinyGraph(4);
  GraphDeltaLog log(1);
  auto dyn_owner = MakeDynamic(&g);
  DynamicHeteroGraph& dyn = *dyn_owner;
  ManualClock clock(120);
  TtlDecayPolicy policy(&dyn, &clock, DecaySpec::Window(50, 100.0));

  ASSERT_TRUE(
      dyn.ApplyBatch(MakeBatch(&log, 0,
                               {{1, 3, RelationKind::kClick, 5.0f, 0},
                                {1, 4, RelationKind::kClick, 2.0f, 100}}))
          .ok());
  // Compact WITHOUT a prior expiry sweep: (1, 3) is expired (age 120) and
  // must vanish; (1, 4) is alive (age 20, decayed for readers) and must
  // fold at its raw weight 2.
  ASSERT_TRUE(dyn.Compact().ok());
  auto base = dyn.base();
  EXPECT_EQ(base->degree(1), 2);  // user edge + item 4 only
  auto ids = base->neighbor_ids(1);
  auto weights = base->neighbor_weights(1);
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_NE(ids[i], 3);
    if (ids[i] == 4) {
      EXPECT_FLOAT_EQ(weights[i], 2.0f);
    }
  }
}

// --- HotNodeOverlayCache ----------------------------------------------------

TEST(HotNodeCacheTest, MaterializedSamplingMatchesExactWeights) {
  // Base: query 1 -> user 0 (w=1), item 2 (w=1), item 3 (w=3). Deltas: +4
  // on item 4 and +2 on item 3 => exact distribution {0: 1/11, 2: 1/11,
  // 3: 5/11, 4: 4/11}, identical to streaming_test's uncached expectation.
  HeteroGraph g = MakeTinyGraph(4, {1.0f, 3.0f});
  GraphDeltaLog log(1);
  auto dyn_owner = MakeDynamic(&g);
  DynamicHeteroGraph& dyn = *dyn_owner;
  HotNodeCacheOptions copt;
  copt.min_delta_entries = 2;
  HotNodeOverlayCache cache(g.num_nodes(), copt);
  HotNodeRefreshPolicy policy(&dyn, &cache);  // attaches the cache

  ASSERT_TRUE(
      dyn.ApplyBatch(MakeBatch(&log, 0,
                               {{1, 4, RelationKind::kClick, 4.0f, 0},
                                {1, 3, RelationKind::kClick, 2.0f, 0}}))
          .ok());
  auto r = policy.RunOnce();
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().acted);
  EXPECT_EQ(cache.size(), 1u);  // node 1 crossed the threshold

  auto snap = dyn.MakeSnapshot();
  auto freq = SampleFrequencies(snap, 1, 60000, 31);
  EXPECT_NEAR(freq[0], 1.0 / 11, 0.01);
  EXPECT_NEAR(freq[2], 1.0 / 11, 0.01);
  EXPECT_NEAR(freq[3], 5.0 / 11, 0.015);
  EXPECT_NEAR(freq[4], 4.0 / 11, 0.015);
  EXPECT_GT(cache.Stats().hits, 0);

  // Batched distinct draws ride the alias table too.
  Rng rng(5);
  auto distinct = snap.SampleDistinctNeighbors(1, 10, &rng);
  EXPECT_GE(distinct.size(), 3u);
  for (NodeId nb : distinct) {
    EXPECT_TRUE(nb == 0 || nb == 2 || nb == 3 || nb == 4);
  }

  // Neighbors through the cache equals the uncached merge.
  std::vector<graph::NeighborEntry> cached_merge;
  snap.Neighbors(1, &cached_merge);
  cache.Clear();
  std::vector<graph::NeighborEntry> slow_merge;
  dyn.MakeSnapshot().Neighbors(1, &slow_merge);
  ASSERT_EQ(cached_merge.size(), slow_merge.size());
  for (size_t i = 0; i < slow_merge.size(); ++i) {
    EXPECT_EQ(cached_merge[i].neighbor, slow_merge[i].neighbor);
    EXPECT_FLOAT_EQ(cached_merge[i].weight, slow_merge[i].weight);
  }
}

TEST(HotNodeCacheTest, ApplyInvalidatesAndFreshEdgesStayVisible) {
  HeteroGraph g = MakeTinyGraph(6, {1.0f});
  GraphDeltaLog log(1);
  auto dyn_owner = MakeDynamic(&g);
  DynamicHeteroGraph& dyn = *dyn_owner;
  HotNodeCacheOptions copt;
  copt.min_delta_entries = 1;
  HotNodeOverlayCache cache(g.num_nodes(), copt);
  HotNodeRefreshPolicy policy(&dyn, &cache);

  ASSERT_TRUE(
      dyn.ApplyBatch(
             MakeBatch(&log, 0, {{1, 3, RelationKind::kClick, 1.0f, 0}}))
          .ok());
  ASSERT_TRUE(policy.RunOnce().ok());
  ASSERT_GE(cache.size(), 1u);

  // A new batch on the cached node must not serve the stale merge: the
  // apply eagerly evicts, and the version check would reject it anyway.
  ASSERT_TRUE(
      dyn.ApplyBatch(
             MakeBatch(&log, 0, {{1, 5, RelationKind::kClick, 100.0f, 0}}))
          .ok());
  auto snap = dyn.MakeSnapshot();
  Rng rng(3);
  int hits5 = 0;
  for (int i = 0; i < 2000; ++i) hits5 += snap.SampleNeighbor(1, &rng) == 5;
  EXPECT_GT(hits5, 1500);  // 100/103 of the mass — never the stale list
  EXPECT_GT(cache.Stats().invalidations, 0);

  // Compaction clears everything.
  ASSERT_TRUE(policy.RunOnce().ok());
  ASSERT_GE(cache.size(), 1u);
  ASSERT_TRUE(dyn.Compact().ok());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(HotNodeCacheTest, DecayedEntriesExpireWithTheClock) {
  HeteroGraph g = MakeTinyGraph(4, {1.0f});
  GraphDeltaLog log(1);
  auto dyn_owner = MakeDynamic(&g);
  DynamicHeteroGraph& dyn = *dyn_owner;
  ManualClock clock(100);
  TtlDecayPolicy decay(&dyn, &clock, DecaySpec::Window(0, 100.0));
  HotNodeCacheOptions copt;
  copt.min_delta_entries = 1;
  copt.decay_staleness_tolerance_seconds = 0;
  HotNodeOverlayCache cache(g.num_nodes(), copt);
  HotNodeRefreshPolicy policy(&dyn, &cache);

  ASSERT_TRUE(
      dyn.ApplyBatch(
             MakeBatch(&log, 0, {{1, 3, RelationKind::kClick, 4.0f, 0}}))
          .ok());
  ASSERT_TRUE(policy.RunOnce().ok());

  // Same as_of: entry serves, with decayed total (1 + 1 + 2).
  auto snap = dyn.MakeSnapshot();
  std::vector<graph::NeighborEntry> merged;
  snap.Neighbors(1, &merged);
  EXPECT_GT(cache.Stats().hits, 0);
  for (const auto& e : merged) {
    if (e.neighbor == 3) {
      EXPECT_NEAR(e.weight, 2.0f, 1e-5f);
    }
  }

  // Clock moved: decayed weights drifted, the stale as_of must not serve.
  clock.AdvanceSeconds(100);
  const int64_t hits_before = cache.Stats().hits;
  auto later = dyn.MakeSnapshot();
  later.Neighbors(1, &merged);
  EXPECT_EQ(cache.Stats().hits, hits_before);
  for (const auto& e : merged) {
    if (e.neighbor == 3) {
      EXPECT_NEAR(e.weight, 1.0f, 1e-5f);
    }
  }

  // The next refresh re-materializes at the new as_of and serves again.
  ASSERT_TRUE(policy.RunOnce().ok());
  auto freshest = dyn.MakeSnapshot();
  freshest.Neighbors(1, &merged);
  EXPECT_GT(cache.Stats().hits, hits_before);

  // A per-view window with a different horizon must not be handed the
  // graph-default merge: same as_of, different spec => miss + correct
  // (raw-weight) resolution through the slow path.
  const int64_t hits_after_refresh = cache.Stats().hits;
  auto wide = dyn.MakeSnapshot(DecaySpec::Window(0, 100000.0));
  wide.Neighbors(1, &merged);
  EXPECT_EQ(cache.Stats().hits, hits_after_refresh);
  for (const auto& e : merged) {
    // Half-life 100000s at age 200 is ~full weight, far from the 1.0 the
    // graph-default (half-life 100) merge carries.
    if (e.neighbor == 3) {
      EXPECT_GT(e.weight, 3.9f);
    }
  }
}

// --- Janitor-triggered Compact() racing mid-ingest --------------------------

TEST(JanitorRaceTest, ScheduledCompactionRacesIngestAndPinnedSnapshots) {
  // Extends PR 2's quiescence test: compaction is now fired by the
  // maintenance scheduler on a tight jittered period (with the hot-node
  // refresh policy churning the cache alongside) while sessions stream in
  // and reader threads hold pinned snapshots. Every applied half-edge must
  // be conserved across however many folds land mid-ingest.
  HeteroGraph g = MakeTinyGraph(40);
  double base_total = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (float w : g.neighbor_weights(v)) base_total += w;
  }
  GraphDeltaLog log(4);
  auto dyn_owner = MakeDynamic(&g);
  DynamicHeteroGraph& dyn = *dyn_owner;
  streaming::IngestOptions iopt;
  iopt.num_shards = 4;
  iopt.batch_size = 8;
  streaming::IngestPipeline pipeline(&log, &dyn, iopt);
  pipeline.Start();

  HotNodeCacheOptions copt;
  copt.min_delta_entries = 2;
  HotNodeOverlayCache cache(g.num_nodes(), copt);

  MaintenanceScheduler scheduler;
  CompactionPolicyOptions popt;
  popt.max_delta_entries = 1;  // every janitor tick compacts
  PolicySchedule fast;
  fast.period_ms = 2;
  scheduler.AddPolicy(
      std::make_unique<CompactionPolicy>(&dyn, &log, nullptr, popt), fast);
  scheduler.AddPolicy(std::make_unique<HotNodeRefreshPolicy>(&dyn, &cache),
                      fast);
  scheduler.Start();

  // Readers pin snapshots and sample while folds land. A pinned snapshot
  // may lose delta visibility to a compaction (documented short-lease
  // contract) but must never return an invalid neighbor or crash.
  std::atomic<bool> stop_readers{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(100 + t);
      while (!stop_readers.load()) {
        auto snap = dyn.MakeSnapshot();
        for (int i = 0; i < 50; ++i) {
          const NodeId nb = snap.SampleNeighbor(1, &rng);
          ASSERT_GE(nb, 0);
          ASSERT_LT(nb, g.num_nodes());
          std::vector<graph::NeighborEntry> merged;
          snap.Neighbors(1, &merged);
          ASSERT_GE(merged.size(), 1u);
        }
      }
    });
  }

  Rng rng(3);
  for (int i = 0; i < 400; ++i) {
    graph::SessionRecord session;
    session.user = 0;
    session.query = 1;
    session.clicks = {2 + static_cast<NodeId>(rng.Uniform(40)),
                      2 + static_cast<NodeId>(rng.Uniform(40))};
    ASSERT_TRUE(pipeline.Offer(session));
  }
  pipeline.Flush();
  stop_readers.store(true);
  for (auto& r : readers) r.join();
  scheduler.Stop();

  auto stats = pipeline.Stats();
  EXPECT_EQ(stats.events_applied, stats.events);
  EXPECT_EQ(pipeline.events_dropped(), 0);
  auto sched_stats = scheduler.Stats();
  EXPECT_GT(sched_stats[0].actions, 0) << "no compaction ever fired";

  // Mass conservation across scheduled folds: every applied event added
  // weight 1 to each endpoint, in the rebuilt CSR or a delta overlay.
  auto snap = dyn.MakeSnapshot();
  double total = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) total += snap.TotalWeight(v);
  EXPECT_NEAR(total, base_total + 2.0 * stats.events_applied, 0.5);

  auto folded = dyn.Compact();
  ASSERT_TRUE(folded.ok());
  log.Truncate(folded.value());
  EXPECT_EQ(dyn.num_delta_entries(), 0);
  pipeline.Stop();
}

TEST(JanitorRaceTest, NodeIngestRacesScheduledCompaction) {
  // Id-space growth under the janitor: the producer keeps minting
  // brand-new item nodes (with their introducing edges) through the
  // pipeline while the scheduler compacts on a tight period and reader
  // threads hold pinned snapshots. Every minted node must survive however
  // many folds land — appended into a rebuilt base or still in the overlay
  // — and no reader may ever observe an id beyond its pin.
  HeteroGraph g = MakeTinyGraph(10);
  GraphDeltaLog log(2);
  auto dyn_owner = MakeDynamic(&g);
  DynamicHeteroGraph& dyn = *dyn_owner;
  streaming::IngestOptions iopt;
  iopt.num_shards = 2;
  iopt.batch_size = 4;
  streaming::IngestPipeline pipeline(&log, &dyn, iopt);
  pipeline.Start();

  MaintenanceScheduler scheduler;
  CompactionPolicyOptions popt;
  popt.max_delta_entries = 1;  // every janitor tick compacts
  PolicySchedule fast;
  fast.period_ms = 2;
  scheduler.AddPolicy(
      std::make_unique<CompactionPolicy>(&dyn, &log, nullptr, popt), fast);
  scheduler.Start();

  std::atomic<bool> stop_readers{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(50 + t);
      while (!stop_readers.load()) {
        auto snap = dyn.MakeSnapshot();
        const int64_t pinned = snap.num_nodes();
        for (int i = 0; i < 50; ++i) {
          const NodeId nb = snap.SampleNeighbor(1, &rng);
          ASSERT_GE(nb, 0);
          ASSERT_LT(nb, pinned);
        }
        ASSERT_EQ(snap.num_nodes(), pinned);  // a pin never grows
      }
    });
  }

  const int kMints = 120;
  std::vector<NodeId> minted;
  Rng rng(9);
  for (int i = 0; i < kMints; ++i) {
    streaming::NodeEvent ev;
    ev.type = NodeType::kItem;
    ev.content = std::vector<float>(kDim, 0.2f + 0.5f * rng.UniformFloat());
    ev.slots = {3};
    auto id = pipeline.OfferNewNode(
        std::move(ev), {{1, -1, RelationKind::kClick, 1.0f, 0}});
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    minted.push_back(id.value());
    graph::SessionRecord session;
    session.user = 0;
    session.query = 1;
    session.clicks = {id.value()};
    ASSERT_TRUE(pipeline.Offer(session));
  }
  pipeline.Flush();
  stop_readers.store(true);
  for (auto& r : readers) r.join();
  scheduler.Stop();

  // Conservation: every minted id resolves with its type, and the weight
  // mass of its introducing click plus one session click survives wherever
  // the folds left it (a fold coalesces the two same-kind clicks into one
  // edge, so half-edge counts may shrink — mass never does).
  auto snap = dyn.MakeSnapshot();
  EXPECT_EQ(snap.num_nodes(), g.num_nodes() + kMints);
  for (NodeId id : minted) {
    EXPECT_EQ(snap.node_type(id), NodeType::kItem);
    EXPECT_GE(snap.Degree(id), 1);
    EXPECT_GE(snap.TotalWeight(id), 2.0 - 1e-6);
  }
  EXPECT_GT(scheduler.Stats()[0].actions, 0) << "no compaction ever fired";
  auto folded = dyn.Compact();
  ASSERT_TRUE(folded.ok());
  log.Truncate(folded.value());
  EXPECT_EQ(dyn.base()->num_nodes(), g.num_nodes() + kMints);
  EXPECT_EQ(dyn.num_delta_entries(), 0);
  pipeline.Stop();
}

// --- Typed neighbor ranges (GraphView::NeighborsOfType) ---------------------

TEST(NeighborsOfTypeTest, DynamicViewMergesTypedRangeWithoutFullMerge) {
  // Base: query 1 -> user 0 (w=1), items 2, 3 (w=1 each). Deltas: a new
  // item edge (1, 4), a weight increment on the existing (1, 2), and a
  // user-query increment on (0, 1).
  HeteroGraph g = MakeTinyGraph(4, {1.0f, 1.0f});
  GraphDeltaLog log(1);
  auto dyn_owner = MakeDynamic(&g);
  DynamicHeteroGraph& dyn = *dyn_owner;
  ASSERT_TRUE(
      dyn.ApplyBatch(MakeBatch(&log, 0,
                               {{1, 4, RelationKind::kClick, 2.0f, 0},
                                {1, 2, RelationKind::kClick, 3.0f, 0},
                                {0, 1, RelationKind::kClick, 5.0f, 0}}))
          .ok());
  DynamicGraphView view(&dyn);

  graph::NeighborScratch scratch;
  auto items = view.NeighborsOfType(1, NodeType::kItem, &scratch);
  ASSERT_EQ(items.size(), 3);  // base 2, 3 + fresh 4
  std::map<NodeId, float> by_id;
  for (int64_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(g.node_type(items.ids[i]), NodeType::kItem);
    by_id[items.ids[i]] = items.weights[i];
  }
  EXPECT_FLOAT_EQ(by_id[2], 4.0f);  // 1 base + 3 delta, coalesced
  EXPECT_FLOAT_EQ(by_id[3], 1.0f);
  EXPECT_FLOAT_EQ(by_id[4], 2.0f);

  graph::NeighborScratch user_scratch;
  auto users = view.NeighborsOfType(1, NodeType::kUser, &user_scratch);
  ASSERT_EQ(users.size(), 1);
  EXPECT_EQ(users.ids[0], 0);
  EXPECT_FLOAT_EQ(users.weights[0], 6.0f);  // 1 base + 5 delta

  // The typed union must equal the full merge filtered by type.
  graph::NeighborScratch full_scratch;
  auto full = view.Neighbors(1, &full_scratch);
  EXPECT_EQ(full.size(), items.size() + users.size());

  // Untouched node: the static view's zero-copy sub-span semantics.
  graph::NeighborScratch s2;
  auto untouched = view.NeighborsOfType(3, NodeType::kQuery, &s2);
  graph::CsrGraphView csr(g);
  graph::NeighborScratch s3;
  auto expect = csr.NeighborsOfType(3, NodeType::kQuery, &s3);
  ASSERT_EQ(untouched.size(), expect.size());
  for (int64_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(untouched.ids[i], expect.ids[i]);
  }
  EXPECT_EQ(expect.ids.data(), g.NeighborsOfType(3, NodeType::kQuery).data());
}

// --- GNN baselines through GraphView ----------------------------------------

TEST(BaselineGraphViewTest, GnnBaselineScoresFreshEdgesThroughDynamicView) {
  // Distinct per-item slots so neighbor identity changes the aggregation.
  HeteroGraphBuilder b(kDim);
  b.AddNode(NodeType::kUser, std::vector<float>(kDim, 0.1f), {0});
  b.AddNode(NodeType::kQuery, std::vector<float>(kDim, 0.2f), {1});
  for (int i = 0; i < 6; ++i) {
    b.AddNode(NodeType::kItem, std::vector<float>(kDim, 0.3f), {2 + i});
  }
  ASSERT_TRUE(b.AddEdge(0, 1, RelationKind::kClick, 1.0f).ok());
  ASSERT_TRUE(b.AddEdge(1, 2, RelationKind::kClick, 1.0f).ok());
  ASSERT_TRUE(b.AddEdge(1, 3, RelationKind::kClick, 1.0f).ok());
  HeteroGraph g = b.Build();

  GraphDeltaLog log(1);
  auto dyn_owner = MakeDynamic(&g);
  DynamicHeteroGraph& dyn = *dyn_owner;
  ASSERT_TRUE(
      dyn.ApplyBatch(
             MakeBatch(&log, 0, {{1, 7, RelationKind::kClick, 4.0f, 0}}))
          .ok());
  DynamicGraphView view(&dyn);

  auto cfg = baselines::GnnBaselineConfig::GraphSage(/*hidden_dim=*/8,
                                                     /*k=*/8, /*seed=*/3);
  cfg.sampler.num_hops = 1;
  baselines::GnnBaselineModel model(&g, cfg);

  // k >= degree makes uniform sampling exhaustive, so the embedding is a
  // deterministic function of the visible neighborhood.
  Rng r1(11);
  auto uq_static = model.UserQueryEmbeddingInference(0, 1, &r1);
  model.AttachGraphView(&view);
  EXPECT_EQ(&model.view(), &view);
  Rng r2(11);
  auto uq_fresh = model.UserQueryEmbeddingInference(0, 1, &r2);
  // The freshly ingested (1, 7) click enters the query ROI, so the scores
  // must move — the static baselines were blind to streamed edges before.
  bool moved = false;
  for (size_t i = 0; i < uq_static.size(); ++i) {
    moved |= std::abs(uq_static[i] - uq_fresh[i]) > 1e-6f;
  }
  EXPECT_TRUE(moved);

  // Detaching restores the construction-graph view bit-for-bit.
  model.AttachGraphView(nullptr);
  Rng r3(11);
  auto uq_back = model.UserQueryEmbeddingInference(0, 1, &r3);
  ASSERT_EQ(uq_back.size(), uq_static.size());
  for (size_t i = 0; i < uq_back.size(); ++i) {
    EXPECT_FLOAT_EQ(uq_back[i], uq_static[i]);
  }
}

// --- Serving-layer coordination ---------------------------------------------

TEST(ServingMaintenanceTest, TtlSweepInvalidatesNeighborCacheViaScheduler) {
  // An ingested click surfaces in the serving NeighborCache; once it ages
  // past TTL, the janitor sweep's touched-node report must flow through
  // OnlineServer::AttachMaintenance into an invalidation + windowed re-fill.
  const int dim = 8;
  const int num_items = 6;
  HeteroGraph g = MakeTinyGraph(num_items);
  std::vector<float> node_emb(g.num_nodes() * dim, 0.0f);
  std::vector<NodeId> item_ids;
  std::vector<float> item_emb(num_items * dim, 0.0f);
  for (int i = 0; i < num_items; ++i) {
    item_ids.push_back(2 + i);
    item_emb[static_cast<int64_t>(i) * dim + i] = 1.0f;
  }
  serving::OnlineServerOptions sopt;
  sopt.embedding_dim = dim;
  sopt.top_n = 3;
  serving::OnlineServer server(&g, sopt, node_emb, item_ids, item_emb);

  GraphDeltaLog log(2);
  auto dyn_owner = MakeDynamic(&g);
  DynamicHeteroGraph& dyn = *dyn_owner;
  server.AttachDynamicGraph(&dyn);
  ManualClock clock(1000);
  MaintenanceScheduler scheduler;
  scheduler.AddPolicy(std::make_unique<TtlDecayPolicy>(
                          &dyn, &clock, DecaySpec::Window(500, 0.0)),
                      {});
  server.AttachMaintenance(&scheduler);

  streaming::IngestOptions iopt;
  iopt.num_shards = 2;
  streaming::IngestPipeline pipeline(&log, &dyn, iopt);
  pipeline.AddUpdateListener([&](uint64_t epoch, const std::vector<NodeId>& nodes) {
    server.OnGraphUpdate(epoch, nodes);
  });
  pipeline.Start();

  const NodeId fresh_item = 2 + 3;
  graph::SessionRecord session;
  session.user = 0;
  session.query = 1;
  session.clicks = {fresh_item};
  session.timestamp = 1000;
  server.WarmCache({0, 1});
  ASSERT_TRUE(pipeline.Offer(session));
  pipeline.Flush();

  auto query_has_item = [&] {
    std::vector<NodeId> out;
    // Warm-path read: the cache was invalidated by the hooks, so poll for
    // the async re-fill to land.
    for (int i = 0; i < 2000; ++i) {
      if (server.cache().Get(1, &out)) {
        return std::find(out.begin(), out.end(), fresh_item) != out.end();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return false;
  };
  EXPECT_TRUE(query_has_item());

  // Age the click past its TTL and sweep: the report's touched nodes reach
  // the server's NeighborCache, and the re-fill excludes the expired edge.
  clock.AdvanceSeconds(600);
  auto r = scheduler.RunOnceForTest("ttl_decay");
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.value().acted);
  bool gone = false;
  for (int i = 0; i < 2000 && !gone; ++i) {
    std::vector<NodeId> out;
    if (server.cache().Get(1, &out)) {
      gone = std::find(out.begin(), out.end(), fresh_item) == out.end();
    }
    if (!gone) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(gone);
  pipeline.Stop();
}

// --- Incremental compaction policy (per-segment, adaptive hotness) ----------

/// 16-node graph (user 0, query 1, items 2..15) partitioned into four
/// 4-row segments.
std::unique_ptr<DynamicHeteroGraph> MakeSegmented(const HeteroGraph* g) {
  streaming::DynamicHeteroGraphOptions opt;
  opt.segment_span = 4;
  return std::make_unique<DynamicHeteroGraph>(g, opt);
}

TEST(IncrementalCompactionPolicyTest, FoldsOnlySegmentsOverBudget) {
  HeteroGraph g = MakeTinyGraph(14);
  GraphDeltaLog log(1);
  auto dyn_owner = MakeSegmented(&g);
  DynamicHeteroGraph& dyn = *dyn_owner;
  CompactionPolicyOptions opt;
  opt.max_delta_entries = 1 << 20;  // global safety net far away
  opt.segment_entry_budget = 6;
  opt.read_hot_boost = 1.0;  // pure entry budget (adaptation off)
  CompactionPolicy policy(&dyn, &log, /*clock=*/nullptr, opt);
  // A (non-expiring) TTL window makes the policy report folded_ranges —
  // without one, folds preserve distributions and report nothing.
  ManualClock clock;
  clock.SetSeconds(100);
  dyn.ConfigureDecay(DecaySpec::Window(1 << 30, 0.0), &clock);

  // Segment 2 (rows 8..11) runs hot: 4 same-segment edges = 8 half-edges
  // there. Segment 0 stays just warm: 1 edge = 2 half-edges.
  for (NodeId it = 8; it < 12; ++it) {
    ASSERT_TRUE(
        dyn.ApplyBatch(MakeBatch(
                           &log, 0,
                           {{it, it == 11 ? NodeId{8} : it + 1,
                             RelationKind::kSession, 1.0f, 0}}))
            .ok());
  }
  ASSERT_TRUE(
      dyn.ApplyBatch(
             MakeBatch(&log, 0, {{1, 2, RelationKind::kClick, 1.0f, 0}}))
          .ok());

  auto base_before = dyn.base();
  auto r = policy.RunOnce();
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().acted);
  EXPECT_EQ(policy.incremental_compactions(), 1);
  ASSERT_EQ(r.value().folded_ranges.size(), 1u);
  EXPECT_EQ(r.value().folded_ranges[0].first, 8);
  EXPECT_EQ(r.value().folded_ranges[0].second, 12);

  // Only segment 2 was rebuilt; segment 0's overlay survived untouched and
  // the other segments are shared pointers.
  auto base_after = dyn.base();
  EXPECT_NE(base_after->segment_ptr(2), base_before->segment_ptr(2));
  EXPECT_EQ(base_after->segment_ptr(0), base_before->segment_ptr(0));
  EXPECT_EQ(base_after->segment_ptr(1), base_before->segment_ptr(1));
  EXPECT_EQ(base_after->segment_ptr(3), base_before->segment_ptr(3));
  EXPECT_EQ(dyn.num_delta_entries(), 2);  // the warm segment-0 edge
  EXPECT_EQ(base_after->degree(8), 2);    // session ring folded in
  // The log keeps everything the warm overlay still pends on.
  EXPECT_GT(log.Stats().total_batches, 0);
  auto pressures = dyn.SegmentPressures();
  EXPECT_EQ(pressures[2].delta_entries, 0);
  EXPECT_EQ(pressures[0].delta_entries, 2);
  EXPECT_GT(pressures[2].folded_epoch, 0u);
}

TEST(IncrementalCompactionPolicyTest, ReadHotSegmentsFoldSooner) {
  HeteroGraph g = MakeTinyGraph(14);
  GraphDeltaLog log(1);
  auto dyn_owner = MakeSegmented(&g);
  DynamicHeteroGraph& dyn = *dyn_owner;
  CompactionPolicyOptions opt;
  opt.max_delta_entries = 1 << 20;
  // Neither segment reaches the static budget (each holds 4 half-edges);
  // with two dirty segments the fleet-average normalization lets a
  // read-hot one fold at just over half the budget.
  opt.segment_entry_budget = 7;
  opt.read_hot_boost = 4.0;
  CompactionPolicy policy(&dyn, &log, nullptr, opt);
  ManualClock clock;
  clock.SetSeconds(100);
  dyn.ConfigureDecay(DecaySpec::Window(1 << 30, 0.0), &clock);

  // Equal delta mass (4 half-edges each) in segments 2 and 3.
  ASSERT_TRUE(dyn.ApplyBatch(MakeBatch(&log, 0,
                                       {{8, 9, RelationKind::kSession, 1.f, 0},
                                        {10, 11, RelationKind::kSession, 1.f,
                                         0}}))
                  .ok());
  ASSERT_TRUE(dyn.ApplyBatch(MakeBatch(&log, 0,
                                       {{12, 13, RelationKind::kSession, 1.f,
                                         0},
                                        {14, 15, RelationKind::kSession, 1.f,
                                         0}}))
                  .ok());
  // First pass baselines the read counters (nothing folds yet).
  auto r = policy.RunOnce();
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().acted);

  // Hammer overlay reads on segment 2 only.
  auto snap = dyn.MakeSnapshot();
  Rng rng(3);
  for (int i = 0; i < 512; ++i) {
    snap.SampleNeighbor(8 + (i % 4), &rng);
  }
  r = policy.RunOnce();
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.value().acted) << "read-hot segment should fold below budget";
  ASSERT_EQ(r.value().folded_ranges.size(), 1u);
  EXPECT_EQ(r.value().folded_ranges[0].first, 8);   // segment 2, not 3
  auto pressures = dyn.SegmentPressures();
  EXPECT_EQ(pressures[2].delta_entries, 0);
  EXPECT_EQ(pressures[3].delta_entries, 4);
}

TEST(HotNodeCacheTest, ReadHammeredSegmentsAdmitAtLowerDeltaThreshold) {
  // Admission is read-rate aware, not delta-count alone: nodes 8 (segment
  // 2) and 12 (segment 3) carry identical delta mass below the fleet
  // default floor, but only the segment whose overlay readers hammer it
  // earns materialization at the reduced floor.
  HeteroGraph g = MakeTinyGraph(14);
  GraphDeltaLog log(1);
  auto dyn_owner = MakeSegmented(&g);
  DynamicHeteroGraph& dyn = *dyn_owner;
  HotNodeCacheOptions copt;
  copt.min_delta_entries = 4;   // fleet default
  copt.read_admit_boost = 4.0;  // read-hot floor can drop to 1
  HotNodeOverlayCache cache(g.num_nodes(), copt);
  HotNodeRefreshPolicy policy(&dyn, &cache);

  // Two delta half-edges on node 8 and two on node 12 — both below 4.
  ASSERT_TRUE(dyn.ApplyBatch(MakeBatch(&log, 0,
                                       {{8, 9, RelationKind::kSession, 1.f, 0},
                                        {8, 10, RelationKind::kSession, 1.f,
                                         0}}))
                  .ok());
  ASSERT_TRUE(dyn.ApplyBatch(MakeBatch(&log, 0,
                                       {{12, 13, RelationKind::kSession, 1.f,
                                         0},
                                        {12, 14, RelationKind::kSession, 1.f,
                                         0}}))
                  .ok());
  // First pass baselines the read counters; no floor is boosted and no
  // node crosses the default threshold.
  auto r = policy.RunOnce();
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().acted);
  EXPECT_EQ(cache.size(), 0u);

  // Hammer overlay reads on segment 2 only.
  {
    auto snap = dyn.MakeSnapshot();
    Rng rng(3);
    for (int i = 0; i < 512; ++i) {
      snap.SampleNeighbor(8 + (i % 3), &rng);
    }
  }
  r = policy.RunOnce();
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().acted) << "read-hot segment should admit below floor";
  EXPECT_GE(obs::MetricsRegistry::Global()
                ->GetGauge("maintenance.hot_cache.read_boosted_segments")
                ->Value(),
            1.0);
  auto snap = dyn.MakeSnapshot();
  const DecaySpec no_decay;
  EXPECT_TRUE(cache.IsFresh(8, dyn.node_epoch(8), snap.segment_generation(8),
                            /*decay_active=*/false, /*as_of_seconds=*/0,
                            no_decay));
  EXPECT_FALSE(cache.IsFresh(12, dyn.node_epoch(12),
                             snap.segment_generation(12),
                             /*decay_active=*/false, /*as_of_seconds=*/0,
                             no_decay));
}

TEST(IncrementalCompactionPolicyTest, GlobalThresholdStillForcesFullFold) {
  HeteroGraph g = MakeTinyGraph(14);
  GraphDeltaLog log(1);
  auto dyn_owner = MakeSegmented(&g);
  DynamicHeteroGraph& dyn = *dyn_owner;
  CompactionPolicyOptions opt;
  opt.max_delta_entries = 4;      // the legacy safety net
  opt.segment_entry_budget = 100;  // incremental alone would never trigger
  CompactionPolicy policy(&dyn, &log, nullptr, opt);

  ASSERT_TRUE(dyn.ApplyBatch(MakeBatch(&log, 0,
                                       {{1, 2, RelationKind::kClick, 1.f, 0},
                                        {8, 9, RelationKind::kSession, 1.f,
                                         0}}))
                  .ok());
  auto r = policy.RunOnce();
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().acted);
  EXPECT_EQ(policy.compactions(), 1);
  EXPECT_EQ(policy.incremental_compactions(), 0);
  EXPECT_EQ(dyn.num_delta_entries(), 0);
  EXPECT_EQ(log.Stats().total_events, 0);  // SafeTruncateEpoch == watermark
  // No TTL window => the fold preserved every distribution and reported no
  // ranges — serving caches see zero invalidation (no refill storm).
  EXPECT_TRUE(r.value().folded_ranges.empty());
}

TEST(TtlDecayTest, SweepTruncatesFullyExpiredLogBatches) {
  HeteroGraph g = MakeTinyGraph(4);
  GraphDeltaLog log(1);
  auto dyn_owner = MakeDynamic(&g);
  DynamicHeteroGraph& dyn = *dyn_owner;
  ManualClock clock;
  clock.SetSeconds(1000);
  DecaySpec spec = DecaySpec::Window(/*ttl_seconds=*/100, 0.0);
  TtlDecayPolicy policy(&dyn, &clock, spec, &log);

  // One aged batch, one fresh; both applied (watermark covers them).
  ASSERT_TRUE(dyn.ApplyBatch(MakeBatch(&log, 0,
                                       {{1, 2, RelationKind::kClick, 1.f,
                                         /*timestamp=*/850}},
                                       &dyn))
                  .ok());
  ASSERT_TRUE(dyn.ApplyBatch(MakeBatch(&log, 0,
                                       {{1, 3, RelationKind::kClick, 1.f,
                                         /*timestamp=*/990}},
                                       &dyn))
                  .ok());
  auto r = policy.RunOnce();
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().acted);
  // The overlay sweep dropped the aged entries AND the log dropped the
  // batch that carried them — a quiet stream no longer pins it until the
  // next fold.
  EXPECT_EQ(policy.log_batches_truncated(), 1);
  EXPECT_EQ(log.Stats().total_batches, 1);
  EXPECT_EQ(dyn.num_delta_entries(), 2);  // the fresh edge's two halves
}

}  // namespace
}  // namespace maintenance
}  // namespace zoomer
