// Tests for the serving stack: ANN index recall and edge cases, neighbor
// cache hit/miss + async refresh semantics, and end-to-end request handling
// with the load generator.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <set>
#include <thread>

#include "common/random.h"
#include "data/taobao_generator.h"
#include "engine/distributed_graph_engine.h"
#include "obs/metrics.h"
#include "serving/ann_index.h"
#include "serving/neighbor_cache.h"
#include "serving/online_server.h"
#include "streaming/dynamic_hetero_graph.h"
#include "streaming/graph_delta_log.h"
#include "streaming/ingest_pipeline.h"

namespace zoomer {
namespace serving {
namespace {

std::vector<float> RandomVectors(int64_t n, int dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n * dim);
  for (auto& x : v) x = static_cast<float>(rng.Normal());
  return v;
}

TEST(AnnIndexTest, BuildValidation) {
  AnnIndex index({});
  EXPECT_FALSE(index.Build({}, 0, 4, {}).ok());
  EXPECT_FALSE(index.Build({1.0f, 2.0f}, 1, 4, {0}).ok());  // size mismatch
  EXPECT_FALSE(index.Build({1.0f, 2.0f, 3.0f, 4.0f}, 1, 4, {0, 1}).ok());
}

TEST(AnnIndexTest, ExactSearchReturnsTrueNearest) {
  const int dim = 8;
  auto vecs = RandomVectors(100, dim, 3);
  std::vector<int64_t> ids(100);
  for (int i = 0; i < 100; ++i) ids[i] = 1000 + i;
  AnnIndex index({});
  ASSERT_TRUE(index.Build(vecs, 100, dim, ids).ok());
  // Query = vector 42 itself: best exact match must be id 1042.
  auto results = index.SearchExact(vecs.data() + 42 * dim, 5);
  ASSERT_EQ(results.size(), 5u);
  EXPECT_EQ(results[0].id, 1042);
  EXPECT_NEAR(results[0].score, 1.0f, 1e-4f);
  // Scores descending.
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_LE(results[i].score, results[i - 1].score);
  }
}

class AnnRecallTest : public ::testing::TestWithParam<int> {};

TEST_P(AnnRecallTest, RecallAt10ReasonableForNprobe) {
  const int nprobe = GetParam();
  const int dim = 16;
  const int64_t n = 500;
  auto vecs = RandomVectors(n, dim, 7);
  std::vector<int64_t> ids(n);
  for (int64_t i = 0; i < n; ++i) ids[i] = i;
  AnnIndexOptions opt;
  opt.nlist = 20;
  opt.nprobe = nprobe;
  AnnIndex index(opt);
  ASSERT_TRUE(index.Build(vecs, n, dim, ids).ok());

  Rng rng(11);
  double recall_sum = 0.0;
  const int queries = 30;
  for (int q = 0; q < queries; ++q) {
    std::vector<float> query(dim);
    for (auto& x : query) x = static_cast<float>(rng.Normal());
    auto approx = index.Search(query.data(), 10);
    auto exact = index.SearchExact(query.data(), 10);
    std::set<int64_t> exact_ids;
    for (const auto& r : exact) exact_ids.insert(r.id);
    int hits = 0;
    for (const auto& r : approx) hits += exact_ids.count(r.id);
    recall_sum += hits / 10.0;
  }
  const double recall = recall_sum / queries;
  // Recall grows with nprobe; full probe = exact.
  if (nprobe >= 20) {
    EXPECT_NEAR(recall, 1.0, 1e-9);
  } else {
    EXPECT_GT(recall, nprobe >= 8 ? 0.6 : 0.2);
  }
}

INSTANTIATE_TEST_SUITE_P(NprobeLevels, AnnRecallTest,
                         ::testing::Values(2, 8, 20));

TEST(AnnIndexTest, SearchFasterThanExactOnLargeIndex) {
  const int dim = 32;
  const int64_t n = 5000;
  auto vecs = RandomVectors(n, dim, 13);
  std::vector<int64_t> ids(n);
  for (int64_t i = 0; i < n; ++i) ids[i] = i;
  AnnIndexOptions opt;
  opt.nlist = 50;
  opt.nprobe = 5;
  AnnIndex index(opt);
  ASSERT_TRUE(index.Build(vecs, n, dim, ids).ok());
  std::vector<float> query(dim, 0.5f);
  // Best-of-N timing: a single measurement loses to preemption when the
  // suite shares cores with parallel ctest; the minimum over several short
  // windows is robust to context switches.
  auto best_of = [](auto&& fn) {
    double best = 1e30;
    for (int rep = 0; rep < 5; ++rep) {
      WallTimer t;
      for (int i = 0; i < 20; ++i) fn();
      best = std::min(best, t.ElapsedMicros());
    }
    return best;
  };
  const double approx_time = best_of([&] { index.Search(query.data(), 10); });
  const double exact_time =
      best_of([&] { index.SearchExact(query.data(), 10); });
  EXPECT_LT(approx_time, exact_time);
}

// --- NeighborCache ---------------------------------------------------------------

const data::RetrievalDataset& Dataset() {
  static const data::RetrievalDataset* ds = [] {
    data::TaobaoGeneratorOptions opt;
    opt.num_users = 60;
    opt.num_queries = 40;
    opt.num_items = 120;
    opt.num_sessions = 500;
    opt.num_categories = 5;
    opt.content_dim = 8;
    opt.seed = 41;
    return new data::RetrievalDataset(GenerateTaobaoDataset(opt));
  }();
  return *ds;
}

TEST(NeighborCacheTest, MissThenAsyncFillThenHit) {
  const auto& ds = Dataset();
  NeighborCacheOptions opt;
  opt.k = 5;
  NeighborCache cache(&ds.graph, opt);
  std::vector<graph::NodeId> out;
  EXPECT_FALSE(cache.Get(0, &out));  // cold miss schedules refresh
  EXPECT_EQ(cache.misses(), 1);
  // Wait for the async fill.
  for (int i = 0; i < 100 && cache.size() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(cache.Get(0, &out));
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_LE(out.size(), 5u);
}

TEST(NeighborCacheTest, WarmReturnsHighestWeightNeighbors) {
  const auto& ds = Dataset();
  NeighborCacheOptions opt;
  opt.k = 3;
  NeighborCache cache(&ds.graph, opt);
  // Find a node with degree > 3.
  graph::NodeId node = -1;
  for (graph::NodeId v = 0; v < ds.graph.num_nodes(); ++v) {
    if (ds.graph.degree(v) > 3) {
      node = v;
      break;
    }
  }
  ASSERT_NE(node, -1);
  cache.Warm(node);
  std::vector<graph::NodeId> out;
  ASSERT_TRUE(cache.Get(node, &out));
  ASSERT_EQ(out.size(), 3u);
  // Cached entries must be the top-weight neighbors.
  auto ids = ds.graph.neighbor_ids(node);
  auto weights = ds.graph.neighbor_weights(node);
  float min_cached = 1e30f;
  for (auto c : out) {
    for (size_t i = 0; i < ids.size(); ++i) {
      if (ids[i] == c) min_cached = std::min(min_cached, weights[i]);
    }
  }
  int heavier_outside = 0;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (std::find(out.begin(), out.end(), ids[i]) == out.end() &&
        weights[i] > min_cached) {
      ++heavier_outside;
    }
  }
  EXPECT_EQ(heavier_outside, 0);
}

TEST(NeighborCacheTest, WarmAllFillsEverything) {
  const auto& ds = Dataset();
  NeighborCache cache(&ds.graph, {});
  std::vector<graph::NodeId> nodes = {0, 1, 2, 3, 4};
  cache.WarmAll(nodes);
  EXPECT_EQ(cache.size(), 5u);
  std::vector<graph::NodeId> out;
  for (auto n : nodes) EXPECT_TRUE(cache.Get(n, &out));
}

// --- OnlineServer ------------------------------------------------------------------

std::unique_ptr<OnlineServer> MakeServer(const data::RetrievalDataset& ds,
                                         OnlineServerOptions opt) {
  const int d = opt.embedding_dim;
  Rng rng(55);
  std::vector<float> node_emb(ds.graph.num_nodes() * d);
  for (auto& x : node_emb) x = static_cast<float>(rng.Normal()) * 0.5f;
  std::vector<float> item_emb(ds.all_items.size() * d);
  for (size_t i = 0; i < ds.all_items.size(); ++i) {
    std::copy(node_emb.begin() + ds.all_items[i] * d,
              node_emb.begin() + (ds.all_items[i] + 1) * d,
              item_emb.begin() + static_cast<int64_t>(i) * d);
  }
  return std::make_unique<OnlineServer>(&ds.graph, opt, std::move(node_emb),
                                        ds.all_items, item_emb);
}

TEST(OnlineServerTest, HandleReturnsTopNItems) {
  const auto& ds = Dataset();
  OnlineServerOptions opt;
  opt.embedding_dim = 8;
  opt.top_n = 10;
  auto server = MakeServer(ds, opt);
  ServingResponse resp = server->Handle({ds.test[0].user, ds.test[0].query});
  ASSERT_EQ(resp.items.size(), 10u);
  EXPECT_GT(resp.latency_ms, 0.0);
  // All results are item node ids.
  for (const auto& r : resp.items) {
    EXPECT_EQ(ds.graph.node_type(r.id), graph::NodeType::kItem);
  }
  // Descending scores.
  for (size_t i = 1; i < resp.items.size(); ++i) {
    EXPECT_LE(resp.items[i].score, resp.items[i - 1].score);
  }
}

TEST(OnlineServerTest, CacheWarmupIncreasesHitRate) {
  const auto& ds = Dataset();
  OnlineServerOptions opt;
  opt.embedding_dim = 8;
  auto server = MakeServer(ds, opt);
  std::vector<graph::NodeId> warm_nodes;
  for (int i = 0; i < 20; ++i) {
    warm_nodes.push_back(ds.test[i].user);
    warm_nodes.push_back(ds.test[i].query);
  }
  server->WarmCache(warm_nodes);
  for (int i = 0; i < 20; ++i) {
    server->Handle({ds.test[i].user, ds.test[i].query});
  }
  EXPECT_GT(server->cache().hits(), 30);  // 2 lookups per request, warmed
}

TEST(OnlineServerTest, SessionTokenRoutesReadsThroughEngine) {
  const auto& ds = Dataset();
  obs::MetricsRegistry reg;
  OnlineServerOptions opt;
  opt.embedding_dim = 8;
  opt.top_n = 5;
  opt.registry = &reg;
  auto server = MakeServer(ds, opt);

  const int kShards = 2;
  streaming::GraphDeltaLog log(kShards);
  streaming::DynamicHeteroGraph primary(&ds.graph);
  engine::EngineOptions eopt;
  eopt.num_shards = kShards;
  eopt.replication_factor = 2;
  eopt.registry = &reg;
  engine::DistributedGraphEngine eng(&ds.graph, eopt);
  eng.ConnectUpdateFanout(&log, &primary);
  server->AttachEngine(&eng);

  streaming::IngestOptions iopt;
  iopt.num_shards = kShards;
  iopt.batch_size = 4;
  iopt.registry = &reg;
  streaming::IngestPipeline pipe(&log, &primary, iopt, &eng);
  pipe.AddUpdateListener(
      [&](uint64_t epoch, const std::vector<graph::NodeId>& nodes) {
        server->OnGraphUpdate(epoch, nodes);
      });
  pipe.Start();

  // The session writes two click edges, then reads with a token stamped
  // from the write's delta-log epoch: the ego neighbor reads must go
  // through the engine's freshness-aware router, not the (stale) cache.
  graph::SessionRecord session;
  session.user = ds.test[0].user;
  session.query = ds.test[0].query;
  session.clicks = {ds.all_items[0], ds.all_items[1]};
  ASSERT_TRUE(pipe.Offer(session));
  pipe.Flush();
  ASSERT_GT(server->last_update_epoch(), 0u);

  SessionToken token;
  token.Observe(server->last_update_epoch());
  EXPECT_EQ(token.last_write_epoch, server->last_update_epoch());
  const uint64_t stamped = token.last_write_epoch;
  token.Observe(stamped - 1);  // stale observes must not roll back
  EXPECT_EQ(token.last_write_epoch, stamped);

  ServingResponse resp = server->Handle({session.user, session.query}, token);
  EXPECT_EQ(resp.items.size(), 5u);

  auto snap = reg.Snapshot();
  const obs::MetricPoint* ryw = snap.Find("serving.read_your_writes_requests");
  ASSERT_NE(ryw, nullptr);
  EXPECT_EQ(ryw->value, 1.0);
  const obs::MetricPoint* samples = snap.Find("engine.sample_requests");
  ASSERT_NE(samples, nullptr);
  EXPECT_GE(samples->value, 1.0);  // ego reads actually hit the engine

  // A tokenless Handle uses the cache path and never touches the engine.
  const double engine_samples = samples->value;
  server->Handle({session.user, session.query});
  snap = reg.Snapshot();
  EXPECT_EQ(snap.Find("engine.sample_requests")->value, engine_samples);
  EXPECT_EQ(snap.Find("serving.read_your_writes_requests")->value, 1.0);
  pipe.Stop();
}

TEST(OnlineServerTest, LoadGeneratorMeasuresThroughput) {
  const auto& ds = Dataset();
  OnlineServerOptions opt;
  opt.embedding_dim = 8;
  auto server = MakeServer(ds, opt);
  std::vector<ServingRequest> pool;
  for (int i = 0; i < 50; ++i) pool.push_back({ds.test[i].user, ds.test[i].query});
  for (const auto& r : pool) server->WarmCache({r.user, r.query});
  // Offered load and throughput floors scale with the machine so the test
  // neither starves small CI runners nor under-exercises big ones (the old
  // hard-coded 500-QPS/200-floor pair was CPU-count sensitive and needed a
  // RUN_SERIAL workaround).
  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
  const double offered_qps = 125.0 * std::min(hw, 8u);  // 250..1000
  const double duration_s = 0.5;
  auto result = RunLoad(server.get(), pool, offered_qps, duration_s,
                        /*client_threads=*/2, /*seed=*/3);
  // Expect at least 40% of the offered load to complete within the window —
  // cache-warmed requests are microseconds of work, so anything lower means
  // the harness (not the server) is starved.
  EXPECT_GT(result.requests,
            static_cast<int64_t>(offered_qps * duration_s * 0.4));
  EXPECT_GT(result.achieved_qps, offered_qps * 0.4);
  EXPECT_GT(result.p99_ms, 0.0);
  EXPECT_GE(result.p99_ms, result.p50_ms);
}

}  // namespace
}  // namespace serving
}  // namespace zoomer
