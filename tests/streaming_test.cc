// Tests for the streaming graph-update subsystem: delta-log epochs,
// delta-overlay sampling correctness against exact weights, epoch-snapshot
// isolation under concurrent ingest, the cross-shard watermark epoch,
// compaction (including mid-ingest quiescence), GraphView base+delta parity
// against a compacted CSR, cache invalidation with fill dedup, end-to-end
// freshness at the serving layer, and training-time freshness through the
// dynamic GraphView.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <thread>

#include "common/random.h"
#include "core/roi_sampler.h"
#include "core/trainer.h"
#include "core/zoomer_model.h"
#include "data/session_stream.h"
#include "data/taobao_generator.h"
#include "engine/distributed_graph_engine.h"
#include "serving/neighbor_cache.h"
#include "serving/online_server.h"
#include "streaming/dynamic_graph_view.h"
#include "streaming/dynamic_hetero_graph.h"
#include "streaming/graph_delta_log.h"
#include "streaming/ingest_pipeline.h"
#include "streaming/training_freshness.h"

namespace zoomer {
namespace streaming {
namespace {

using graph::HeteroGraph;
using graph::HeteroGraphBuilder;
using graph::NodeId;
using graph::NodeType;
using graph::RelationKind;

constexpr int kDim = 4;

/// user 0, query 1, items 2..2+num_items-1; a single user-query click edge
/// plus optional weighted query-item edges.
HeteroGraph MakeTinyGraph(int num_items,
                          const std::vector<float>& query_item_weights = {}) {
  HeteroGraphBuilder b(kDim);
  b.AddNode(NodeType::kUser, std::vector<float>(kDim, 0.1f), {0});
  b.AddNode(NodeType::kQuery, std::vector<float>(kDim, 0.2f), {1});
  for (int i = 0; i < num_items; ++i) {
    b.AddNode(NodeType::kItem, std::vector<float>(kDim, 0.3f), {2});
  }
  EXPECT_TRUE(b.AddEdge(0, 1, RelationKind::kClick, 1.0f).ok());
  for (size_t i = 0; i < query_item_weights.size(); ++i) {
    EXPECT_TRUE(b.AddEdge(1, 2 + static_cast<NodeId>(i), RelationKind::kClick,
                          query_item_weights[i])
                    .ok());
  }
  return b.Build();
}

/// When `track` is set, the epoch is marked pending on that graph atomically
/// with issuance (as the ingest pipeline does), enabling watermark pinning.
DeltaBatch MakeBatch(GraphDeltaLog* log, int shard,
                     std::vector<EdgeEvent> events,
                     DynamicHeteroGraph* track = nullptr) {
  DeltaBatch batch;
  batch.events = std::move(events);
  batch.epoch =
      track == nullptr
          ? log->Append(shard, batch.events)
          : log->Append(shard, batch.events,
                        [track](uint64_t e) { track->NoteEpochIssued(e); });
  return batch;
}

NodeEvent MakeItemEvent(float fill = 0.4f, int64_t timestamp = 0) {
  NodeEvent ev;
  ev.type = NodeType::kItem;
  ev.content = std::vector<float>(kDim, fill);
  ev.slots = {7, 8};
  ev.timestamp = timestamp;
  return ev;
}

/// Node(+edge) batch through the log: ids allocated by `graph` under the
/// epoch lock, -1 edge placeholders resolved to the first node's id.
DeltaBatch MakeNodeBatch(GraphDeltaLog* log, int shard,
                         DynamicHeteroGraph* graph,
                         std::vector<NodeEvent> nodes,
                         std::vector<EdgeEvent> edges = {}) {
  DeltaBatch batch;
  auto epoch = log->AppendWithNodes(
      shard, &nodes, &edges,
      [graph](const std::vector<NodeEvent>& evs, uint64_t e) {
        return graph->AllocateNodeIds(evs, e);
      },
      [graph](uint64_t e) { graph->NoteEpochIssued(e); });
  ZCHECK(epoch.ok()) << epoch.status().ToString();
  batch.epoch = epoch.value();
  batch.node_events = std::move(nodes);
  batch.events = std::move(edges);
  return batch;
}

/// Like MakeTinyGraph but with distinct random content vectors (so focal
/// relevance scores are tie-free) and weighted base query-item edges on the
/// first half of the items.
HeteroGraph MakeContentGraph(int num_items, uint64_t seed) {
  Rng rng(seed);
  HeteroGraphBuilder b(kDim);
  auto content = [&rng] {
    std::vector<float> c(kDim);
    for (auto& x : c) x = 0.05f + rng.UniformFloat();
    return c;
  };
  b.AddNode(NodeType::kUser, content(), {0});
  b.AddNode(NodeType::kQuery, content(), {1});
  for (int i = 0; i < num_items; ++i) {
    b.AddNode(NodeType::kItem, content(), {2});
  }
  EXPECT_TRUE(b.AddEdge(0, 1, RelationKind::kClick, 1.0f).ok());
  for (int i = 0; i < num_items / 2; ++i) {
    EXPECT_TRUE(b.AddEdge(1, 2 + static_cast<NodeId>(i), RelationKind::kClick,
                          0.5f + 3.0f * rng.UniformFloat())
                    .ok());
  }
  return b.Build();
}

// --- GraphDeltaLog --------------------------------------------------------

TEST(GraphDeltaLogTest, EpochsMonotonicAcrossShards) {
  GraphDeltaLog log(3);
  EXPECT_EQ(log.last_epoch(), 0u);
  const uint64_t e1 = log.Append(0, {{0, 1, RelationKind::kClick, 1.0f, 0}});
  const uint64_t e2 = log.Append(2, {{0, 2, RelationKind::kClick, 1.0f, 0}});
  const uint64_t e3 = log.Append(1, {{1, 2, RelationKind::kSession, 1.0f, 0}});
  EXPECT_LT(e1, e2);
  EXPECT_LT(e2, e3);
  EXPECT_EQ(log.last_epoch(), e3);
  auto stats = log.Stats();
  EXPECT_EQ(stats.total_batches, 3);
  EXPECT_EQ(stats.total_events, 3);
}

TEST(GraphDeltaLogTest, ReadSinceAndTruncate) {
  GraphDeltaLog log(2);
  const uint64_t e1 = log.Append(0, {{0, 1, RelationKind::kClick, 1.0f, 0}});
  const uint64_t e2 = log.Append(1, {{0, 2, RelationKind::kClick, 1.0f, 0},
                                     {1, 2, RelationKind::kClick, 1.0f, 0}});
  auto all = log.ReadSince(0);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].epoch, e1);  // epoch-sorted across shards
  EXPECT_EQ(all[1].epoch, e2);
  auto tail = log.ReadSince(e1);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].epoch, e2);
  EXPECT_EQ(tail[0].events.size(), 2u);

  log.Truncate(e1);
  EXPECT_EQ(log.ReadSince(0).size(), 1u);
  EXPECT_EQ(log.Stats().total_events, 2);
  EXPECT_EQ(log.last_epoch(), e2);  // truncation never rewinds epochs
}

TEST(GraphDeltaLogTest, BoundedReadSinceExcludesNewerEpochs) {
  GraphDeltaLog log(1);
  const uint64_t e1 = log.Append(0, {{0, 1, RelationKind::kClick, 1.0f, 0}});
  const uint64_t e2 = log.Append(0, {{0, 2, RelationKind::kClick, 1.0f, 0}});
  const uint64_t e3 = log.Append(0, {{1, 2, RelationKind::kClick, 1.0f, 0}});
  auto window = log.ReadSince(e1, e2);
  ASSERT_EQ(window.size(), 1u);
  EXPECT_EQ(window[0].epoch, e2);
  EXPECT_TRUE(log.ReadSince(e3, e3).empty());
  EXPECT_EQ(log.ReadSince(0, e3).size(), 3u);
}

TEST(GraphDeltaLogTest, ConsumerCursorsPinTruncation) {
  // A registered replay consumer (a replica's apply cursor) clamps
  // Truncate: its unconsumed tail survives however far compaction folded —
  // the property ReviveReplica's log replay depends on.
  GraphDeltaLog log(1);
  const uint64_t e1 = log.Append(0, {{0, 1, RelationKind::kClick, 1.0f, 0}});
  const uint64_t e2 = log.Append(0, {{0, 2, RelationKind::kClick, 1.0f, 0}});
  const uint64_t e3 = log.Append(0, {{1, 2, RelationKind::kClick, 1.0f, 0}});

  EXPECT_EQ(log.MinConsumerEpoch(), UINT64_MAX);  // no consumer: no floor
  const int c = log.RegisterConsumer(e1);
  EXPECT_EQ(log.ConsumerCursor(c), e1);
  EXPECT_EQ(log.MinConsumerEpoch(), e1);

  log.Truncate(e3);  // clamped to the consumer's cursor e1
  auto remaining = log.ReadSince(0);
  ASSERT_EQ(remaining.size(), 2u);
  EXPECT_EQ(remaining[0].epoch, e2);
  EXPECT_EQ(remaining[1].epoch, e3);

  log.AdvanceConsumer(c, e2);
  log.AdvanceConsumer(c, e1);  // monotone: lower values are ignored
  EXPECT_EQ(log.ConsumerCursor(c), e2);
  log.Truncate(e3);
  remaining = log.ReadSince(0);
  ASSERT_EQ(remaining.size(), 1u);
  EXPECT_EQ(remaining[0].epoch, e3);

  // Unregistering releases the pin entirely.
  log.UnregisterConsumer(c);
  log.Truncate(e3);
  EXPECT_TRUE(log.ReadSince(0).empty());
}

// --- DynamicHeteroGraph ---------------------------------------------------

TEST(DynamicGraphTest, ApplyBatchValidation) {
  HeteroGraph g = MakeTinyGraph(3);
  DynamicHeteroGraph dyn(&g);
  EXPECT_FALSE(dyn.ApplyBatch({0, {{0, 1, RelationKind::kClick, 1.0f, 0}}, {}})
                   .ok());  // missing epoch
  EXPECT_FALSE(
      dyn.ApplyBatch({1, {{0, 99, RelationKind::kClick, 1.0f, 0}}, {}}).ok());
  EXPECT_FALSE(
      dyn.ApplyBatch({1, {{2, 2, RelationKind::kClick, 1.0f, 0}}, {}}).ok());
  EXPECT_FALSE(
      dyn.ApplyBatch({1, {{0, 1, RelationKind::kClick, -1.0f, 0}}, {}}).ok());
  EXPECT_EQ(dyn.epoch(), 0u);
  EXPECT_EQ(dyn.num_delta_entries(), 0);
}

TEST(DynamicGraphTest, SamplingMatchesExactWeights) {
  // Base: query 1 -> item 2 (w=1), item 3 (w=3). Delta: item 4 (w=4) and
  // +2 more weight on item 3. Exact neighbor distribution for node 1
  // (ignoring the user edge by sampling node-1 draws and discarding none):
  //   user 0: 1/11, item 2: 1/11, item 3: 5/11, item 4: 4/11.
  HeteroGraph g = MakeTinyGraph(4, {1.0f, 3.0f});
  GraphDeltaLog log(1);
  DynamicHeteroGraph dyn(&g);
  ASSERT_TRUE(
      dyn.ApplyBatch(MakeBatch(&log, 0,
                               {{1, 4, RelationKind::kClick, 4.0f, 0},
                                {1, 3, RelationKind::kClick, 2.0f, 0}}))
          .ok());
  auto snap = dyn.MakeSnapshot();
  EXPECT_EQ(snap.Degree(1), 5);  // 3 base half-edges + 2 delta entries
  EXPECT_NEAR(snap.TotalWeight(1), 11.0, 1e-9);

  Rng rng(17);
  const int draws = 60000;
  std::map<NodeId, int> counts;
  for (int i = 0; i < draws; ++i) ++counts[snap.SampleNeighbor(1, &rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(draws), 1.0 / 11, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(draws), 1.0 / 11, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(draws), 5.0 / 11, 0.015);
  EXPECT_NEAR(counts[4] / static_cast<double>(draws), 4.0 / 11, 0.015);

  // Single-lock batched draws land on the same support, deduplicated.
  auto distinct = snap.SampleDistinctNeighbors(1, 10, &rng);
  EXPECT_GE(distinct.size(), 3u);  // 4 distinct neighbors, bounded retries
  for (NodeId nb : distinct) {
    EXPECT_TRUE(nb == 0 || nb == 2 || nb == 3 || nb == 4);
  }

  // Merged view coalesces the +2 into the base item-3 edge.
  std::vector<graph::NeighborEntry> merged;
  snap.Neighbors(1, &merged);
  ASSERT_EQ(merged.size(), 4u);
  for (const auto& e : merged) {
    if (e.neighbor == 3) {
      EXPECT_FLOAT_EQ(e.weight, 5.0f);
    }
    if (e.neighbor == 4) {
      EXPECT_FLOAT_EQ(e.weight, 4.0f);
    }
  }
}

TEST(DynamicGraphTest, UntouchedNodesSampleBasePath) {
  HeteroGraph g = MakeTinyGraph(4, {1.0f, 1.0f});
  GraphDeltaLog log(1);
  DynamicHeteroGraph dyn(&g);
  ASSERT_TRUE(
      dyn.ApplyBatch(
             MakeBatch(&log, 0, {{0, 2, RelationKind::kClick, 1.0f, 0}}))
          .ok());
  auto snap = dyn.MakeSnapshot();
  // Node 3's neighborhood is untouched: identical to the base CSR.
  EXPECT_FALSE(snap.HasDelta(3));
  EXPECT_EQ(snap.Degree(3), g.degree(3));
  Rng rng(5);
  EXPECT_EQ(snap.SampleNeighbor(3, &rng), 1);  // only neighbor is query 1
}

TEST(DynamicGraphTest, EpochSnapshotIsolation) {
  HeteroGraph g = MakeTinyGraph(4);
  GraphDeltaLog log(1);
  DynamicHeteroGraph dyn(&g);
  ASSERT_TRUE(
      dyn.ApplyBatch(
             MakeBatch(&log, 0, {{1, 2, RelationKind::kClick, 5.0f, 0}}))
          .ok());
  auto old_snap = dyn.MakeSnapshot();
  ASSERT_TRUE(
      dyn.ApplyBatch(
             MakeBatch(&log, 0, {{1, 3, RelationKind::kClick, 100.0f, 0}}))
          .ok());
  auto new_snap = dyn.MakeSnapshot();

  // The old snapshot never sees item 3 despite its overwhelming weight.
  EXPECT_EQ(old_snap.Degree(1), 2);  // base user edge + delta item 2
  EXPECT_EQ(new_snap.Degree(1), 3);
  Rng rng(29);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_NE(old_snap.SampleNeighbor(1, &rng), 3);
  }
  int hit3 = 0;
  for (int i = 0; i < 2000; ++i) hit3 += new_snap.SampleNeighbor(1, &rng) == 3;
  EXPECT_GT(hit3, 1500);  // 100/106 of the mass
}

TEST(DynamicGraphTest, SnapshotStableUnderConcurrentIngest) {
  HeteroGraph g = MakeTinyGraph(50);
  GraphDeltaLog log(1);
  DynamicHeteroGraph dyn(&g);
  std::atomic<bool> stop{false};
  std::atomic<int64_t> applied{0};
  std::thread writer([&] {
    Rng rng(7);
    while (!stop.load()) {
      const NodeId item = 2 + static_cast<NodeId>(rng.Uniform(50));
      Status st = dyn.ApplyBatch(
          MakeBatch(&log, 0, {{1, item, RelationKind::kClick, 1.0f, 0}}));
      ASSERT_TRUE(st.ok());
      applied.fetch_add(1);
    }
  });
  // Each snapshot's view of node 1 must not change while the writer keeps
  // appending: degree and total weight are re-read many times per snapshot.
  Rng rng(11);
  for (int round = 0; round < 200; ++round) {
    // On single-core machines, make sure the writer actually interleaves
    // with the snapshot reads instead of starving behind this loop.
    const int64_t before = applied.load();
    for (int spin = 0; spin < 1000 && applied.load() == before; ++spin) {
      std::this_thread::yield();
    }
    auto snap = dyn.MakeSnapshot();
    const int64_t deg = snap.Degree(1);
    const double w = snap.TotalWeight(1);
    for (int i = 0; i < 20; ++i) {
      ASSERT_EQ(snap.Degree(1), deg);
      ASSERT_DOUBLE_EQ(snap.TotalWeight(1), w);
      ASSERT_NE(snap.SampleNeighbor(1, &rng), -1);
    }
  }
  stop.store(true);
  writer.join();
  EXPECT_GT(applied.load(), 0);
  EXPECT_GT(dyn.num_delta_entries(), 0);
}

TEST(DynamicGraphTest, SampleManyNeighborsMatchesLoopAcrossBaseAndDelta) {
  // Items 2..9; base query->item edges on 2,3,4. Deltas touch 1, 0, 6.
  // The batch mixes untouched base rows, delta rows, repeats, and an
  // isolated node — under one seed it must be bit-identical to the loop.
  HeteroGraph g = MakeTinyGraph(8, {1.0f, 3.0f, 0.5f});
  GraphDeltaLog log(1);
  DynamicHeteroGraph dyn(&g);
  ASSERT_TRUE(dyn.ApplyBatch(MakeBatch(&log, 0,
                                       {{1, 6, RelationKind::kClick, 4.0f, 0},
                                        {1, 4, RelationKind::kClick, 2.0f, 0},
                                        {0, 5, RelationKind::kClick, 1.5f, 0}}))
                  .ok());
  auto snap = dyn.MakeSnapshot();
  const std::vector<NodeId> nodes = {1, 3, 0, 1, 2, 9};
  const int k = 5;
  Rng batched(907), looped(907);
  std::vector<NodeId> got;
  snap.SampleManyNeighbors({nodes.data(), nodes.size()}, k, &batched, &got);
  ASSERT_EQ(got.size(), nodes.size() * k);
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (int j = 0; j < k; ++j) {
      EXPECT_EQ(got[i * k + j], snap.SampleNeighbor(nodes[i], &looped))
          << "node " << nodes[i] << " draw " << j;
    }
  }
  EXPECT_EQ(batched.NextUint64(), looped.NextUint64());
  for (int j = 0; j < k; ++j) EXPECT_EQ(got[5 * k + j], -1);  // item 9
}

TEST(DynamicGraphTest, SampleManyNeighborsEmpiricalMatchesExactWeights) {
  // Same exact distribution as SamplingMatchesExactWeights, drawn through
  // the batched overlay path: user 0: 1/11, item 2: 1/11, item 3: 5/11,
  // item 4: 4/11.
  HeteroGraph g = MakeTinyGraph(4, {1.0f, 3.0f});
  GraphDeltaLog log(1);
  DynamicHeteroGraph dyn(&g);
  ASSERT_TRUE(
      dyn.ApplyBatch(MakeBatch(&log, 0,
                               {{1, 4, RelationKind::kClick, 4.0f, 0},
                                {1, 3, RelationKind::kClick, 2.0f, 0}}))
          .ok());
  auto snap = dyn.MakeSnapshot();
  Rng rng(171);
  const int draws = 60000;
  const NodeId node = 1;
  std::vector<NodeId> out;
  snap.SampleManyNeighbors({&node, 1}, draws, &rng, &out);
  std::map<NodeId, int> counts;
  for (NodeId nb : out) ++counts[nb];
  EXPECT_NEAR(counts[0] / static_cast<double>(draws), 1.0 / 11, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(draws), 1.0 / 11, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(draws), 5.0 / 11, 0.015);
  EXPECT_NEAR(counts[4] / static_cast<double>(draws), 4.0 / 11, 0.015);
}

TEST(DynamicGraphTest, SampleManyNeighborsMatchesLoopAcrossMidBatchFold) {
  // An incremental fold between draws changes what a pre-fold snapshot can
  // see (folded rows keep their pinned base but lose overlay visibility —
  // the documented contract), so the invariant is not stability: it is
  // that batched and single draws degrade IDENTICALLY. On one snapshot,
  // batch-vs-loop must stay bit-identical both before and after a fold
  // lands between the two passes.
  DynamicHeteroGraphOptions opts;
  opts.segment_span = 8;
  HeteroGraph g = MakeTinyGraph(40, {1.0f, 2.0f, 3.0f, 0.5f});
  GraphDeltaLog log(1);
  DynamicHeteroGraph dyn(&g, opts);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(
        dyn.ApplyBatch(MakeBatch(&log, 0,
                                 {{1, 2 + static_cast<NodeId>(i),
                                   RelationKind::kClick, 1.0f + i, 0}}))
            .ok());
  }
  auto snap = dyn.MakeSnapshot();
  std::vector<NodeId> nodes;
  for (NodeId v = 0; v < dyn.num_nodes_allocated(); ++v) nodes.push_back(v);
  auto expect_batch_matches_loop = [&](uint64_t seed) {
    Rng batched(seed), looped(seed);
    std::vector<NodeId> got;
    snap.SampleManyNeighbors({nodes.data(), nodes.size()}, 4, &batched, &got);
    ASSERT_EQ(got.size(), nodes.size() * 4);
    for (size_t i = 0; i < nodes.size(); ++i) {
      for (int j = 0; j < 4; ++j) {
        ASSERT_EQ(got[i * 4 + j], snap.SampleNeighbor(nodes[i], &looped))
            << "node " << nodes[i] << " draw " << j << " seed " << seed;
      }
    }
  };
  expect_batch_matches_loop(77);
  ASSERT_TRUE(dyn.CompactSegments({0, 1}).ok());
  ASSERT_TRUE(
      dyn.ApplyBatch(
             MakeBatch(&log, 0, {{1, 30, RelationKind::kClick, 50.0f, 0}}))
          .ok());
  expect_batch_matches_loop(78);
  // A fresh snapshot sees the folded edges plus the post-fold delta.
  auto snap2 = dyn.MakeSnapshot();
  EXPECT_GT(snap2.Degree(1), snap.Degree(1));
}

TEST(DynamicGraphTest, ConcurrentBatchedSamplingDuringFoldIsRaceFree) {
  // Sanitizer target (ctest -L concurrent): batched snapshot reads race
  // incremental folds and fresh deltas. Pinned snapshots must keep serving
  // their epoch without tearing while successors publish underneath.
  DynamicHeteroGraphOptions opts;
  opts.segment_span = 16;
  HeteroGraph g = MakeTinyGraph(62, {2.0f, 1.0f, 4.0f});
  GraphDeltaLog log(1);
  DynamicHeteroGraph dyn(&g, opts);
  std::vector<NodeId> nodes;
  for (NodeId v = 0; v < g.num_nodes(); ++v) nodes.push_back(v);
  std::atomic<bool> stop{false};
  std::thread folder([&] {
    Rng rng(3);
    for (int round = 0; round < 40; ++round) {
      const NodeId item = 2 + static_cast<NodeId>(rng.Uniform(62));
      Status st = dyn.ApplyBatch(
          MakeBatch(&log, 0, {{1, item, RelationKind::kClick, 1.0f, 0}}));
      EXPECT_TRUE(st.ok());
      if (round % 4 == 3) {
        auto folded = dyn.CompactSegments(
            {round % dyn.num_segments_allocated()});
        EXPECT_TRUE(folded.ok());
      }
    }
    stop.store(true);
  });
  Rng rng(9);
  std::vector<NodeId> out;
  while (!stop.load()) {
    auto snap = dyn.MakeSnapshot();
    snap.SampleManyNeighbors({nodes.data(), nodes.size()}, 3, &rng, &out);
    ASSERT_EQ(out.size(), nodes.size() * 3);
    // Node 1 always has at least its base user edge.
    EXPECT_NE(out[1 * 3], -1);
  }
  folder.join();
}

TEST(DynamicGraphTest, WatermarkExcludesIssuedButUnappliedEpochs) {
  // Regression for the cross-shard ordering bug: shard 0's batch draws a
  // lower epoch than shard 1's but applies later. Snapshots used to pin to
  // the max applied epoch, so the late lower-epoch apply surfaced
  // retroactively inside live snapshots. With the watermark, snapshots pin
  // below the oldest issued-but-unapplied epoch and stay immutable.
  HeteroGraph g = MakeTinyGraph(6);
  GraphDeltaLog log(2);
  DynamicHeteroGraph dyn(&g);

  DeltaBatch slow =
      MakeBatch(&log, 0, {{1, 2, RelationKind::kClick, 1.0f, 0}}, &dyn);
  DeltaBatch fast =
      MakeBatch(&log, 1, {{1, 3, RelationKind::kClick, 1.0f, 0}}, &dyn);
  ASSERT_LT(slow.epoch, fast.epoch);
  ASSERT_TRUE(dyn.ApplyBatch(fast).ok());  // out of order: fast lands first

  EXPECT_EQ(dyn.epoch(), fast.epoch);
  EXPECT_EQ(dyn.watermark_epoch(), slow.epoch - 1);
  auto snap = dyn.MakeSnapshot();
  EXPECT_EQ(snap.epoch(), slow.epoch - 1);
  EXPECT_EQ(snap.Degree(1), 1);  // base user edge only; neither delta visible

  // The interleaving the old code mishandled: the lower-epoch batch lands
  // while the snapshot is live. The snapshot must not change.
  ASSERT_TRUE(dyn.ApplyBatch(slow).ok());
  EXPECT_EQ(snap.Degree(1), 1);

  // Once nothing is pending, a fresh snapshot surfaces both batches.
  EXPECT_EQ(dyn.watermark_epoch(), fast.epoch);
  auto fresh = dyn.MakeSnapshot();
  EXPECT_EQ(fresh.epoch(), fast.epoch);
  EXPECT_EQ(fresh.Degree(1), 3);
}

TEST(DynamicGraphTest, RejectedBatchDoesNotFreezeWatermark) {
  // A batch that fails ApplyBatch validation will never apply; its pending
  // mark must be retired or the watermark would pin every later snapshot
  // below it forever.
  HeteroGraph g = MakeTinyGraph(4);
  GraphDeltaLog log(1);
  DynamicHeteroGraph dyn(&g);
  DeltaBatch bad =
      MakeBatch(&log, 0, {{1, 99, RelationKind::kClick, 1.0f, 0}}, &dyn);
  EXPECT_FALSE(dyn.ApplyBatch(bad).ok());
  DeltaBatch good =
      MakeBatch(&log, 0, {{1, 2, RelationKind::kClick, 1.0f, 0}}, &dyn);
  ASSERT_TRUE(dyn.ApplyBatch(good).ok());
  EXPECT_EQ(dyn.watermark_epoch(), good.epoch);
  EXPECT_EQ(dyn.MakeSnapshot().Degree(1), 2);  // base edge + fresh delta
}

TEST(DynamicGraphTest, WatermarkEqualsEpochWithoutObserver) {
  // Untracked issuance (no pipeline, no observer): behaves exactly as the
  // pre-watermark code — snapshots pin to the max applied epoch.
  HeteroGraph g = MakeTinyGraph(4);
  GraphDeltaLog log(1);
  DynamicHeteroGraph dyn(&g);
  ASSERT_TRUE(
      dyn.ApplyBatch(
             MakeBatch(&log, 0, {{1, 2, RelationKind::kClick, 1.0f, 0}}))
          .ok());
  EXPECT_EQ(dyn.watermark_epoch(), dyn.epoch());
  EXPECT_EQ(dyn.MakeSnapshot().epoch(), dyn.epoch());
}

TEST(DynamicGraphTest, CompactFoldsDeltasIntoBase) {
  HeteroGraph g = MakeTinyGraph(4, {1.0f, 3.0f});
  GraphDeltaLog log(1);
  DynamicHeteroGraph dyn(&g);
  ASSERT_TRUE(
      dyn.ApplyBatch(MakeBatch(&log, 0,
                               {{1, 4, RelationKind::kClick, 4.0f, 0},
                                {1, 3, RelationKind::kClick, 2.0f, 0}}))
          .ok());
  const uint64_t pre_epoch = dyn.epoch();
  auto folded = dyn.Compact();
  ASSERT_TRUE(folded.ok());
  EXPECT_EQ(folded.value(), pre_epoch);
  log.Truncate(folded.value());
  EXPECT_EQ(log.Stats().total_events, 0);

  EXPECT_EQ(dyn.num_delta_entries(), 0);
  EXPECT_EQ(dyn.num_delta_nodes(), 0);
  auto base = dyn.base();
  EXPECT_EQ(base->degree(1), 4);  // user + items 2, 3 (coalesced), 4
  // Coalesced weight on the duplicated (1, 3) click edge.
  auto ids = base->neighbor_ids(1);
  auto weights = base->neighbor_weights(1);
  bool found = false;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] == 3) {
      EXPECT_FLOAT_EQ(weights[i], 5.0f);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  // Post-compact snapshots serve the same distribution, now via pure CSR.
  auto snap = dyn.MakeSnapshot();
  EXPECT_FALSE(snap.HasDelta(1));
  EXPECT_NEAR(snap.TotalWeight(1), 11.0, 1e-6);
}

TEST(DynamicGraphTest, ReplayFromLogRebuildsView) {
  HeteroGraph g = MakeTinyGraph(6);
  GraphDeltaLog log(2);
  DynamicHeteroGraph dyn(&g);
  ASSERT_TRUE(
      dyn.ApplyBatch(
             MakeBatch(&log, 0, {{1, 3, RelationKind::kClick, 2.0f, 0}}))
          .ok());
  ASSERT_TRUE(
      dyn.ApplyBatch(
             MakeBatch(&log, 1, {{1, 4, RelationKind::kSession, 1.0f, 0}}))
          .ok());

  DynamicHeteroGraph replica(&g);
  for (const DeltaBatch& batch : log.ReadSince(0)) {
    ASSERT_TRUE(replica.ApplyBatch(batch).ok());
  }
  auto a = dyn.MakeSnapshot();
  auto b = replica.MakeSnapshot();
  EXPECT_EQ(a.epoch(), b.epoch());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(a.Degree(v), b.Degree(v));
    EXPECT_DOUBLE_EQ(a.TotalWeight(v), b.TotalWeight(v));
  }
}

// --- GraphView parity: base+delta vs compacted CSR ------------------------

/// The same delta set applied to two replicas: one kept as an overlay, the
/// other folded by Compact(). ROI sampling through the dynamic GraphView
/// must match sampling over the compacted CSR.
struct ParityFixture {
  HeteroGraph overlay_base;
  HeteroGraph folded_base;
  GraphDeltaLog overlay_log{1};
  GraphDeltaLog folded_log{1};
  std::unique_ptr<DynamicHeteroGraph> overlay;
  std::unique_ptr<DynamicHeteroGraph> folded;

  explicit ParityFixture(int num_items, uint64_t seed)
      : overlay_base(MakeContentGraph(num_items, seed)),
        folded_base(MakeContentGraph(num_items, seed)) {
    overlay = std::make_unique<DynamicHeteroGraph>(&overlay_base);
    folded = std::make_unique<DynamicHeteroGraph>(&folded_base);
    // Fresh edges to the second half of the items plus weight increments on
    // already-connected ones, mirroring accumulating click traffic.
    std::vector<EdgeEvent> deltas;
    Rng rng(seed + 1);
    for (int i = num_items / 2; i < num_items; ++i) {
      deltas.push_back({1, 2 + static_cast<NodeId>(i), RelationKind::kClick,
                        0.5f + 2.0f * rng.UniformFloat(), 0});
    }
    for (int i = 0; i < num_items / 4; ++i) {
      deltas.push_back({1, 2 + static_cast<NodeId>(i), RelationKind::kClick,
                        1.0f, 0});
    }
    EXPECT_TRUE(
        overlay->ApplyBatch(MakeBatch(&overlay_log, 0, deltas)).ok());
    EXPECT_TRUE(folded->ApplyBatch(MakeBatch(&folded_log, 0, deltas)).ok());
    EXPECT_TRUE(folded->Compact().ok());
  }
};

TEST(GraphViewParityTest, FocalTopKRoiIdenticalOverlayVsCompacted) {
  ParityFixture fx(12, 99);
  DynamicGraphView overlay_view(fx.overlay.get());
  DynamicGraphView folded_view(fx.folded.get());
  ASSERT_GT(fx.overlay->num_delta_entries(), 0);
  ASSERT_EQ(fx.folded->num_delta_entries(), 0);  // folded into the CSR

  core::RoiSamplerOptions opt;
  opt.k = 5;
  opt.num_hops = 2;
  opt.kind = core::SamplerKind::kFocalTopK;
  core::RoiSampler sampler(opt);
  auto fc_a = sampler.FocalVector(overlay_view, {0, 1});
  auto fc_b = sampler.FocalVector(folded_view, {0, 1});
  EXPECT_EQ(fc_a, fc_b);

  for (uint64_t seed : {1u, 7u, 31u}) {
    Rng ra(seed), rb(seed);
    auto a = sampler.Sample(overlay_view, 1, fc_a, &ra);
    auto b = sampler.Sample(folded_view, 1, fc_b, &rb);
    // Tie-free relevance scores make focal top-k fully deterministic: the
    // two views must select the same tree, not merely similar ones.
    ASSERT_EQ(a.size(), b.size());
    for (int i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a.nodes[i].id, b.nodes[i].id);
      EXPECT_EQ(a.nodes[i].depth, b.nodes[i].depth);
      EXPECT_EQ(a.nodes[i].parent, b.nodes[i].parent);
      // Coalesced-weight float summation order differs between the overlay
      // merge and the compacted builder; allow rounding slack only.
      EXPECT_NEAR(a.nodes[i].edge_weight, b.nodes[i].edge_weight, 1e-4f);
    }
  }
}

TEST(GraphViewParityTest, WeightedEdgeDistributionMatchesCompacted) {
  ParityFixture fx(10, 41);
  DynamicGraphView overlay_view(fx.overlay.get());
  DynamicGraphView folded_view(fx.folded.get());

  core::RoiSamplerOptions opt;
  opt.k = 1;
  opt.num_hops = 1;
  opt.kind = core::SamplerKind::kWeightedEdge;
  core::RoiSampler sampler(opt);
  auto fc = sampler.FocalVector(overlay_view, {0, 1});

  // With k = 1 each ROI holds the ego plus one weighted draw; empirical
  // child frequencies from the two views must agree (two-level overlay
  // resampling vs a rebuilt alias table over the identical merged weights).
  const int draws = 40000;
  auto frequencies = [&](const graph::GraphView& view, uint64_t seed) {
    Rng rng(seed);
    std::map<NodeId, double> freq;
    for (int i = 0; i < draws; ++i) {
      auto roi = sampler.Sample(view, 1, fc, &rng);
      if (roi.size() > 1) freq[roi.nodes[1].id] += 1.0 / draws;
    }
    return freq;
  };
  auto fa = frequencies(overlay_view, 5);
  auto fb = frequencies(folded_view, 6);
  std::map<NodeId, double> support = fa;
  for (const auto& [id, p] : fb) support.emplace(id, 0.0);
  ASSERT_GE(support.size(), 10u);  // both halves of the item range show up
  for (const auto& [id, unused] : support) {
    EXPECT_NEAR(fa[id], fb[id], 0.015) << "child " << id;
  }
}

// --- Mid-ingest compaction quiescence --------------------------------------

TEST(IngestPipelineTest, MidIngestCompactionPreservesEveryDelta) {
  // Compact() used to require a caller-managed Flush(); invoking it while
  // batches were mid-apply could split a batch across base and overlay. The
  // quiescence handshake parks consumers at batch boundaries, so hammering
  // Compact() during ingestion must conserve every applied half-edge.
  HeteroGraph g = MakeTinyGraph(40);
  double base_total = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (float w : g.neighbor_weights(v)) base_total += w;
  }
  GraphDeltaLog log(4);
  DynamicHeteroGraph dyn(&g);
  IngestOptions iopt;
  iopt.num_shards = 4;
  iopt.batch_size = 8;
  IngestPipeline pipeline(&log, &dyn, iopt);
  pipeline.Start();

  std::atomic<bool> stop_compactor{false};
  std::atomic<int> compactions{0};
  std::thread compactor([&] {
    while (!stop_compactor.load()) {
      auto folded = dyn.Compact();
      ASSERT_TRUE(folded.ok()) << folded.status().ToString();
      compactions.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  Rng rng(3);
  for (int i = 0; i < 400; ++i) {
    graph::SessionRecord session;
    session.user = 0;
    session.query = 1;
    session.clicks = {2 + static_cast<NodeId>(rng.Uniform(40)),
                      2 + static_cast<NodeId>(rng.Uniform(40))};
    ASSERT_TRUE(pipeline.Offer(session));
  }
  pipeline.Flush();
  stop_compactor.store(true);
  compactor.join();

  auto stats = pipeline.Stats();
  EXPECT_EQ(stats.events_applied, stats.events);
  EXPECT_EQ(pipeline.events_dropped(), 0);
  EXPECT_GT(compactions.load(), 0);

  // Mass conservation: every applied event added weight 1 to each endpoint,
  // whether it now lives in the rebuilt CSR or a delta overlay.
  auto snap = dyn.MakeSnapshot();
  double total = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) total += snap.TotalWeight(v);
  EXPECT_NEAR(total, base_total + 2.0 * stats.events_applied, 0.5);

  // A final quiesced compaction folds the remainder and truncates cleanly.
  auto folded = dyn.Compact();
  ASSERT_TRUE(folded.ok());
  log.Truncate(folded.value());
  EXPECT_EQ(dyn.num_delta_entries(), 0);
  EXPECT_EQ(log.Stats().total_events, 0);
  pipeline.Stop();
}

// --- Training freshness through the dynamic GraphView -----------------------

TEST(TrainingFreshnessTest, MidIngestRoiSampleSeesFreshEdgesWithoutCompact) {
  // Acceptance: edges ingested mid-training are returned by the very next
  // RoiSampler::Sample through the dynamic GraphView — no Compact() needed.
  HeteroGraph g = MakeTinyGraph(10, {1.0f, 1.0f});
  GraphDeltaLog log(2);
  DynamicHeteroGraph dyn(&g);
  DynamicGraphView view(&dyn);

  core::RoiSamplerOptions opt;
  opt.k = 10;
  opt.num_hops = 1;
  core::RoiSampler sampler(opt);
  Rng rng(7);
  auto fc = sampler.FocalVector(view, {0, 1});
  const NodeId fresh_item = 2 + 7;
  auto before = sampler.Sample(view, 1, fc, &rng);
  for (const auto& n : before.nodes) EXPECT_NE(n.id, fresh_item);

  IngestOptions iopt;
  iopt.num_shards = 2;
  IngestPipeline pipeline(&log, &dyn, iopt);
  pipeline.Start();
  graph::SessionRecord session;
  session.user = 0;
  session.query = 1;
  session.clicks = {fresh_item};
  ASSERT_TRUE(pipeline.Offer(session));
  pipeline.Flush();

  const auto base_before = dyn.base();
  view.Refresh();
  auto after = sampler.Sample(view, 1, fc, &rng);
  bool found = false;
  for (const auto& n : after.nodes) {
    found |= n.id == fresh_item && n.depth == 1;
  }
  EXPECT_TRUE(found);
  // The fresh edge came from the overlay, not from a compaction.
  EXPECT_EQ(dyn.base(), base_before);
  EXPECT_GT(dyn.num_delta_entries(), 0);
  pipeline.Stop();
}

TEST(TrainingFreshnessTest, TrainerRefreshesViewAtBatchBoundaries) {
  data::TaobaoGeneratorOptions gopt;
  gopt.num_users = 40;
  gopt.num_queries = 30;
  gopt.num_items = 80;
  gopt.num_sessions = 300;
  gopt.num_categories = 5;
  gopt.content_dim = 8;
  gopt.seed = 13;
  auto ds = data::GenerateTaobaoDataset(gopt);

  GraphDeltaLog log(2);
  DynamicHeteroGraph dyn(&ds.graph);
  DynamicGraphView view(&dyn);
  core::ZoomerConfig cfg;
  cfg.hidden_dim = 4;
  cfg.sampler.k = 2;
  cfg.sampler.num_hops = 1;
  core::ZoomerModel model(&ds.graph, cfg);
  core::TrainOptions topt;
  topt.epochs = 1;
  topt.batch_size = 16;
  topt.max_examples_per_epoch = 48;
  core::ZoomerTrainer trainer(&model, topt);
  IngestOptions iopt;
  iopt.num_shards = 2;
  IngestPipeline pipeline(&log, &dyn, iopt);
  AttachTrainingFreshness(&model, &trainer, &view, &pipeline);
  EXPECT_EQ(&model.view(), &view);
  pipeline.Start();

  // Land live traffic before the run so the first batch boundary must
  // observe it (deterministic; a concurrent feeder would also work).
  data::LiveSessionOptions lopt;
  lopt.num_sessions = 50;
  lopt.seed = 5;
  pipeline.OfferLog(data::SynthesizeLiveSessions(ds, lopt));
  pipeline.Flush();
  ASSERT_GT(dyn.epoch(), 0u);
  EXPECT_EQ(view.epoch(), 0u);  // not yet re-pinned

  auto result = trainer.Train(ds);
  EXPECT_GT(result.graph_refreshes, 0);
  EXPECT_EQ(result.graph_epoch, dyn.epoch());
  EXPECT_EQ(view.epoch(), dyn.epoch());
  pipeline.Stop();
}

// --- NeighborCache streaming integration ----------------------------------

TEST(NeighborCacheStreamingTest, InvalidateDropsEntryAndRefills) {
  HeteroGraph g = MakeTinyGraph(5, {1.0f});
  GraphDeltaLog log(1);
  DynamicHeteroGraph dyn(&g);
  serving::NeighborCacheOptions opt;
  opt.k = 5;
  serving::NeighborCache cache(&g, opt);
  cache.AttachDynamicGraph(&dyn);

  cache.Warm(1);
  std::vector<NodeId> out;
  ASSERT_TRUE(cache.Get(1, &out));
  EXPECT_EQ(out.size(), 2u);  // user 0 + item 2

  ASSERT_TRUE(
      dyn.ApplyBatch(
             MakeBatch(&log, 0, {{1, 4, RelationKind::kClick, 3.0f, 0}}))
          .ok());
  cache.Invalidate(1);
  auto stats = cache.Stats();
  EXPECT_EQ(stats.invalidations, 1);

  // The asynchronous re-fill lands the fresh neighbor.
  bool fresh = false;
  for (int i = 0; i < 500 && !fresh; ++i) {
    if (cache.Get(1, &out)) {
      fresh = std::find(out.begin(), out.end(), 4) != out.end();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(fresh);
  EXPECT_EQ(cache.Stats().entries, 1u);
}

TEST(NeighborCacheStreamingTest, InvalidateUncachedNodeIsNoOp) {
  HeteroGraph g = MakeTinyGraph(3);
  serving::NeighborCache cache(&g, {});
  cache.Invalidate(0);
  auto stats = cache.Stats();
  EXPECT_EQ(stats.invalidations, 0);
  EXPECT_EQ(stats.scheduled_fills, 0);
}

TEST(NeighborCacheStreamingTest, ConcurrentMissesCoalesceIntoOneFill) {
  HeteroGraph g = MakeTinyGraph(5, {1.0f, 1.0f, 1.0f});
  serving::NeighborCacheOptions opt;
  opt.refresh_delay_micros = 100000;  // hold the fill open for 100ms
  serving::NeighborCache cache(&g, opt);
  std::vector<NodeId> out;
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(cache.Get(1, &out));
  }
  auto stats = cache.Stats();
  EXPECT_EQ(stats.misses, 50);
  EXPECT_EQ(stats.scheduled_fills, 1);  // dedup: one background fill only
  for (int i = 0; i < 1000 && cache.size() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(cache.Get(1, &out));
}

TEST(NeighborCacheStreamingTest, InvalidateDuringInFlightFillRerunsFill) {
  HeteroGraph g = MakeTinyGraph(5, {1.0f});
  GraphDeltaLog log(1);
  DynamicHeteroGraph dyn(&g);
  serving::NeighborCacheOptions opt;
  opt.k = 5;
  opt.refresh_delay_micros = 100000;  // fill computes 100ms after the miss
  serving::NeighborCache cache(&g, opt);
  cache.AttachDynamicGraph(&dyn);

  std::vector<NodeId> out;
  EXPECT_FALSE(cache.Get(1, &out));  // fill now in flight
  // Graph update + invalidation land while the fill is still computing:
  // the fill's result may predate the update, so it must re-run.
  ASSERT_TRUE(
      dyn.ApplyBatch(
             MakeBatch(&log, 0, {{1, 4, RelationKind::kClick, 3.0f, 0}}))
          .ok());
  cache.Invalidate(1);
  EXPECT_EQ(cache.Stats().invalidations, 1);

  bool fresh = false;
  for (int i = 0; i < 1000 && !fresh; ++i) {
    if (cache.Get(1, &out)) {
      fresh = std::find(out.begin(), out.end(), 4) != out.end();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(fresh);
  EXPECT_GE(cache.Stats().scheduled_fills, 2);  // original + dirty re-run
}

// --- IngestPipeline -------------------------------------------------------

TEST(IngestPipelineTest, SessionToEventsWiresBuilderEdges) {
  graph::SessionRecord session;
  session.user = 0;
  session.query = 1;
  session.clicks = {2, 3, 4};
  session.timestamp = 7;
  auto events = SessionToEvents(session);
  // 1 user-query + 3 query-item clicks + 2 session adjacencies.
  ASSERT_EQ(events.size(), 6u);
  EXPECT_EQ(events[0].src, 0);
  EXPECT_EQ(events[0].dst, 1);
  EXPECT_EQ(events[0].kind, RelationKind::kClick);
  int session_edges = 0;
  for (const auto& ev : events) {
    EXPECT_EQ(ev.timestamp, 7);
    session_edges += ev.kind == RelationKind::kSession;
  }
  EXPECT_EQ(session_edges, 2);
}

TEST(IngestPipelineTest, IngestAppliesEventsAndNotifies) {
  HeteroGraph g = MakeTinyGraph(10);
  const int kShards = 4;
  GraphDeltaLog log(kShards);
  DynamicHeteroGraph dyn(&g);
  engine::EngineOptions eopt;
  eopt.num_shards = kShards;
  eopt.replication_factor = 1;
  engine::DistributedGraphEngine engine(&g, eopt);
  engine.AttachDynamicGraph(&dyn);

  IngestOptions iopt;
  iopt.num_shards = kShards;
  iopt.batch_size = 4;
  IngestPipeline pipeline(&log, &dyn, iopt, &engine);
  std::mutex mu;
  std::vector<NodeId> touched;
  pipeline.AddUpdateListener([&](uint64_t, const std::vector<NodeId>& nodes) {
    std::lock_guard<std::mutex> lock(mu);
    touched.insert(touched.end(), nodes.begin(), nodes.end());
  });
  pipeline.Start();

  graph::SessionRecord session;
  session.user = 0;
  session.query = 1;
  session.clicks = {5, 6};
  EXPECT_TRUE(pipeline.Offer(session));
  // Out-of-range click: its events drop, valid edges still land.
  graph::SessionRecord bad = session;
  bad.clicks = {5, 999};
  pipeline.Offer(bad);
  pipeline.Flush();

  auto stats = pipeline.Stats();
  EXPECT_EQ(stats.sessions, 2);
  EXPECT_EQ(stats.events_applied, stats.events);
  EXPECT_GT(stats.batches, 0);
  EXPECT_GT(pipeline.events_dropped(), 0);

  auto snap = dyn.MakeSnapshot();
  EXPECT_TRUE(snap.HasDelta(5));
  {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_NE(std::find(touched.begin(), touched.end(), 5), touched.end());
  }
  // Engine: shard-routed update stats and dynamic sampling of fresh edges.
  auto estats = engine.Stats();
  EXPECT_EQ(estats.total_update_events, stats.events_applied);
  engine::SampleRequest req;
  req.node = 1;
  req.k = 10;
  req.rng_seed = 3;
  auto resp = engine.Sample(req);
  ASSERT_TRUE(resp.ok());
  bool has_fresh = false;
  for (NodeId nb : resp.value().neighbors) has_fresh |= nb == 5 || nb == 6;
  EXPECT_TRUE(has_fresh);
  pipeline.Stop();
}

TEST(IngestPipelineTest, LiveSessionsFromDatasetIngestCleanly) {
  data::TaobaoGeneratorOptions opt;
  opt.num_users = 40;
  opt.num_queries = 30;
  opt.num_items = 80;
  opt.num_sessions = 300;
  opt.num_categories = 5;
  opt.content_dim = 8;
  opt.seed = 13;
  auto ds = data::GenerateTaobaoDataset(opt);

  data::LiveSessionOptions lopt;
  lopt.num_sessions = 200;
  lopt.seed = 31;
  auto live = data::SynthesizeLiveSessions(ds, lopt);
  ASSERT_EQ(live.size(), 200u);

  GraphDeltaLog log(4);
  DynamicHeteroGraph dyn(&ds.graph);
  IngestOptions iopt;
  iopt.num_shards = 4;
  IngestPipeline pipeline(&log, &dyn, iopt);
  pipeline.Start();
  pipeline.OfferLog(live);
  pipeline.Flush();
  auto stats = pipeline.Stats();
  EXPECT_EQ(stats.sessions, 200);
  EXPECT_GT(stats.events_applied, 200);
  EXPECT_EQ(pipeline.events_dropped(), 0);  // live nodes all exist
  EXPECT_EQ(dyn.num_delta_entries(), 2 * stats.events_applied);
  pipeline.Stop();
}

// --- Streaming node ingestion: id-space growth ----------------------------

TEST(NodeIngestTest, NodeBatchGrowsIdSpaceAtItsEpoch) {
  HeteroGraph g = MakeTinyGraph(3);  // ids 0..4
  GraphDeltaLog log(1);
  DynamicHeteroGraph dyn(&g);
  EXPECT_EQ(dyn.num_nodes_allocated(), g.num_nodes());

  auto before = dyn.MakeSnapshot();
  EXPECT_EQ(before.num_nodes(), g.num_nodes());

  DeltaBatch batch = MakeNodeBatch(
      &log, 0, &dyn, {MakeItemEvent(0.4f)},
      {{1, -1, RelationKind::kClick, 2.0f, 0}});  // -1 = the new item
  const NodeId fresh = batch.node_events[0].id;
  EXPECT_EQ(fresh, g.num_nodes());  // appended, renumber-free
  EXPECT_EQ(batch.events[0].dst, fresh);  // placeholder resolved
  EXPECT_EQ(dyn.num_nodes_allocated(), g.num_nodes() + 1);
  ASSERT_TRUE(dyn.ApplyBatch(batch).ok());

  // The pre-ingest snapshot never grows; a fresh snapshot covers the node
  // with full type/content/slot lookups and delta adjacency both ways.
  EXPECT_EQ(before.num_nodes(), g.num_nodes());
  auto after = dyn.MakeSnapshot();
  EXPECT_EQ(after.num_nodes(), g.num_nodes() + 1);
  EXPECT_EQ(after.node_type(fresh), NodeType::kItem);
  EXPECT_FLOAT_EQ(after.content(fresh)[0], 0.4f);
  ASSERT_EQ(after.slots(fresh).size(), 2u);
  EXPECT_EQ(after.slots(fresh)[1], 8);
  EXPECT_EQ(after.Degree(fresh), 1);
  Rng rng(3);
  EXPECT_EQ(after.SampleNeighbor(fresh, &rng), 1);
  bool fresh_sampled = false;
  for (int i = 0; i < 200; ++i) {
    fresh_sampled |= after.SampleNeighbor(1, &rng) == fresh;
  }
  EXPECT_TRUE(fresh_sampled);  // weight 2 of 3 at the query

  // The delta log replays node batches onto a replica.
  DynamicHeteroGraph replica(&g);
  for (const DeltaBatch& replayed : log.ReadSince(0)) {
    ASSERT_TRUE(replica.ApplyBatch(replayed).ok());
  }
  auto mirrored = replica.MakeSnapshot();
  EXPECT_EQ(mirrored.num_nodes(), after.num_nodes());
  EXPECT_EQ(mirrored.node_type(fresh), NodeType::kItem);
  EXPECT_EQ(mirrored.Degree(fresh), 1);
}

TEST(NodeIngestTest, ApplyBatchValidatesNodeAndEdgeGrowth) {
  HeteroGraph g = MakeTinyGraph(3);
  GraphDeltaLog log(1);
  DynamicHeteroGraph dyn(&g);

  // Edge to a never-ingested id is rejected, not silently dropped.
  EXPECT_FALSE(
      dyn.ApplyBatch(
             MakeBatch(&log, 0,
                       {{1, g.num_nodes(), RelationKind::kClick, 1.0f, 0}},
                       &dyn))
          .ok());

  // Content dim mismatch rejects the whole batch without allocating.
  {
    NodeEvent bad;
    bad.id = g.num_nodes();
    bad.content = std::vector<float>(kDim + 1, 0.1f);
    DeltaBatch batch;
    batch.epoch = log.Append(0, {}, [&dyn](uint64_t e) {
      dyn.NoteEpochIssued(e);
    });
    batch.node_events = {std::move(bad)};
    EXPECT_FALSE(dyn.ApplyBatch(batch).ok());
    EXPECT_EQ(dyn.num_nodes_allocated(), g.num_nodes());
  }

  // An id gap (skipping one) is rejected; in-order direct ids apply.
  {
    NodeEvent gap = MakeItemEvent();
    gap.id = g.num_nodes() + 1;
    DeltaBatch batch;
    batch.epoch = log.Append(0, {}, [&dyn](uint64_t e) {
      dyn.NoteEpochIssued(e);
    });
    batch.node_events = {std::move(gap)};
    EXPECT_FALSE(dyn.ApplyBatch(batch).ok());
  }
  {
    NodeEvent ok = MakeItemEvent();
    ok.id = g.num_nodes();
    DeltaBatch batch;
    batch.epoch = log.Append(0, {}, [&dyn](uint64_t e) {
      dyn.NoteEpochIssued(e);
    });
    batch.node_events = {std::move(ok)};
    ASSERT_TRUE(dyn.ApplyBatch(batch).ok());
    EXPECT_EQ(dyn.MakeSnapshot().num_nodes(), g.num_nodes() + 1);
  }

  // A rejected mixed batch must not leave a stranded allocation that would
  // block later nodes' visibility.
  {
    NodeEvent node = MakeItemEvent();
    node.id = g.num_nodes() + 1;
    DeltaBatch batch;
    batch.epoch = log.Append(0, {}, [&dyn](uint64_t e) {
      dyn.NoteEpochIssued(e);
    });
    batch.node_events = {std::move(node)};
    batch.events = {{1, 1, RelationKind::kClick, 1.0f, 0}};  // self-loop
    EXPECT_FALSE(dyn.ApplyBatch(batch).ok());
    EXPECT_EQ(dyn.num_nodes_allocated(), g.num_nodes() + 1);
  }
  DeltaBatch later = MakeNodeBatch(&log, 0, &dyn, {MakeItemEvent()});
  ASSERT_TRUE(dyn.ApplyBatch(later).ok());
  EXPECT_EQ(dyn.MakeSnapshot().num_nodes(), g.num_nodes() + 2);
}

TEST(NodeIngestTest, MidEpochNodeInvisibleToOlderPinnedSnapshots) {
  HeteroGraph g = MakeTinyGraph(4);
  GraphDeltaLog log(1);
  DynamicHeteroGraph dyn(&g);
  ASSERT_TRUE(
      dyn.ApplyBatch(
             MakeBatch(&log, 0, {{1, 2, RelationKind::kClick, 1.0f, 0}},
                       &dyn))
          .ok());
  auto old_snap = dyn.MakeSnapshot();

  DeltaBatch birth = MakeNodeBatch(
      &log, 0, &dyn, {MakeItemEvent()},
      {{1, -1, RelationKind::kClick, 50.0f, 0}});
  const NodeId fresh = birth.node_events[0].id;
  ASSERT_TRUE(dyn.ApplyBatch(birth).ok());

  // The old pin: id-space, degrees, and draws all predate the birth.
  EXPECT_EQ(old_snap.num_nodes(), g.num_nodes());
  EXPECT_EQ(old_snap.Degree(1), 2);  // base user edge + one delta
  Rng rng(11);
  for (int i = 0; i < 3000; ++i) {
    const NodeId nb = old_snap.SampleNeighbor(1, &rng);
    ASSERT_GE(nb, 0);
    ASSERT_LT(nb, old_snap.num_nodes());
  }
  auto fresh_snap = dyn.MakeSnapshot();
  EXPECT_EQ(fresh_snap.num_nodes(), g.num_nodes() + 1);
  int hits = 0;
  for (int i = 0; i < 1000; ++i) {
    hits += fresh_snap.SampleNeighbor(1, &rng) == fresh;
  }
  EXPECT_GT(hits, 800);  // 50/52 of the query's mass
}

TEST(NodeIngestTest, CompactFoldsOverlayNodesRenumberFree) {
  HeteroGraph g = MakeTinyGraph(3, {1.0f});
  GraphDeltaLog log(1);
  DynamicHeteroGraph dyn(&g);
  DeltaBatch birth = MakeNodeBatch(
      &log, 0, &dyn, {MakeItemEvent(0.7f, 42)},
      {{1, -1, RelationKind::kClick, 3.0f, 0},
       {-1, 2, RelationKind::kSession, 1.5f, 0}});
  const NodeId fresh = birth.node_events[0].id;
  ASSERT_TRUE(dyn.ApplyBatch(birth).ok());
  auto pre = dyn.MakeSnapshot();
  std::vector<graph::NeighborEntry> pre_nbrs;
  pre.Neighbors(fresh, &pre_nbrs);

  auto folded = dyn.Compact();
  ASSERT_TRUE(folded.ok());
  log.Truncate(folded.value());
  EXPECT_EQ(dyn.num_delta_entries(), 0);

  // Conservation: the node and both its edges graduated into the new base
  // under the same id; the old pinned snapshot still resolves it.
  auto base = dyn.base();
  ASSERT_EQ(base->num_nodes(), g.num_nodes() + 1);
  EXPECT_EQ(base->node_type(fresh), NodeType::kItem);
  EXPECT_FLOAT_EQ(base->content(fresh)[0], 0.7f);
  ASSERT_EQ(base->slots(fresh).size(), 2u);
  EXPECT_EQ(base->degree(fresh), 2);
  auto post = dyn.MakeSnapshot();
  EXPECT_EQ(post.num_nodes(), g.num_nodes() + 1);
  std::vector<graph::NeighborEntry> post_nbrs;
  post.Neighbors(fresh, &post_nbrs);
  ASSERT_EQ(post_nbrs.size(), pre_nbrs.size());
  double pre_mass = 0.0, post_mass = 0.0;
  for (const auto& e : pre_nbrs) pre_mass += e.weight;
  for (const auto& e : post_nbrs) post_mass += e.weight;
  EXPECT_NEAR(pre_mass, post_mass, 1e-5);
  EXPECT_EQ(pre.node_type(fresh), NodeType::kItem);  // old pin still valid

  // Growth continues past the fold: the next node appends after `fresh`.
  DeltaBatch next = MakeNodeBatch(&log, 0, &dyn, {MakeItemEvent()});
  EXPECT_EQ(next.node_events[0].id, fresh + 1);
  ASSERT_TRUE(dyn.ApplyBatch(next).ok());
  EXPECT_EQ(dyn.MakeSnapshot().num_nodes(), g.num_nodes() + 2);
}

TEST(NodeIngestTest, PipelineOfferNewNodeIsImmediatelyServable) {
  HeteroGraph g = MakeTinyGraph(4);
  GraphDeltaLog log(2);
  DynamicHeteroGraph dyn(&g);
  IngestOptions iopt;
  iopt.num_shards = 2;
  IngestPipeline pipeline(&log, &dyn, iopt);
  std::mutex mu;
  std::vector<NodeId> touched;
  pipeline.AddUpdateListener([&](uint64_t, const std::vector<NodeId>& nodes) {
    std::lock_guard<std::mutex> lock(mu);
    touched.insert(touched.end(), nodes.begin(), nodes.end());
  });
  pipeline.Start();

  auto minted = pipeline.OfferNewNode(
      MakeItemEvent(), {{1, -1, RelationKind::kClick, 1.0f, 0}});
  ASSERT_TRUE(minted.ok()) << minted.status().ToString();
  const NodeId fresh = minted.value();
  EXPECT_EQ(fresh, g.num_nodes());

  // Synchronous contract: traffic referencing the id is valid immediately.
  graph::SessionRecord session;
  session.user = 0;
  session.query = 1;
  session.clicks = {fresh, 2};
  ASSERT_TRUE(pipeline.Offer(session));
  pipeline.Flush();
  auto stats = pipeline.Stats();
  EXPECT_EQ(stats.nodes_ingested, 1);
  EXPECT_EQ(pipeline.events_dropped(), 0);
  auto snap = dyn.MakeSnapshot();
  EXPECT_EQ(snap.num_nodes(), g.num_nodes() + 1);
  EXPECT_GE(snap.Degree(fresh), 2);  // intro click + session traffic
  {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_NE(std::find(touched.begin(), touched.end(), fresh),
              touched.end());
  }

  // Invalid offers fail fast without burning an id.
  const int64_t allocated = dyn.num_nodes_allocated();
  NodeEvent bad = MakeItemEvent();
  bad.content.resize(kDim + 2);
  EXPECT_FALSE(pipeline.OfferNewNode(std::move(bad)).ok());
  EXPECT_FALSE(pipeline
                   .OfferNewNode(MakeItemEvent(),
                                 {{999, -1, RelationKind::kClick, 1.0f, 0}})
                   .ok());
  EXPECT_EQ(dyn.num_nodes_allocated(), allocated);
  pipeline.Stop();
}

TEST(NodeIngestTest, RejectedUnknownNodeCountedPerShard) {
  HeteroGraph g = MakeTinyGraph(4);
  GraphDeltaLog log(2);
  DynamicHeteroGraph dyn(&g);
  IngestOptions iopt;
  iopt.num_shards = 2;
  IngestPipeline pipeline(&log, &dyn, iopt);
  pipeline.Start();
  graph::SessionRecord session;
  session.user = 0;
  session.query = 1;
  session.clicks = {2, 999, 777};  // two clicks on never-ingested items
  pipeline.Offer(session);
  pipeline.Flush();
  auto stats = pipeline.Stats();
  ASSERT_EQ(stats.rejected_unknown_node.size(), 2u);
  int64_t rejected = 0;
  for (int64_t r : stats.rejected_unknown_node) rejected += r;
  // query->999, query->777, 2->999 session, 999->777 session... exactly the
  // events with an unknown endpoint.
  EXPECT_EQ(rejected, 4);
  EXPECT_EQ(pipeline.events_dropped(), rejected);
  pipeline.Stop();
}

TEST(NodeIngestTest, ColdStartArrivalsFlowThroughThePipeline) {
  data::TaobaoGeneratorOptions gopt;
  gopt.num_users = 30;
  gopt.num_queries = 20;
  gopt.num_items = 50;
  gopt.num_sessions = 200;
  gopt.num_categories = 4;
  gopt.content_dim = 8;
  gopt.seed = 21;
  auto ds = data::GenerateTaobaoDataset(gopt);

  data::ColdStartOptions copt;
  copt.num_new_items = 12;
  copt.seed = 5;
  auto arrivals = data::SynthesizeColdStartArrivals(ds, copt);
  ASSERT_EQ(arrivals.size(), 12u);

  GraphDeltaLog log(2);
  DynamicHeteroGraph dyn(&ds.graph);
  IngestOptions iopt;
  iopt.num_shards = 2;
  IngestPipeline pipeline(&log, &dyn, iopt);
  pipeline.Start();
  std::vector<NodeId> minted;
  for (auto& arrival : arrivals) {
    auto id = pipeline.OfferNewNode(std::move(arrival.item),
                                    std::move(arrival.edges));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    minted.push_back(id.value());
  }
  pipeline.Flush();
  EXPECT_EQ(pipeline.Stats().nodes_ingested, 12);
  auto snap = dyn.MakeSnapshot();
  EXPECT_EQ(snap.num_nodes(), ds.graph.num_nodes() + 12);
  for (NodeId id : minted) {
    EXPECT_EQ(snap.node_type(id), NodeType::kItem);
    EXPECT_GE(snap.Degree(id), 2);  // intro clicks + session sibling
  }

  // The ROI sampler reaches cold-start items through the dynamic view.
  DynamicGraphView view(&dyn);
  EXPECT_EQ(view.num_nodes(), snap.num_nodes());
  core::RoiSamplerOptions ropt;
  ropt.k = 8;
  ropt.num_hops = 2;
  core::RoiSampler sampler(ropt);
  Rng rng(9);
  int reachable = 0;
  for (NodeId id : minted) {
    auto fc = sampler.FocalVector(view, {0, id});
    auto roi = sampler.Sample(view, id, fc, &rng);
    EXPECT_EQ(roi.ego(), id);
    reachable += roi.size() > 1;
    for (const auto& n : roi.nodes) {
      ASSERT_GE(n.id, 0);
      ASSERT_LT(n.id, view.num_nodes());
    }
  }
  EXPECT_EQ(reachable, 12);
  pipeline.Stop();
}

TEST(NodeIngestTest, SamplerNeverExceedsPinnedNumNodesUnderIngest) {
  HeteroGraph g = MakeTinyGraph(20);
  GraphDeltaLog log(2);
  DynamicHeteroGraph dyn(&g);
  IngestOptions iopt;
  iopt.num_shards = 2;
  iopt.batch_size = 4;
  IngestPipeline pipeline(&log, &dyn, iopt);
  pipeline.Start();

  std::atomic<bool> stop{false};
  std::thread minter([&] {
    Rng rng(31);
    while (!stop.load()) {
      auto id = pipeline.OfferNewNode(
          MakeItemEvent(0.2f + 0.6f * rng.UniformFloat()),
          {{1, -1, RelationKind::kClick, 1.0f, 0}});
      ASSERT_TRUE(id.ok());
      graph::SessionRecord session;
      session.user = 0;
      session.query = 1;
      session.clicks = {id.value()};
      pipeline.Offer(session);
    }
  });

  // Make sure the minter actually interleaves with the reads (it may not
  // have been scheduled yet on a loaded host).
  while (dyn.num_nodes_allocated() == g.num_nodes()) {
    std::this_thread::yield();
  }
  Rng rng(13);
  for (int round = 0; round < 150; ++round) {
    auto snap = dyn.MakeSnapshot();
    const int64_t pinned = snap.num_nodes();
    for (int i = 0; i < 40; ++i) {
      const NodeId nb = snap.SampleNeighbor(1, &rng);
      ASSERT_GE(nb, 0);
      ASSERT_LT(nb, pinned);
      for (NodeId d : snap.SampleDistinctNeighbors(1, 4, &rng)) {
        ASSERT_LT(d, pinned);
      }
    }
    ASSERT_EQ(snap.num_nodes(), pinned);  // a pin never grows
  }
  stop.store(true);
  minter.join();
  pipeline.Flush();
  EXPECT_GT(dyn.MakeSnapshot().num_nodes(), g.num_nodes());
  pipeline.Stop();
}

// --- End-to-end serving freshness -----------------------------------------

TEST(ServingFreshnessTest, IngestedClickBecomesVisibleInHandle) {
  const int dim = 16;
  const int num_items = 10;
  HeteroGraph g = MakeTinyGraph(num_items);
  // Item embeddings are one-hot; user/query embeddings are exactly zero, so
  // before ingest the aggregated request embedding is zero and every ANN
  // score is 0. After ingesting a click on item X, the cache re-fill makes
  // X a cached neighbor of both the user and the query, the aggregation
  // pulls the embedding toward e_X, and X must surface as the top item.
  std::vector<float> node_emb(g.num_nodes() * dim, 0.0f);
  std::vector<NodeId> item_ids;
  std::vector<float> item_emb(num_items * dim, 0.0f);
  for (int i = 0; i < num_items; ++i) {
    const NodeId id = 2 + i;
    node_emb[id * dim + i] = 1.0f;
    item_emb[i * dim + i] = 1.0f;
    item_ids.push_back(id);
  }
  serving::OnlineServerOptions opt;
  opt.embedding_dim = dim;
  opt.top_n = 3;
  serving::OnlineServer server(&g, opt, node_emb, item_ids, item_emb);

  GraphDeltaLog log(2);
  DynamicHeteroGraph dyn(&g);
  server.AttachDynamicGraph(&dyn);
  IngestOptions iopt;
  iopt.num_shards = 2;
  IngestPipeline pipeline(&log, &dyn, iopt);
  pipeline.AddUpdateListener([&](uint64_t epoch, const std::vector<NodeId>& nodes) {
    server.OnGraphUpdate(epoch, nodes);
  });
  pipeline.Start();

  server.WarmCache({0, 1});
  const serving::ServingRequest req{0, 1};
  auto before = server.Handle(req);
  ASSERT_EQ(before.items.size(), 3u);
  EXPECT_NEAR(before.items[0].score, 0.0f, 1e-5f);

  const NodeId fresh_item = 2 + 7;
  graph::SessionRecord session;
  session.user = 0;
  session.query = 1;
  session.clicks = {fresh_item};
  ASSERT_TRUE(pipeline.Offer(session));
  pipeline.Flush();

  // The update hook invalidated user/query entries; once the asynchronous
  // re-fill lands, Handle must rank the freshly clicked item first.
  bool visible = false;
  for (int i = 0; i < 2000 && !visible; ++i) {
    auto after = server.Handle(req);
    visible = !after.items.empty() && after.items[0].id == fresh_item &&
              after.items[0].score > 0.1f;
    if (!visible) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(visible);
  EXPECT_GT(server.cache().Stats().invalidations, 0);
  pipeline.Stop();
}

TEST(ServingFreshnessTest, ColdStartItemRecommendedPreAndPostCompact) {
  // Acceptance (id-space growth e2e): a brand-new item node plus its first
  // edges stream in; the server indexes its embedding incrementally, a
  // request recommends it with no Compact() — and the fold then changes
  // nothing about the response.
  const int dim = 16;
  const int num_items = 10;
  HeteroGraph g = MakeTinyGraph(num_items);
  std::vector<float> node_emb(g.num_nodes() * dim, 0.0f);
  std::vector<NodeId> item_ids;
  std::vector<float> item_emb(num_items * dim, 0.0f);
  for (int i = 0; i < num_items; ++i) {
    const NodeId id = 2 + i;
    node_emb[id * dim + i] = 1.0f;
    item_emb[i * dim + i] = 1.0f;
    item_ids.push_back(id);
  }
  serving::OnlineServerOptions opt;
  opt.embedding_dim = dim;
  opt.top_n = 3;
  serving::OnlineServer server(&g, opt, node_emb, item_ids, item_emb);

  GraphDeltaLog log(2);
  DynamicHeteroGraph dyn(&g);
  server.AttachDynamicGraph(&dyn);
  IngestOptions iopt;
  iopt.num_shards = 2;
  IngestPipeline pipeline(&log, &dyn, iopt);
  pipeline.AddUpdateListener([&](uint64_t epoch, const std::vector<NodeId>& nodes) {
    server.OnGraphUpdate(epoch, nodes);
  });
  pipeline.Start();
  server.WarmCache({0, 1});
  const serving::ServingRequest req{0, 1};
  EXPECT_NEAR(server.Handle(req).items[0].score, 0.0f, 1e-5f);

  // The item is born online: node event + introducing click in one batch.
  auto minted = pipeline.OfferNewNode(
      MakeItemEvent(0.3f), {{1, -1, RelationKind::kClick, 3.0f, 0}});
  ASSERT_TRUE(minted.ok()) << minted.status().ToString();
  const NodeId fresh = minted.value();
  // Serving-side registration: embedding row + incremental ANN insert. The
  // embedding leans on an existing catalog direction (so the IVF coarse
  // quantizer routes both the insert and the probe to a trained list — a
  // fully orthogonal vector would land in an unprobed region) but keeps a
  // dominant novel component that makes the new item the unique best match.
  std::vector<float> fresh_emb(dim, 0.0f);
  fresh_emb[num_items] = 0.8f;
  fresh_emb[7] = 0.6f;
  ASSERT_TRUE(server.IngestNode(fresh, fresh_emb, /*is_item=*/true).ok());
  ASSERT_EQ(server.index().size(), num_items + 1);
  // Clicks keep accumulating on the new item through normal traffic.
  graph::SessionRecord session;
  session.user = 0;
  session.query = 1;
  session.clicks = {fresh, fresh};
  ASSERT_TRUE(pipeline.Offer(session));
  pipeline.Flush();

  // Pre-Compact: once the asynchronous cache re-fill lands, the cold-start
  // item must be the top recommendation.
  serving::ServingResponse before;
  bool visible = false;
  for (int i = 0; i < 2000 && !visible; ++i) {
    before = server.Handle(req);
    visible = !before.items.empty() && before.items[0].id == fresh &&
              before.items[0].score > 0.1f;
    if (!visible) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(visible);
  ASSERT_GT(dyn.num_delta_entries(), 0);  // served from the overlay

  // The fold conserves the merged neighborhoods, so the response is
  // identical — same items in the same order.
  auto folded = dyn.Compact();
  ASSERT_TRUE(folded.ok());
  log.Truncate(folded.value());
  EXPECT_EQ(dyn.base()->num_nodes(), g.num_nodes() + 1);
  EXPECT_EQ(dyn.num_delta_entries(), 0);
  auto after = server.Handle(req);
  ASSERT_EQ(after.items.size(), before.items.size());
  for (size_t i = 0; i < after.items.size(); ++i) {
    EXPECT_EQ(after.items[i].id, before.items[i].id);
    EXPECT_NEAR(after.items[i].score, before.items[i].score, 1e-4f);
  }
  EXPECT_EQ(after.items[0].id, fresh);
  pipeline.Stop();
}

// --- Incremental compaction (segmented base) --------------------------------

/// Applies the same integer-weight event stream to two graphs; weights are
/// integers so float sums are exact and every read must be bit-identical
/// regardless of how (or how often) the base folded.
std::vector<std::vector<EdgeEvent>> ParityBatches() {
  // Nodes: user 0, query 1, items 2..15 (MakeContentGraph(14)); with
  // segment_span=4 the id-space splits into segments {0..3}, {4..7},
  // {8..11}, {12..15}. Edges deliberately cross segments and repeat
  // (neighbor, kind) pairs to exercise coalescing.
  return {
      {{1, 4, RelationKind::kClick, 2.0f, 0},
       {1, 4, RelationKind::kClick, 1.0f, 0},
       {0, 9, RelationKind::kClick, 3.0f, 0},
       {5, 13, RelationKind::kSession, 1.0f, 0}},
      {{1, 9, RelationKind::kClick, 4.0f, 0},
       {2, 10, RelationKind::kSession, 2.0f, 0},
       {0, 1, RelationKind::kClick, 1.0f, 0}},
      {{1, 4, RelationKind::kClick, 5.0f, 0},
       {12, 14, RelationKind::kSession, 3.0f, 0},
       {3, 12, RelationKind::kClick, 2.0f, 0}},
      {{1, 15, RelationKind::kClick, 1.0f, 0},
       {2, 10, RelationKind::kSession, 6.0f, 0}},
  };
}

TEST(IncrementalCompactionTest, SegmentFoldChainMatchesSingleFullFold) {
  HeteroGraph g = MakeContentGraph(14, 77);
  DynamicHeteroGraphOptions opt;
  opt.segment_span = 4;
  // One shared log keeps epochs aligned between the two graphs — each
  // pipeline-less test applier marks only its own graph's epochs.
  GraphDeltaLog log_a(1), log_b(1);
  DynamicHeteroGraph a(&g, opt), b(&g, opt);
  ASSERT_EQ(a.base()->num_segments(), 4);

  const auto batches = ParityBatches();
  const std::vector<std::vector<int64_t>> folds = {{0}, {1, 3}, {2}, {}};
  for (size_t i = 0; i < batches.size(); ++i) {
    ASSERT_TRUE(a.ApplyBatch(MakeBatch(&log_a, 0, batches[i])).ok());
    ASSERT_TRUE(b.ApplyBatch(MakeBatch(&log_b, 0, batches[i])).ok());
    if (!folds[i].empty()) {
      auto folded = a.CompactSegments(folds[i]);
      ASSERT_TRUE(folded.ok());
    }
  }
  // (a) chain of per-segment folds, closed by a full fold; (b) one full
  // fold over the identical stream.
  ASSERT_TRUE(a.Compact().ok());
  ASSERT_TRUE(b.Compact().ok());
  EXPECT_EQ(a.num_delta_entries(), 0);
  EXPECT_EQ(b.num_delta_entries(), 0);

  auto sa = a.MakeSnapshot();
  auto sb = b.MakeSnapshot();
  ASSERT_EQ(sa.num_nodes(), sb.num_nodes());
  Rng draw_a(99), draw_b(99);
  for (NodeId v = 0; v < sa.num_nodes(); ++v) {
    // Merged neighbor lists identical entry-for-entry (order included:
    // both folds sort rows by (neighbor type, kind, id)).
    std::vector<graph::NeighborEntry> na, nb;
    sa.Neighbors(v, &na);
    sb.Neighbors(v, &nb);
    ASSERT_EQ(na.size(), nb.size()) << "node " << v;
    for (size_t i = 0; i < na.size(); ++i) {
      EXPECT_EQ(na[i].neighbor, nb[i].neighbor) << "node " << v;
      EXPECT_EQ(na[i].kind, nb[i].kind) << "node " << v;
      EXPECT_FLOAT_EQ(na[i].weight, nb[i].weight) << "node " << v;
    }
    EXPECT_EQ(sa.Degree(v), sb.Degree(v));
    EXPECT_DOUBLE_EQ(sa.TotalWeight(v), sb.TotalWeight(v));
    // Identical rows + identical RNG stream => identical weighted draws
    // (the distributions are not merely close, they are the same).
    for (int i = 0; i < 16; ++i) {
      EXPECT_EQ(sa.SampleNeighbor(v, &draw_a), sb.SampleNeighbor(v, &draw_b));
    }
  }

  // Focal top-k ROI through the dynamic views is identical too.
  DynamicGraphView va(&a), vb(&b);
  core::RoiSamplerOptions ropt;
  ropt.k = 4;
  ropt.num_hops = 2;
  core::RoiSampler roi(ropt);
  Rng ra(5), rb(5);
  for (NodeId ego : {NodeId{1}, NodeId{4}, NodeId{9}, NodeId{12}}) {
    auto fa = roi.FocalVector(va, {0, ego});
    auto fb = roi.FocalVector(vb, {0, ego});
    auto roi_a = roi.Sample(va, ego, fa, &ra);
    auto roi_b = roi.Sample(vb, ego, fb, &rb);
    ASSERT_EQ(roi_a.nodes.size(), roi_b.nodes.size());
    for (size_t i = 0; i < roi_a.nodes.size(); ++i) {
      EXPECT_EQ(roi_a.nodes[i].id, roi_b.nodes[i].id);
    }
  }
}

TEST(IncrementalCompactionTest, UntouchedSegmentsStaySharedAcrossFold) {
  HeteroGraph g = MakeContentGraph(14, 31);
  DynamicHeteroGraphOptions opt;
  opt.segment_span = 4;
  GraphDeltaLog log(1);
  DynamicHeteroGraph dyn(&g, opt);
  auto base_before = dyn.base();
  auto pinned = dyn.MakeSnapshot();  // old-base reader across the fold

  // Dirty only segment 0 (nodes 1<->2 live in rows 0..3).
  ASSERT_TRUE(
      dyn.ApplyBatch(
             MakeBatch(&log, 0, {{1, 2, RelationKind::kClick, 2.0f, 0}}))
          .ok());
  const uint64_t gen_before = dyn.base_generation();
  auto folded = dyn.CompactSegments({0});
  ASSERT_TRUE(folded.ok());
  auto base_after = dyn.base();

  // Persistent-structure sharing: only segment 0 was rebuilt.
  EXPECT_NE(base_after, base_before);
  EXPECT_NE(base_after->segment_ptr(0), base_before->segment_ptr(0));
  for (int64_t s = 1; s < 4; ++s) {
    EXPECT_EQ(base_after->segment_ptr(s), base_before->segment_ptr(s));
    EXPECT_EQ(base_after->segment_generation(s),
              base_before->segment_generation(s));
  }
  EXPECT_EQ(dyn.base_generation(), gen_before + 1);
  EXPECT_EQ(base_after->generation_of(1), gen_before + 1);

  // The fold landed: new snapshots read the merged weight from the base
  // with no overlay left.
  EXPECT_EQ(dyn.num_delta_entries(), 0);
  auto snap = dyn.MakeSnapshot();
  EXPECT_FALSE(snap.MaybeHasDelta(1));
  // +2 on the (1,2) half; NEAR, not EQ — the fold re-rounds each coalesced
  // weight to float once (random base weights are not float-exact sums).
  EXPECT_NEAR(snap.TotalWeight(1), pinned.TotalWeight(1) + 2.0, 1e-4);
  // The pinned old-base snapshot still reads its (pre-fold) segment 0 rows
  // — zero-copy spans stayed valid; it lost only delta visibility (the
  // short-read-lease contract).
  EXPECT_EQ(&pinned.base(), base_before.get());
  EXPECT_EQ(pinned.base().degree(1), base_before->degree(1));
}

TEST(IncrementalCompactionTest, SafeTruncateEpochBoundsPartialFolds) {
  HeteroGraph g = MakeContentGraph(14, 13);
  DynamicHeteroGraphOptions opt;
  opt.segment_span = 4;
  GraphDeltaLog log(1);
  DynamicHeteroGraph dyn(&g, opt);

  // Epoch e1 touches segment 0 (edge 0-1); epoch e2 touches segment 2
  // (edge 8-9).
  auto b1 = MakeBatch(&log, 0, {{0, 1, RelationKind::kClick, 1.0f, 0}}, &dyn);
  ASSERT_TRUE(dyn.ApplyBatch(b1).ok());
  auto b2 = MakeBatch(&log, 0, {{8, 9, RelationKind::kClick, 1.0f, 0}}, &dyn);
  ASSERT_TRUE(dyn.ApplyBatch(b2).ok());

  // Folding only segment 2 leaves epoch e1's halves pending in segment 0:
  // the log may truncate through e1 - 1 only.
  ASSERT_TRUE(dyn.CompactSegments({2}).ok());
  EXPECT_EQ(dyn.SafeTruncateEpoch(), b1.epoch - 1);
  log.Truncate(dyn.SafeTruncateEpoch());
  EXPECT_EQ(log.ReadSince(0).size(), 2u);  // both batches survive

  // After segment 0 folds too, everything is absorbed.
  ASSERT_TRUE(dyn.CompactSegments({0}).ok());
  EXPECT_EQ(dyn.SafeTruncateEpoch(), dyn.watermark_epoch());
  log.Truncate(dyn.SafeTruncateEpoch());
  EXPECT_EQ(log.ReadSince(0).size(), 0u);
}

// --- Per-type capacity limits (id-space growth) -----------------------------

TEST(NodeCapacityTest, TypedAllocationEnforcesPerTypeCap) {
  HeteroGraph g = MakeTinyGraph(2);  // 2 base items
  DynamicHeteroGraphOptions opt;
  opt.max_nodes_per_type[static_cast<int>(NodeType::kItem)] = 4;  // +2 room
  GraphDeltaLog log(1);
  DynamicHeteroGraph dyn(&g, opt);
  IngestOptions iopt;
  iopt.num_shards = 1;
  IngestPipeline pipeline(&log, &dyn, iopt);
  pipeline.Start();

  auto id1 = pipeline.OfferNewNode(MakeItemEvent());
  auto id2 = pipeline.OfferNewNode(MakeItemEvent());
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());
  EXPECT_EQ(dyn.num_nodes_of_type(NodeType::kItem), 4);

  const int64_t allocated_before = dyn.num_nodes_allocated();
  auto id3 = pipeline.OfferNewNode(MakeItemEvent());
  ASSERT_FALSE(id3.ok());
  EXPECT_EQ(id3.status().code(), StatusCode::kOutOfRange);
  // The rejection burned nothing: no id, no record, no pending epoch.
  EXPECT_EQ(dyn.num_nodes_allocated(), allocated_before);
  EXPECT_EQ(dyn.num_nodes_of_type(NodeType::kItem), 4);
  int64_t rejected = 0;
  for (int64_t c : pipeline.Stats().rejected_capacity) rejected += c;
  EXPECT_EQ(rejected, 1);

  // Uncapped types still mint, and ingest over the minted ids still works.
  NodeEvent user;
  user.type = NodeType::kUser;
  user.content = std::vector<float>(kDim, 0.5f);
  auto uid = pipeline.OfferNewNode(std::move(user));
  ASSERT_TRUE(uid.ok());
  graph::SessionRecord session;
  session.user = uid.value();
  session.query = 1;
  session.clicks = {id1.value()};
  ASSERT_TRUE(pipeline.Offer(session));
  pipeline.Flush();
  EXPECT_GT(dyn.MakeSnapshot().Degree(id1.value()), 0);
  pipeline.Stop();
}

// --- TTL'd truncation of the delta log itself -------------------------------

TEST(DeltaLogTtlTest, TruncateExpiredDropsOnlyFullyAgedAppliedBatches) {
  GraphDeltaLog log(2);
  // Old batch: every event aged out. Mixed batch: one event still fresh.
  log.Append(0, {{0, 1, RelationKind::kClick, 1.0f, /*timestamp=*/100}});
  const uint64_t mixed =
      log.Append(1, {{0, 1, RelationKind::kClick, 1.0f, 100},
                     {1, 2, RelationKind::kClick, 1.0f, 950}});
  const uint64_t fresh_epoch =
      log.Append(0, {{1, 2, RelationKind::kSession, 1.0f, 990}});

  DecaySpec spec = DecaySpec::Window(/*ttl_seconds=*/200,
                                     /*half_life_seconds=*/0.0);
  // max_epoch below the old batch: nothing droppable yet (unapplied guard).
  EXPECT_EQ(log.TruncateExpired(spec, /*now=*/1000, /*max_epoch=*/0), 0);
  // Applied watermark covers everything: only the fully-aged batch drops.
  EXPECT_EQ(log.TruncateExpired(spec, 1000, fresh_epoch), 1);
  auto left = log.ReadSince(0);
  ASSERT_EQ(left.size(), 2u);
  EXPECT_EQ(left[0].epoch, mixed);
  EXPECT_EQ(log.Stats().total_events, 3);
  // No TTL configured => never drops.
  EXPECT_EQ(log.TruncateExpired(DecaySpec{}, 1000000, fresh_epoch), 0);
}

// --- Node-TTL groundwork (cold-start reclamation at fold time) --------------

TEST(ColdNodeTtlTest, IsolatedColdNodesFoldToStubsAndReclaim) {
  HeteroGraph g = MakeTinyGraph(2);
  DynamicHeteroGraphOptions opt;
  opt.segment_span = 4;
  opt.cold_node_ttl_seconds = 100;
  GraphDeltaLog log(1);
  DynamicHeteroGraph dyn(&g, opt);
  ManualClock clock;
  clock.SetSeconds(1000);
  dyn.SetClock(&clock);

  // Cold arrival: a node that never accumulates an edge. Warm arrival: a
  // node introduced with a click (lifetime traffic > cold_node_max_degree).
  auto cold_batch = MakeNodeBatch(&log, 0, &dyn, {MakeItemEvent(0.4f, 1000)});
  ASSERT_TRUE(dyn.ApplyBatch(cold_batch).ok());
  const NodeId cold_id = cold_batch.node_events[0].id;
  auto warm_batch = MakeNodeBatch(
      &log, 0, &dyn, {MakeItemEvent(0.6f, 1000)},
      {{1, -1, RelationKind::kClick, 2.0f, 1000}});
  ASSERT_TRUE(dyn.ApplyBatch(warm_batch).ok());
  const NodeId warm_id = warm_batch.node_events[0].id;

  // Before the TTL elapses, a fold keeps the cold node's payload.
  ASSERT_TRUE(dyn.Compact().ok());
  EXPECT_EQ(dyn.expired_cold_nodes(), 0);
  auto snap1 = dyn.MakeSnapshot();
  EXPECT_FLOAT_EQ(snap1.content(cold_id)[0], 0.4f);

  // A later fold past the TTL reclaims it: stub row, zeroed content, type
  // retained, id-space stable; the warm node is untouched.
  clock.AdvanceSeconds(200);
  ASSERT_TRUE(dyn.Compact().ok());
  EXPECT_EQ(dyn.expired_cold_nodes(), 0)
      << "already-folded rows must not re-qualify";
  // Reclamation happens at the fold that first absorbs the node past its
  // TTL — mint a fresh cold node and age it out.
  auto cold2 = MakeNodeBatch(&log, 0, &dyn, {MakeItemEvent(0.7f, 1200)});
  ASSERT_TRUE(dyn.ApplyBatch(cold2).ok());
  const NodeId cold2_id = cold2.node_events[0].id;
  clock.AdvanceSeconds(300);
  ASSERT_TRUE(dyn.Compact().ok());
  EXPECT_EQ(dyn.expired_cold_nodes(), 1);
  auto snap2 = dyn.MakeSnapshot();
  ASSERT_GT(snap2.num_nodes(), cold2_id);
  EXPECT_EQ(snap2.node_type(cold2_id), NodeType::kItem);
  EXPECT_EQ(snap2.Degree(cold2_id), 0);
  EXPECT_FLOAT_EQ(snap2.content(cold2_id)[0], 0.0f);  // reclaimed payload
  EXPECT_GT(snap2.Degree(warm_id), 0);
  EXPECT_FLOAT_EQ(snap2.content(warm_id)[0], 0.6f);
}

// --- CompactSegments racing online node minting (TSan) ----------------------

TEST(IncrementalCompactionTest, SegmentFoldsRaceOfferNewNode) {
  HeteroGraph g = MakeContentGraph(14, 3);
  DynamicHeteroGraphOptions opt;
  opt.segment_span = 4;
  GraphDeltaLog log(2);
  DynamicHeteroGraph dyn(&g, opt);
  IngestOptions iopt;
  iopt.num_shards = 2;
  iopt.batch_size = 4;
  IngestPipeline pipeline(&log, &dyn, iopt);
  pipeline.Start();

  constexpr int kMints = 24;
  std::vector<NodeId> minted(kMints, -1);
  std::thread minter([&] {
    Rng rng(17);
    for (int i = 0; i < kMints; ++i) {
      auto id = pipeline.OfferNewNode(
          MakeItemEvent(0.2f + 0.01f * i),
          {{1, -1, RelationKind::kClick, 1.0f, 0}});
      ASSERT_TRUE(id.ok());
      minted[i] = id.value();
      graph::SessionRecord session;
      session.user = 0;
      session.query = 1;
      session.clicks = {minted[rng.Uniform(i + 1)]};
      pipeline.Offer(session);
    }
  });
  std::atomic<bool> stop_readers{false};
  std::thread reader([&] {
    Rng rng(29);
    while (!stop_readers.load(std::memory_order_acquire)) {
      auto snap = dyn.MakeSnapshot();
      const NodeId n = static_cast<NodeId>(rng.Uniform(snap.num_nodes()));
      snap.SampleNeighbor(n, &rng);
      std::vector<graph::NeighborEntry> out;
      snap.Neighbors(1, &out);
    }
  });
  // Rotate incremental folds across segments (including the growing
  // frontier) while minting and reads are in flight — the quiescence
  // handshake parks OfferNewNode's producer-side apply at batch
  // boundaries.
  for (int round = 0; round < 12; ++round) {
    auto folded = dyn.CompactSegments({round % 5});
    ASSERT_TRUE(folded.ok());
  }
  minter.join();
  stop_readers.store(true, std::memory_order_release);
  reader.join();
  pipeline.Flush();
  ASSERT_TRUE(dyn.Compact().ok());

  // Conservation: every minted node survived the folds with its intro
  // click's mass, renumber-free.
  auto snap = dyn.MakeSnapshot();
  EXPECT_EQ(snap.num_nodes(), g.num_nodes() + kMints);
  for (NodeId id : minted) {
    ASSERT_GE(id, g.num_nodes());
    EXPECT_EQ(snap.node_type(id), NodeType::kItem);
    EXPECT_GE(snap.TotalWeight(id), 1.0 - 1e-6);
  }
  pipeline.Stop();
}

}  // namespace
}  // namespace streaming
}  // namespace zoomer
