// Tests for the baseline recommenders: registry coverage, forward sanity for
// every model, learning behaviour of the trainable ones, and the bespoke
// scoring paths (Pixie walks, PinnerSage medoids).
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "baselines/gnn_baselines.h"
#include "baselines/pinnersage.h"
#include "baselines/pixie.h"
#include "baselines/registry.h"
#include "baselines/session_baselines.h"
#include "core/trainer.h"
#include "data/taobao_generator.h"

namespace zoomer {
namespace baselines {
namespace {

const data::RetrievalDataset& Dataset() {
  static const data::RetrievalDataset* ds = [] {
    data::TaobaoGeneratorOptions opt;
    opt.num_users = 80;
    opt.num_queries = 50;
    opt.num_items = 150;
    opt.num_sessions = 600;
    opt.num_categories = 6;
    opt.content_dim = 12;
    opt.seed = 21;
    return new data::RetrievalDataset(GenerateTaobaoDataset(opt));
  }();
  return *ds;
}

ModelParams SmallParams() {
  ModelParams p;
  p.hidden_dim = 8;
  p.sample_k = 4;
  p.num_hops = 2;
  p.seed = 3;
  return p;
}

class RegistryForwardTest : public ::testing::TestWithParam<std::string> {};

TEST_P(RegistryForwardTest, ConstructsAndScoresFinite) {
  const auto& ds = Dataset();
  auto model = MakeModel(GetParam(), &ds.graph, SmallParams());
  ASSERT_NE(model, nullptr) << GetParam();
  EXPECT_EQ(model->name(), GetParam());
  Rng rng(5);
  model->OnEpochBegin(ds, &rng);
  for (int i = 0; i < 5; ++i) {
    const float logit = model->ScoreLogit(ds.train[i], &rng).item();
    EXPECT_FALSE(std::isnan(logit)) << GetParam();
    EXPECT_FALSE(std::isinf(logit)) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, RegistryForwardTest,
    ::testing::Values("Zoomer", "Zoomer-FE", "Zoomer-FS", "Zoomer-ES", "GCN",
                      "GraphSage", "GAT", "HAN", "PinSage", "PinnerSage",
                      "Pixie", "STAMP", "GCE-GNN", "FGNN", "MCCF"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string n = info.param;
      for (auto& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

TEST(RegistryTest, UnknownNameReturnsNull) {
  const auto& ds = Dataset();
  EXPECT_EQ(MakeModel("NotAModel", &ds.graph, SmallParams()), nullptr);
}

TEST(RegistryTest, SamplerBaselinesListed) {
  auto names = SamplerBaselineNames();
  EXPECT_EQ(names.size(), 5u);
  EXPECT_EQ(names[0], "Zoomer");
}

class TrainableBaselineTest : public ::testing::TestWithParam<std::string> {};

TEST_P(TrainableBaselineTest, LossDecreasesWithTraining) {
  const auto& ds = Dataset();
  auto model = MakeModel(GetParam(), &ds.graph, SmallParams());
  ASSERT_NE(model, nullptr);
  core::TrainOptions topt;
  topt.epochs = 4;
  topt.batch_size = 64;
  topt.learning_rate = 0.02f;
  topt.max_examples_per_epoch = 1200;
  core::ZoomerTrainer trainer(model.get(), topt);
  auto result = trainer.Train(ds);
  EXPECT_LT(result.epochs.back().mean_loss,
            result.epochs.front().mean_loss + 1e-6)
      << GetParam();
  auto eval = trainer.Evaluate(ds, 500);
  EXPECT_GT(eval.auc, 0.5) << GetParam() << " should beat random";
}

INSTANTIATE_TEST_SUITE_P(TrainableModels, TrainableBaselineTest,
                         ::testing::Values("GraphSage", "HAN", "PinSage",
                                           "STAMP", "MCCF"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string n = info.param;
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(PixieTest, ClickedItemsScoreHigherThanRandom) {
  const auto& ds = Dataset();
  PixieConfig cfg;
  PixieModel pixie(&ds.graph, cfg);
  Rng rng(7);
  double pos_sum = 0, neg_sum = 0;
  int pos_n = 0, neg_n = 0;
  for (size_t i = 0; i < ds.train.size() && pos_n < 50; ++i) {
    const auto& ex = ds.train[i];
    const double s = pixie.WalkScore(ex.user, ex.query, ex.item, &rng);
    if (ex.label > 0.5f) {
      pos_sum += s;
      ++pos_n;
    } else {
      neg_sum += s;
      ++neg_n;
    }
  }
  ASSERT_GT(pos_n, 0);
  ASSERT_GT(neg_n, 0);
  EXPECT_GT(pos_sum / pos_n, neg_sum / neg_n);
}

TEST(PixieTest, ScorePoolMatchesWalkScore) {
  const auto& ds = Dataset();
  PixieModel pixie(&ds.graph, {});
  Rng rng(9);
  std::vector<graph::NodeId> pool(ds.all_items.begin(),
                                  ds.all_items.begin() + 20);
  std::vector<float> scores;
  pixie.ScorePool(ds.test[0].user, ds.test[0].query, pool, &rng, &scores);
  ASSERT_EQ(scores.size(), 20u);
  for (size_t i = 0; i < pool.size(); ++i) {
    EXPECT_FLOAT_EQ(scores[i], static_cast<float>(pixie.WalkScore(
                                   ds.test[0].user, ds.test[0].query, pool[i],
                                   &rng)));
  }
}

TEST(PixieTest, HasNoParametersAndNoTwinTower) {
  const auto& ds = Dataset();
  PixieModel pixie(&ds.graph, {});
  EXPECT_TRUE(pixie.Parameters().empty());
  EXPECT_FALSE(pixie.has_twin_tower());
}

TEST(PixieTest, HitRateEvaluationThroughScorePool) {
  const auto& ds = Dataset();
  PixieModel pixie(&ds.graph, {});
  core::TrainOptions topt;
  core::ZoomerTrainer trainer(&pixie, topt);
  core::EvalResult eval;
  trainer.EvaluateHitRate(ds, &eval, /*max_positives=*/30);
  EXPECT_GE(eval.hitrate_at[2], eval.hitrate_at[0]);
  EXPECT_GT(eval.hitrate_at[2], 0.0);  // 150-item pool, K=300 covers all
}

TEST(PinnerSageTest, MedoidsBuiltFromHistory) {
  const auto& ds = Dataset();
  PinnerSageConfig cfg;
  cfg.hidden_dim = 8;
  PinnerSageModel model(&ds.graph, cfg);
  Rng rng(11);
  model.OnEpochBegin(ds, &rng);
  // Find a user with training history.
  graph::NodeId active_user = ds.train.front().user;
  const auto& meds = model.Medoids(active_user);
  ASSERT_FALSE(meds.empty());
  EXPECT_LE(meds.size(), 3u);
  for (auto m : meds) {
    EXPECT_EQ(ds.graph.node_type(m), graph::NodeType::kItem);
  }
}

TEST(PinnerSageTest, ColdUserFallsBackToProfile) {
  const auto& ds = Dataset();
  PinnerSageConfig cfg;
  cfg.hidden_dim = 8;
  PinnerSageModel model(&ds.graph, cfg);
  Rng rng(13);
  // No OnEpochBegin: all users are cold; forward must still work.
  const float logit = model.ScoreLogit(ds.train[0], &rng).item();
  EXPECT_FALSE(std::isnan(logit));
}

TEST(GnnBaselineTest, ConfigFactoriesSetKinds) {
  auto gs = GnnBaselineConfig::GraphSage(8, 5, 1);
  EXPECT_EQ(gs.sampler.kind, core::SamplerKind::kUniform);
  EXPECT_EQ(gs.aggregator, Aggregator::kMean);
  auto ps = GnnBaselineConfig::PinSage(8, 5, 1);
  EXPECT_EQ(ps.sampler.kind, core::SamplerKind::kRandomWalk);
  EXPECT_EQ(ps.aggregator, Aggregator::kImportance);
  auto han = GnnBaselineConfig::Han(8, 5, 1);
  EXPECT_TRUE(han.han_semantic);
}

TEST(SessionBaselineTest, HistoryColdStartSafe) {
  const auto& ds = Dataset();
  SessionBaselineConfig cfg;
  cfg.hidden_dim = 8;
  cfg.kind = SessionModelKind::kStamp;
  SessionBaselineModel model(&ds.graph, cfg);
  Rng rng(15);
  // Without OnEpochBegin every user is cold.
  EXPECT_FALSE(std::isnan(model.ScoreLogit(ds.test[0], &rng).item()));
}

TEST(SessionBaselineTest, AllKindsDistinctNames) {
  const auto& ds = Dataset();
  std::set<std::string> names;
  for (auto kind : {SessionModelKind::kStamp, SessionModelKind::kGceGnn,
                    SessionModelKind::kFgnn, SessionModelKind::kMccf}) {
    SessionBaselineConfig cfg;
    cfg.hidden_dim = 8;
    cfg.kind = kind;
    SessionBaselineModel model(&ds.graph, cfg);
    names.insert(model.name());
  }
  EXPECT_EQ(names.size(), 4u);
}

}  // namespace
}  // namespace baselines
}  // namespace zoomer
