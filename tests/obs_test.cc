// Tests for src/obs: lock-free counter/gauge/histogram instruments (hammered
// from many threads — run under TSan in CI), log-bucket quantile accuracy
// against exact order statistics, registry ownership/aggregation semantics,
// exporter round-trips, the trace ring, and the streaming freshness-lag
// gauge regression (returns to ~0 after a quiescent flush).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "obs/exporter.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "streaming/dynamic_hetero_graph.h"
#include "streaming/graph_delta_log.h"
#include "streaming/ingest_pipeline.h"

namespace zoomer {
namespace obs {
namespace {

TEST(CounterTest, SingleThreadedAdds) {
  Counter c;
  EXPECT_EQ(c.Value(), 0);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42);
  c.Add(-2);  // rollback path (queue-closed offer)
  EXPECT_EQ(c.Value(), 40);
}

TEST(CounterTest, ConcurrentAddsSumExactly) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.Value(), static_cast<int64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, LastWriterWins) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0.0);
  g.Set(3.5);
  EXPECT_EQ(g.Value(), 3.5);
  g.Set(0.0);
  EXPECT_EQ(g.Value(), 0.0);
}

TEST(HistogramTest, BucketBoundsInvariants) {
  // Every probed value must land in a bucket whose [lower, next-lower)
  // range contains it, and the reported midpoint must too.
  std::vector<int64_t> probes = {0, 1, 2, 15, 16, 17, 31, 32, 100, 1000,
                                 4095, 4096, 123456789, int64_t{1} << 40};
  for (int64_t v : probes) {
    const int idx = Histogram::BucketIndex(v);
    ASSERT_GE(idx, 0) << v;
    ASSERT_LT(idx, Histogram::kNumBuckets) << v;
    EXPECT_GE(v, Histogram::BucketLowerBound(idx)) << v;
    if (idx + 1 < Histogram::kNumBuckets) {
      EXPECT_LT(v, Histogram::BucketLowerBound(idx + 1)) << v;
      EXPECT_LT(Histogram::BucketMidpoint(idx),
                Histogram::BucketLowerBound(idx + 1))
          << v;
    }
    EXPECT_GE(Histogram::BucketMidpoint(idx),
              Histogram::BucketLowerBound(idx))
        << v;
  }
  // Negatives clamp into the zero bucket.
  EXPECT_EQ(Histogram::BucketIndex(-5), 0);
  // Values below 16 are exact unit buckets.
  for (int64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(Histogram::BucketLowerBound(Histogram::BucketIndex(v)), v);
  }
}

TEST(HistogramTest, QuantileAccuracyVsExact) {
  // Record 1..100000 once each; the exact p-th percentile is p * 1000. The
  // log-scale buckets bound relative error by 1/16; midpoint reporting
  // halves it, so assert the hard 6.5% envelope.
  Histogram h;
  constexpr int64_t kN = 100000;
  for (int64_t v = 1; v <= kN; ++v) h.Record(v);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count(), kN);
  EXPECT_EQ(snap.sum(), kN * (kN + 1) / 2);
  for (double p : {50.0, 90.0, 99.0, 99.9}) {
    const double exact = p / 100.0 * kN;
    const double est = static_cast<double>(snap.Percentile(p));
    EXPECT_NEAR(est, exact, exact * 0.065) << "p" << p;
  }
  EXPECT_NEAR(static_cast<double>(snap.Max()), kN, kN * 0.065);
  EXPECT_NEAR(snap.Mean(), (kN + 1) / 2.0, 1.0);
}

TEST(HistogramTest, ConcurrentRecordsMergeExactly) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) h.Record(t * 1000 + i % 997);
    });
  }
  for (auto& th : threads) th.join();
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count(), static_cast<int64_t>(kThreads) * kPerThread);
  EXPECT_GT(snap.sum(), 0);
}

TEST(HistogramTest, SnapshotMergeAddsCounts) {
  Histogram a, b;
  for (int i = 0; i < 100; ++i) a.Record(10);
  for (int i = 0; i < 300; ++i) b.Record(1000);
  HistogramSnapshot snap = a.Snapshot();
  b.MergeInto(&snap);
  EXPECT_EQ(snap.count(), 400);
  // p25 falls in a's bucket, p99 in b's.
  EXPECT_NEAR(static_cast<double>(snap.Percentile(20)), 10.0, 1.0);
  EXPECT_NEAR(static_cast<double>(snap.Percentile(99)), 1000.0, 65.0);
}

TEST(RegistryTest, OwnedInstrumentsAreStableAndShared) {
  MetricsRegistry reg;
  Counter* c1 = reg.GetCounter("test.counter");
  Counter* c2 = reg.GetCounter("test.counter");
  EXPECT_EQ(c1, c2);
  c1->Add(7);
  reg.GetGauge("test.gauge")->Set(2.5);
  reg.GetHistogram("test.hist")->Record(42);
  const RegistrySnapshot snap = reg.Snapshot();
  ASSERT_NE(snap.Find("test.counter"), nullptr);
  EXPECT_EQ(snap.Find("test.counter")->value, 7.0);
  EXPECT_EQ(snap.Find("test.gauge")->value, 2.5);
  EXPECT_EQ(snap.Find("test.hist")->hist.count(), 1);
  EXPECT_EQ(snap.Find("absent"), nullptr);
}

TEST(RegistryTest, ViewsAggregateAndUnregister) {
  MetricsRegistry reg;
  Counter a, b;
  a.Add(10);
  b.Add(32);
  reg.RegisterCounter("agg.counter", &a);
  reg.RegisterCounter("agg.counter", &b);
  Gauge ga, gb;
  ga.Set(1.0);
  gb.Set(9.0);
  reg.RegisterGauge("agg.gauge", &ga);
  reg.RegisterGauge("agg.gauge", &gb);
  Histogram ha, hb;
  ha.Record(5);
  hb.Record(5);
  reg.RegisterHistogram("agg.hist", &ha);
  reg.RegisterHistogram("agg.hist", &hb);

  RegistrySnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.Find("agg.counter")->value, 42.0);  // counters sum
  EXPECT_EQ(snap.Find("agg.gauge")->value, 9.0);     // gauges take max
  EXPECT_EQ(snap.Find("agg.hist")->hist.count(), 2);

  reg.Unregister("agg.counter", &b);
  reg.Unregister("agg.gauge", &gb);
  snap = reg.Snapshot();
  EXPECT_EQ(snap.Find("agg.counter")->value, 10.0);
  EXPECT_EQ(snap.Find("agg.gauge")->value, 1.0);
}

TEST(RegistryTest, SumGaugesAddAcrossViews) {
  // Capacity-style gauges (per-replica queue depths) register with
  // GaugeAgg::kSum: their instances partition a total, so the snapshot adds
  // them instead of taking the worst one.
  MetricsRegistry reg;
  Gauge qa, qb, qc;
  qa.Set(2.0);
  qb.Set(5.0);
  qc.Set(1.0);
  reg.RegisterGauge("queue.depth", &qa, GaugeAgg::kSum);
  reg.RegisterGauge("queue.depth", &qb, GaugeAgg::kSum);
  reg.RegisterGauge("queue.depth", &qc, GaugeAgg::kSum);
  EXPECT_EQ(reg.Snapshot().Find("queue.depth")->value, 8.0);

  reg.Unregister("queue.depth", &qb);
  EXPECT_EQ(reg.Snapshot().Find("queue.depth")->value, 3.0);

  // Dropping the last view clears the name AND its aggregation mode: a
  // future max-style registration under the same name must not sum.
  reg.Unregister("queue.depth", &qa);
  reg.Unregister("queue.depth", &qc);
  EXPECT_EQ(reg.Snapshot().Find("queue.depth"), nullptr);
  Gauge ga, gb;
  ga.Set(4.0);
  gb.Set(6.0);
  reg.RegisterGauge("queue.depth", &ga);
  reg.RegisterGauge("queue.depth", &gb);
  EXPECT_EQ(reg.Snapshot().Find("queue.depth")->value, 6.0);  // max again
}

TEST(RegistryTest, OwnedAndViewShareOneName) {
  MetricsRegistry reg;
  reg.GetCounter("mix")->Add(5);
  Counter view;
  view.Add(3);
  reg.RegisterCounter("mix", &view);
  EXPECT_EQ(reg.Snapshot().Find("mix")->value, 8.0);
}

TEST(ExporterTest, JsonLineRoundTrip) {
  MetricsRegistry reg;
  reg.GetCounter("x.count")->Add(3);
  reg.GetGauge("x.lag")->Set(1.5);
  for (int i = 0; i < 100; ++i) reg.GetHistogram("x.lat")->Record(100);
  MetricsExporter exporter(&reg);
  const std::string line = exporter.JsonLine();
  EXPECT_NE(line.find("\"ts_monotonic_us\":"), std::string::npos);
  EXPECT_NE(line.find("\"x.count\":3"), std::string::npos);
  EXPECT_NE(line.find("\"x.lag\":1.5"), std::string::npos);
  EXPECT_NE(line.find("\"x.lat.count\":100"), std::string::npos);
  EXPECT_NE(line.find("\"x.lat.p99\":"), std::string::npos);
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
}

TEST(ExporterTest, PrometheusTextSanitizesNames) {
  MetricsRegistry reg;
  reg.GetCounter("a.b-c")->Add(1);
  reg.GetHistogram("lat.us")->Record(7);
  const std::string text = MetricsExporter(&reg).PrometheusText();
  EXPECT_NE(text.find("zoomer_a_b_c 1"), std::string::npos);
  EXPECT_NE(text.find("zoomer_lat_us{quantile=\"0.99\"}"), std::string::npos);
  EXPECT_NE(text.find("zoomer_lat_us_count 1"), std::string::npos);
}

TEST(ExporterTest, AppendJsonLineWritesFile) {
  MetricsRegistry reg;
  reg.GetCounter("file.count")->Add(11);
  const std::string path = "obs_test_export.jsonl";
  std::remove(path.c_str());
  ASSERT_TRUE(MetricsExporter(&reg).AppendJsonLine(path).ok());
  ASSERT_TRUE(MetricsExporter(&reg).AppendJsonLine(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(std::count(content.begin(), content.end(), '\n'), 2);
  EXPECT_NE(content.find("\"file.count\":11"), std::string::npos);
}

TEST(ExporterTest, FlattenMatchesJsonKeys) {
  MetricsRegistry reg;
  reg.GetCounter("flat.count")->Add(2);
  reg.GetHistogram("flat.lat")->Record(50);
  std::vector<std::string> keys;
  MetricsExporter::Flatten(reg.Snapshot(),
                           [&keys](const std::string& key, double) {
                             keys.push_back(key);
                           });
  EXPECT_NE(std::find(keys.begin(), keys.end(), "flat.count"), keys.end());
  EXPECT_NE(std::find(keys.begin(), keys.end(), "flat.lat.p50"), keys.end());
  EXPECT_NE(std::find(keys.begin(), keys.end(), "flat.lat.count"), keys.end());
}

TEST(TraceTest, RingKeepsMostRecentUpToCapacity) {
  TraceRing ring(4);
  for (int i = 0; i < 10; ++i) {
    TraceEvent ev;
    ev.name = "tick";
    ev.attr = i;
    ring.Record(ev);
  }
  EXPECT_EQ(ring.total_recorded(), 10u);
  const auto recent = ring.Recent();
  ASSERT_EQ(recent.size(), 4u);
  // Oldest first: 6, 7, 8, 9.
  for (size_t i = 0; i < recent.size(); ++i) {
    EXPECT_EQ(recent[i].attr, static_cast<int64_t>(6 + i));
  }
  EXPECT_EQ(ring.Recent(2).size(), 2u);
  EXPECT_EQ(ring.Recent(2)[1].attr, 9);
}

TEST(TraceTest, SpanRecordsDurationAndHistogram) {
  TraceRing ring(8);
  Histogram lat;
  {
    TraceSpan span("unit_of_work", &ring, &lat);
    span.set_attr(123);
  }
  const auto recent = ring.Recent();
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_STREQ(recent[0].name, "unit_of_work");
  EXPECT_EQ(recent[0].attr, 123);
  EXPECT_GE(recent[0].duration_us, 0);
  EXPECT_EQ(lat.Snapshot().count(), 1);
}

// -- Streaming freshness-lag regression --------------------------------------

TEST(FreshnessLagTest, GaugeReturnsToZeroAfterQuiescentFlush) {
  // Private registry so assertions see only this pipeline's instruments.
  MetricsRegistry reg;
  graph::HeteroGraphBuilder b(4);
  b.AddNode(graph::NodeType::kUser, std::vector<float>(4, 0.1f), {0});
  b.AddNode(graph::NodeType::kQuery, std::vector<float>(4, 0.2f), {1});
  for (int i = 0; i < 6; ++i) {
    b.AddNode(graph::NodeType::kItem, std::vector<float>(4, 0.3f), {2});
  }
  ASSERT_TRUE(b.AddEdge(0, 1, graph::RelationKind::kClick, 1.0f).ok());
  auto g = b.Build();

  streaming::GraphDeltaLog log(2);
  streaming::DynamicHeteroGraph dyn(&g);
  streaming::IngestOptions iopt;
  iopt.num_shards = 2;
  iopt.batch_size = 4;
  iopt.registry = &reg;
  {
    streaming::IngestPipeline pipeline(&log, &dyn, iopt);
    pipeline.Start();
    for (int s = 0; s < 50; ++s) {
      graph::SessionRecord session;
      session.user = 0;
      session.query = 1;
      session.clicks = {2 + s % 6, 2 + (s + 1) % 6};
      ASSERT_TRUE(pipeline.Offer(session));
    }
    pipeline.Flush();

    const RegistrySnapshot snap = reg.Snapshot();
    const MetricPoint* lag = snap.Find("streaming.freshness_lag_us");
    ASSERT_NE(lag, nullptr);
    // Every shard's final batch drained its queue, so the aggregate (max
    // over shards) must have been reset to 0.
    EXPECT_EQ(lag->value, 0.0);
    for (int shard = 0; shard < iopt.num_shards; ++shard) {
      const MetricPoint* shard_lag = snap.Find(
          "streaming.freshness_lag_us.shard" + std::to_string(shard));
      ASSERT_NE(shard_lag, nullptr) << shard;
      EXPECT_EQ(shard_lag->value, 0.0) << shard;
    }
    const MetricPoint* lat = snap.Find("streaming.ingest_batch_latency_us");
    ASSERT_NE(lat, nullptr);
    EXPECT_GT(lat->hist.count(), 0);
    const MetricPoint* applied = snap.Find("streaming.events_applied");
    ASSERT_NE(applied, nullptr);
    EXPECT_GT(applied->value, 0.0);
    pipeline.Stop();
  }
  // The pipeline unregistered its views: the names aggregate to nothing.
  const RegistrySnapshot after = reg.Snapshot();
  const MetricPoint* applied = after.Find("streaming.events_applied");
  if (applied != nullptr) EXPECT_EQ(applied->value, 0.0);
}

TEST(FreshnessLagTest, DropCountersSurfaceInRegistry) {
  MetricsRegistry reg;
  graph::HeteroGraphBuilder b(4);
  b.AddNode(graph::NodeType::kUser, std::vector<float>(4, 0.1f), {0});
  b.AddNode(graph::NodeType::kQuery, std::vector<float>(4, 0.2f), {1});
  b.AddNode(graph::NodeType::kItem, std::vector<float>(4, 0.3f), {2});
  ASSERT_TRUE(b.AddEdge(0, 1, graph::RelationKind::kClick, 1.0f).ok());
  auto g = b.Build();
  streaming::GraphDeltaLog log(1);
  streaming::DynamicHeteroGraph dyn(&g);
  streaming::IngestOptions iopt;
  iopt.num_shards = 1;
  iopt.registry = &reg;
  streaming::IngestPipeline pipeline(&log, &dyn, iopt);
  pipeline.Start();
  graph::SessionRecord session;
  session.user = 0;
  session.query = 1;
  session.clicks = {999};  // endpoint the graph has never ingested
  ASSERT_TRUE(pipeline.Offer(session));
  pipeline.Flush();
  const RegistrySnapshot snap = reg.Snapshot();
  const MetricPoint* rejected = snap.Find("streaming.rejected_unknown_node");
  ASSERT_NE(rejected, nullptr);
  EXPECT_GT(rejected->value, 0.0);
  const MetricPoint* dropped = snap.Find("streaming.events_dropped");
  ASSERT_NE(dropped, nullptr);
  EXPECT_EQ(dropped->value, rejected->value);
  pipeline.Stop();
}

}  // namespace
}  // namespace obs
}  // namespace zoomer
