// Tests for the Zoomer core: relevance scorers, focal-biased ROI sampling,
// multi-level attention invariants, and end-to-end learning behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/relevance.h"
#include "core/roi_sampler.h"
#include "core/trainer.h"
#include "core/zoomer_model.h"
#include "data/taobao_generator.h"

namespace zoomer {
namespace core {
namespace {

using graph::HeteroGraph;
using graph::HeteroGraphBuilder;
using graph::NodeId;
using graph::NodeType;
using graph::RelationKind;

// --- Relevance scorers --------------------------------------------------------

TEST(RelevanceTest, TanimotoMatchesEq5) {
  // e = Fc.Fj / (|Fc|^2 + |Fj|^2 - Fc.Fj)
  const float fc[] = {1.0f, 0.0f};
  const float fj[] = {0.5f, 0.5f};
  TanimotoScorer scorer;
  const double dot = 0.5, na = 1.0, nb = 0.5;
  EXPECT_NEAR(scorer.Score(fc, fj, 2), dot / (na + nb - dot), 1e-9);
}

TEST(RelevanceTest, TanimotoIdenticalVectorsIsOne) {
  const float v[] = {0.3f, -0.7f, 0.2f};
  TanimotoScorer scorer;
  EXPECT_NEAR(scorer.Score(v, v, 3), 1.0, 1e-6);
}

TEST(RelevanceTest, CosineRange) {
  const float a[] = {1.0f, 0.0f};
  const float b[] = {-1.0f, 0.0f};
  const float c[] = {0.0f, 1.0f};
  CosineScorer scorer;
  EXPECT_NEAR(scorer.Score(a, a, 2), 1.0, 1e-6);
  EXPECT_NEAR(scorer.Score(a, b, 2), -1.0, 1e-6);
  EXPECT_NEAR(scorer.Score(a, c, 2), 0.0, 1e-6);
}

TEST(RelevanceTest, ZeroVectorSafe) {
  const float z[] = {0.0f, 0.0f};
  const float a[] = {1.0f, 1.0f};
  EXPECT_EQ(TanimotoScorer().Score(z, z, 2), 0.0);
  EXPECT_EQ(CosineScorer().Score(z, a, 2), 0.0);
}

TEST(RelevanceTest, FactoryProducesAllKinds) {
  EXPECT_EQ(MakeRelevanceScorer(RelevanceKind::kTanimoto)->name(), "tanimoto");
  EXPECT_EQ(MakeRelevanceScorer(RelevanceKind::kCosine)->name(), "cosine");
  EXPECT_EQ(MakeRelevanceScorer(RelevanceKind::kDot)->name(), "dot");
}

// --- ROI sampler ----------------------------------------------------------------

// Star graph: ego user 0 with item neighbors of two content clusters.
HeteroGraph MakeStarGraph(int n_relevant, int n_irrelevant) {
  HeteroGraphBuilder b(2);
  b.AddNode(NodeType::kUser, {1.0f, 0.0f}, {0});
  b.AddNode(NodeType::kQuery, {1.0f, 0.0f}, {0, 0});
  for (int i = 0; i < n_relevant; ++i) {
    // aligned with focal direction (1,0)
    NodeId id = b.AddNode(NodeType::kItem, {0.9f, 0.1f}, {i, 0, 0, 0, 0});
    EXPECT_TRUE(b.AddEdge(0, id, RelationKind::kClick).ok());
  }
  for (int i = 0; i < n_irrelevant; ++i) {
    // orthogonal to focal
    NodeId id = b.AddNode(NodeType::kItem, {0.0f, 1.0f},
                          {n_relevant + i, 0, 0, 0, 0});
    EXPECT_TRUE(b.AddEdge(0, id, RelationKind::kClick).ok());
  }
  EXPECT_TRUE(b.AddEdge(0, 1, RelationKind::kClick).ok());
  return b.Build();
}

TEST(RoiSamplerTest, FocalTopKSelectsRelevantNeighbors) {
  HeteroGraph g = MakeStarGraph(6, 6);
  RoiSamplerOptions opt;
  opt.k = 6;
  opt.num_hops = 1;
  RoiSampler sampler(opt);
  Rng rng(1);
  auto fc = sampler.FocalVector(g, {0, 1});
  RoiSubgraph roi = sampler.Sample(g, 0, fc, &rng);
  ASSERT_EQ(roi.size(), 7);  // ego + 6
  // All selected children must be from the relevant cluster or the query
  // (content aligned with (1,0)).
  for (int i = 1; i < roi.size(); ++i) {
    const float* c = g.content(roi.nodes[i].id);
    EXPECT_GT(c[0], 0.5f) << "sampled an irrelevant neighbor";
  }
}

TEST(RoiSamplerTest, GraphViewPathMatchesCsrOverload) {
  // The HeteroGraph overloads wrap CsrGraphView; sampling through an
  // explicit view must be bit-identical for the deterministic focal-top-k
  // kind (same scores, same tiebreaks, same rng consumption).
  HeteroGraph g = MakeStarGraph(6, 6);
  RoiSamplerOptions opt;
  opt.k = 4;
  opt.num_hops = 1;
  RoiSampler sampler(opt);
  graph::CsrGraphView view(g);
  auto fc_csr = sampler.FocalVector(g, {0, 1});
  auto fc_view = sampler.FocalVector(view, {0, 1});
  EXPECT_EQ(fc_csr, fc_view);
  Rng r1(3), r2(3);
  RoiSubgraph a = sampler.Sample(g, 0, fc_csr, &r1);
  RoiSubgraph b = sampler.Sample(view, 0, fc_view, &r2);
  ASSERT_EQ(a.size(), b.size());
  for (int i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.nodes[i].id, b.nodes[i].id);
    EXPECT_EQ(a.nodes[i].depth, b.nodes[i].depth);
    EXPECT_EQ(a.nodes[i].parent, b.nodes[i].parent);
  }
}

TEST(RoiSamplerTest, SampleBatchMatchesPerEgoSample) {
  // The frontier-at-once batch (all egos hop h before hop h+1, shared
  // scratch + relevance memo) must produce exactly the per-ego trees for
  // the deterministic focal-top-k kind, including repeated egos.
  HeteroGraph g = MakeStarGraph(6, 6);
  RoiSamplerOptions opt;
  opt.k = 4;
  opt.num_hops = 2;
  RoiSampler sampler(opt);
  auto fc = sampler.FocalVector(g, {0, 1});
  const std::vector<graph::NodeId> egos = {0, 1, 0, 3};
  Rng batched(5);
  std::vector<RoiSubgraph> rois =
      sampler.SampleBatch(g, {egos.data(), egos.size()}, fc, &batched);
  ASSERT_EQ(rois.size(), egos.size());
  for (size_t e = 0; e < egos.size(); ++e) {
    Rng single(5);
    RoiSubgraph want = sampler.Sample(g, egos[e], fc, &single);
    ASSERT_EQ(rois[e].size(), want.size()) << "ego " << egos[e];
    for (int i = 0; i < want.size(); ++i) {
      EXPECT_EQ(rois[e].nodes[i].id, want.nodes[i].id);
      EXPECT_EQ(rois[e].nodes[i].depth, want.nodes[i].depth);
      EXPECT_EQ(rois[e].nodes[i].parent, want.nodes[i].parent);
    }
  }
}

TEST(RoiSamplerTest, RelevanceScoresDecreaseInSelectionOrder) {
  HeteroGraph g = MakeStarGraph(8, 8);
  RoiSamplerOptions opt;
  opt.k = 5;
  opt.num_hops = 1;
  RoiSampler sampler(opt);
  Rng rng(2);
  auto fc = sampler.FocalVector(g, {0, 1});
  RoiSubgraph roi = sampler.Sample(g, 0, fc, &rng);
  for (int i = 2; i < roi.size(); ++i) {
    EXPECT_GE(roi.nodes[i - 1].relevance, roi.nodes[i].relevance);
  }
}

TEST(RoiSamplerTest, TreeStructureAndDepths) {
  data::TaobaoGeneratorOptions dopt;
  dopt.num_users = 50;
  dopt.num_queries = 30;
  dopt.num_items = 100;
  dopt.num_sessions = 400;
  dopt.num_categories = 4;
  dopt.content_dim = 8;
  auto ds = GenerateTaobaoDataset(dopt);
  RoiSamplerOptions opt;
  opt.k = 4;
  opt.num_hops = 2;
  RoiSampler sampler(opt);
  Rng rng(3);
  auto fc = sampler.FocalVector(ds.graph, {0, 60});
  RoiSubgraph roi = sampler.Sample(ds.graph, 0, fc, &rng);
  ASSERT_GT(roi.size(), 1);
  EXPECT_EQ(roi.nodes[0].depth, 0);
  EXPECT_EQ(roi.nodes[0].parent, -1);
  for (int i = 1; i < roi.size(); ++i) {
    const auto& n = roi.nodes[i];
    EXPECT_GE(n.parent, 0);
    EXPECT_LT(n.parent, i);  // parents precede children (BFS order)
    EXPECT_EQ(n.depth, roi.nodes[n.parent].depth + 1);
    EXPECT_LE(n.depth, 2);
  }
  // children ranges consistent
  for (int p = 0; p < roi.size(); ++p) {
    for (int c = roi.children_begin[p]; c < roi.children_end[p]; ++c) {
      EXPECT_EQ(roi.nodes[c].parent, p);
    }
  }
}

TEST(RoiSamplerTest, RespectsKAndMaxNodes) {
  HeteroGraph g = MakeStarGraph(20, 20);
  RoiSamplerOptions opt;
  opt.k = 3;
  opt.num_hops = 1;
  RoiSampler sampler(opt);
  Rng rng(4);
  auto fc = sampler.FocalVector(g, {0, 1});
  EXPECT_EQ(sampler.Sample(g, 0, fc, &rng).size(), 4);

  opt.k = 100;
  opt.max_nodes = 10;
  RoiSampler capped(opt);
  EXPECT_LE(capped.Sample(g, 0, fc, &rng).size(), 10);
}

TEST(RoiSamplerTest, ExcludeParentPreventsBacktracking) {
  // Path graph: u0 -- q1 -- i2; sampling from q1 at hop 2 must not return u0.
  HeteroGraphBuilder b(2);
  b.AddNode(NodeType::kUser, {1.0f, 0.0f}, {0});
  b.AddNode(NodeType::kQuery, {1.0f, 0.0f}, {0, 0});
  b.AddNode(NodeType::kItem, {1.0f, 0.0f}, {0, 0, 0, 0, 0});
  ASSERT_TRUE(b.AddEdge(0, 1, RelationKind::kClick).ok());
  ASSERT_TRUE(b.AddEdge(1, 2, RelationKind::kClick).ok());
  HeteroGraph g = b.Build();
  RoiSamplerOptions opt;
  opt.k = 5;
  opt.num_hops = 2;
  RoiSampler sampler(opt);
  Rng rng(5);
  auto fc = sampler.FocalVector(g, {0, 1});
  RoiSubgraph roi = sampler.Sample(g, 0, fc, &rng);
  // hop1 = {q1}; hop2 children of q1 must be {i2}, not back to u0.
  for (int i = 1; i < roi.size(); ++i) {
    if (roi.nodes[i].depth == 2) {
      EXPECT_NE(roi.nodes[i].id, 0);
    }
  }
}

TEST(RoiSamplerTest, FocalSamplingIsDeterministic) {
  HeteroGraph g = MakeStarGraph(10, 10);
  RoiSamplerOptions opt;
  opt.k = 5;
  opt.num_hops = 1;
  RoiSampler sampler(opt);
  Rng r1(6), r2(7);  // different rngs: top-k selection must not depend on rng
  auto fc = sampler.FocalVector(g, {0, 1});
  auto roi1 = sampler.Sample(g, 0, fc, &r1);
  auto roi2 = sampler.Sample(g, 0, fc, &r2);
  ASSERT_EQ(roi1.size(), roi2.size());
  for (int i = 0; i < roi1.size(); ++i) {
    EXPECT_EQ(roi1.nodes[i].id, roi2.nodes[i].id);
  }
}

TEST(RoiSamplerTest, UniformSamplerDistinctChildren) {
  HeteroGraph g = MakeStarGraph(15, 15);
  RoiSamplerOptions opt;
  opt.k = 10;
  opt.num_hops = 1;
  opt.kind = SamplerKind::kUniform;
  RoiSampler sampler(opt);
  Rng rng(8);
  auto fc = sampler.FocalVector(g, {0, 1});
  RoiSubgraph roi = sampler.Sample(g, 0, fc, &rng);
  std::set<NodeId> ids;
  for (int i = 1; i < roi.size(); ++i) ids.insert(roi.nodes[i].id);
  EXPECT_EQ(static_cast<int>(ids.size()), roi.size() - 1);
}

TEST(RoiSamplerTest, WeightedEdgeSamplerRuns) {
  HeteroGraph g = MakeStarGraph(10, 10);
  RoiSamplerOptions opt;
  opt.k = 5;
  opt.num_hops = 1;
  opt.kind = SamplerKind::kWeightedEdge;
  RoiSampler sampler(opt);
  Rng rng(9);
  auto fc = sampler.FocalVector(g, {0, 1});
  RoiSubgraph roi = sampler.Sample(g, 0, fc, &rng);
  EXPECT_GT(roi.size(), 1);
  EXPECT_LE(roi.size(), 6);
}

TEST(RoiSamplerTest, FocalVectorSumsContents) {
  HeteroGraph g = MakeStarGraph(2, 2);
  RoiSampler sampler({});
  auto fc = sampler.FocalVector(g, {0, 1});
  EXPECT_FLOAT_EQ(fc[0], 2.0f);  // (1,0) + (1,0)
  EXPECT_FLOAT_EQ(fc[1], 0.0f);
}

// --- Model -----------------------------------------------------------------------

data::RetrievalDataset TinyDataset() {
  data::TaobaoGeneratorOptions opt;
  opt.num_users = 60;
  opt.num_queries = 40;
  opt.num_items = 120;
  opt.num_sessions = 500;
  opt.num_categories = 6;
  opt.content_dim = 12;
  opt.seed = 11;
  return GenerateTaobaoDataset(opt);
}

ZoomerConfig TinyConfig() {
  ZoomerConfig cfg;
  cfg.hidden_dim = 8;
  cfg.sampler.k = 4;
  cfg.sampler.num_hops = 2;
  cfg.seed = 2;
  return cfg;
}

TEST(ZoomerModelTest, VariantNames) {
  EXPECT_EQ(ZoomerConfig::Full().VariantName(), "Zoomer");
  EXPECT_EQ(ZoomerConfig::Gcn().VariantName(), "GCN");
  ZoomerConfig fe;
  fe.use_semantic_attention = false;
  EXPECT_EQ(fe.VariantName(), "Zoomer-FE");
  ZoomerConfig fs;
  fs.use_edge_attention = false;
  EXPECT_EQ(fs.VariantName(), "Zoomer-FS");
  ZoomerConfig es;
  es.use_feature_projection = false;
  EXPECT_EQ(es.VariantName(), "Zoomer-ES");
}

TEST(ZoomerModelTest, EmbeddingShapes) {
  auto ds = TinyDataset();
  ZoomerModel model(&ds.graph, TinyConfig());
  Rng rng(3);
  auto ex = ds.train.front();
  auto uq = model.UserQueryEmbedding(ex.user, ex.query, &rng);
  EXPECT_EQ(uq.rows(), 1);
  EXPECT_EQ(uq.cols(), 8);
  auto it = model.ItemEmbedding(ex.item);
  EXPECT_EQ(it.rows(), 1);
  EXPECT_EQ(it.cols(), 8);
  auto logit = model.ScoreLogit(ex, &rng);
  EXPECT_EQ(logit.size(), 1);
  EXPECT_FALSE(std::isnan(logit.item()));
}

TEST(ZoomerModelTest, LogitBoundedByScale) {
  auto ds = TinyDataset();
  ZoomerModel model(&ds.graph, TinyConfig());
  Rng rng(4);
  for (int i = 0; i < 10; ++i) {
    const float logit = model.ScoreLogit(ds.train[i], &rng).item();
    EXPECT_LE(std::abs(logit), model.logit_scale() + 1e-4f);
  }
}

TEST(ZoomerModelTest, AllVariantsForwardCleanly) {
  auto ds = TinyDataset();
  for (auto cfg_fn : {&ZoomerConfig::Full, &ZoomerConfig::Gcn}) {
    ZoomerConfig cfg = cfg_fn();
    cfg.hidden_dim = 8;
    cfg.sampler.k = 3;
    ZoomerModel model(&ds.graph, cfg);
    Rng rng(5);
    EXPECT_FALSE(std::isnan(model.ScoreLogit(ds.train[0], &rng).item()));
  }
  for (int disable = 0; disable < 3; ++disable) {
    ZoomerConfig cfg = TinyConfig();
    if (disable == 0) cfg.use_feature_projection = false;
    if (disable == 1) cfg.use_edge_attention = false;
    if (disable == 2) cfg.use_semantic_attention = false;
    ZoomerModel model(&ds.graph, cfg);
    Rng rng(6);
    EXPECT_FALSE(std::isnan(model.ScoreLogit(ds.train[1], &rng).item()));
  }
}

TEST(ZoomerModelTest, ExplainEdgeWeightsNormalizedPerType) {
  auto ds = TinyDataset();
  ZoomerModel model(&ds.graph, TinyConfig());
  Rng rng(7);
  const auto& ex = ds.train.front();
  auto records = model.ExplainEdgeWeights(ex.query, ex.user, ex.query, &rng);
  ASSERT_FALSE(records.empty());
  // Weights of each type group sum to 1.
  double sums[graph::kNumNodeTypes] = {0, 0, 0};
  int counts[graph::kNumNodeTypes] = {0, 0, 0};
  for (const auto& r : records) {
    sums[static_cast<int>(r.type)] += r.weight;
    counts[static_cast<int>(r.type)] += 1;
    EXPECT_GE(r.weight, 0.0f);
    EXPECT_LE(r.weight, 1.0f);
  }
  for (int t = 0; t < graph::kNumNodeTypes; ++t) {
    if (counts[t] > 0) {
      EXPECT_NEAR(sums[t], 1.0, 1e-4);
    }
  }
}

TEST(ZoomerModelTest, DifferentFocalsGiveDifferentEmbeddings) {
  // The core ROI claim: one ego node, multiple focal-dependent embeddings.
  auto ds = TinyDataset();
  ZoomerModel model(&ds.graph, TinyConfig());
  Rng rng(8);
  // Find a query that appears with two different users.
  graph::NodeId q = ds.train.front().query;
  graph::NodeId u1 = ds.train.front().user, u2 = -1;
  for (const auto& ex : ds.train) {
    if (ex.query == q && ex.user != u1) {
      u2 = ex.user;
      break;
    }
  }
  ASSERT_NE(u2, -1);
  auto e1 = model.EgoEmbedding(q, u1, q, &rng);
  auto e2 = model.EgoEmbedding(q, u2, q, &rng);
  float diff = 0.0f;
  for (int64_t i = 0; i < e1.cols(); ++i) {
    diff += std::abs(e1.at(0, i) - e2.at(0, i));
  }
  EXPECT_GT(diff, 1e-4f);
}

TEST(ZoomerTrainerTest, TrainingImprovesAucAboveChance) {
  auto ds = TinyDataset();
  ZoomerModel model(&ds.graph, TinyConfig());
  TrainOptions topt;
  topt.epochs = 5;
  topt.batch_size = 64;
  topt.learning_rate = 0.01f;
  topt.max_examples_per_epoch = 1500;
  ZoomerTrainer trainer(&model, topt);
  auto result = trainer.Train(ds);
  EXPECT_EQ(result.epochs.size(), 5u);
  EXPECT_GT(result.examples_seen, 0);
  auto eval = trainer.Evaluate(ds, 800);
  EXPECT_GT(eval.auc, 0.60) << "Zoomer failed to learn planted structure";
  EXPECT_GE(eval.mae, 0.0);
  EXPECT_GE(eval.rmse, eval.mae);
}

TEST(ZoomerTrainerTest, LossDecreasesOverEpochs) {
  auto ds = TinyDataset();
  ZoomerModel model(&ds.graph, TinyConfig());
  TrainOptions topt;
  topt.epochs = 3;
  topt.batch_size = 64;
  topt.max_examples_per_epoch = 800;
  ZoomerTrainer trainer(&model, topt);
  auto result = trainer.Train(ds);
  EXPECT_LT(result.epochs.back().mean_loss, result.epochs.front().mean_loss);
}

TEST(ZoomerTrainerTest, HitRateMonotoneInK) {
  auto ds = TinyDataset();
  ZoomerModel model(&ds.graph, TinyConfig());
  TrainOptions topt;
  topt.epochs = 1;
  topt.max_examples_per_epoch = 600;
  ZoomerTrainer trainer(&model, topt);
  trainer.Train(ds);
  EvalResult eval;
  trainer.EvaluateHitRate(ds, &eval, /*max_positives=*/60);
  EXPECT_LE(eval.hitrate_at[0], eval.hitrate_at[1]);
  EXPECT_LE(eval.hitrate_at[1], eval.hitrate_at[2]);
  EXPECT_GT(eval.hitrate_at[2], 0.0);  // pool of 120 items, K=300 covers all
}

TEST(ZoomerTrainerTest, TrainUntilAucStops) {
  auto ds = TinyDataset();
  ZoomerModel model(&ds.graph, TinyConfig());
  TrainOptions topt;
  topt.max_examples_per_epoch = 600;
  ZoomerTrainer trainer(&model, topt);
  const double secs = trainer.TrainUntilAuc(ds, /*target_auc=*/0.55,
                                            /*max_epochs=*/4);
  EXPECT_GT(secs, 0.0);
}

}  // namespace
}  // namespace core
}  // namespace zoomer
