// Streaming freshness benchmark: quantifies the new online ingestion path
// (src/streaming/) against the static-CSR serving baseline. Reports
//   1. ingest throughput (edge events/s through the sharded pipeline),
//   2. read-path overhead of the dynamic delta overlay vs. the static CSR —
//      weighted sampling on untouched and delta-carrying nodes, and the
//      neighbor-cache hit path (acceptance: < 2x on cached reads),
//   3. update-visibility latency: time from offering a live session until
//      the clicked item appears in the (invalidated, asynchronously
//      re-filled) neighbor cache of its query,
//   4. an end-to-end OnlineServer check that an ingested click surfaces in
//      Handle() results,
//   5. training freshness: a Zoomer trainer attached to the ingest pipeline
//      through the dynamic GraphView — view re-pins per minibatch, and ROI
//      coverage of freshly arrived edges vs the stale static CSR,
//   6. compaction cost: folding deltas back into the CSR and truncating the
//      delta log,
//   7. maintenance: delta-heavy sampling with/without the hot-node overlay
//      cache (acceptance: cached within 2x of static-CSR sampling, vs ~6x
//      uncached), and overlay growth over a live ingest with the janitor's
//      scheduled compaction on vs off, and
//   8. cold-start node ingestion: brand-new item nodes minted online
//      through OfferNewNode (id-space growth), their arrival rate, and
//      ROI-sampler reachability through the grown dynamic view, and
//   9. incremental compaction: the segmented base's fold pause at dirty
//      fractions 1/8..1 of the segments over identical uniformly-dirty
//      workloads (acceptance: folding <= 1/8 of the segments costs <= ~25%
//      of a full Compact()), and
//  10. observability: the log-scale Histogram's record cost (acceptance:
//      <= ~50 ns/record), a served load whose latency percentiles come from
//      the registry-backed histogram, and the full registry snapshot
//      flattened into this artifact under "obs." keys.
//
// Flags: --smoke shrinks every workload for a CI smoke run; --json PATH
// writes the headline metrics as a flat JSON object so the workflow can
// archive a BENCH_*.json artifact per commit and the perf trajectory
// accumulates.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/timer.h"
#include "core/roi_sampler.h"
#include "core/trainer.h"
#include "core/zoomer_model.h"
#include "data/session_stream.h"
#include "data/taobao_generator.h"
#include "maintenance/compaction_policy.h"
#include "maintenance/hot_node_cache.h"
#include "maintenance/maintenance_scheduler.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "serving/neighbor_cache.h"
#include "serving/online_server.h"
#include "streaming/dynamic_graph_view.h"
#include "streaming/dynamic_hetero_graph.h"
#include "streaming/graph_delta_log.h"
#include "streaming/ingest_pipeline.h"
#include "streaming/training_freshness.h"

namespace zoomer {
namespace bench {
namespace {

using graph::NodeId;
using graph::NodeType;

constexpr int kShards = 4;

std::vector<NodeId> NodesOfTypeWithEdges(const graph::HeteroGraph& g,
                                         NodeType t, size_t limit,
                                         Rng* rng) {
  std::vector<NodeId> all;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.node_type(v) == t && g.degree(v) > 0) all.push_back(v);
  }
  rng->Shuffle(&all);
  if (all.size() > limit) all.resize(limit);
  return all;
}

/// Works over any CSR-shaped graph exposing SampleNeighbor (the offline
/// HeteroGraph and the dynamic graph's SegmentedCsr base).
template <typename Csr>
double TimeStaticSampling(const Csr& g, const std::vector<NodeId>& nodes,
                          int draws, uint64_t seed) {
  Rng rng(seed);
  WallTimer timer;
  int64_t sink = 0;
  for (int i = 0; i < draws; ++i) {
    sink += g.SampleNeighbor(nodes[i % nodes.size()], &rng);
  }
  const double micros = timer.ElapsedMicros();
  if (sink == 42) std::printf(" ");  // defeat dead-code elimination
  return micros / draws;
}

double TimeDynamicSampling(const streaming::DynamicHeteroGraph& dyn,
                           const std::vector<NodeId>& nodes, int draws,
                           uint64_t seed) {
  Rng rng(seed);
  auto snap = dyn.MakeSnapshot();
  WallTimer timer;
  int64_t sink = 0;
  for (int i = 0; i < draws; ++i) {
    sink += snap.SampleNeighbor(nodes[i % nodes.size()], &rng);
  }
  const double micros = timer.ElapsedMicros();
  if (sink == 42) std::printf(" ");
  return micros / draws;
}

double TimeCacheHits(serving::NeighborCache* cache,
                     const std::vector<NodeId>& nodes, int reads) {
  cache->WarmAll(nodes);
  std::vector<NodeId> out;
  WallTimer timer;
  for (int i = 0; i < reads; ++i) {
    cache->Get(nodes[i % nodes.size()], &out);
  }
  return timer.ElapsedMicros() / reads;
}

struct BenchConfig {
  bool smoke = false;          // tiny iteration counts for the CI smoke run
  std::string json_path;       // "" = no JSON artifact
};

/// Flat (name, value) metric sink serialized as one JSON object; names use
/// unit suffixes so the artifact is self-describing.
class MetricSink {
 public:
  void Record(const std::string& name, double value) {
    metrics_.emplace_back(name, value);
  }
  bool WriteJson(const std::string& path, bool smoke) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\n  \"bench\": \"streaming_freshness\",\n");
    std::fprintf(f, "  \"smoke\": %s", smoke ? "true" : "false");
    for (const auto& [name, value] : metrics_) {
      std::fprintf(f, ",\n  \"%s\": %.6g", name.c_str(), value);
    }
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    return true;
  }

 private:
  std::vector<std::pair<std::string, double>> metrics_;
};

}  // namespace

int Run(const BenchConfig& cfg) {
  std::printf("=== Streaming freshness benchmark%s ===\n",
              cfg.smoke ? " (smoke)" : "");
  MetricSink sink;
  data::TaobaoGeneratorOptions opt;
  opt.num_users = cfg.smoke ? 300 : 1500;
  opt.num_queries = cfg.smoke ? 200 : 800;
  opt.num_items = cfg.smoke ? 600 : 3000;
  opt.num_sessions = cfg.smoke ? 2400 : 12000;
  opt.num_categories = 16;
  opt.content_dim = 16;
  opt.seed = 42;
  auto ds = data::GenerateTaobaoDataset(opt);
  std::printf("base graph: %s\n", ds.graph.DebugString().c_str());

  Rng rng(7);
  auto users = NodesOfTypeWithEdges(ds.graph, NodeType::kUser, 400, &rng);
  auto queries = NodesOfTypeWithEdges(ds.graph, NodeType::kQuery, 400, &rng);

  // ---- 1. Ingest throughput -----------------------------------------------
  streaming::GraphDeltaLog log(kShards);
  streaming::DynamicHeteroGraph dyn(&ds.graph);
  streaming::IngestOptions iopt;
  iopt.num_shards = kShards;
  streaming::IngestPipeline pipeline(&log, &dyn, iopt);
  pipeline.Start();

  data::LiveSessionOptions lopt;
  lopt.num_sessions = cfg.smoke ? 800 : 8000;
  lopt.start_timestamp = opt.time_horizon_seconds + 1;
  lopt.seed = 77;
  auto live = data::SynthesizeLiveSessions(ds, lopt);

  // Overhead measured on untouched nodes before any delta exists.
  const int kDraws = cfg.smoke ? 20000 : 200000;
  const double static_clean =
      TimeStaticSampling(ds.graph, queries, kDraws, 11);
  const double dyn_clean = TimeDynamicSampling(dyn, queries, kDraws, 11);

  WallTimer ingest_timer;
  pipeline.OfferLog(live);
  pipeline.Flush();
  const double ingest_seconds = ingest_timer.ElapsedSeconds();
  auto istats = pipeline.Stats();
  std::printf(
      "\n[ingest] %lld sessions -> %lld events in %lld batches over %d "
      "shards: %.0f events/s (%.0f sessions/s)\n",
      static_cast<long long>(istats.sessions),
      static_cast<long long>(istats.events_applied),
      static_cast<long long>(istats.batches), kShards,
      istats.events_applied / ingest_seconds,
      istats.sessions / ingest_seconds);
  sink.Record("ingest_events_per_sec", istats.events_applied / ingest_seconds);
  sink.Record("ingest_sessions_per_sec", istats.sessions / ingest_seconds);
  std::printf("[ingest] delta overlay: %lld half-edges on %lld nodes "
              "(%.1f KiB), log %.1f KiB, epoch %llu\n",
              static_cast<long long>(dyn.num_delta_entries()),
              static_cast<long long>(dyn.num_delta_nodes()),
              dyn.OverlayMemoryBytes() / 1024.0, log.MemoryBytes() / 1024.0,
              static_cast<unsigned long long>(dyn.epoch()));

  // ---- 2. Read-path overhead ----------------------------------------------
  std::vector<NodeId> delta_queries;
  {
    auto snap = dyn.MakeSnapshot();
    for (NodeId q : queries) {
      if (snap.HasDelta(q)) delta_queries.push_back(q);
    }
  }
  if (delta_queries.empty()) delta_queries = queries;
  const double static_delta =
      TimeStaticSampling(ds.graph, delta_queries, kDraws, 13);
  const double dyn_delta =
      TimeDynamicSampling(dyn, delta_queries, kDraws, 13);

  serving::NeighborCacheOptions copt;
  serving::NeighborCache static_cache(&ds.graph, copt);
  serving::NeighborCache dynamic_cache(&ds.graph, copt);
  dynamic_cache.AttachDynamicGraph(&dyn);
  const int kReads = cfg.smoke ? 20000 : 200000;
  const double hit_static = TimeCacheHits(&static_cache, queries, kReads);
  const double hit_dynamic = TimeCacheHits(&dynamic_cache, queries, kReads);
  sink.Record("sample_untouched_ratio", dyn_clean / static_clean);
  sink.Record("sample_delta_ratio", dyn_delta / static_delta);
  sink.Record("cache_hit_ratio_vs_static", hit_dynamic / hit_static);

  std::printf("\n[read-path overhead vs static CSR, per-op micros]\n");
  std::printf("  %-34s %10s %10s %8s\n", "path", "static", "dynamic", "ratio");
  std::printf("  %-34s %10.4f %10.4f %7.2fx\n",
              "weighted sample, untouched nodes", static_clean, dyn_clean,
              dyn_clean / static_clean);
  std::printf("  %-34s %10.4f %10.4f %7.2fx\n",
              "weighted sample, delta nodes", static_delta, dyn_delta,
              dyn_delta / static_delta);
  std::printf("  %-34s %10.4f %10.4f %7.2fx  %s\n",
              "neighbor-cache hit", hit_static, hit_dynamic,
              hit_dynamic / hit_static,
              hit_dynamic / hit_static < 2.0 ? "(< 2x OK)" : "(>= 2x!)");

  // ---- 2b. Batched sampling over the delta overlay ------------------------
  // SampleManyNeighbors pins the epoch snapshot once and amortizes the
  // per-node shard lock + visible-prefix resolution over all k draws; the
  // single-draw loop pays them per draw. Same Rng schedule, bit-identical
  // outputs (checked below).
  {
    const int kBatchK = 16;
    const int batch_rounds = cfg.smoke ? 50 : 500;
    auto snap = dyn.MakeSnapshot();
    Rng r_single(29), r_batched(29);
    std::vector<NodeId> batched_out;
    WallTimer t_single;
    for (int r = 0; r < batch_rounds; ++r) {
      int64_t s = 0;
      for (NodeId q : delta_queries) {
        for (int j = 0; j < kBatchK; ++j) s += snap.SampleNeighbor(q, &r_single);
      }
      if (s == 42) std::printf(" ");
    }
    const double single_us = t_single.ElapsedMicros();
    WallTimer t_batched;
    for (int r = 0; r < batch_rounds; ++r) {
      snap.SampleManyNeighbors({delta_queries.data(), delta_queries.size()},
                               kBatchK, &r_batched, &batched_out);
    }
    const double batched_us = t_batched.ElapsedMicros();
    // Parity spot-check on a fresh pair of streams.
    Rng p1(31), p2(31);
    std::vector<NodeId> pb;
    snap.SampleManyNeighbors({delta_queries.data(), delta_queries.size()},
                             kBatchK, &p2, &pb);
    bool batch_parity = true;
    for (size_t i = 0; i < delta_queries.size(); ++i) {
      for (int j = 0; j < kBatchK; ++j) {
        batch_parity &=
            pb[i * kBatchK + j] == snap.SampleNeighbor(delta_queries[i], &p1);
      }
    }
    const double total_draws =
        static_cast<double>(batch_rounds) * delta_queries.size() * kBatchK;
    std::printf("\n[batched sampling, %zu delta nodes x %d draws]\n",
                delta_queries.size(), kBatchK);
    std::printf("  %-34s %10.4f us/draw\n", "per-draw SampleNeighbor",
                single_us / total_draws);
    std::printf("  %-34s %10.4f us/draw  %6.2fx  (parity %s)\n",
                "SampleManyNeighbors", batched_us / total_draws,
                single_us / batched_us, batch_parity ? "OK" : "MISMATCH");
    sink.Record("dyn_batched_vs_single_speedup", single_us / batched_us);
    sink.Record("dyn_batched_parity", batch_parity ? 1.0 : 0.0);
  }

  // ---- 3. Update-visibility latency ---------------------------------------
  serving::NeighborCacheOptions vopt;
  vopt.k = 30;
  serving::NeighborCache cache(&ds.graph, vopt);
  cache.AttachDynamicGraph(&dyn);
  // The visibility pipeline shares the delta log so epochs stay globally
  // monotonic across pipelines feeding one dynamic view.
  streaming::IngestPipeline vpipe(&log, &dyn, iopt);
  vpipe.AddUpdateListener([&cache](uint64_t, const std::vector<NodeId>& nodes) {
    for (NodeId n : nodes) cache.Invalidate(n);
  });
  vpipe.Start();
  cache.WarmAll(queries);

  LatencyStats visibility;
  int timeouts = 0;
  const int kRounds = cfg.smoke ? 10 : 60;
  for (int r = 0; r < kRounds; ++r) {
    const NodeId user = users[rng.Uniform(users.size())];
    const NodeId query = queries[rng.Uniform(queries.size())];
    const NodeId item = ds.all_items[rng.Uniform(ds.all_items.size())];
    graph::SessionRecord session;
    session.user = user;
    session.query = query;
    // Three clicks accumulate weight 3 so the fresh edge competes into the
    // top-k against the offline neighborhood.
    session.clicks = {item, item, item};
    WallTimer timer;
    vpipe.Offer(session);
    bool seen = false;
    std::vector<NodeId> out;
    while (timer.ElapsedMillis() < 1000.0) {
      if (cache.Get(query, &out) &&
          std::find(out.begin(), out.end(), item) != out.end()) {
        seen = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    if (seen) {
      visibility.Add(timer.ElapsedMillis());
    } else {
      ++timeouts;  // heavy query: weight 3 did not crack its top-30
    }
  }
  std::printf("\n[update visibility] offer -> cached@query: mean %.2f ms, "
              "p50 %.2f ms, p99 %.2f ms (%zu/%d visible, %d top-k misses)\n",
              visibility.Mean(), visibility.Percentile(50),
              visibility.Percentile(99), visibility.count(), kRounds,
              timeouts);
  sink.Record("visibility_p50_ms", visibility.Percentile(50));
  sink.Record("visibility_p99_ms", visibility.Percentile(99));
  vpipe.Stop();

  // ---- 4. End-to-end OnlineServer freshness -------------------------------
  {
    const int dim = 16;
    serving::OnlineServerOptions sopt;
    sopt.embedding_dim = dim;
    sopt.top_n = 10;
    Rng erng(55);
    std::vector<float> node_emb(ds.graph.num_nodes() * dim);
    for (auto& x : node_emb) x = static_cast<float>(erng.Normal()) * 0.3f;
    std::vector<float> item_emb(ds.all_items.size() * dim);
    for (size_t i = 0; i < ds.all_items.size(); ++i) {
      std::copy(node_emb.begin() + ds.all_items[i] * dim,
                node_emb.begin() + (ds.all_items[i] + 1) * dim,
                item_emb.begin() + static_cast<int64_t>(i) * dim);
    }
    serving::OnlineServer server(&ds.graph, sopt, std::move(node_emb),
                                 ds.all_items, item_emb);
    server.AttachDynamicGraph(&dyn);
    streaming::IngestPipeline spipe(&log, &dyn, iopt);
    spipe.AddUpdateListener(
        [&server](uint64_t epoch, const std::vector<NodeId>& nodes) {
          server.OnGraphUpdate(epoch, nodes);
        });
    spipe.Start();
    const NodeId user = users[0], query = queries[0];
    server.WarmCache({user, query});
    auto before = server.Handle({user, query});
    graph::SessionRecord session;
    session.user = user;
    session.query = query;
    session.clicks = {ds.all_items[3], ds.all_items[3], ds.all_items[3]};
    spipe.Offer(session);
    spipe.Flush();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));  // re-fill
    auto after = server.Handle({user, query});
    std::printf("\n[end-to-end] Handle latency before/after ingest: "
                "%.3f / %.3f ms; cache invalidations: %lld\n",
                before.latency_ms, after.latency_ms,
                static_cast<long long>(server.cache().Stats().invalidations));
    spipe.Stop();
  }

  // ---- 5. Training freshness ----------------------------------------------
  {
    core::ZoomerConfig mcfg;
    mcfg.hidden_dim = 8;
    mcfg.sampler.k = 4;
    mcfg.sampler.num_hops = 1;
    core::ZoomerModel model(&ds.graph, mcfg);
    core::TrainOptions topt;
    topt.epochs = 1;
    topt.batch_size = 32;
    topt.max_examples_per_epoch = cfg.smoke ? 64 : 256;
    core::ZoomerTrainer trainer(&model, topt);
    streaming::DynamicGraphView view(&dyn);
    streaming::IngestPipeline tpipe(&log, &dyn, iopt);
    streaming::AttachTrainingFreshness(&model, &trainer, &view, &tpipe);
    tpipe.Start();

    std::atomic<bool> done{false};
    std::thread feeder([&] {
      data::LiveSessionOptions flopt;
      flopt.num_sessions = cfg.smoke ? 300 : 2000;
      flopt.start_timestamp = opt.time_horizon_seconds + 2;
      flopt.seed = 99;
      auto fresh = data::SynthesizeLiveSessions(ds, flopt);
      size_t i = 0;
      while (!done.load() && i < fresh.size()) tpipe.Offer(fresh[i++]);
    });
    auto tres = trainer.Train(ds);
    done.store(true);
    feeder.join();
    tpipe.Flush();
    std::printf(
        "\n[training freshness] 1 epoch (%lld examples) in %.2f s, "
        "loss %.4f; view re-pinned %lld times, final graph epoch %llu\n",
        static_cast<long long>(tres.examples_seen), tres.total_seconds,
        tres.epochs.empty() ? 0.0 : tres.epochs.back().mean_loss,
        static_cast<long long>(tres.graph_refreshes),
        static_cast<unsigned long long>(tres.graph_epoch));

    // ROI coverage of fresh edges: fraction of delta-touched queries whose
    // focal-top-k ROI (through the refreshed view) contains a neighbor the
    // static CSR has never seen. The static trainer scores 0 by definition.
    view.Refresh();
    core::RoiSampler roi_sampler(mcfg.sampler);
    Rng crng(123);
    int covered = 0, considered = 0;
    for (NodeId q : queries) {
      if (considered >= 100) break;
      if (!view.snapshot().HasDelta(q)) continue;
      ++considered;
      auto fc = roi_sampler.FocalVector(view, {users[0], q});
      auto roi = roi_sampler.Sample(view, q, fc, &crng);
      auto base_ids = ds.graph.neighbor_ids(q);
      bool has_fresh = false;
      for (const auto& n : roi.nodes) {
        if (n.depth != 1) continue;
        has_fresh |= std::find(base_ids.begin(), base_ids.end(), n.id) ==
                     base_ids.end();
      }
      covered += has_fresh;
    }
    std::printf(
        "[training freshness] ROI fresh-edge coverage: %d/%d delta-touched "
        "queries sample a neighbor absent from the offline CSR (static "
        "sampler: 0)\n",
        covered, considered);
    tpipe.Stop();
  }

  // ---- 6. Compaction -------------------------------------------------------
  const int64_t pre_entries = dyn.num_delta_entries();
  WallTimer compact_timer;
  auto folded = dyn.Compact();
  const double compact_ms = compact_timer.ElapsedMillis();
  if (!folded.ok()) {
    std::printf("compact failed: %s\n", folded.status().ToString().c_str());
    return 1;
  }
  log.Truncate(folded.value());
  const double dyn_after_compact =
      TimeDynamicSampling(dyn, delta_queries, kDraws, 13);
  std::printf("\n[compact] folded %lld half-edges through epoch %llu in "
              "%.1f ms; new base: %s\n",
              static_cast<long long>(pre_entries),
              static_cast<unsigned long long>(folded.value()), compact_ms,
              dyn.base()->DebugString().c_str());
  std::printf("[compact] delta-node sample cost after compaction: %.4f "
              "micros/op (%.2fx static)\n",
              dyn_after_compact, dyn_after_compact / static_delta);
  sink.Record("compact_ms", compact_ms);

  // ---- 7. Maintenance: hot-node cache + scheduled compaction ---------------
  {
    // 7a. Concentrate a heavy delta burst on a few query nodes so their
    // overlays hold hundreds of entries — the regime where the dynamic read
    // path ran ~6x static, now reclaimed by the materialized merge + alias
    // table of the hot-node overlay cache.
    std::vector<NodeId> hot(queries.begin(),
                            queries.begin() + std::min<size_t>(
                                                  cfg.smoke ? 16 : 64,
                                                  queries.size()));
    Rng hrng(211);
    const int deltas_per_hot_node = cfg.smoke ? 128 : 512;
    std::vector<streaming::EdgeEvent> burst;
    for (NodeId q : hot) {
      for (int i = 0; i < deltas_per_hot_node; ++i) {
        burst.push_back({q,
                         ds.all_items[hrng.Uniform(ds.all_items.size())],
                         graph::RelationKind::kClick, 1.0f, 0});
      }
      streaming::DeltaBatch batch;
      batch.events = std::move(burst);
      batch.epoch = log.Append(0, batch.events);
      auto st = dyn.ApplyBatch(batch);
      if (!st.ok()) {
        std::printf("burst apply failed: %s\n", st.ToString().c_str());
        return 1;
      }
      burst.clear();
    }

    const double static_hot =
        TimeStaticSampling(*dyn.base(), hot, kDraws, 19);
    const double hot_uncached = TimeDynamicSampling(dyn, hot, kDraws, 19);

    maintenance::HotNodeCacheOptions hopt;
    hopt.min_delta_entries = 64;
    maintenance::HotNodeOverlayCache hot_cache(ds.graph.num_nodes(), hopt);
    maintenance::HotNodeRefreshPolicy refresh(&dyn, &hot_cache);
    WallTimer refresh_timer;
    auto refreshed = refresh.RunOnce();
    const double refresh_ms = refresh_timer.ElapsedMillis();
    if (!refreshed.ok()) {
      std::printf("hot-node refresh failed: %s\n",
                  refreshed.status().ToString().c_str());
      return 1;
    }
    const double hot_cached = TimeDynamicSampling(dyn, hot, kDraws, 19);

    auto cstats = hot_cache.Stats();
    sink.Record("hot_uncached_ratio", hot_uncached / static_hot);
    sink.Record("hot_cached_ratio", hot_cached / static_hot);
    std::printf("\n[maintenance] delta-heavy sampling, %zu nodes x ~%d "
                "deltas (per-op micros)\n",
                hot.size(), deltas_per_hot_node);
    std::printf("  %-34s %10.4f\n", "static CSR", static_hot);
    std::printf("  %-34s %10.4f %7.2fx\n", "dynamic, no hot-node cache",
                hot_uncached, hot_uncached / static_hot);
    std::printf("  %-34s %10.4f %7.2fx  %s\n", "dynamic, hot-node cache",
                hot_cached, hot_cached / static_hot,
                hot_cached / static_hot < 2.0 ? "(< 2x OK)" : "(>= 2x!)");
    std::printf("  cache: %zu entries materialized in %.1f ms, %lld hits / "
                "%lld misses\n",
                cstats.entries, refresh_ms,
                static_cast<long long>(cstats.hits),
                static_cast<long long>(cstats.misses));

    // 7b. Overlay footprint over a live ingest with the janitor's scheduled
    // compaction on vs off: the same session stream, one run left to grow
    // and one compacted in the background whenever the overlay crosses the
    // entry threshold.
    auto timed_ingest = [&](bool janitor) {
      struct Result {
        size_t peak_bytes = 0;
        size_t final_bytes = 0;
        int64_t compactions = 0;
      } result;
      streaming::GraphDeltaLog jlog(kShards);
      streaming::DynamicHeteroGraph jdyn(&ds.graph);
      streaming::IngestPipeline jpipe(&jlog, &jdyn, iopt);
      maintenance::MaintenanceScheduler scheduler;
      if (janitor) {
        maintenance::CompactionPolicyOptions jopt;
        jopt.max_delta_entries = 10000;
        maintenance::PolicySchedule cadence;
        cadence.period_ms = 5;
        scheduler.AddPolicy(
            std::make_unique<maintenance::CompactionPolicy>(
                &jdyn, &jlog, nullptr, jopt),
            cadence);
        scheduler.Start();
      }
      jpipe.Start();
      data::LiveSessionOptions jlopt;
      jlopt.num_sessions = cfg.smoke ? 600 : 6000;
      jlopt.start_timestamp = opt.time_horizon_seconds + 3;
      jlopt.seed = 311;
      auto sessions = data::SynthesizeLiveSessions(ds, jlopt);
      size_t offered = 0;
      for (const auto& session : sessions) {
        jpipe.Offer(session);
        if (++offered % 200 == 0) {
          result.peak_bytes =
              std::max(result.peak_bytes, jdyn.OverlayMemoryBytes());
          // Pace the offered stream so the run spans several janitor
          // periods (and the timer thread gets scheduled on small hosts);
          // both runs pace identically, so footprints stay comparable.
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
      }
      jpipe.Flush();
      result.peak_bytes =
          std::max(result.peak_bytes, jdyn.OverlayMemoryBytes());
      if (janitor) {
        // Let the janitor observe the drained overlay once more before the
        // scheduler stops (the steady state of a long-running server).
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
      }
      scheduler.Stop();
      result.final_bytes = jdyn.OverlayMemoryBytes();
      if (janitor) result.compactions = scheduler.Stats()[0].actions;
      jpipe.Stop();
      return result;
    };
    auto grown = timed_ingest(/*janitor=*/false);
    auto swept = timed_ingest(/*janitor=*/true);
    sink.Record("overlay_peak_kib_janitor_off", grown.peak_bytes / 1024.0);
    sink.Record("overlay_peak_kib_janitor_on", swept.peak_bytes / 1024.0);
    std::printf("\n[maintenance] overlay bytes over the live-session sweep "
                "(scheduled compaction off vs on)\n");
    std::printf("  %-26s peak %8.1f KiB  final %8.1f KiB\n", "janitor off",
                grown.peak_bytes / 1024.0, grown.final_bytes / 1024.0);
    std::printf("  %-26s peak %8.1f KiB  final %8.1f KiB  "
                "(%lld background compactions)\n",
                "janitor on", swept.peak_bytes / 1024.0,
                swept.final_bytes / 1024.0,
                static_cast<long long>(swept.compactions));
  }

  // ---- 8. Cold-start node ingestion (id-space growth) ----------------------
  {
    data::ColdStartOptions aopt;
    aopt.num_new_items = cfg.smoke ? 50 : 500;
    aopt.start_timestamp = opt.time_horizon_seconds + 4;
    aopt.seed = 401;
    auto arrivals = data::SynthesizeColdStartArrivals(ds, aopt);
    const int64_t nodes_before = dyn.MakeSnapshot().num_nodes();
    WallTimer mint_timer;
    std::vector<NodeId> minted;
    minted.reserve(arrivals.size());
    for (auto& arrival : arrivals) {
      auto id = pipeline.OfferNewNode(std::move(arrival.item),
                                      std::move(arrival.edges));
      if (!id.ok()) {
        std::printf("cold-start offer failed: %s\n",
                    id.status().ToString().c_str());
        return 1;
      }
      minted.push_back(id.value());
    }
    const double mint_seconds = mint_timer.ElapsedSeconds();
    auto snap = dyn.MakeSnapshot();

    // Reachability: every minted item resolves through the grown view and
    // its introducing edges expand into a non-trivial ROI.
    streaming::DynamicGraphView grown_view(&dyn);
    core::RoiSamplerOptions ropt;
    ropt.k = 4;
    ropt.num_hops = 2;
    core::RoiSampler roi(ropt);
    Rng nrng(77);
    int reachable = 0;
    for (NodeId id : minted) {
      auto fc = roi.FocalVector(grown_view, {users[0], id});
      reachable += roi.Sample(grown_view, id, fc, &nrng).size() > 1;
    }
    std::printf(
        "\n[node ingest] %zu cold-start items minted in %.3f s (%.0f "
        "nodes/s); id-space %lld -> %lld; %d/%zu reachable via 2-hop ROI\n",
        minted.size(), mint_seconds, minted.size() / mint_seconds,
        static_cast<long long>(nodes_before),
        static_cast<long long>(snap.num_nodes()), reachable, minted.size());
    sink.Record("node_ingest_per_sec", minted.size() / mint_seconds);
    sink.Record("node_ingest_roi_reachable_frac",
                reachable / static_cast<double>(minted.size()));

    // The fold appends them into the next base generation renumber-free.
    WallTimer fold_timer;
    auto refolded = dyn.Compact();
    if (!refolded.ok()) {
      std::printf("post-mint compact failed: %s\n",
                  refolded.status().ToString().c_str());
      return 1;
    }
    log.Truncate(refolded.value());
    std::printf("[node ingest] fold with %zu overlay nodes: %.1f ms; new "
                "base: %s\n",
                minted.size(), fold_timer.ElapsedMillis(),
                dyn.base()->DebugString().c_str());
    sink.Record("node_ingest_fold_ms", fold_timer.ElapsedMillis());
  }

  // ---- 9. Incremental compaction: fold pause vs dirty fraction -------------
  {
    // Identical uniformly-dirty workloads, folded at different dirty
    // fractions: every segment receives the same count of segment-local
    // delta edges, then one run folds all segments (the old full Compact
    // pause) and the others fold only the first 1/2, 1/4, 1/8 of them.
    // Acceptance (ROADMAP/ISSUE): folding <= 1/8 of the segments costs
    // <= ~25% of the full fold on this workload.
    const int edges_per_segment = cfg.smoke ? 64 : 512;
    auto prepare = [&](streaming::GraphDeltaLog* dlog) {
      auto d = std::make_unique<streaming::DynamicHeteroGraph>(&ds.graph);
      const int64_t span = d->segment_span();
      const int64_t nsegs = d->base()->num_segments();
      Rng brng(907);
      for (int64_t s = 0; s < nsegs; ++s) {
        const NodeId lo = static_cast<NodeId>(s * span);
        const NodeId hi =
            std::min<NodeId>(lo + span, ds.graph.num_nodes());
        if (hi - lo < 2) continue;
        std::vector<streaming::EdgeEvent> events;
        events.reserve(edges_per_segment);
        for (int i = 0; i < edges_per_segment; ++i) {
          const NodeId a = lo + static_cast<NodeId>(brng.Uniform(hi - lo));
          NodeId b = lo + static_cast<NodeId>(brng.Uniform(hi - lo));
          if (a == b) b = a == lo ? a + 1 : lo;
          events.push_back({a, b, graph::RelationKind::kClick, 1.0f, 0});
        }
        streaming::DeltaBatch batch;
        batch.events = std::move(events);
        batch.epoch = dlog->Append(0, batch.events);
        auto st = d->ApplyBatch(batch);
        if (!st.ok()) {
          std::printf("incremental-bench apply failed: %s\n",
                      st.ToString().c_str());
          std::abort();
        }
      }
      return d;
    };

    struct FoldPoint {
      double frac;
      int64_t segments;
      double ms;
    };
    std::vector<FoldPoint> points;
    const std::vector<double> fracs = {1.0, 0.5, 0.25, 0.125};
    for (double frac : fracs) {
      streaming::GraphDeltaLog dlog(1);
      auto d = prepare(&dlog);
      const int64_t nsegs = d->base()->num_segments();
      const int64_t k = std::max<int64_t>(
          1, static_cast<int64_t>(nsegs * frac + 0.5));
      std::vector<int64_t> selection;
      for (int64_t s = 0; s < k; ++s) selection.push_back(s);
      WallTimer fold_timer;
      auto folded = frac >= 1.0 ? d->Compact()
                                : d->CompactSegments(std::move(selection));
      const double ms = fold_timer.ElapsedMillis();
      if (!folded.ok()) {
        std::printf("incremental fold failed: %s\n",
                    folded.status().ToString().c_str());
        return 1;
      }
      dlog.Truncate(d->SafeTruncateEpoch());
      points.push_back({frac, k, ms});
    }
    const double full_ms = points[0].ms;
    const double eighth_ratio = points.back().ms / full_ms;
    std::printf("\n[incremental compaction] fold pause vs dirty fraction "
                "(%lld segments x %d delta edges each)\n",
                static_cast<long long>(
                    points[0].segments),
                edges_per_segment);
    for (const FoldPoint& p : points) {
      std::printf("  fold %5.1f%% (%3lld segs) %10.2f ms  %5.1f%% of full%s\n",
                  p.frac * 100.0, static_cast<long long>(p.segments), p.ms,
                  100.0 * p.ms / full_ms,
                  p.frac <= 0.125
                      ? (p.ms / full_ms <= 0.25 ? "  (<= 25% OK)"
                                                : "  (> 25%!)")
                      : "");
    }
    sink.Record("segmented_full_fold_ms", full_ms);
    sink.Record("incr_fold_eighth_ms", points.back().ms);
    sink.Record("incr_fold_eighth_vs_full_ratio", eighth_ratio);
    sink.Record("incr_fold_quarter_vs_full_ratio", points[2].ms / full_ms);
    sink.Record("incr_fold_half_vs_full_ratio", points[1].ms / full_ms);
  }

  // ---- 10. Observability ---------------------------------------------------
  {
    // 10a. Record cost of the log-scale histogram (the instrument every hot
    // path now carries). Pre-generated values so the measured loop is just
    // Record(); acceptance: <= ~50 ns/record.
    const int kRecords = cfg.smoke ? (1 << 20) : (1 << 22);
    std::vector<int64_t> values(static_cast<size_t>(kRecords));
    Rng orng(515);
    for (auto& v : values) v = static_cast<int64_t>(orng.Uniform(1 << 20));
    obs::Histogram scratch;
    WallTimer record_timer;
    for (int64_t v : values) scratch.Record(v);
    const double record_ns =
        record_timer.ElapsedMicros() * 1000.0 / kRecords;
    const auto scratch_snap = scratch.Snapshot();
    std::printf("\n[obs] histogram record: %.1f ns/op over %d records "
                "(p50 %lld, p99 %lld; midpoint error <= ~3.1%%)%s\n",
                record_ns, kRecords,
                static_cast<long long>(scratch_snap.Percentile(50)),
                static_cast<long long>(scratch_snap.Percentile(99)),
                record_ns <= 50.0 ? "  (<= 50 ns OK)" : "  (> 50 ns!)");
    sink.Record("obs.histogram_record_ns", record_ns);

    // 10b. Serving percentiles from the registry-backed instruments: a short
    // open-loop load against an OnlineServer, then a DumpMetrics scrape.
    const int dim = 16;
    serving::OnlineServerOptions sopt;
    sopt.embedding_dim = dim;
    sopt.top_n = 10;
    Rng erng(56);
    std::vector<float> node_emb(ds.graph.num_nodes() * dim);
    for (auto& x : node_emb) x = static_cast<float>(erng.Normal()) * 0.3f;
    std::vector<float> item_emb(ds.all_items.size() * dim);
    for (size_t i = 0; i < ds.all_items.size(); ++i) {
      std::copy(node_emb.begin() + ds.all_items[i] * dim,
                node_emb.begin() + (ds.all_items[i] + 1) * dim,
                item_emb.begin() + static_cast<int64_t>(i) * dim);
    }
    serving::OnlineServer server(&ds.graph, sopt, std::move(node_emb),
                                 ds.all_items, item_emb);
    std::vector<serving::ServingRequest> pool;
    for (size_t i = 0; i < users.size() && i < queries.size(); ++i) {
      pool.push_back({users[i], queries[i]});
      server.WarmCache({users[i], queries[i]});
    }
    const double load_qps = cfg.smoke ? 500.0 : 2000.0;
    const double load_seconds = cfg.smoke ? 0.5 : 2.0;
    auto load = serving::RunLoad(&server, pool, load_qps, load_seconds,
                                 /*client_threads=*/2, /*seed=*/61);
    std::printf("[obs] served %lld requests at %.0f qps: p50 %.3f ms, "
                "p99 %.3f ms (registry-backed histogram)\n",
                static_cast<long long>(load.requests), load.achieved_qps,
                load.p50_ms, load.p99_ms);
    sink.Record("serving_p50_ms", load.p50_ms);
    sink.Record("serving_p99_ms", load.p99_ms);
    const std::string dump = server.DumpMetrics();
    std::printf("[obs] DumpMetrics: %zu bytes of JSON\n", dump.size());

    // 10c. Full registry snapshot into the artifact: every instrument the
    // run above touched (per-shard freshness lag, fold pauses, cache
    // counters, serving percentiles, ...) lands under "obs." keys, so the
    // CI trajectory carries the whole registry per commit.
    obs::MetricsExporter::Flatten(
        obs::MetricsRegistry::Global()->Snapshot(),
        [&sink](const std::string& key, double value) {
          sink.Record("obs." + key, value);
        });
  }

  pipeline.Stop();
  if (!cfg.json_path.empty()) {
    if (!sink.WriteJson(cfg.json_path, cfg.smoke)) {
      std::printf("failed to write %s\n", cfg.json_path.c_str());
      return 1;
    }
    std::printf("\nmetrics written to %s\n", cfg.json_path.c_str());
  }
  return 0;
}

}  // namespace bench
}  // namespace zoomer

int main(int argc, char** argv) {
  zoomer::bench::BenchConfig cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      cfg.smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      cfg.json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json PATH]\n", argv[0]);
      return 2;
    }
  }
  return zoomer::bench::Run(cfg);
}
