// Reproduces Fig. 9: online response time versus offered queries-per-second.
// The paper measures 1K-50K QPS on the production cluster; this single-node
// simulation offers a proportionally scaled load (x100 smaller) against the
// full serving path: neighbor cache (k=30, async refresh), edge-level-
// attention-only aggregation, and ANN retrieval over the inverted index
// (Sec. VII-E). Also reports the serving-reduction ablations.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "serving/online_server.h"

namespace zoomer {
namespace bench {
namespace {

std::unique_ptr<serving::OnlineServer> MakeServer(
    const data::RetrievalDataset& ds, serving::OnlineServerOptions opt) {
  const int d = opt.embedding_dim;
  Rng rng(55);
  // Trained-model export stand-in: category-clustered embeddings (the
  // latency path is independent of embedding quality).
  std::vector<float> node_emb(ds.graph.num_nodes() * d);
  for (graph::NodeId v = 0; v < ds.graph.num_nodes(); ++v) {
    for (int j = 0; j < d && j < ds.graph.content_dim(); ++j) {
      node_emb[v * d + j] =
          ds.graph.content(v)[j] + 0.1f * static_cast<float>(rng.Normal());
    }
  }
  std::vector<float> item_emb(ds.all_items.size() * d);
  for (size_t i = 0; i < ds.all_items.size(); ++i) {
    std::copy(node_emb.begin() + ds.all_items[i] * d,
              node_emb.begin() + (ds.all_items[i] + 1) * d,
              item_emb.begin() + static_cast<int64_t>(i) * d);
  }
  return std::make_unique<serving::OnlineServer>(
      &ds.graph, opt, std::move(node_emb), ds.all_items, item_emb);
}

}  // namespace
}  // namespace bench
}  // namespace zoomer

int main() {
  using namespace zoomer;
  using namespace zoomer::bench;
  std::printf("Fig. 9: online response time vs queries per second\n");

  auto ds = data::GenerateTaobaoDataset(ScaleOptions(GraphScale::kHundredMillion, 3));
  std::printf("graph: %s\n", ds.graph.DebugString().c_str());

  serving::OnlineServerOptions opt;
  opt.embedding_dim = 32;
  opt.top_n = 100;
  opt.cache.k = 30;  // production cache size (Sec. VII-E)
  opt.ann.nlist = 32;
  opt.ann.nprobe = 8;
  auto server = MakeServer(ds, opt);

  // Warm the cache for the request pool (async refreshes keep it fresh in
  // production; here we pre-fill to measure the steady state).
  std::vector<serving::ServingRequest> pool;
  for (size_t i = 0; i < ds.test.size() && pool.size() < 400; ++i) {
    pool.push_back({ds.test[i].user, ds.test[i].query});
  }
  std::vector<graph::NodeId> warm;
  for (const auto& r : pool) {
    warm.push_back(r.user);
    warm.push_back(r.query);
  }
  server->WarmCache(warm);

  std::printf("\n%12s %12s %12s %12s %12s\n", "offered QPS", "achieved",
              "mean ms", "p50 ms", "p99 ms");
  PrintRule(64);
  // Paper sweeps 1K..50K QPS; we offer the same series scaled by 100x.
  for (double kqps : {1, 2, 3, 4, 5, 10, 20, 30, 40, 50}) {
    const double qps = kqps * 300.0;  // scaled-down offered load
    auto result = serving::RunLoad(server.get(), pool, qps,
                                   /*duration=*/0.5, /*client_threads=*/8,
                                   /*seed=*/9, /*server_threads=*/2);
    std::printf("%9.0fK* %12.0f %12.3f %12.3f %12.3f\n", kqps,
                result.achieved_qps, result.mean_ms, result.p50_ms,
                result.p99_ms);
    std::fflush(stdout);
  }
  std::printf("(* paper-scale label; offered load here is scaled down ~6x on a\n"
              " single node. Expect sub-linear latency growth: 10x QPS -> <2x\n"
              " response time, as in the paper)\n");

  // Serving-reduction ablations (Sec. VII-E design choices).
  std::printf("\nServing ablations at fixed load:\n");
  std::printf("%-34s %10s %10s\n", "configuration", "mean ms", "p99 ms");
  PrintRule(58);
  for (int variant = 0; variant < 2; ++variant) {
    serving::OnlineServerOptions v = opt;
    const char* label;
    if (variant == 0) {
      v.use_neighbor_cache = false;
      label = "no neighbor cache (sync sampling)";
    } else {
      v.use_edge_attention = false;
      label = "mean aggregation (no attention)";
    }
    auto ablated = MakeServer(ds, v);
    ablated->WarmCache(warm);
    auto result = serving::RunLoad(ablated.get(), pool, /*qps=*/200,
                                   /*duration=*/0.5, /*client_threads=*/4,
                                   /*seed=*/9);
    std::printf("%-34s %10.3f %10.3f\n", label, result.mean_ms,
                result.p99_ms);
  }
  return 0;
}
