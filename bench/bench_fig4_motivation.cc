// Reproduces Fig. 4 (motivation measurements):
//  (a) impact of graph scale on GNN training cost: a 2-layer GCN with an
//      increasing number of sampled neighbors; reports iterations/sec and
//      activation memory per iteration;
//  (b) similarities between successive queries posed by the same user
//      (dynamic focal interests);
//  (c) CDF of similarities between focal points and the user's local graph
//      (clicked items) for 1-hour vs 1-day graphs.
#include <cmath>
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/zoomer_model.h"
#include "eval/metrics.h"
#include "tensor/tensor.h"

namespace zoomer {
namespace bench {
namespace {

double Cosine(const float* a, const float* b, int d) {
  double dot = 0, na = 0, nb = 0;
  for (int i = 0; i < d; ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  return dot / (std::sqrt(na) * std::sqrt(nb) + 1e-12);
}

void Fig4a(const data::RetrievalDataset& ds) {
  PrintHeader("Fig. 4(a): sampled neighbors vs training cost (2-layer GCN)");
  std::printf("%10s %14s %18s\n", "neighbors", "iters/sec",
              "activation MB/iter");
  PrintRule(46);
  for (int k : {2, 5, 10, 15, 20, 30}) {
    core::ZoomerConfig cfg = core::ZoomerConfig::Gcn();
    cfg.hidden_dim = 16;
    cfg.sampler.k = k;
    cfg.sampler.num_hops = 2;
    core::ZoomerModel model(&ds.graph, cfg);
    Rng rng(1);
    const int iters = 60;
    tensor::AllocationTracker::Reset();
    WallTimer timer;
    for (int i = 0; i < iters; ++i) {
      auto loss = FocalBceWithLogits(
          model.ScoreLogit(ds.train[i % ds.train.size()], &rng),
          tensor::Tensor::Scalar(ds.train[i % ds.train.size()].label));
      loss.Backward();
    }
    const double secs = timer.ElapsedSeconds();
    const double mb_per_iter =
        tensor::AllocationTracker::allocated_bytes() / double(iters) / 1e6;
    std::printf("%10d %14.1f %18.3f\n", k, iters / secs, mb_per_iter);
  }
  std::printf("(paper: memory grows superlinearly and iters/sec drops as the\n"
              " sampled neighborhood expands)\n");
}

void Fig4b(const data::RetrievalDataset& ds) {
  PrintHeader("Fig. 4(b): similarity between successive queries per user");
  // Successive (query_t, query_{t+1}) content cosine per user.
  std::map<graph::NodeId, graph::NodeId> last_query;
  std::vector<double> sims;
  const int d = ds.graph.content_dim();
  for (const auto& rec : ds.log) {
    auto it = last_query.find(rec.user);
    if (it != last_query.end() && it->second != rec.query) {
      sims.push_back(Cosine(ds.graph.content(it->second),
                            ds.graph.content(rec.query), d));
    }
    last_query[rec.user] = rec.query;
  }
  double mean = 0;
  for (double s : sims) mean += s;
  mean /= sims.size();
  std::printf("successive u-q pairs: %zu\n", sims.size());
  std::printf("mean similarity: %.3f\n", mean);
  std::printf("fraction with similarity < 0.5: %.2f\n",
              eval::FractionBelow(sims, 0.5));
  std::printf("fraction with similarity < 0.0: %.2f\n",
              eval::FractionBelow(sims, 0.0));
  std::printf("(paper: successive queries within a session usually have low\n"
              " similarity -- focal interests change quickly)\n");
}

void Fig4c() {
  PrintHeader(
      "Fig. 4(c): CDF of focal-vs-local-graph similarity (1-hour vs 1-day)");
  // Build 1-hour and 1-day graphs from the same log stream (paper Sec. IV).
  for (auto [label, window] :
       {std::pair<const char*, int64_t>{"1-hour", 3600},
        std::pair<const char*, int64_t>{"1-day", 86400}}) {
    auto opt = ScaleOptions(GraphScale::kMillion, /*seed=*/7);
    opt.time_horizon_seconds = 86400;
    opt.build.time_window_seconds = window;
    auto ds = GenerateTaobaoDataset(opt);
    const int d = ds.graph.content_dim();
    // 10 random users; focal = {user, random query}; similarities against
    // all items the user interacted with.
    Rng rng(11);
    std::vector<double> sims;
    for (int u = 0; u < 10; ++u) {
      const graph::NodeId user = static_cast<graph::NodeId>(
          rng.Uniform(ds.graph.num_nodes_of_type(graph::NodeType::kUser)));
      auto queries = ds.graph.NeighborsOfType(user, graph::NodeType::kQuery);
      auto items = ds.graph.NeighborsOfType(user, graph::NodeType::kItem);
      if (queries.empty() || items.empty()) continue;
      const graph::NodeId q = queries[rng.Uniform(queries.size())];
      std::vector<float> focal(d);
      for (int j = 0; j < d; ++j) {
        focal[j] = ds.graph.content(user)[j] + ds.graph.content(q)[j];
      }
      for (auto item : items) {
        sims.push_back(Cosine(focal.data(), ds.graph.content(item), d));
      }
    }
    std::printf("%-7s graph: %4zu focal-item pairs | P(sim<0.0)=%.2f "
                "P(sim<0.2)=%.2f P(sim<0.5)=%.2f\n",
                label, sims.size(), eval::FractionBelow(sims, 0.0),
                eval::FractionBelow(sims, 0.2),
                eval::FractionBelow(sims, 0.5));
  }
  std::printf("(paper: most similarities are low; longer logs contain even\n"
              " more focal-irrelevant history -- information overload)\n");
}

}  // namespace
}  // namespace bench
}  // namespace zoomer

int main() {
  using namespace zoomer::bench;
  std::printf("Fig. 4 motivation measurements (Zoomer reproduction)\n");
  auto opt = ScaleOptions(GraphScale::kMillion);
  auto ds = zoomer::data::GenerateTaobaoDataset(opt);
  Fig4a(ds);
  Fig4b(ds);
  Fig4c();
  return 0;
}
