// Durability / crash-recovery benchmark for the persist layer
// (src/persist/): checkpointed SegmentedCsr + WAL replay. Reports
//   1. recovery time vs graph size: ingest, fold, checkpoint, keep
//      ingesting a WAL tail, then RecoverFrom a cold directory — at three
//      graph scales,
//   2. recovery time vs checkpoint staleness: the same graph recovered
//      under WAL tails of growing length (staleness is what replay pays
//      for),
//   3. incremental checkpoint cost: bytes written by a full checkpoint vs
//      one after dirtying 1/8 of the segments (acceptance: <= ~25% of the
//      full checkpoint's bytes), and
//   4. a correctness gate CI trips on: after every recovery the focal
//      top-k ROI and a fixed-seed weighted-draw sequence must be
//      bit-identical to the pre-"crash" graph (topk_identical = 1), with
//      obs.persist.* (checkpoint latency/bytes, WAL fsync latency,
//      recovery_replay_epochs) flattened into the artifact.
//
// Flags: --smoke shrinks every workload for a CI smoke run; --json PATH
// writes the headline metrics as a flat JSON object (BENCH_recovery.json
// in CI).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/timer.h"
#include "core/roi_sampler.h"
#include "data/taobao_generator.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "persist/checkpoint.h"
#include "persist/wal.h"
#include "streaming/dynamic_graph_view.h"
#include "streaming/dynamic_hetero_graph.h"
#include "streaming/graph_delta_log.h"

namespace zoomer {
namespace bench {
namespace {

namespace fs = std::filesystem;

using graph::NodeId;
using graph::NodeType;
using graph::RelationKind;
using streaming::DeltaBatch;
using streaming::DynamicHeteroGraph;
using streaming::DynamicHeteroGraphOptions;
using streaming::EdgeEvent;
using streaming::GraphDeltaLog;
using streaming::NodeEvent;

constexpr int kShards = 2;

struct BenchConfig {
  bool smoke = false;          // tiny iteration counts for the CI smoke run
  std::string json_path;       // "" = no JSON artifact
};

/// Flat (name, value) metric sink serialized as one JSON object.
class MetricSink {
 public:
  void Record(const std::string& name, double value) {
    metrics_.emplace_back(name, value);
  }
  bool WriteJson(const std::string& path, bool smoke) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\n  \"bench\": \"recovery\",\n");
    std::fprintf(f, "  \"smoke\": %s", smoke ? "true" : "false");
    for (const auto& [name, value] : metrics_) {
      std::fprintf(f, ",\n  \"%s\": %.6g", name.c_str(), value);
    }
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    return true;
  }

 private:
  std::vector<std::pair<std::string, double>> metrics_;
};

/// Smallest power-of-two span giving the graph at least ~16 segments.
int64_t PickSpan(int64_t num_nodes) {
  int64_t span = 1;
  while (span * 32 < num_nodes) span <<= 1;
  return span;
}

/// Deterministic serving fingerprint: fixed-seed weighted draws plus
/// focal-top-k ROIs for a few (user, query) pairs.
std::vector<int64_t> FingerprintOf(const DynamicHeteroGraph& g,
                                   const std::vector<NodeId>& users,
                                   const std::vector<NodeId>& queries) {
  std::vector<int64_t> fp;
  auto snap = g.MakeSnapshot();
  Rng rng(123);
  const int64_t n = g.num_nodes_allocated();
  for (NodeId id = 0; id < n; id += 7) {
    fp.push_back(snap.Degree(id));
    if (snap.Degree(id) > 0) {
      for (int i = 0; i < 4; ++i) fp.push_back(snap.SampleNeighbor(id, &rng));
    }
  }
  core::RoiSamplerOptions opts;
  opts.k = 6;
  opts.num_hops = 2;
  core::RoiSampler sampler(opts);
  streaming::DynamicGraphView view(&g);
  for (size_t i = 0; i < users.size() && i < queries.size() && i < 8; ++i) {
    Rng roi_rng(1000 + i);
    const auto fc = sampler.FocalVector(view, {users[i], queries[i]});
    const auto roi = sampler.Sample(view, queries[i], fc, &roi_rng);
    for (const auto& node : roi.nodes) fp.push_back(node.id);
  }
  return fp;
}

std::vector<NodeId> NodesOfType(const graph::HeteroGraph& g, NodeType t,
                                size_t limit) {
  std::vector<NodeId> all;
  for (NodeId v = 0; v < g.num_nodes() && all.size() < limit; ++v) {
    if (g.node_type(v) == t && g.degree(v) > 0) all.push_back(v);
  }
  return all;
}

/// Appends one edge batch through the log (observer tees it to the WAL)
/// and applies it to the graph, endpoints drawn from [0, max_node).
void IngestEdgeBatch(GraphDeltaLog* log, DynamicHeteroGraph* graph,
                     NodeId max_node, int edges_per_batch, Rng* rng) {
  std::vector<EdgeEvent> events;
  events.reserve(edges_per_batch);
  for (int i = 0; i < edges_per_batch; ++i) {
    const NodeId u = static_cast<NodeId>(rng->Uniform(max_node));
    NodeId v = static_cast<NodeId>(rng->Uniform(max_node));
    if (v == u) v = (v + 1) % max_node;
    events.push_back({u, v, RelationKind::kClick,
                      0.5f + static_cast<float>(rng->UniformFloat()), 0});
  }
  DeltaBatch batch;
  batch.events = events;
  batch.epoch =
      log->Append(static_cast<int>(rng->Uniform(kShards)), std::move(events),
                  [graph](uint64_t e) { graph->NoteEpochIssued(e); });
  const auto st = graph->ApplyBatch(batch);
  if (!st.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n", st.ToString().c_str());
    std::abort();
  }
}

void MintNode(GraphDeltaLog* log, DynamicHeteroGraph* graph, NodeId query,
              int content_dim, Rng* rng) {
  NodeEvent ev;
  ev.type = NodeType::kItem;
  ev.content.resize(content_dim);
  for (auto& x : ev.content) x = static_cast<float>(rng->UniformFloat());
  ev.slots = {3};
  std::vector<NodeEvent> nodes = {ev};
  std::vector<EdgeEvent> edges = {{query, -1, RelationKind::kClick, 1.0f, 0}};
  auto epoch = log->AppendWithNodes(
      0, &nodes, &edges,
      [graph](const std::vector<NodeEvent>& evs, uint64_t e) {
        return graph->AllocateNodeIds(evs, e);
      },
      [graph](uint64_t e) { graph->NoteEpochIssued(e); });
  DeltaBatch batch;
  batch.epoch = epoch.value();
  batch.node_events = std::move(nodes);
  batch.events = std::move(edges);
  const auto st = graph->ApplyBatch(batch);
  if (!st.ok()) {
    std::fprintf(stderr, "mint failed: %s\n", st.ToString().c_str());
    std::abort();
  }
}

struct CaseResult {
  double recovery_ms = 0.0;
  uint64_t replayed_epochs = 0;
  bool identical = false;
  int64_t num_nodes = 0;
};

/// One full ingest -> fold -> checkpoint -> tail -> recover cycle in a
/// fresh directory. `tail_epochs` is the checkpoint staleness knob.
CaseResult RunRecoveryCase(const std::string& dir, int num_items,
                           int pre_epochs, int tail_epochs, uint64_t seed) {
  fs::remove_all(dir);
  data::TaobaoGeneratorOptions opt;
  opt.num_users = num_items / 2;
  opt.num_queries = num_items / 2;
  opt.num_items = num_items;
  opt.num_sessions = num_items * 4;
  opt.num_categories = 12;
  opt.content_dim = 16;
  opt.seed = seed;
  auto ds = data::GenerateTaobaoDataset(opt);

  DynamicHeteroGraphOptions gopts;
  gopts.segment_span = PickSpan(ds.graph.num_nodes());
  DynamicHeteroGraph dyn(&ds.graph, gopts);
  GraphDeltaLog log(kShards);
  persist::DeltaLogPersister persister(&log, dir);
  if (!persister.Start(0).ok()) std::abort();

  Rng rng(seed + 1);
  const NodeId base_nodes = static_cast<NodeId>(ds.graph.num_nodes());
  for (int i = 0; i < pre_epochs; ++i) {
    IngestEdgeBatch(&log, &dyn, base_nodes, 4, &rng);
    if (i % 64 == 63) MintNode(&log, &dyn, 1, opt.content_dim, &rng);
  }
  if (!dyn.Compact().ok()) std::abort();

  persist::CheckpointWriterOptions copts;
  copts.wal_shards = kShards;
  persist::CheckpointWriter writer(&dyn, dir, copts);
  auto stats = writer.Write();
  if (!stats.ok()) std::abort();
  if (!persister.OnCheckpoint(stats.value().checkpoint_epoch).ok()) {
    std::abort();
  }
  for (int i = 0; i < tail_epochs; ++i) {
    IngestEdgeBatch(&log, &dyn, base_nodes, 4, &rng);
  }

  auto users = NodesOfType(ds.graph, NodeType::kUser, 8);
  auto queries = NodesOfType(ds.graph, NodeType::kQuery, 8);
  const auto before = FingerprintOf(dyn, users, queries);

  CaseResult result;
  result.num_nodes = dyn.num_nodes_allocated();
  WallTimer timer;
  persist::RecoverOptions ropts;
  ropts.graph_options = gopts;
  auto recovered = persist::RecoverFrom(dir, ropts);
  result.recovery_ms = timer.ElapsedMicros() / 1000.0;
  if (!recovered.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 recovered.status().ToString().c_str());
    std::abort();
  }
  result.replayed_epochs = recovered.value().replayed_epochs;
  result.identical =
      before == FingerprintOf(*recovered.value().graph, users, queries);
  fs::remove_all(dir);
  return result;
}

int Run(const BenchConfig& cfg) {
  std::printf("=== Recovery benchmark%s ===\n", cfg.smoke ? " (smoke)" : "");
  MetricSink sink;
  const std::string root =
      (fs::temp_directory_path() / "zoomer_bench_recovery").string();
  bool all_identical = true;

  // ---- 1. Recovery time vs graph size -----------------------------------
  const std::vector<std::pair<const char*, int>> sizes =
      cfg.smoke ? std::vector<std::pair<const char*, int>>{{"small", 300},
                                                           {"medium", 600}}
                : std::vector<std::pair<const char*, int>>{{"small", 600},
                                                           {"medium", 1500},
                                                           {"large", 3000}};
  const int pre = cfg.smoke ? 256 : 2048;
  const int tail = cfg.smoke ? 128 : 1024;
  for (const auto& [name, items] : sizes) {
    const auto r = RunRecoveryCase(root, items, pre, tail, 42);
    std::printf("[size %-6s] %lld nodes: recovery %.2f ms, %llu epochs "
                "replayed, topk %s\n",
                name, static_cast<long long>(r.num_nodes), r.recovery_ms,
                static_cast<unsigned long long>(r.replayed_epochs),
                r.identical ? "identical" : "DIVERGED");
    sink.Record(std::string("recovery_ms_") + name, r.recovery_ms);
    sink.Record(std::string("replayed_epochs_") + name,
                static_cast<double>(r.replayed_epochs));
    all_identical = all_identical && r.identical;
  }

  // ---- 2. Recovery time vs checkpoint staleness --------------------------
  const int stale_items = cfg.smoke ? 300 : 1000;
  for (const int stale_tail : {0, tail / 2, tail * 2}) {
    const auto r = RunRecoveryCase(root, stale_items, pre, stale_tail, 7);
    std::printf("[staleness %4d] recovery %.2f ms (%llu epochs replayed), "
                "topk %s\n",
                stale_tail, r.recovery_ms,
                static_cast<unsigned long long>(r.replayed_epochs),
                r.identical ? "identical" : "DIVERGED");
    sink.Record("recovery_ms_tail_" + std::to_string(stale_tail),
                r.recovery_ms);
    all_identical = all_identical && r.identical;
  }

  // ---- 3. Incremental checkpoint bytes: 1/8 of segments dirty ------------
  {
    fs::remove_all(root);
    data::TaobaoGeneratorOptions opt;
    opt.num_users = cfg.smoke ? 200 : 800;
    opt.num_queries = cfg.smoke ? 200 : 800;
    opt.num_items = cfg.smoke ? 400 : 1600;
    opt.num_sessions = cfg.smoke ? 1600 : 6400;
    opt.content_dim = 16;
    opt.seed = 9;
    auto ds = data::GenerateTaobaoDataset(opt);
    DynamicHeteroGraphOptions gopts;
    gopts.segment_span = PickSpan(ds.graph.num_nodes());
    DynamicHeteroGraph dyn(&ds.graph, gopts);
    GraphDeltaLog log(kShards);
    Rng rng(31);

    persist::CheckpointWriterOptions copts;
    copts.wal_shards = kShards;
    persist::CheckpointWriter writer(&dyn, root, copts);
    auto full = writer.Write();
    if (!full.ok()) std::abort();

    // Dirty only the first 1/8 of the segments (both edge endpoints inside
    // their id range), fold exactly those, and re-checkpoint.
    const int64_t num_segments =
        (dyn.base()->num_nodes() + gopts.segment_span - 1) /
        gopts.segment_span;
    const int64_t dirty_segments = std::max<int64_t>(1, num_segments / 8);
    const NodeId dirty_range =
        static_cast<NodeId>(dirty_segments * gopts.segment_span);
    const int touches = cfg.smoke ? 64 : 512;
    for (int i = 0; i < touches; ++i) {
      IngestEdgeBatch(&log, &dyn, dirty_range, 4, &rng);
    }
    std::vector<int64_t> selected;
    for (int64_t s = 0; s < dirty_segments; ++s) selected.push_back(s);
    if (!dyn.CompactSegments(selected).ok()) std::abort();
    auto incr = writer.Write();
    if (!incr.ok()) std::abort();

    const double ratio = static_cast<double>(incr.value().bytes_written) /
                         static_cast<double>(full.value().bytes_written);
    std::printf("[incremental] full checkpoint %lld bytes (%lld segments), "
                "1/8-dirty checkpoint %lld bytes (%lld written, %lld "
                "reused): ratio %.3f\n",
                static_cast<long long>(full.value().bytes_written),
                static_cast<long long>(full.value().segments_written),
                static_cast<long long>(incr.value().bytes_written),
                static_cast<long long>(incr.value().segments_written),
                static_cast<long long>(incr.value().segments_reused),
                ratio);
    sink.Record("ckpt_full_bytes", static_cast<double>(full.value().bytes_written));
    sink.Record("ckpt_incr_bytes", static_cast<double>(incr.value().bytes_written));
    sink.Record("incr_ckpt_bytes_ratio", ratio);
    fs::remove_all(root);
  }

  sink.Record("topk_identical", all_identical ? 1.0 : 0.0);
  std::printf("[gate] topk_identical = %d\n", all_identical ? 1 : 0);

  // Full registry snapshot (persist.checkpoint_latency_us, wal fsync
  // latency, recovery_replay_epochs, ...) under "obs." keys.
  obs::MetricsExporter::Flatten(
      obs::MetricsRegistry::Global()->Snapshot(),
      [&sink](const std::string& key, double value) {
        sink.Record("obs." + key, value);
      });

  if (!cfg.json_path.empty()) {
    if (!sink.WriteJson(cfg.json_path, cfg.smoke)) {
      std::printf("failed to write %s\n", cfg.json_path.c_str());
      return 1;
    }
    std::printf("\nmetrics written to %s\n", cfg.json_path.c_str());
  }
  return all_identical ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace zoomer

int main(int argc, char** argv) {
  zoomer::bench::BenchConfig cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      cfg.smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      cfg.json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json PATH]\n", argv[0]);
      return 2;
    }
  }
  return zoomer::bench::Run(cfg);
}
