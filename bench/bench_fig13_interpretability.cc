// Reproduces Fig. 13 (model interpretability): heatmaps of edge-level
// coupling coefficients. (a) a fixed user with varying focal queries over
// their historical items; (b) a fixed query ("handbag"-like) with varying
// focal users over its item neighbors. Rendered as ASCII heatmaps.
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "core/zoomer_model.h"

namespace zoomer {
namespace bench {
namespace {

const char* Shade(float v, float lo, float hi) {
  static const char* kShades[] = {"  .", " ..", " +.", " ++", " #+", " ##"};
  if (hi <= lo) return kShades[0];
  const float t = (v - lo) / (hi - lo);
  const int idx = std::min(5, std::max(0, static_cast<int>(t * 6.0f)));
  return kShades[idx];
}

void PrintHeatmap(const std::vector<std::vector<float>>& w,
                  const std::vector<std::string>& row_labels) {
  float lo = 1e9f, hi = -1e9f;
  for (const auto& row : w) {
    for (float v : row) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  for (size_t r = 0; r < w.size(); ++r) {
    std::printf("%-10s |", row_labels[r].c_str());
    for (float v : w[r]) std::printf("%s", Shade(v, lo, hi));
    std::printf(" |");
    for (float v : w[r]) std::printf(" %.2f", v);
    std::printf("\n");
  }
  std::printf("(range %.3f .. %.3f; '#' = high coupling)\n", lo, hi);
}

}  // namespace
}  // namespace bench
}  // namespace zoomer

int main() {
  using namespace zoomer;
  using namespace zoomer::bench;
  std::printf("Fig. 13: coupling-coefficient heatmaps (edge-level weights)\n");

  auto ds = data::GenerateTaobaoDataset(ScaleOptions(GraphScale::kMillion, 13));

  // Briefly train Zoomer so attention weights are meaningful.
  baselines::ModelParams params;
  params.hidden_dim = 16;
  params.sample_k = 10;
  params.seed = 5;
  core::ZoomerConfig cfg;
  cfg.hidden_dim = params.hidden_dim;
  cfg.sampler.k = params.sample_k;
  cfg.seed = params.seed;
  core::ZoomerModel model(&ds.graph, cfg);
  core::TrainOptions topt;
  topt.epochs = 1;
  topt.learning_rate = 0.01f;
  topt.max_examples_per_epoch = 2500;
  core::ZoomerTrainer trainer(&model, topt);
  trainer.Train(ds);
  Rng rng(31);

  // (a) fixed user, varying focal query: pick a user with >= 8 item
  // neighbors and 5 queries of different categories.
  graph::NodeId user = -1;
  for (graph::NodeId v = 0; v < ds.graph.num_nodes(); ++v) {
    if (ds.graph.node_type(v) == graph::NodeType::kUser &&
        ds.graph.NeighborsOfType(v, graph::NodeType::kItem).size() >= 8) {
      user = v;
      break;
    }
  }
  if (user < 0) {
    std::printf("no sufficiently active user found\n");
    return 1;
  }
  auto items_span = ds.graph.NeighborsOfType(user, graph::NodeType::kItem);
  std::vector<graph::NodeId> items(items_span.begin(),
                                   items_span.begin() + 8);
  std::vector<graph::NodeId> queries;
  for (graph::NodeId v = 0; v < ds.graph.num_nodes() && queries.size() < 5;
       ++v) {
    if (ds.graph.node_type(v) == graph::NodeType::kQuery &&
        (queries.empty() || ds.category[v] != ds.category[queries.back()])) {
      queries.push_back(v);
    }
  }

  std::printf("\n(a) fixed user u%lld: rows = focal queries, cols = 8 of the\n"
              "    user's historical items; cells = edge-level weight\n\n",
              static_cast<long long>(user));
  std::vector<std::vector<float>> wa;
  std::vector<std::string> labels_a;
  for (auto q : queries) {
    auto records = model.ExplainEdgeWeights(user, user, q, &rng);
    std::map<graph::NodeId, float> by_id;
    for (const auto& r : records) by_id[r.neighbor] = r.weight;
    std::vector<float> row;
    for (auto item : items) {
      row.push_back(by_id.count(item) ? by_id[item] : 0.0f);
    }
    wa.push_back(row);
    labels_a.push_back("q" + std::to_string(q) + "/c" +
                       std::to_string(ds.category[q]));
  }
  PrintHeatmap(wa, labels_a);

  // (b) fixed query, varying focal user.
  graph::NodeId query = -1;
  for (graph::NodeId v = 0; v < ds.graph.num_nodes(); ++v) {
    if (ds.graph.node_type(v) == graph::NodeType::kQuery &&
        ds.graph.NeighborsOfType(v, graph::NodeType::kItem).size() >= 9) {
      query = v;
      break;
    }
  }
  if (query < 0) {
    std::printf("no sufficiently connected query found\n");
    return 1;
  }
  auto qitems_span = ds.graph.NeighborsOfType(query, graph::NodeType::kItem);
  std::vector<graph::NodeId> qitems(qitems_span.begin(),
                                    qitems_span.begin() + 9);
  std::printf("\n(b) fixed query q%lld: rows = focal users, cols = 9 item\n"
              "    neighbors of the query\n\n",
              static_cast<long long>(query));
  std::vector<std::vector<float>> wb;
  std::vector<std::string> labels_b;
  for (int u = 0; u < 8; ++u) {
    const graph::NodeId uid = static_cast<graph::NodeId>(
        rng.Uniform(ds.graph.num_nodes_of_type(graph::NodeType::kUser)));
    auto records = model.ExplainEdgeWeights(query, uid, query, &rng);
    std::map<graph::NodeId, float> by_id;
    for (const auto& r : records) by_id[r.neighbor] = r.weight;
    std::vector<float> row;
    for (auto item : qitems) {
      row.push_back(by_id.count(item) ? by_id[item] : 0.0f);
    }
    wb.push_back(row);
    labels_b.push_back("u" + std::to_string(uid));
  }
  PrintHeatmap(wb, labels_b);

  std::printf("\n(paper Fig. 13: weights shift as focal points change --\n"
              " the same ego node gets multiple focal-dependent\n"
              " representations)\n");
  return 0;
}
