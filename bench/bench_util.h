// Shared helpers for the experiment-reproduction benches: the three graph
// scales standing in for the paper's million / hundred-million / billion
// node graphs (see DESIGN.md substitution table), the train+eval driver, and
// aligned table printing.
#ifndef ZOOMER_BENCH_BENCH_UTIL_H_
#define ZOOMER_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "core/trainer.h"
#include "data/movielens_generator.h"
#include "data/taobao_generator.h"

namespace zoomer {
namespace bench {

enum class GraphScale { kMillion, kHundredMillion, kBillion };

inline const char* ScaleName(GraphScale s) {
  switch (s) {
    case GraphScale::kMillion: return "million-scale";
    case GraphScale::kHundredMillion: return "hundred-million-scale";
    case GraphScale::kBillion: return "billion-scale";
  }
  return "?";
}

/// Downsized stand-ins for the paper's three Taobao graphs; proportions of
/// node types follow Sec. VII-A. Same planted-category mechanism at every
/// scale, so relative comparisons transfer.
inline data::TaobaoGeneratorOptions ScaleOptions(GraphScale s,
                                                 uint64_t seed = 42) {
  data::TaobaoGeneratorOptions opt;
  opt.seed = seed;
  // The information-overload regime the paper measures (Sec. IV): long,
  // noisy histories with drifting focal interests and within-category taste,
  // plus a share of same-category hard negatives so category matching alone
  // cannot solve the task.
  opt.p_click_in_category = 0.7;
  opt.p_interest_drift = 0.25;
  opt.max_user_interests = 5;
  opt.hard_negative_fraction = 0.25;
  opt.taste_tournament = 4;
  switch (s) {
    case GraphScale::kMillion:
      opt.num_users = 400;
      opt.num_queries = 400;
      opt.num_items = 800;
      opt.num_sessions = 3000;
      opt.num_categories = 12;
      break;
    case GraphScale::kHundredMillion:
      opt.num_users = 800;
      opt.num_queries = 800;
      opt.num_items = 1600;
      opt.num_sessions = 6000;
      opt.num_categories = 16;
      break;
    case GraphScale::kBillion:
      opt.num_users = 1600;
      opt.num_queries = 1600;
      opt.num_items = 3200;
      opt.num_sessions = 12000;
      opt.num_categories = 20;
      break;
  }
  return opt;
}

struct ModelRunResult {
  std::string name;
  double auc = 0.0;
  double mae = 0.0;
  double rmse = 0.0;
  double hitrate[3] = {0, 0, 0};
  double train_seconds = 0.0;
};

struct RunConfig {
  baselines::ModelParams params;
  core::TrainOptions train;
  int eval_examples = 1200;
  int hitrate_positives = 0;  // 0 = skip hitrate
};

/// Builds the named model, trains it, and evaluates CTR (+ optional
/// hitrate) metrics.
inline ModelRunResult TrainAndEval(const std::string& name,
                                   const data::RetrievalDataset& ds,
                                   const RunConfig& cfg) {
  auto model = baselines::MakeModel(name, &ds.graph, cfg.params);
  if (!model) {
    std::fprintf(stderr, "unknown model %s\n", name.c_str());
    return {name};
  }
  core::ZoomerTrainer trainer(model.get(), cfg.train);
  auto train_result = trainer.Train(ds);
  ModelRunResult out;
  out.name = name;
  out.train_seconds = train_result.total_seconds;
  auto eval = trainer.Evaluate(ds, cfg.eval_examples);
  out.auc = eval.auc;
  out.mae = eval.mae;
  out.rmse = eval.rmse;
  if (cfg.hitrate_positives > 0) {
    trainer.EvaluateHitRate(ds, &eval, cfg.hitrate_positives);
    for (int k = 0; k < 3; ++k) out.hitrate[k] = eval.hitrate_at[k];
  }
  return out;
}

inline void PrintRule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace bench
}  // namespace zoomer

#endif  // ZOOMER_BENCH_BENCH_UTIL_H_
