// Reproduces Fig. 10: training time to reach AUC 0.6 as the graph scale
// grows, Zoomer vs GCE-GNN (paper protocol: sampling number 5, 2-layer
// multi-level attention) — plus the distributed-serving side of the same
// scalability story: a replica-group engine under live ingest with one
// replica killed mid-stream. Reports
//   1. the Fig. 10 training-cost table (smoke runs only the smallest
//      scale),
//   2. serving latency through the replica groups while healthy, degraded
//      (one replica dead: no request may route to it after detection, the
//      error rate stays zero), and after ReviveReplica — whose delta-log
//      replay must drain the watermark lag back to 0.
//
// Flags: --smoke shrinks every workload for a CI smoke run; --json PATH
// writes the headline metrics as a flat JSON object (plus the engine's
// metrics registry flattened under "obs." keys) so the workflow archives a
// BENCH_*.json artifact per commit.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "data/session_stream.h"
#include "engine/distributed_graph_engine.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "streaming/dynamic_hetero_graph.h"
#include "streaming/graph_delta_log.h"
#include "streaming/ingest_pipeline.h"

namespace zoomer {
namespace bench {
namespace {

using graph::NodeId;

struct BenchConfig {
  bool smoke = false;     // tiny iteration counts for the CI smoke run
  std::string json_path;  // "" = no JSON artifact
};

/// Flat (name, value) metric sink serialized as one JSON object; names use
/// unit suffixes so the artifact is self-describing.
class MetricSink {
 public:
  void Record(const std::string& name, double value) {
    metrics_.emplace_back(name, value);
  }
  bool WriteJson(const std::string& path, bool smoke) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\n  \"bench\": \"fig10_scalability\",\n");
    std::fprintf(f, "  \"smoke\": %s", smoke ? "true" : "false");
    for (const auto& [name, value] : metrics_) {
      std::fprintf(f, ",\n  \"%s\": %.6g", name.c_str(), value);
    }
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    return true;
  }

 private:
  std::vector<std::pair<std::string, double>> metrics_;
};

const char* ScaleKey(GraphScale s) {
  switch (s) {
    case GraphScale::kMillion: return "million";
    case GraphScale::kHundredMillion: return "hundred_million";
    case GraphScale::kBillion: return "billion";
  }
  return "unknown";
}

std::vector<NodeId> QueriesWithEdges(const graph::HeteroGraph& g,
                                     size_t limit) {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < g.num_nodes() && out.size() < limit; ++v) {
    if (g.node_type(v) == graph::NodeType::kQuery && g.degree(v) > 0) {
      out.push_back(v);
    }
  }
  return out;
}

}  // namespace

int Run(const BenchConfig& cfg) {
  std::printf("=== Fig. 10: scalability%s ===\n", cfg.smoke ? " (smoke)" : "");
  MetricSink sink;

  // ---- 1. Training time to AUC = 0.6 vs graph scale -----------------------
  std::printf("\ntraining time to AUC=0.6 vs graph scale\n");
  std::printf("\n%-24s %12s %12s\n", "Graph scale", "Zoomer(s)", "GCE-GNN(s)");
  PrintRule(52);
  std::vector<GraphScale> scales = {GraphScale::kMillion};
  if (!cfg.smoke) {
    scales.push_back(GraphScale::kHundredMillion);
    scales.push_back(GraphScale::kBillion);
  }
  for (auto scale : scales) {
    auto ds = data::GenerateTaobaoDataset(ScaleOptions(scale, 2022));
    std::printf("%-24s", ScaleName(scale));
    for (const char* name : {"Zoomer", "GCE-GNN"}) {
      baselines::ModelParams params;
      params.hidden_dim = 16;
      params.sample_k = 5;  // paper: sampling number 5
      params.num_hops = 2;
      params.seed = 5;
      auto model = baselines::MakeModel(name, &ds.graph, params);
      core::TrainOptions topt;
      topt.learning_rate = 0.01f;
      topt.batch_size = 128;
      topt.max_examples_per_epoch = cfg.smoke ? 500 : 2000;
      core::ZoomerTrainer trainer(model.get(), topt);
      const double secs = trainer.TrainUntilAuc(ds, /*target_auc=*/0.6,
                                                /*max_epochs=*/cfg.smoke ? 3
                                                                         : 8);
      std::printf(" %12.1f", secs);
      std::fflush(stdout);
      sink.Record(std::string("train_to_auc06_s_") +
                      (name[0] == 'Z' ? "zoomer_" : "gcegnn_") +
                      ScaleKey(scale),
                  secs);
    }
    std::printf("\n");
  }
  std::printf("\n(paper Fig. 10: cost grows with scale for both systems;\n"
              " Zoomer reaches the target faster at every scale, especially\n"
              " on the largest graph)\n");

  // ---- 2. Replica-group serving under failure -----------------------------
  // The serving half of scalability: shards replicated, live ingest fanned
  // out to every replica, one replica killed mid-stream. Acceptance: the
  // degraded phase routes zero requests to the dead replica after detection
  // (error rate stays 0), and after ReviveReplica the delta-log replay
  // drains the watermark lag back to 0.
  {
    auto ds = data::GenerateTaobaoDataset(
        ScaleOptions(GraphScale::kMillion, 2023));
    obs::MetricsRegistry reg;
    const int kShards = 2;
    const int kRf = 2;
    streaming::GraphDeltaLog log(kShards);
    streaming::DynamicHeteroGraph primary(&ds.graph);
    engine::EngineOptions eopt;
    eopt.num_shards = kShards;
    eopt.replication_factor = kRf;
    eopt.simulated_rpc_micros = cfg.smoke ? 0 : 50;
    eopt.registry = &reg;
    engine::DistributedGraphEngine eng(&ds.graph, eopt);
    eng.ConnectUpdateFanout(&log, &primary);

    streaming::IngestOptions iopt;
    iopt.num_shards = kShards;
    iopt.batch_size = 32;
    iopt.registry = &reg;
    streaming::IngestPipeline pipe(&log, &primary, iopt, &eng);
    pipe.Start();

    data::LiveSessionOptions lopt;
    lopt.num_sessions = cfg.smoke ? 2000 : 20000;
    lopt.seed = 77;
    auto live = data::SynthesizeLiveSessions(ds, lopt);
    std::atomic<bool> feed_done{false};
    std::thread feeder([&] {
      size_t i = 0;
      while (!feed_done.load(std::memory_order_acquire)) {
        pipe.Offer(live[i % live.size()]);
        ++i;
        if (i % 64 == 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      }
    });

    auto queries = QueriesWithEdges(ds.graph, 400);
    auto run_phase = [&](int n, uint64_t seed, LatencyStats* lat,
                         int64_t* errors) {
      Rng prng(seed);
      for (int i = 0; i < n; ++i) {
        engine::SampleRequest req;
        req.node = queries[prng.Uniform(queries.size())];
        req.k = 10;
        req.rng_seed = seed ^ static_cast<uint64_t>(i);
        WallTimer timer;
        auto resp = eng.Sample(req);
        if (resp.ok()) {
          lat->Add(timer.ElapsedMillis());
        } else {
          ++*errors;
        }
      }
    };
    const int kPhaseRequests = cfg.smoke ? 400 : 4000;

    LatencyStats healthy;
    int64_t healthy_errors = 0;
    run_phase(kPhaseRequests, 101, &healthy, &healthy_errors);

    // Kill shard0.r1 mid-ingest. requests_per_replica is replica-major
    // (index = shard * rf + r), so the dead replica is slot 1.
    const int kDeadSlot = 0 * kRf + 1;
    eng.KillReplica(0, 1);
    const int64_t dead_requests_at_kill =
        eng.Stats().requests_per_replica[kDeadSlot];
    LatencyStats degraded;
    int64_t degraded_errors = 0;
    run_phase(kPhaseRequests, 202, &degraded, &degraded_errors);
    auto stats = eng.Stats();
    const int64_t dead_routed =
        stats.requests_per_replica[kDeadSlot] - dead_requests_at_kill;

    // Revive: the applier replays the delta log from the replica's pinned
    // consumer cursor until it reaches the primary watermark.
    WallTimer revive_timer;
    eng.ReviveReplica(0, 1);
    const bool caught_up = eng.AwaitReplicaCatchUp(0, 1, 30'000'000);
    const double revive_ms = revive_timer.ElapsedMillis();

    feed_done.store(true, std::memory_order_release);
    feeder.join();
    pipe.Flush();
    uint64_t max_lag = 0;
    for (int s = 0; s < kShards; ++s) {
      for (int r = 0; r < kRf; ++r) {
        eng.AwaitReplicaCatchUp(s, r, 30'000'000);
      }
    }
    stats = eng.Stats();
    for (const auto& rs : stats.replicas) {
      const uint64_t lag = stats.primary_watermark - rs.watermark;
      if (lag > max_lag) max_lag = lag;
    }

    std::printf("\n[replica groups] %d shards x %d replicas, live ingest, "
                "kill shard0.r1 mid-stream (%d requests/phase)\n",
                kShards, kRf, kPhaseRequests);
    std::printf("  %-28s p50 %7.3f ms  p99 %7.3f ms  errors %lld\n",
                "healthy", healthy.Percentile(50), healthy.Percentile(99),
                static_cast<long long>(healthy_errors));
    std::printf("  %-28s p50 %7.3f ms  p99 %7.3f ms  errors %lld  %s\n",
                "degraded (1 replica dead)", degraded.Percentile(50),
                degraded.Percentile(99),
                static_cast<long long>(degraded_errors),
                degraded_errors == 0 ? "(0 errors OK)" : "(errors!)");
    std::printf("  requests routed to dead replica after detection: %lld%s\n",
                static_cast<long long>(dead_routed),
                dead_routed == 0 ? "  (none OK)" : "  (leak!)");
    std::printf("  revive: caught up %s in %.1f ms (replayed to watermark "
                "%llu); final max replica lag %llu%s\n",
                caught_up ? "true" : "FALSE", revive_ms,
                static_cast<unsigned long long>(stats.primary_watermark),
                static_cast<unsigned long long>(max_lag),
                max_lag == 0 ? "  (lag 0 OK)" : "  (lag!)");
    std::printf("  stale-fallback reads %lld, killed-inflight failures %lld, "
                "dead replicas now %lld\n",
                static_cast<long long>(stats.stale_fallback_reads),
                static_cast<long long>(stats.killed_inflight_failures),
                static_cast<long long>(stats.dead_replicas));

    sink.Record("serving_healthy_p50_ms", healthy.Percentile(50));
    sink.Record("serving_healthy_p99_ms", healthy.Percentile(99));
    sink.Record("serving_degraded_p50_ms", degraded.Percentile(50));
    sink.Record("serving_degraded_p99_ms", degraded.Percentile(99));
    sink.Record("serving_degraded_errors",
                static_cast<double>(degraded_errors));
    sink.Record("dead_replica_requests_after_detection",
                static_cast<double>(dead_routed));
    sink.Record("revive_catchup_ms", revive_ms);
    sink.Record("replica_lag_after_revive", static_cast<double>(max_lag));

    pipe.Stop();
    // The engine's registry flattened into the artifact: per-replica
    // watermark-lag and queue-depth gauges plus their aggregates land under
    // "obs.engine." keys, so the CI trajectory carries replica health per
    // commit.
    obs::MetricsExporter::Flatten(
        reg.Snapshot(), [&sink](const std::string& key, double value) {
          sink.Record("obs." + key, value);
        });
  }

  if (!cfg.json_path.empty()) {
    if (!sink.WriteJson(cfg.json_path, cfg.smoke)) {
      std::printf("failed to write %s\n", cfg.json_path.c_str());
      return 1;
    }
    std::printf("\nmetrics written to %s\n", cfg.json_path.c_str());
  }
  return 0;
}

}  // namespace bench
}  // namespace zoomer

int main(int argc, char** argv) {
  zoomer::bench::BenchConfig cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      cfg.smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      cfg.json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json PATH]\n", argv[0]);
      return 2;
    }
  }
  return zoomer::bench::Run(cfg);
}
