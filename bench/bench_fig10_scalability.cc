// Reproduces Fig. 10: training time to reach AUC 0.6 as the graph scale
// grows, Zoomer vs GCE-GNN (paper protocol: sampling number 5, 2-layer
// multi-level attention).
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace zoomer;
  using namespace zoomer::bench;
  std::printf("Fig. 10: training time to AUC=0.6 vs graph scale\n");

  std::printf("\n%-24s %12s %12s\n", "Graph scale", "Zoomer(s)", "GCE-GNN(s)");
  PrintRule(52);
  for (auto scale : {GraphScale::kMillion, GraphScale::kHundredMillion,
                     GraphScale::kBillion}) {
    auto ds = data::GenerateTaobaoDataset(ScaleOptions(scale, 2022));
    std::printf("%-24s", ScaleName(scale));
    for (const char* name : {"Zoomer", "GCE-GNN"}) {
      baselines::ModelParams params;
      params.hidden_dim = 16;
      params.sample_k = 5;  // paper: sampling number 5
      params.num_hops = 2;
      params.seed = 5;
      auto model = baselines::MakeModel(name, &ds.graph, params);
      core::TrainOptions topt;
      topt.learning_rate = 0.01f;
      topt.batch_size = 128;
      topt.max_examples_per_epoch = 2000;
      core::ZoomerTrainer trainer(model.get(), topt);
      const double secs = trainer.TrainUntilAuc(ds, /*target_auc=*/0.6,
                                                /*max_epochs=*/8);
      std::printf(" %12.1f", secs);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\n(paper Fig. 10: cost grows with scale for both systems;\n"
              " Zoomer reaches the target faster at every scale, especially\n"
              " on the largest graph)\n");
  return 0;
}
