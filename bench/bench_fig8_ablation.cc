// Reproduces Fig. 8 (ablation study): test AUC of GCN, Zoomer-FE (semantic
// combination off), Zoomer-FS (edge reweighing off), Zoomer-ES (feature
// projection off), and full Zoomer across the three Taobao graph scales.
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace zoomer;
  using namespace zoomer::bench;
  std::printf("Fig. 8: ablation study of the multi-level attention levels\n");

  RunConfig cfg;
  cfg.params.hidden_dim = 16;
  cfg.params.sample_k = 10;
  cfg.params.num_hops = 2;
  cfg.params.seed = 5;
  cfg.train.epochs = 4;
  cfg.train.batch_size = 128;
  cfg.train.learning_rate = 0.01f;
  cfg.train.max_examples_per_epoch = 4000;
  cfg.eval_examples = 1500;

  const char* variants[] = {"GCN", "Zoomer-FE", "Zoomer-FS", "Zoomer-ES",
                            "Zoomer"};
  std::printf("\n%-24s", "Graph scale");
  for (const char* v : variants) std::printf(" %10s", v);
  std::printf("\n");
  PrintRule(80);
  for (auto scale : {GraphScale::kMillion, GraphScale::kHundredMillion,
                     GraphScale::kBillion}) {
    auto ds = data::GenerateTaobaoDataset(ScaleOptions(scale, 2022));
    std::printf("%-24s", ScaleName(scale));
    for (const char* v : variants) {
      auto r = TrainAndEval(v, ds, cfg);
      std::printf(" %10.3f", r.auc);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf(
      "\n(paper Fig. 8: every attention level adds AUC over GCN; removing\n"
      " semantic combination (-FE) hurts most; -ES gains the most from its\n"
      " remaining parts; larger graphs score lower under a fixed budget)\n");
  return 0;
}
