// Micro-benchmarks for the kernels the system design leans on (Sec. VI and
// DESIGN.md ablation list), now a plain main() program in the same style as
// the experiment benches. Reports
//   1. RNG draw cost: raw xoshiro word, the Lemire bounded draw vs the old
//      modulo reduction, and the 24-bit float draw,
//   2. alias-table draws: single Sample() vs the batched (auto-vectorized /
//      AVX2) SampleBatch() across table sizes, with a bit-identical parity
//      check between the two paths,
//   3. the headline batched-sampling number: SampleManyNeighbors() vs a
//      per-draw virtual SampleNeighbor() loop over the same node/draw
//      schedule at serving concurrency (8 threads), reported as
//      batched_vs_single_speedup (acceptance: >= 4x full run, >= 2x smoke
//      gate in CI),
//   4. ROI sampling: per-kind single-ego cost plus the frontier-at-once
//      RoiSampler::SampleBatch speedup over per-ego calls (this also feeds
//      the sampler.batch_* histograms that land in the obs. flatten),
//   5. the ported legacy kernels: MinHash signatures, relevance scorers,
//      attention forward/backward, PS pull/push, 3-stage pipeline overlap,
//      and
//   6. the full metrics-registry snapshot flattened under "obs." keys
//      (sampler.batch_size presence is CI-gated).
//
// Flags: --smoke shrinks every workload for a CI smoke run; --json PATH
// writes the headline metrics as a flat JSON object (BENCH_*.json artifact).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/roi_sampler.h"
#include "core/zoomer_model.h"
#include "graph/alias_table.h"
#include "graph/graph_view.h"
#include "graph/minhash.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "ps/parameter_server.h"
#include "streaming/dynamic_graph_view.h"
#include "streaming/dynamic_hetero_graph.h"
#include "streaming/graph_delta_log.h"
#include "tensor/tensor.h"

namespace zoomer {
namespace bench {
namespace {

using graph::NodeId;

struct BenchConfig {
  bool smoke = false;     // tiny iteration counts for the CI smoke run
  std::string json_path;  // "" = no JSON artifact
};

/// Flat (name, value) metric sink serialized as one JSON object; names use
/// unit suffixes so the artifact is self-describing.
class MetricSink {
 public:
  void Record(const std::string& name, double value) {
    metrics_.emplace_back(name, value);
  }
  bool WriteJson(const std::string& path, bool smoke) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\n  \"bench\": \"micro_kernels\",\n");
    std::fprintf(f, "  \"smoke\": %s", smoke ? "true" : "false");
    for (const auto& [name, value] : metrics_) {
      std::fprintf(f, ",\n  \"%s\": %.6g", name.c_str(), value);
    }
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    return true;
  }

 private:
  std::vector<std::pair<std::string, double>> metrics_;
};

int64_t g_sink = 0;  // defeat dead-code elimination across sections

}  // namespace

int Run(const BenchConfig& cfg) {
  std::printf("=== Micro-kernel benchmark%s ===\n", cfg.smoke ? " (smoke)" : "");
  MetricSink sink;
  const auto& ds_opt = ScaleOptions(GraphScale::kMillion, 3);
  auto ds = data::GenerateTaobaoDataset(ds_opt);
  std::printf("graph: %s\n", ds.graph.DebugString().c_str());

  // ---- 1. RNG ---------------------------------------------------------------
  {
    const int n = cfg.smoke ? (1 << 20) : (1 << 23);
    Rng rng(1);
    WallTimer t0;
    for (int i = 0; i < n; ++i) g_sink += static_cast<int64_t>(rng.NextUint64());
    const double next_ns = t0.ElapsedMicros() * 1000.0 / n;
    WallTimer t1;
    for (int i = 0; i < n; ++i) {
      g_sink += static_cast<int64_t>(rng.Uniform(1000003));
    }
    const double lemire_ns = t1.ElapsedMicros() * 1000.0 / n;
    // The old reduction for reference: a 64-bit divide per draw plus the
    // modulo bias the multiply-shift path eliminated.
    WallTimer t2;
    for (int i = 0; i < n; ++i) {
      g_sink += static_cast<int64_t>(rng.NextUint64() % 1000003u);
    }
    const double modulo_ns = t2.ElapsedMicros() * 1000.0 / n;
    WallTimer t3;
    for (int i = 0; i < n; ++i) {
      g_sink += static_cast<int64_t>(rng.UniformFloat() * 4.0f);
    }
    const double float_ns = t3.ElapsedMicros() * 1000.0 / n;
    std::printf("\n[rng] per-draw ns over %d draws\n", n);
    std::printf("  %-34s %8.2f\n", "NextUint64 (xoshiro256**)", next_ns);
    std::printf("  %-34s %8.2f\n", "Uniform(n) multiply-shift", lemire_ns);
    std::printf("  %-34s %8.2f  (%.2fx of multiply-shift)\n",
                "NextUint64 %% n (old reduction)", modulo_ns,
                modulo_ns / lemire_ns);
    std::printf("  %-34s %8.2f\n", "UniformFloat (24-bit)", float_ns);
    sink.Record("rng_next_ns", next_ns);
    sink.Record("rng_uniform_ns", lemire_ns);
    sink.Record("rng_modulo_ns", modulo_ns);
    sink.Record("rng_uniform_float_ns", float_ns);
  }

  // ---- 2. Alias table: single vs batched draws ------------------------------
  {
    std::printf("\n[alias] per-draw ns, single Sample() vs SampleBatch()\n");
    std::printf("  %-12s %10s %10s %9s\n", "table size", "single", "batched",
                "speedup");
    for (const int size : {64, 1024, 65536}) {
      Rng wrng(2);
      std::vector<double> weights(size);
      for (auto& w : weights) w = wrng.UniformDouble() + 0.01;
      graph::AliasTable table(weights);
      const int draws = cfg.smoke ? (1 << 19) : (1 << 22);
      Rng r1(3), r2(3);
      WallTimer ts;
      for (int i = 0; i < draws; ++i) {
        g_sink += static_cast<int64_t>(table.Sample(&r1));
      }
      const double single_ns = ts.ElapsedMicros() * 1000.0 / draws;
      std::vector<uint32_t> out(4096);
      WallTimer tb;
      for (int done = 0; done < draws; done += static_cast<int>(out.size())) {
        table.SampleBatch(&r2, {out.data(), out.size()});
        g_sink += out[0];
      }
      const double batch_ns_direct = tb.ElapsedMicros() * 1000.0 / draws;
      std::printf("  %-12d %10.2f %10.2f %8.2fx\n", size, single_ns,
                  batch_ns_direct, single_ns / batch_ns_direct);
      if (size == 1024) {
        sink.Record("alias_single_ns_1024", single_ns);
        sink.Record("alias_batch_ns_1024", batch_ns_direct);
        sink.Record("alias_batch_speedup_1024", single_ns / batch_ns_direct);
      }
      if (size == 65536) {
        sink.Record("alias_batch_speedup_65536",
                    single_ns / batch_ns_direct);
      }
    }
    // Parity: both paths must consume the RNG identically and land on the
    // same buckets (the CI gate also asserts this).
    graph::AliasTable table(std::vector<double>{1.0, 2.0, 0.5, 3.0, 0.25});
    Rng rs(11), rb(11);
    std::vector<uint32_t> got(1000);
    table.SampleBatch(&rb, {got.data(), got.size()});
    bool parity = true;
    for (uint32_t v : got) parity &= v < 5;
    for (size_t i = 0; i < got.size(); ++i) {
      parity &= got[i] == static_cast<uint32_t>(table.Sample(&rs));
    }
    parity &= rs.NextUint64() == rb.NextUint64();
    std::printf("  parity single==batched over 1000 draws: %s\n",
                parity ? "OK" : "MISMATCH");
    sink.Record("batched_single_parity", parity ? 1.0 : 0.0);
  }

  // ---- 3. Headline: batched vs single draws at serving concurrency ---------
  // Reproduces the serving hot path before/after this change over the
  // streaming graph. The single baseline is what OnlineServer::Handle paid
  // per request pre-batching: pin an epoch snapshot, then one virtual-ish
  // SampleNeighbor call per draw. The batched path is the current routing:
  // pin ONCE per 256-ego batch and push the whole frontier through
  // SampleManyNeighbors (prefetched rows, AliasTable::SampleBatch). Both run
  // the identical node/draw schedule on 8 threads.
  {
    streaming::DynamicHeteroGraph dyn(&ds.graph);
    Rng nrng(5);
    std::vector<NodeId> nodes;
    for (NodeId v = 0; v < ds.graph.num_nodes(); ++v) {
      if (ds.graph.degree(v) > 0) nodes.push_back(v);
    }
    nrng.Shuffle(&nodes);
    if (nodes.size() > 256) nodes.resize(256);
    // Fresh behavior on every served node: 4 delta edges each, so draws go
    // through the overlay (shard lock + visible-prefix resolution) — the
    // path the paper's freshness story serves from. Single-draw pays that
    // per draw; the batch amortizes it per node.
    {
      streaming::GraphDeltaLog log(1);
      std::vector<streaming::EdgeEvent> events;
      for (size_t r = 0; r < nodes.size(); ++r) {
        for (size_t e = 0; e < 4; ++e) {
          streaming::EdgeEvent ev;
          ev.src = nodes[r];
          ev.dst = nodes[(r + e + 1) % nodes.size()];  // distinct ids, no loop
          ev.weight = 1.0f + 0.25f * static_cast<float>(e);
          events.push_back(ev);
        }
      }
      streaming::DeltaBatch batch;
      batch.events = std::move(events);
      batch.epoch = log.Append(0, batch.events,
                               [&dyn](uint64_t e) { dyn.NoteEpochIssued(e); });
      ZCHECK(dyn.ApplyBatch(batch).ok());
    }
    const int k = 16;
    const int kThreads = 8;
    const int rounds = cfg.smoke ? 40 : 400;
    const double total_draws =
        static_cast<double>(kThreads) * rounds * nodes.size() * k;

    auto run_single = [&](int tid) {
      Rng rng(100 + tid);
      int64_t local = 0;
      for (int r = 0; r < rounds; ++r) {
        for (NodeId node : nodes) {
          // Per-request view construction (snapshot pin) + per-draw virtual
          // dispatch — the exact pre-batching serving shape.
          streaming::DynamicGraphView view(&dyn);
          const graph::GraphView& g = view;
          for (int j = 0; j < k; ++j) {
            local += g.SampleNeighbor(node, &rng);
          }
        }
      }
      g_sink += local;
    };
    auto run_batched = [&](int tid) {
      Rng rng(100 + tid);
      std::vector<NodeId> out;
      int64_t local = 0;
      for (int r = 0; r < rounds; ++r) {
        streaming::DynamicGraphView view(&dyn);  // one pin per batch
        const graph::GraphView& g = view;
        g.SampleManyNeighbors({nodes.data(), nodes.size()}, k, &rng, &out);
        local += out[0];
      }
      g_sink += local;
    };
    auto timed = [&](auto fn) {
      std::vector<std::thread> threads;
      threads.reserve(kThreads);
      WallTimer t;
      for (int i = 0; i < kThreads; ++i) threads.emplace_back(fn, i);
      for (auto& th : threads) th.join();
      return t.ElapsedSeconds();
    };
    const double single_s = timed(run_single);
    const double batched_s = timed(run_batched);
    const double single_qps = total_draws / single_s;
    const double batched_qps = total_draws / batched_s;
    const double speedup = single_s / batched_s;

    // Parity on this schedule: one snapshot, same seed, draw for draw.
    auto snap = dyn.MakeSnapshot();
    Rng pr1(100), pr2(100);
    std::vector<NodeId> batch_out;
    snap.SampleManyNeighbors({nodes.data(), nodes.size()}, k, &pr2,
                             &batch_out);
    bool parity = true;
    for (size_t i = 0; i < nodes.size(); ++i) {
      for (int j = 0; j < k; ++j) {
        parity &= batch_out[i * k + j] == snap.SampleNeighbor(nodes[i], &pr1);
      }
    }

    // Secondary: the same schedule on the immutable CSR (no snapshot or
    // lock traffic on either side — isolates prefetch + SampleBatch).
    graph::CsrGraphView view(ds.graph);
    auto static_single = [&](int tid) {
      Rng rng(100 + tid);
      int64_t local = 0;
      for (int r = 0; r < rounds; ++r) {
        for (NodeId node : nodes) {
          for (int j = 0; j < k; ++j) local += view.SampleNeighbor(node, &rng);
        }
      }
      g_sink += local;
    };
    auto static_batched = [&](int tid) {
      Rng rng(100 + tid);
      std::vector<NodeId> out;
      int64_t local = 0;
      for (int r = 0; r < rounds; ++r) {
        view.SampleManyNeighbors({nodes.data(), nodes.size()}, k, &rng, &out);
        local += out[0];
      }
      g_sink += local;
    };
    const double sstatic_s = timed(static_single);
    const double bstatic_s = timed(static_batched);

    std::printf(
        "\n[batched sampling] %zu nodes x %d draws x %d rounds x %d threads\n",
        nodes.size(), k, rounds, kThreads);
    std::printf("  %-40s %10.2f Mdraws/s\n",
                "serving: pin + per-draw SampleNeighbor", single_qps / 1e6);
    std::printf("  %-40s %10.2f Mdraws/s\n",
                "serving: pin-once + SampleManyNeighbors", batched_qps / 1e6);
    std::printf("  %-40s %9.2fx  %s  (parity %s)\n", "batched vs single",
                speedup, speedup >= (cfg.smoke ? 2.0 : 4.0) ? "(OK)" : "(LOW!)",
                parity ? "OK" : "MISMATCH");
    std::printf("  %-40s %9.2fx\n", "static CSR batched vs single",
                sstatic_s / bstatic_s);
    if (std::thread::hardware_concurrency() < static_cast<unsigned>(kThreads)) {
      std::printf(
          "  note: %u hardware threads hosting %d workers — the single "
          "path's per-draw lock/atomic contention (what batching removes) "
          "is understated on this machine.\n",
          std::thread::hardware_concurrency(), kThreads);
    }
    sink.Record("single_draws_per_sec", single_qps);
    sink.Record("batched_draws_per_sec", batched_qps);
    sink.Record("batched_vs_single_speedup", speedup);
    sink.Record("batched_many_parity", parity ? 1.0 : 0.0);
    sink.Record("static_batched_vs_single_speedup", sstatic_s / bstatic_s);
  }

  // ---- 4. ROI sampling: per-kind cost + frontier-at-once batch --------------
  {
    core::RoiSamplerOptions opt;
    opt.k = 10;
    opt.num_hops = 2;
    const char* kNames[] = {"focal-topk", "uniform", "weighted", "random-walk"};
    std::printf("\n[roi] single-ego Sample() per-op micros\n");
    const int iters = cfg.smoke ? 200 : 2000;
    Rng rng(4);
    for (int kind = 0; kind < 4; ++kind) {
      opt.kind = static_cast<core::SamplerKind>(kind);
      core::RoiSampler sampler(opt);
      auto fc = sampler.FocalVector(ds.graph,
                                    {ds.train[0].user, ds.train[0].query});
      WallTimer t;
      for (int i = 0; i < iters; ++i) {
        g_sink += sampler.Sample(ds.graph, ds.train[0].user, fc, &rng).size();
      }
      const double us = t.ElapsedMicros() / iters;
      std::printf("  %-34s %10.2f\n", kNames[kind], us);
      sink.Record(std::string("roi_sample_us_") + kNames[kind], us);
    }

    // Frontier-at-once batch vs per-ego loop (focal-top-k, the serving
    // default): shared scratch + shared relevance memo across egos. Also
    // populates the sampler.batch_size / sampler.batch_latency_us
    // histograms the obs flatten below carries into the artifact.
    opt.kind = core::SamplerKind::kFocalTopK;
    core::RoiSampler sampler(opt);
    auto fc = sampler.FocalVector(ds.graph,
                                  {ds.train[0].user, ds.train[0].query});
    std::vector<NodeId> egos;
    for (const auto& ex : ds.train) {
      egos.push_back(ex.user);
      if (egos.size() >= 64) break;
    }
    const int broounds = cfg.smoke ? 20 : 200;
    WallTimer tl;
    for (int r = 0; r < broounds; ++r) {
      for (NodeId ego : egos) {
        g_sink += sampler.Sample(ds.graph, ego, fc, &rng).size();
      }
    }
    const double loop_us = tl.ElapsedMicros() / (broounds * egos.size());
    WallTimer tb;
    for (int r = 0; r < broounds; ++r) {
      auto rois =
          sampler.SampleBatch(ds.graph, {egos.data(), egos.size()}, fc, &rng);
      g_sink += rois[0].size();
    }
    const double batch_us = tb.ElapsedMicros() / (broounds * egos.size());
    std::printf("  %-34s %10.2f -> %8.2f per ego  %6.2fx\n",
                "SampleBatch, 64 egos (focal-topk)", loop_us, batch_us,
                loop_us / batch_us);
    sink.Record("roi_batch_us_per_ego", batch_us);
    sink.Record("roi_batch_speedup", loop_us / batch_us);
  }

  // ---- 5. Ported legacy kernels ---------------------------------------------
  {
    // MinHash signature.
    graph::MinHasher hasher(32);
    Rng rng(6);
    std::vector<uint64_t> set(64);
    for (auto& t : set) t = rng.NextUint64();
    const int iters = cfg.smoke ? 2000 : 20000;
    WallTimer tm;
    for (int i = 0; i < iters; ++i) g_sink += hasher.Signature(set)[0];
    const double minhash_us = tm.ElapsedMicros() / iters;
    sink.Record("minhash_signature_us_64", minhash_us);

    // Relevance scorers.
    std::vector<float> a(64), b(64);
    for (auto& x : a) x = rng.UniformFloat();
    for (auto& x : b) x = rng.UniformFloat();
    std::printf("\n[kernels] minhash sig(64 tokens) %.2f us\n", minhash_us);
    for (int kind = 0; kind < 3; ++kind) {
      auto scorer =
          core::MakeRelevanceScorer(static_cast<core::RelevanceKind>(kind));
      const int n = cfg.smoke ? (1 << 18) : (1 << 21);
      WallTimer t;
      float acc = 0.0f;
      for (int i = 0; i < n; ++i) acc += scorer->Score(a.data(), b.data(), 64);
      g_sink += static_cast<int64_t>(acc);
      const double ns = t.ElapsedMicros() * 1000.0 / n;
      std::printf("[kernels] relevance %-10s dim64: %.2f ns\n",
                  scorer->name().c_str(), ns);
      sink.Record("relevance_" + scorer->name() + "_ns", ns);
    }

    // Attention forward/backward through the model.
    core::ZoomerConfig mcfg;
    mcfg.hidden_dim = 16;
    mcfg.sampler.k = 10;
    core::ZoomerModel model(&ds.graph, mcfg);
    const int steps = cfg.smoke ? 20 : 200;
    WallTimer tz;
    for (int i = 0; i < steps; ++i) {
      auto loss = FocalBceWithLogits(
          model.ScoreLogit(ds.train[i % ds.train.size()], &rng),
          tensor::Tensor::Scalar(1.0f));
      loss.Backward();
    }
    const double fwdbwd_ms = tz.ElapsedMillis() / steps;
    std::printf("[kernels] zoomer forward+backward (k=10): %.2f ms\n",
                fwdbwd_ms);
    sink.Record("zoomer_fwdbwd_ms", fwdbwd_ms);

    // MatMul.
    auto ta = tensor::Tensor::Randn(128, 128, &rng, 1.0f);
    auto tb2 = tensor::Tensor::Randn(128, 128, &rng, 1.0f);
    const int mm = cfg.smoke ? 10 : 100;
    WallTimer tmm;
    for (int i = 0; i < mm; ++i) g_sink += MatMul(ta, tb2).size();
    const double matmul_ms = tmm.ElapsedMillis() / mm;
    std::printf("[kernels] matmul 128x128: %.2f ms\n", matmul_ms);
    sink.Record("matmul_128_ms", matmul_ms);

    // PS pull/push.
    ps::ParameterServerOptions popt;
    popt.num_shards = 4;
    popt.table.dim = 16;
    ps::ParameterServer server(popt);
    std::vector<float> buf;
    const int ops = cfg.smoke ? 500 : 5000;
    WallTimer tp;
    for (int i = 0; i < ops; ++i) {
      std::vector<ps::Key> keys;
      for (int j = 0; j < 32; ++j) {
        keys.push_back(static_cast<ps::Key>(rng.Uniform(10000)));
      }
      server.Pull(keys, &buf);
      server.PushAsync(keys, std::vector<float>(keys.size() * 16, 0.01f));
    }
    server.Flush();
    const double ps_us = tp.ElapsedMicros() / ops;
    std::printf("[kernels] ps pull+push (32 keys, dim 16): %.2f us\n", ps_us);
    sink.Record("ps_pullpush_us", ps_us);

    // 3-stage pipeline overlap.
    auto stage = [](int64_t) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    };
    ps::AsyncPipeline pipeline(stage, stage, stage);
    WallTimer tseq;
    pipeline.Run(20, /*overlap=*/false);
    const double seq_ms = tseq.ElapsedMillis();
    WallTimer tov;
    pipeline.Run(20, /*overlap=*/true);
    const double ov_ms = tov.ElapsedMillis();
    std::printf("[kernels] 3-stage pipeline 20 items: %.1f ms sequential, "
                "%.1f ms overlapped (%.2fx)\n",
                seq_ms, ov_ms, seq_ms / ov_ms);
    sink.Record("pipeline_overlap_speedup", seq_ms / ov_ms);
  }

  // ---- 6. Registry flatten --------------------------------------------------
  obs::MetricsExporter::Flatten(
      obs::MetricsRegistry::Global()->Snapshot(),
      [&sink](const std::string& key, double value) {
        sink.Record("obs." + key, value);
      });

  if (g_sink == 42) std::printf(" ");
  if (!cfg.json_path.empty()) {
    if (!sink.WriteJson(cfg.json_path, cfg.smoke)) {
      std::printf("failed to write %s\n", cfg.json_path.c_str());
      return 1;
    }
    std::printf("\nmetrics written to %s\n", cfg.json_path.c_str());
  }
  return 0;
}

}  // namespace bench
}  // namespace zoomer

int main(int argc, char** argv) {
  zoomer::bench::BenchConfig cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      cfg.smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      cfg.json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json PATH]\n", argv[0]);
      return 2;
    }
  }
  return zoomer::bench::Run(cfg);
}
