// Micro-benchmarks (google-benchmark) for the kernels the system design
// leans on (Sec. VI and DESIGN.md ablation list): alias-table sampling,
// MinHash signatures, relevance scorers, ROI sampling strategies, attention
// forward/backward, PS pull/push, and the 3-stage pipeline overlap.
#include <benchmark/benchmark.h>

#include <thread>

#include "bench/bench_util.h"
#include "core/roi_sampler.h"
#include "core/zoomer_model.h"
#include "graph/alias_table.h"
#include "graph/minhash.h"
#include "ps/parameter_server.h"
#include "tensor/tensor.h"

namespace zoomer {
namespace {

const data::RetrievalDataset& Dataset() {
  static const auto* ds = new data::RetrievalDataset(
      data::GenerateTaobaoDataset(bench::ScaleOptions(
          bench::GraphScale::kMillion, 3)));
  return *ds;
}

void BM_AliasTableSample(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<double> weights(n);
  for (auto& w : weights) w = rng.UniformDouble() + 0.01;
  graph::AliasTable table(weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Sample(&rng));
  }
}
BENCHMARK(BM_AliasTableSample)->Arg(8)->Arg(64)->Arg(1024)->Arg(65536);

void BM_MinHashSignature(benchmark::State& state) {
  const int tokens = static_cast<int>(state.range(0));
  graph::MinHasher hasher(32);
  Rng rng(2);
  std::vector<uint64_t> set(tokens);
  for (auto& t : set) t = rng.NextUint64();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hasher.Signature(set));
  }
}
BENCHMARK(BM_MinHashSignature)->Arg(8)->Arg(64)->Arg(512);

void BM_RelevanceScorer(benchmark::State& state) {
  const auto kind = static_cast<core::RelevanceKind>(state.range(0));
  auto scorer = core::MakeRelevanceScorer(kind);
  Rng rng(3);
  std::vector<float> a(64), b(64);
  for (auto& x : a) x = rng.UniformFloat();
  for (auto& x : b) x = rng.UniformFloat();
  for (auto _ : state) {
    benchmark::DoNotOptimize(scorer->Score(a.data(), b.data(), 64));
  }
  state.SetLabel(scorer->name());
}
BENCHMARK(BM_RelevanceScorer)->Arg(0)->Arg(1)->Arg(2);

void BM_RoiSample(benchmark::State& state) {
  const auto& ds = Dataset();
  core::RoiSamplerOptions opt;
  opt.k = 10;
  opt.num_hops = 2;
  opt.kind = static_cast<core::SamplerKind>(state.range(0));
  core::RoiSampler sampler(opt);
  Rng rng(4);
  auto fc = sampler.FocalVector(ds.graph, {ds.train[0].user,
                                           ds.train[0].query});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sampler.Sample(ds.graph, ds.train[0].user, fc, &rng));
  }
  static const char* kNames[] = {"focal-topk", "uniform", "weighted",
                                 "random-walk"};
  state.SetLabel(kNames[state.range(0)]);
}
BENCHMARK(BM_RoiSample)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_TensorMatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(5);
  auto a = tensor::Tensor::Randn(n, n, &rng, 1.0f);
  auto b = tensor::Tensor::Randn(n, n, &rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
}
BENCHMARK(BM_TensorMatMul)->Arg(16)->Arg(64)->Arg(128);

void BM_ZoomerForwardBackward(benchmark::State& state) {
  const auto& ds = Dataset();
  core::ZoomerConfig cfg;
  cfg.hidden_dim = 16;
  cfg.sampler.k = static_cast<int>(state.range(0));
  core::ZoomerModel model(&ds.graph, cfg);
  Rng rng(6);
  size_t i = 0;
  for (auto _ : state) {
    auto loss = FocalBceWithLogits(
        model.ScoreLogit(ds.train[i % ds.train.size()], &rng),
        tensor::Tensor::Scalar(1.0f));
    loss.Backward();
    ++i;
  }
}
BENCHMARK(BM_ZoomerForwardBackward)->Arg(5)->Arg(10)->Arg(20);

void BM_PsPullPush(benchmark::State& state) {
  ps::ParameterServerOptions opt;
  opt.num_shards = 4;
  opt.table.dim = 16;
  ps::ParameterServer server(opt);
  Rng rng(7);
  std::vector<float> buf;
  for (auto _ : state) {
    std::vector<ps::Key> keys;
    for (int i = 0; i < 32; ++i) {
      keys.push_back(static_cast<ps::Key>(rng.Uniform(10000)));
    }
    server.Pull(keys, &buf);
    server.PushAsync(keys, std::vector<float>(keys.size() * 16, 0.01f));
  }
  server.Flush();
}
BENCHMARK(BM_PsPullPush);

void BM_PipelineOverlap(benchmark::State& state) {
  const bool overlap = state.range(0) != 0;
  auto stage = [](int64_t) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  };
  ps::AsyncPipeline pipeline(stage, stage, stage);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.Run(20, overlap));
  }
  state.SetLabel(overlap ? "3-stage-overlap" : "sequential");
}
BENCHMARK(BM_PipelineOverlap)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace zoomer

BENCHMARK_MAIN();
