// Reproduces Fig. 12: efficiency versus effectiveness. All baselines with
// self-developed samplers reduce the graph with sampling number 30; Zoomer
// additionally shrinks the processed neighborhood to ~1/10 of that scale via
// its focal-biased ROI (Sec. VII-E offline measurement). Reports AUC and
// training time relative to Zoomer.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

int main() {
  using namespace zoomer;
  using namespace zoomer::bench;
  std::printf("Fig. 12: efficiency vs effectiveness (sampler budget 30,\n"
              "         Zoomer ROI downscaled to 1/10)\n");

  auto ds = data::GenerateTaobaoDataset(ScaleOptions(GraphScale::kMillion, 2022));
  std::printf("graph: %s\n", ds.graph.DebugString().c_str());

  struct Row {
    std::string name;
    double auc;
    double seconds;
  };
  std::vector<Row> rows;
  for (const auto& name : baselines::SamplerBaselineNames()) {
    RunConfig cfg;
    cfg.params.hidden_dim = 16;
    // Baselines reduce with K=30; Zoomer's ROI is one tenth of that.
    cfg.params.sample_k = (name == "Zoomer") ? 3 : 30;
    cfg.params.num_hops = 2;
    cfg.params.seed = 5;
    cfg.train.epochs = 1;
    cfg.train.learning_rate = 0.01f;
    cfg.train.batch_size = 128;
    cfg.train.max_examples_per_epoch = 1800;
    cfg.eval_examples = 1200;
    auto r = TrainAndEval(name, ds, cfg);
    rows.push_back({r.name, r.auc, r.train_seconds});
    std::fprintf(stderr, "done %s\n", name.c_str());
  }
  double zoomer_time = 1.0;
  for (const auto& r : rows) {
    if (r.name == "Zoomer") zoomer_time = r.seconds;
  }
  std::printf("\n%-12s %8s %12s %16s\n", "Model", "AUC", "train(s)",
              "rel. time (x)");
  PrintRule(54);
  for (const auto& r : rows) {
    std::printf("%-12s %8.3f %12.1f %15.1fx\n", r.name.c_str(), r.auc,
                r.seconds, r.seconds / zoomer_time);
  }
  std::printf("\n(paper Fig. 12: Zoomer 1.0x with the best AUC; baselines\n"
              " 5.8x-14.2x slower at equal-or-lower AUC. Pixie trains no\n"
              " parameters, so its time reflects walk-based scoring only --\n"
              " its AUC, not its time, is the comparable quantity)\n");
  return 0;
}
