// Reproduces Fig. 11: effect of the per-node sampling number K on test AUC
// for the five methods with self-developed samplers (Zoomer, GraphSage,
// Pixie, PinnerSage, PinSage).
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace zoomer;
  using namespace zoomer::bench;
  std::printf("Fig. 11: AUC vs number of neighbors sampled (K)\n");

  auto ds = data::GenerateTaobaoDataset(ScaleOptions(GraphScale::kMillion, 2022));
  std::printf("graph: %s\n", ds.graph.DebugString().c_str());

  auto names = baselines::SamplerBaselineNames();
  std::printf("\n%4s", "K");
  for (const auto& n : names) std::printf(" %11s", n.c_str());
  std::printf("\n");
  PrintRule(66);
  for (int k : {5, 10, 15, 20, 25, 30}) {
    std::printf("%4d", k);
    for (const auto& name : names) {
      RunConfig cfg;
      cfg.params.hidden_dim = 16;
      cfg.params.sample_k = k;
      cfg.params.num_hops = 2;
      cfg.params.seed = 5;
      cfg.train.epochs = 3;
      cfg.train.learning_rate = 0.01f;
      cfg.train.batch_size = 128;
      cfg.train.max_examples_per_epoch = 2500;
      cfg.eval_examples = 1500;
      auto r = TrainAndEval(name, ds, cfg);
      std::printf(" %11.3f", r.auc);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\n(paper Fig. 11: Zoomer leads at every K with the largest\n"
              " margin at small K -- the focal-biased sampler finds a more\n"
              " informative subgraph under a tight budget; K=25 can beat\n"
              " K=30, echoing information overload)\n");
  return 0;
}
