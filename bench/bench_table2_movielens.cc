// Reproduces Table II: AUC / MAE / RMSE on the MovieLens-like benchmark for
// the GNN baselines without heuristic samplers (GCE-GNN, FGNN, STAMP, MCCF,
// HAN) and Zoomer. Paper protocol (Sec. VII-A/B): 80/20 split, 1-hop
// aggregation on MovieLens.
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace zoomer;
  using namespace zoomer::bench;
  std::printf("Table II: Zoomer benchmarking results on MovieLens-like data\n");

  data::MovieLensGeneratorOptions opt;
  opt.num_users = 500;
  opt.num_tags = 48;
  opt.num_movies = 900;
  opt.num_genres = 10;
  // Long, noisy rating histories: a third of ratings fall outside the
  // user's preferred genres (the information-overload condition Zoomer's
  // focal filtering targets; real MovieLens histories are similarly mixed).
  opt.ratings_per_user = 28;
  opt.p_rate_in_genre = 0.65;
  opt.seed = 2022;
  auto ds = data::GenerateMovieLensDataset(opt);
  std::printf("graph: %s\n", ds.graph.DebugString().c_str());

  RunConfig cfg;
  cfg.params.hidden_dim = 16;
  cfg.params.sample_k = 12;
  cfg.params.num_hops = 1;  // paper: 1-hop on MovieLens
  cfg.params.seed = 5;
  cfg.train.epochs = 4;
  cfg.train.batch_size = 128;
  cfg.train.learning_rate = 0.01f;
  cfg.train.max_examples_per_epoch = 5000;
  cfg.eval_examples = 2000;

  std::printf("\n%-10s %8s %8s %8s %10s\n", "Model", "AUC", "MAE", "RMSE",
              "train(s)");
  PrintRule(50);
  for (const char* name :
       {"GCE-GNN", "FGNN", "STAMP", "MCCF", "HAN", "Zoomer"}) {
    auto r = TrainAndEval(name, ds, cfg);
    std::printf("%-10s %8.2f %8.4f %8.4f %10.1f\n", r.name.c_str(),
                r.auc * 100.0, r.mae, r.rmse, r.train_seconds);
  }
  std::printf("\n(paper Table II: Zoomer 93.79 AUC beats best baseline by ~2\n"
              " points; expect Zoomer to lead AUC here as well)\n");
  return 0;
}
