// Reproduces Table III: AUC and HitRate@{100,200,300} on the Taobao-like
// industry graph for all nine baselines and Zoomer. Paper protocol
// (Sec. VII-A): 2-hop aggregation, sampling 10 neighbors per layer, 90/10
// split.
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace zoomer;
  using namespace zoomer::bench;
  std::printf(
      "Table III: AUC and HitRate for Zoomer and baselines (Taobao-like)\n");

  auto opt = ScaleOptions(GraphScale::kMillion, /*seed=*/2022);
  auto ds = data::GenerateTaobaoDataset(opt);
  std::printf("graph: %s\n", ds.graph.DebugString().c_str());

  RunConfig cfg;
  cfg.params.hidden_dim = 16;
  cfg.params.sample_k = 10;
  cfg.params.num_hops = 2;
  cfg.params.seed = 5;
  cfg.train.epochs = 4;
  cfg.train.batch_size = 128;
  cfg.train.learning_rate = 0.01f;
  cfg.train.max_examples_per_epoch = 4000;
  cfg.eval_examples = 1500;
  cfg.hitrate_positives = 120;

  std::printf("\n%-11s %7s %12s %12s %12s %9s\n", "Model", "AUC",
              "Hitrate@100", "Hitrate@200", "Hitrate@300", "train(s)");
  PrintRule(70);
  for (const char* name : {"GCE-GNN", "FGNN", "STAMP", "MCCF", "HAN",
                           "PinSage", "GraphSage", "PinnerSage", "Pixie",
                           "Zoomer"}) {
    auto r = TrainAndEval(name, ds, cfg);
    std::printf("%-11s %7.1f %12.2f %12.2f %12.2f %9.1f\n", r.name.c_str(),
                r.auc * 100.0, r.hitrate[0], r.hitrate[1], r.hitrate[2],
                r.train_seconds);
  }
  std::printf("\n(paper Table III: Zoomer 72.4 AUC, 0.35/0.48/0.58 hitrates,\n"
              " leading every baseline; expect the same ordering here)\n");
  return 0;
}
