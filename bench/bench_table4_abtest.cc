// Reproduces Table IV (production A/B test): one retrieval channel of a
// multi-channel search stack runs the control model (PinSage, as deployed in
// the paper's baseline channel); the treatment substitutes that channel with
// Zoomer while all other channels stay unchanged. Simulated users click
// according to the planted relevance model; sponsored items carry per-item
// bids, yielding CTR / PPC / RPM exactly as defined in Sec. VII-A.
#include <cmath>
#include <cstdio>
#include <memory>
#include <set>

#include "bench/bench_util.h"
#include "eval/metrics.h"

namespace zoomer {
namespace bench {
namespace {

// Probability that `user` clicks `item` under `query`: driven by the latent
// category structure the generator planted (ground truth, model-independent).
double ClickProbability(const data::RetrievalDataset& ds, graph::NodeId user,
                        graph::NodeId query, graph::NodeId item) {
  const int d = ds.graph.content_dim();
  auto cosine = [&](graph::NodeId a, graph::NodeId b) {
    const float* x = ds.graph.content(a);
    const float* y = ds.graph.content(b);
    double dot = 0, nx = 0, ny = 0;
    for (int i = 0; i < d; ++i) {
      dot += static_cast<double>(x[i]) * y[i];
      nx += static_cast<double>(x[i]) * x[i];
      ny += static_cast<double>(y[i]) * y[i];
    }
    return dot / (std::sqrt(nx) * std::sqrt(ny) + 1e-12);
  };
  const double rel = 0.7 * cosine(query, item) + 0.3 * cosine(user, item);
  const bool same_cat = ds.category[query] == ds.category[item];
  const double logit = 4.0 * rel + (same_cat ? 1.0 : -1.5);
  return 1.0 / (1.0 + std::exp(-logit));
}

struct Channel {
  std::string name;
  core::ScoringModel* model = nullptr;  // nullptr = random channel
};

// Retrieves top-n items per channel and merges (dedup).
std::vector<graph::NodeId> Retrieve(const data::RetrievalDataset& ds,
                                    const std::vector<Channel>& channels,
                                    graph::NodeId user, graph::NodeId query,
                                    int per_channel, Rng* rng) {
  std::set<graph::NodeId> merged;
  for (const auto& ch : channels) {
    if (ch.model == nullptr) {
      for (int i = 0; i < per_channel; ++i) {
        merged.insert(ds.all_items[rng->Uniform(ds.all_items.size())]);
      }
      continue;
    }
    std::vector<float> scores;
    ch.model->ScorePool(user, query, ds.all_items, rng, &scores);
    std::vector<std::pair<float, graph::NodeId>> ranked;
    for (size_t i = 0; i < scores.size(); ++i) {
      ranked.emplace_back(scores[i], ds.all_items[i]);
    }
    std::partial_sort(ranked.begin(), ranked.begin() + per_channel,
                      ranked.end(), std::greater<>());
    for (int i = 0; i < per_channel; ++i) merged.insert(ranked[i].second);
  }
  return {merged.begin(), merged.end()};
}

eval::OnlineMetrics SimulateTraffic(const data::RetrievalDataset& ds,
                                    const std::vector<Channel>& channels,
                                    const std::vector<double>& bids,
                                    int num_requests, uint64_t seed) {
  eval::OnlineMetrics metrics;
  Rng rng(seed);
  for (int r = 0; r < num_requests; ++r) {
    const auto& rec = ds.log[ds.log.size() - 1 - rng.Uniform(ds.log.size() / 10)];
    auto items = Retrieve(ds, channels, rec.user, rec.query, 8, &rng);
    for (auto item : items) {
      metrics.impressions += 1;
      const double p = ClickProbability(ds, rec.user, rec.query, item);
      if (rng.Bernoulli(p)) {
        metrics.clicks += 1;
        metrics.revenue += bids[item];  // paid per click
      }
    }
  }
  return metrics;
}

}  // namespace
}  // namespace bench
}  // namespace zoomer

int main() {
  using namespace zoomer;
  using namespace zoomer::bench;
  std::printf("Table IV: simulated production A/B test (CTR / PPC / RPM)\n");

  auto ds = data::GenerateTaobaoDataset(ScaleOptions(GraphScale::kMillion, 9));
  std::printf("graph: %s\n", ds.graph.DebugString().c_str());

  // Per-item click bids (sponsored items).
  Rng bid_rng(77);
  std::vector<double> bids(ds.graph.num_nodes(), 0.0);
  for (auto item : ds.all_items) bids[item] = 0.2 + bid_rng.UniformDouble();

  RunConfig cfg;
  cfg.params.hidden_dim = 16;
  cfg.params.sample_k = 8;
  cfg.params.seed = 5;
  cfg.train.epochs = 2;
  cfg.train.learning_rate = 0.01f;
  cfg.train.max_examples_per_epoch = 3000;

  std::printf("training control channel model (PinSage)...\n");
  auto pinsage = baselines::MakeModel("PinSage", &ds.graph, cfg.params);
  {
    core::ZoomerTrainer t(pinsage.get(), cfg.train);
    t.Train(ds);
  }
  std::printf("training treatment channel model (Zoomer)...\n");
  auto zoomer_model = baselines::MakeModel("Zoomer", &ds.graph, cfg.params);
  {
    core::ZoomerTrainer t(zoomer_model.get(), cfg.train);
    t.Train(ds);
  }

  // Multi-channel stack: two static channels + the experimental channel.
  std::vector<Channel> control = {{"random-recall", nullptr},
                                  {"random-recall-2", nullptr},
                                  {"pinsage-channel", pinsage.get()}};
  std::vector<Channel> treatment = {{"random-recall", nullptr},
                                    {"random-recall-2", nullptr},
                                    {"zoomer-channel", zoomer_model.get()}};

  const int requests = 400;  // 4% bucket of simulated search traffic
  auto m_control = SimulateTraffic(ds, control, bids, requests, 100);
  auto m_treat = SimulateTraffic(ds, treatment, bids, requests, 100);

  std::printf("\n%-12s %12s %12s %12s\n", "", "CTR", "PPC", "RPM");
  PrintRule(52);
  std::printf("%-12s %12.4f %12.4f %12.2f\n", "control", m_control.Ctr(),
              m_control.Ppc(), m_control.Rpm());
  std::printf("%-12s %12.4f %12.4f %12.2f\n", "treatment", m_treat.Ctr(),
              m_treat.Ppc(), m_treat.Rpm());
  std::printf("%-12s %+11.3f%% %+11.3f%% %+11.3f%%\n", "lift",
              eval::LiftPercent(m_treat.Ctr(), m_control.Ctr()),
              eval::LiftPercent(m_treat.Ppc(), m_control.Ppc()),
              eval::LiftPercent(m_treat.Rpm(), m_control.Rpm()));
  std::printf("\n(paper Table IV: CTR +0.295%%, PPC +1.347%%, RPM +0.646%% --\n"
              " direction of the lift is the reproducible claim)\n");
  return 0;
}
