// Online serving pipeline (paper Sec. VI): train Zoomer offline, export the
// embeddings, build the ANN inverted index and neighbor caches, then serve
// live requests under load and report latency percentiles.
//
//   $ ./examples/online_serving
#include <cstdio>

#include "core/trainer.h"
#include "core/zoomer_model.h"
#include "data/taobao_generator.h"
#include "serving/online_server.h"

int main() {
  using namespace zoomer;

  data::TaobaoGeneratorOptions gen;
  gen.num_users = 200;
  gen.num_queries = 100;
  gen.num_items = 400;
  gen.num_sessions = 1500;
  gen.seed = 5;
  auto ds = data::GenerateTaobaoDataset(gen);

  // Offline: train the model briefly.
  core::ZoomerConfig cfg;
  cfg.hidden_dim = 16;
  cfg.sampler.k = 8;
  core::ZoomerModel model(&ds.graph, cfg);
  core::TrainOptions topt;
  topt.epochs = 1;
  topt.learning_rate = 0.01f;
  topt.max_examples_per_epoch = 2000;
  core::ZoomerTrainer trainer(&model, topt);
  std::printf("offline training...\n");
  trainer.Train(ds);

  // Export: node embeddings for users/queries (trained inference path) and
  // item-tower embeddings for the ANN index.
  std::printf("exporting embeddings + building inverted index...\n");
  Rng rng(9);
  const int d = cfg.hidden_dim;
  std::vector<float> node_emb(ds.graph.num_nodes() * d, 0.0f);
  for (graph::NodeId v = 0; v < ds.graph.num_nodes(); ++v) {
    std::vector<float> e;
    if (ds.graph.node_type(v) == graph::NodeType::kItem) {
      e = model.ItemEmbeddingInference(v);
    } else {
      // User/query nodes: self-focal embedding export.
      auto t = model.EgoEmbedding(v, v, v, &rng);
      e.assign(t.data(), t.data() + d);
    }
    std::copy(e.begin(), e.end(), node_emb.begin() + v * d);
  }
  std::vector<float> item_emb(ds.all_items.size() * d);
  for (size_t i = 0; i < ds.all_items.size(); ++i) {
    std::copy(node_emb.begin() + ds.all_items[i] * d,
              node_emb.begin() + (ds.all_items[i] + 1) * d,
              item_emb.begin() + static_cast<int64_t>(i) * d);
  }

  serving::OnlineServerOptions sopt;
  sopt.embedding_dim = d;
  sopt.top_n = 20;
  sopt.cache.k = 30;
  serving::OnlineServer server(&ds.graph, sopt, std::move(node_emb),
                               ds.all_items, item_emb);

  // Warm the neighbor caches and serve one request end to end.
  std::vector<serving::ServingRequest> pool;
  std::vector<graph::NodeId> warm;
  for (size_t i = 0; i < 100 && i < ds.test.size(); ++i) {
    pool.push_back({ds.test[i].user, ds.test[i].query});
    warm.push_back(ds.test[i].user);
    warm.push_back(ds.test[i].query);
  }
  server.WarmCache(warm);

  auto resp = server.Handle(pool[0]);
  std::printf("request (u%lld, q%lld) served in %.3f ms; top items:",
              static_cast<long long>(pool[0].user),
              static_cast<long long>(pool[0].query), resp.latency_ms);
  for (size_t i = 0; i < 5 && i < resp.items.size(); ++i) {
    std::printf(" i%lld(%.2f)", static_cast<long long>(resp.items[i].id),
                resp.items[i].score);
  }
  std::printf("\n");

  // Load test.
  std::printf("running load test (300 QPS, 1s)...\n");
  auto load = serving::RunLoad(&server, pool, /*qps=*/300, /*duration=*/1.0,
                               /*client_threads=*/4, /*seed=*/1);
  std::printf("achieved %.0f QPS | mean %.3f ms | p50 %.3f ms | p99 %.3f ms\n",
              load.achieved_qps, load.mean_ms, load.p50_ms, load.p99_ms);
  std::printf("cache: %lld hits, %lld misses\n",
              static_cast<long long>(server.cache().hits()),
              static_cast<long long>(server.cache().misses()));
  return 0;
}
