// Interpretability demo (paper Sec. VII-G): the same ego node receives
// different edge-attention weight distributions under different focal
// points, i.e., Zoomer assigns multiple focal-dependent representations to
// one node.
//
//   $ ./examples/interpretability
#include <cstdio>

#include "core/trainer.h"
#include "core/zoomer_model.h"
#include "data/taobao_generator.h"

int main() {
  using namespace zoomer;

  data::TaobaoGeneratorOptions gen;
  gen.num_users = 200;
  gen.num_queries = 100;
  gen.num_items = 400;
  gen.num_sessions = 1500;
  gen.seed = 13;
  auto ds = data::GenerateTaobaoDataset(gen);

  core::ZoomerConfig cfg;
  cfg.hidden_dim = 16;
  cfg.sampler.k = 8;
  core::ZoomerModel model(&ds.graph, cfg);
  core::TrainOptions topt;
  topt.epochs = 1;
  topt.learning_rate = 0.01f;
  topt.max_examples_per_epoch = 2000;
  core::ZoomerTrainer trainer(&model, topt);
  trainer.Train(ds);

  // Pick an active user and two queries from different latent categories.
  Rng rng(3);
  graph::NodeId user = -1;
  for (graph::NodeId v = 0; v < ds.graph.num_nodes(); ++v) {
    if (ds.graph.node_type(v) == graph::NodeType::kUser &&
        ds.graph.NeighborsOfType(v, graph::NodeType::kItem).size() >= 6) {
      user = v;
      break;
    }
  }
  graph::NodeId q1 = -1, q2 = -1;
  for (graph::NodeId v = 0; v < ds.graph.num_nodes(); ++v) {
    if (ds.graph.node_type(v) != graph::NodeType::kQuery) continue;
    if (q1 < 0) {
      q1 = v;
    } else if (ds.category[v] != ds.category[q1]) {
      q2 = v;
      break;
    }
  }
  std::printf("ego user u%lld; focal queries q%lld (category %d) and q%lld "
              "(category %d)\n\n",
              static_cast<long long>(user), static_cast<long long>(q1),
              ds.category[q1], static_cast<long long>(q2), ds.category[q2]);

  for (auto q : {q1, q2}) {
    auto records = model.ExplainEdgeWeights(user, user, q, &rng);
    std::printf("focal query q%lld -> edge-level weights over the ROI:\n",
                static_cast<long long>(q));
    for (const auto& r : records) {
      std::printf("  %-6s %-7lld cat=%2d  weight=%.3f  ",
                  graph::NodeTypeName(r.type),
                  static_cast<long long>(r.neighbor),
                  ds.category[r.neighbor], r.weight);
      const int bars = static_cast<int>(r.weight * 40);
      for (int b = 0; b < bars; ++b) std::putchar('#');
      std::putchar('\n');
    }
    std::printf("\n");
  }
  std::printf("Note how the weight mass moves when the focal query changes:\n"
              "the ego node's representation is focal-dependent (Fig. 13).\n");
  return 0;
}
