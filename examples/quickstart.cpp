// Quickstart: build a retrieval graph from session logs, train Zoomer for a
// few epochs, and score a recommendation request.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/trainer.h"
#include "core/zoomer_model.h"
#include "data/taobao_generator.h"

int main() {
  using namespace zoomer;

  // 1. Generate a small synthetic Taobao-like workload: users with mixed
  //    long-term interests posing queries and clicking items.
  data::TaobaoGeneratorOptions gen;
  gen.num_users = 200;
  gen.num_queries = 100;
  gen.num_items = 400;
  gen.num_sessions = 1500;
  gen.num_categories = 10;
  gen.seed = 1;
  auto ds = data::GenerateTaobaoDataset(gen);
  std::printf("built %s\n", ds.graph.DebugString().c_str());
  std::printf("train examples: %zu, test examples: %zu\n", ds.train.size(),
              ds.test.size());

  // 2. Configure Zoomer: focal-biased ROI sampling (top-10 per hop, 2 hops)
  //    and all three attention levels.
  core::ZoomerConfig cfg;
  cfg.hidden_dim = 16;
  cfg.sampler.k = 10;
  cfg.sampler.num_hops = 2;
  core::ZoomerModel model(&ds.graph, cfg);

  // 3. Train with the focal cross-entropy loss (focal weight 2, Sec. VII-A).
  core::TrainOptions topt;
  topt.epochs = 2;
  topt.learning_rate = 0.01f;
  topt.max_examples_per_epoch = 3000;
  topt.verbose = true;
  core::ZoomerTrainer trainer(&model, topt);
  trainer.Train(ds);

  // 4. Evaluate.
  auto eval = trainer.Evaluate(ds, 1000);
  std::printf("test AUC %.3f  MAE %.3f  RMSE %.3f\n", eval.auc, eval.mae,
              eval.rmse);

  // 5. Score one request: the ego query gets a *focal-dependent* embedding,
  //    so the same query scores differently for different users.
  Rng rng(7);
  const auto& ex = ds.test.front();
  const float p =
      1.0f / (1.0f + std::exp(-model.ScoreLogit(ex, &rng).item()));
  std::printf("request (user=%lld, query=%lld, item=%lld): pCTR=%.3f "
              "(label=%.0f)\n",
              static_cast<long long>(ex.user),
              static_cast<long long>(ex.query),
              static_cast<long long>(ex.item), p, ex.label);
  return 0;
}
