// End-to-end search workflow (paper Fig. 3): a user poses a query; the
// retrieval stage returns a small set of relevant items from the pool via
// the trained Zoomer twin towers; results are compared to the user's actual
// clicks and to the ROI the focal-biased sampler selected.
//
//   $ ./examples/search_session
#include <algorithm>
#include <cstdio>

#include "core/trainer.h"
#include "core/zoomer_model.h"
#include "data/taobao_generator.h"

int main() {
  using namespace zoomer;

  data::TaobaoGeneratorOptions gen;
  gen.num_users = 250;
  gen.num_queries = 120;
  gen.num_items = 500;
  gen.num_sessions = 2000;
  gen.num_categories = 10;
  gen.seed = 3;
  auto ds = data::GenerateTaobaoDataset(gen);
  std::printf("item pool: %zu items, %d latent categories\n",
              ds.all_items.size(), ds.num_categories);

  core::ZoomerConfig cfg;
  cfg.hidden_dim = 16;
  cfg.sampler.k = 8;
  core::ZoomerModel model(&ds.graph, cfg);
  core::TrainOptions topt;
  topt.epochs = 2;
  topt.learning_rate = 0.01f;
  topt.max_examples_per_epoch = 3000;
  core::ZoomerTrainer trainer(&model, topt);
  std::printf("training Zoomer...\n");
  trainer.Train(ds);

  // Serve three held-out search sessions.
  Rng rng(11);
  int shown = 0;
  for (auto it = ds.log.rbegin(); it != ds.log.rend() && shown < 3; ++it) {
    const auto& session = *it;
    if (session.clicks.empty()) continue;
    ++shown;
    std::printf("\n--- session: user u%lld searched query q%lld (category %d)\n",
                static_cast<long long>(session.user),
                static_cast<long long>(session.query),
                ds.category[session.query]);

    // Show the ROI the focal-biased sampler zooms into.
    auto fc = model.sampler().FocalVector(ds.graph,
                                          {session.user, session.query});
    auto roi = model.sampler().Sample(ds.graph, session.user, fc, &rng);
    int in_category = 0, total = 0;
    for (int i = 1; i < roi.size(); ++i) {
      const int cat = ds.category[roi.nodes[i].id];
      if (cat >= 0) {
        ++total;
        if (cat == ds.category[session.query]) ++in_category;
      }
    }
    std::printf("ROI: %d nodes sampled, %d/%d typed nodes match the focal "
                "category\n",
                roi.size() - 1, in_category, total);

    // Retrieval: rank the pool by twin-tower cosine.
    auto uq = model.UserQueryEmbeddingInference(session.user, session.query,
                                                &rng);
    std::vector<std::pair<float, graph::NodeId>> ranked;
    for (auto item : ds.all_items) {
      auto ie = model.ItemEmbeddingInference(item);
      float dot = 0, nu = 0, ni = 0;
      for (int j = 0; j < cfg.hidden_dim; ++j) {
        dot += uq[j] * ie[j];
        nu += uq[j] * uq[j];
        ni += ie[j] * ie[j];
      }
      ranked.emplace_back(dot / (std::sqrt(nu) * std::sqrt(ni) + 1e-9f),
                          item);
    }
    std::partial_sort(ranked.begin(), ranked.begin() + 10, ranked.end(),
                      std::greater<>());
    std::printf("top-10 retrieved items (category | clicked-in-session):\n");
    for (int i = 0; i < 10; ++i) {
      const auto item = ranked[i].second;
      const bool clicked =
          std::find(session.clicks.begin(), session.clicks.end(), item) !=
          session.clicks.end();
      std::printf("  #%2d item i%-6lld cat=%2d score=%.3f %s\n", i + 1,
                  static_cast<long long>(item), ds.category[item],
                  ranked[i].first, clicked ? "<-- clicked" : "");
    }
  }
  return 0;
}
