#include "baselines/session_baselines.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace zoomer {
namespace baselines {

using graph::kNumNodeTypes;
using graph::NodeId;
using graph::NodeType;
using tensor::Tensor;

namespace {

Tensor StackRows(const std::vector<Tensor>& rows) {
  ZCHECK(!rows.empty());
  Tensor out = rows[0];
  for (size_t i = 1; i < rows.size(); ++i) out = ConcatRows(out, rows[i]);
  return out;
}

Tensor SoftmaxColumn(const Tensor& col) {
  return Transpose(SoftmaxRows(Transpose(col)));
}

}  // namespace

SessionBaselineModel::SessionBaselineModel(const graph::HeteroGraph* g,
                                           const SessionBaselineConfig& config)
    : graph_(g), config_(config), init_rng_(config.seed) {
  const int d = config_.hidden_dim;
  slots_ = core::SlotEmbeddings(*g, d, &init_rng_);
  for (int t = 0; t < kNumNodeTypes; ++t) {
    type_map_[t] = tensor::Linear(d, d, &init_rng_);
  }
  attn_w1_ = tensor::Linear(d, d, &init_rng_);
  attn_w2_ = tensor::Linear(d, d, &init_rng_);
  attn_v_ = Tensor::Xavier(d, 1, &init_rng_, /*requires_grad=*/true);
  pos_embed_ = Tensor::Randn(config_.max_history, d, &init_rng_, 0.05f,
                             /*requires_grad=*/true);
  for (int c = 0; c < config_.num_components; ++c) {
    components_.emplace_back(d, d, &init_rng_);
  }
  gate_proj_ = tensor::Linear(d, d, &init_rng_);
  gate_q_ = Tensor::Xavier(d, 1, &init_rng_, /*requires_grad=*/true);
  uq_tower_ = tensor::Linear(2 * d, d, &init_rng_);
  item_tower_ = tensor::Linear(d, d, &init_rng_);
  global_merge_ = tensor::Linear(2 * d, d, &init_rng_);
  logit_scale_ =
      Tensor::Full(1, 1, config_.logit_scale_init, /*requires_grad=*/true);
}

std::string SessionBaselineModel::name() const {
  switch (config_.kind) {
    case SessionModelKind::kStamp: return "STAMP";
    case SessionModelKind::kGceGnn: return "GCE-GNN";
    case SessionModelKind::kFgnn: return "FGNN";
    case SessionModelKind::kMccf: return "MCCF";
  }
  return "?";
}

void SessionBaselineModel::OnEpochBegin(const data::RetrievalDataset& ds,
                                        Rng* /*rng*/) {
  if (!history_.empty()) return;
  for (const auto& rec : ds.log) {
    auto& h = history_[rec.user];
    for (NodeId item : rec.clicks) {
      if (static_cast<int>(h.size()) < config_.max_history) h.push_back(item);
    }
  }
}

Tensor SessionBaselineModel::NodeEmbedding(NodeId node) const {
  Tensor z = MeanRows(slots_.Lookup(*graph_, node));
  const int t = static_cast<int>(graph_->node_type(node));
  return Tanh(type_map_[t].Forward(z));
}

Tensor SessionBaselineModel::HistoryMatrix(NodeId user) const {
  auto it = history_.find(user);
  if (it == history_.end() || it->second.empty()) return Tensor();
  std::vector<Tensor> rows;
  rows.reserve(it->second.size());
  for (NodeId item : it->second) rows.push_back(NodeEmbedding(item));
  return StackRows(rows);
}

Tensor SessionBaselineModel::StampReadout(const Tensor& history,
                                          const Tensor& query) const {
  // a_i = v' sigmoid(W1 e_i + W2 (x_t + m_s + q)); m_a = sum a_i e_i.
  const int64_t n = history.rows();
  Tensor m_s = MeanRows(history);
  Tensor x_t = Rows(history, {n - 1});  // most recent click
  Tensor key = Add(Add(x_t, m_s), query);
  Tensor scores = MatMul(
      Sigmoid(Add(attn_w1_.Forward(history),
                  TileRows(attn_w2_.Forward(key), n))),
      attn_v_);
  Tensor alpha = SoftmaxColumn(scores);
  Tensor m_a = MatMul(Transpose(alpha), history);
  // Memory-priority merge: attended memory + last click.
  return Add(m_a, x_t);
}

Tensor SessionBaselineModel::GceGnnReadout(const Tensor& history,
                                           const Tensor& query) const {
  // Session-local attention keyed purely by the current query.
  const int64_t n = history.rows();
  Tensor scores = MatMul(
      Tanh(Add(attn_w1_.Forward(history),
               TileRows(attn_w2_.Forward(query), n))),
      attn_v_);
  Tensor alpha = SoftmaxColumn(scores);
  return MatMul(Transpose(alpha), history);
}

Tensor SessionBaselineModel::FgnnReadout(const Tensor& history,
                                         const Tensor& /*query*/) const {
  // Learned positional factors: score_i = v' tanh(W1 e_i + P_i).
  const int64_t n = history.rows();
  std::vector<int64_t> pos(n);
  for (int64_t i = 0; i < n; ++i) {
    pos[i] = std::min<int64_t>(i, pos_embed_.rows() - 1);
  }
  Tensor p = Rows(pos_embed_, pos);
  Tensor scores =
      MatMul(Tanh(Add(attn_w1_.Forward(history), p)), attn_v_);
  Tensor alpha = SoftmaxColumn(scores);
  return MatMul(Transpose(alpha), history);
}

Tensor SessionBaselineModel::MccfReadout(const Tensor& history,
                                         const Tensor& /*query*/) const {
  // M motivation components; component-level gating over component readouts.
  std::vector<Tensor> comp_vecs, gate_scores;
  for (const auto& comp : components_) {
    Tensor proj = Tanh(comp.Forward(history));  // (n x d)
    Tensor vec = MeanRows(proj);                // (1 x d)
    comp_vecs.push_back(vec);
    gate_scores.push_back(MatMul(Tanh(gate_proj_.Forward(vec)), gate_q_));
  }
  Tensor beta = SoftmaxColumn(StackRows(gate_scores));  // (M x 1)
  Tensor out;
  for (size_t c = 0; c < comp_vecs.size(); ++c) {
    Tensor w = Rows(beta, {static_cast<int64_t>(c)});
    Tensor weighted = Mul(comp_vecs[c], w);
    out = out.defined() ? Add(out, weighted) : weighted;
  }
  return out;
}

Tensor SessionBaselineModel::UserQueryTower(NodeId user, NodeId query) const {
  Tensor q = NodeEmbedding(query);
  Tensor history = HistoryMatrix(user);
  Tensor rep;
  if (!history.defined()) {
    rep = NodeEmbedding(user);  // cold user fallback
  } else {
    switch (config_.kind) {
      case SessionModelKind::kStamp: rep = StampReadout(history, q); break;
      case SessionModelKind::kGceGnn: rep = GceGnnReadout(history, q); break;
      case SessionModelKind::kFgnn: rep = FgnnReadout(history, q); break;
      case SessionModelKind::kMccf: rep = MccfReadout(history, q); break;
    }
  }
  return Tanh(uq_tower_.Forward(ConcatCols(rep, q)));
}

Tensor SessionBaselineModel::ItemTower(NodeId item) const {
  Tensor self = NodeEmbedding(item);
  if (config_.kind == SessionModelKind::kGceGnn) {
    // Global-context enhancement: merge the mean of the item's item-type
    // neighbors (session/similarity edges) into the item representation.
    auto nbrs = graph_->NeighborsOfType(item, NodeType::kItem);
    if (!nbrs.empty()) {
      std::vector<Tensor> rows;
      const size_t take = std::min<size_t>(
          nbrs.size(), static_cast<size_t>(config_.global_neighbors));
      for (size_t i = 0; i < take; ++i) rows.push_back(NodeEmbedding(nbrs[i]));
      Tensor global = MeanRows(StackRows(rows));
      return Tanh(global_merge_.Forward(ConcatCols(self, global)));
    }
  }
  return Tanh(item_tower_.Forward(self));
}

Tensor SessionBaselineModel::ScoreLogit(const data::Example& ex, Rng* /*rng*/) {
  Tensor uq = UserQueryTower(ex.user, ex.query);
  Tensor it = ItemTower(ex.item);
  return Mul(RowwiseCosine(uq, it), logit_scale_);
}

std::vector<float> SessionBaselineModel::UserQueryEmbeddingInference(
    NodeId user, NodeId query, Rng* /*rng*/) {
  Tensor uq = UserQueryTower(user, query);
  return {uq.data(), uq.data() + uq.size()};
}

std::vector<float> SessionBaselineModel::ItemEmbeddingInference(NodeId item) {
  Tensor it = ItemTower(item);
  return {it.data(), it.data() + it.size()};
}

std::vector<Tensor> SessionBaselineModel::Parameters() const {
  std::vector<Tensor> out = slots_.Parameters();
  for (const auto& l : type_map_) {
    auto p = l.Parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  for (const auto* lin : {&attn_w1_, &attn_w2_, &gate_proj_, &uq_tower_,
                          &item_tower_, &global_merge_}) {
    auto p = lin->Parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  for (const auto& comp : components_) {
    auto p = comp.Parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  out.push_back(attn_v_);
  out.push_back(pos_embed_);
  out.push_back(gate_q_);
  out.push_back(logit_scale_);
  return out;
}

}  // namespace baselines
}  // namespace zoomer
