#include "baselines/pinnersage.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace zoomer {
namespace baselines {

using graph::kNumNodeTypes;
using graph::NodeId;
using graph::NodeType;
using tensor::Tensor;

PinnerSageModel::PinnerSageModel(const graph::HeteroGraph* g,
                                 const PinnerSageConfig& config)
    : graph_(g), config_(config), init_rng_(config.seed) {
  const int d = config_.hidden_dim;
  slots_ = core::SlotEmbeddings(*g, d, &init_rng_);
  for (int t = 0; t < kNumNodeTypes; ++t) {
    type_map_[t] = tensor::Linear(d, d, &init_rng_);
  }
  uq_tower_ = tensor::Linear(2 * d, d, &init_rng_);
  item_tower_ = tensor::Linear(d, d, &init_rng_);
  logit_scale_ =
      Tensor::Full(1, 1, config_.logit_scale_init, /*requires_grad=*/true);
}

Tensor PinnerSageModel::NodeEmbedding(NodeId node) const {
  Tensor z = MeanRows(slots_.Lookup(*graph_, node));
  const int t = static_cast<int>(graph_->node_type(node));
  return Tanh(type_map_[t].Forward(z));
}

Tensor PinnerSageModel::ItemTower(NodeId item) const {
  return Tanh(item_tower_.Forward(NodeEmbedding(item)));
}

void PinnerSageModel::OnEpochBegin(const data::RetrievalDataset& ds,
                                   Rng* /*rng*/) {
  if (history_.empty()) {
    for (const auto& rec : ds.log) {
      auto& h = history_[rec.user];
      for (NodeId item : rec.clicks) {
        if (static_cast<int>(h.size()) < config_.max_history) {
          h.push_back(item);
        }
      }
    }
  }
  // K-medoid-style clustering of each user's history in the current item
  // embedding space: k-means assignment on cosine distance, medoid = item
  // closest to its cluster mean.
  medoids_.clear();
  const int d = config_.hidden_dim;
  for (const auto& [user, items] : history_) {
    const int k =
        std::min<int>(config_.max_clusters, static_cast<int>(items.size()));
    if (k == 0) continue;
    std::vector<std::vector<float>> emb(items.size());
    for (size_t i = 0; i < items.size(); ++i) {
      Tensor e = ItemTower(items[i]);
      emb[i].assign(e.data(), e.data() + d);
    }
    // Init centers with evenly spaced history items; 3 Lloyd iterations.
    std::vector<std::vector<float>> centers(k);
    for (int c = 0; c < k; ++c) centers[c] = emb[c * items.size() / k];
    std::vector<int> assign(items.size(), 0);
    auto cos = [&](const std::vector<float>& a, const std::vector<float>& b) {
      float dot = 0, na = 0, nb = 0;
      for (int j = 0; j < d; ++j) {
        dot += a[j] * b[j];
        na += a[j] * a[j];
        nb += b[j] * b[j];
      }
      return dot / (std::sqrt(na) * std::sqrt(nb) + 1e-9f);
    };
    for (int iter = 0; iter < 3; ++iter) {
      for (size_t i = 0; i < items.size(); ++i) {
        int best = 0;
        float best_sim = -2.0f;
        for (int c = 0; c < k; ++c) {
          const float s = cos(emb[i], centers[c]);
          if (s > best_sim) {
            best_sim = s;
            best = c;
          }
        }
        assign[i] = best;
      }
      for (int c = 0; c < k; ++c) {
        std::vector<float> mean(d, 0.0f);
        int n = 0;
        for (size_t i = 0; i < items.size(); ++i) {
          if (assign[i] != c) continue;
          for (int j = 0; j < d; ++j) mean[j] += emb[i][j];
          ++n;
        }
        if (n > 0) {
          for (auto& x : mean) x /= static_cast<float>(n);
          centers[c] = mean;
        }
      }
    }
    // Medoid per cluster: history item closest to the center.
    std::vector<NodeId> meds;
    for (int c = 0; c < k; ++c) {
      int best = -1;
      float best_sim = -2.0f;
      for (size_t i = 0; i < items.size(); ++i) {
        if (assign[i] != c) continue;
        const float s = cos(emb[i], centers[c]);
        if (s > best_sim) {
          best_sim = s;
          best = static_cast<int>(i);
        }
      }
      if (best >= 0) meds.push_back(items[best]);
    }
    medoids_[user] = std::move(meds);
  }
}

const std::vector<NodeId>& PinnerSageModel::Medoids(NodeId user) const {
  auto it = medoids_.find(user);
  return it == medoids_.end() ? empty_ : it->second;
}

Tensor PinnerSageModel::UserQueryTower(NodeId user, NodeId query) const {
  Tensor q = NodeEmbedding(query);
  const auto& meds = Medoids(user);
  Tensor rep;
  if (meds.empty()) {
    rep = NodeEmbedding(user);  // cold user: fall back to profile features
  } else {
    // Select the medoid most aligned with the query (hard routing; gradient
    // flows through the selected medoid's item tower, as in max-pooling).
    int best = 0;
    float best_sim = -2.0f;
    const int d = config_.hidden_dim;
    Tensor qd = q.Detach();
    for (size_t m = 0; m < meds.size(); ++m) {
      Tensor e = ItemTower(meds[m]);
      float dot = 0, na = 0, nb = 0;
      for (int j = 0; j < d; ++j) {
        dot += e.at(0, j) * qd.at(0, j);
        na += e.at(0, j) * e.at(0, j);
        nb += qd.at(0, j) * qd.at(0, j);
      }
      const float s = dot / (std::sqrt(na) * std::sqrt(nb) + 1e-9f);
      if (s > best_sim) {
        best_sim = s;
        best = static_cast<int>(m);
      }
    }
    rep = ItemTower(meds[best]);
  }
  return Tanh(uq_tower_.Forward(ConcatCols(rep, q)));
}

Tensor PinnerSageModel::ScoreLogit(const data::Example& ex, Rng* /*rng*/) {
  Tensor uq = UserQueryTower(ex.user, ex.query);
  Tensor it = ItemTower(ex.item);
  return Mul(RowwiseCosine(uq, it), logit_scale_);
}

std::vector<float> PinnerSageModel::UserQueryEmbeddingInference(
    NodeId user, NodeId query, Rng* /*rng*/) {
  Tensor uq = UserQueryTower(user, query);
  return {uq.data(), uq.data() + uq.size()};
}

std::vector<float> PinnerSageModel::ItemEmbeddingInference(NodeId item) {
  Tensor it = ItemTower(item);
  return {it.data(), it.data() + it.size()};
}

std::vector<Tensor> PinnerSageModel::Parameters() const {
  std::vector<Tensor> out = slots_.Parameters();
  for (const auto& l : type_map_) {
    auto p = l.Parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  auto pu = uq_tower_.Parameters();
  out.insert(out.end(), pu.begin(), pu.end());
  auto pi = item_tower_.Parameters();
  out.insert(out.end(), pi.begin(), pi.end());
  out.push_back(logit_scale_);
  return out;
}

}  // namespace baselines
}  // namespace zoomer
