#include "baselines/registry.h"

#include "baselines/gnn_baselines.h"
#include "baselines/pinnersage.h"
#include "baselines/pixie.h"
#include "baselines/session_baselines.h"
#include "core/zoomer_model.h"

namespace zoomer {
namespace baselines {

std::unique_ptr<core::ScoringModel> MakeModel(const std::string& name,
                                              const graph::HeteroGraph* g,
                                              const ModelParams& p) {
  // Zoomer and its ablation variants.
  if (name == "Zoomer" || name == "Zoomer-FE" || name == "Zoomer-FS" ||
      name == "Zoomer-ES" || name == "GCN") {
    core::ZoomerConfig cfg;
    cfg.hidden_dim = p.hidden_dim;
    cfg.sampler.k = p.sample_k;
    cfg.sampler.num_hops = p.num_hops;
    cfg.seed = p.seed;
    if (name == "Zoomer-FE") cfg.use_semantic_attention = false;
    if (name == "Zoomer-FS") cfg.use_edge_attention = false;
    if (name == "Zoomer-ES") cfg.use_feature_projection = false;
    if (name == "GCN") {
      cfg.use_feature_projection = false;
      cfg.use_edge_attention = false;
      cfg.use_semantic_attention = false;
      // Plain GCN also loses the focal-biased sampler (uniform expansion).
      cfg.sampler.kind = core::SamplerKind::kUniform;
    }
    return std::make_unique<core::ZoomerModel>(g, cfg);
  }

  if (name == "GraphSage" || name == "GAT" || name == "HAN" ||
      name == "PinSage") {
    GnnBaselineConfig cfg;
    if (name == "GraphSage") {
      cfg = GnnBaselineConfig::GraphSage(p.hidden_dim, p.sample_k, p.seed);
    } else if (name == "GAT") {
      cfg = GnnBaselineConfig::Gat(p.hidden_dim, p.sample_k, p.seed);
    } else if (name == "HAN") {
      cfg = GnnBaselineConfig::Han(p.hidden_dim, p.sample_k, p.seed);
    } else {
      cfg = GnnBaselineConfig::PinSage(p.hidden_dim, p.sample_k, p.seed);
    }
    cfg.sampler.num_hops = p.num_hops;
    return std::make_unique<GnnBaselineModel>(g, cfg);
  }
  if (name == "PinnerSage") {
    PinnerSageConfig cfg;
    cfg.hidden_dim = p.hidden_dim;
    cfg.seed = p.seed;
    return std::make_unique<PinnerSageModel>(g, cfg);
  }
  if (name == "Pixie") {
    PixieConfig cfg;
    cfg.seed = p.seed;
    return std::make_unique<PixieModel>(g, cfg);
  }

  SessionBaselineConfig scfg;
  scfg.hidden_dim = p.hidden_dim;
  scfg.seed = p.seed;
  if (name == "STAMP") {
    scfg.kind = SessionModelKind::kStamp;
    return std::make_unique<SessionBaselineModel>(g, scfg);
  }
  if (name == "GCE-GNN") {
    scfg.kind = SessionModelKind::kGceGnn;
    return std::make_unique<SessionBaselineModel>(g, scfg);
  }
  if (name == "FGNN") {
    scfg.kind = SessionModelKind::kFgnn;
    return std::make_unique<SessionBaselineModel>(g, scfg);
  }
  if (name == "MCCF") {
    scfg.kind = SessionModelKind::kMccf;
    return std::make_unique<SessionBaselineModel>(g, scfg);
  }
  return nullptr;
}

std::vector<std::string> SamplerBaselineNames() {
  return {"Zoomer", "GraphSage", "PinSage", "PinnerSage", "Pixie"};
}

}  // namespace baselines
}  // namespace zoomer
