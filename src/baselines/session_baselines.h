// Session/history-based baselines (paper Sec. VII-A). Each represents the
// user by their clicked-item history from the training log rather than by
// graph convolution, with a model-specific attention readout:
//
//   STAMP   (Liu et al., KDD'18): short-term attention/memory priority —
//           attention over history keyed by the last click and the mean
//           memory, merged with the current query.
//   GCE-GNN (Wang et al., SIGIR'20): session-local attention keyed by the
//           query plus a *global* item-item neighborhood aggregated into the
//           item tower.
//   FGNN    (Zhang et al.): factor/session-graph readout — attention with
//           learned positional factors over the history sequence.
//   MCCF    (Wang et al., AAAI'20): multi-component decomposition — M latent
//           purchasing-motivation components with component-level gating.
//
// These are structurally faithful simplifications (documented in DESIGN.md):
// the published models target pure session-based recommendation without an
// explicit query; here the query embedding joins the readout so all models
// answer the same (user, query, item) CTR task.
#ifndef ZOOMER_BASELINES_SESSION_BASELINES_H_
#define ZOOMER_BASELINES_SESSION_BASELINES_H_

#include <array>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/model_interface.h"
#include "core/zoomer_model.h"  // SlotEmbeddings
#include "tensor/nn.h"

namespace zoomer {
namespace baselines {

enum class SessionModelKind { kStamp, kGceGnn, kFgnn, kMccf };

struct SessionBaselineConfig {
  SessionModelKind kind = SessionModelKind::kStamp;
  int hidden_dim = 16;
  int max_history = 20;
  int num_components = 3;    // MCCF
  int global_neighbors = 5;  // GCE-GNN global graph fan-in
  float logit_scale_init = 5.0f;
  uint64_t seed = 1;
};

class SessionBaselineModel : public core::ScoringModel {
 public:
  SessionBaselineModel(const graph::HeteroGraph* g,
                       const SessionBaselineConfig& config);

  std::string name() const override;
  int embedding_dim() const override { return config_.hidden_dim; }

  tensor::Tensor ScoreLogit(const data::Example& ex, Rng* rng) override;
  std::vector<tensor::Tensor> Parameters() const override;
  std::vector<float> UserQueryEmbeddingInference(graph::NodeId user,
                                                 graph::NodeId query,
                                                 Rng* rng) override;
  std::vector<float> ItemEmbeddingInference(graph::NodeId item) override;

  /// Builds per-user histories from the training log on first call.
  void OnEpochBegin(const data::RetrievalDataset& ds, Rng* rng) override;

 private:
  tensor::Tensor NodeEmbedding(graph::NodeId node) const;
  tensor::Tensor HistoryMatrix(graph::NodeId user) const;  // (n x d) or undef
  tensor::Tensor UserQueryTower(graph::NodeId user, graph::NodeId query) const;
  tensor::Tensor ItemTower(graph::NodeId item) const;

  tensor::Tensor StampReadout(const tensor::Tensor& history,
                              const tensor::Tensor& query) const;
  tensor::Tensor GceGnnReadout(const tensor::Tensor& history,
                               const tensor::Tensor& query) const;
  tensor::Tensor FgnnReadout(const tensor::Tensor& history,
                             const tensor::Tensor& query) const;
  tensor::Tensor MccfReadout(const tensor::Tensor& history,
                             const tensor::Tensor& query) const;

  const graph::HeteroGraph* graph_;
  SessionBaselineConfig config_;
  mutable Rng init_rng_;

  core::SlotEmbeddings slots_;
  std::array<tensor::Linear, graph::kNumNodeTypes> type_map_;
  tensor::Linear attn_w1_;   // history projection
  tensor::Linear attn_w2_;   // key projection
  tensor::Tensor attn_v_;    // (d x 1)
  tensor::Tensor pos_embed_; // (max_history x d), FGNN positional factors
  std::vector<tensor::Linear> components_;  // MCCF component projections
  tensor::Linear gate_proj_;                // MCCF component gating
  tensor::Tensor gate_q_;                   // (d x 1)
  tensor::Linear uq_tower_;
  tensor::Linear item_tower_;
  tensor::Linear global_merge_;  // GCE-GNN: [item || global-nbr-mean] -> d
  tensor::Tensor logit_scale_;

  std::unordered_map<graph::NodeId, std::vector<graph::NodeId>> history_;
};

}  // namespace baselines
}  // namespace zoomer

#endif  // ZOOMER_BASELINES_SESSION_BASELINES_H_
