// Static (non-focal) GNN baselines built from one configurable backbone:
//
//   GraphSAGE  = uniform neighbor sampling + mean aggregation
//   GCN        = uniform sampling + mean aggregation (transductive flavour;
//                identical backbone, kept as a distinct registry name)
//   GAT        = uniform sampling + pairwise attention (eq. 3 of the paper's
//                preliminaries; weights fixed across requests)
//   HAN        = node-level (GAT) attention + learned semantic-level
//                attention over neighbor types
//   PinSage    = random-walk visit-count sampling + importance-weighted
//                aggregation
//
// The key contrast with Zoomer: none of these condition sampling or
// attention on the request's focal interest, so every request sees the same
// static neighborhood weighting (paper Fig. 1).
#ifndef ZOOMER_BASELINES_GNN_BASELINES_H_
#define ZOOMER_BASELINES_GNN_BASELINES_H_

#include <array>
#include <string>
#include <vector>

#include "core/model_interface.h"
#include "core/roi_sampler.h"
#include "core/zoomer_model.h"  // SlotEmbeddings
#include "tensor/nn.h"

namespace zoomer {
namespace baselines {

enum class Aggregator {
  kMean,        // GraphSAGE / GCN
  kGat,         // GAT / HAN node level
  kImportance,  // PinSage: visit-count weighted
};

struct GnnBaselineConfig {
  std::string name = "GraphSage";
  int hidden_dim = 16;
  core::RoiSamplerOptions sampler;
  Aggregator aggregator = Aggregator::kMean;
  /// HAN: learned semantic attention across neighbor-type embeddings;
  /// otherwise types are mean-combined.
  bool han_semantic = false;
  float leaky_slope = 0.2f;
  float logit_scale_init = 5.0f;
  uint64_t seed = 1;

  static GnnBaselineConfig GraphSage(int hidden_dim, int k, uint64_t seed);
  static GnnBaselineConfig Gcn(int hidden_dim, int k, uint64_t seed);
  static GnnBaselineConfig Gat(int hidden_dim, int k, uint64_t seed);
  static GnnBaselineConfig Han(int hidden_dim, int k, uint64_t seed);
  static GnnBaselineConfig PinSage(int hidden_dim, int k, uint64_t seed);
};

class GnnBaselineModel : public core::ScoringModel {
 public:
  GnnBaselineModel(const graph::HeteroGraph* g,
                   const GnnBaselineConfig& config);

  /// Routes sampling and feature lookups through `view` — attach a
  /// streaming::DynamicGraphView so the baselines, like ZoomerModel, train
  /// and score over base+delta neighborhoods without waiting for Compact().
  /// The view must describe the same node space as the construction graph
  /// and outlive the model; nullptr restores the static CSR view.
  void AttachGraphView(const graph::GraphView* view) {
    view_ = view != nullptr ? view : &base_view_;
  }
  const graph::GraphView& view() const { return *view_; }

  std::string name() const override { return config_.name; }
  int embedding_dim() const override { return config_.hidden_dim; }

  tensor::Tensor ScoreLogit(const data::Example& ex, Rng* rng) override;
  std::vector<tensor::Tensor> Parameters() const override;
  std::vector<float> UserQueryEmbeddingInference(graph::NodeId user,
                                                 graph::NodeId query,
                                                 Rng* rng) override;
  std::vector<float> ItemEmbeddingInference(graph::NodeId item) override;

  tensor::Tensor UserQueryEmbedding(graph::NodeId user, graph::NodeId query,
                                    Rng* rng);
  tensor::Tensor ItemEmbedding(graph::NodeId item);
  const GnnBaselineConfig& config() const { return config_; }

 private:
  tensor::Tensor NodeEmbedding(graph::NodeId node) const;
  tensor::Tensor AggregateNode(const core::RoiSubgraph& roi, int index) const;
  tensor::Tensor EgoEmbedding(graph::NodeId ego, Rng* rng) const;

  const graph::HeteroGraph* graph_;
  graph::CsrGraphView base_view_;  // default static view over graph_
  const graph::GraphView* view_;   // active view (never null)
  GnnBaselineConfig config_;
  core::RoiSampler sampler_;
  mutable Rng init_rng_;

  core::SlotEmbeddings slots_;
  std::array<tensor::Linear, graph::kNumNodeTypes> type_map_;
  std::vector<tensor::Linear> hop_combine_;
  tensor::Tensor gat_a_;          // (2d x 1) pairwise attention vector
  tensor::Linear semantic_proj_;  // HAN semantic attention
  tensor::Tensor semantic_q_;     // (d x 1)
  tensor::Linear uq_tower_;
  tensor::Linear item_tower_;
  tensor::Tensor logit_scale_;
};

}  // namespace baselines
}  // namespace zoomer

#endif  // ZOOMER_BASELINES_GNN_BASELINES_H_
