// Pixie (Eksombatchai et al., WWW'18): real-time recommendation by biased
// random walks with restarts from the query pins — here the {user, query}
// pair — with the multi-pin boosting rule score(i) = (sum_p sqrt(c_p(i)))^2.
// Pixie is non-learned: no parameters, no gradient; its CTR "logit" is a
// monotone transform of the walk visit count (AUC-invariant).
#ifndef ZOOMER_BASELINES_PIXIE_H_
#define ZOOMER_BASELINES_PIXIE_H_

#include <unordered_map>
#include <vector>

#include "core/model_interface.h"
#include "graph/hetero_graph.h"

namespace zoomer {
namespace baselines {

struct PixieConfig {
  /// Total walk steps split between the two pins (user, query).
  int total_steps = 2000;
  /// Restart probability back to the pin at each step.
  double restart_prob = 0.35;
  uint64_t seed = 1;
};

class PixieModel : public core::ScoringModel {
 public:
  PixieModel(const graph::HeteroGraph* g, const PixieConfig& config);

  std::string name() const override { return "Pixie"; }
  int embedding_dim() const override { return 1; }
  bool has_twin_tower() const override { return false; }

  tensor::Tensor ScoreLogit(const data::Example& ex, Rng* rng) override;
  std::vector<tensor::Tensor> Parameters() const override { return {}; }

  std::vector<float> UserQueryEmbeddingInference(graph::NodeId, graph::NodeId,
                                                 Rng*) override {
    return {0.0f};
  }
  std::vector<float> ItemEmbeddingInference(graph::NodeId) override {
    return {0.0f};
  }

  void ScorePool(graph::NodeId user, graph::NodeId query,
                 const std::vector<graph::NodeId>& pool, Rng* rng,
                 std::vector<float>* scores) override;

  /// Raw multi-pin-boosted visit score of one item for the given request.
  double WalkScore(graph::NodeId user, graph::NodeId query,
                   graph::NodeId item, Rng* rng);

 private:
  /// Item-node visit counts of walks restarted at `pin`.
  const std::unordered_map<graph::NodeId, int>& CountsFor(graph::NodeId pin,
                                                          Rng* rng);

  const graph::HeteroGraph* graph_;
  PixieConfig config_;
  // Per-pin visit-count cache: walks are deterministic per pin (seeded by
  // pin id), so counts are reused across examples.
  std::unordered_map<graph::NodeId, std::unordered_map<graph::NodeId, int>>
      cache_;
};

}  // namespace baselines
}  // namespace zoomer

#endif  // ZOOMER_BASELINES_PIXIE_H_
