// PinnerSage (Pal et al., KDD'20): multi-embedding user representation.
// Each user's clicked items (from the training log) are clustered in the
// item-embedding space; the user is represented by the cluster *medoids*
// (actual item nodes, keeping embeddings trainable). At request time the
// medoid most relevant to the query is selected and merged with the query
// embedding in the user-query tower. Medoids are re-clustered at the start
// of each training epoch as item embeddings move.
#ifndef ZOOMER_BASELINES_PINNERSAGE_H_
#define ZOOMER_BASELINES_PINNERSAGE_H_

#include <unordered_map>
#include <vector>

#include "core/model_interface.h"
#include "core/zoomer_model.h"  // SlotEmbeddings
#include "tensor/nn.h"

namespace zoomer {
namespace baselines {

struct PinnerSageConfig {
  int hidden_dim = 16;
  int max_clusters = 3;
  /// Cap on history items considered per user.
  int max_history = 50;
  float logit_scale_init = 5.0f;
  uint64_t seed = 1;
};

class PinnerSageModel : public core::ScoringModel {
 public:
  PinnerSageModel(const graph::HeteroGraph* g, const PinnerSageConfig& config);

  std::string name() const override { return "PinnerSage"; }
  int embedding_dim() const override { return config_.hidden_dim; }

  tensor::Tensor ScoreLogit(const data::Example& ex, Rng* rng) override;
  std::vector<tensor::Tensor> Parameters() const override;
  std::vector<float> UserQueryEmbeddingInference(graph::NodeId user,
                                                 graph::NodeId query,
                                                 Rng* rng) override;
  std::vector<float> ItemEmbeddingInference(graph::NodeId item) override;

  /// Rebuilds per-user histories (first call) and re-clusters medoids under
  /// the current item embeddings.
  void OnEpochBegin(const data::RetrievalDataset& ds, Rng* rng) override;

  /// Medoid item ids of a user (empty if no history).
  const std::vector<graph::NodeId>& Medoids(graph::NodeId user) const;

 private:
  tensor::Tensor NodeEmbedding(graph::NodeId node) const;
  tensor::Tensor ItemTower(graph::NodeId item) const;
  tensor::Tensor UserQueryTower(graph::NodeId user, graph::NodeId query) const;

  const graph::HeteroGraph* graph_;
  PinnerSageConfig config_;
  mutable Rng init_rng_;

  core::SlotEmbeddings slots_;
  std::array<tensor::Linear, graph::kNumNodeTypes> type_map_;
  tensor::Linear uq_tower_;
  tensor::Linear item_tower_;
  tensor::Tensor logit_scale_;

  std::unordered_map<graph::NodeId, std::vector<graph::NodeId>> history_;
  std::unordered_map<graph::NodeId, std::vector<graph::NodeId>> medoids_;
  std::vector<graph::NodeId> empty_;
};

}  // namespace baselines
}  // namespace zoomer

#endif  // ZOOMER_BASELINES_PINNERSAGE_H_
