#include "baselines/gnn_baselines.h"

#include <cmath>

#include "common/logging.h"

namespace zoomer {
namespace baselines {

using core::RoiSubgraph;
using graph::kNumNodeTypes;
using graph::NodeId;
using tensor::Tensor;

namespace {

Tensor StackRows(const std::vector<Tensor>& rows) {
  ZCHECK(!rows.empty());
  Tensor out = rows[0];
  for (size_t i = 1; i < rows.size(); ++i) out = ConcatRows(out, rows[i]);
  return out;
}

Tensor SoftmaxColumn(const Tensor& col) {
  return Transpose(SoftmaxRows(Transpose(col)));
}

}  // namespace

GnnBaselineConfig GnnBaselineConfig::GraphSage(int hidden_dim, int k,
                                               uint64_t seed) {
  GnnBaselineConfig c;
  c.name = "GraphSage";
  c.hidden_dim = hidden_dim;
  c.sampler.k = k;
  c.sampler.kind = core::SamplerKind::kUniform;
  c.aggregator = Aggregator::kMean;
  c.seed = seed;
  return c;
}

GnnBaselineConfig GnnBaselineConfig::Gcn(int hidden_dim, int k,
                                         uint64_t seed) {
  GnnBaselineConfig c = GraphSage(hidden_dim, k, seed);
  c.name = "GCN";
  return c;
}

GnnBaselineConfig GnnBaselineConfig::Gat(int hidden_dim, int k,
                                         uint64_t seed) {
  GnnBaselineConfig c = GraphSage(hidden_dim, k, seed);
  c.name = "GAT";
  c.aggregator = Aggregator::kGat;
  return c;
}

GnnBaselineConfig GnnBaselineConfig::Han(int hidden_dim, int k,
                                         uint64_t seed) {
  GnnBaselineConfig c = GraphSage(hidden_dim, k, seed);
  c.name = "HAN";
  c.aggregator = Aggregator::kGat;
  c.han_semantic = true;
  return c;
}

GnnBaselineConfig GnnBaselineConfig::PinSage(int hidden_dim, int k,
                                             uint64_t seed) {
  GnnBaselineConfig c = GraphSage(hidden_dim, k, seed);
  c.name = "PinSage";
  c.sampler.kind = core::SamplerKind::kRandomWalk;
  c.aggregator = Aggregator::kImportance;
  return c;
}

GnnBaselineModel::GnnBaselineModel(const graph::HeteroGraph* g,
                                   const GnnBaselineConfig& config)
    : graph_(g),
      base_view_(g),
      view_(&base_view_),
      config_(config),
      sampler_(config.sampler),
      init_rng_(config.seed) {
  ZCHECK(g != nullptr);
  const int d = config_.hidden_dim;
  slots_ = core::SlotEmbeddings(*g, d, &init_rng_);
  for (int t = 0; t < kNumNodeTypes; ++t) {
    type_map_[t] = tensor::Linear(d, d, &init_rng_);
  }
  for (int h = 0; h < config_.sampler.num_hops; ++h) {
    hop_combine_.emplace_back(2 * d, d, &init_rng_);
  }
  gat_a_ = Tensor::Xavier(2 * d, 1, &init_rng_, /*requires_grad=*/true);
  semantic_proj_ = tensor::Linear(d, d, &init_rng_);
  semantic_q_ = Tensor::Xavier(d, 1, &init_rng_, /*requires_grad=*/true);
  uq_tower_ = tensor::Linear(2 * d, d, &init_rng_);
  item_tower_ = tensor::Linear(d, d, &init_rng_);
  logit_scale_ =
      Tensor::Full(1, 1, config_.logit_scale_init, /*requires_grad=*/true);
}

Tensor GnnBaselineModel::NodeEmbedding(NodeId node) const {
  Tensor z = MeanRows(slots_.Lookup(*view_, node));
  const int t = static_cast<int>(view_->node_type(node));
  return Tanh(type_map_[t].Forward(z));
}

Tensor GnnBaselineModel::AggregateNode(const RoiSubgraph& roi,
                                       int index) const {
  const core::RoiNode& node = roi.nodes[index];
  Tensor z_self = NodeEmbedding(node.id);
  const int cb = roi.children_begin[index];
  const int ce = roi.children_end[index];
  if (cb >= ce) return z_self;

  std::array<std::vector<Tensor>, kNumNodeTypes> by_type;
  std::array<std::vector<float>, kNumNodeTypes> importance;
  for (int c = cb; c < ce; ++c) {
    const int t = static_cast<int>(view_->node_type(roi.nodes[c].id));
    by_type[t].push_back(AggregateNode(roi, c));
    importance[t].push_back(
        static_cast<float>(std::max(roi.nodes[c].relevance, 1e-3)));
  }

  std::vector<Tensor> type_embeddings;
  for (int t = 0; t < kNumNodeTypes; ++t) {
    if (by_type[t].empty()) continue;
    Tensor z_children = StackRows(by_type[t]);
    const int64_t k = z_children.rows();
    Tensor e_t;
    switch (config_.aggregator) {
      case Aggregator::kMean:
        e_t = MeanRows(z_children);
        break;
      case Aggregator::kGat: {
        // Static pairwise attention (paper eq. 3): no focal conditioning.
        Tensor cat = ConcatCols(TileRows(z_self, k), z_children);
        Tensor scores =
            LeakyRelu(MatMul(cat, gat_a_), config_.leaky_slope);
        Tensor alpha = SoftmaxColumn(scores);
        e_t = MatMul(Transpose(alpha), z_children);
        break;
      }
      case Aggregator::kImportance: {
        // PinSage importance pooling: normalized visit counts.
        float total = 0.0f;
        for (float w : importance[t]) total += w;
        std::vector<float> w(importance[t]);
        for (auto& x : w) x /= total;
        Tensor weights =
            Tensor::FromVector(w, k, 1);  // constant, non-trainable
        e_t = MatMul(Transpose(weights), z_children);
        break;
      }
    }
    type_embeddings.push_back(e_t);
  }

  Tensor h_agg;
  if (type_embeddings.empty()) {
    h_agg = Tensor::Zeros(1, config_.hidden_dim);
  } else if (config_.han_semantic && type_embeddings.size() > 1) {
    // HAN semantic-level attention: w_t = q' tanh(W e_t + b), softmaxed.
    std::vector<Tensor> scores;
    for (const auto& e_t : type_embeddings) {
      scores.push_back(MatMul(Tanh(semantic_proj_.Forward(e_t)), semantic_q_));
    }
    Tensor beta = SoftmaxColumn(StackRows(scores));  // (T x 1)
    for (size_t i = 0; i < type_embeddings.size(); ++i) {
      Tensor w = Rows(beta, {static_cast<int64_t>(i)});  // (1 x 1)
      Tensor weighted = Mul(type_embeddings[i], w);
      h_agg = h_agg.defined() ? Add(h_agg, weighted) : weighted;
    }
  } else {
    for (const auto& e_t : type_embeddings) {
      h_agg = h_agg.defined() ? Add(h_agg, e_t) : e_t;
    }
    h_agg = Scale(h_agg, 1.0f / static_cast<float>(type_embeddings.size()));
  }

  const int hop = std::min<int>(node.depth,
                                static_cast<int>(hop_combine_.size()) - 1);
  return Tanh(hop_combine_[hop].Forward(ConcatCols(z_self, h_agg)));
}

Tensor GnnBaselineModel::EgoEmbedding(NodeId ego, Rng* rng) const {
  // Static samplers ignore the focal vector except for bookkeeping; the ego
  // content stands in so the RoiSampler API stays uniform. Sampling runs
  // through the active view, so an attached dynamic view lets every
  // baseline score freshly ingested edges.
  std::vector<float> fc(view_->content(ego),
                        view_->content(ego) + view_->content_dim());
  RoiSubgraph roi = sampler_.Sample(*view_, ego, fc, rng);
  return AggregateNode(roi, 0);
}

Tensor GnnBaselineModel::UserQueryEmbedding(NodeId user, NodeId query,
                                            Rng* rng) {
  Tensor hu = EgoEmbedding(user, rng);
  Tensor hq = EgoEmbedding(query, rng);
  return Tanh(uq_tower_.Forward(ConcatCols(hu, hq)));
}

Tensor GnnBaselineModel::ItemEmbedding(NodeId item) {
  return Tanh(item_tower_.Forward(NodeEmbedding(item)));
}

Tensor GnnBaselineModel::ScoreLogit(const data::Example& ex, Rng* rng) {
  Tensor uq = UserQueryEmbedding(ex.user, ex.query, rng);
  Tensor it = ItemEmbedding(ex.item);
  return Mul(RowwiseCosine(uq, it), logit_scale_);
}

std::vector<float> GnnBaselineModel::UserQueryEmbeddingInference(NodeId user,
                                                                 NodeId query,
                                                                 Rng* rng) {
  Tensor uq = UserQueryEmbedding(user, query, rng);
  return {uq.data(), uq.data() + uq.size()};
}

std::vector<float> GnnBaselineModel::ItemEmbeddingInference(NodeId item) {
  Tensor it = ItemEmbedding(item);
  return {it.data(), it.data() + it.size()};
}

std::vector<Tensor> GnnBaselineModel::Parameters() const {
  std::vector<Tensor> out = slots_.Parameters();
  for (const auto& l : type_map_) {
    auto p = l.Parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  for (const auto& l : hop_combine_) {
    auto p = l.Parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  out.push_back(gat_a_);
  auto ps = semantic_proj_.Parameters();
  out.insert(out.end(), ps.begin(), ps.end());
  out.push_back(semantic_q_);
  auto pu = uq_tower_.Parameters();
  out.insert(out.end(), pu.begin(), pu.end());
  auto pi = item_tower_.Parameters();
  out.insert(out.end(), pi.begin(), pi.end());
  out.push_back(logit_scale_);
  return out;
}

}  // namespace baselines
}  // namespace zoomer
