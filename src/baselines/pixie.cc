#include "baselines/pixie.h"

#include <cmath>

namespace zoomer {
namespace baselines {

using graph::NodeId;
using graph::NodeType;

PixieModel::PixieModel(const graph::HeteroGraph* g, const PixieConfig& config)
    : graph_(g), config_(config) {}

const std::unordered_map<NodeId, int>& PixieModel::CountsFor(NodeId pin,
                                                             Rng* /*rng*/) {
  auto it = cache_.find(pin);
  if (it != cache_.end()) return it->second;
  std::unordered_map<NodeId, int> counts;
  // Deterministic per pin: walks seeded by the pin id so caching is sound.
  Rng walk_rng(config_.seed * 0x9E3779B9ull + static_cast<uint64_t>(pin));
  NodeId cur = pin;
  for (int step = 0; step < config_.total_steps; ++step) {
    if (walk_rng.Bernoulli(config_.restart_prob)) cur = pin;
    const NodeId nxt = graph_->SampleNeighbor(cur, &walk_rng);
    if (nxt < 0) {
      cur = pin;
      continue;
    }
    cur = nxt;
    if (graph_->node_type(cur) == NodeType::kItem) ++counts[cur];
  }
  return cache_.emplace(pin, std::move(counts)).first->second;
}

double PixieModel::WalkScore(NodeId user, NodeId query, NodeId item,
                             Rng* rng) {
  const auto& cu = CountsFor(user, rng);
  const auto& cq = CountsFor(query, rng);
  auto count = [&](const std::unordered_map<NodeId, int>& c) {
    auto it = c.find(item);
    return it == c.end() ? 0 : it->second;
  };
  // Multi-pin boosting: items reached from both pins score super-additively.
  const double s = std::sqrt(static_cast<double>(count(cu))) +
                   std::sqrt(static_cast<double>(count(cq)));
  return s * s;
}

tensor::Tensor PixieModel::ScoreLogit(const data::Example& ex, Rng* rng) {
  const double score = WalkScore(ex.user, ex.query, ex.item, rng);
  // Monotone squash to a logit-like range; AUC only needs the ordering.
  const float logit = static_cast<float>(std::log1p(score) - 1.0);
  return tensor::Tensor::Scalar(logit);
}

void PixieModel::ScorePool(NodeId user, NodeId query,
                           const std::vector<NodeId>& pool, Rng* rng,
                           std::vector<float>* scores) {
  scores->resize(pool.size());
  for (size_t i = 0; i < pool.size(); ++i) {
    (*scores)[i] = static_cast<float>(WalkScore(user, query, pool[i], rng));
  }
}

}  // namespace baselines
}  // namespace zoomer
