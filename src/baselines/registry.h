// Name-based factory for every model in the paper's evaluation (Zoomer, the
// ablation variants, and all nine baselines), so benches construct their
// model lists declaratively.
#ifndef ZOOMER_BASELINES_REGISTRY_H_
#define ZOOMER_BASELINES_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/model_interface.h"
#include "graph/hetero_graph.h"

namespace zoomer {
namespace baselines {

struct ModelParams {
  int hidden_dim = 16;
  int sample_k = 10;   // neighbors per hop (graph models)
  int num_hops = 2;    // 2 for Taobao graphs, 1 for MovieLens (paper VII-A)
  uint64_t seed = 1;
};

/// Known names: "Zoomer", "Zoomer-FE", "Zoomer-FS", "Zoomer-ES", "GCN",
/// "GraphSage", "GAT", "HAN", "PinSage", "PinnerSage", "Pixie", "STAMP",
/// "GCE-GNN", "FGNN", "MCCF". Returns nullptr for unknown names.
std::unique_ptr<core::ScoringModel> MakeModel(const std::string& name,
                                              const graph::HeteroGraph* g,
                                              const ModelParams& params);

/// All model names with self-developed graph downscaling samplers
/// (paper Sec. VII-E compares these for efficiency).
std::vector<std::string> SamplerBaselineNames();

}  // namespace baselines
}  // namespace zoomer

#endif  // ZOOMER_BASELINES_REGISTRY_H_
