// Durability as a janitor concern (ROADMAP durability item): a maintenance
// policy that drives the persist layer on the same cadence as compaction
// and TTL decay. Each pass asks the graph for its safe-truncate epoch; if
// it advanced far enough past the last durable checkpoint, the policy
// writes an incremental checkpoint (CheckpointWriter reuses every segment
// whose generation is unchanged) and then tells the DeltaLogPersister to
// rotate and garbage-collect the WAL files the new checkpoint covers.
//
// The policy never blocks the serving path: CheckpointWriter snapshots
// through the graph's concurrent-safe accessors, and WAL rotation happens
// on this janitor thread while appends continue into the new active file.
#ifndef ZOOMER_MAINTENANCE_CHECKPOINT_POLICY_H_
#define ZOOMER_MAINTENANCE_CHECKPOINT_POLICY_H_

#include <cstdint>

#include "maintenance/maintenance_policy.h"
#include "persist/checkpoint.h"
#include "persist/wal.h"
#include "streaming/dynamic_hetero_graph.h"

namespace zoomer {
namespace maintenance {

struct CheckpointPolicyOptions {
  /// Write a checkpoint only once SafeTruncateEpoch has advanced at least
  /// this far past the last durable checkpoint. 1 = checkpoint whenever
  /// anything new became coverable; larger values amortize churn.
  uint64_t min_epoch_advance = 1;
};

class CheckpointPolicy final : public MaintenancePolicy {
 public:
  /// `persister` is optional (nullptr skips WAL rotation/GC — checkpoints
  /// still land). All pointers must outlive the scheduler.
  CheckpointPolicy(streaming::DynamicHeteroGraph* graph,
                   persist::CheckpointWriter* writer,
                   persist::DeltaLogPersister* persister,
                   CheckpointPolicyOptions options = {});

  const char* name() const override { return "checkpoint"; }
  StatusOr<MaintenanceReport> RunOnce() override;

  int64_t checkpoints() const { return checkpoints_; }

 private:
  streaming::DynamicHeteroGraph* graph_;
  persist::CheckpointWriter* writer_;
  persist::DeltaLogPersister* persister_;
  const CheckpointPolicyOptions options_;

  int64_t checkpoints_ = 0;  // scheduler serializes RunOnce; no locking
};

}  // namespace maintenance
}  // namespace zoomer

#endif  // ZOOMER_MAINTENANCE_CHECKPOINT_POLICY_H_
