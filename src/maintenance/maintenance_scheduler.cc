#include "maintenance/maintenance_scheduler.h"

#include <algorithm>

#include "common/logging.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace zoomer {
namespace maintenance {

MaintenanceScheduler::MaintenanceScheduler(MaintenanceSchedulerOptions options)
    : options_(options),
      registry_(options.registry != nullptr ? options.registry
                                            : obs::MetricsRegistry::Global()),
      jitter_rng_(options.seed) {
  ZCHECK_GT(options_.num_threads, 0);
  pass_errors_ = registry_->GetCounter("maintenance.pass_errors");
}

MaintenanceScheduler::~MaintenanceScheduler() { Stop(); }

void MaintenanceScheduler::AddPolicy(std::unique_ptr<MaintenancePolicy> policy,
                                     PolicySchedule schedule) {
  ZCHECK(policy != nullptr);
  ZCHECK_GT(schedule.period_ms, 0);
  ZCHECK(schedule.jitter_frac >= 0.0 && schedule.jitter_frac < 1.0);
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  ZCHECK(!started_) << "policies must be registered before Start()";
  for (const auto& e : entries_) {
    ZCHECK(std::string(e->policy->name()) != policy->name())
        << "duplicate policy name " << policy->name();
  }
  auto entry = std::make_unique<Entry>();
  entry->stats.name = policy->name();
  entry->pass_latency_us = registry_->GetHistogram(
      "maintenance.pass_latency_us." + entry->stats.name);
  entry->policy = std::move(policy);
  entry->schedule = schedule;
  entries_.push_back(std::move(entry));
}

void MaintenanceScheduler::AddListener(MaintenanceListener listener) {
  ZCHECK(listener != nullptr);
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  ZCHECK(!started_) << "listeners must be registered before Start()";
  listeners_.push_back(std::move(listener));
}

std::chrono::milliseconds MaintenanceScheduler::JitteredPeriod(
    const PolicySchedule& schedule) {
  const double factor =
      1.0 + schedule.jitter_frac * (2.0 * jitter_rng_.UniformDouble() - 1.0);
  const auto ms = static_cast<int64_t>(
      static_cast<double>(schedule.period_ms) * factor);
  return std::chrono::milliseconds(std::max<int64_t>(1, ms));
}

void MaintenanceScheduler::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_) return;
  started_ = true;
  stopping_ = false;
  const auto now = std::chrono::steady_clock::now();
  for (auto& entry : entries_) {
    entry->next_due = now + JitteredPeriod(entry->schedule);
  }
  workers_ = std::make_unique<ThreadPool>(
      static_cast<size_t>(options_.num_threads));
  timer_ = std::thread([this] { TimerLoop(); });
}

void MaintenanceScheduler::Stop() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (!started_ || stopping_) return;
    stopping_ = true;
  }
  timer_cv_.notify_all();
  if (timer_.joinable()) timer_.join();
  // Shutdown drains passes already handed to the pool; policies stay valid
  // until then because entries_ outlive the workers.
  workers_.reset();
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  started_ = false;
}

void MaintenanceScheduler::TimerLoop() {
  std::unique_lock<std::mutex> lock(lifecycle_mu_);
  while (!stopping_) {
    // Earliest due time across policies bounds the wait; ticks for policies
    // still in flight just reschedule them (no pile-up in the pool).
    auto wake = std::chrono::steady_clock::now() + std::chrono::seconds(1);
    for (const auto& entry : entries_) {
      wake = std::min(wake, entry->next_due);
    }
    timer_cv_.wait_until(lock, wake, [this] { return stopping_; });
    if (stopping_) break;
    const auto now = std::chrono::steady_clock::now();
    for (auto& entry : entries_) {
      if (entry->next_due > now) continue;
      entry->next_due = now + JitteredPeriod(entry->schedule);
      bool expected = false;
      if (!entry->in_flight.compare_exchange_strong(expected, true)) {
        continue;  // previous pass still queued or running
      }
      Entry* raw = entry.get();
      workers_->Submit([this, raw] {
        RunEntry(raw);
        raw->in_flight.store(false, std::memory_order_release);
      });
    }
  }
}

StatusOr<MaintenanceReport> MaintenanceScheduler::RunEntry(Entry* entry) {
  std::lock_guard<std::mutex> run_lock(entry->run_mu);
  StatusOr<MaintenanceReport> result = [&]() -> StatusOr<MaintenanceReport> {
    // Policy name() is a stable string literal per the interface contract,
    // so the span can carry it beyond this frame.
    obs::TraceSpan span(entry->policy->name(), nullptr,
                        entry->pass_latency_us);
    auto pass = entry->policy->RunOnce();
    span.set_attr(pass.ok() && pass.value().acted ? 1 : 0);
    return pass;
  }();
  if (!result.ok()) pass_errors_->Add(1);
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++entry->stats.runs;
    if (!result.ok()) {
      ++entry->stats.errors;
      entry->stats.last_error = result.status().ToString();
    } else if (result.value().acted) {
      ++entry->stats.actions;
    }
  }
  if (result.ok() && result.value().acted) {
    for (const MaintenanceListener& listener : listeners_) {
      listener(entry->stats.name, result.value());
    }
  }
  return result;
}

StatusOr<MaintenanceReport> MaintenanceScheduler::RunOnceForTest(
    const std::string& name) {
  for (auto& entry : entries_) {
    if (entry->stats.name == name) return RunEntry(entry.get());
  }
  return Status::NotFound("no maintenance policy named " + name);
}

std::vector<PolicyStats> MaintenanceScheduler::Stats() const {
  std::vector<PolicyStats> out;
  std::lock_guard<std::mutex> lock(stats_mu_);
  out.reserve(entries_.size());
  for (const auto& entry : entries_) out.push_back(entry->stats);
  return out;
}

}  // namespace maintenance
}  // namespace zoomer
