// TTL/decay maintenance (ROADMAP streaming follow-up: "TTL/decay on delta
// edges to window 1-hour vs 1-day graphs online"). Two halves:
//
//   1. Construction installs the DecaySpec (and LogicalClock) on the
//      DynamicHeteroGraph, turning every snapshot read decay-aware: delta
//      entries past their per-kind TTL disappear from degrees, merges, and
//      sampling, and un-expired entries contribute exponentially
//      time-decayed weight. This is non-destructive windowing — individual
//      views can still override the spec for a different horizon.
//   2. RunOnce() is the garbage collector: it physically removes entries
//      whose TTL has lapsed (they are invisible to every decay-aware reader
//      already), returning their memory and reporting the touched nodes so
//      serving caches re-fill without the dead edges. Expiry is the one
//      overlay mutation that does not bump a node's delta epoch, so the
//      sweep also eagerly invalidates the hot-node cache for those nodes.
//      With a GraphDeltaLog attached, the sweep also TTL-truncates the
//      in-memory log itself (GraphDeltaLog::TruncateExpired): batches whose
//      every event aged past its window are dropped up to the graph's
//      watermark, so a quiet stream no longer pins applied entries until
//      the next compaction fold.
#ifndef ZOOMER_MAINTENANCE_TTL_DECAY_POLICY_H_
#define ZOOMER_MAINTENANCE_TTL_DECAY_POLICY_H_

#include "common/clock.h"
#include "maintenance/maintenance_policy.h"
#include "streaming/dynamic_hetero_graph.h"
#include "streaming/edge_decay.h"
#include "streaming/graph_delta_log.h"

namespace zoomer {

namespace obs {
class Counter;
}  // namespace obs

namespace maintenance {

class TtlDecayPolicy final : public MaintenancePolicy {
 public:
  /// Installs `spec`/`clock` on the graph (ConfigureDecay). Graph and clock
  /// must outlive the policy's scheduler. `log` is optional: when given,
  /// every sweep also truncates fully-expired batches from it (bounded by
  /// the graph's watermark so issued-but-unapplied batches survive).
  TtlDecayPolicy(streaming::DynamicHeteroGraph* graph,
                 const LogicalClock* clock, const streaming::DecaySpec& spec,
                 streaming::GraphDeltaLog* log = nullptr);

  const char* name() const override { return "ttl_decay"; }
  StatusOr<MaintenanceReport> RunOnce() override;

  int64_t log_batches_truncated() const { return log_batches_truncated_; }

 private:
  streaming::DynamicHeteroGraph* graph_;
  const LogicalClock* clock_;
  streaming::GraphDeltaLog* log_;
  int64_t log_batches_truncated_ = 0;  // scheduler serializes RunOnce
  // Global-registry counters (sweeps are process-level janitor work).
  obs::Counter* expired_nodes_ = nullptr;
  obs::Counter* log_truncated_ = nullptr;
};

}  // namespace maintenance
}  // namespace zoomer

#endif  // ZOOMER_MAINTENANCE_TTL_DECAY_POLICY_H_
