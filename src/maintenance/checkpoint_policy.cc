#include "maintenance/checkpoint_policy.h"

#include <string>

#include "common/logging.h"

namespace zoomer {
namespace maintenance {

CheckpointPolicy::CheckpointPolicy(streaming::DynamicHeteroGraph* graph,
                                   persist::CheckpointWriter* writer,
                                   persist::DeltaLogPersister* persister,
                                   CheckpointPolicyOptions options)
    : graph_(graph), writer_(writer), persister_(persister),
      options_(options) {
  ZCHECK(graph_ != nullptr);
  ZCHECK(writer_ != nullptr);
  ZCHECK_GE(options_.min_epoch_advance, uint64_t{1})
      << "min_epoch_advance 0 would re-checkpoint an idle graph every pass";
}

StatusOr<MaintenanceReport> CheckpointPolicy::RunOnce() {
  MaintenanceReport report;
  const uint64_t coverable = graph_->SafeTruncateEpoch();
  const uint64_t last = writer_->last_checkpoint_epoch();
  if (coverable < last + options_.min_epoch_advance) {
    return report;  // nothing new became durable-coverable since last pass
  }

  StatusOr<persist::CheckpointStats> stats = writer_->Write();
  if (!stats.ok()) return stats.status();
  if (persister_ != nullptr) {
    // Rotation/GC failure does not undo the checkpoint — surface it but
    // keep the report truthful about what landed.
    Status st = persister_->OnCheckpoint(stats.value().checkpoint_epoch);
    if (!st.ok()) {
      ZLOG(WARNING) << "WAL rotation after checkpoint failed: "
                    << st.ToString();
    }
  }
  ++checkpoints_;

  report.acted = true;
  report.detail = "checkpoint @ epoch " +
                  std::to_string(stats.value().checkpoint_epoch) + ": " +
                  std::to_string(stats.value().segments_written) +
                  " segments written, " +
                  std::to_string(stats.value().segments_reused) +
                  " reused, " + std::to_string(stats.value().bytes_written) +
                  " bytes";
  return report;
}

}  // namespace maintenance
}  // namespace zoomer
