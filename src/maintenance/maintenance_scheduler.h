// Background janitor for the dynamic graph (ROADMAP streaming follow-up:
// "scheduled/background Compact() … now that mid-ingest compaction is
// safe"). The scheduler owns a set of MaintenancePolicy instances, ticks
// each on its own jittered period from a timer thread, and executes due
// passes on a small worker pool so one slow pass (a full compaction) cannot
// starve the others.
//
// Jitter: each wait is drawn uniformly from [1 - j, 1 + j] * period with a
// deterministic seeded Rng, so co-scheduled policies (or many schedulers in
// a fleet) do not phase-lock their heavy passes.
//
// Determinism for tests: RunOnceForTest(name) executes a policy
// synchronously on the caller's thread — serialized against janitor runs of
// the same policy — so tests drive maintenance explicitly instead of
// sleeping. Periods govern cadence only (real time); anything that reasons
// about *event* time (TTL, decay, delta age) goes through the injectable
// LogicalClock owned by the policy.
//
// Listener protocol: every pass that acted is fanned out to the registered
// listeners with its MaintenanceReport; OnlineServer::AttachMaintenance uses
// this to invalidate NeighborCache entries for nodes whose neighborhoods a
// policy changed. Listeners run on janitor threads — keep them cheap.
#ifndef ZOOMER_MAINTENANCE_MAINTENANCE_SCHEDULER_H_
#define ZOOMER_MAINTENANCE_MAINTENANCE_SCHEDULER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/threadpool.h"
#include "maintenance/maintenance_policy.h"

namespace zoomer {

namespace obs {
class Counter;
class Histogram;
class MetricsRegistry;
}  // namespace obs

namespace maintenance {

struct PolicySchedule {
  /// Base tick period. The first tick fires one (jittered) period after
  /// Start(), not immediately.
  int64_t period_ms = 1000;
  /// Fractional jitter: each wait is period * U[1 - j, 1 + j]. 0 = strict.
  double jitter_frac = 0.2;
};

struct MaintenanceSchedulerOptions {
  /// Janitor worker threads executing due passes.
  int num_threads = 1;
  /// Seed of the jitter Rng (deterministic tick spacing given one thread).
  uint64_t seed = 97;
  /// Metrics registry for pass telemetry ("maintenance.pass_latency_us.
  /// <policy>", "maintenance.pass_errors"). Null means the process-global
  /// registry.
  obs::MetricsRegistry* registry = nullptr;
};

/// Per-policy counters (snapshot, in registration order).
struct PolicyStats {
  std::string name;
  int64_t runs = 0;     // completed passes (janitor + RunOnceForTest)
  int64_t actions = 0;  // passes with report.acted
  int64_t errors = 0;   // passes returning a non-OK status
  std::string last_error;
};

class MaintenanceScheduler {
 public:
  using MaintenanceListener =
      std::function<void(const std::string& policy_name,
                         const MaintenanceReport& report)>;

  explicit MaintenanceScheduler(MaintenanceSchedulerOptions options = {});
  ~MaintenanceScheduler();

  MaintenanceScheduler(const MaintenanceScheduler&) = delete;
  MaintenanceScheduler& operator=(const MaintenanceScheduler&) = delete;

  /// Registers a policy under `schedule`. Must precede Start(). Everything
  /// the policy touches (graph, log, caches, clock) must outlive this
  /// scheduler.
  void AddPolicy(std::unique_ptr<MaintenancePolicy> policy,
                 PolicySchedule schedule);

  /// Registers a listener fired after every pass that acted. Must precede
  /// Start().
  void AddListener(MaintenanceListener listener);

  /// Launches the timer thread and worker pool. Idempotent.
  void Start();

  /// Stops ticking, drains in-flight passes, joins everything. Idempotent;
  /// also called by the destructor.
  void Stop();

  /// Synchronously runs the named policy on the caller's thread, firing
  /// listeners and updating stats exactly like a janitor pass. Works with
  /// or without Start(). NotFound for unknown names.
  StatusOr<MaintenanceReport> RunOnceForTest(const std::string& name);

  std::vector<PolicyStats> Stats() const;

 private:
  struct Entry {
    std::unique_ptr<MaintenancePolicy> policy;
    PolicySchedule schedule;
    /// Registry-owned per-policy pass-latency histogram (resolved at
    /// AddPolicy so RunEntry never touches the registry map).
    obs::Histogram* pass_latency_us = nullptr;
    std::chrono::steady_clock::time_point next_due;
    /// Serializes passes of this policy (janitor vs. RunOnceForTest).
    std::mutex run_mu;
    /// Set while a janitor pass is queued or running, so a slow pass is
    /// skipped by later ticks instead of piling up in the pool.
    std::atomic<bool> in_flight{false};
    PolicyStats stats;  // guarded by stats_mu_
  };

  /// Executes one pass of `entry` (caller holds no locks), updating stats
  /// and firing listeners.
  StatusOr<MaintenanceReport> RunEntry(Entry* entry);

  void TimerLoop();
  std::chrono::milliseconds JitteredPeriod(const PolicySchedule& schedule);

  MaintenanceSchedulerOptions options_;
  obs::MetricsRegistry* registry_;      // resolved (never null)
  obs::Counter* pass_errors_ = nullptr; // maintenance.pass_errors
  std::vector<std::unique_ptr<Entry>> entries_;
  std::vector<MaintenanceListener> listeners_;

  Rng jitter_rng_;  // timer thread only (after Start)

  std::mutex lifecycle_mu_;
  std::condition_variable timer_cv_;
  bool started_ = false;   // guarded by lifecycle_mu_
  bool stopping_ = false;  // guarded by lifecycle_mu_
  std::thread timer_;
  std::unique_ptr<ThreadPool> workers_;

  mutable std::mutex stats_mu_;
};

}  // namespace maintenance
}  // namespace zoomer

#endif  // ZOOMER_MAINTENANCE_MAINTENANCE_SCHEDULER_H_
