// Incremental compaction policy (ROADMAP maintenance follow-up: "fold only
// hot shards instead of a full CSR rebuild" + "adaptive hotness thresholds
// from observed read rates"). Each janitor pass reads the graph's
// per-segment overlay pressure (DynamicHeteroGraph::SegmentPressures) and
// folds only the segments whose pending delta mass crossed an *adaptive*
// budget: segments whose overlay-path read rate since the last pass runs
// above the fleet average fold sooner (reads are what pay the overlay
// merge cost), cold segments may lag proportionally longer. Frontier
// segments (overlay-born nodes awaiting their first fold) trigger on
// pending node count. The old full Compact() remains as the safety net:
// the global entry/byte/age thresholds — the legacy static triggers —
// force a fold of every dirty segment at once.
//
// After any fold the policy truncates the delta log through
// DynamicHeteroGraph::SafeTruncateEpoch(), the largest epoch no overlay
// entry still pends on — correct even when different segments have folded
// through different epochs.
#ifndef ZOOMER_MAINTENANCE_COMPACTION_POLICY_H_
#define ZOOMER_MAINTENANCE_COMPACTION_POLICY_H_

#include <cstdint>
#include <vector>

#include "common/clock.h"
#include "maintenance/maintenance_policy.h"
#include "streaming/dynamic_hetero_graph.h"
#include "streaming/graph_delta_log.h"

namespace zoomer {
namespace maintenance {

struct CompactionPolicyOptions {
  /// Fold every dirty segment once the overlay holds this many delta
  /// half-edges in total. 0 disables.
  int64_t max_delta_entries = 50000;
  /// Same, once the overlay resident size crosses this. 0 disables.
  size_t max_overlay_bytes = 0;
  /// Same, once deltas have been pending this long since the policy first
  /// saw a non-empty overlay. 0 disables; requires a clock when set.
  int64_t max_delta_age_seconds = 0;

  /// Incremental mode: fold an individual segment once its pending entries
  /// cross its *effective* budget (see read_hot_boost). Also the pending
  /// overlay-node count that triggers a frontier fold. 0 disables
  /// per-segment folds — only the global thresholds above act (legacy
  /// full-fold behavior).
  int64_t segment_entry_budget = 0;
  /// Adaptive hotness from observed read rates: a segment's effective
  /// budget is segment_entry_budget scaled by avg_read_rate / its own read
  /// rate (since the last pass), clamped to [budget / boost, budget *
  /// boost]. Read-hot segments therefore fold up to `boost`x sooner, cold
  /// ones lag up to `boost`x longer. 1.0 disables the adaptation.
  double read_hot_boost = 4.0;
  /// Cap on segments folded per pass, hottest (by pending entries weighted
  /// with read rate) first. 0 = no cap.
  int max_segments_per_pass = 0;
};

class CompactionPolicy final : public MaintenancePolicy {
 public:
  /// `log` is optional (nullptr skips truncation); `clock` may be null
  /// unless max_delta_age_seconds is set. All must outlive the scheduler.
  CompactionPolicy(streaming::DynamicHeteroGraph* graph,
                   streaming::GraphDeltaLog* log, const LogicalClock* clock,
                   CompactionPolicyOptions options);

  const char* name() const override { return "compaction"; }
  StatusOr<MaintenanceReport> RunOnce() override;

  /// Folds performed (full and incremental) and incremental-only count.
  int64_t compactions() const { return compactions_; }
  int64_t incremental_compactions() const { return incremental_; }

 private:
  /// Segments whose pressure crosses the adaptive budget this pass (empty
  /// when incremental mode is off or nothing qualifies).
  std::vector<int64_t> SelectDirtySegments(
      const std::vector<streaming::SegmentPressure>& pressures);

  streaming::DynamicHeteroGraph* graph_;
  streaming::GraphDeltaLog* log_;
  const LogicalClock* clock_;
  CompactionPolicyOptions options_;

  /// Clock reading when the overlay last transitioned empty -> non-empty
  /// (-1 while empty). Scheduler serializes RunOnce, so no locking.
  int64_t deltas_pending_since_ = -1;
  int64_t compactions_ = 0;
  int64_t incremental_ = 0;
  /// Cumulative per-segment read counters at the previous pass, to
  /// difference rates from.
  std::vector<int64_t> last_reads_;
};

}  // namespace maintenance
}  // namespace zoomer

#endif  // ZOOMER_MAINTENANCE_COMPACTION_POLICY_H_
