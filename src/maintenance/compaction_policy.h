// Scheduled compaction (ROADMAP streaming follow-up): a janitor policy that
// watches the delta overlay and triggers DynamicHeteroGraph::Compact() —
// safe mid-ingest since PR 2's quiescence handshake — once any configured
// threshold is crossed: overlay entry count, overlay resident bytes, or the
// age of the oldest un-compacted deltas (measured on the injectable
// LogicalClock so tests are deterministic). After a successful fold the
// policy truncates the delta log through the folded epoch, so callers no
// longer manage the Compact()/Truncate() pair themselves.
#ifndef ZOOMER_MAINTENANCE_COMPACTION_POLICY_H_
#define ZOOMER_MAINTENANCE_COMPACTION_POLICY_H_

#include <cstdint>

#include "common/clock.h"
#include "maintenance/maintenance_policy.h"
#include "streaming/dynamic_hetero_graph.h"
#include "streaming/graph_delta_log.h"

namespace zoomer {
namespace maintenance {

struct CompactionPolicyOptions {
  /// Fold once the overlay holds this many delta half-edges. 0 disables.
  int64_t max_delta_entries = 50000;
  /// Fold once the overlay resident size crosses this. 0 disables.
  size_t max_overlay_bytes = 0;
  /// Fold once deltas have been pending this long since the policy first
  /// saw a non-empty overlay. 0 disables; requires a clock when set.
  int64_t max_delta_age_seconds = 0;
};

class CompactionPolicy final : public MaintenancePolicy {
 public:
  /// `log` is optional (nullptr skips truncation); `clock` may be null
  /// unless max_delta_age_seconds is set. All must outlive the scheduler.
  CompactionPolicy(streaming::DynamicHeteroGraph* graph,
                   streaming::GraphDeltaLog* log, const LogicalClock* clock,
                   CompactionPolicyOptions options);

  const char* name() const override { return "compaction"; }
  StatusOr<MaintenanceReport> RunOnce() override;

  int64_t compactions() const { return compactions_; }

 private:
  streaming::DynamicHeteroGraph* graph_;
  streaming::GraphDeltaLog* log_;
  const LogicalClock* clock_;
  CompactionPolicyOptions options_;

  /// Clock reading when the overlay last transitioned empty -> non-empty
  /// (-1 while empty). Scheduler serializes RunOnce, so no locking.
  int64_t deltas_pending_since_ = -1;
  int64_t compactions_ = 0;
};

}  // namespace maintenance
}  // namespace zoomer

#endif  // ZOOMER_MAINTENANCE_COMPACTION_POLICY_H_
