#include "maintenance/compaction_policy.h"

#include <string>

#include "common/logging.h"

namespace zoomer {
namespace maintenance {

CompactionPolicy::CompactionPolicy(streaming::DynamicHeteroGraph* graph,
                                   streaming::GraphDeltaLog* log,
                                   const LogicalClock* clock,
                                   CompactionPolicyOptions options)
    : graph_(graph), log_(log), clock_(clock), options_(options) {
  ZCHECK(graph_ != nullptr);
  ZCHECK(options_.max_delta_entries > 0 || options_.max_overlay_bytes > 0 ||
         options_.max_delta_age_seconds > 0)
      << "compaction policy needs at least one trigger threshold";
  ZCHECK(options_.max_delta_age_seconds == 0 || clock_ != nullptr)
      << "age-triggered compaction requires a logical clock";
}

StatusOr<MaintenanceReport> CompactionPolicy::RunOnce() {
  MaintenanceReport report;
  const int64_t entries = graph_->num_delta_entries();
  if (entries == 0) {
    deltas_pending_since_ = -1;
    return report;
  }
  if (deltas_pending_since_ < 0 && clock_ != nullptr) {
    deltas_pending_since_ = clock_->NowSeconds();
  }

  bool triggered = options_.max_delta_entries > 0 &&
                   entries >= options_.max_delta_entries;
  if (!triggered && options_.max_overlay_bytes > 0) {
    triggered = graph_->OverlayMemoryBytes() >= options_.max_overlay_bytes;
  }
  if (!triggered && options_.max_delta_age_seconds > 0 &&
      deltas_pending_since_ >= 0) {
    triggered = clock_->NowSeconds() - deltas_pending_since_ >=
                options_.max_delta_age_seconds;
  }
  if (!triggered) return report;

  StatusOr<uint64_t> folded = graph_->Compact();
  if (!folded.ok()) return folded.status();
  if (log_ != nullptr) log_->Truncate(folded.value());
  deltas_pending_since_ = -1;
  ++compactions_;

  report.acted = true;
  report.graph_rebuilt = true;
  // Weighted neighbor distributions are preserved by the fold, so per-node
  // serving caches stay content-valid; no touched list.
  report.detail = "folded " + std::to_string(entries) +
                  " delta half-edges through epoch " +
                  std::to_string(folded.value());
  return report;
}

}  // namespace maintenance
}  // namespace zoomer
