#include "maintenance/compaction_policy.h"

#include <algorithm>
#include <string>

#include "common/logging.h"

namespace zoomer {
namespace maintenance {

CompactionPolicy::CompactionPolicy(streaming::DynamicHeteroGraph* graph,
                                   streaming::GraphDeltaLog* log,
                                   const LogicalClock* clock,
                                   CompactionPolicyOptions options)
    : graph_(graph), log_(log), clock_(clock), options_(options) {
  ZCHECK(graph_ != nullptr);
  ZCHECK(options_.max_delta_entries > 0 || options_.max_overlay_bytes > 0 ||
         options_.max_delta_age_seconds > 0 ||
         options_.segment_entry_budget > 0)
      << "compaction policy needs at least one trigger threshold";
  ZCHECK(options_.max_delta_age_seconds == 0 || clock_ != nullptr)
      << "age-triggered compaction requires a logical clock";
  ZCHECK_GE(options_.read_hot_boost, 1.0)
      << "read_hot_boost scales budgets symmetrically; must be >= 1";
}

std::vector<int64_t> CompactionPolicy::SelectDirtySegments(
    const std::vector<streaming::SegmentPressure>& pressures) {
  std::vector<int64_t> selected;
  if (options_.segment_entry_budget <= 0) return selected;
  // Read rates since the last pass: the counters are cumulative, so the
  // difference is this interval's overlay-read traffic per segment.
  if (last_reads_.size() < pressures.size()) {
    last_reads_.resize(pressures.size(), 0);
  }
  std::vector<int64_t> read_delta(pressures.size(), 0);
  double rate_sum = 0.0;
  int64_t dirty_segments = 0;
  for (size_t i = 0; i < pressures.size(); ++i) {
    read_delta[i] = std::max<int64_t>(0, pressures[i].reads - last_reads_[i]);
    if (pressures[i].delta_entries > 0 || pressures[i].pending_nodes > 0) {
      rate_sum += static_cast<double>(read_delta[i]);
      ++dirty_segments;
    }
  }
  const double avg_rate =
      dirty_segments > 0 ? rate_sum / static_cast<double>(dirty_segments)
                         : 0.0;

  struct Candidate {
    int64_t segment;
    double urgency;
  };
  std::vector<Candidate> candidates;
  for (const auto& p : pressures) {
    if (p.delta_entries == 0 && p.pending_nodes == 0) continue;
    // Adaptive hotness: the effective budget shrinks for segments whose
    // overlay reads run above the dirty-segment average (their readers pay
    // the two-level merge on every draw) and stretches for cold ones.
    double eff = static_cast<double>(options_.segment_entry_budget);
    if (options_.read_hot_boost > 1.0) {
      const double norm = (static_cast<double>(read_delta[p.segment]) + 1.0) /
                          (avg_rate + 1.0);
      const double scale = std::clamp(1.0 / norm, 1.0 / options_.read_hot_boost,
                                      options_.read_hot_boost);
      eff *= scale;
    }
    const double pressure =
        static_cast<double>(p.delta_entries + p.pending_nodes);
    if (pressure >= eff) {
      candidates.push_back({p.segment, pressure / eff});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.urgency > b.urgency;
            });
  if (options_.max_segments_per_pass > 0 &&
      static_cast<int>(candidates.size()) > options_.max_segments_per_pass) {
    candidates.resize(options_.max_segments_per_pass);
  }
  selected.reserve(candidates.size());
  for (const Candidate& c : candidates) selected.push_back(c.segment);
  // The baseline only advances for folded segments: an unfolded segment's
  // reads keep accumulating toward its hotness, instead of resetting every
  // pass and never crossing the budget.
  for (const Candidate& c : candidates) {
    last_reads_[c.segment] = pressures[c.segment].reads;
  }
  return selected;
}

StatusOr<MaintenanceReport> CompactionPolicy::RunOnce() {
  MaintenanceReport report;
  const int64_t entries = graph_->num_delta_entries();
  const graph::NodeId covered_before =
      static_cast<graph::NodeId>(graph_->base()->num_nodes());
  const int64_t pending_nodes =
      graph_->num_nodes_allocated() - covered_before;
  if (entries == 0 && pending_nodes <= 0) {
    deltas_pending_since_ = -1;
    return report;
  }
  if (deltas_pending_since_ < 0 && clock_ != nullptr) {
    deltas_pending_since_ = clock_->NowSeconds();
  }

  // Legacy global thresholds: any of them forces a full fold of every
  // dirty segment at once (the safety net under sustained uniform load).
  bool full = options_.max_delta_entries > 0 &&
              entries >= options_.max_delta_entries;
  if (!full && options_.max_overlay_bytes > 0) {
    full = graph_->OverlayMemoryBytes() >= options_.max_overlay_bytes;
  }
  if (!full && options_.max_delta_age_seconds > 0 &&
      deltas_pending_since_ >= 0) {
    full = clock_->NowSeconds() - deltas_pending_since_ >=
           options_.max_delta_age_seconds;
  }

  std::vector<int64_t> selected;
  if (!full) {
    selected = SelectDirtySegments(graph_->SegmentPressures());
    if (selected.empty()) return report;
  }

  StatusOr<uint64_t> folded =
      full ? graph_->Compact() : graph_->CompactSegments(selected);
  if (!folded.ok()) return folded.status();
  // Truncation is epoch-safe across partial folds: SafeTruncateEpoch is
  // bounded by the oldest entry still pending in *any* overlay.
  if (log_ != nullptr) log_->Truncate(graph_->SafeTruncateEpoch());
  if (graph_->num_delta_entries() == 0) deltas_pending_since_ = -1;
  ++compactions_;
  if (!full) ++incremental_;

  report.acted = true;
  report.graph_rebuilt = true;
  // Without a TTL window the fold provably preserves every weighted
  // neighbor distribution, so serving caches stay content-valid and no
  // ranges are reported (the zero-invalidation behavior full Compact()
  // always had). Only under a TTL window — where the fold ages entries out
  // of raw-visible rows — do listeners need to refresh the rebuilt ranges.
  if (graph_->decay_spec().has_ttl()) {
    const graph::NodeId covered_after =
        static_cast<graph::NodeId>(graph_->base()->num_nodes());
    const int64_t span = graph_->segment_span();
    if (full) {
      report.folded_ranges.push_back({0, covered_after});
    } else {
      for (int64_t s : selected) {
        const graph::NodeId lo = static_cast<graph::NodeId>(s * span);
        const graph::NodeId hi = std::min<graph::NodeId>(
            static_cast<graph::NodeId>((s + 1) * span), covered_after);
        if (lo < hi) report.folded_ranges.push_back({lo, hi});
      }
      if (covered_after > covered_before) {
        // A frontier selection implicitly folds every segment from the old
        // coverage to the new bound (CompactSegments keeps coverage
        // contiguous) — report those rows too, from the start of the
        // partial segment the growth rebuilt.
        const graph::NodeId lo =
            covered_before > 0
                ? static_cast<graph::NodeId>(((covered_before - 1) / span) *
                                             span)
                : 0;
        report.folded_ranges.push_back({lo, covered_after});
      }
    }
  }
  report.detail =
      (full ? "full fold of " : "incremental fold of ") +
      std::to_string(full ? entries : static_cast<int64_t>(selected.size())) +
      (full ? " delta half-edges" : " dirty segments") + " through epoch " +
      std::to_string(folded.value());
  return report;
}

}  // namespace maintenance
}  // namespace zoomer
