// Pluggable units of background graph upkeep driven by the
// MaintenanceScheduler (the "janitor" of the streaming subsystem). A policy
// owns one concern — compacting delta overlays, expiring TTL'd edges,
// refreshing hot-node caches — and exposes a single idempotent RunOnce()
// pass. Policies never block the serving path: they run on janitor threads
// and interact with the graph through the same concurrency-safe entry points
// callers use (Compact()'s quiescence handshake, exclusive shard sweeps).
//
// RunOnce() reports what changed so the scheduler can fan the consequences
// out to listeners (e.g. serving-layer NeighborCache invalidation) without
// the policy knowing who is downstream.
#ifndef ZOOMER_MAINTENANCE_MAINTENANCE_POLICY_H_
#define ZOOMER_MAINTENANCE_MAINTENANCE_POLICY_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "graph/hetero_graph.h"

namespace zoomer {
namespace maintenance {

/// What a maintenance pass changed, for downstream invalidation.
struct MaintenanceReport {
  /// False for a pass that inspected state and found nothing to do.
  bool acted = false;
  /// The base was swapped (a full or incremental fold). Weighted
  /// distributions are preserved by the fold, so serving caches stay
  /// content-valid; overlay epoch state of the folded rows is reset.
  bool graph_rebuilt = false;
  /// Node-id ranges [begin, end) whose base segments a fold rebuilt,
  /// populated only when the fold could change raw-visible content (a TTL
  /// window is active, so entries aged out at fold time). Listeners
  /// invalidate these ranges instead of flushing the whole graph; without
  /// a window the fold preserves every weighted distribution and the list
  /// stays empty (no serving invalidation at all).
  std::vector<std::pair<graph::NodeId, graph::NodeId>> folded_ranges;
  /// Nodes whose visible neighborhood changed (e.g. lost TTL-expired
  /// edges). Listeners invalidate per-node caches with this.
  std::vector<graph::NodeId> touched;
  /// Human-readable one-liner for logs and stats.
  std::string detail;
};

class MaintenancePolicy {
 public:
  virtual ~MaintenancePolicy() = default;

  /// Stable identifier used by MaintenanceScheduler::RunOnceForTest and
  /// per-policy stats.
  virtual const char* name() const = 0;

  /// One maintenance pass. Must be safe to call concurrently with readers
  /// and the ingest pipeline; the scheduler serializes passes of the same
  /// policy (including RunOnceForTest) so implementations need not be
  /// re-entrant.
  virtual StatusOr<MaintenanceReport> RunOnce() = 0;
};

}  // namespace maintenance
}  // namespace zoomer

#endif  // ZOOMER_MAINTENANCE_MAINTENANCE_POLICY_H_
