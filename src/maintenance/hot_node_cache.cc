#include "maintenance/hot_node_cache.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "common/logging.h"
#include "obs/trace.h"
#include "streaming/dynamic_hetero_graph.h"

namespace zoomer {
namespace maintenance {

using graph::NodeId;

HotNodeOverlayCache::HotNodeOverlayCache(int64_t num_nodes,
                                         HotNodeCacheOptions options)
    : options_(options),
      slots_(static_cast<size_t>(num_nodes)),
      registry_(options.registry != nullptr ? options.registry
                                            : obs::MetricsRegistry::Global()) {
  ZCHECK_GT(options_.min_delta_entries, 0);
  ZCHECK_GE(options_.read_admit_boost, 1.0)
      << "read_admit_boost scales the admission floor symmetrically";
  ZCHECK_GE(num_nodes, 0);
  const std::pair<const char*, const obs::Counter*> views[] = {
      {"maintenance.hot_cache.hits", &hits_},
      {"maintenance.hot_cache.misses", &misses_},
      {"maintenance.hot_cache.installs", &installs_},
      {"maintenance.hot_cache.rejected_installs", &rejected_installs_},
      {"maintenance.hot_cache.invalidations", &invalidations_},
  };
  for (const auto& [name, view] : views) {
    registry_->RegisterCounter(name, view);
    registered_.emplace_back(name, view);
  }
}

HotNodeOverlayCache::~HotNodeOverlayCache() {
  for (const auto& [name, ptr] : registered_) {
    registry_->Unregister(name, ptr);
  }
  // Contract: no pins (snapshots) outlive the cache, so everything is
  // reclaimable here.
  for (auto& slot : slots_) delete slot.load(std::memory_order_acquire);
  for (Entry* entry : retired_) delete entry;
}

std::shared_ptr<void> HotNodeOverlayCache::PinReaders() {
  pins_.fetch_add(1, std::memory_order_acq_rel);
  // The token is just a deleter; copies share one unpin.
  return std::shared_ptr<void>(static_cast<void*>(this),
                               [this](void*) { Unpin(); });
}

void HotNodeOverlayCache::Unpin() {
  if (pins_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(write_mu_);
    MaybeReclaimLocked();
  }
}

void HotNodeOverlayCache::RetireLocked(Entry* entry) {
  retired_.push_back(entry);
  MaybeReclaimLocked();
}

void HotNodeOverlayCache::MaybeReclaimLocked() {
  // A pin taken after this check cannot reach the retired entries: they
  // left the slot array before retirement, and Find() only chases current
  // slot pointers.
  if (pins_.load(std::memory_order_acquire) != 0) return;
  for (Entry* entry : retired_) delete entry;
  retired_.clear();
}

bool HotNodeOverlayCache::EntryValid(const Entry& entry,
                                     uint64_t current_overlay_version,
                                     uint64_t segment_generation,
                                     bool decay_active,
                                     int64_t as_of_seconds,
                                     const streaming::DecaySpec& spec) const {
  if (entry.overlay_version != current_overlay_version) return false;
  if (entry.segment_generation != segment_generation) return false;
  if (entry.decayed != decay_active) return false;
  if (decay_active) {
    if (std::abs(as_of_seconds - entry.as_of_seconds) >
        options_.decay_staleness_tolerance_seconds) {
      return false;
    }
    // A per-view window must never serve another window's merge.
    if (!(entry.spec == spec)) return false;
  }
  return true;
}

const HotNodeOverlayCache::Entry* HotNodeOverlayCache::Find(
    NodeId node, uint64_t snapshot_epoch, uint64_t current_overlay_version,
    uint64_t segment_generation, bool decay_active, int64_t as_of_seconds,
    const streaming::DecaySpec& spec) const {
  // Ids born after the cache was sized (streamed id-space growth) simply
  // miss — they are served by the overlay until the next cache rebuild.
  if (node < 0 || node >= static_cast<NodeId>(slots_.size())) {
    misses_.Add(1);
    return nullptr;
  }
  const Entry* entry =
      slots_[static_cast<size_t>(node)].load(std::memory_order_acquire);
  if (entry != nullptr && snapshot_epoch >= entry->overlay_version &&
      EntryValid(*entry, current_overlay_version, segment_generation,
                 decay_active, as_of_seconds, spec)) {
    hits_.Add(1);
    return entry;
  }
  misses_.Add(1);
  return nullptr;
}

bool HotNodeOverlayCache::IsFresh(NodeId node,
                                  uint64_t current_overlay_version,
                                  uint64_t segment_generation,
                                  bool decay_active, int64_t as_of_seconds,
                                  const streaming::DecaySpec& spec) const {
  if (node < 0 || node >= static_cast<NodeId>(slots_.size())) return false;
  const Entry* entry =
      slots_[static_cast<size_t>(node)].load(std::memory_order_acquire);
  return entry != nullptr &&
         EntryValid(*entry, current_overlay_version, segment_generation,
                    decay_active, as_of_seconds, spec);
}

bool HotNodeOverlayCache::Install(NodeId node, Entry entry) {
  if (node < 0 || node >= static_cast<NodeId>(slots_.size())) {
    // The slot array is sized once; nodes born later stay uncached until a
    // rebuild (counted so the refresh policy's skips are observable).
    rejected_installs_.Add(1);
    return false;
  }
  std::lock_guard<std::mutex> lock(write_mu_);
  auto& slot = slots_[static_cast<size_t>(node)];
  Entry* old = slot.load(std::memory_order_acquire);
  if (old == nullptr) {
    if (total_entries_.load(std::memory_order_acquire) >=
        options_.max_entries) {
      rejected_installs_.Add(1);
      return false;
    }
    total_entries_.fetch_add(1, std::memory_order_acq_rel);
  }
  slot.store(new Entry(std::move(entry)), std::memory_order_release);
  if (old != nullptr) RetireLocked(old);
  installs_.Add(1);
  return true;
}

void HotNodeOverlayCache::Invalidate(NodeId node) {
  if (static_cast<size_t>(node) >= slots_.size()) return;
  auto& slot = slots_[static_cast<size_t>(node)];
  // Lock-free peek first: ingest calls this for every touched node, and
  // almost none of them are materialized.
  if (slot.load(std::memory_order_acquire) == nullptr) return;
  std::lock_guard<std::mutex> lock(write_mu_);
  Entry* old = slot.exchange(nullptr, std::memory_order_acq_rel);
  if (old == nullptr) return;
  total_entries_.fetch_sub(1, std::memory_order_acq_rel);
  invalidations_.Add(1);
  RetireLocked(old);
}

void HotNodeOverlayCache::InvalidateRange(NodeId begin, NodeId end) {
  begin = std::max<NodeId>(begin, 0);
  end = std::min<NodeId>(end, static_cast<NodeId>(slots_.size()));
  if (begin >= end) return;
  std::lock_guard<std::mutex> lock(write_mu_);
  size_t cleared = 0;
  for (NodeId node = begin; node < end; ++node) {
    Entry* old = slots_[static_cast<size_t>(node)].exchange(
        nullptr, std::memory_order_acq_rel);
    if (old == nullptr) continue;
    ++cleared;
    retired_.push_back(old);
  }
  if (cleared == 0) return;
  total_entries_.fetch_sub(cleared, std::memory_order_acq_rel);
  invalidations_.Add(static_cast<int64_t>(cleared));
  MaybeReclaimLocked();
}

void HotNodeOverlayCache::Clear() {
  std::lock_guard<std::mutex> lock(write_mu_);
  size_t cleared = 0;
  for (auto& slot : slots_) {
    Entry* old = slot.exchange(nullptr, std::memory_order_acq_rel);
    if (old == nullptr) continue;
    ++cleared;
    retired_.push_back(old);
  }
  total_entries_.fetch_sub(cleared, std::memory_order_acq_rel);
  invalidations_.Add(static_cast<int64_t>(cleared));
  MaybeReclaimLocked();
}

size_t HotNodeOverlayCache::size() const {
  return total_entries_.load(std::memory_order_acquire);
}

HotNodeCacheStats HotNodeOverlayCache::Stats() const {
  HotNodeCacheStats stats;
  stats.hits = hits_.Value();
  stats.misses = misses_.Value();
  stats.installs = installs_.Value();
  stats.rejected_installs = rejected_installs_.Value();
  stats.invalidations = invalidations_.Value();
  stats.entries = size();
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    stats.retired = retired_.size();
  }
  return stats;
}

HotNodeRefreshPolicy::HotNodeRefreshPolicy(
    streaming::DynamicHeteroGraph* graph, HotNodeOverlayCache* cache)
    : graph_(graph), cache_(cache) {
  ZCHECK(graph_ != nullptr);
  ZCHECK(cache_ != nullptr);
  hit_ratio_ = obs::MetricsRegistry::Global()->GetGauge(
      "maintenance.hot_cache.hit_ratio");
  read_boosted_segments_ = obs::MetricsRegistry::Global()->GetGauge(
      "maintenance.hot_cache.read_boosted_segments");
  graph_->AttachHotNodeCache(cache_);
}

HotNodeRefreshPolicy::~HotNodeRefreshPolicy() {
  graph_->DetachHotNodeCache(cache_);
}

StatusOr<MaintenanceReport> HotNodeRefreshPolicy::RunOnce() {
  obs::TraceSpan span("hot_node_refresh");
  MaintenanceReport report;
  auto snap = graph_->MakeSnapshot();
  // Read-rate-aware admission: difference the cumulative per-segment read
  // counters against the previous pass, then scale the delta-entry floor by
  // each segment's read heat relative to the fleet average. A segment whose
  // overlay is being hammered by readers admits nodes earlier (they pay the
  // two-level merge on every draw); a segment nobody reads must accumulate
  // proportionally more deltas before it earns a materialized entry.
  const HotNodeCacheOptions& opt = cache_->options();
  const auto pressures = graph_->SegmentPressures();
  if (last_reads_.size() < pressures.size()) {
    last_reads_.resize(pressures.size(), 0);
  }
  std::vector<int64_t> read_delta(pressures.size(), 0);
  double rate_sum = 0.0;
  for (size_t i = 0; i < pressures.size(); ++i) {
    read_delta[i] = std::max<int64_t>(0, pressures[i].reads - last_reads_[i]);
    last_reads_[i] = pressures[i].reads;
    rate_sum += static_cast<double>(read_delta[i]);
  }
  const double avg_rate =
      pressures.empty() ? 0.0 : rate_sum / static_cast<double>(pressures.size());
  std::vector<int64_t> floors(pressures.size(), opt.min_delta_entries);
  int64_t boosted_segments = 0;
  for (size_t i = 0; i < floors.size(); ++i) {
    if (opt.read_admit_boost <= 1.0) break;
    const double norm =
        (static_cast<double>(read_delta[i]) + 1.0) / (avg_rate + 1.0);
    const double scale =
        std::clamp(norm, 1.0 / opt.read_admit_boost, opt.read_admit_boost);
    floors[i] = std::max<int64_t>(
        static_cast<int64_t>(static_cast<double>(opt.min_delta_entries) / scale),
        1);
    if (scale > 1.0) ++boosted_segments;
  }
  const auto hot = graph_->DeltaNodes([&](int64_t segment) -> int64_t {
    if (segment < 0 || segment >= static_cast<int64_t>(floors.size())) {
      return opt.min_delta_entries;
    }
    return floors[static_cast<size_t>(segment)];
  });
  read_boosted_segments_->Set(static_cast<double>(boosted_segments));
  int installed = 0;
  for (NodeId node : hot) {
    // The merge below resolves everything visible at the snapshot's epoch;
    // stamping it with the node's overlay version is only sound when that
    // version (the node's max delta epoch) is itself covered. Nodes with
    // entries beyond the watermark wait for the next pass.
    const uint64_t version = graph_->node_epoch(node);
    if (version == 0 || version > snap.epoch()) continue;
    // A node born past this snapshot's pinned id-space (streamed id growth
    // racing the janitor) is resolved by a later pass.
    if (node >= snap.num_nodes()) continue;
    // Stamp with the generation of the one segment backing the node, so an
    // incremental fold of other segments leaves this entry serving.
    const uint64_t seg_gen = snap.segment_generation(node);
    if (cache_->IsFresh(node, version, seg_gen, snap.decay_active(),
                        snap.as_of_seconds(), snap.decay_window())) {
      continue;
    }
    HotNodeOverlayCache::Entry entry;
    entry.overlay_version = version;
    entry.segment_generation = seg_gen;
    entry.decayed = snap.decay_active();
    entry.as_of_seconds = snap.as_of_seconds();
    entry.spec = snap.decay_window();
    snap.Neighbors(node, &entry.ids, &entry.weights, &entry.kinds);
    entry.alias.Build(
        std::vector<double>(entry.weights.begin(), entry.weights.end()));
    if (cache_->Install(node, std::move(entry))) ++installed;
  }
  span.set_attr(installed);
  // Janitor-cadence derived gauge: read ratio over the cache's lifetime.
  const HotNodeCacheStats stats = cache_->Stats();
  const int64_t lookups = stats.hits + stats.misses;
  hit_ratio_->Set(lookups > 0 ? static_cast<double>(stats.hits) / lookups
                              : 0.0);
  report.acted = installed > 0;
  if (report.acted) {
    report.detail = "materialized " + std::to_string(installed) + " of " +
                    std::to_string(hot.size()) + " hot nodes";
  }
  return report;
}

}  // namespace maintenance
}  // namespace zoomer
