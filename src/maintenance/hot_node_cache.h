// Materialized read path for delta-heavy ("hot") nodes. The dynamic overlay
// keeps reads on hot nodes correct but slow: every draw pays a lock-shard
// acquisition, an epoch upper_bound, and a two-level base+delta resample —
// ~6-14x a static-CSR alias draw once a node accumulates hundreds of deltas
// (ROADMAP: bench_streaming_freshness read-overhead item). This cache claws
// that back by materializing, per hot node, the fully merged (coalesced)
// neighbor list plus a rebuilt alias table, so snapshot sampling degrades to
// one lock-free slot load + an O(1) alias draw.
//
// Read protocol (lock-free draws under a snapshot pin):
//   - Entries live in a direct-indexed slot array (one atomic pointer per
//     node). Readers never lock: Find() is an acquire load + stamp checks.
//   - A reader first takes a Pin (DynamicHeteroGraph snapshots do this at
//     construction and hold it for their lifetime). Replaced or invalidated
//     entries are *retired*, not freed; retired memory is reclaimed only
//     when the pin count returns to zero — so a pointer obtained through
//     Find() stays valid for as long as the pin that covered the load.
//     New pins cannot reach retired entries (they left the slots first),
//     which keeps the reclamation check a plain counter.
//
// Consistency protocol (epoch-versioned, invalidated on apply/fold):
//   - An entry is stamped with the node's overlay version (the node_epoch
//     value its merge resolved — the max delta epoch of the node), the
//     generation of the *CSR segment backing the node* (the segmented base
//     rebuilds per segment; an incremental fold elsewhere must not kill
//     this entry), and, when TTL/decay is active, the as_of instant its
//     weights were decayed at.
//   - A snapshot may serve from the entry only if (a) the node's current
//     overlay version still equals the stamp (no delta applied since),
//     (b) the snapshot's epoch covers the stamp (the snapshot sees at least
//     everything merged), (c) the node's segment generation in the
//     snapshot's pinned base matches (the node's rows did not fold since),
//     and (d) under decay, the snapshot's as_of is within the configured
//     staleness tolerance of the entry's.
//   - DynamicHeteroGraph invalidates eagerly on ApplyBatch (per touched
//     node), on TTL expiry sweeps (the one mutation that does not bump the
//     overlay version), and per folded row range on CompactSegments
//     (InvalidateRange — entries of untouched segments keep serving across
//     incremental folds, replacing the old whole-cache Clear()); the
//     version check makes even a lost invalidation safe, only stale in
//     memory.
// Entries are refreshed by HotNodeRefreshPolicy on the maintenance
// scheduler; the read path never writes the cache.
#ifndef ZOOMER_MAINTENANCE_HOT_NODE_CACHE_H_
#define ZOOMER_MAINTENANCE_HOT_NODE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "graph/alias_table.h"
#include "graph/hetero_graph.h"
#include "maintenance/maintenance_policy.h"
#include "obs/metrics.h"
#include "streaming/edge_decay.h"

namespace zoomer {

namespace streaming {
class DynamicHeteroGraph;
}  // namespace streaming

namespace maintenance {

/// One materialized node: merged base+delta neighbors in GraphView's
/// parallel-array layout, weights already decayed under `spec` at
/// as_of_seconds when `decayed`, and an alias table over them. Namespace
/// scope (not nested) so DynamicHeteroGraph can name it through a forward
/// declaration.
struct HotNodeCacheEntry {
  uint64_t overlay_version = 0;  // node_epoch value the merge resolved
  /// Generation of the CSR segment backing the node at merge time
  /// (Snapshot::segment_generation) — NOT the graph-global generation, so
  /// incremental folds of other segments leave the entry valid.
  uint64_t segment_generation = 0;
  bool decayed = false;
  int64_t as_of_seconds = 0;
  streaming::DecaySpec spec;  // window the merge was resolved under
  std::vector<graph::NodeId> ids;
  std::vector<float> weights;
  std::vector<graph::RelationKind> kinds;
  graph::AliasTable alias;
};

struct HotNodeCacheOptions {
  /// A node qualifies for materialization once its overlay holds at least
  /// this many delta half-edges (below it, the overlay merge is cheap).
  int64_t min_delta_entries = 16;
  /// Read-rate-aware admission: the refresh policy scales the per-segment
  /// admission floor by observed overlay-read traffic (SegStat reads since
  /// its last pass). A segment read above the fleet average admits nodes at
  /// as little as min_delta_entries / read_admit_boost; a cold one demands
  /// up to min_delta_entries * read_admit_boost. Delta count alone decides
  /// what is *expensive to merge*; reads decide what is *worth paying the
  /// materialization for*. 1.0 disables the scaling.
  double read_admit_boost = 4.0;
  /// Cap on materialized nodes; installs beyond it are rejected (counted).
  size_t max_entries = 1 << 16;
  /// Under decay, an entry may serve snapshots whose as_of differs from the
  /// entry's by at most this many seconds (0 = exact match only — decayed
  /// weights drift with every tick of the clock).
  int64_t decay_staleness_tolerance_seconds = 0;
  /// Metrics registry the cache registers its counters with (names under
  /// "maintenance.hot_cache."). Null means the process-global registry.
  obs::MetricsRegistry* registry = nullptr;
};

struct HotNodeCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;  // lookups with no (valid) entry
  int64_t installs = 0;
  int64_t rejected_installs = 0;  // capacity cap
  int64_t invalidations = 0;
  size_t entries = 0;
  size_t retired = 0;  // awaiting reclamation under live pins
};

class HotNodeOverlayCache {
 public:
  using Entry = HotNodeCacheEntry;

  /// `num_nodes` sizes the slot array (the graph's node-id space).
  explicit HotNodeOverlayCache(int64_t num_nodes,
                               HotNodeCacheOptions options = {});
  ~HotNodeOverlayCache();

  HotNodeOverlayCache(const HotNodeOverlayCache&) = delete;
  HotNodeOverlayCache& operator=(const HotNodeOverlayCache&) = delete;

  const HotNodeCacheOptions& options() const { return options_; }

  /// Registers a reader epoch. Entries retired while the returned token is
  /// alive are not reclaimed, so pointers from Find() stay valid until the
  /// token drops. Snapshots take one pin for their whole lifetime; the
  /// cache must outlive every pin.
  std::shared_ptr<void> PinReaders();

  /// Lock-free lookup: returns the node's entry iff it passes the
  /// consistency protocol above, nullptr otherwise. The caller must hold a
  /// pin taken before the call and keep it while using the pointer.
  /// `current_overlay_version` is the node's node_epoch loaded by the
  /// caller (the snapshot); `segment_generation` is the generation of the
  /// node's segment in the caller's pinned base; `spec` is the caller's
  /// decay window — under decay, only an entry merged under the identical
  /// window may serve (a 1-day view must never be handed a 1-hour merge).
  const Entry* Find(graph::NodeId node, uint64_t snapshot_epoch,
                    uint64_t current_overlay_version,
                    uint64_t segment_generation, bool decay_active,
                    int64_t as_of_seconds,
                    const streaming::DecaySpec& spec) const;

  /// Validity probe without stats side effects (refresh-policy skip check).
  bool IsFresh(graph::NodeId node, uint64_t current_overlay_version,
               uint64_t segment_generation, bool decay_active,
               int64_t as_of_seconds,
               const streaming::DecaySpec& spec) const;

  /// Installs/replaces the node's entry. Returns false when the capacity
  /// cap rejected a new node.
  bool Install(graph::NodeId node, Entry entry);

  void Invalidate(graph::NodeId node);
  /// Drops every entry with begin <= node < end — the per-segment
  /// invalidation an incremental fold issues for its rebuilt row ranges
  /// (whole-graph Clear() is reserved for teardown/tests).
  void InvalidateRange(graph::NodeId begin, graph::NodeId end);
  void Clear();

  size_t size() const;
  HotNodeCacheStats Stats() const;

 private:
  bool EntryValid(const Entry& entry, uint64_t current_overlay_version,
                  uint64_t segment_generation, bool decay_active,
                  int64_t as_of_seconds,
                  const streaming::DecaySpec& spec) const;

  /// Moves `entry` to the retired list and frees it (with everything else
  /// retired) once no pins are live. Caller holds write_mu_.
  void RetireLocked(Entry* entry);
  void MaybeReclaimLocked();
  void Unpin();

  HotNodeCacheOptions options_;
  std::vector<std::atomic<Entry*>> slots_;
  std::atomic<int64_t> pins_{0};

  /// Serializes writers (install / invalidate / clear — janitor-side, rare)
  /// and guards the retired list. Mutable so Stats() can report it.
  mutable std::mutex write_mu_;
  std::vector<Entry*> retired_;  // guarded by write_mu_

  std::atomic<size_t> total_entries_{0};
  // Registry-backed instruments ("maintenance.hot_cache." names); kept as
  // members so Stats() stays an exact per-cache view. Mutable: Find() is
  // logically const but counts.
  obs::MetricsRegistry* registry_;  // resolved (never null)
  mutable obs::Counter hits_;
  mutable obs::Counter misses_;
  obs::Counter installs_;
  obs::Counter rejected_installs_;
  obs::Counter invalidations_;
  std::vector<std::pair<std::string, const void*>> registered_;
};

/// Janitor policy that scans the dynamic graph for nodes past the hotness
/// threshold and (re)materializes their cache entries from a decay-aware
/// snapshot. Construction attaches the cache to the graph so snapshot reads
/// start consulting it; both must outlive the policy's scheduler.
class HotNodeRefreshPolicy final : public MaintenancePolicy {
 public:
  HotNodeRefreshPolicy(streaming::DynamicHeteroGraph* graph,
                       HotNodeOverlayCache* cache);
  /// Detaches the cache from the graph (if still the attached one), so the
  /// graph never dangles into a torn-down maintenance subsystem.
  ~HotNodeRefreshPolicy() override;

  const char* name() const override { return "hot_node_refresh"; }
  StatusOr<MaintenanceReport> RunOnce() override;

 private:
  streaming::DynamicHeteroGraph* graph_;
  HotNodeOverlayCache* cache_;
  /// Global-registry gauge refreshed each pass from the cache's counters.
  obs::Gauge* hit_ratio_ = nullptr;
  /// Segments whose admission floor dropped below the fleet default this
  /// pass (read-hammered segments); observable knob for tests/dashboards.
  obs::Gauge* read_boosted_segments_ = nullptr;
  /// Cumulative SegStat read counters at the last pass; the difference is
  /// the interval's overlay-read traffic per segment (same differencing the
  /// compaction policy uses for its fold budgets).
  std::vector<int64_t> last_reads_;
};

}  // namespace maintenance
}  // namespace zoomer

#endif  // ZOOMER_MAINTENANCE_HOT_NODE_CACHE_H_
