#include "maintenance/metrics_export_policy.h"

#include <string>
#include <utility>

#include "obs/exporter.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace zoomer {
namespace maintenance {

MetricsExportPolicy::MetricsExportPolicy(MetricsExportPolicyOptions options)
    : options_(std::move(options)) {
  if (options_.registry == nullptr) {
    options_.registry = obs::MetricsRegistry::Global();
  }
}

StatusOr<MaintenanceReport> MetricsExportPolicy::RunOnce() {
  obs::TraceSpan span("metrics_export");
  obs::MetricsExporter exporter(options_.registry);
  const obs::RegistrySnapshot snap = options_.registry->Snapshot();
  span.set_attr(static_cast<int64_t>(snap.points.size()));
  if (options_.sink) {
    options_.sink(exporter.JsonLine());
  }
  if (!options_.json_path.empty()) {
    Status appended = exporter.AppendJsonLine(options_.json_path);
    if (!appended.ok()) return appended;
  }
  ++exports_;
  MaintenanceReport report;
  report.acted = true;
  report.detail =
      "exported " + std::to_string(snap.points.size()) + " metrics";
  return report;
}

}  // namespace maintenance
}  // namespace zoomer
