// Scheduled metrics export (ISSUE 6 tentpole wiring): a maintenance policy
// that snapshots the metrics registry on the janitor cadence and emits one
// JSON line per pass — to a file (append), a caller sink, or both. Running
// export as just another MaintenancePolicy means it inherits the scheduler's
// jittered ticks, per-policy stats, and error accounting for free, and the
// export pass itself shows up in "maintenance.pass_latency_us.metrics_export"
// like any other janitor work.
#ifndef ZOOMER_MAINTENANCE_METRICS_EXPORT_POLICY_H_
#define ZOOMER_MAINTENANCE_METRICS_EXPORT_POLICY_H_

#include <functional>
#include <string>

#include "maintenance/maintenance_policy.h"

namespace zoomer {

namespace obs {
class MetricsRegistry;
}  // namespace obs

namespace maintenance {

struct MetricsExportPolicyOptions {
  /// Append each pass's JSON line here; empty disables the file sink.
  std::string json_path;
  /// Called with each pass's JSON line (in-process scrape hook for tests
  /// and benches); null disables.
  std::function<void(const std::string&)> sink;
  /// Registry to snapshot. Null means the process-global registry.
  obs::MetricsRegistry* registry = nullptr;
};

class MetricsExportPolicy final : public MaintenancePolicy {
 public:
  explicit MetricsExportPolicy(MetricsExportPolicyOptions options);

  const char* name() const override { return "metrics_export"; }
  /// Snapshots the registry and emits one JSON line to every configured
  /// sink. A failed file append returns non-OK so the scheduler's
  /// PolicyStats.errors counts it.
  StatusOr<MaintenanceReport> RunOnce() override;

  int64_t exports() const { return exports_; }

 private:
  MetricsExportPolicyOptions options_;
  int64_t exports_ = 0;  // scheduler serializes RunOnce
};

}  // namespace maintenance
}  // namespace zoomer

#endif  // ZOOMER_MAINTENANCE_METRICS_EXPORT_POLICY_H_
