#include "maintenance/ttl_decay_policy.h"

#include <string>

#include "common/logging.h"

namespace zoomer {
namespace maintenance {

TtlDecayPolicy::TtlDecayPolicy(streaming::DynamicHeteroGraph* graph,
                               const LogicalClock* clock,
                               const streaming::DecaySpec& spec)
    : graph_(graph), clock_(clock) {
  ZCHECK(graph_ != nullptr);
  ZCHECK(clock_ != nullptr) << "TTL/decay requires a logical clock";
  graph_->ConfigureDecay(spec, clock_);
}

StatusOr<MaintenanceReport> TtlDecayPolicy::RunOnce() {
  MaintenanceReport report;
  const int64_t before = graph_->num_delta_entries();
  report.touched = graph_->ExpireDeltas(clock_->NowSeconds());
  report.acted = !report.touched.empty();
  if (report.acted) {
    report.detail =
        "expired " + std::to_string(before - graph_->num_delta_entries()) +
        " delta half-edges on " + std::to_string(report.touched.size()) +
        " nodes";
  }
  return report;
}

}  // namespace maintenance
}  // namespace zoomer
