#include "maintenance/ttl_decay_policy.h"

#include <string>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace zoomer {
namespace maintenance {

TtlDecayPolicy::TtlDecayPolicy(streaming::DynamicHeteroGraph* graph,
                               const LogicalClock* clock,
                               const streaming::DecaySpec& spec,
                               streaming::GraphDeltaLog* log)
    : graph_(graph), clock_(clock), log_(log) {
  ZCHECK(graph_ != nullptr);
  ZCHECK(clock_ != nullptr) << "TTL/decay requires a logical clock";
  graph_->ConfigureDecay(spec, clock_);
  obs::MetricsRegistry* reg = obs::MetricsRegistry::Global();
  expired_nodes_ = reg->GetCounter("maintenance.ttl_expired_nodes");
  log_truncated_ = reg->GetCounter("maintenance.ttl_log_batches_truncated");
}

StatusOr<MaintenanceReport> TtlDecayPolicy::RunOnce() {
  obs::TraceSpan span("ttl_sweep");
  MaintenanceReport report;
  const int64_t now = clock_->NowSeconds();
  const int64_t before = graph_->num_delta_entries();
  report.touched = graph_->ExpireDeltas(now);
  int64_t truncated = 0;
  if (log_ != nullptr) {
    // The watermark bound keeps issued-but-unapplied batches replayable; an
    // applied batch whose every event aged out is dead weight the next
    // fold would only discard anyway.
    truncated =
        log_->TruncateExpired(graph_->decay_spec(), now,
                              graph_->watermark_epoch());
    log_batches_truncated_ += truncated;
  }
  expired_nodes_->Add(static_cast<int64_t>(report.touched.size()));
  log_truncated_->Add(truncated);
  span.set_attr(static_cast<int64_t>(report.touched.size()));
  report.acted = !report.touched.empty() || truncated > 0;
  if (report.acted) {
    report.detail =
        "expired " + std::to_string(before - graph_->num_delta_entries()) +
        " delta half-edges on " + std::to_string(report.touched.size()) +
        " nodes, truncated " + std::to_string(truncated) + " log batches";
  }
  return report;
}

}  // namespace maintenance
}  // namespace zoomer
