#include "ps/embedding_table.h"

#include <cmath>

#include "common/logging.h"

namespace zoomer {
namespace ps {

EmbeddingTable::EmbeddingTable(EmbeddingTableOptions options)
    : options_(options), stripes_(options.lock_stripes) {
  ZCHECK_GT(options_.dim, 0);
  ZCHECK_GT(options_.lock_stripes, 0);
}

void EmbeddingTable::Pull(const std::vector<Key>& keys,
                          std::vector<float>* out) {
  out->resize(keys.size() * options_.dim);
  for (size_t i = 0; i < keys.size(); ++i) {
    Stripe& stripe = StripeFor(keys[i]);
    std::lock_guard<std::mutex> lock(stripe.mu);
    auto it = stripe.map.find(keys[i]);
    if (it == stripe.map.end()) {
      // Deterministic per-key init so replicas agree without coordination.
      Rng rng(options_.seed * 0x9E3779B9ull +
              static_cast<uint64_t>(keys[i]));
      Entry entry;
      entry.value.resize(options_.dim);
      for (auto& v : entry.value) {
        v = static_cast<float>(rng.Normal()) * options_.init_stddev;
      }
      entry.accum.assign(options_.dim, 0.0f);
      it = stripe.map.emplace(keys[i], std::move(entry)).first;
    }
    std::copy(it->second.value.begin(), it->second.value.end(),
              out->begin() + static_cast<int64_t>(i) * options_.dim);
  }
}

Status EmbeddingTable::Push(const std::vector<Key>& keys,
                            const std::vector<float>& grads) {
  if (grads.size() != keys.size() * static_cast<size_t>(options_.dim)) {
    return Status::InvalidArgument("gradient size mismatch");
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    Stripe& stripe = StripeFor(keys[i]);
    std::lock_guard<std::mutex> lock(stripe.mu);
    auto it = stripe.map.find(keys[i]);
    if (it == stripe.map.end()) continue;  // never pulled: drop stale push
    Entry& e = it->second;
    const float* g = grads.data() + static_cast<int64_t>(i) * options_.dim;
    for (int d = 0; d < options_.dim; ++d) {
      e.accum[d] += g[d] * g[d];
      e.value[d] -= options_.learning_rate * g[d] /
                    (std::sqrt(e.accum[d]) + options_.adagrad_eps);
    }
  }
  return Status::OK();
}

int64_t EmbeddingTable::num_keys() const {
  int64_t n = 0;
  for (const auto& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mu);
    n += static_cast<int64_t>(s.map.size());
  }
  return n;
}

}  // namespace ps
}  // namespace zoomer
