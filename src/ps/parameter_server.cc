#include "ps/parameter_server.h"

#include <thread>

#include "common/logging.h"
#include "common/timer.h"

namespace zoomer {
namespace ps {

ParameterServer::ParameterServer(ParameterServerOptions options)
    : options_(options) {
  ZCHECK_GT(options_.num_shards, 0);
  for (int s = 0; s < options_.num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->table = std::make_unique<EmbeddingTable>(options_.table);
    shard->queue = std::make_unique<BoundedQueue<PushRequest>>(
        options_.push_queue_capacity);
    Shard* raw = shard.get();
    shard->applier = std::thread([this, raw] {
      PushRequest req;
      while (raw->queue->Pop(&req)) {
        raw->table->Push(req.keys, req.grads);
        applied_.fetch_add(1, std::memory_order_relaxed);
      }
    });
    shards_.push_back(std::move(shard));
  }
}

ParameterServer::~ParameterServer() {
  for (auto& s : shards_) s->queue->Close();
  for (auto& s : shards_) {
    if (s->applier.joinable()) s->applier.join();
  }
}

void ParameterServer::Pull(const std::vector<Key>& keys,
                           std::vector<float>* out) {
  const int dim = options_.table.dim;
  out->resize(keys.size() * dim);
  // Group keys per shard, pull, then scatter back in request order.
  std::vector<std::vector<Key>> per_shard(options_.num_shards);
  std::vector<std::vector<size_t>> positions(options_.num_shards);
  for (size_t i = 0; i < keys.size(); ++i) {
    const int s = ShardFor(keys[i]);
    per_shard[s].push_back(keys[i]);
    positions[s].push_back(i);
  }
  std::vector<float> buf;
  for (int s = 0; s < options_.num_shards; ++s) {
    if (per_shard[s].empty()) continue;
    shards_[s]->table->Pull(per_shard[s], &buf);
    for (size_t j = 0; j < per_shard[s].size(); ++j) {
      std::copy(buf.begin() + static_cast<int64_t>(j) * dim,
                buf.begin() + static_cast<int64_t>(j + 1) * dim,
                out->begin() + static_cast<int64_t>(positions[s][j]) * dim);
    }
  }
}

bool ParameterServer::PushAsync(std::vector<Key> keys,
                                std::vector<float> grads) {
  const int dim = options_.table.dim;
  ZCHECK_EQ(grads.size(), keys.size() * static_cast<size_t>(dim));
  std::vector<std::vector<Key>> per_shard(options_.num_shards);
  std::vector<std::vector<float>> per_grads(options_.num_shards);
  for (size_t i = 0; i < keys.size(); ++i) {
    const int s = ShardFor(keys[i]);
    per_shard[s].push_back(keys[i]);
    per_grads[s].insert(per_grads[s].end(),
                        grads.begin() + static_cast<int64_t>(i) * dim,
                        grads.begin() + static_cast<int64_t>(i + 1) * dim);
  }
  bool ok = true;
  for (int s = 0; s < options_.num_shards; ++s) {
    if (per_shard[s].empty()) continue;
    enqueued_.fetch_add(1, std::memory_order_relaxed);
    ok &= shards_[s]->queue->Push(
        {std::move(per_shard[s]), std::move(per_grads[s])});
  }
  return ok;
}

void ParameterServer::Flush() {
  // Spin-wait until appliers drain; queues are bounded so this terminates.
  while (applied_.load(std::memory_order_relaxed) <
         enqueued_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

int64_t ParameterServer::num_keys() const {
  int64_t n = 0;
  for (const auto& s : shards_) n += s->table->num_keys();
  return n;
}

double AsyncPipeline::Run(int64_t n, bool overlap, int queue_capacity) {
  WallTimer timer;
  if (!overlap) {
    for (int64_t i = 0; i < n; ++i) {
      stages_[0](i);
      stages_[1](i);
      stages_[2](i);
    }
    return timer.ElapsedSeconds();
  }
  BoundedQueue<int64_t> q01(queue_capacity), q12(queue_capacity);
  std::thread t0([&] {
    for (int64_t i = 0; i < n; ++i) {
      stages_[0](i);
      q01.Push(i);
    }
    q01.Close();
  });
  std::thread t1([&] {
    int64_t i;
    while (q01.Pop(&i)) {
      stages_[1](i);
      q12.Push(i);
    }
    q12.Close();
  });
  std::thread t2([&] {
    int64_t i;
    while (q12.Pop(&i)) stages_[2](i);
  });
  t0.join();
  t1.join();
  t2.join();
  return timer.ElapsedSeconds();
}

}  // namespace ps
}  // namespace zoomer
