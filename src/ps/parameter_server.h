// Worker / parameter-server training simulation (paper Sec. VI): model
// parameters and embeddings are partitioned over multiple PS shards; workers
// pull embeddings, compute gradients, and push updates *asynchronously* —
// the paper exploits the low conflict probability of sparse parameters. The
// AsyncPipeline below reproduces the three-stage IO/compute overlap (read
// subgraphs -> read embeddings -> train) that removes the IO bottleneck.
#ifndef ZOOMER_PS_PARAMETER_SERVER_H_
#define ZOOMER_PS_PARAMETER_SERVER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "common/threadpool.h"
#include "ps/embedding_table.h"

namespace zoomer {
namespace ps {

struct ParameterServerOptions {
  int num_shards = 4;
  EmbeddingTableOptions table;
  /// Queue depth per shard for asynchronous pushes.
  int push_queue_capacity = 1024;
};

/// Sharded PS with synchronous pulls and asynchronous (queued) pushes.
class ParameterServer {
 public:
  explicit ParameterServer(ParameterServerOptions options);
  ~ParameterServer();

  /// Synchronous pull across shards; out is keys.size() * dim row-major.
  void Pull(const std::vector<Key>& keys, std::vector<float>* out);

  /// Asynchronous push: enqueues per-shard updates and returns immediately.
  /// Returns false if the server is shutting down.
  bool PushAsync(std::vector<Key> keys, std::vector<float> grads);

  /// Blocks until all queued pushes are applied.
  void Flush();

  int dim() const { return options_.table.dim; }
  int64_t num_keys() const;
  /// Pushes applied so far vs enqueued: the gap is the async staleness.
  int64_t pushes_enqueued() const { return enqueued_.load(); }
  int64_t pushes_applied() const { return applied_.load(); }

 private:
  struct PushRequest {
    std::vector<Key> keys;
    std::vector<float> grads;
  };
  struct Shard {
    std::unique_ptr<EmbeddingTable> table;
    std::unique_ptr<BoundedQueue<PushRequest>> queue;
    std::thread applier;
  };

  int ShardFor(Key k) const {
    return static_cast<int>(static_cast<uint64_t>(k) * 2654435761ull %
                            static_cast<uint64_t>(options_.num_shards));
  }

  ParameterServerOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<int64_t> enqueued_{0};
  std::atomic<int64_t> applied_{0};
};

/// Three-stage asynchronous pipeline with bounded inter-stage queues.
/// Stage callbacks receive the item index; Run() reports wall seconds.
/// With overlap disabled the stages run back-to-back per item (the paper's
/// "IO bottleneck" configuration Sec. VI contrasts against).
class AsyncPipeline {
 public:
  using Stage = std::function<void(int64_t)>;

  AsyncPipeline(Stage read_subgraph, Stage read_embeddings, Stage compute)
      : stages_{std::move(read_subgraph), std::move(read_embeddings),
                std::move(compute)} {}

  /// Processes items [0, n); returns elapsed wall seconds.
  double Run(int64_t n, bool overlap, int queue_capacity = 64);

 private:
  Stage stages_[3];
};

}  // namespace ps
}  // namespace zoomer

#endif  // ZOOMER_PS_PARAMETER_SERVER_H_
