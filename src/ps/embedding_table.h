// Sharded sparse embedding storage with per-key optimizer state — the
// parameter-server side of the paper's XDL-based distributed training
// (Sec. VI): parameters are partitioned across PS shards by key hash, and
// workers pull/push asynchronously because sparse-gradient conflicts are
// rare. Adagrad state is kept per key (lazy), matching sparse training
// practice.
#ifndef ZOOMER_PS_EMBEDDING_TABLE_H_
#define ZOOMER_PS_EMBEDDING_TABLE_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace zoomer {
namespace ps {

using Key = int64_t;

struct EmbeddingTableOptions {
  int dim = 16;
  float init_stddev = 0.05f;
  float learning_rate = 0.05f;
  float adagrad_eps = 1e-10f;
  int lock_stripes = 16;
  uint64_t seed = 7;
};

/// One PS shard: a lock-striped key -> (embedding, adagrad state) map.
/// Missing keys are initialized on first Pull (Gaussian init).
class EmbeddingTable {
 public:
  explicit EmbeddingTable(EmbeddingTableOptions options);

  /// Fetches embeddings for keys (initializing unseen keys).
  void Pull(const std::vector<Key>& keys, std::vector<float>* out);

  /// Applies Adagrad updates: grads is keys.size() * dim.
  Status Push(const std::vector<Key>& keys, const std::vector<float>& grads);

  int64_t num_keys() const;
  int dim() const { return options_.dim; }

 private:
  struct Entry {
    std::vector<float> value;
    std::vector<float> accum;  // adagrad accumulator
  };
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<Key, Entry> map;
  };

  Stripe& StripeFor(Key k) {
    return stripes_[static_cast<uint64_t>(k) * 0x9E3779B9ull %
                    stripes_.size()];
  }

  EmbeddingTableOptions options_;
  std::vector<Stripe> stripes_;
};

}  // namespace ps
}  // namespace zoomer

#endif  // ZOOMER_PS_EMBEDDING_TABLE_H_
