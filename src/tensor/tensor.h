// Dense 2-D float tensor with reverse-mode automatic differentiation.
//
// This is the numerical substrate for every learned model in the repository
// (the Zoomer multi-level attention networks and all GNN baselines). The
// design mirrors a minimal PyTorch: a Tensor is a shared handle to a
// TensorImpl holding data, an optional gradient buffer, parent links, and a
// backward closure. Calling Backward() on a scalar tensor runs reverse-mode
// differentiation over the dynamically recorded graph.
//
// All tensors are row-major (rows x cols). Scalars are 1x1.
#ifndef ZOOMER_TENSOR_TENSOR_H_
#define ZOOMER_TENSOR_TENSOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/random.h"

namespace zoomer {
namespace tensor {

/// Tracks the number of floats allocated for tensor storage since the last
/// reset. Used by the Fig. 4(a) motivation benchmark to report the memory
/// growth of neighborhood expansion.
class AllocationTracker {
 public:
  static void Reset() { allocated_floats_.store(0, std::memory_order_relaxed); }
  static void Record(int64_t n) {
    allocated_floats_.fetch_add(n, std::memory_order_relaxed);
  }
  static int64_t allocated_floats() {
    return allocated_floats_.load(std::memory_order_relaxed);
  }
  static int64_t allocated_bytes() { return allocated_floats() * 4; }

 private:
  static std::atomic<int64_t> allocated_floats_;
};

struct TensorImpl {
  int64_t rows = 0;
  int64_t cols = 0;
  std::vector<float> data;
  std::vector<float> grad;  // non-empty iff requires_grad
  bool requires_grad = false;
  std::vector<std::shared_ptr<TensorImpl>> parents;
  // Propagates this->grad into parents' grad buffers.
  std::function<void(TensorImpl&)> backward_fn;

  int64_t size() const { return rows * cols; }
  void EnsureGrad() {
    if (grad.size() != data.size()) grad.assign(data.size(), 0.0f);
  }
};

/// Shared handle to a tensor. Copies alias the same storage.
class Tensor {
 public:
  Tensor() : impl_(nullptr) {}
  explicit Tensor(std::shared_ptr<TensorImpl> impl) : impl_(std::move(impl)) {}

  /// rows x cols tensor of zeros.
  static Tensor Zeros(int64_t rows, int64_t cols, bool requires_grad = false);
  /// rows x cols tensor filled with value.
  static Tensor Full(int64_t rows, int64_t cols, float value,
                     bool requires_grad = false);
  /// Gaussian init with given stddev (mean 0).
  static Tensor Randn(int64_t rows, int64_t cols, Rng* rng, float stddev,
                      bool requires_grad = false);
  /// Xavier/Glorot uniform init for a (fan_in x fan_out) weight matrix.
  static Tensor Xavier(int64_t rows, int64_t cols, Rng* rng,
                       bool requires_grad = false);
  /// Wraps an existing row-major buffer (copied).
  static Tensor FromVector(const std::vector<float>& values, int64_t rows,
                           int64_t cols, bool requires_grad = false);
  /// 1x1 scalar.
  static Tensor Scalar(float value, bool requires_grad = false);

  bool defined() const { return impl_ != nullptr; }
  int64_t rows() const { return impl_->rows; }
  int64_t cols() const { return impl_->cols; }
  int64_t size() const { return impl_->size(); }
  bool requires_grad() const { return impl_->requires_grad; }

  float* data() { return impl_->data.data(); }
  const float* data() const { return impl_->data.data(); }
  float* grad_data() {
    impl_->EnsureGrad();
    return impl_->grad.data();
  }
  const std::vector<float>& grad_vector() const { return impl_->grad; }

  float at(int64_t i, int64_t j) const {
    ZCHECK(i >= 0 && i < rows() && j >= 0 && j < cols())
        << "index (" << i << "," << j << ") out of range for " << rows() << "x"
        << cols();
    return impl_->data[i * cols() + j];
  }
  float& at(int64_t i, int64_t j) {
    ZCHECK(i >= 0 && i < rows() && j >= 0 && j < cols());
    return impl_->data[i * cols() + j];
  }
  /// Scalar value of a 1x1 tensor.
  float item() const {
    ZCHECK_EQ(size(), 1);
    return impl_->data[0];
  }
  float grad_at(int64_t i, int64_t j) const {
    ZCHECK(impl_->requires_grad);
    ZCHECK_EQ(static_cast<int64_t>(impl_->grad.size()), size());
    return impl_->grad[i * cols() + j];
  }

  /// Zeroes this tensor's gradient buffer (does not touch ancestors).
  void ZeroGrad() {
    if (impl_->requires_grad) impl_->grad.assign(impl_->data.size(), 0.0f);
  }

  /// Reverse-mode backprop from this scalar tensor: seeds d(self)/d(self)=1
  /// and propagates through the recorded graph in reverse topological order.
  void Backward();

  /// Detached copy sharing no autograd history (fresh storage).
  Tensor Detach() const;

  std::shared_ptr<TensorImpl> impl() const { return impl_; }

  std::string ShapeString() const;

 private:
  std::shared_ptr<TensorImpl> impl_;
};

// ---------------------------------------------------------------------------
// Differentiable operators. Every op returns a fresh tensor whose backward_fn
// scatters gradients into its parents. Ops requiring shape agreement ZCHECK.
// ---------------------------------------------------------------------------

/// C = A · B. A: (n,k), B: (k,m).
Tensor MatMul(const Tensor& a, const Tensor& b);
/// Elementwise sum; b may also be (1,cols) for row broadcast or 1x1 scalar.
Tensor Add(const Tensor& a, const Tensor& b);
/// Elementwise difference (same shapes).
Tensor Sub(const Tensor& a, const Tensor& b);
/// Elementwise (Hadamard) product; b may be (rows,1) for column broadcast.
Tensor Mul(const Tensor& a, const Tensor& b);
/// a * s for scalar constant s.
Tensor Scale(const Tensor& a, float s);
/// a + s elementwise for scalar constant s.
Tensor AddScalar(const Tensor& a, float s);
/// Elementwise sigmoid.
Tensor Sigmoid(const Tensor& a);
/// Elementwise tanh.
Tensor Tanh(const Tensor& a);
/// Elementwise ReLU.
Tensor Relu(const Tensor& a);
/// Elementwise LeakyReLU with negative slope.
Tensor LeakyRelu(const Tensor& a, float slope = 0.2f);
/// Elementwise natural exp.
Tensor Exp(const Tensor& a);
/// Elementwise natural log of (a + eps).
Tensor Log(const Tensor& a, float eps = 1e-12f);
/// Row-wise softmax.
Tensor SoftmaxRows(const Tensor& a);
/// Transpose.
Tensor Transpose(const Tensor& a);
/// Horizontal concatenation [a | b].
Tensor ConcatCols(const Tensor& a, const Tensor& b);
/// Vertical concatenation [a ; b].
Tensor ConcatRows(const Tensor& a, const Tensor& b);
/// Sum of all entries -> 1x1.
Tensor SumAll(const Tensor& a);
/// Mean of all entries -> 1x1.
Tensor MeanAll(const Tensor& a);
/// Per-row sum -> (rows,1).
Tensor SumRowsTo1(const Tensor& a);
/// Column-wise mean over rows -> (1,cols).
Tensor MeanRows(const Tensor& a);
/// Gathers rows by index; gradient scatter-adds. idx values in [0, a.rows).
Tensor Rows(const Tensor& a, const std::vector<int64_t>& idx);
/// Row-wise dot product of equal-shaped a,b -> (rows,1).
Tensor RowwiseDot(const Tensor& a, const Tensor& b);
/// Row-wise cosine similarity of equal-shaped a,b -> (rows,1).
Tensor RowwiseCosine(const Tensor& a, const Tensor& b, float eps = 1e-8f);
/// L2-normalizes each row.
Tensor NormalizeRows(const Tensor& a, float eps = 1e-8f);
/// Repeats a (1,cols) row vector n times -> (n,cols).
Tensor TileRows(const Tensor& a, int64_t n);

/// Numerically stable mean binary cross-entropy with logits:
/// mean over rows of log(1+exp(x)) - y*x. logits,labels: (n,1).
Tensor BceWithLogits(const Tensor& logits, const Tensor& labels);

/// Focal binary cross-entropy with logits (Lin et al.), gamma = focusing
/// parameter; the paper trains Zoomer with focal weight 2 (Sec. VII-A).
/// loss_i = -(1-p_i)^g * y_i * log(p_i) - p_i^g * (1-y_i) * log(1-p_i).
Tensor FocalBceWithLogits(const Tensor& logits, const Tensor& labels,
                          float gamma = 2.0f);

/// Sum of squares of all entries (for L2 regularization) -> 1x1.
Tensor SquaredNorm(const Tensor& a);

}  // namespace tensor
}  // namespace zoomer

#endif  // ZOOMER_TENSOR_TENSOR_H_
