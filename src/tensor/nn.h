// Small neural-network building blocks shared by the Zoomer towers and the
// GNN baselines: Linear layers, MLPs, and dense embedding tables.
#ifndef ZOOMER_TENSOR_NN_H_
#define ZOOMER_TENSOR_NN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "tensor/tensor.h"

namespace zoomer {
namespace tensor {

enum class Activation { kNone, kRelu, kLeakyRelu, kTanh, kSigmoid };

/// Applies the given activation.
Tensor Activate(const Tensor& x, Activation act);

/// Fully connected layer y = x·W + b.
class Linear {
 public:
  Linear() = default;
  Linear(int64_t in_dim, int64_t out_dim, Rng* rng);

  Tensor Forward(const Tensor& x) const;

  std::vector<Tensor> Parameters() const { return {weight_, bias_}; }
  int64_t in_dim() const { return weight_.rows(); }
  int64_t out_dim() const { return weight_.cols(); }

 private:
  Tensor weight_;
  Tensor bias_;
};

/// Multi-layer perceptron with a shared activation on hidden layers and an
/// optional activation on the output layer.
class Mlp {
 public:
  Mlp() = default;
  /// dims = {in, hidden..., out}.
  Mlp(const std::vector<int64_t>& dims, Rng* rng,
      Activation hidden_act = Activation::kRelu,
      Activation out_act = Activation::kNone);

  Tensor Forward(const Tensor& x) const;
  std::vector<Tensor> Parameters() const;

 private:
  std::vector<Linear> layers_;
  Activation hidden_act_ = Activation::kRelu;
  Activation out_act_ = Activation::kNone;
};

/// Dense trainable embedding table (vocab x dim). Lookup gathers rows with a
/// scatter-add gradient, matching sparse training semantics at small scale.
/// The parameter-server variant (src/ps) provides the sharded/sparse path.
class Embedding {
 public:
  Embedding() = default;
  Embedding(int64_t vocab, int64_t dim, Rng* rng, float stddev = 0.05f);

  /// ids must be in [0, vocab).
  Tensor Lookup(const std::vector<int64_t>& ids) const;

  Tensor table() const { return table_; }
  std::vector<Tensor> Parameters() const { return {table_}; }
  int64_t vocab() const { return table_.rows(); }
  int64_t dim() const { return table_.cols(); }

 private:
  Tensor table_;
};

}  // namespace tensor
}  // namespace zoomer

#endif  // ZOOMER_TENSOR_NN_H_
