// First-order optimizers over a parameter list. The distributed variant with
// per-key sparse state lives in src/ps/embedding_table.h; these dense
// optimizers drive single-process training.
#ifndef ZOOMER_TENSOR_OPTIMIZER_H_
#define ZOOMER_TENSOR_OPTIMIZER_H_

#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace zoomer {
namespace tensor {

/// Base optimizer: owns the parameter list; Step() applies one update from
/// the gradients currently accumulated in the parameters.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update step in-place.
  virtual void Step() = 0;

  /// Clears all parameter gradients.
  void ZeroGrad() {
    for (auto& p : params_) p.ZeroGrad();
  }

  /// Adds a parameter after construction (state is allocated lazily).
  virtual void AddParam(const Tensor& p) { params_.push_back(p); }

  const std::vector<Tensor>& params() const { return params_; }

 protected:
  std::vector<Tensor> params_;
};

/// Plain SGD with optional momentum and L2 weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, float lr, float momentum = 0.0f,
      float weight_decay = 0.0f)
      : Optimizer(std::move(params)),
        lr_(lr),
        momentum_(momentum),
        weight_decay_(weight_decay) {}

  void Step() override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_;
  float momentum_;
  float weight_decay_;
  std::vector<std::vector<float>> velocity_;
};

/// Adam (Kingma & Ba) with bias correction and L2 weight decay.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f)
      : Optimizer(std::move(params)),
        lr_(lr),
        beta1_(beta1),
        beta2_(beta2),
        eps_(eps),
        weight_decay_(weight_decay) {}

  void Step() override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }
  int64_t step_count() const { return t_; }

 private:
  float lr_, beta1_, beta2_, eps_, weight_decay_;
  int64_t t_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

/// Adagrad: per-coordinate learning-rate adaptation; well-suited to the
/// highly sparse embedding gradients this codebase produces.
class Adagrad : public Optimizer {
 public:
  Adagrad(std::vector<Tensor> params, float lr, float eps = 1e-10f)
      : Optimizer(std::move(params)), lr_(lr), eps_(eps) {}

  void Step() override;

 private:
  float lr_, eps_;
  std::vector<std::vector<float>> accum_;
};

}  // namespace tensor
}  // namespace zoomer

#endif  // ZOOMER_TENSOR_OPTIMIZER_H_
