#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace zoomer {
namespace tensor {

std::atomic<int64_t> AllocationTracker::allocated_floats_{0};

namespace {

std::shared_ptr<TensorImpl> MakeImpl(int64_t rows, int64_t cols,
                                     bool requires_grad) {
  ZCHECK(rows > 0 && cols > 0) << "invalid shape " << rows << "x" << cols;
  auto impl = std::make_shared<TensorImpl>();
  impl->rows = rows;
  impl->cols = cols;
  impl->data.assign(static_cast<size_t>(rows * cols), 0.0f);
  impl->requires_grad = requires_grad;
  if (requires_grad) impl->EnsureGrad();
  AllocationTracker::Record(rows * cols);
  return impl;
}


bool AnyRequiresGrad(const Tensor& a, const Tensor& b) {
  return a.requires_grad() || b.requires_grad();
}

// Accumulates src into dst->grad (dst must require grad).
void Accumulate(TensorImpl* dst, const float* src, int64_t n) {
  dst->EnsureGrad();
  float* g = dst->grad.data();
  for (int64_t i = 0; i < n; ++i) g[i] += src[i];
}

}  // namespace

Tensor Tensor::Zeros(int64_t rows, int64_t cols, bool requires_grad) {
  return Tensor(MakeImpl(rows, cols, requires_grad));
}

Tensor Tensor::Full(int64_t rows, int64_t cols, float value,
                    bool requires_grad) {
  auto impl = MakeImpl(rows, cols, requires_grad);
  std::fill(impl->data.begin(), impl->data.end(), value);
  return Tensor(impl);
}

Tensor Tensor::Randn(int64_t rows, int64_t cols, Rng* rng, float stddev,
                     bool requires_grad) {
  auto impl = MakeImpl(rows, cols, requires_grad);
  for (auto& v : impl->data) {
    v = static_cast<float>(rng->Normal()) * stddev;
  }
  return Tensor(impl);
}

Tensor Tensor::Xavier(int64_t rows, int64_t cols, Rng* rng,
                      bool requires_grad) {
  auto impl = MakeImpl(rows, cols, requires_grad);
  float limit = std::sqrt(6.0f / static_cast<float>(rows + cols));
  for (auto& v : impl->data) {
    v = (2.0f * rng->UniformFloat() - 1.0f) * limit;
  }
  return Tensor(impl);
}

Tensor Tensor::FromVector(const std::vector<float>& values, int64_t rows,
                          int64_t cols, bool requires_grad) {
  ZCHECK_EQ(static_cast<int64_t>(values.size()), rows * cols);
  auto impl = MakeImpl(rows, cols, requires_grad);
  impl->data = values;
  return Tensor(impl);
}

Tensor Tensor::Scalar(float value, bool requires_grad) {
  return Full(1, 1, value, requires_grad);
}

Tensor Tensor::Detach() const {
  auto impl = MakeImpl(rows(), cols(), false);
  impl->data = impl_->data;
  return Tensor(impl);
}

std::string Tensor::ShapeString() const {
  if (!defined()) return "<undefined>";
  return std::to_string(rows()) + "x" + std::to_string(cols());
}

void Tensor::Backward() {
  ZCHECK(defined());
  ZCHECK_EQ(size(), 1) << "Backward() requires a scalar loss";
  // Postorder DFS to get reverse topological order.
  std::vector<TensorImpl*> order;
  std::unordered_set<TensorImpl*> visited;
  std::vector<std::pair<TensorImpl*, size_t>> stack;
  stack.emplace_back(impl_.get(), 0);
  visited.insert(impl_.get());
  while (!stack.empty()) {
    auto& [node, child_idx] = stack.back();
    if (child_idx < node->parents.size()) {
      TensorImpl* parent = node->parents[child_idx].get();
      ++child_idx;
      if (visited.insert(parent).second) {
        stack.emplace_back(parent, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  // order is postorder: parents before children; iterate in reverse so each
  // node's grad is complete before it propagates to parents.
  impl_->EnsureGrad();
  impl_->grad[0] = 1.0f;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TensorImpl* node = *it;
    if (node->backward_fn && !node->grad.empty()) {
      node->backward_fn(*node);
    }
  }
}

// ---------------------------------------------------------------------------
// Operators
// ---------------------------------------------------------------------------

Tensor MatMul(const Tensor& a, const Tensor& b) {
  ZCHECK_EQ(a.cols(), b.rows()) << "MatMul shape mismatch " << a.ShapeString()
                                << " x " << b.ShapeString();
  const int64_t n = a.rows(), k = a.cols(), m = b.cols();
  auto out = MakeImpl(n, m, AnyRequiresGrad(a, b));
  const float* ad = a.data();
  const float* bd = b.data();
  float* od = out->data.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t p = 0; p < k; ++p) {
      const float av = ad[i * k + p];
      if (av == 0.0f) continue;
      const float* brow = bd + p * m;
      float* orow = od + i * m;
      for (int64_t j = 0; j < m; ++j) orow[j] += av * brow[j];
    }
  }
  if (out->requires_grad) {
    auto ai = a.impl();
    auto bi = b.impl();
    out->parents = {ai, bi};
    out->backward_fn = [ai, bi, n, k, m](TensorImpl& self) {
      const float* g = self.grad.data();
      if (ai->requires_grad) {
        ai->EnsureGrad();
        // dA = G · B^T : (n,m)x(m,k)
        const float* bd2 = bi->data.data();
        float* ga = ai->grad.data();
        for (int64_t i = 0; i < n; ++i) {
          for (int64_t p = 0; p < k; ++p) {
            float s = 0.0f;
            const float* grow = g + i * m;
            const float* brow = bd2 + p * m;
            for (int64_t j = 0; j < m; ++j) s += grow[j] * brow[j];
            ga[i * k + p] += s;
          }
        }
      }
      if (bi->requires_grad) {
        bi->EnsureGrad();
        // dB = A^T · G : (k,n)x(n,m)
        const float* ad2 = ai->data.data();
        float* gb = bi->grad.data();
        for (int64_t i = 0; i < n; ++i) {
          const float* grow = g + i * m;
          for (int64_t p = 0; p < k; ++p) {
            const float av = ad2[i * k + p];
            if (av == 0.0f) continue;
            float* gbrow = gb + p * m;
            for (int64_t j = 0; j < m; ++j) gbrow[j] += av * grow[j];
          }
        }
      }
    };
  }
  return Tensor(out);
}

Tensor Add(const Tensor& a, const Tensor& b) {
  const bool same = a.rows() == b.rows() && a.cols() == b.cols();
  const bool row_bcast = b.rows() == 1 && b.cols() == a.cols();
  const bool scalar_bcast = b.size() == 1;
  ZCHECK(same || row_bcast || scalar_bcast)
      << "Add shape mismatch " << a.ShapeString() << " + " << b.ShapeString();
  auto out = MakeImpl(a.rows(), a.cols(), AnyRequiresGrad(a, b));
  const float* ad = a.data();
  const float* bd = b.data();
  float* od = out->data.data();
  const int64_t n = a.rows(), m = a.cols();
  if (same) {
    for (int64_t i = 0; i < n * m; ++i) od[i] = ad[i] + bd[i];
  } else if (row_bcast) {
    for (int64_t i = 0; i < n; ++i)
      for (int64_t j = 0; j < m; ++j) od[i * m + j] = ad[i * m + j] + bd[j];
  } else {
    const float s = bd[0];
    for (int64_t i = 0; i < n * m; ++i) od[i] = ad[i] + s;
  }
  if (out->requires_grad) {
    auto ai = a.impl();
    auto bi = b.impl();
    out->parents = {ai, bi};
    out->backward_fn = [ai, bi, same, row_bcast, n, m](TensorImpl& self) {
      const float* g = self.grad.data();
      if (ai->requires_grad) Accumulate(ai.get(), g, n * m);
      if (bi->requires_grad) {
        bi->EnsureGrad();
        float* gb = bi->grad.data();
        if (same) {
          for (int64_t i = 0; i < n * m; ++i) gb[i] += g[i];
        } else if (row_bcast) {
          for (int64_t i = 0; i < n; ++i)
            for (int64_t j = 0; j < m; ++j) gb[j] += g[i * m + j];
        } else {
          float s = 0.0f;
          for (int64_t i = 0; i < n * m; ++i) s += g[i];
          gb[0] += s;
        }
      }
    };
  }
  return Tensor(out);
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  ZCHECK(a.rows() == b.rows() && a.cols() == b.cols())
      << "Sub shape mismatch " << a.ShapeString() << " - " << b.ShapeString();
  auto out = MakeImpl(a.rows(), a.cols(), AnyRequiresGrad(a, b));
  const int64_t n = a.size();
  for (int64_t i = 0; i < n; ++i) out->data[i] = a.data()[i] - b.data()[i];
  if (out->requires_grad) {
    auto ai = a.impl();
    auto bi = b.impl();
    out->parents = {ai, bi};
    out->backward_fn = [ai, bi, n](TensorImpl& self) {
      const float* g = self.grad.data();
      if (ai->requires_grad) Accumulate(ai.get(), g, n);
      if (bi->requires_grad) {
        bi->EnsureGrad();
        for (int64_t i = 0; i < n; ++i) bi->grad[i] -= g[i];
      }
    };
  }
  return Tensor(out);
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  const bool same = a.rows() == b.rows() && a.cols() == b.cols();
  const bool col_bcast = b.cols() == 1 && b.rows() == a.rows();
  ZCHECK(same || col_bcast)
      << "Mul shape mismatch " << a.ShapeString() << " * " << b.ShapeString();
  auto out = MakeImpl(a.rows(), a.cols(), AnyRequiresGrad(a, b));
  const int64_t n = a.rows(), m = a.cols();
  const float* ad = a.data();
  const float* bd = b.data();
  float* od = out->data.data();
  if (same) {
    for (int64_t i = 0; i < n * m; ++i) od[i] = ad[i] * bd[i];
  } else {
    for (int64_t i = 0; i < n; ++i)
      for (int64_t j = 0; j < m; ++j) od[i * m + j] = ad[i * m + j] * bd[i];
  }
  if (out->requires_grad) {
    auto ai = a.impl();
    auto bi = b.impl();
    out->parents = {ai, bi};
    out->backward_fn = [ai, bi, same, n, m](TensorImpl& self) {
      const float* g = self.grad.data();
      const float* ad2 = ai->data.data();
      const float* bd2 = bi->data.data();
      if (ai->requires_grad) {
        ai->EnsureGrad();
        float* ga = ai->grad.data();
        if (same) {
          for (int64_t i = 0; i < n * m; ++i) ga[i] += g[i] * bd2[i];
        } else {
          for (int64_t i = 0; i < n; ++i)
            for (int64_t j = 0; j < m; ++j) ga[i * m + j] += g[i * m + j] * bd2[i];
        }
      }
      if (bi->requires_grad) {
        bi->EnsureGrad();
        float* gb = bi->grad.data();
        if (same) {
          for (int64_t i = 0; i < n * m; ++i) gb[i] += g[i] * ad2[i];
        } else {
          for (int64_t i = 0; i < n; ++i) {
            float s = 0.0f;
            for (int64_t j = 0; j < m; ++j) s += g[i * m + j] * ad2[i * m + j];
            gb[i] += s;
          }
        }
      }
    };
  }
  return Tensor(out);
}

Tensor Scale(const Tensor& a, float s) {
  auto out = MakeImpl(a.rows(), a.cols(), a.requires_grad());
  const int64_t n = a.size();
  for (int64_t i = 0; i < n; ++i) out->data[i] = a.data()[i] * s;
  if (out->requires_grad) {
    auto ai = a.impl();
    out->parents = {ai};
    out->backward_fn = [ai, s, n](TensorImpl& self) {
      ai->EnsureGrad();
      for (int64_t i = 0; i < n; ++i) ai->grad[i] += self.grad[i] * s;
    };
  }
  return Tensor(out);
}

Tensor AddScalar(const Tensor& a, float s) {
  auto out = MakeImpl(a.rows(), a.cols(), a.requires_grad());
  const int64_t n = a.size();
  for (int64_t i = 0; i < n; ++i) out->data[i] = a.data()[i] + s;
  if (out->requires_grad) {
    auto ai = a.impl();
    out->parents = {ai};
    out->backward_fn = [ai, n](TensorImpl& self) {
      Accumulate(ai.get(), self.grad.data(), n);
    };
  }
  return Tensor(out);
}

namespace {

template <typename FwdFn, typename BwdFn>
Tensor ElementwiseUnary(const Tensor& a, FwdFn fwd, BwdFn bwd_from_out) {
  auto out = MakeImpl(a.rows(), a.cols(), a.requires_grad());
  const int64_t n = a.size();
  for (int64_t i = 0; i < n; ++i) out->data[i] = fwd(a.data()[i]);
  if (out->requires_grad) {
    auto ai = a.impl();
    out->parents = {ai};
    out->backward_fn = [ai, n, bwd_from_out](TensorImpl& self) {
      ai->EnsureGrad();
      for (int64_t i = 0; i < n; ++i) {
        ai->grad[i] +=
            self.grad[i] * bwd_from_out(self.data[i], ai->data[i]);
      }
    };
  }
  return Tensor(out);
}

}  // namespace

Tensor Sigmoid(const Tensor& a) {
  return ElementwiseUnary(
      a,
      [](float x) {
        return x >= 0 ? 1.0f / (1.0f + std::exp(-x))
                      : std::exp(x) / (1.0f + std::exp(x));
      },
      [](float y, float /*x*/) { return y * (1.0f - y); });
}

Tensor Tanh(const Tensor& a) {
  return ElementwiseUnary(a, [](float x) { return std::tanh(x); },
                          [](float y, float /*x*/) { return 1.0f - y * y; });
}

Tensor Relu(const Tensor& a) {
  return ElementwiseUnary(a, [](float x) { return x > 0 ? x : 0.0f; },
                          [](float /*y*/, float x) { return x > 0 ? 1.0f : 0.0f; });
}

Tensor LeakyRelu(const Tensor& a, float slope) {
  return ElementwiseUnary(
      a, [slope](float x) { return x > 0 ? x : slope * x; },
      [slope](float /*y*/, float x) { return x > 0 ? 1.0f : slope; });
}

Tensor Exp(const Tensor& a) {
  return ElementwiseUnary(a, [](float x) { return std::exp(x); },
                          [](float y, float /*x*/) { return y; });
}

Tensor Log(const Tensor& a, float eps) {
  return ElementwiseUnary(a, [eps](float x) { return std::log(x + eps); },
                          [eps](float /*y*/, float x) { return 1.0f / (x + eps); });
}

Tensor SoftmaxRows(const Tensor& a) {
  auto out = MakeImpl(a.rows(), a.cols(), a.requires_grad());
  const int64_t n = a.rows(), m = a.cols();
  const float* ad = a.data();
  float* od = out->data.data();
  for (int64_t i = 0; i < n; ++i) {
    const float* row = ad + i * m;
    float* orow = od + i * m;
    float mx = row[0];
    for (int64_t j = 1; j < m; ++j) mx = std::max(mx, row[j]);
    float sum = 0.0f;
    for (int64_t j = 0; j < m; ++j) {
      orow[j] = std::exp(row[j] - mx);
      sum += orow[j];
    }
    for (int64_t j = 0; j < m; ++j) orow[j] /= sum;
  }
  if (out->requires_grad) {
    auto ai = a.impl();
    out->parents = {ai};
    out->backward_fn = [ai, n, m](TensorImpl& self) {
      ai->EnsureGrad();
      const float* y = self.data.data();
      const float* g = self.grad.data();
      float* ga = ai->grad.data();
      for (int64_t i = 0; i < n; ++i) {
        float dot = 0.0f;
        for (int64_t j = 0; j < m; ++j) dot += g[i * m + j] * y[i * m + j];
        for (int64_t j = 0; j < m; ++j) {
          ga[i * m + j] += y[i * m + j] * (g[i * m + j] - dot);
        }
      }
    };
  }
  return Tensor(out);
}

Tensor Transpose(const Tensor& a) {
  auto out = MakeImpl(a.cols(), a.rows(), a.requires_grad());
  const int64_t n = a.rows(), m = a.cols();
  for (int64_t i = 0; i < n; ++i)
    for (int64_t j = 0; j < m; ++j) out->data[j * n + i] = a.data()[i * m + j];
  if (out->requires_grad) {
    auto ai = a.impl();
    out->parents = {ai};
    out->backward_fn = [ai, n, m](TensorImpl& self) {
      ai->EnsureGrad();
      for (int64_t i = 0; i < n; ++i)
        for (int64_t j = 0; j < m; ++j)
          ai->grad[i * m + j] += self.grad[j * n + i];
    };
  }
  return Tensor(out);
}

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  ZCHECK_EQ(a.rows(), b.rows());
  const int64_t n = a.rows(), ma = a.cols(), mb = b.cols();
  auto out = MakeImpl(n, ma + mb, AnyRequiresGrad(a, b));
  for (int64_t i = 0; i < n; ++i) {
    std::copy(a.data() + i * ma, a.data() + (i + 1) * ma,
              out->data.data() + i * (ma + mb));
    std::copy(b.data() + i * mb, b.data() + (i + 1) * mb,
              out->data.data() + i * (ma + mb) + ma);
  }
  if (out->requires_grad) {
    auto ai = a.impl();
    auto bi = b.impl();
    out->parents = {ai, bi};
    out->backward_fn = [ai, bi, n, ma, mb](TensorImpl& self) {
      const float* g = self.grad.data();
      if (ai->requires_grad) {
        ai->EnsureGrad();
        for (int64_t i = 0; i < n; ++i)
          for (int64_t j = 0; j < ma; ++j)
            ai->grad[i * ma + j] += g[i * (ma + mb) + j];
      }
      if (bi->requires_grad) {
        bi->EnsureGrad();
        for (int64_t i = 0; i < n; ++i)
          for (int64_t j = 0; j < mb; ++j)
            bi->grad[i * mb + j] += g[i * (ma + mb) + ma + j];
      }
    };
  }
  return Tensor(out);
}

Tensor ConcatRows(const Tensor& a, const Tensor& b) {
  ZCHECK_EQ(a.cols(), b.cols());
  const int64_t na = a.rows(), nb = b.rows(), m = a.cols();
  auto out = MakeImpl(na + nb, m, AnyRequiresGrad(a, b));
  std::copy(a.data(), a.data() + na * m, out->data.data());
  std::copy(b.data(), b.data() + nb * m, out->data.data() + na * m);
  if (out->requires_grad) {
    auto ai = a.impl();
    auto bi = b.impl();
    out->parents = {ai, bi};
    out->backward_fn = [ai, bi, na, nb, m](TensorImpl& self) {
      if (ai->requires_grad) Accumulate(ai.get(), self.grad.data(), na * m);
      if (bi->requires_grad)
        Accumulate(bi.get(), self.grad.data() + na * m, nb * m);
    };
  }
  return Tensor(out);
}

Tensor SumAll(const Tensor& a) {
  auto out = MakeImpl(1, 1, a.requires_grad());
  float s = 0.0f;
  const int64_t n = a.size();
  for (int64_t i = 0; i < n; ++i) s += a.data()[i];
  out->data[0] = s;
  if (out->requires_grad) {
    auto ai = a.impl();
    out->parents = {ai};
    out->backward_fn = [ai, n](TensorImpl& self) {
      ai->EnsureGrad();
      const float g = self.grad[0];
      for (int64_t i = 0; i < n; ++i) ai->grad[i] += g;
    };
  }
  return Tensor(out);
}

Tensor MeanAll(const Tensor& a) {
  return Scale(SumAll(a), 1.0f / static_cast<float>(a.size()));
}

Tensor SumRowsTo1(const Tensor& a) {
  const int64_t n = a.rows(), m = a.cols();
  auto out = MakeImpl(n, 1, a.requires_grad());
  for (int64_t i = 0; i < n; ++i) {
    float s = 0.0f;
    for (int64_t j = 0; j < m; ++j) s += a.data()[i * m + j];
    out->data[i] = s;
  }
  if (out->requires_grad) {
    auto ai = a.impl();
    out->parents = {ai};
    out->backward_fn = [ai, n, m](TensorImpl& self) {
      ai->EnsureGrad();
      for (int64_t i = 0; i < n; ++i)
        for (int64_t j = 0; j < m; ++j) ai->grad[i * m + j] += self.grad[i];
    };
  }
  return Tensor(out);
}

Tensor MeanRows(const Tensor& a) {
  const int64_t n = a.rows(), m = a.cols();
  auto out = MakeImpl(1, m, a.requires_grad());
  for (int64_t j = 0; j < m; ++j) {
    float s = 0.0f;
    for (int64_t i = 0; i < n; ++i) s += a.data()[i * m + j];
    out->data[j] = s / static_cast<float>(n);
  }
  if (out->requires_grad) {
    auto ai = a.impl();
    out->parents = {ai};
    out->backward_fn = [ai, n, m](TensorImpl& self) {
      ai->EnsureGrad();
      const float inv = 1.0f / static_cast<float>(n);
      for (int64_t i = 0; i < n; ++i)
        for (int64_t j = 0; j < m; ++j)
          ai->grad[i * m + j] += self.grad[j] * inv;
    };
  }
  return Tensor(out);
}

Tensor Rows(const Tensor& a, const std::vector<int64_t>& idx) {
  ZCHECK(!idx.empty());
  const int64_t m = a.cols();
  auto out = MakeImpl(static_cast<int64_t>(idx.size()), m, a.requires_grad());
  for (size_t r = 0; r < idx.size(); ++r) {
    ZCHECK(idx[r] >= 0 && idx[r] < a.rows())
        << "row index " << idx[r] << " out of range " << a.rows();
    std::copy(a.data() + idx[r] * m, a.data() + (idx[r] + 1) * m,
              out->data.data() + static_cast<int64_t>(r) * m);
  }
  if (out->requires_grad) {
    auto ai = a.impl();
    auto indices = idx;
    out->parents = {ai};
    out->backward_fn = [ai, indices, m](TensorImpl& self) {
      ai->EnsureGrad();
      for (size_t r = 0; r < indices.size(); ++r) {
        const float* g = self.grad.data() + static_cast<int64_t>(r) * m;
        float* ga = ai->grad.data() + indices[r] * m;
        for (int64_t j = 0; j < m; ++j) ga[j] += g[j];
      }
    };
  }
  return Tensor(out);
}

Tensor RowwiseDot(const Tensor& a, const Tensor& b) {
  ZCHECK(a.rows() == b.rows() && a.cols() == b.cols());
  const int64_t n = a.rows(), m = a.cols();
  auto out = MakeImpl(n, 1, AnyRequiresGrad(a, b));
  for (int64_t i = 0; i < n; ++i) {
    float s = 0.0f;
    for (int64_t j = 0; j < m; ++j) s += a.data()[i * m + j] * b.data()[i * m + j];
    out->data[i] = s;
  }
  if (out->requires_grad) {
    auto ai = a.impl();
    auto bi = b.impl();
    out->parents = {ai, bi};
    out->backward_fn = [ai, bi, n, m](TensorImpl& self) {
      const float* g = self.grad.data();
      if (ai->requires_grad) {
        ai->EnsureGrad();
        for (int64_t i = 0; i < n; ++i)
          for (int64_t j = 0; j < m; ++j)
            ai->grad[i * m + j] += g[i] * bi->data[i * m + j];
      }
      if (bi->requires_grad) {
        bi->EnsureGrad();
        for (int64_t i = 0; i < n; ++i)
          for (int64_t j = 0; j < m; ++j)
            bi->grad[i * m + j] += g[i] * ai->data[i * m + j];
      }
    };
  }
  return Tensor(out);
}

Tensor RowwiseCosine(const Tensor& a, const Tensor& b, float eps) {
  ZCHECK(a.rows() == b.rows() && a.cols() == b.cols());
  const int64_t n = a.rows(), m = a.cols();
  auto out = MakeImpl(n, 1, AnyRequiresGrad(a, b));
  std::vector<float> na(n), nb(n);
  for (int64_t i = 0; i < n; ++i) {
    float sa = 0.0f, sb = 0.0f, dot = 0.0f;
    for (int64_t j = 0; j < m; ++j) {
      const float av = a.data()[i * m + j];
      const float bv = b.data()[i * m + j];
      sa += av * av;
      sb += bv * bv;
      dot += av * bv;
    }
    na[i] = std::sqrt(sa) + eps;
    nb[i] = std::sqrt(sb) + eps;
    out->data[i] = dot / (na[i] * nb[i]);
  }
  if (out->requires_grad) {
    auto ai = a.impl();
    auto bi = b.impl();
    out->parents = {ai, bi};
    out->backward_fn = [ai, bi, n, m, na, nb](TensorImpl& self) {
      const float* g = self.grad.data();
      const float* y = self.data.data();
      for (int64_t i = 0; i < n; ++i) {
        const float gi = g[i];
        if (gi == 0.0f) continue;
        const float cosv = y[i];
        for (int64_t j = 0; j < m; ++j) {
          const float av = ai->data[i * m + j];
          const float bv = bi->data[i * m + j];
          if (ai->requires_grad) {
            ai->EnsureGrad();
            ai->grad[i * m + j] +=
                gi * (bv / (na[i] * nb[i]) - cosv * av / (na[i] * na[i]));
          }
          if (bi->requires_grad) {
            bi->EnsureGrad();
            bi->grad[i * m + j] +=
                gi * (av / (na[i] * nb[i]) - cosv * bv / (nb[i] * nb[i]));
          }
        }
      }
    };
  }
  return Tensor(out);
}

Tensor NormalizeRows(const Tensor& a, float eps) {
  const int64_t n = a.rows(), m = a.cols();
  auto out = MakeImpl(n, m, a.requires_grad());
  std::vector<float> norms(n);
  for (int64_t i = 0; i < n; ++i) {
    float s = 0.0f;
    for (int64_t j = 0; j < m; ++j) {
      const float v = a.data()[i * m + j];
      s += v * v;
    }
    norms[i] = std::sqrt(s) + eps;
    for (int64_t j = 0; j < m; ++j)
      out->data[i * m + j] = a.data()[i * m + j] / norms[i];
  }
  if (out->requires_grad) {
    auto ai = a.impl();
    out->parents = {ai};
    out->backward_fn = [ai, n, m, norms](TensorImpl& self) {
      ai->EnsureGrad();
      const float* g = self.grad.data();
      const float* y = self.data.data();
      for (int64_t i = 0; i < n; ++i) {
        float dot = 0.0f;
        for (int64_t j = 0; j < m; ++j) dot += g[i * m + j] * y[i * m + j];
        for (int64_t j = 0; j < m; ++j) {
          ai->grad[i * m + j] += (g[i * m + j] - dot * y[i * m + j]) / norms[i];
        }
      }
    };
  }
  return Tensor(out);
}

Tensor TileRows(const Tensor& a, int64_t n) {
  ZCHECK_EQ(a.rows(), 1);
  ZCHECK_GT(n, 0);
  const int64_t m = a.cols();
  auto out = MakeImpl(n, m, a.requires_grad());
  for (int64_t i = 0; i < n; ++i)
    std::copy(a.data(), a.data() + m, out->data.data() + i * m);
  if (out->requires_grad) {
    auto ai = a.impl();
    out->parents = {ai};
    out->backward_fn = [ai, n, m](TensorImpl& self) {
      ai->EnsureGrad();
      for (int64_t i = 0; i < n; ++i)
        for (int64_t j = 0; j < m; ++j) ai->grad[j] += self.grad[i * m + j];
    };
  }
  return Tensor(out);
}

Tensor BceWithLogits(const Tensor& logits, const Tensor& labels) {
  ZCHECK(logits.rows() == labels.rows() && logits.cols() == 1 &&
         labels.cols() == 1);
  const int64_t n = logits.rows();
  auto out = MakeImpl(1, 1, logits.requires_grad());
  float loss = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    const float x = logits.data()[i];
    const float y = labels.data()[i];
    loss += std::max(x, 0.0f) - x * y + std::log1p(std::exp(-std::abs(x)));
  }
  out->data[0] = loss / static_cast<float>(n);
  if (out->requires_grad) {
    auto li = logits.impl();
    auto yi = labels.impl();
    out->parents = {li};
    out->backward_fn = [li, yi, n](TensorImpl& self) {
      li->EnsureGrad();
      const float g = self.grad[0] / static_cast<float>(n);
      for (int64_t i = 0; i < n; ++i) {
        const float x = li->data[i];
        const float p = x >= 0 ? 1.0f / (1.0f + std::exp(-x))
                               : std::exp(x) / (1.0f + std::exp(x));
        li->grad[i] += g * (p - yi->data[i]);
      }
    };
  }
  return Tensor(out);
}

Tensor FocalBceWithLogits(const Tensor& logits, const Tensor& labels,
                          float gamma) {
  ZCHECK(logits.rows() == labels.rows() && logits.cols() == 1 &&
         labels.cols() == 1);
  const int64_t n = logits.rows();
  static constexpr float kEps = 1e-7f;
  auto out = MakeImpl(1, 1, logits.requires_grad());
  float loss = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    const float x = logits.data()[i];
    const float y = labels.data()[i];
    float p = x >= 0 ? 1.0f / (1.0f + std::exp(-x))
                     : std::exp(x) / (1.0f + std::exp(x));
    p = std::min(std::max(p, kEps), 1.0f - kEps);
    loss += -y * std::pow(1.0f - p, gamma) * std::log(p) -
            (1.0f - y) * std::pow(p, gamma) * std::log(1.0f - p);
  }
  out->data[0] = loss / static_cast<float>(n);
  if (out->requires_grad) {
    auto li = logits.impl();
    auto yi = labels.impl();
    out->parents = {li};
    out->backward_fn = [li, yi, n, gamma](TensorImpl& self) {
      li->EnsureGrad();
      const float g = self.grad[0] / static_cast<float>(n);
      for (int64_t i = 0; i < n; ++i) {
        const float x = li->data[i];
        const float y = yi->data[i];
        float p = x >= 0 ? 1.0f / (1.0f + std::exp(-x))
                         : std::exp(x) / (1.0f + std::exp(x));
        p = std::min(std::max(p, kEps), 1.0f - kEps);
        // d/dx of the focal loss (derived via dL/dp * p*(1-p)):
        // y-term:  g*p*(1-p)^g*log(p)*gamma - (1-p)^(g+1)
        // (1-y)-term: -gamma*(1-p)*p^g*log(1-p) + p^(g+1)
        const float pos = gamma * p * std::pow(1.0f - p, gamma) * std::log(p) -
                          std::pow(1.0f - p, gamma + 1.0f);
        const float neg =
            -gamma * (1.0f - p) * std::pow(p, gamma) * std::log(1.0f - p) +
            std::pow(p, gamma + 1.0f);
        li->grad[i] += g * (y * pos + (1.0f - y) * neg);
      }
    };
  }
  return Tensor(out);
}

Tensor SquaredNorm(const Tensor& a) {
  auto out = MakeImpl(1, 1, a.requires_grad());
  const int64_t n = a.size();
  float s = 0.0f;
  for (int64_t i = 0; i < n; ++i) s += a.data()[i] * a.data()[i];
  out->data[0] = s;
  if (out->requires_grad) {
    auto ai = a.impl();
    out->parents = {ai};
    out->backward_fn = [ai, n](TensorImpl& self) {
      ai->EnsureGrad();
      const float g = self.grad[0];
      for (int64_t i = 0; i < n; ++i) ai->grad[i] += 2.0f * g * ai->data[i];
    };
  }
  return Tensor(out);
}

}  // namespace tensor
}  // namespace zoomer
