#include "tensor/nn.h"

namespace zoomer {
namespace tensor {

Tensor Activate(const Tensor& x, Activation act) {
  switch (act) {
    case Activation::kNone: return x;
    case Activation::kRelu: return Relu(x);
    case Activation::kLeakyRelu: return LeakyRelu(x);
    case Activation::kTanh: return Tanh(x);
    case Activation::kSigmoid: return Sigmoid(x);
  }
  return x;
}

Linear::Linear(int64_t in_dim, int64_t out_dim, Rng* rng)
    : weight_(Tensor::Xavier(in_dim, out_dim, rng, /*requires_grad=*/true)),
      bias_(Tensor::Zeros(1, out_dim, /*requires_grad=*/true)) {}

Tensor Linear::Forward(const Tensor& x) const {
  return Add(MatMul(x, weight_), bias_);
}

Mlp::Mlp(const std::vector<int64_t>& dims, Rng* rng, Activation hidden_act,
         Activation out_act)
    : hidden_act_(hidden_act), out_act_(out_act) {
  ZCHECK_GE(dims.size(), 2u);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.emplace_back(dims[i], dims[i + 1], rng);
  }
}

Tensor Mlp::Forward(const Tensor& x) const {
  Tensor h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].Forward(h);
    h = Activate(h, i + 1 < layers_.size() ? hidden_act_ : out_act_);
  }
  return h;
}

std::vector<Tensor> Mlp::Parameters() const {
  std::vector<Tensor> out;
  for (const auto& l : layers_) {
    auto p = l.Parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

Embedding::Embedding(int64_t vocab, int64_t dim, Rng* rng, float stddev)
    : table_(Tensor::Randn(vocab, dim, rng, stddev, /*requires_grad=*/true)) {}

Tensor Embedding::Lookup(const std::vector<int64_t>& ids) const {
  return Rows(table_, ids);
}

}  // namespace tensor
}  // namespace zoomer
