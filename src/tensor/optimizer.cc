#include "tensor/optimizer.h"

#include <cmath>

namespace zoomer {
namespace tensor {

void Sgd::Step() {
  if (momentum_ > 0.0f && velocity_.size() < params_.size()) {
    velocity_.resize(params_.size());
  }
  for (size_t pi = 0; pi < params_.size(); ++pi) {
    Tensor& p = params_[pi];
    if (!p.requires_grad()) continue;
    float* w = p.data();
    const float* g = p.grad_data();
    const int64_t n = p.size();
    if (momentum_ > 0.0f) {
      auto& vel = velocity_[pi];
      if (static_cast<int64_t>(vel.size()) != n) vel.assign(n, 0.0f);
      for (int64_t i = 0; i < n; ++i) {
        const float grad = g[i] + weight_decay_ * w[i];
        vel[i] = momentum_ * vel[i] + grad;
        w[i] -= lr_ * vel[i];
      }
    } else {
      for (int64_t i = 0; i < n; ++i) {
        w[i] -= lr_ * (g[i] + weight_decay_ * w[i]);
      }
    }
  }
}

void Adam::Step() {
  ++t_;
  if (m_.size() < params_.size()) {
    m_.resize(params_.size());
    v_.resize(params_.size());
  }
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t pi = 0; pi < params_.size(); ++pi) {
    Tensor& p = params_[pi];
    if (!p.requires_grad()) continue;
    float* w = p.data();
    const float* g = p.grad_data();
    const int64_t n = p.size();
    auto& m = m_[pi];
    auto& v = v_[pi];
    if (static_cast<int64_t>(m.size()) != n) {
      m.assign(n, 0.0f);
      v.assign(n, 0.0f);
    }
    for (int64_t i = 0; i < n; ++i) {
      const float grad = g[i] + weight_decay_ * w[i];
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * grad;
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * grad * grad;
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      w[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

void Adagrad::Step() {
  if (accum_.size() < params_.size()) accum_.resize(params_.size());
  for (size_t pi = 0; pi < params_.size(); ++pi) {
    Tensor& p = params_[pi];
    if (!p.requires_grad()) continue;
    float* w = p.data();
    const float* g = p.grad_data();
    const int64_t n = p.size();
    auto& acc = accum_[pi];
    if (static_cast<int64_t>(acc.size()) != n) acc.assign(n, 0.0f);
    for (int64_t i = 0; i < n; ++i) {
      acc[i] += g[i] * g[i];
      w[i] -= lr_ * g[i] / (std::sqrt(acc[i]) + eps_);
    }
  }
}

}  // namespace tensor
}  // namespace zoomer
