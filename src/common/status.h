// Status: lightweight error propagation in the style of RocksDB/Abseil.
// Functions that can fail return a Status (or StatusOr<T>); Status::OK() is
// the success value. Statuses carry a code and a human-readable message.
#ifndef ZOOMER_COMMON_STATUS_H_
#define ZOOMER_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace zoomer {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kInternal = 5,
  kUnavailable = 6,
  kAlreadyExists = 7,
};

/// A Status encapsulates the result of an operation: success, or an error
/// code plus message. Copyable and cheap in the success case.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + msg_;
  }

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  static std::string CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kFailedPrecondition: return "FailedPrecondition";
      case StatusCode::kInternal: return "Internal";
      case StatusCode::kUnavailable: return "Unavailable";
      case StatusCode::kAlreadyExists: return "AlreadyExists";
    }
    return "Unknown";
  }

  StatusCode code_;
  std::string msg_;
};

/// StatusOr<T>: either a value or an error Status. Check ok() before value().
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

 private:
  Status status_;
  T value_{};
};

// Propagates a non-OK status to the caller.
#define ZOOMER_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::zoomer::Status _st = (expr);              \
    if (!_st.ok()) return _st;                  \
  } while (0)

}  // namespace zoomer

#endif  // ZOOMER_COMMON_STATUS_H_
