#include "common/logging.h"

#include <cctype>

namespace zoomer {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void SetLogLevelFromEnv() {
  const char* raw = std::getenv("ZOOMER_LOG_LEVEL");
  if (raw == nullptr || *raw == '\0') return;
  std::string value(raw);
  for (char& c : value) c = static_cast<char>(std::toupper(c));
  if (value == "DEBUG" || value == "0") {
    SetLogLevel(LogLevel::kDebug);
  } else if (value == "INFO" || value == "1") {
    SetLogLevel(LogLevel::kInfo);
  } else if (value == "WARNING" || value == "WARN" || value == "2") {
    SetLogLevel(LogLevel::kWarning);
  } else if (value == "ERROR" || value == "3") {
    SetLogLevel(LogLevel::kError);
  }
  // Anything else: keep the current threshold rather than guessing.
}

namespace {
/// Applies ZOOMER_LOG_LEVEL during static initialization so every binary
/// linking the library honors it without explicit setup.
struct EnvLogLevelInit {
  EnvLogLevelInit() { SetLogLevelFromEnv(); }
};
const EnvLogLevelInit g_env_log_level_init;
}  // namespace

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), fatal_(fatal), enabled_(fatal || level >= GetLogLevel()) {
  if (!enabled_) return;
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::cerr << stream_.str() << std::endl;
  }
  if (fatal_) std::abort();
}

}  // namespace internal
}  // namespace zoomer
