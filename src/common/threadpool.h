// Fixed-size thread pool used by the distributed-engine and serving
// simulations. Submitted tasks return std::future results.
#ifndef ZOOMER_COMMON_THREADPOOL_H_
#define ZOOMER_COMMON_THREADPOOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace zoomer {

/// A simple work-stealing-free thread pool with one shared FIFO queue.
/// Destruction waits for in-flight tasks but discards queued ones only after
/// draining (Shutdown runs everything already enqueued).
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads) : stop_(false) {
    if (num_threads == 0) num_threads = 1;
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() { Shutdown(); }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues fn and returns a future for its result.
  template <typename Fn, typename... Args>
  auto Submit(Fn&& fn, Args&&... args)
      -> std::future<std::invoke_result_t<Fn, Args...>> {
    using Ret = std::invoke_result_t<Fn, Args...>;
    auto task = std::make_shared<std::packaged_task<Ret()>>(
        std::bind(std::forward<Fn>(fn), std::forward<Args>(args)...));
    std::future<Ret> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Drains the queue and joins all workers. Idempotent.
  void Shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) return;
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
  }

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
        if (tasks_.empty()) {
          if (stop_) return;
          continue;
        }
        task = std::move(tasks_.front());
        tasks_.pop_front();
      }
      task();
    }
  }

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_;
};

/// Bounded multi-producer multi-consumer queue for pipeline stages.
/// Push blocks when full; Pop blocks when empty; Close unblocks consumers.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  /// Returns false if the queue was closed before the item could be pushed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking pop: returns false immediately when the queue is empty.
  bool TryPop(T* out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return true;
  }

  /// Returns false when the queue is closed and drained.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return true;
  }

  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace zoomer

#endif  // ZOOMER_COMMON_THREADPOOL_H_
