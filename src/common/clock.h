// Injectable time source for everything that reasons about *event* time —
// TTL expiry, exponential edge-weight decay, and delta-age compaction
// triggers in src/maintenance/. Policies never read the wall clock directly:
// production wires SystemClock, tests wire ManualClock and advance it
// explicitly, so decay factors and expiry cutoffs are exactly reproducible.
// (Scheduling *cadence* — how often a janitor ticks — is real time and stays
// on std::chrono; only time *semantics* go through this interface.)
#ifndef ZOOMER_COMMON_CLOCK_H_
#define ZOOMER_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace zoomer {

/// Seconds-resolution logical clock. Implementations must be safe to read
/// from any thread.
class LogicalClock {
 public:
  virtual ~LogicalClock() = default;
  virtual int64_t NowSeconds() const = 0;
};

/// Wall-clock seconds since the Unix epoch (production default).
class SystemClock final : public LogicalClock {
 public:
  int64_t NowSeconds() const override {
    return std::chrono::duration_cast<std::chrono::seconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
  }
};

/// Test clock: starts at a fixed instant and only moves when told to. Safe
/// for concurrent readers while a test thread advances it.
class ManualClock final : public LogicalClock {
 public:
  explicit ManualClock(int64_t start_seconds = 0) : now_(start_seconds) {}

  int64_t NowSeconds() const override {
    return now_.load(std::memory_order_acquire);
  }

  void AdvanceSeconds(int64_t delta) {
    now_.fetch_add(delta, std::memory_order_acq_rel);
  }
  void SetSeconds(int64_t now) { now_.store(now, std::memory_order_release); }

 private:
  std::atomic<int64_t> now_;
};

}  // namespace zoomer

#endif  // ZOOMER_COMMON_CLOCK_H_
