// In-memory little-endian serialization buffers shared by the persistence
// formats (checkpoint segments, manifest, WAL records). A record is always
// built fully in memory first so its CRC can be computed before anything
// touches the file — the write side of the "length + checksum + payload"
// framing every on-disk artifact here uses. The read side parses from a
// byte span and turns every malformed length or overrun into a clean false
// (callers surface it as a Status) instead of UB.
#ifndef ZOOMER_COMMON_BYTE_BUFFER_H_
#define ZOOMER_COMMON_BYTE_BUFFER_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

namespace zoomer {

/// Append-only serialization buffer. Scalars and vectors of trivially
/// copyable element types are written raw (little-endian hosts only, the
/// same assumption graph_io.cc has always made).
class ByteWriter {
 public:
  void Bytes(const void* data, size_t n) {
    const auto* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  template <typename T>
  void Scalar(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    Bytes(&v, sizeof(T));
  }

  /// uint64 element count followed by the raw element bytes.
  template <typename T>
  void Vector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    Scalar<uint64_t>(v.size());
    if (!v.empty()) Bytes(v.data(), v.size() * sizeof(T));
  }

  const std::vector<uint8_t>& data() const { return buf_; }
  size_t size() const { return buf_.size(); }

 private:
  std::vector<uint8_t> buf_;
};

/// Bounded parser over a byte span. Every accessor returns false on
/// overrun or on a vector length past `max_elems` (the corruption guard
/// graph_io.cc established); once any read fails, ok() stays false.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  bool ok() const { return ok_; }
  bool exhausted() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

  bool Bytes(void* out, size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  template <typename T>
  bool Scalar(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    return Bytes(out, sizeof(T));
  }

  template <typename T>
  bool Vector(std::vector<T>* out, uint64_t max_elems) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t n = 0;
    if (!Scalar(&n)) return false;
    if (n > max_elems || data_.size() - pos_ < n * sizeof(T)) {
      ok_ = false;
      return false;
    }
    out->resize(n);
    return out->empty() || Bytes(out->data(), n * sizeof(T));
  }

 private:
  std::span<const uint8_t> data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace zoomer

#endif  // ZOOMER_COMMON_BYTE_BUFFER_H_
