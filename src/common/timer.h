// Wall-clock timing and simple latency statistics used by benchmarks and the
// serving simulation.
#ifndef ZOOMER_COMMON_TIMER_H_
#define ZOOMER_COMMON_TIMER_H_

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <vector>

namespace zoomer {

/// Monotonic wall timer with microsecond resolution.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates scalar samples (e.g., per-request latencies) and reports
/// summary statistics including percentiles.
///
/// Single-thread contract: this is an offline/reporting accumulator — Add()
/// and the query methods must not race. Hot multi-threaded paths use
/// obs::Histogram (lock-free, no sort) instead; LatencyStats keeps exact
/// percentiles for benches and tests that tally on one thread.
///
/// Percentile() sorts lazily and caches the sorted order, so repeated
/// quantile queries (p50/p90/p99/...) between Adds sort once, not per call.
class LatencyStats {
 public:
  void Add(double v) {
    samples_.push_back(v);
    sorted_valid_ = false;
  }

  size_t count() const { return samples_.size(); }

  double Mean() const {
    if (samples_.empty()) return 0.0;
    double s = 0.0;
    for (double v : samples_) s += v;
    return s / static_cast<double>(samples_.size());
  }

  double StdDev() const {
    if (samples_.size() < 2) return 0.0;
    double m = Mean();
    double s = 0.0;
    for (double v : samples_) s += (v - m) * (v - m);
    return std::sqrt(s / static_cast<double>(samples_.size() - 1));
  }

  double Min() const {
    return samples_.empty()
               ? 0.0
               : *std::min_element(samples_.begin(), samples_.end());
  }

  double Max() const {
    return samples_.empty()
               ? 0.0
               : *std::max_element(samples_.begin(), samples_.end());
  }

  /// p in [0, 100]. Interpolated nearest-rank percentile; sorts at most
  /// once per batch of Adds (cached until the next Add/Clear).
  double Percentile(double p) const {
    if (samples_.empty()) return 0.0;
    EnsureSorted();
    double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, sorted_.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
  }

  void Clear() {
    samples_.clear();
    sorted_.clear();
    sorted_valid_ = false;
  }

  const std::vector<double>& samples() const { return samples_; }

 private:
  void EnsureSorted() const {
    if (sorted_valid_) return;
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }

  std::vector<double> samples_;
  // Lazily maintained sorted copy (single-thread contract makes the
  // mutable cache safe).
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

}  // namespace zoomer

#endif  // ZOOMER_COMMON_TIMER_H_
