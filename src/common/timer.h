// Wall-clock timing and simple latency statistics used by benchmarks and the
// serving simulation.
#ifndef ZOOMER_COMMON_TIMER_H_
#define ZOOMER_COMMON_TIMER_H_

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <vector>

namespace zoomer {

/// Monotonic wall timer with microsecond resolution.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates scalar samples (e.g., per-request latencies) and reports
/// summary statistics including percentiles.
class LatencyStats {
 public:
  void Add(double v) { samples_.push_back(v); }

  size_t count() const { return samples_.size(); }

  double Mean() const {
    if (samples_.empty()) return 0.0;
    double s = 0.0;
    for (double v : samples_) s += v;
    return s / static_cast<double>(samples_.size());
  }

  double StdDev() const {
    if (samples_.size() < 2) return 0.0;
    double m = Mean();
    double s = 0.0;
    for (double v : samples_) s += (v - m) * (v - m);
    return std::sqrt(s / static_cast<double>(samples_.size() - 1));
  }

  double Min() const {
    return samples_.empty()
               ? 0.0
               : *std::min_element(samples_.begin(), samples_.end());
  }

  double Max() const {
    return samples_.empty()
               ? 0.0
               : *std::max_element(samples_.begin(), samples_.end());
  }

  /// p in [0, 100]. Nearest-rank percentile over a sorted copy.
  double Percentile(double p) const {
    if (samples_.empty()) return 0.0;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  }

  void Clear() { samples_.clear(); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

}  // namespace zoomer

#endif  // ZOOMER_COMMON_TIMER_H_
