// Deterministic, fast pseudo-random generation used throughout the project.
// All stochastic components (samplers, generators, initializers) take an
// explicit Rng so experiments are reproducible from a single seed.
#ifndef ZOOMER_COMMON_RANDOM_H_
#define ZOOMER_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace zoomer {

/// xoshiro256** PRNG seeded through SplitMix64. Not cryptographic; chosen for
/// speed and statistical quality in simulation workloads.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the 4-word state.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      state_[i] = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t NextUint64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, n). n must be > 0.
  ///
  /// Lemire's multiply-shift bounded draw: the 64-bit random word is mapped
  /// onto [0, n) by taking the high half of a 128-bit product, with a
  /// rejection pass that removes the modulo bias of the naive `x % n` (and
  /// with it the hot-loop 64-bit division — the common case is one multiply;
  /// the `2^64 % n` divide runs only in the rejection branch, reached with
  /// probability n / 2^64).
  uint64_t Uniform(uint64_t n) {
    uint64_t x = NextUint64();
    unsigned __int128 m = static_cast<unsigned __int128>(x) * n;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < n) {
      const uint64_t threshold = (0 - n) % n;  // 2^64 mod n
      while (low < threshold) {
        x = NextUint64();
        m = static_cast<unsigned __int128>(x) * n;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi].
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1). Built from the top 24 bits so the result is
  /// exactly representable and strictly below 1.0f (a narrowing cast from
  /// UniformDouble() could round up to 1.0f). Consumes one 64-bit word, same
  /// as UniformDouble().
  float UniformFloat() {
    return static_cast<float>(NextUint64() >> 40) * 0x1.0p-24f;
  }

  /// Standard normal via Box-Muller.
  double Normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    while (u1 <= 1e-12) u1 = UniformDouble();
    double u2 = UniformDouble();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  /// Bernoulli draw with probability p of true.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Samples an index from unnormalized non-negative weights (linear scan).
  /// Returns weights.size()-1 on degenerate input (all-zero weights).
  size_t Categorical(const std::vector<double>& weights) {
    double total = 0.0;
    for (double w : weights) total += w;
    if (total <= 0.0) return weights.empty() ? 0 : weights.size() - 1;
    double r = UniformDouble() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
      r -= weights[i];
      if (r <= 0.0) return i;
    }
    return weights.size() - 1;
  }

  /// Geometric-ish Zipf sampler over [0, n) with exponent s (approximate,
  /// via inverse-CDF on precomputed harmonic weights is left to callers;
  /// this uses rejection-free power-law approximation).
  size_t Zipf(size_t n, double s) {
    // Inverse transform on continuous power-law, clamped to [0, n).
    double u = UniformDouble();
    double x = std::pow(1.0 - u, -1.0 / (s > 1.0 ? s - 1.0 : 0.5)) - 1.0;
    size_t idx = static_cast<size_t>(x);
    return idx >= n ? Uniform(n) : idx;
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      std::swap((*v)[i - 1], (*v)[Uniform(i)]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
  bool has_cached_ = false;
  double cached_ = 0.0;
};

}  // namespace zoomer

#endif  // ZOOMER_COMMON_RANDOM_H_
