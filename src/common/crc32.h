// CRC-32 (IEEE 802.3 polynomial, reflected) for persistence integrity
// checks: every checkpoint segment file, manifest, and WAL record carries a
// checksum so recovery can tell a torn tail from silent corruption. Table
// driven, no hardware or library dependencies.
#ifndef ZOOMER_COMMON_CRC32_H_
#define ZOOMER_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace zoomer {

/// CRC-32 of `n` bytes. Chain blocks by passing the previous result as
/// `seed` (the default seed is the standard initial value).
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

}  // namespace zoomer

#endif  // ZOOMER_COMMON_CRC32_H_
