// Minimal leveled logging. Usage:
//   ZLOG(INFO) << "trained " << n << " steps";
// Levels below the global threshold are compiled to a no-op stream.
// ZCHECK(cond) aborts with a message when the condition fails; it is used
// for programmer errors (not data errors, which return Status).
#ifndef ZOOMER_COMMON_LOGGING_H_
#define ZOOMER_COMMON_LOGGING_H_

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace zoomer {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global log threshold; messages below it are discarded.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Re-reads ZOOMER_LOG_LEVEL from the environment and applies it. Accepts
/// DEBUG/INFO/WARNING/WARN/ERROR (any case) or the numeric level 0-3; an
/// unset or unparsable value leaves the current threshold unchanged.
/// Applied once automatically at process startup (static initialization),
/// exposed so tests and long-lived tools can re-apply it.
void SetLogLevelFromEnv();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  bool fatal_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace zoomer

#define ZLOG_DEBUG \
  ::zoomer::internal::LogMessage(::zoomer::LogLevel::kDebug, __FILE__, __LINE__).stream()
#define ZLOG_INFO \
  ::zoomer::internal::LogMessage(::zoomer::LogLevel::kInfo, __FILE__, __LINE__).stream()
#define ZLOG_WARNING \
  ::zoomer::internal::LogMessage(::zoomer::LogLevel::kWarning, __FILE__, __LINE__).stream()
#define ZLOG_ERROR \
  ::zoomer::internal::LogMessage(::zoomer::LogLevel::kError, __FILE__, __LINE__).stream()
#define ZLOG(level) ZLOG_##level

/// Rate-limited logging for per-request/per-event instrumentation: emits the
/// 1st, (n+1)th, (2n+1)th, ... hit of this particular macro expansion site
/// (each site keeps its own counter), so hot-path drop logging cannot flood
/// stderr. The empty if-branch keeps dangling-else safe:
///   ZLOG_EVERY_N(WARNING, 1024) << "dropped event " << ev;
#define ZLOG_EVERY_N(level, n)                                               \
  if (!([]() -> bool {                                                       \
        static std::atomic<int64_t> zlog_every_n_counter{0};                 \
        return zlog_every_n_counter.fetch_add(                               \
                   1, std::memory_order_relaxed) % (n) == 0;                 \
      }()))                                                                  \
    ;                                                                        \
  else                                                                       \
    ZLOG(level)

#define ZCHECK(cond)                                                         \
  if (!(cond))                                                               \
  ::zoomer::internal::LogMessage(::zoomer::LogLevel::kError, __FILE__,       \
                                 __LINE__, /*fatal=*/true)                   \
          .stream()                                                          \
      << "Check failed: " #cond " "

#define ZCHECK_EQ(a, b) ZCHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define ZCHECK_NE(a, b) ZCHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define ZCHECK_LT(a, b) ZCHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define ZCHECK_LE(a, b) ZCHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define ZCHECK_GT(a, b) ZCHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define ZCHECK_GE(a, b) ZCHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // ZOOMER_COMMON_LOGGING_H_
