#include "data/session_stream.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "common/random.h"

namespace zoomer {
namespace data {

using graph::NodeId;
using graph::NodeType;

graph::SessionLog SynthesizeLiveSessions(const RetrievalDataset& ds,
                                         const LiveSessionOptions& options) {
  const auto& g = ds.graph;
  ZCHECK_EQ(static_cast<int64_t>(ds.category.size()), g.num_nodes());
  std::vector<NodeId> users;
  std::vector<NodeId> queries;
  int num_categories = ds.num_categories;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    switch (g.node_type(v)) {
      case NodeType::kUser: users.push_back(v); break;
      case NodeType::kQuery: queries.push_back(v); break;
      case NodeType::kItem: break;
    }
    num_categories = std::max(num_categories, ds.category[v] + 1);
  }
  std::vector<std::vector<NodeId>> items_by_cat(
      static_cast<size_t>(num_categories));
  for (NodeId item : ds.all_items) {
    if (ds.category[item] >= 0) items_by_cat[ds.category[item]].push_back(item);
  }
  ZCHECK(!users.empty());
  ZCHECK(!queries.empty());
  ZCHECK(!ds.all_items.empty());

  Rng rng(options.seed);
  graph::SessionLog log;
  log.reserve(options.num_sessions);
  for (int s = 0; s < options.num_sessions; ++s) {
    graph::SessionRecord rec;
    rec.user = users[rng.Uniform(users.size())];
    rec.query = queries[rng.Uniform(queries.size())];
    rec.timestamp =
        options.start_timestamp + static_cast<int64_t>(s) *
                                      options.inter_session_seconds;
    const int cat = ds.category[rec.query];
    const auto& bucket =
        (cat >= 0 && !items_by_cat[cat].empty()) ? items_by_cat[cat]
                                                 : ds.all_items;
    const int clicks =
        static_cast<int>(rng.UniformInt(options.min_clicks, options.max_clicks));
    for (int c = 0; c < clicks; ++c) {
      const bool in_cat = rng.Bernoulli(options.p_click_in_category);
      const auto& pool = in_cat ? bucket : ds.all_items;
      rec.clicks.push_back(pool[rng.Uniform(pool.size())]);
    }
    log.push_back(std::move(rec));
  }
  return log;
}

}  // namespace data
}  // namespace zoomer
