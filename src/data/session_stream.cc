#include "data/session_stream.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "common/random.h"

namespace zoomer {
namespace data {

using graph::NodeId;
using graph::NodeType;

graph::SessionLog SynthesizeLiveSessions(const RetrievalDataset& ds,
                                         const LiveSessionOptions& options) {
  const auto& g = ds.graph;
  ZCHECK_EQ(static_cast<int64_t>(ds.category.size()), g.num_nodes());
  std::vector<NodeId> users;
  std::vector<NodeId> queries;
  int num_categories = ds.num_categories;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    switch (g.node_type(v)) {
      case NodeType::kUser: users.push_back(v); break;
      case NodeType::kQuery: queries.push_back(v); break;
      case NodeType::kItem: break;
    }
    num_categories = std::max(num_categories, ds.category[v] + 1);
  }
  std::vector<std::vector<NodeId>> items_by_cat(
      static_cast<size_t>(num_categories));
  for (NodeId item : ds.all_items) {
    if (ds.category[item] >= 0) items_by_cat[ds.category[item]].push_back(item);
  }
  ZCHECK(!users.empty());
  ZCHECK(!queries.empty());
  ZCHECK(!ds.all_items.empty());

  Rng rng(options.seed);
  graph::SessionLog log;
  log.reserve(options.num_sessions);
  for (int s = 0; s < options.num_sessions; ++s) {
    graph::SessionRecord rec;
    rec.user = users[rng.Uniform(users.size())];
    rec.query = queries[rng.Uniform(queries.size())];
    rec.timestamp =
        options.start_timestamp + static_cast<int64_t>(s) *
                                      options.inter_session_seconds;
    const int cat = ds.category[rec.query];
    const auto& bucket =
        (cat >= 0 && !items_by_cat[cat].empty()) ? items_by_cat[cat]
                                                 : ds.all_items;
    const int clicks =
        static_cast<int>(rng.UniformInt(options.min_clicks, options.max_clicks));
    for (int c = 0; c < clicks; ++c) {
      const bool in_cat = rng.Bernoulli(options.p_click_in_category);
      const auto& pool = in_cat ? bucket : ds.all_items;
      rec.clicks.push_back(pool[rng.Uniform(pool.size())]);
    }
    log.push_back(std::move(rec));
  }
  return log;
}

std::vector<ColdStartArrival> SynthesizeColdStartArrivals(
    const RetrievalDataset& ds, const ColdStartOptions& options) {
  const auto& g = ds.graph;
  ZCHECK_EQ(static_cast<int64_t>(ds.category.size()), g.num_nodes());
  ZCHECK(!ds.all_items.empty());
  std::vector<NodeId> users;
  std::vector<std::vector<NodeId>> queries_by_cat;
  auto bucket = [&queries_by_cat](int cat) -> std::vector<NodeId>& {
    if (static_cast<size_t>(cat) >= queries_by_cat.size()) {
      queries_by_cat.resize(cat + 1);
    }
    return queries_by_cat[cat];
  };
  std::vector<NodeId> all_queries;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.node_type(v) == NodeType::kUser) users.push_back(v);
    if (g.node_type(v) == NodeType::kQuery) {
      all_queries.push_back(v);
      if (ds.category[v] >= 0) bucket(ds.category[v]).push_back(v);
    }
  }
  ZCHECK(!users.empty());
  ZCHECK(!all_queries.empty());

  Rng rng(options.seed);
  std::vector<ColdStartArrival> arrivals;
  arrivals.reserve(options.num_new_items);
  for (int i = 0; i < options.num_new_items; ++i) {
    const int64_t ts =
        options.start_timestamp +
        static_cast<int64_t>(i) * options.inter_arrival_seconds;
    // A new catalog item resembles an existing one of its category: noisy
    // copy of the template's content, same categorical slots (the model
    // embeds slot ids it has seen; inventing fresh vocab is the offline
    // build's job).
    const NodeId tmpl = ds.all_items[rng.Uniform(ds.all_items.size())];
    const int cat = ds.category[tmpl];
    ColdStartArrival arrival;
    arrival.item.type = NodeType::kItem;
    arrival.item.timestamp = ts;
    const float* c = g.content(tmpl);
    arrival.item.content.assign(c, c + g.content_dim());
    for (float& x : arrival.item.content) {
      x += static_cast<float>(rng.Normal()) *
           static_cast<float>(options.content_noise);
    }
    auto tmpl_slots = g.slots(tmpl);
    arrival.item.slots.assign(tmpl_slots.begin(), tmpl_slots.end());

    const auto& cat_queries =
        (cat >= 0 && static_cast<size_t>(cat) < queries_by_cat.size() &&
         !queries_by_cat[cat].empty())
            ? queries_by_cat[cat]
            : all_queries;
    for (int s = 0; s < options.introducing_sessions; ++s) {
      const NodeId user = users[rng.Uniform(users.size())];
      const NodeId query = cat_queries[rng.Uniform(cat_queries.size())];
      arrival.edges.push_back(
          {user, query, graph::RelationKind::kClick, 1.0f, ts});
      // -1 placeholder: the new item's id, assigned at append time.
      arrival.edges.push_back(
          {query, -1, graph::RelationKind::kClick, 1.0f, ts});
    }
    // Session adjacency to the template: the new item was browsed next to
    // its closest catalog sibling.
    arrival.edges.push_back(
        {-1, tmpl, graph::RelationKind::kSession, 1.0f, ts});
    arrivals.push_back(std::move(arrival));
  }
  return arrivals;
}

}  // namespace data
}  // namespace zoomer
