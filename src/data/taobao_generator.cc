#include "data/taobao_generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/logging.h"

namespace zoomer {
namespace data {

namespace {

using graph::NodeId;
using graph::NodeSpec;
using graph::NodeType;

// Unit-norm topic vector per category plus Gaussian noise, renormalized.
std::vector<float> NoisyTopic(const std::vector<float>& topic, float noise,
                              Rng* rng) {
  std::vector<float> v(topic.size());
  float norm = 0.0f;
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = topic[i] + noise * static_cast<float>(rng->Normal());
    norm += v[i] * v[i];
  }
  norm = std::sqrt(norm) + 1e-8f;
  for (auto& x : v) x /= norm;
  return v;
}

std::vector<uint64_t> DrawTokens(int category, int count,
                                 const TaobaoGeneratorOptions& opt, Rng* rng) {
  std::unordered_set<uint64_t> toks;
  // 3/4 of tokens from the category pool, 1/4 from the shared pool.
  const int cat_tokens = count * 3 / 4;
  while (static_cast<int>(toks.size()) < cat_tokens) {
    toks.insert(static_cast<uint64_t>(category) * 100000ull +
                rng->Uniform(opt.category_token_pool));
  }
  while (static_cast<int>(toks.size()) < count) {
    toks.insert(0xFFFF000000ull + rng->Uniform(opt.shared_token_pool));
  }
  return {toks.begin(), toks.end()};
}

}  // namespace

RetrievalDataset GenerateTaobaoDataset(const TaobaoGeneratorOptions& opt) {
  ZCHECK_GT(opt.num_categories, 0);
  ZCHECK_GT(opt.num_users, 0);
  ZCHECK_GT(opt.num_queries, 0);
  ZCHECK_GT(opt.num_items, 0);
  Rng rng(opt.seed);

  // Category topic vectors: random unit vectors.
  std::vector<std::vector<float>> topics(opt.num_categories);
  for (auto& t : topics) {
    t.resize(opt.content_dim);
    float norm = 0.0f;
    for (auto& x : t) {
      x = static_cast<float>(rng.Normal());
      norm += x * x;
    }
    norm = std::sqrt(norm) + 1e-8f;
    for (auto& x : t) x /= norm;
  }

  RetrievalDataset ds;
  ds.num_categories = opt.num_categories;
  std::vector<NodeSpec> nodes;
  nodes.reserve(opt.num_users + opt.num_queries + opt.num_items);

  // Users: interest mixtures over 1..max_user_interests categories, with a
  // category-local taste direction per (user, interest category).
  std::vector<std::vector<int>> user_interest_cats(opt.num_users);
  std::vector<std::vector<double>> user_interest_wts(opt.num_users);
  std::vector<std::unordered_map<int, std::vector<float>>> user_taste(
      opt.num_users);
  for (int u = 0; u < opt.num_users; ++u) {
    const int k = 1 + static_cast<int>(rng.Uniform(opt.max_user_interests));
    std::unordered_set<int> cats;
    while (static_cast<int>(cats.size()) < k) {
      cats.insert(static_cast<int>(rng.Uniform(opt.num_categories)));
    }
    user_interest_cats[u] = {cats.begin(), cats.end()};
    auto& wts = user_interest_wts[u];
    double total = 0.0;
    for (size_t i = 0; i < cats.size(); ++i) {
      wts.push_back(0.2 + rng.UniformDouble());
      total += wts.back();
    }
    for (auto& w : wts) w /= total;

    // Category-local taste: topic + per-user offset, normalized. Taste in
    // one category says nothing about taste in another.
    for (int cat : user_interest_cats[u]) {
      std::vector<float> taste(opt.content_dim);
      float tnorm = 0.0f;
      for (int d = 0; d < opt.content_dim; ++d) {
        taste[d] = topics[cat][d] +
                   opt.taste_noise * static_cast<float>(rng.Normal());
        tnorm += taste[d] * taste[d];
      }
      tnorm = std::sqrt(tnorm) + 1e-8f;
      for (auto& x : taste) x /= tnorm;
      user_taste[u][cat] = std::move(taste);
    }

    // User content: interest-weighted mixture of the taste directions.
    std::vector<float> mix(opt.content_dim, 0.0f);
    for (size_t i = 0; i < user_interest_cats[u].size(); ++i) {
      const auto& t = user_taste[u][user_interest_cats[u][i]];
      for (int d = 0; d < opt.content_dim; ++d) {
        mix[d] += static_cast<float>(wts[i]) * t[d];
      }
    }
    NodeSpec spec;
    spec.type = NodeType::kUser;
    spec.content = NoisyTopic(mix, opt.content_noise, &rng);
    spec.slots = {u, static_cast<int64_t>(rng.Uniform(
                         TaobaoSlotSchema::kGenderVocab)),
                  static_cast<int64_t>(
                      rng.Uniform(TaobaoSlotSchema::kMembershipVocab))};
    nodes.push_back(std::move(spec));
    ds.category.push_back(-1);
  }

  // Queries: one category each.
  const NodeId query_base = opt.num_users;
  for (int q = 0; q < opt.num_queries; ++q) {
    const int cat = static_cast<int>(rng.Uniform(opt.num_categories));
    NodeSpec spec;
    spec.type = NodeType::kQuery;
    spec.content = NoisyTopic(topics[cat], opt.content_noise, &rng);
    spec.slots = {cat,
                  static_cast<int64_t>(rng.Uniform(TaobaoSlotSchema::kTermVocab))};
    spec.tokens = DrawTokens(cat, opt.tokens_per_node, opt, &rng);
    nodes.push_back(std::move(spec));
    ds.category.push_back(cat);
  }

  // Items: one category each.
  const NodeId item_base = opt.num_users + opt.num_queries;
  for (int i = 0; i < opt.num_items; ++i) {
    const int cat = static_cast<int>(rng.Uniform(opt.num_categories));
    NodeSpec spec;
    spec.type = NodeType::kItem;
    spec.content = NoisyTopic(topics[cat], opt.content_noise, &rng);
    spec.slots = {i, cat,
                  static_cast<int64_t>(rng.Uniform(TaobaoSlotSchema::kTermVocab)),
                  static_cast<int64_t>(rng.Uniform(TaobaoSlotSchema::kBrandVocab)),
                  static_cast<int64_t>(rng.Uniform(TaobaoSlotSchema::kShopVocab))};
    spec.tokens = DrawTokens(cat, opt.tokens_per_node, opt, &rng);
    nodes.push_back(std::move(spec));
    ds.category.push_back(cat);
    ds.all_items.push_back(item_base + i);
  }

  // Group queries and items by category for session generation.
  std::vector<std::vector<NodeId>> queries_by_cat(opt.num_categories);
  std::vector<std::vector<NodeId>> items_by_cat(opt.num_categories);
  for (int q = 0; q < opt.num_queries; ++q) {
    queries_by_cat[ds.category[query_base + q]].push_back(query_base + q);
  }
  for (int i = 0; i < opt.num_items; ++i) {
    items_by_cat[ds.category[item_base + i]].push_back(item_base + i);
  }
  // Guarantee every category has at least one query and item by reassigning
  // from the largest bucket if a bucket is empty (rare at small scale).
  for (int c = 0; c < opt.num_categories; ++c) {
    if (queries_by_cat[c].empty()) {
      queries_by_cat[c].push_back(
          query_base + static_cast<NodeId>(rng.Uniform(opt.num_queries)));
    }
    if (items_by_cat[c].empty()) {
      items_by_cat[c].push_back(
          item_base + static_cast<NodeId>(rng.Uniform(opt.num_items)));
    }
  }

  // Sessions.
  graph::SessionLog log;
  log.reserve(opt.num_sessions);
  for (int s = 0; s < opt.num_sessions; ++s) {
    graph::SessionRecord rec;
    const int u = static_cast<int>(rng.Uniform(opt.num_users));
    rec.user = u;
    // Focal category: user's mixture, with drift (dynamic focal interests).
    int cat;
    if (rng.Bernoulli(opt.p_interest_drift)) {
      cat = static_cast<int>(rng.Uniform(opt.num_categories));
    } else {
      cat = user_interest_cats[u][rng.Categorical(user_interest_wts[u])];
    }
    rec.query = queries_by_cat[cat][rng.Uniform(queries_by_cat[cat].size())];
    const int n_clicks = static_cast<int>(
        rng.UniformInt(opt.min_clicks_per_session, opt.max_clicks_per_session));
    for (int c = 0; c < n_clicks; ++c) {
      NodeId item;
      if (rng.Bernoulli(opt.p_click_in_category)) {
        // Tournament selection by the user's category-local taste: users
        // click items matching their taste *in this category*; clicks in
        // other categories reveal nothing about this one.
        const auto& bucket = items_by_cat[cat];
        item = bucket[rng.Uniform(bucket.size())];
        auto taste_it = user_taste[u].find(cat);
        if (taste_it != user_taste[u].end()) {
          float best = -1e30f;
          for (int t = 0; t < opt.taste_tournament; ++t) {
            const NodeId cand = bucket[rng.Uniform(bucket.size())];
            float affinity = 0.0f;
            const auto& uc = taste_it->second;
            const auto& ic = nodes[cand].content;
            for (int d = 0; d < opt.content_dim; ++d) {
              affinity += uc[d] * ic[d];
            }
            if (affinity > best) {
              best = affinity;
              item = cand;
            }
          }
        }
      } else {
        item = ds.all_items[rng.Uniform(ds.all_items.size())];
      }
      rec.clicks.push_back(item);
    }
    rec.timestamp =
        static_cast<int64_t>(rng.Uniform(opt.time_horizon_seconds));
    log.push_back(std::move(rec));
  }
  // Chronological order so train/test split is a time split.
  std::sort(log.begin(), log.end(),
            [](const auto& a, const auto& b) { return a.timestamp < b.timestamp; });

  // Train/test examples: positives from clicks, sampled negatives.
  const size_t split =
      static_cast<size_t>(static_cast<double>(log.size()) * opt.train_fraction);
  auto emit = [&](const graph::SessionRecord& rec, std::vector<Example>* out) {
    const int query_cat = ds.category[rec.query];
    for (NodeId item : rec.clicks) {
      out->push_back({rec.user, rec.query, item, 1.0f});
      for (int n = 0; n < opt.negatives_per_positive; ++n) {
        NodeId neg;
        if (rng.Bernoulli(opt.hard_negative_fraction)) {
          // Hard negative: un-clicked item of the query's own category.
          const auto& bucket = items_by_cat[query_cat];
          neg = bucket[rng.Uniform(bucket.size())];
        } else {
          neg = ds.all_items[rng.Uniform(ds.all_items.size())];
        }
        if (neg == item) continue;
        out->push_back({rec.user, rec.query, neg, 0.0f});
      }
    }
  };
  for (size_t i = 0; i < log.size(); ++i) {
    emit(log[i], i < split ? &ds.train : &ds.test);
  }

  // Graph from the *training* window only (no test leakage).
  graph::SessionLog train_log(log.begin(), log.begin() + split);
  auto built = graph::BuildGraphFromLogs(nodes, train_log, opt.build);
  ZCHECK(built.ok()) << built.status().ToString();
  ds.graph = std::move(built).value();
  ds.log = std::move(log);
  return ds;
}

}  // namespace data
}  // namespace zoomer
