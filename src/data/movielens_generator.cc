#include "data/movielens_generator.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "common/logging.h"

namespace zoomer {
namespace data {

namespace {
using graph::NodeId;
using graph::NodeSpec;
using graph::NodeType;

std::vector<float> Mix(const std::vector<std::vector<float>>& topics,
                       const std::vector<int>& cats,
                       const std::vector<double>& wts, float noise, int dim,
                       Rng* rng) {
  std::vector<float> v(dim, 0.0f);
  for (size_t i = 0; i < cats.size(); ++i) {
    for (int d = 0; d < dim; ++d) {
      v[d] += static_cast<float>(wts[i]) * topics[cats[i]][d];
    }
  }
  float norm = 0.0f;
  for (auto& x : v) {
    x += noise * static_cast<float>(rng->Normal());
    norm += x * x;
  }
  norm = std::sqrt(norm) + 1e-8f;
  for (auto& x : v) x /= norm;
  return v;
}
}  // namespace

RetrievalDataset GenerateMovieLensDataset(
    const MovieLensGeneratorOptions& opt) {
  Rng rng(opt.seed);

  std::vector<std::vector<float>> topics(opt.num_genres);
  for (auto& t : topics) {
    t.resize(opt.content_dim);
    float norm = 0.0f;
    for (auto& x : t) {
      x = static_cast<float>(rng.Normal());
      norm += x * x;
    }
    norm = std::sqrt(norm) + 1e-8f;
    for (auto& x : t) x /= norm;
  }

  RetrievalDataset ds;
  ds.num_categories = opt.num_genres;
  std::vector<NodeSpec> nodes;

  // Users with 1-3 preferred genres.
  std::vector<std::vector<int>> user_genres(opt.num_users);
  std::vector<std::vector<double>> user_wts(opt.num_users);
  for (int u = 0; u < opt.num_users; ++u) {
    const int k = 1 + static_cast<int>(rng.Uniform(3));
    std::unordered_set<int> gs;
    while (static_cast<int>(gs.size()) < k) {
      gs.insert(static_cast<int>(rng.Uniform(opt.num_genres)));
    }
    user_genres[u] = {gs.begin(), gs.end()};
    double total = 0.0;
    for (size_t i = 0; i < gs.size(); ++i) {
      user_wts[u].push_back(0.3 + rng.UniformDouble());
      total += user_wts[u].back();
    }
    for (auto& w : user_wts[u]) w /= total;
    NodeSpec spec;
    spec.type = NodeType::kUser;
    spec.content = Mix(topics, user_genres[u], user_wts[u], opt.content_noise,
                       opt.content_dim, &rng);
    spec.slots = {u, static_cast<int64_t>(rng.Uniform(3)),
                  static_cast<int64_t>(rng.Uniform(5))};
    nodes.push_back(std::move(spec));
    ds.category.push_back(-1);
  }

  // Tags: each belongs to one genre (acts as the query node type).
  const NodeId tag_base = opt.num_users;
  std::vector<std::vector<NodeId>> tags_by_genre(opt.num_genres);
  for (int t = 0; t < opt.num_tags; ++t) {
    const int g = t % opt.num_genres;  // even coverage
    NodeSpec spec;
    spec.type = NodeType::kQuery;
    spec.content = Mix(topics, {g}, {1.0}, opt.content_noise, opt.content_dim,
                       &rng);
    spec.slots = {g, static_cast<int64_t>(rng.Uniform(512))};
    spec.tokens = {static_cast<uint64_t>(g) * 1000ull + rng.Uniform(30),
                   static_cast<uint64_t>(g) * 1000ull + rng.Uniform(30),
                   0xFFFF0000ull + rng.Uniform(100)};
    nodes.push_back(std::move(spec));
    ds.category.push_back(g);
    tags_by_genre[g].push_back(tag_base + t);
  }

  // Movies: genre mixture dominated by one genre.
  const NodeId movie_base = opt.num_users + opt.num_tags;
  std::vector<std::vector<NodeId>> movies_by_genre(opt.num_genres);
  for (int m = 0; m < opt.num_movies; ++m) {
    const int g = static_cast<int>(rng.Uniform(opt.num_genres));
    std::vector<int> gs = {g};
    std::vector<double> ws = {0.8};
    if (rng.Bernoulli(0.4)) {
      gs.push_back(static_cast<int>(rng.Uniform(opt.num_genres)));
      ws.push_back(0.2);
    }
    NodeSpec spec;
    spec.type = NodeType::kItem;
    spec.content = Mix(topics, gs, ws, opt.content_noise, opt.content_dim, &rng);
    spec.slots = {m, g, static_cast<int64_t>(rng.Uniform(512)),
                  static_cast<int64_t>(rng.Uniform(128)),
                  static_cast<int64_t>(rng.Uniform(256))};
    spec.tokens = {static_cast<uint64_t>(g) * 1000ull + rng.Uniform(30),
                   static_cast<uint64_t>(g) * 1000ull + rng.Uniform(30),
                   0xFFFF0000ull + rng.Uniform(100)};
    nodes.push_back(std::move(spec));
    ds.category.push_back(g);
    ds.all_items.push_back(movie_base + m);
    movies_by_genre[g].push_back(movie_base + m);
  }
  for (int g = 0; g < opt.num_genres; ++g) {
    if (movies_by_genre[g].empty()) {
      movies_by_genre[g].push_back(
          movie_base + static_cast<NodeId>(rng.Uniform(opt.num_movies)));
    }
  }

  // Ratings as sessions: (user, tag-of-genre, [movie]) per rating event.
  graph::SessionLog log;
  for (int u = 0; u < opt.num_users; ++u) {
    for (int r = 0; r < opt.ratings_per_user; ++r) {
      int g;
      if (rng.Bernoulli(opt.p_rate_in_genre)) {
        g = user_genres[u][rng.Categorical(user_wts[u])];
      } else {
        g = static_cast<int>(rng.Uniform(opt.num_genres));
      }
      graph::SessionRecord rec;
      rec.user = u;
      rec.query = tags_by_genre[g][rng.Uniform(tags_by_genre[g].size())];
      rec.clicks = {movies_by_genre[g][rng.Uniform(movies_by_genre[g].size())]};
      rec.timestamp = static_cast<int64_t>(rng.Uniform(86400));
      log.push_back(std::move(rec));
    }
  }
  rng.Shuffle(&log);

  const size_t split =
      static_cast<size_t>(static_cast<double>(log.size()) * opt.train_fraction);
  for (size_t i = 0; i < log.size(); ++i) {
    auto* out = i < split ? &ds.train : &ds.test;
    const auto& rec = log[i];
    for (NodeId m : rec.clicks) {
      out->push_back({rec.user, rec.query, m, 1.0f});
      for (int n = 0; n < opt.negatives_per_positive; ++n) {
        NodeId neg = ds.all_items[rng.Uniform(ds.all_items.size())];
        if (neg != m) out->push_back({rec.user, rec.query, neg, 0.0f});
      }
    }
  }

  // Movie->top-5-tags edges are wired through the similarity mechanism and
  // interaction edges from the training ratings.
  graph::SessionLog train_log(log.begin(), log.begin() + split);
  graph::GraphBuildOptions build = opt.build;
  auto built = graph::BuildGraphFromLogs(nodes, train_log, build);
  ZCHECK(built.ok()) << built.status().ToString();
  ds.graph = std::move(built).value();
  ds.log = std::move(log);
  return ds;
}

}  // namespace data
}  // namespace zoomer
