// Shared dataset containers for offline experiments: a built retrieval graph
// plus labeled (user, query, item, click) examples and the candidate pool
// used for HitRate@K evaluation.
#ifndef ZOOMER_DATA_DATASET_H_
#define ZOOMER_DATA_DATASET_H_

#include <cstdint>
#include <vector>

#include "graph/hetero_graph.h"
#include "graph/session_log.h"

namespace zoomer {
namespace data {

/// One CTR example: did `user` click `item` under `query`?
struct Example {
  graph::NodeId user = -1;
  graph::NodeId query = -1;
  graph::NodeId item = -1;
  float label = 0.0f;
};

/// A complete offline experiment input.
struct RetrievalDataset {
  graph::HeteroGraph graph;
  graph::SessionLog log;  // raw sessions the graph was built from
  std::vector<Example> train;
  std::vector<Example> test;
  std::vector<graph::NodeId> all_items;  // candidate pool for retrieval metrics
  int num_categories = 0;
  /// Primary latent category per node (-1 for users, who hold mixtures).
  std::vector<int> category;
};

}  // namespace data
}  // namespace zoomer

#endif  // ZOOMER_DATA_DATASET_H_
