// Synthetic MovieLens-like generator (paper Sec. VII-A): a tri-partite
// user / tag / movie heterogeneous graph. Tags play the role of queries
// (genre descriptors); user-movie edges come from ratings; each movie links
// to its top-5 most relevant tags. The model input is a (user, tag, movie)
// triple with a binary "interacted under this tag" label.
//
// Substitution note: we cannot ship MovieLens-25M, so the generator plants
// the same structure — G latent genres, tags per genre, movies with genre
// mixtures, users with genre preferences — and draws ratings from the
// user-movie affinity implied by those latent factors.
#ifndef ZOOMER_DATA_MOVIELENS_GENERATOR_H_
#define ZOOMER_DATA_MOVIELENS_GENERATOR_H_

#include "data/dataset.h"
#include "graph/graph_builder.h"

namespace zoomer {
namespace data {

struct MovieLensGeneratorOptions {
  int num_users = 800;
  int num_tags = 60;
  int num_movies = 1500;
  int num_genres = 12;
  int content_dim = 24;
  int ratings_per_user = 20;
  /// Probability a rating lands in a preferred genre.
  double p_rate_in_genre = 0.8;
  int tags_per_movie = 5;  // paper: top-5 tag neighbors per movie
  float content_noise = 0.3f;
  /// 80/20 train-test split (paper Sec. VII-A).
  double train_fraction = 0.8;
  int negatives_per_positive = 2;
  graph::GraphBuildOptions build;
  uint64_t seed = 7;
};

/// Generates the tri-partite dataset; tags are mapped onto NodeType::kQuery
/// and movies onto NodeType::kItem so all models run unchanged.
RetrievalDataset GenerateMovieLensDataset(const MovieLensGeneratorOptions& options);

}  // namespace data
}  // namespace zoomer

#endif  // ZOOMER_DATA_MOVIELENS_GENERATOR_H_
