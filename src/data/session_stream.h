// Live-session synthesis for the streaming ingestion path: produces fresh
// SessionRecords over the node population of an already-built
// RetrievalDataset, reusing its latent-category structure (queries and items
// carry a category; clicks stay mostly in the query's category with uniform
// noise). These sessions postdate the offline graph build — exactly the
// traffic the paper's deployment ingests continuously — so none of their
// edges exist in the base CSR.
//
// Cold-start synthesis (SynthesizeColdStartArrivals) goes one step further:
// it mints items the offline build has never seen — a NodeEvent carrying a
// fresh content vector drawn near an existing category's items, plus the
// first click/session edges that introduce it (placeholder -1 endpoints
// refer to the about-to-be-assigned id). Feed each arrival to
// IngestPipeline::OfferNewNode to grow the id-space online.
#ifndef ZOOMER_DATA_SESSION_STREAM_H_
#define ZOOMER_DATA_SESSION_STREAM_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "streaming/graph_delta_log.h"

namespace zoomer {
namespace data {

struct LiveSessionOptions {
  int num_sessions = 1000;
  int min_clicks = 1;
  int max_clicks = 4;
  /// Probability a click stays in the query's category (matches the offline
  /// generator's focal-category mechanism).
  double p_click_in_category = 0.85;
  /// First session timestamp; defaults just past the offline horizon so
  /// live sessions sort after the build window.
  int64_t start_timestamp = 86400;
  /// Seconds between consecutive sessions.
  int64_t inter_session_seconds = 1;
  uint64_t seed = 99;
};

/// Synthesizes `num_sessions` fresh sessions over `ds`'s users, queries and
/// items. Requires ds.category to cover all nodes (true for both built-in
/// generators).
graph::SessionLog SynthesizeLiveSessions(const RetrievalDataset& ds,
                                         const LiveSessionOptions& options);

struct ColdStartOptions {
  int num_new_items = 50;
  /// Distinct (user, query) pairs whose session introduces each new item.
  int introducing_sessions = 2;
  /// Gaussian noise scale applied to the template item's content vector.
  double content_noise = 0.05;
  /// First arrival timestamp; defaults past the live-session horizon.
  int64_t start_timestamp = 2 * 86400;
  int64_t inter_arrival_seconds = 1;
  uint64_t seed = 131;
};

/// One brand-new item plus the traffic that introduces it: the NodeEvent's
/// id is unassigned (-1), and edge endpoints equal to -1 are placeholders
/// for it (resolved when GraphDeltaLog::AppendWithNodes allocates the id —
/// pass both parts to IngestPipeline::OfferNewNode as one batch).
struct ColdStartArrival {
  streaming::NodeEvent item;
  std::vector<streaming::EdgeEvent> edges;
};

/// Synthesizes items the offline build has never seen. Each new item copies
/// the category structure of an existing "template" item (noisy content,
/// same category slot), and arrives with click edges from same-category
/// queries (plus their users' click edges) and a session edge to a
/// same-category catalog item.
std::vector<ColdStartArrival> SynthesizeColdStartArrivals(
    const RetrievalDataset& ds, const ColdStartOptions& options);

}  // namespace data
}  // namespace zoomer

#endif  // ZOOMER_DATA_SESSION_STREAM_H_
