// Live-session synthesis for the streaming ingestion path: produces fresh
// SessionRecords over the node population of an already-built
// RetrievalDataset, reusing its latent-category structure (queries and items
// carry a category; clicks stay mostly in the query's category with uniform
// noise). These sessions postdate the offline graph build — exactly the
// traffic the paper's deployment ingests continuously — so none of their
// edges exist in the base CSR.
#ifndef ZOOMER_DATA_SESSION_STREAM_H_
#define ZOOMER_DATA_SESSION_STREAM_H_

#include <cstdint>

#include "data/dataset.h"

namespace zoomer {
namespace data {

struct LiveSessionOptions {
  int num_sessions = 1000;
  int min_clicks = 1;
  int max_clicks = 4;
  /// Probability a click stays in the query's category (matches the offline
  /// generator's focal-category mechanism).
  double p_click_in_category = 0.85;
  /// First session timestamp; defaults just past the offline horizon so
  /// live sessions sort after the build window.
  int64_t start_timestamp = 86400;
  /// Seconds between consecutive sessions.
  int64_t inter_session_seconds = 1;
  uint64_t seed = 99;
};

/// Synthesizes `num_sessions` fresh sessions over `ds`'s users, queries and
/// items. Requires ds.category to cover all nodes (true for both built-in
/// generators).
graph::SessionLog SynthesizeLiveSessions(const RetrievalDataset& ds,
                                         const LiveSessionOptions& options);

}  // namespace data
}  // namespace zoomer

#endif  // ZOOMER_DATA_SESSION_STREAM_H_
