// Synthetic Taobao-like workload generator.
//
// Substitution note (see DESIGN.md): the paper's industry graphs come from
// proprietary Taobao behavior logs. We reproduce their *statistical
// mechanisms* with a latent-category session model:
//  - items and queries belong to one of C latent categories whose content
//    vectors cluster around a category topic;
//  - users hold long-term mixtures over several categories;
//  - each session picks a focal category from the user's mixture (with
//    occasional drift to a random category, reproducing the "dynamic focal
//    interests" of Fig. 4(b));
//  - clicks land mostly in the focal category plus uniform noise clicks,
//    so a user's accumulated neighborhood mixes many categories while only a
//    small region is relevant to any one query (Fig. 4(c)) — exactly the
//    information-overload structure that focal-biased sampling exploits.
#ifndef ZOOMER_DATA_TAOBAO_GENERATOR_H_
#define ZOOMER_DATA_TAOBAO_GENERATOR_H_

#include <cstdint>

#include "common/random.h"
#include "data/dataset.h"
#include "graph/graph_builder.h"

namespace zoomer {
namespace data {

struct TaobaoGeneratorOptions {
  int num_users = 1000;
  int num_queries = 500;
  int num_items = 2000;
  int num_sessions = 8000;
  int num_categories = 16;
  int content_dim = 32;

  int min_clicks_per_session = 1;
  int max_clicks_per_session = 4;
  /// Probability a click stays in the session's focal category.
  double p_click_in_category = 0.85;
  /// Probability a session drifts to a category outside the user's mixture.
  double p_interest_drift = 0.15;
  /// Number of long-term interest categories per user (1..this).
  int max_user_interests = 4;
  /// Content noise around the category topic vector.
  float content_noise = 0.35f;
  /// Tokens drawn per node from its category pool (for minHash edges).
  int tokens_per_node = 12;
  int category_token_pool = 40;
  int shared_token_pool = 200;
  /// Session timestamps are uniform over this horizon (seconds).
  int64_t time_horizon_seconds = 86400;
  /// Fraction of sessions (by timestamp order) used for training examples.
  double train_fraction = 0.9;
  /// Negatives sampled per positive click example.
  int negatives_per_positive = 3;
  /// Fraction of negatives drawn from the *same category* as the query
  /// (hard negatives): with these, category matching alone cannot rank, so
  /// models must capture within-category user taste.
  double hard_negative_fraction = 0.0;
  /// Within-category clicks pick the best of this many candidates by the
  /// user's *category-local* taste direction (tournament selection). Taste
  /// is deliberately not transferable across categories: history from other
  /// categories is pure noise for the current request, which is precisely
  /// the information-overload structure ROI sampling exploits (Sec. IV).
  int taste_tournament = 3;
  /// Magnitude of the per-(user, category) taste offset from the category
  /// topic vector.
  float taste_noise = 0.6f;

  graph::GraphBuildOptions build;
  uint64_t seed = 42;
};

/// Slot layouts (paper Table I). Slot ids are offset into per-type vocab.
struct TaobaoSlotSchema {
  static constexpr int kUserSlots = 3;   // ID, gender, membership level
  static constexpr int kQuerySlots = 2;  // category, title terms
  static constexpr int kItemSlots = 5;   // ID, category, terms, brand, shop
  static constexpr int kGenderVocab = 3;
  static constexpr int kMembershipVocab = 5;
  static constexpr int kTermVocab = 512;
  static constexpr int kBrandVocab = 128;
  static constexpr int kShopVocab = 256;
};

/// Generates nodes, session logs, the built graph, and train/test examples.
RetrievalDataset GenerateTaobaoDataset(const TaobaoGeneratorOptions& options);

}  // namespace data
}  // namespace zoomer

#endif  // ZOOMER_DATA_TAOBAO_GENERATOR_H_
