// Online retrieval server (paper Sec. VI-VII.E). The serving path per
// request (user, query):
//   1. look up the user/query embeddings (trained, exported as float rows);
//   2. fetch cached top-k neighbors of both nodes (k = 30, async refresh);
//   3. lightweight edge-level-attention-only aggregation in plain float math
//      (the paper keeps only the edge-level attention online to cut cost);
//   4. ANN search over the item inverted index for the top-N items.
//
// The load generator offers requests at a configurable QPS (open loop) from
// several client threads and records per-request latency, which reproduces
// the response-time-vs-QPS curve of Fig. 9.
#ifndef ZOOMER_SERVING_ONLINE_SERVER_H_
#define ZOOMER_SERVING_ONLINE_SERVER_H_

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/timer.h"
#include "common/threadpool.h"
#include "graph/hetero_graph.h"
#include "serving/ann_index.h"
#include "serving/neighbor_cache.h"

namespace zoomer {

namespace engine {
class DistributedGraphEngine;
}  // namespace engine

namespace maintenance {
class MaintenanceScheduler;
}  // namespace maintenance

namespace serving {

struct OnlineServerOptions {
  int embedding_dim = 16;
  int top_n = 50;           // items retrieved per request
  int worker_threads = 4;
  NeighborCacheOptions cache;
  AnnIndexOptions ann;
  /// Disable edge attention (mean aggregation) — ablation of the serving
  /// reduction described in Sec. VII-E.
  bool use_edge_attention = true;
  /// Bypass the neighbor cache (sample on the request path) — quantifies
  /// the cache benefit.
  bool use_neighbor_cache = true;
  uint64_t seed = 23;
  /// Metrics registry for serving instruments ("serving." names). Null
  /// means the process-global registry; propagated to cache/ann options
  /// that did not set their own.
  obs::MetricsRegistry* registry = nullptr;
};

struct ServingRequest {
  graph::NodeId user = -1;
  graph::NodeId query = -1;
};

/// Read-your-writes session state: tracks the delta-log epoch of the
/// session's own last write. Pass it to Handle(req, token) so neighbor
/// reads route only to engine replicas whose apply watermark covers the
/// session's writes — a lagging replica can never serve this session a
/// view that misses its own just-ingested edge. Feed it from the ingest
/// pipeline's update listener (or OfferNewNode's epoch).
struct SessionToken {
  uint64_t last_write_epoch = 0;
  /// Records a write the session observed (monotone).
  void Observe(uint64_t epoch) {
    if (epoch > last_write_epoch) last_write_epoch = epoch;
  }
};

struct ServingResponse {
  std::vector<AnnResult> items;
  double latency_ms = 0.0;
};

class OnlineServer {
 public:
  /// node_embeddings: one float row per graph node (trained export);
  /// item_ids/item_embeddings build the ANN index.
  OnlineServer(const graph::HeteroGraph* g, OnlineServerOptions options,
               std::vector<float> node_embeddings,
               const std::vector<graph::NodeId>& item_ids,
               const std::vector<float>& item_embeddings);

  /// Synchronous request handling (measures its own latency).
  ServingResponse Handle(const ServingRequest& req);

  /// Session-pinned handling: when an engine is attached (AttachEngine) and
  /// the token has observed a write, ego-node neighbor reads go through the
  /// engine with SampleRequest::min_epoch = the token's last write epoch —
  /// the freshness-aware router then only uses replicas whose watermark
  /// covers the session's writes (cached entries may predate them).
  ServingResponse Handle(const ServingRequest& req,
                         const SessionToken& token);

  /// Routes session-pinned neighbor reads (Handle with a SessionToken)
  /// through the replica-group engine's freshness-aware router. The engine
  /// must outlive this server.
  void AttachEngine(engine::DistributedGraphEngine* engine);

  /// Pre-fills the neighbor cache for the given nodes.
  void WarmCache(const std::vector<graph::NodeId>& nodes);

  /// Routes neighbor reads through the streaming delta overlay so responses
  /// reflect freshly ingested edges. The view must outlive the server.
  void AttachDynamicGraph(const streaming::DynamicHeteroGraph* dynamic);

  /// Registers the embedding row of a node born after construction (id >=
  /// the offline graph's num_nodes(), e.g. a streamed cold-start item) so
  /// aggregation can score it as a cached neighbor. When `is_item`, the
  /// embedding is also inserted into the ANN index incrementally — a
  /// subsequent Handle() can then retrieve the brand-new item without an
  /// offline rebuild. Thread-safe against concurrent Handle().
  Status IngestNode(graph::NodeId id, std::vector<float> embedding,
                    bool is_item);

  /// Ingest-pipeline update hook: invalidates the touched nodes' cache
  /// entries (each schedules an asynchronous re-fill). Register as
  ///   pipeline.AddUpdateListener([&](uint64_t epoch, const auto& nodes) {
  ///     server.OnGraphUpdate(epoch, nodes); });
  void OnGraphUpdate(const std::vector<graph::NodeId>& nodes);

  /// Epoch-carrying overload matching IngestPipeline::UpdateListener; the
  /// epoch is also remembered as last_update_epoch() so callers can stamp
  /// session tokens without threading the listener themselves.
  void OnGraphUpdate(uint64_t epoch, const std::vector<graph::NodeId>& nodes);

  /// Delta-log epoch of the newest update observed via OnGraphUpdate.
  uint64_t last_update_epoch() const {
    return last_update_epoch_.load(std::memory_order_acquire);
  }

  /// Subscribes this server to the background maintenance scheduler: any
  /// policy pass that changed node neighborhoods (e.g. a TTL expiry sweep
  /// dropping aged-out click edges) invalidates those nodes' neighbor-cache
  /// entries so the asynchronous re-fill serves the windowed view.
  /// Compactions need no invalidation — the fold preserves every merged
  /// neighbor distribution. Must be called before scheduler->Start(); the
  /// scheduler must not outlive this server.
  void AttachMaintenance(maintenance::MaintenanceScheduler* scheduler);

  /// Scrape endpoints: one flat JSON object (DumpMetrics) or Prometheus
  /// text exposition (DumpMetricsPrometheus) over the server's metrics
  /// registry — per-shard freshness lag, fold-pause histograms, cache hit
  /// ratio, serving latency percentiles, and everything else registered
  /// with it. Derived gauges (cache hit ratio, entry count) refresh on
  /// every call.
  std::string DumpMetrics() const;
  std::string DumpMetricsPrometheus() const;

  const NeighborCache& cache() const { return *cache_; }
  /// Mutable access for tests and warm-up tooling (Get records hit/miss
  /// stats and schedules fills, so it is not const).
  NeighborCache& cache() { return *cache_; }
  const AnnIndex& index() const { return index_; }

 private:
  /// Edge-attention-only user-query embedding in plain float math. A
  /// non-zero `min_epoch` (with an attached engine) fetches ego neighbors
  /// through the engine's freshness-aware router instead of the cache.
  void EmbedRequest(const ServingRequest& req, uint64_t min_epoch,
                    std::vector<float>* out);

  /// Embedding row of `id`, spanning the offline export and streamed
  /// overlay nodes; nullptr for ids with no registered embedding. The
  /// pointer stays valid for the server's lifetime (rows are never erased
  /// and map rehashes do not move a vector's heap buffer).
  const float* NodeEmbedding(graph::NodeId id) const;

  /// Refreshes scrape-time derived gauges (hit ratio, cache entries).
  void RefreshDerivedGauges() const;

  const graph::HeteroGraph* graph_;
  OnlineServerOptions options_;
  engine::DistributedGraphEngine* engine_ = nullptr;  // AttachEngine
  std::atomic<uint64_t> last_update_epoch_{0};
  obs::MetricsRegistry* registry_;          // resolved (never null)
  obs::Counter* requests_;                  // serving.requests
  obs::Counter* ryw_requests_;              // serving.read_your_writes_requests
  obs::Counter* node_ingests_;              // serving.node_ingest
  obs::Histogram* request_latency_us_;      // serving.request_latency_us
  obs::Histogram* embed_latency_us_;        // serving.embed_latency_us
  obs::Gauge* cache_hit_ratio_;             // serving.neighbor_cache.hit_ratio
  obs::Gauge* cache_entries_;               // serving.neighbor_cache.entries
  std::vector<float> node_emb_;  // num_nodes x dim (offline export)
  /// Streamed nodes' embedding rows, keyed by overlay id.
  mutable std::shared_mutex overlay_emb_mu_;
  std::unordered_map<graph::NodeId, std::vector<float>> overlay_emb_;
  std::unique_ptr<NeighborCache> cache_;
  AnnIndex index_;
};

/// Open-loop load generator: offers `qps` requests per second for
/// `duration_seconds` from `client_threads` threads against the server and
/// collects latency statistics.
struct LoadResult {
  double offered_qps = 0.0;
  double achieved_qps = 0.0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  int64_t requests = 0;
};

/// server_threads: size of the server-side worker pool requests queue into
/// (a real deployment has a fixed handler pool; queueing delay above
/// capacity is what bends the Fig. 9 curve).
LoadResult RunLoad(OnlineServer* server,
                   const std::vector<ServingRequest>& request_pool,
                   double qps, double duration_seconds, int client_threads,
                   uint64_t seed, int server_threads = 4);

}  // namespace serving
}  // namespace zoomer

#endif  // ZOOMER_SERVING_ONLINE_SERVER_H_
