#include "serving/online_server.h"

#include <chrono>
#include <cmath>
#include <mutex>
#include <thread>

#include "common/logging.h"
#include "engine/distributed_graph_engine.h"
#include "maintenance/maintenance_scheduler.h"
#include "obs/exporter.h"
#include "obs/metrics.h"

namespace zoomer {
namespace serving {

using graph::NodeId;

namespace {
/// A server-level registry override flows down into the cache and ANN
/// options unless they picked their own.
OnlineServerOptions PropagateRegistry(OnlineServerOptions options) {
  if (options.registry != nullptr) {
    if (options.cache.registry == nullptr) {
      options.cache.registry = options.registry;
    }
    if (options.ann.registry == nullptr) {
      options.ann.registry = options.registry;
    }
  }
  return options;
}
}  // namespace

OnlineServer::OnlineServer(const graph::HeteroGraph* g,
                           OnlineServerOptions options,
                           std::vector<float> node_embeddings,
                           const std::vector<NodeId>& item_ids,
                           const std::vector<float>& item_embeddings)
    : graph_(g),
      options_(PropagateRegistry(std::move(options))),
      registry_(options_.registry != nullptr ? options_.registry
                                             : obs::MetricsRegistry::Global()),
      node_emb_(std::move(node_embeddings)),
      cache_(std::make_unique<NeighborCache>(g, options_.cache)),
      index_(options_.ann) {
  requests_ = registry_->GetCounter("serving.requests");
  ryw_requests_ =
      registry_->GetCounter("serving.read_your_writes_requests");
  node_ingests_ = registry_->GetCounter("serving.node_ingest");
  request_latency_us_ = registry_->GetHistogram("serving.request_latency_us");
  embed_latency_us_ = registry_->GetHistogram("serving.embed_latency_us");
  cache_hit_ratio_ = registry_->GetGauge("serving.neighbor_cache.hit_ratio");
  cache_entries_ = registry_->GetGauge("serving.neighbor_cache.entries");
  ZCHECK_EQ(static_cast<int64_t>(node_emb_.size()),
            g->num_nodes() * options_.embedding_dim);
  Status st = index_.Build(item_embeddings,
                           static_cast<int64_t>(item_ids.size()),
                           options_.embedding_dim,
                           std::vector<int64_t>(item_ids.begin(),
                                                item_ids.end()));
  ZCHECK(st.ok()) << st.ToString();
}

void OnlineServer::WarmCache(const std::vector<NodeId>& nodes) {
  cache_->WarmAll(nodes);
}

void OnlineServer::AttachDynamicGraph(
    const streaming::DynamicHeteroGraph* dynamic) {
  cache_->AttachDynamicGraph(dynamic);
}

void OnlineServer::AttachEngine(engine::DistributedGraphEngine* engine) {
  engine_ = engine;
}

Status OnlineServer::IngestNode(NodeId id, std::vector<float> embedding,
                                bool is_item) {
  if (static_cast<int>(embedding.size()) != options_.embedding_dim) {
    return Status::InvalidArgument("embedding dim mismatch");
  }
  if (id < graph_->num_nodes()) {
    return Status::InvalidArgument(
        "id belongs to the offline export, not a streamed node");
  }
  // Duplicates are rejected, not overwritten: concurrent EmbedRequest
  // threads hold raw pointers into registered rows outside the lock
  // (NodeEmbedding's never-erased contract), and a second ANN insert would
  // leave a stale retrievable row under the same id. Claiming the row
  // first also dedupes two racing registrations of one id.
  const float* row = nullptr;
  {
    std::unique_lock<std::shared_mutex> lock(overlay_emb_mu_);
    auto [it, inserted] = overlay_emb_.try_emplace(id, std::move(embedding));
    if (!inserted) {
      return Status::InvalidArgument("node embedding already registered");
    }
    row = it->second.data();  // heap buffer: stable across rehashes
  }
  node_ingests_->Add(1);
  if (is_item) return index_.Insert(row, id);
  return Status::OK();
}

const float* OnlineServer::NodeEmbedding(NodeId id) const {
  if (id >= 0 && id < graph_->num_nodes()) {
    return node_emb_.data() + id * options_.embedding_dim;
  }
  std::shared_lock<std::shared_mutex> lock(overlay_emb_mu_);
  auto it = overlay_emb_.find(id);
  return it == overlay_emb_.end() ? nullptr : it->second.data();
}

void OnlineServer::OnGraphUpdate(const std::vector<NodeId>& nodes) {
  // Invalidate is a no-op for nodes never cached (e.g. items, which the
  // serving path does not cache), so touched-node lists pass through as-is.
  for (NodeId n : nodes) cache_->Invalidate(n);
}

void OnlineServer::OnGraphUpdate(uint64_t epoch,
                                 const std::vector<NodeId>& nodes) {
  // Monotone CAS: listeners fire from several shard consumer threads and
  // epochs may arrive out of order across shards.
  uint64_t seen = last_update_epoch_.load(std::memory_order_relaxed);
  while (epoch > seen && !last_update_epoch_.compare_exchange_weak(
                             seen, epoch, std::memory_order_acq_rel)) {
  }
  OnGraphUpdate(nodes);
}

void OnlineServer::AttachMaintenance(
    maintenance::MaintenanceScheduler* scheduler) {
  ZCHECK(scheduler != nullptr);
  scheduler->AddListener(
      [this](const std::string&, const maintenance::MaintenanceReport& report) {
        OnGraphUpdate(report.touched);
        // Incremental folds report the row ranges they rebuilt; refresh
        // only those segments' cached top-k (a TTL window may have aged
        // edges out at fold time) instead of flushing the whole cache.
        for (const auto& [begin, end] : report.folded_ranges) {
          cache_->InvalidateRange(begin, end);
        }
      });
}

void OnlineServer::EmbedRequest(const ServingRequest& req,
                                uint64_t min_epoch,
                                std::vector<float>* out) {
  const int d = options_.embedding_dim;
  out->assign(d, 0.0f);
  // Focal vector = user + query embeddings. Ego nodes born after the
  // export but never registered contribute zero instead of reading off the
  // end of the embedding table.
  std::vector<float> focal(d, 0.0f);
  for (NodeId ego : {req.user, req.query}) {
    if (const float* e = NodeEmbedding(ego)) {
      for (int j = 0; j < d; ++j) focal[j] += e[j];
    }
  }

  // Aggregate cached neighbors of both ego nodes with edge-level attention
  // (scores = dot(neighbor, focal); softmax; weighted sum). Neighbors
  // without a registered embedding (a streamed node whose IngestNode has
  // not landed) are excluded from the softmax rather than scored as
  // garbage.
  std::vector<const float*> nbr_emb;
  std::vector<NodeId> tmp;
  // Read-your-writes path: a cached entry may predate the session's write,
  // so fetch through the engine — its freshness-aware router only uses
  // replicas whose watermark covers min_epoch. Both egos go out as ONE
  // batched SampleMany (one routing decision and one snapshot pin per
  // shard-group) instead of two sequential round-trips.
  std::vector<StatusOr<engine::SampleResponse>> sresps;
  if (min_epoch > 0 && engine_ != nullptr) {
    engine::SampleRequest sreqs[2];
    const NodeId egos[2] = {req.user, req.query};
    for (int e = 0; e < 2; ++e) {
      sreqs[e].node = egos[e];
      sreqs[e].k = options_.cache.k;
      sreqs[e].rng_seed = options_.seed ^ static_cast<uint64_t>(egos[e]);
      sreqs[e].min_epoch = min_epoch;
    }
    sresps = engine_->SampleMany(sreqs);
  }
  int ego_index = -1;
  for (NodeId ego : {req.user, req.query}) {
    ++ego_index;
    bool hit = true;
    if (!sresps.empty()) {
      if (sresps[ego_index].ok()) {
        tmp = std::move(sresps[ego_index].value().neighbors);
      } else {
        hit = cache_->Get(ego, &tmp);  // degrade to the cached view
      }
    } else if (options_.use_neighbor_cache) {
      hit = cache_->Get(ego, &tmp);
    } else {
      // Cache bypass: compute top-k on the request path.
      cache_->Warm(ego);
      hit = cache_->Get(ego, &tmp);
    }
    if (!hit) continue;
    for (NodeId nb : tmp) {
      if (const float* e = NodeEmbedding(nb)) nbr_emb.push_back(e);
    }
  }

  if (nbr_emb.empty()) {
    for (int j = 0; j < d; ++j) (*out)[j] = focal[j];
    return;
  }
  std::vector<float> scores(nbr_emb.size());
  float max_score = -1e30f;
  for (size_t i = 0; i < nbr_emb.size(); ++i) {
    const float* en = nbr_emb[i];
    float dot = 0.0f;
    for (int j = 0; j < d; ++j) dot += en[j] * focal[j];
    scores[i] = options_.use_edge_attention
                    ? dot
                    : 0.0f;  // mean aggregation when attention disabled
    max_score = std::max(max_score, scores[i]);
  }
  float z = 0.0f;
  for (auto& s : scores) {
    s = std::exp(s - max_score);
    z += s;
  }
  for (size_t i = 0; i < nbr_emb.size(); ++i) {
    const float w = scores[i] / z;
    const float* en = nbr_emb[i];
    for (int j = 0; j < d; ++j) (*out)[j] += w * en[j];
  }
  // Residual merge with the focal vector.
  for (int j = 0; j < d; ++j) {
    (*out)[j] = std::tanh((*out)[j] + 0.5f * focal[j]);
  }
}

ServingResponse OnlineServer::Handle(const ServingRequest& req) {
  return Handle(req, SessionToken{});
}

ServingResponse OnlineServer::Handle(const ServingRequest& req,
                                     const SessionToken& token) {
  WallTimer timer;
  ServingResponse resp;
  std::vector<float> uq;
  if (token.last_write_epoch > 0) ryw_requests_->Add(1);
  EmbedRequest(req, token.last_write_epoch, &uq);
  const int64_t embed_us = static_cast<int64_t>(timer.ElapsedMicros());
  embed_latency_us_->Record(embed_us);
  resp.items = index_.Search(uq.data(), options_.top_n);
  resp.latency_ms = timer.ElapsedMillis();
  requests_->Add(1);
  request_latency_us_->Record(static_cast<int64_t>(resp.latency_ms * 1e3));
  return resp;
}

void OnlineServer::RefreshDerivedGauges() const {
  const NeighborCacheStats cs = cache_->Stats();
  const double looked_up = static_cast<double>(cs.hits + cs.misses);
  cache_hit_ratio_->Set(looked_up > 0.0
                            ? static_cast<double>(cs.hits) / looked_up
                            : 0.0);
  cache_entries_->Set(static_cast<double>(cs.entries));
}

std::string OnlineServer::DumpMetrics() const {
  RefreshDerivedGauges();
  return obs::MetricsExporter(registry_).JsonLine();
}

std::string OnlineServer::DumpMetricsPrometheus() const {
  RefreshDerivedGauges();
  return obs::MetricsExporter(registry_).PrometheusText();
}

LoadResult RunLoad(OnlineServer* server,
                   const std::vector<ServingRequest>& request_pool,
                   double qps, double duration_seconds, int client_threads,
                   uint64_t seed, int server_threads) {
  ZCHECK(!request_pool.empty());
  LoadResult result;
  result.offered_qps = qps;
  // Hot path: one lock-free histogram record per response, replacing the
  // former mutex-guarded LatencyStats::Add (which also re-sorted per
  // percentile query). Recorded in nanoseconds so sub-microsecond handlers
  // still resolve; bucket-midpoint percentiles are within ~3.1%.
  obs::Histogram latency_ns;
  std::atomic<int64_t> total{0};

  // Open loop: client threads offer requests at the configured rate into a
  // fixed server-side handler pool; response time = queueing + service, so
  // the latency curve bends as offered load approaches pool capacity.
  ThreadPool handlers(server_threads);
  const double per_thread_qps = qps / client_threads;
  const double gap_seconds = 1.0 / per_thread_qps;
  std::vector<std::thread> clients;
  WallTimer wall;
  for (int c = 0; c < client_threads; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(seed + static_cast<uint64_t>(c) * 1000);
      WallTimer thread_timer;
      int64_t sent = 0;
      while (thread_timer.ElapsedSeconds() < duration_seconds) {
        const double next_send = static_cast<double>(sent) * gap_seconds;
        const double now = thread_timer.ElapsedSeconds();
        if (now < next_send) {
          std::this_thread::sleep_for(
              std::chrono::duration<double>(next_send - now));
        }
        const auto& req = request_pool[rng.Uniform(request_pool.size())];
        auto offered_at = std::chrono::steady_clock::now();
        handlers.Submit([&, req, offered_at] {
          server->Handle(req);
          const double ms =
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - offered_at)
                  .count();
          total.fetch_add(1, std::memory_order_relaxed);
          latency_ns.Record(static_cast<int64_t>(ms * 1e6));
        });
        ++sent;
      }
    });
  }
  for (auto& t : clients) t.join();
  handlers.Shutdown();  // drain queued requests
  const double elapsed = wall.ElapsedSeconds();
  result.requests = total.load();
  result.achieved_qps = result.requests / elapsed;
  const obs::HistogramSnapshot snap = latency_ns.Snapshot();
  result.mean_ms = snap.Mean() / 1e6;  // exact (sum/count)
  result.p50_ms = static_cast<double>(snap.Percentile(50)) / 1e6;
  result.p99_ms = static_cast<double>(snap.Percentile(99)) / 1e6;
  return result;
}

}  // namespace serving
}  // namespace zoomer
