#include "serving/ann_index.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/timer.h"
#include "obs/metrics.h"

namespace zoomer {
namespace serving {

AnnIndex::AnnIndex(AnnIndexOptions options) : options_(options) {
  obs::MetricsRegistry* reg = options_.registry != nullptr
                                  ? options_.registry
                                  : obs::MetricsRegistry::Global();
  search_latency_us_ = reg->GetHistogram("serving.ann_search_latency_us");
  insert_latency_us_ = reg->GetHistogram("serving.ann_insert_latency_us");
}

void AnnIndex::Normalize(float* v) const {
  float norm = 0.0f;
  for (int d = 0; d < dim_; ++d) norm += v[d] * v[d];
  norm = std::sqrt(norm) + 1e-9f;
  for (int d = 0; d < dim_; ++d) v[d] /= norm;
}

Status AnnIndex::Build(const std::vector<float>& vectors, int64_t n, int dim,
                       const std::vector<int64_t>& ids) {
  if (n <= 0 || dim <= 0) return Status::InvalidArgument("empty index input");
  if (vectors.size() != static_cast<size_t>(n * dim)) {
    return Status::InvalidArgument("vector buffer size mismatch");
  }
  if (ids.size() != static_cast<size_t>(n)) {
    return Status::InvalidArgument("ids size mismatch");
  }
  n_ = n;
  dim_ = dim;
  data_ = vectors;
  ids_ = ids;
  for (int64_t i = 0; i < n_; ++i) Normalize(data_.data() + i * dim_);

  const int nlist = std::min<int>(options_.nlist, static_cast<int>(n_));
  // k-means++ style init: random distinct rows as centroids.
  Rng rng(options_.seed);
  std::vector<int64_t> init(n_);
  for (int64_t i = 0; i < n_; ++i) init[i] = i;
  rng.Shuffle(&init);
  centroids_.assign(static_cast<size_t>(nlist) * dim_, 0.0f);
  for (int c = 0; c < nlist; ++c) {
    std::copy(data_.begin() + init[c] * dim_,
              data_.begin() + (init[c] + 1) * dim_,
              centroids_.begin() + static_cast<int64_t>(c) * dim_);
  }
  std::vector<int> assign(n_, 0);
  for (int iter = 0; iter < options_.kmeans_iters; ++iter) {
    for (int64_t i = 0; i < n_; ++i) {
      float best = -2.0f;
      int best_c = 0;
      for (int c = 0; c < nlist; ++c) {
        float dot = 0.0f;
        for (int d = 0; d < dim_; ++d) {
          dot += data_[i * dim_ + d] * centroids_[c * dim_ + d];
        }
        if (dot > best) {
          best = dot;
          best_c = c;
        }
      }
      assign[i] = best_c;
    }
    std::fill(centroids_.begin(), centroids_.end(), 0.0f);
    std::vector<int> counts(nlist, 0);
    for (int64_t i = 0; i < n_; ++i) {
      for (int d = 0; d < dim_; ++d) {
        centroids_[assign[i] * dim_ + d] += data_[i * dim_ + d];
      }
      ++counts[assign[i]];
    }
    for (int c = 0; c < nlist; ++c) {
      if (counts[c] == 0) {
        // Re-seed empty list with a random row.
        const int64_t r = static_cast<int64_t>(rng.Uniform(n_));
        std::copy(data_.begin() + r * dim_, data_.begin() + (r + 1) * dim_,
                  centroids_.begin() + static_cast<int64_t>(c) * dim_);
      } else {
        Normalize(centroids_.data() + static_cast<int64_t>(c) * dim_);
      }
    }
  }
  lists_.assign(nlist, {});
  for (int64_t i = 0; i < n_; ++i) lists_[assign[i]].push_back(i);
  return Status::OK();
}

Status AnnIndex::Insert(const float* vector, int64_t id) {
  if (dim_ == 0 || centroids_.empty()) {
    return Status::FailedPrecondition("index not built");
  }
  WallTimer timer;
  std::vector<float> row(vector, vector + dim_);
  Normalize(row.data());
  // Nearest coarse centroid — centroids are immutable after Build, so this
  // scan runs outside the row lock.
  const int nlist = static_cast<int>(centroids_.size() / dim_);
  float best = -2.0f;
  int best_c = 0;
  for (int c = 0; c < nlist; ++c) {
    float dot = 0.0f;
    for (int d = 0; d < dim_; ++d) dot += row[d] * centroids_[c * dim_ + d];
    if (dot > best) {
      best = dot;
      best_c = c;
    }
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  const int64_t new_row = n_++;
  data_.insert(data_.end(), row.begin(), row.end());
  ids_.push_back(id);
  lists_[best_c].push_back(new_row);
  insert_latency_us_->Record(static_cast<int64_t>(timer.ElapsedMicros()));
  return Status::OK();
}

std::vector<AnnResult> AnnIndex::Search(const float* query, int k) const {
  WallTimer timer;
  std::vector<float> q(query, query + dim_);
  Normalize(q.data());
  std::shared_lock<std::shared_mutex> lock(mu_);
  ZCHECK_GT(n_, 0) << "index not built";
  // Rank lists by centroid similarity.
  const int nlist = static_cast<int>(lists_.size());
  std::vector<std::pair<float, int>> list_rank(nlist);
  for (int c = 0; c < nlist; ++c) {
    float dot = 0.0f;
    for (int d = 0; d < dim_; ++d) dot += q[d] * centroids_[c * dim_ + d];
    list_rank[c] = {dot, c};
  }
  const int nprobe = std::min(options_.nprobe, nlist);
  std::partial_sort(list_rank.begin(), list_rank.begin() + nprobe,
                    list_rank.end(), std::greater<>());
  std::vector<AnnResult> results;
  for (int p = 0; p < nprobe; ++p) {
    for (int64_t row : lists_[list_rank[p].second]) {
      float dot = 0.0f;
      for (int d = 0; d < dim_; ++d) dot += q[d] * data_[row * dim_ + d];
      results.push_back({ids_[row], dot});
    }
  }
  const size_t keep = std::min<size_t>(k, results.size());
  std::partial_sort(results.begin(), results.begin() + keep, results.end(),
                    [](const AnnResult& a, const AnnResult& b) {
                      return a.score > b.score;
                    });
  results.resize(keep);
  search_latency_us_->Record(static_cast<int64_t>(timer.ElapsedMicros()));
  return results;
}

std::vector<AnnResult> AnnIndex::SearchExact(const float* query,
                                             int k) const {
  std::vector<float> q(query, query + dim_);
  Normalize(q.data());
  std::shared_lock<std::shared_mutex> lock(mu_);
  ZCHECK_GT(n_, 0) << "index not built";
  std::vector<AnnResult> results(n_);
  for (int64_t i = 0; i < n_; ++i) {
    float dot = 0.0f;
    for (int d = 0; d < dim_; ++d) dot += q[d] * data_[i * dim_ + d];
    results[i] = {ids_[i], dot};
  }
  const size_t keep = std::min<size_t>(k, results.size());
  std::partial_sort(results.begin(), results.begin() + keep, results.end(),
                    [](const AnnResult& a, const AnnResult& b) {
                      return a.score > b.score;
                    });
  results.resize(keep);
  return results;
}

}  // namespace serving
}  // namespace zoomer
