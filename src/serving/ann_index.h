// Approximate-nearest-neighbor inverted index (paper Sec. VI: trained
// representations are fed to an ANN module generating the inverted index
// used for online retrieval in iGraph). IVF-Flat: a k-means coarse quantizer
// partitions item vectors into nlist inverted lists; a query scans the
// nprobe closest lists. Cosine similarity via L2-normalized vectors.
#ifndef ZOOMER_SERVING_ANN_INDEX_H_
#define ZOOMER_SERVING_ANN_INDEX_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace zoomer {
namespace serving {

struct AnnIndexOptions {
  int nlist = 16;        // number of inverted lists (coarse centroids)
  int nprobe = 4;        // lists scanned per query
  int kmeans_iters = 8;
  uint64_t seed = 17;
};

struct AnnResult {
  int64_t id = -1;      // caller-provided id
  float score = 0.0f;   // cosine similarity
};

class AnnIndex {
 public:
  explicit AnnIndex(AnnIndexOptions options) : options_(options) {}

  /// Builds the index over `vectors` (n x dim, row-major), with ids[i]
  /// attached to row i. Vectors are L2-normalized internally.
  Status Build(const std::vector<float>& vectors, int64_t n, int dim,
               const std::vector<int64_t>& ids);

  /// Top-k by cosine over the nprobe nearest lists.
  std::vector<AnnResult> Search(const float* query, int k) const;

  /// Exact top-k scan (recall oracle for tests/benches).
  std::vector<AnnResult> SearchExact(const float* query, int k) const;

  int64_t size() const { return n_; }
  int dim() const { return dim_; }
  const AnnIndexOptions& options() const { return options_; }

 private:
  void Normalize(float* v) const;

  AnnIndexOptions options_;
  int64_t n_ = 0;
  int dim_ = 0;
  std::vector<float> data_;       // normalized vectors
  std::vector<int64_t> ids_;
  std::vector<float> centroids_;  // nlist x dim
  std::vector<std::vector<int64_t>> lists_;  // row indices per list
};

}  // namespace serving
}  // namespace zoomer

#endif  // ZOOMER_SERVING_ANN_INDEX_H_
