// Approximate-nearest-neighbor inverted index (paper Sec. VI: trained
// representations are fed to an ANN module generating the inverted index
// used for online retrieval in iGraph). IVF-Flat: a k-means coarse quantizer
// partitions item vectors into nlist inverted lists; a query scans the
// nprobe closest lists. Cosine similarity via L2-normalized vectors.
#ifndef ZOOMER_SERVING_ANN_INDEX_H_
#define ZOOMER_SERVING_ANN_INDEX_H_

#include <cstdint>
#include <shared_mutex>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace zoomer {

namespace obs {
class Histogram;
class MetricsRegistry;
}  // namespace obs

namespace serving {

struct AnnIndexOptions {
  int nlist = 16;        // number of inverted lists (coarse centroids)
  int nprobe = 4;        // lists scanned per query
  int kmeans_iters = 8;
  uint64_t seed = 17;
  /// Metrics registry for search/insert timing histograms
  /// ("serving.ann_search_latency_us", "serving.ann_insert_latency_us").
  /// Null means the process-global registry.
  obs::MetricsRegistry* registry = nullptr;
};

struct AnnResult {
  int64_t id = -1;      // caller-provided id
  float score = 0.0f;   // cosine similarity
};

class AnnIndex {
 public:
  explicit AnnIndex(AnnIndexOptions options);

  /// Builds the index over `vectors` (n x dim, row-major), with ids[i]
  /// attached to row i. Vectors are L2-normalized internally. Not
  /// thread-safe against concurrent Search/Insert (build first).
  Status Build(const std::vector<float>& vectors, int64_t n, int dim,
               const std::vector<int64_t>& ids);

  /// Incrementally inserts one vector after Build(): normalized, assigned
  /// to the nearest coarse centroid, appended to that inverted list (the
  /// centroids are not re-trained — standard IVF incremental insert). Safe
  /// to call concurrently with Search, so the serving path can index a
  /// streamed cold-start item without rebuilding.
  Status Insert(const float* vector, int64_t id);

  /// Top-k by cosine over the nprobe nearest lists.
  std::vector<AnnResult> Search(const float* query, int k) const;

  /// Exact top-k scan (recall oracle for tests/benches).
  std::vector<AnnResult> SearchExact(const float* query, int k) const;

  int64_t size() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return n_;
  }
  int dim() const { return dim_; }
  const AnnIndexOptions& options() const { return options_; }

 private:
  void Normalize(float* v) const;

  AnnIndexOptions options_;
  /// Registry-owned timing histograms (resolved once at construction).
  obs::Histogram* search_latency_us_ = nullptr;
  obs::Histogram* insert_latency_us_ = nullptr;
  int dim_ = 0;  // fixed at Build
  /// Guards the row storage against Insert-vs-Search races; centroids are
  /// fixed after Build so the coarse quantizer reads stay unguarded.
  mutable std::shared_mutex mu_;
  int64_t n_ = 0;                 // guarded by mu_
  std::vector<float> data_;       // normalized vectors, guarded by mu_
  std::vector<int64_t> ids_;      // guarded by mu_
  std::vector<float> centroids_;  // nlist x dim
  std::vector<std::vector<int64_t>> lists_;  // row indices, guarded by mu_
};

}  // namespace serving
}  // namespace zoomer

#endif  // ZOOMER_SERVING_ANN_INDEX_H_
