#include "serving/neighbor_cache.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/timer.h"
#include "streaming/dynamic_hetero_graph.h"

namespace zoomer {
namespace serving {

using graph::NodeId;

NeighborCache::NeighborCache(const graph::HeteroGraph* g,
                             NeighborCacheOptions options)
    : graph_(g),
      options_(options),
      registry_(options.registry != nullptr ? options.registry
                                            : obs::MetricsRegistry::Global()),
      refresher_(std::make_unique<ThreadPool>(options.refresh_threads)) {
  fill_latency_us_ =
      registry_->GetHistogram("serving.neighbor_cache.fill_latency_us");
  auto counter = [this](const std::string& name, const obs::Counter* c) {
    registry_->RegisterCounter(name, c);
    registered_.emplace_back(name, c);
  };
  counter("serving.neighbor_cache.hits", &hits_);
  counter("serving.neighbor_cache.misses", &misses_);
  counter("serving.neighbor_cache.invalidations", &invalidations_);
  counter("serving.neighbor_cache.scheduled_fills", &scheduled_fills_);
  counter("serving.neighbor_cache.completed_fills", &completed_fills_);
}

NeighborCache::~NeighborCache() {
  // Join in-flight fills (they bump the counters below) before the registry
  // stops seeing the views and the members die. Shutdown() rather than
  // reset(): a fill that re-runs itself reads `refresher_` from its worker
  // thread, so the unique_ptr must not be mutated until workers are joined.
  refresher_->Shutdown();
  for (const auto& [name, ptr] : registered_) {
    registry_->Unregister(name, ptr);
  }
}

void NeighborCache::AttachDynamicGraph(
    const streaming::DynamicHeteroGraph* dynamic) {
  dynamic_.store(dynamic, std::memory_order_release);
}

namespace {

std::vector<NodeId> KeepTopK(std::vector<std::pair<float, NodeId>>* scored,
                             size_t k) {
  const size_t keep = std::min(k, scored->size());
  std::partial_sort(scored->begin(), scored->begin() + keep, scored->end(),
                    std::greater<>());
  std::vector<NodeId> out;
  out.reserve(keep);
  for (size_t i = 0; i < keep; ++i) out.push_back((*scored)[i].second);
  return out;
}

/// Merged base + delta top-k off an already-pinned snapshot: freshly
/// ingested clicks compete for the top-k on accumulated weight like any
/// offline edge. A fill can race a node's birth (an update hook fires
/// before this snapshot's watermark covers the birth epoch): store an
/// empty entry — the hook that makes the node visible also invalidates it,
/// triggering a re-fill.
std::vector<NodeId> TopKFromSnapshot(
    const streaming::DynamicHeteroGraph::Snapshot& snap, NodeId node,
    size_t k) {
  if (node < 0 || node >= snap.num_nodes()) return {};
  std::vector<graph::NeighborEntry> merged;
  snap.Neighbors(node, &merged);
  std::vector<std::pair<float, NodeId>> scored;
  scored.reserve(merged.size());
  for (const auto& e : merged) scored.emplace_back(e.weight, e.neighbor);
  return KeepTopK(&scored, k);
}

}  // namespace

std::vector<NodeId> NeighborCache::ComputeTopK(NodeId node) const {
  // Highest-weight neighbors (interaction frequency) up to k.
  const streaming::DynamicHeteroGraph* dynamic =
      dynamic_.load(std::memory_order_acquire);
  if (dynamic != nullptr) {
    const auto snap = dynamic->MakeSnapshot();
    return TopKFromSnapshot(snap, node, static_cast<size_t>(options_.k));
  }
  // Static path: ids past the offline CSR cannot have neighbors.
  if (node < 0 || node >= graph_->num_nodes()) return {};
  auto ids = graph_->neighbor_ids(node);
  auto weights = graph_->neighbor_weights(node);
  std::vector<std::pair<float, NodeId>> scored;
  scored.reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    scored.emplace_back(weights[i], ids[i]);
  }
  return KeepTopK(&scored, static_cast<size_t>(options_.k));
}

bool NeighborCache::Get(NodeId node, std::vector<NodeId>* out) {
  bool fill_pending;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = cache_.find(node);
    if (it != cache_.end()) {
      *out = it->second;
      hits_.Add(1);
      return true;
    }
    // Checked under the shared lock so a miss burst on a cold node does not
    // serialize every reader behind ScheduleFill's writer lock.
    fill_pending = pending_fills_.count(node) > 0;
  }
  misses_.Add(1);
  if (!fill_pending) ScheduleFill(node);
  return false;
}

void NeighborCache::ScheduleFill(NodeId node) {
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    // Concurrent misses on one node coalesce into a single background fill.
    if (!pending_fills_.try_emplace(node, false).second) return;
  }
  SubmitFill(node);
}

void NeighborCache::SubmitFill(NodeId node) {
  scheduled_fills_.Add(1);
  refresher_->Submit([this, node] { FillTask(node); });
}

void NeighborCache::FillTask(NodeId node) {
  if (options_.refresh_delay_micros > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.refresh_delay_micros));
  }
  WallTimer fill_timer;
  auto topk = ComputeTopK(node);
  fill_latency_us_->Record(static_cast<int64_t>(fill_timer.ElapsedMicros()));
  bool rerun = false;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    cache_[node] = std::move(topk);
    auto it = pending_fills_.find(node);
    if (it != pending_fills_.end()) {
      if (it->second) {
        // An Invalidate landed while this fill was computing: the stored
        // top-k may predate the graph update, so run once more.
        it->second = false;
        rerun = true;
      } else {
        pending_fills_.erase(it);
      }
    }
  }
  completed_fills_.Add(1);
  if (rerun) SubmitFill(node);
}

void NeighborCache::Warm(NodeId node) {
  auto topk = ComputeTopK(node);
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    cache_[node] = std::move(topk);
  }
  completed_fills_.Add(1);
}

void NeighborCache::WarmAll(const std::vector<NodeId>& nodes) {
  const streaming::DynamicHeteroGraph* dynamic =
      dynamic_.load(std::memory_order_acquire);
  if (dynamic == nullptr) {
    for (NodeId n : nodes) Warm(n);
    return;
  }
  // One epoch pin for the whole warm list: per-node MakeSnapshot() is an
  // atomic fence plus watermark walk, which dominates bulk pre-warming of
  // large candidate sets.
  const auto snap = dynamic->MakeSnapshot();
  for (NodeId n : nodes) {
    auto topk = TopKFromSnapshot(snap, n, static_cast<size_t>(options_.k));
    {
      std::unique_lock<std::shared_mutex> lock(mu_);
      cache_[n] = std::move(topk);
    }
    completed_fills_.Add(1);
  }
}

void NeighborCache::Invalidate(NodeId node) {
  bool was_cached, fill_in_flight = false;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    was_cached = cache_.erase(node) > 0;
    auto it = pending_fills_.find(node);
    if (it != pending_fills_.end()) {
      // A fill is computing right now and may have read the pre-update
      // graph; mark it dirty so it re-runs after it lands.
      it->second = true;
      fill_in_flight = true;
    }
  }
  if (!was_cached && !fill_in_flight) return;
  invalidations_.Add(1);
  // Asynchronous re-fill keeps the refresh off the request path, matching
  // the paper's fully asynchronous cache updating.
  if (!fill_in_flight) ScheduleFill(node);
}

void NeighborCache::InvalidateRange(NodeId begin, NodeId end) {
  if (begin >= end) return;
  std::vector<NodeId> to_fill;
  int64_t affected = 0;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    // Same mid-compute window as Invalidate(): an in-flight fill for a row
    // in the range may have read the pre-fold graph — mark it dirty so it
    // re-runs instead of landing a stale top-k.
    int64_t pending_only = 0;
    for (auto& [node, dirty] : pending_fills_) {
      if (node < begin || node >= end) continue;
      dirty = true;
      if (!cache_.count(node)) ++pending_only;
    }
    for (auto it = cache_.begin(); it != cache_.end();) {
      if (it->first < begin || it->first >= end) {
        ++it;
        continue;
      }
      if (!pending_fills_.count(it->first)) to_fill.push_back(it->first);
      ++affected;
      it = cache_.erase(it);
    }
    affected += pending_only;
  }
  if (affected == 0) return;
  invalidations_.Add(affected);
  for (NodeId n : to_fill) ScheduleFill(n);
}

void NeighborCache::InvalidateAll() {
  std::vector<NodeId> to_fill;
  int64_t affected;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    // Same mid-compute window as Invalidate(): mark every in-flight fill
    // dirty so it re-runs instead of landing a pre-update top-k.
    int64_t pending_only = 0;
    for (auto& [node, dirty] : pending_fills_) {
      dirty = true;
      if (!cache_.count(node)) ++pending_only;
    }
    to_fill.reserve(cache_.size());
    for (const auto& [node, topk] : cache_) {
      if (!pending_fills_.count(node)) to_fill.push_back(node);
    }
    affected = static_cast<int64_t>(cache_.size()) + pending_only;
    cache_.clear();
  }
  invalidations_.Add(affected);
  for (NodeId n : to_fill) ScheduleFill(n);
}

size_t NeighborCache::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return cache_.size();
}

NeighborCacheStats NeighborCache::Stats() const {
  NeighborCacheStats stats;
  stats.hits = hits_.Value();
  stats.misses = misses_.Value();
  stats.invalidations = invalidations_.Value();
  stats.scheduled_fills = scheduled_fills_.Value();
  stats.completed_fills = completed_fills_.Value();
  stats.entries = size();
  return stats;
}

}  // namespace serving
}  // namespace zoomer
