#include "serving/neighbor_cache.h"

#include <algorithm>

namespace zoomer {
namespace serving {

using graph::NodeId;

NeighborCache::NeighborCache(const graph::HeteroGraph* g,
                             NeighborCacheOptions options)
    : graph_(g),
      options_(options),
      refresher_(std::make_unique<ThreadPool>(options.refresh_threads)) {}

std::vector<NodeId> NeighborCache::ComputeTopK(NodeId node) const {
  // Highest-weight neighbors (interaction frequency) up to k.
  auto ids = graph_->neighbor_ids(node);
  auto weights = graph_->neighbor_weights(node);
  std::vector<std::pair<float, NodeId>> scored;
  scored.reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    scored.emplace_back(weights[i], ids[i]);
  }
  const size_t keep = std::min<size_t>(options_.k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + keep, scored.end(),
                    std::greater<>());
  std::vector<NodeId> out;
  out.reserve(keep);
  for (size_t i = 0; i < keep; ++i) out.push_back(scored[i].second);
  return out;
}

bool NeighborCache::Get(NodeId node, std::vector<NodeId>* out) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = cache_.find(node);
    if (it != cache_.end()) {
      *out = it->second;
      hits_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  refresher_->Submit([this, node] { Warm(node); });
  return false;
}

void NeighborCache::Warm(NodeId node) {
  auto topk = ComputeTopK(node);
  std::unique_lock<std::shared_mutex> lock(mu_);
  cache_[node] = std::move(topk);
}

void NeighborCache::WarmAll(const std::vector<NodeId>& nodes) {
  for (NodeId n : nodes) Warm(n);
}

size_t NeighborCache::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return cache_.size();
}

}  // namespace serving
}  // namespace zoomer
