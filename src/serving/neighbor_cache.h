// Per-node neighbor cache for online serving (paper Sec. VII-E): the
// production deployment caches the k last-visited neighbors of each user and
// query node (k = 30) and refreshes entries fully asynchronously from user
// requests, decoupling neighbor *sampling* from neighbor *aggregation*.
//
// Streaming integration: with a DynamicHeteroGraph attached, fills compute
// the top-k over base + delta overlays, and Invalidate() drops a stale entry
// and schedules an asynchronous re-fill — the ingest pipeline's update hooks
// call this so responses reflect freshly ingested edges.
#ifndef ZOOMER_SERVING_NEIGHBOR_CACHE_H_
#define ZOOMER_SERVING_NEIGHBOR_CACHE_H_

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/threadpool.h"
#include "graph/hetero_graph.h"
#include "obs/metrics.h"

namespace zoomer {

namespace streaming {
class DynamicHeteroGraph;
}  // namespace streaming

namespace serving {

struct NeighborCacheOptions {
  int k = 30;  // production value (paper Sec. VII-E)
  /// Threads performing asynchronous refreshes.
  int refresh_threads = 1;
  /// Artificial delay before each background fill (microseconds); simulates
  /// refresh cost and widens the async window deterministically in tests.
  int refresh_delay_micros = 0;
  /// Metrics registry the cache registers its counters with (names under
  /// "serving.neighbor_cache."). Null means the process-global registry.
  obs::MetricsRegistry* registry = nullptr;
};

/// Counter snapshot in the style of EngineStats.
struct NeighborCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t invalidations = 0;
  int64_t scheduled_fills = 0;  // background fills actually enqueued
  int64_t completed_fills = 0;  // fills (sync or async) that landed
  size_t entries = 0;
};

/// Read-mostly cache: Get never blocks on graph sampling — a miss returns
/// false and schedules an asynchronous fill, mirroring the paper's
/// "cache updating is fully asynchronous from users' timely requests".
/// Concurrent misses on one node coalesce into a single background fill.
class NeighborCache {
 public:
  NeighborCache(const graph::HeteroGraph* g, NeighborCacheOptions options);
  ~NeighborCache();

  /// Serve top-k reads over base + streaming deltas (nullptr restores
  /// static reads). The view must outlive the cache.
  void AttachDynamicGraph(const streaming::DynamicHeteroGraph* dynamic);

  /// Returns true and fills `out` on hit; on miss schedules a background
  /// fill (unless one is already pending for this node) and returns false.
  bool Get(graph::NodeId node, std::vector<graph::NodeId>* out);

  /// Synchronous fill (used for warmup before load tests).
  void Warm(graph::NodeId node);
  void WarmAll(const std::vector<graph::NodeId>& nodes);

  /// Drops the node's entry and schedules an asynchronous re-fill, so the
  /// next request after a graph update sees fresh neighbors. No-op for
  /// nodes that were never cached.
  void Invalidate(graph::NodeId node);
  /// Per-segment invalidation: drops every cached entry with begin <= node
  /// < end and schedules their re-fills — what OnlineServer issues for the
  /// row ranges an incremental compaction fold rebuilt, instead of a
  /// whole-graph flush.
  void InvalidateRange(graph::NodeId begin, graph::NodeId end);
  void InvalidateAll();

  int64_t hits() const { return hits_.Value(); }
  int64_t misses() const { return misses_.Value(); }
  size_t size() const;
  NeighborCacheStats Stats() const;

 private:
  std::vector<graph::NodeId> ComputeTopK(graph::NodeId node) const;
  /// Enqueues a background fill unless one is already pending. Caller must
  /// not hold mu_.
  void ScheduleFill(graph::NodeId node);
  void SubmitFill(graph::NodeId node);
  void FillTask(graph::NodeId node);

  const graph::HeteroGraph* graph_;
  std::atomic<const streaming::DynamicHeteroGraph*> dynamic_{nullptr};
  NeighborCacheOptions options_;
  mutable std::shared_mutex mu_;
  std::unordered_map<graph::NodeId, std::vector<graph::NodeId>> cache_;
  /// In-flight background fills; the bool marks a fill whose inputs were
  /// invalidated mid-compute, so it must re-run after it lands. Guarded by
  /// mu_.
  std::unordered_map<graph::NodeId, bool> pending_fills_;
  // Registry-backed instruments ("serving.neighbor_cache." names); the
  // members keep Stats()/hits()/misses() exact per-cache views.
  obs::MetricsRegistry* registry_;  // resolved (never null)
  obs::Counter hits_;
  obs::Counter misses_;
  obs::Counter invalidations_;
  obs::Counter scheduled_fills_;
  obs::Counter completed_fills_;
  obs::Histogram* fill_latency_us_;  // registry-owned, shared by name
  std::vector<std::pair<std::string, const void*>> registered_;
  /// Declared last: its destructor joins in-flight fills, which touch every
  /// member above — reverse destruction order keeps them alive until then.
  std::unique_ptr<ThreadPool> refresher_;
};

}  // namespace serving
}  // namespace zoomer

#endif  // ZOOMER_SERVING_NEIGHBOR_CACHE_H_
