// Per-node neighbor cache for online serving (paper Sec. VII-E): the
// production deployment caches the k last-visited neighbors of each user and
// query node (k = 30) and refreshes entries fully asynchronously from user
// requests, decoupling neighbor *sampling* from neighbor *aggregation*.
#ifndef ZOOMER_SERVING_NEIGHBOR_CACHE_H_
#define ZOOMER_SERVING_NEIGHBOR_CACHE_H_

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/threadpool.h"
#include "graph/hetero_graph.h"

namespace zoomer {
namespace serving {

struct NeighborCacheOptions {
  int k = 30;  // production value (paper Sec. VII-E)
  /// Threads performing asynchronous refreshes.
  int refresh_threads = 1;
};

/// Read-mostly cache: Get never blocks on graph sampling — a miss returns
/// false and schedules an asynchronous fill, mirroring the paper's
/// "cache updating is fully asynchronous from users' timely requests".
class NeighborCache {
 public:
  NeighborCache(const graph::HeteroGraph* g, NeighborCacheOptions options);

  /// Returns true and fills `out` on hit; on miss schedules a background
  /// fill and returns false.
  bool Get(graph::NodeId node, std::vector<graph::NodeId>* out);

  /// Synchronous fill (used for warmup before load tests).
  void Warm(graph::NodeId node);
  void WarmAll(const std::vector<graph::NodeId>& nodes);

  int64_t hits() const { return hits_.load(); }
  int64_t misses() const { return misses_.load(); }
  size_t size() const;

 private:
  std::vector<graph::NodeId> ComputeTopK(graph::NodeId node) const;

  const graph::HeteroGraph* graph_;
  NeighborCacheOptions options_;
  mutable std::shared_mutex mu_;
  std::unordered_map<graph::NodeId, std::vector<graph::NodeId>> cache_;
  std::unique_ptr<ThreadPool> refresher_;
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
};

}  // namespace serving
}  // namespace zoomer

#endif  // ZOOMER_SERVING_NEIGHBOR_CACHE_H_
