#include "obs/trace.h"

#include <algorithm>

namespace zoomer {
namespace obs {

TraceRing::TraceRing(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {
  ring_.resize(capacity_);
}

TraceRing* TraceRing::Global() {
  static TraceRing* const g = new TraceRing();
  return g;
}

void TraceRing::Record(const TraceEvent& ev) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_[total_ % capacity_] = ev;
  ++total_;
}

std::vector<TraceEvent> TraceRing::Recent(size_t max_events) const {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t live = static_cast<size_t>(
      std::min<uint64_t>(total_, capacity_));
  const size_t n = std::min(max_events, live);
  std::vector<TraceEvent> out;
  out.reserve(n);
  for (size_t i = live - n; i < live; ++i) {
    // Oldest live event sits at total_ - live.
    out.push_back(ring_[(total_ - live + i) % capacity_]);
  }
  return out;
}

uint64_t TraceRing::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

}  // namespace obs
}  // namespace zoomer
