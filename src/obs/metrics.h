// Process-wide observability instruments (ISSUE 6): lock-free sharded
// Counter/Gauge and a fixed-bucket log-scale Histogram whose record path is
// two relaxed fetch_adds — no lock, no sort, mergeable across thread shards
// and across instrument instances. A MetricsRegistry names instruments so a
// running server can be scraped (OnlineServer::DumpMetrics) and the bench
// artifact can carry the full snapshot.
//
// Two ownership modes coexist under one namespace of names:
//  - registry-owned instruments: GetCounter/GetGauge/GetHistogram(name)
//    returns a stable pointer shared by every caller of the same name.
//  - component-owned views: a component keeps instruments as members (so its
//    existing Stats() accessors stay exact per-instance views) and registers
//    them with RegisterCounter/...; several instances registered under one
//    name aggregate in Snapshot() (counters and histograms sum, gauges take
//    the max — the conservative reading for staleness-style gauges).
// Components must Unregister(name, ptr) before destroying a registered view.
#ifndef ZOOMER_OBS_METRICS_H_
#define ZOOMER_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace zoomer {
namespace obs {

/// Microseconds on the steady clock since an arbitrary process-local origin.
/// Monotonic; use for durations and freshness ages, never wall timestamps.
int64_t MonotonicMicros();

/// Stable small integer for the calling thread, used to spread instrument
/// writes across cache-line-padded shards.
unsigned ThreadShardIndex();

/// Monotonically increasing sum, sharded across cache lines so concurrent
/// writers do not bounce a single line. Add() is one relaxed fetch_add.
class Counter {
 public:
  static constexpr int kShards = 8;

  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(int64_t n = 1) {
    cells_[ThreadShardIndex() & (kShards - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  int64_t Value() const {
    int64_t total = 0;
    for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<int64_t> v{0};
  };
  Cell cells_[kShards];
};

/// Last-writer-wins instantaneous value (e.g. freshness lag, queue depth).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  double Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

class Histogram;

/// Point-in-time copy of a Histogram (or a merge of several). Percentiles
/// walk the cumulative bucket counts — no sorting, error bounded by the
/// log-scale bucket width (<= 1/16 relative, see Histogram).
class HistogramSnapshot {
 public:
  HistogramSnapshot();

  int64_t count() const { return count_; }
  int64_t sum() const { return sum_; }
  double Mean() const {
    return count_ > 0 ? static_cast<double>(sum_) / count_ : 0.0;
  }
  /// Estimated value at percentile `p` in [0, 100]; 0 when empty. Returns
  /// the midpoint of the bucket holding the p-th sample.
  int64_t Percentile(double p) const;
  /// Midpoint of the highest non-empty bucket (upper envelope of the data).
  int64_t Max() const;

  /// Adds another snapshot's buckets into this one (cross-shard /
  /// cross-instance merge).
  void Merge(const HistogramSnapshot& other);

  const std::vector<int64_t>& bucket_counts() const { return counts_; }

 private:
  friend class Histogram;
  std::vector<int64_t> counts_;
  int64_t count_ = 0;
  int64_t sum_ = 0;
};

/// Fixed-bucket log-scale latency/size histogram (HDR-style): values below
/// 16 get exact unit buckets; above, each power of two splits into 16
/// sub-buckets, so the relative quantile error is <= 1/16 (6.25%), halved to
/// ~3.1% by reporting bucket midpoints. 976 buckets cover all of int64.
/// Record() is two relaxed fetch_adds on a thread-sharded cell — safe from
/// any thread, never locks, never allocates.
class Histogram {
 public:
  static constexpr int kSubBits = 4;
  static constexpr int kSubBuckets = 1 << kSubBits;  // 16
  static constexpr int kNumBuckets = kSubBuckets * (64 - kSubBits + 1);  // 976
  static constexpr int kThreadShards = 4;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(int64_t value) {
    Shard& shard = shards_[ThreadShardIndex() & (kThreadShards - 1)];
    shard.counts[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(value < 0 ? 0 : value, std::memory_order_relaxed);
  }

  /// Merged view over all thread shards.
  HistogramSnapshot Snapshot() const;
  /// Adds this histogram's buckets into an existing snapshot.
  void MergeInto(HistogramSnapshot* snap) const;

  /// Bucket index for a value (negatives clamp to bucket 0).
  static int BucketIndex(int64_t value);
  /// Inclusive lower bound of bucket `index`.
  static int64_t BucketLowerBound(int index);
  /// Representative (midpoint) value reported for bucket `index`.
  static int64_t BucketMidpoint(int index);

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<int64_t>, kNumBuckets> counts{};
    std::atomic<int64_t> sum{0};
  };
  Shard shards_[kThreadShards];
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// How a registry Snapshot() combines several gauges registered under one
/// name. kMax is the conservative reading for staleness-style gauges (the
/// worst replica's watermark lag IS the fleet's lag); kSum is for capacity
/// gauges whose instances partition a total (per-replica queue depths sum
/// to the engine's total backlog).
enum class GaugeAgg { kMax, kSum };

/// One named metric in a registry snapshot.
struct MetricPoint {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;       // counter / gauge
  HistogramSnapshot hist;   // histogram only
};

struct RegistrySnapshot {
  int64_t monotonic_us = 0;  // MonotonicMicros() at snapshot time
  std::vector<MetricPoint> points;  // sorted by name

  const MetricPoint* Find(const std::string& name) const;
};

/// Thread-safe name -> instrument directory. See file comment for the two
/// ownership modes. Registration and Snapshot take a mutex; the instruments
/// themselves stay lock-free — the registry is never on a record path.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-global registry (leaked singleton: components may unregister
  /// during static destruction). Components default to this when their
  /// options carry a null registry.
  static MetricsRegistry* Global();

  /// Returns the registry-owned instrument for `name`, creating it on first
  /// use. The pointer is stable for the registry's lifetime and shared by
  /// every caller of the same name.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Registers a component-owned instrument under `name`. Multiple views
  /// (and a registry-owned instrument) may share a name; Snapshot()
  /// aggregates them (counters/histograms sum; gauges combine per the
  /// name's GaugeAgg — the last registration's `agg` wins for the name).
  /// The view must stay alive until Unregister.
  void RegisterCounter(const std::string& name, const Counter* view);
  void RegisterGauge(const std::string& name, const Gauge* view,
                     GaugeAgg agg = GaugeAgg::kMax);
  void RegisterHistogram(const std::string& name, const Histogram* view);

  /// Removes a previously registered view (no-op if absent).
  void Unregister(const std::string& name, const void* view);

  RegistrySnapshot Snapshot() const;

 private:
  template <typename T>
  struct Entry {
    std::unique_ptr<T> owned;
    std::vector<const T*> views;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry<Counter>> counters_;
  std::map<std::string, Entry<Gauge>> gauges_;
  std::map<std::string, GaugeAgg> gauge_agg_;  // absent = kMax
  std::map<std::string, Entry<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace zoomer

#endif  // ZOOMER_OBS_METRICS_H_
