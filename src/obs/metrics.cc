#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>

namespace zoomer {
namespace obs {

int64_t MonotonicMicros() {
  // A fixed process-local origin keeps the values small and readable; the
  // first caller pins it.
  static const auto origin = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - origin)
      .count();
}

unsigned ThreadShardIndex() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// ---------------------------------------------------------------------------
// Histogram bucketing

int Histogram::BucketIndex(int64_t value) {
  if (value < 0) value = 0;
  const uint64_t u = static_cast<uint64_t>(value);
  if (u < static_cast<uint64_t>(kSubBuckets)) return static_cast<int>(u);
  const int exp = 63 - std::countl_zero(u);  // >= kSubBits here
  const int sub =
      static_cast<int>((u >> (exp - kSubBits)) & (kSubBuckets - 1));
  return ((exp - kSubBits + 1) << kSubBits) | sub;
}

int64_t Histogram::BucketLowerBound(int index) {
  if (index < kSubBuckets) return index;
  const int block = index >> kSubBits;   // >= 1
  const int sub = index & (kSubBuckets - 1);
  return static_cast<int64_t>(kSubBuckets + sub) << (block - 1);
}

int64_t Histogram::BucketMidpoint(int index) {
  if (index < kSubBuckets) return index;  // exact buckets
  const int block = index >> kSubBits;
  const int64_t width = static_cast<int64_t>(1) << (block - 1);
  return BucketLowerBound(index) + (width >> 1);
}

HistogramSnapshot::HistogramSnapshot()
    : counts_(Histogram::kNumBuckets, 0) {}

int64_t HistogramSnapshot::Percentile(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  const int64_t target = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(p / 100.0 *
                                        static_cast<double>(count_))));
  int64_t cumulative = 0;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    cumulative += counts_[i];
    if (cumulative >= target) return Histogram::BucketMidpoint(i);
  }
  return Max();
}

int64_t HistogramSnapshot::Max() const {
  for (int i = Histogram::kNumBuckets - 1; i >= 0; --i) {
    if (counts_[i] > 0) return Histogram::BucketMidpoint(i);
  }
  return 0;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  MergeInto(&snap);
  return snap;
}

void Histogram::MergeInto(HistogramSnapshot* snap) const {
  for (const Shard& shard : shards_) {
    for (int i = 0; i < kNumBuckets; ++i) {
      const int64_t c = shard.counts[i].load(std::memory_order_relaxed);
      snap->counts_[i] += c;
      snap->count_ += c;
    }
    snap->sum_ += shard.sum.load(std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// Registry

MetricsRegistry* MetricsRegistry::Global() {
  static MetricsRegistry* const g = new MetricsRegistry();  // leaked: see decl
  return g;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry<Counter>& entry = counters_[name];
  if (!entry.owned) entry.owned = std::make_unique<Counter>();
  return entry.owned.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry<Gauge>& entry = gauges_[name];
  if (!entry.owned) entry.owned = std::make_unique<Gauge>();
  return entry.owned.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry<Histogram>& entry = histograms_[name];
  if (!entry.owned) entry.owned = std::make_unique<Histogram>();
  return entry.owned.get();
}

void MetricsRegistry::RegisterCounter(const std::string& name,
                                      const Counter* view) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name].views.push_back(view);
}

void MetricsRegistry::RegisterGauge(const std::string& name, const Gauge* view,
                                    GaugeAgg agg) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name].views.push_back(view);
  if (agg == GaugeAgg::kSum) {
    gauge_agg_[name] = agg;
  } else {
    gauge_agg_.erase(name);  // back to the kMax default
  }
}

void MetricsRegistry::RegisterHistogram(const std::string& name,
                                        const Histogram* view) {
  std::lock_guard<std::mutex> lock(mu_);
  histograms_[name].views.push_back(view);
}

void MetricsRegistry::Unregister(const std::string& name, const void* view) {
  std::lock_guard<std::mutex> lock(mu_);
  auto erase_from = [&](auto& table) {
    auto it = table.find(name);
    if (it == table.end()) return;
    auto& views = it->second.views;
    views.erase(std::remove(views.begin(), views.end(), view), views.end());
    if (views.empty() && !it->second.owned) table.erase(it);
  };
  erase_from(counters_);
  erase_from(gauges_);
  erase_from(histograms_);
  if (gauges_.find(name) == gauges_.end()) gauge_agg_.erase(name);
}

RegistrySnapshot MetricsRegistry::Snapshot() const {
  RegistrySnapshot snap;
  snap.monotonic_us = MonotonicMicros();
  std::lock_guard<std::mutex> lock(mu_);
  snap.points.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, entry] : counters_) {
    MetricPoint point;
    point.name = name;
    point.kind = MetricKind::kCounter;
    int64_t total = entry.owned ? entry.owned->Value() : 0;
    for (const Counter* view : entry.views) total += view->Value();
    point.value = static_cast<double>(total);
    snap.points.push_back(std::move(point));
  }
  for (const auto& [name, entry] : gauges_) {
    MetricPoint point;
    point.name = name;
    point.kind = MetricKind::kGauge;
    // Default is max across registered instances: for staleness-style
    // gauges the worst instance is the honest process-wide reading.
    // Names registered with GaugeAgg::kSum combine by addition instead
    // (capacity-style gauges whose instances partition a total).
    const auto agg_it = gauge_agg_.find(name);
    const bool sum = agg_it != gauge_agg_.end() &&
                     agg_it->second == GaugeAgg::kSum;
    double v = entry.owned ? entry.owned->Value() : 0.0;
    for (const Gauge* view : entry.views) {
      v = sum ? v + view->Value() : std::max(v, view->Value());
    }
    point.value = v;
    snap.points.push_back(std::move(point));
  }
  for (const auto& [name, entry] : histograms_) {
    MetricPoint point;
    point.name = name;
    point.kind = MetricKind::kHistogram;
    if (entry.owned) entry.owned->MergeInto(&point.hist);
    for (const Histogram* view : entry.views) view->MergeInto(&point.hist);
    snap.points.push_back(std::move(point));
  }
  std::sort(snap.points.begin(), snap.points.end(),
            [](const MetricPoint& a, const MetricPoint& b) {
              return a.name < b.name;
            });
  return snap;
}

const MetricPoint* RegistrySnapshot::Find(const std::string& name) const {
  for (const MetricPoint& p : points) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

}  // namespace obs
}  // namespace zoomer
