#include "obs/exporter.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace zoomer {
namespace obs {

namespace {

/// JSON-safe number formatting: integers render without a fraction, and
/// non-finite values (never expected, but a gauge is caller-set) clamp to 0.
std::string FormatNumber(double v) {
  if (!std::isfinite(v)) return "0";
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string Sanitize(const std::string& name) {
  std::string out = "zoomer_";
  for (char c : name) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  return out;
}

}  // namespace

MetricsExporter::MetricsExporter(const MetricsRegistry* registry)
    : registry_(registry != nullptr ? registry : MetricsRegistry::Global()) {}

void MetricsExporter::Flatten(
    const RegistrySnapshot& snap,
    const std::function<void(const std::string&, double)>& emit) {
  for (const MetricPoint& p : snap.points) {
    switch (p.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        emit(p.name, p.value);
        break;
      case MetricKind::kHistogram:
        emit(p.name + ".count", static_cast<double>(p.hist.count()));
        emit(p.name + ".mean", p.hist.Mean());
        emit(p.name + ".p50", static_cast<double>(p.hist.Percentile(50)));
        emit(p.name + ".p90", static_cast<double>(p.hist.Percentile(90)));
        emit(p.name + ".p99", static_cast<double>(p.hist.Percentile(99)));
        emit(p.name + ".p999", static_cast<double>(p.hist.Percentile(99.9)));
        emit(p.name + ".max", static_cast<double>(p.hist.Max()));
        break;
    }
  }
}

std::string MetricsExporter::JsonLine() const {
  const RegistrySnapshot snap = registry_->Snapshot();
  std::ostringstream os;
  os << "{\"ts_monotonic_us\":" << snap.monotonic_us;
  Flatten(snap, [&os](const std::string& key, double value) {
    // Metric names are code-chosen identifiers ([a-z0-9._]) — no JSON
    // escaping needed beyond quoting.
    os << ",\"" << key << "\":" << FormatNumber(value);
  });
  os << "}";
  return os.str();
}

std::string MetricsExporter::PrometheusText() const {
  const RegistrySnapshot snap = registry_->Snapshot();
  std::ostringstream os;
  for (const MetricPoint& p : snap.points) {
    const std::string name = Sanitize(p.name);
    switch (p.kind) {
      case MetricKind::kCounter:
        os << "# TYPE " << name << " counter\n"
           << name << " " << FormatNumber(p.value) << "\n";
        break;
      case MetricKind::kGauge:
        os << "# TYPE " << name << " gauge\n"
           << name << " " << FormatNumber(p.value) << "\n";
        break;
      case MetricKind::kHistogram:
        os << "# TYPE " << name << " summary\n";
        for (const auto& [label, pct] :
             {std::pair<const char*, double>{"0.5", 50.0},
              {"0.9", 90.0},
              {"0.99", 99.0},
              {"0.999", 99.9}}) {
          os << name << "{quantile=\"" << label << "\"} "
             << p.hist.Percentile(pct) << "\n";
        }
        os << name << "_sum " << p.hist.sum() << "\n"
           << name << "_count " << p.hist.count() << "\n";
        break;
    }
  }
  return os.str();
}

Status MetricsExporter::AppendJsonLine(const std::string& path) const {
  std::ofstream out(path, std::ios::app);
  if (!out) {
    return Status::Unavailable("cannot open metrics export file: " + path);
  }
  out << JsonLine() << "\n";
  if (!out) {
    return Status::Unavailable("short write to metrics export file: " + path);
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace zoomer
