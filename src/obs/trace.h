// Lightweight tracing: RAII TraceSpan scopes record (name, start, duration,
// attr) events into a bounded ring buffer. The ring is a diagnostic tail —
// "what did the last N maintenance passes / folds / batch cuts look like" —
// not a distributed tracer; span names must be string literals (the ring
// stores the pointer, not a copy).
#ifndef ZOOMER_OBS_TRACE_H_
#define ZOOMER_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace zoomer {
namespace obs {

struct TraceEvent {
  const char* name = "";    // string literal (not owned)
  int64_t start_us = 0;     // MonotonicMicros() at span entry
  int64_t duration_us = 0;
  int64_t attr = 0;         // span-defined (segment count, batch size, ...)
};

/// Fixed-capacity ring of the most recent trace events. Mutex-guarded:
/// spans bound coarse operations (folds, sweeps, batch cuts), not
/// per-request work, so contention is negligible.
class TraceRing {
 public:
  explicit TraceRing(size_t capacity = 4096);
  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Process-global ring (leaked singleton, same rationale as
  /// MetricsRegistry::Global).
  static TraceRing* Global();

  void Record(const TraceEvent& ev);

  /// Up to `max_events` most recent events, oldest first.
  std::vector<TraceEvent> Recent(size_t max_events = SIZE_MAX) const;

  /// Total events ever recorded (recorded - capacity = dropped tail).
  uint64_t total_recorded() const;

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;  // ring_[total_ % capacity_] is next slot
  uint64_t total_ = 0;
};

/// RAII scope: stamps start on construction, records duration into `ring`
/// (and optionally a latency histogram) on destruction. `name` must be a
/// string literal or otherwise outlive the ring.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, TraceRing* ring = nullptr,
                     Histogram* latency = nullptr)
      : ring_(ring != nullptr ? ring : TraceRing::Global()),
        latency_(latency) {
    ev_.name = name;
    ev_.start_us = MonotonicMicros();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void set_attr(int64_t attr) { ev_.attr = attr; }

  ~TraceSpan() {
    ev_.duration_us = MonotonicMicros() - ev_.start_us;
    if (latency_ != nullptr) latency_->Record(ev_.duration_us);
    ring_->Record(ev_);
  }

 private:
  TraceRing* ring_;
  Histogram* latency_;
  TraceEvent ev_;
};

}  // namespace obs
}  // namespace zoomer

#endif  // ZOOMER_OBS_TRACE_H_
