// Serializes a MetricsRegistry snapshot for scraping: one flat JSON object
// per line (append-friendly; bench artifacts and the scheduled export policy
// both use it) and Prometheus-style text (counters/gauges as samples,
// histograms as summaries with quantile labels).
#ifndef ZOOMER_OBS_EXPORTER_H_
#define ZOOMER_OBS_EXPORTER_H_

#include <functional>
#include <string>

#include "common/status.h"
#include "obs/metrics.h"

namespace zoomer {
namespace obs {

class MetricsExporter {
 public:
  /// `registry` may be null for the process-global registry; must outlive
  /// the exporter.
  explicit MetricsExporter(const MetricsRegistry* registry = nullptr);

  /// One flat JSON object, no trailing newline:
  ///   {"ts_monotonic_us":..., "streaming.events_applied":123,
  ///    "serving.request_latency_us.p99":456, ...}
  /// Histograms expand to .count/.mean/.p50/.p90/.p99/.p999/.max keys.
  std::string JsonLine() const;

  /// Prometheus text exposition. Metric names are sanitized
  /// (non-alphanumerics -> '_') and prefixed "zoomer_"; histograms render as
  /// summaries (quantile-labeled samples plus _sum and _count).
  std::string PrometheusText() const;

  /// Appends JsonLine() + '\n' to `path` (creating it if needed).
  Status AppendJsonLine(const std::string& path) const;

  /// Flattens a snapshot to (key, value) pairs using the same key scheme as
  /// JsonLine — shared with the bench JSON sink.
  static void Flatten(
      const RegistrySnapshot& snap,
      const std::function<void(const std::string&, double)>& emit);

 private:
  const MetricsRegistry* registry_;
};

}  // namespace obs
}  // namespace zoomer

#endif  // ZOOMER_OBS_EXPORTER_H_
