#include "core/model_interface.h"

#include <cmath>

namespace zoomer {
namespace core {

void ScoringModel::ScorePool(graph::NodeId user, graph::NodeId query,
                             const std::vector<graph::NodeId>& pool, Rng* rng,
                             std::vector<float>* scores) {
  const auto uq = UserQueryEmbeddingInference(user, query, rng);
  const int d = embedding_dim();
  scores->resize(pool.size());
  float nu = 0.0f;
  for (int k = 0; k < d; ++k) nu += uq[k] * uq[k];
  nu = std::sqrt(nu) + 1e-9f;
  for (size_t i = 0; i < pool.size(); ++i) {
    const auto it = ItemEmbeddingInference(pool[i]);
    float dot = 0.0f, ni = 0.0f;
    for (int k = 0; k < d; ++k) {
      dot += uq[k] * it[k];
      ni += it[k] * it[k];
    }
    (*scores)[i] = dot / (nu * (std::sqrt(ni) + 1e-9f));
  }
}

}  // namespace core
}  // namespace zoomer
