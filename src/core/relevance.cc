#include "core/relevance.h"

#include <cmath>

#include "common/logging.h"

namespace zoomer {
namespace core {

namespace {
inline void Accumulate(const float* a, const float* b, int dim, double* dot,
                       double* na, double* nb) {
  double d = 0.0, x = 0.0, y = 0.0;
  for (int i = 0; i < dim; ++i) {
    d += static_cast<double>(a[i]) * b[i];
    x += static_cast<double>(a[i]) * a[i];
    y += static_cast<double>(b[i]) * b[i];
  }
  *dot = d;
  *na = x;
  *nb = y;
}
}  // namespace

double TanimotoScorer::Score(const float* focal, const float* candidate,
                             int dim) const {
  double dot, na, nb;
  Accumulate(focal, candidate, dim, &dot, &na, &nb);
  const double denom = na + nb - dot;
  if (denom <= 1e-12) return 0.0;
  return dot / denom;
}

double CosineScorer::Score(const float* focal, const float* candidate,
                           int dim) const {
  double dot, na, nb;
  Accumulate(focal, candidate, dim, &dot, &na, &nb);
  const double denom = std::sqrt(na) * std::sqrt(nb);
  if (denom <= 1e-12) return 0.0;
  return dot / denom;
}

double DotScorer::Score(const float* focal, const float* candidate,
                        int dim) const {
  double dot, na, nb;
  Accumulate(focal, candidate, dim, &dot, &na, &nb);
  return dot;
}

std::unique_ptr<RelevanceScorer> MakeRelevanceScorer(RelevanceKind kind) {
  switch (kind) {
    case RelevanceKind::kTanimoto: return std::make_unique<TanimotoScorer>();
    case RelevanceKind::kCosine: return std::make_unique<CosineScorer>();
    case RelevanceKind::kDot: return std::make_unique<DotScorer>();
  }
  ZCHECK(false) << "unknown relevance kind";
  return nullptr;
}

}  // namespace core
}  // namespace zoomer
