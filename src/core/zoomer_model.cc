#include "core/zoomer_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace zoomer {
namespace core {

using graph::HeteroGraph;
using graph::kNumNodeTypes;
using graph::NodeId;
using graph::NodeType;
using tensor::Tensor;

namespace {

// Column sum of a (n x d) matrix -> (1 x d), via ones(1,n) · M.
Tensor ColSum(const Tensor& m) {
  return MatMul(Tensor::Full(1, m.rows(), 1.0f), m);
}

// Stacks k (1 x d) rows into a (k x d) matrix.
Tensor StackRows(const std::vector<Tensor>& rows) {
  ZCHECK(!rows.empty());
  Tensor out = rows[0];
  for (size_t i = 1; i < rows.size(); ++i) out = ConcatRows(out, rows[i]);
  return out;
}

// Softmax over the rows of a (k x 1) column vector.
Tensor SoftmaxColumn(const Tensor& col) {
  return Transpose(SoftmaxRows(Transpose(col)));
}

}  // namespace

std::string ZoomerConfig::VariantName() const {
  if (!use_feature_projection && !use_edge_attention && !use_semantic_attention)
    return "GCN";
  if (!use_semantic_attention) return "Zoomer-FE";
  if (!use_edge_attention) return "Zoomer-FS";
  if (!use_feature_projection) return "Zoomer-ES";
  return "Zoomer";
}

SlotEmbeddings::SlotEmbeddings(const HeteroGraph& g, int dim, Rng* rng)
    : dim_(dim) {
  // Derive per-(type, slot) vocabulary sizes from the graph.
  std::array<std::vector<int64_t>, kNumNodeTypes> vocab;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const int t = static_cast<int>(g.node_type(v));
    auto s = g.slots(v);
    if (vocab[t].size() < s.size()) vocab[t].resize(s.size(), 0);
    for (size_t i = 0; i < s.size(); ++i) {
      ZCHECK_GE(s[i], 0) << "negative slot id";
      vocab[t][i] = std::max(vocab[t][i], s[i] + 1);
    }
  }
  for (int t = 0; t < kNumNodeTypes; ++t) {
    for (int64_t v : vocab[t]) {
      tables_[t].emplace_back(v, dim, rng);
    }
  }
}

Tensor SlotEmbeddings::Lookup(const graph::GraphView& g, NodeId node) const {
  const int t = static_cast<int>(g.node_type(node));
  auto s = g.slots(node);
  ZCHECK_EQ(s.size(), tables_[t].size());
  std::vector<Tensor> rows;
  rows.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    rows.push_back(tables_[t][i].Lookup({s[i]}));
  }
  return StackRows(rows);
}

std::vector<Tensor> SlotEmbeddings::Parameters() const {
  std::vector<Tensor> out;
  for (const auto& per_type : tables_) {
    for (const auto& e : per_type) out.push_back(e.table());
  }
  return out;
}

ZoomerModel::ZoomerModel(const HeteroGraph* g, const ZoomerConfig& config)
    : graph_(g),
      base_view_(g),
      view_(&base_view_),
      config_(config),
      sampler_(config.sampler),
      init_rng_(config.seed) {
  ZCHECK(g != nullptr);
  const int d = config_.hidden_dim;
  slots_ = SlotEmbeddings(*g, d, &init_rng_);
  for (int t = 0; t < kNumNodeTypes; ++t) {
    type_map_[t] = tensor::Linear(d, d, &init_rng_);
  }
  hop_combine_.reserve(config_.sampler.num_hops);
  for (int h = 0; h < config_.sampler.num_hops; ++h) {
    hop_combine_.emplace_back(2 * d, d, &init_rng_);
  }
  edge_attn_a_ = Tensor::Xavier(3 * d, 1, &init_rng_, /*requires_grad=*/true);
  uq_tower_ = tensor::Linear(2 * d, d, &init_rng_);
  item_tower_ = tensor::Linear(d, d, &init_rng_);
  logit_scale_ =
      Tensor::Full(1, 1, config_.logit_scale_init, /*requires_grad=*/true);
}

Tensor ZoomerModel::FeatureLevelEmbedding(NodeId node,
                                          const Tensor& focal) const {
  const Tensor h = slots_.Lookup(*view_, node);  // (n_slots x d)
  Tensor z;
  if (config_.use_feature_projection && focal.defined()) {
    // eq. 6-7: Wc = softmax(H·C / sqrt(d)); Z = H ⊙ Wc; pooled to (1 x d).
    const float inv_sqrt_d =
        1.0f / std::sqrt(static_cast<float>(config_.hidden_dim));
    Tensor scores = Scale(MatMul(h, Transpose(focal)), inv_sqrt_d);  // (n x 1)
    Tensor alpha = SoftmaxColumn(scores);
    z = ColSum(Mul(h, alpha));  // focal-weighted sum of slot latents
  } else {
    z = MeanRows(h);
  }
  const int t = static_cast<int>(view_->node_type(node));
  return Tanh(type_map_[t].Forward(z));
}

Tensor ZoomerModel::FocalVector(NodeId user, NodeId query) const {
  // Sec. V-A: retrieve focal embeddings, space-map per type, then sum.
  // (Feature projection cannot apply here — the focal vector is its input —
  // so the raw mean of slot latents is used.)
  Tensor zu = MeanRows(slots_.Lookup(*view_, user));
  Tensor zq = MeanRows(slots_.Lookup(*view_, query));
  const int tu = static_cast<int>(NodeType::kUser);
  const int tq = static_cast<int>(NodeType::kQuery);
  return Tanh(Add(type_map_[tu].Forward(zu), type_map_[tq].Forward(zq)));
}

Tensor ZoomerModel::EdgeAttentionWeights(const Tensor& ego_z,
                                         const Tensor& child_z,
                                         const Tensor& focal) const {
  // eq. 8: softmax_k LeakyReLU(a' [Z_i || Z_k || Z_c]) within one type group.
  const int64_t k = child_z.rows();
  Tensor ego_tiled = TileRows(ego_z, k);
  Tensor focal_tiled = TileRows(focal, k);
  Tensor cat = ConcatCols(ConcatCols(ego_tiled, child_z), focal_tiled);
  Tensor scores = LeakyRelu(MatMul(cat, edge_attn_a_), config_.leaky_slope);
  return SoftmaxColumn(scores);  // (k x 1)
}

Tensor ZoomerModel::AggregateNode(const RoiSubgraph& roi, int index,
                                  const Tensor& focal) const {
  const RoiNode& node = roi.nodes[index];
  Tensor z_self = FeatureLevelEmbedding(node.id, focal);
  const int cb = roi.children_begin[index];
  const int ce = roi.children_end[index];
  if (cb >= ce) return z_self;  // leaf: feature-level embedding only

  // Recurse into children, grouped by node type (eq. 9 aggregates within
  // type; eq. 10-11 combines across types).
  std::array<std::vector<Tensor>, kNumNodeTypes> by_type;
  for (int c = cb; c < ce; ++c) {
    const int t = static_cast<int>(view_->node_type(roi.nodes[c].id));
    by_type[t].push_back(AggregateNode(roi, c, focal));
  }

  std::vector<Tensor> type_embeddings;
  for (int t = 0; t < kNumNodeTypes; ++t) {
    if (by_type[t].empty()) continue;
    Tensor z_children = StackRows(by_type[t]);  // (k_t x d)
    Tensor e_t;
    if (config_.use_edge_attention) {
      Tensor alpha = EdgeAttentionWeights(z_self, z_children, focal);
      e_t = MatMul(Transpose(alpha), z_children);  // (1 x d)
    } else {
      e_t = MeanRows(z_children);  // mean pooling (GCN / Zoomer-FS)
    }
    type_embeddings.push_back(e_t);
  }

  Tensor h_agg;
  if (type_embeddings.empty()) {
    h_agg = Tensor::Zeros(1, config_.hidden_dim);
  } else if (config_.use_semantic_attention) {
    // eq. 10-11: t_k = cos(C_i, E_ik); H_i = sum_k E_ik * t_k. The cosine
    // weights are softmax-normalized across types so they stay positive and
    // sum to one (raw signed cosines at initialization randomly cancel the
    // aggregate and stall optimization).
    std::vector<Tensor> cosines;
    for (const auto& e_t : type_embeddings) {
      cosines.push_back(RowwiseCosine(z_self, e_t));  // (1 x 1)
    }
    Tensor cos_row = cosines[0];
    for (size_t i = 1; i < cosines.size(); ++i) {
      cos_row = ConcatCols(cos_row, cosines[i]);
    }
    Tensor weights = SoftmaxRows(Scale(cos_row, 2.0f));  // (1 x T)
    for (size_t i = 0; i < type_embeddings.size(); ++i) {
      Tensor w = Rows(Transpose(weights), {static_cast<int64_t>(i)});
      Tensor weighted = Mul(type_embeddings[i], w);
      h_agg = h_agg.defined() ? Add(h_agg, weighted) : weighted;
    }
  } else {
    // mean pooling across types (Zoomer-FE / GCN)
    for (const auto& e_t : type_embeddings) {
      h_agg = h_agg.defined() ? Add(h_agg, e_t) : e_t;
    }
    h_agg = Scale(h_agg, 1.0f / static_cast<float>(type_embeddings.size()));
  }

  // GraphSage-style combine of self and aggregated neighborhood (one Linear
  // per hop depth) with a residual connection to the aggregate so neighbor
  // embedding signal reaches the towers undiluted.
  const int hop = std::min<int>(node.depth,
                                static_cast<int>(hop_combine_.size()) - 1);
  Tensor mixed = Tanh(hop_combine_[hop].Forward(ConcatCols(z_self, h_agg)));
  return Add(mixed, h_agg);
}

Tensor ZoomerModel::EgoEmbedding(NodeId ego, NodeId user, NodeId query,
                                 Rng* rng) const {
  std::vector<float> fc =
      sampler_.FocalVector(*view_, {user, query});  // content space (eq. 5)
  RoiSubgraph roi = sampler_.Sample(*view_, ego, fc, rng);
  Tensor focal = FocalVector(user, query);  // latent space (Sec. V-A)
  return AggregateNode(roi, 0, focal);
}

Tensor ZoomerModel::UserQueryEmbedding(NodeId user, NodeId query,
                                       Rng* rng) const {
  // Both egos share one focal vector, so their ROIs expand as one batch:
  // one snapshot pin, one scratch, and a shared relevance memo (minibatch
  // assembly in the trainer funnels through here per example).
  const std::vector<float> fc = sampler_.FocalVector(*view_, {user, query});
  const NodeId egos[2] = {user, query};
  std::vector<RoiSubgraph> rois = sampler_.SampleBatch(*view_, egos, fc, rng);
  Tensor focal = FocalVector(user, query);  // latent space (Sec. V-A)
  Tensor hu = AggregateNode(rois[0], 0, focal);
  Tensor hq = AggregateNode(rois[1], 0, focal);
  return Tanh(uq_tower_.Forward(ConcatCols(hu, hq)));
}

Tensor ZoomerModel::ItemEmbedding(NodeId item) const {
  ZCHECK_EQ(static_cast<int>(view_->node_type(item)),
            static_cast<int>(NodeType::kItem));
  Tensor z = FeatureLevelEmbedding(item, Tensor());  // base model: no focal
  return Tanh(item_tower_.Forward(z));
}

Tensor ZoomerModel::ScoreLogit(const data::Example& ex, Rng* rng) {
  Tensor uq = UserQueryEmbedding(ex.user, ex.query, rng);
  Tensor it = ItemEmbedding(ex.item);
  return Mul(RowwiseCosine(uq, it), logit_scale_);
}

std::vector<float> ZoomerModel::UserQueryEmbeddingInference(NodeId user,
                                                            NodeId query,
                                                            Rng* rng) {
  Tensor uq = UserQueryEmbedding(user, query, rng);
  return {uq.data(), uq.data() + uq.size()};
}

std::vector<float> ZoomerModel::ItemEmbeddingInference(NodeId item) {
  Tensor it = ItemEmbedding(item);
  return {it.data(), it.data() + it.size()};
}

std::vector<EdgeAttentionRecord> ZoomerModel::ExplainEdgeWeights(
    NodeId ego, NodeId user, NodeId query, Rng* rng) const {
  std::vector<float> fc = sampler_.FocalVector(*view_, {user, query});
  RoiSubgraph roi = sampler_.Sample(*view_, ego, fc, rng);
  Tensor focal = FocalVector(user, query);
  Tensor z_self = FeatureLevelEmbedding(ego, focal);

  std::vector<EdgeAttentionRecord> records;
  const int cb = roi.children_begin[0];
  const int ce = roi.children_end[0];
  if (cb >= ce) return records;
  std::array<std::vector<int>, kNumNodeTypes> by_type;
  for (int c = cb; c < ce; ++c) {
    by_type[static_cast<int>(view_->node_type(roi.nodes[c].id))].push_back(c);
  }
  for (int t = 0; t < kNumNodeTypes; ++t) {
    if (by_type[t].empty()) continue;
    std::vector<Tensor> rows;
    for (int c : by_type[t]) {
      rows.push_back(FeatureLevelEmbedding(roi.nodes[c].id, focal));
    }
    Tensor alpha = EdgeAttentionWeights(z_self, StackRows(rows), focal);
    for (size_t i = 0; i < by_type[t].size(); ++i) {
      records.push_back({roi.nodes[by_type[t][i]].id,
                         static_cast<NodeType>(t),
                         alpha.at(static_cast<int64_t>(i), 0)});
    }
  }
  return records;
}

std::vector<Tensor> ZoomerModel::Parameters() const {
  std::vector<Tensor> out = slots_.Parameters();
  for (const auto& l : type_map_) {
    auto p = l.Parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  for (const auto& l : hop_combine_) {
    auto p = l.Parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  out.push_back(edge_attn_a_);
  auto pu = uq_tower_.Parameters();
  out.insert(out.end(), pu.begin(), pu.end());
  auto pi = item_tower_.Parameters();
  out.insert(out.end(), pi.begin(), pi.end());
  out.push_back(logit_scale_);
  return out;
}

}  // namespace core
}  // namespace zoomer
