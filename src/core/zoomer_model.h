// The Zoomer model (paper Sec. V): focal-vector construction, ROI-based
// multi-level attention networks, and the twin-tower CTR scorer.
//
// Pipeline per request {u, q, i} (Fig. 5):
//   1. focal points = {u, q}; focal vector = sum of space-mapped focal
//      embeddings (Sec. V-A);
//   2. ROI subgraphs for the ego user and ego query are sampled with the
//      focal-biased sampler (Sec. V-C);
//   3. multi-level attention aggregates each ROI bottom-up (Sec. V-D):
//        - feature projection  (eq. 6-7): per-slot latent vectors reweighed
//          by softmax(H·C/sqrt(d)) against the focal vector;
//        - edge reweighing     (eq. 8-9): within-type neighbor softmax over
//          LeakyReLU(a' [Z_i || Z_j || Z_c]);
//        - semantic combination (eq. 10-11): per-type embeddings combined
//          with cosine weights against the ego's feature-level embedding;
//   4. the user-query tower merges the two ego embeddings; the item tower is
//      a base (non-Zoomer) embedding model (Sec. V-B: only the user-query
//      side runs Zoomer online); pCTR = scale * cos(uq, item).
//
// Each attention level can be disabled independently to realize the Fig. 8
// ablation variants (GCN / Zoomer-FE / -FS / -ES).
#ifndef ZOOMER_CORE_ZOOMER_MODEL_H_
#define ZOOMER_CORE_ZOOMER_MODEL_H_

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/model_interface.h"
#include "core/roi_sampler.h"
#include "data/dataset.h"
#include "graph/hetero_graph.h"
#include "tensor/nn.h"
#include "tensor/tensor.h"

namespace zoomer {
namespace core {

struct ZoomerConfig {
  int hidden_dim = 16;
  RoiSamplerOptions sampler;
  /// Ablation switches (Fig. 8): full Zoomer has all three on.
  bool use_feature_projection = true;  // off => Zoomer-ES variant
  bool use_edge_attention = true;      // off => Zoomer-FS variant
  bool use_semantic_attention = true;  // off => Zoomer-FE variant
  float leaky_slope = 0.2f;
  float logit_scale_init = 5.0f;
  uint64_t seed = 1;

  /// Convenience constructors for the ablation variants.
  static ZoomerConfig Full() { return {}; }
  static ZoomerConfig Gcn() {
    ZoomerConfig c;
    c.use_feature_projection = false;
    c.use_edge_attention = false;
    c.use_semantic_attention = false;
    return c;
  }
  std::string VariantName() const;
};

/// Per-(type, slot) embedding tables with vocabularies derived from the graph.
class SlotEmbeddings {
 public:
  SlotEmbeddings() = default;
  SlotEmbeddings(const graph::HeteroGraph& g, int dim, Rng* rng);

  /// (num_slots(node) x dim) matrix of the node's feature latent vectors,
  /// resolved through any GraphView (static CSR or streaming overlay).
  tensor::Tensor Lookup(const graph::GraphView& g, graph::NodeId node) const;
  tensor::Tensor Lookup(const graph::HeteroGraph& g, graph::NodeId node) const {
    return Lookup(graph::CsrGraphView(g), node);
  }

  std::vector<tensor::Tensor> Parameters() const;
  int dim() const { return dim_; }

 private:
  int dim_ = 0;
  // tables_[type][slot]
  std::array<std::vector<tensor::Embedding>, graph::kNumNodeTypes> tables_;
};

/// Edge-attention weight attached to one ROI child (for interpretability).
struct EdgeAttentionRecord {
  graph::NodeId neighbor = -1;
  graph::NodeType type = graph::NodeType::kItem;
  float weight = 0.0f;
};

class ZoomerModel : public ScoringModel {
 public:
  ZoomerModel(const graph::HeteroGraph* g, const ZoomerConfig& config);

  /// Space-mapped sum of the focal-point embeddings (1 x d), Sec. V-A.
  tensor::Tensor FocalVector(graph::NodeId user, graph::NodeId query) const;

  /// Zoomer embedding of the ego node under the given focal vector: samples
  /// the ROI and runs multi-level attention bottom-up. (1 x d).
  tensor::Tensor EgoEmbedding(graph::NodeId ego, graph::NodeId user,
                              graph::NodeId query, Rng* rng) const;

  /// User-query tower output (1 x d).
  tensor::Tensor UserQueryEmbedding(graph::NodeId user, graph::NodeId query,
                                    Rng* rng) const;

  std::string name() const override { return config_.VariantName(); }
  int embedding_dim() const override { return config_.hidden_dim; }

  /// Base item-tower output (1 x d); no Zoomer on the item side (Sec. V-B).
  tensor::Tensor ItemEmbedding(graph::NodeId item) const;

  /// CTR logit for one example (1 x 1): scale * cos(uq, item).
  tensor::Tensor ScoreLogit(const data::Example& ex, Rng* rng) override;

  /// Detached float embeddings for retrieval-style evaluation/serving.
  std::vector<float> UserQueryEmbeddingInference(graph::NodeId user,
                                                 graph::NodeId query,
                                                 Rng* rng) override;
  std::vector<float> ItemEmbeddingInference(graph::NodeId item) override;
  float logit_scale() const { return logit_scale_.item(); }

  /// Edge-level attention weights over the 1-hop ROI children of `ego`
  /// under focal {user, query}: the coupling coefficients of Fig. 13.
  std::vector<EdgeAttentionRecord> ExplainEdgeWeights(graph::NodeId ego,
                                                      graph::NodeId user,
                                                      graph::NodeId query,
                                                      Rng* rng) const;

  std::vector<tensor::Tensor> Parameters() const override;
  const ZoomerConfig& config() const { return config_; }
  const RoiSampler& sampler() const { return sampler_; }
  const graph::HeteroGraph& graph() const { return *graph_; }

  /// Routes all sampling and feature lookups through `view` — attach a
  /// streaming::DynamicGraphView so training-time ROI construction scores
  /// base+delta neighborhoods without waiting for Compact(). The view must
  /// describe the same node space as the construction graph and outlive the
  /// model; nullptr restores the static CSR view.
  void AttachGraphView(const graph::GraphView* view) {
    view_ = view != nullptr ? view : &base_view_;
  }
  const graph::GraphView& view() const { return *view_; }

 private:
  /// Feature-level node embedding (eq. 6-7) + per-type space mapping.
  tensor::Tensor FeatureLevelEmbedding(graph::NodeId node,
                                       const tensor::Tensor& focal) const;

  /// Recursive multi-level attention over the ROI tree (eq. 8-11).
  tensor::Tensor AggregateNode(const RoiSubgraph& roi, int index,
                               const tensor::Tensor& focal) const;

  /// Within-type edge attention returning the (k x 1) weight column.
  tensor::Tensor EdgeAttentionWeights(const tensor::Tensor& ego_z,
                                      const tensor::Tensor& child_z,
                                      const tensor::Tensor& focal) const;

  const graph::HeteroGraph* graph_;
  graph::CsrGraphView base_view_;       // default static view over graph_
  const graph::GraphView* view_;        // active view (never null)
  ZoomerConfig config_;
  RoiSampler sampler_;
  mutable Rng init_rng_;

  SlotEmbeddings slots_;
  std::array<tensor::Linear, graph::kNumNodeTypes> type_map_;  // space mapping
  std::vector<tensor::Linear> hop_combine_;  // [z_self || H_agg] -> d, per hop
  tensor::Tensor edge_attn_a_;               // (3d x 1) attention vector
  tensor::Linear uq_tower_;                  // [h_u || h_q] -> d
  tensor::Linear item_tower_;                // base item model
  tensor::Tensor logit_scale_;               // learnable temperature
};

}  // namespace core
}  // namespace zoomer

#endif  // ZOOMER_CORE_ZOOMER_MODEL_H_
