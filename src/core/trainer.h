// Single-process training/evaluation loop for ZoomerModel and the metrics
// reported in the paper's offline experiments (AUC, MAE, RMSE, HitRate@K).
// The distributed worker/PS pipeline lives in src/ps; this trainer is the
// reference implementation used by most benches.
#ifndef ZOOMER_CORE_TRAINER_H_
#define ZOOMER_CORE_TRAINER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/random.h"
#include "core/model_interface.h"
#include "data/dataset.h"
#include "eval/metrics.h"
#include "tensor/optimizer.h"

namespace zoomer {
namespace core {

struct TrainOptions {
  int epochs = 2;
  int batch_size = 128;
  float learning_rate = 0.01f;
  /// Paper Sec. VII-A: focal cross-entropy loss with focal weight 2.
  bool use_focal_loss = true;
  float focal_gamma = 2.0f;
  /// L2 regularization weight (paper: 1e-6 for Zoomer).
  float weight_decay = 1e-6f;
  /// Cap on examples per epoch (0 = all); used by benches to equalize cost.
  int max_examples_per_epoch = 0;
  uint64_t seed = 1234;
  bool verbose = false;
};

struct EpochStats {
  int epoch = 0;
  double mean_loss = 0.0;
  double seconds = 0.0;     // cumulative wall time at epoch end
  double test_auc = 0.0;    // filled when eval_per_epoch
};

struct TrainResult {
  std::vector<EpochStats> epochs;
  double total_seconds = 0.0;
  int64_t examples_seen = 0;
  /// Streaming freshness: times the dynamic graph view was re-pinned at a
  /// minibatch boundary, and the graph epoch visible when training ended
  /// (both 0 for a purely static run).
  int64_t graph_refreshes = 0;
  uint64_t graph_epoch = 0;
};

struct EvalResult {
  double auc = 0.0;
  double mae = 0.0;
  double rmse = 0.0;
  double hitrate_at[3] = {0.0, 0.0, 0.0};  // K = 100, 200, 300
  static constexpr int kHitRateKs[3] = {100, 200, 300};
};

/// Trains and evaluates any ScoringModel (ZoomerModel or a baseline).
class ZoomerTrainer {
 public:
  ZoomerTrainer(ScoringModel* model, TrainOptions options);

  /// Runs the configured number of epochs of minibatch Adam over the train
  /// split. If eval_per_epoch is set, fills EpochStats::test_auc after each
  /// epoch (used by the time-to-AUC scalability experiment, Fig. 10).
  TrainResult Train(const data::RetrievalDataset& ds,
                    bool eval_per_epoch = false);

  /// Like Train, but stops as soon as the test AUC reaches `target_auc`.
  /// Returns the wall seconds spent (Fig. 10 protocol).
  double TrainUntilAuc(const data::RetrievalDataset& ds, double target_auc,
                       int max_epochs);

  /// CTR metrics on the test split.
  EvalResult Evaluate(const data::RetrievalDataset& ds,
                      int max_examples = 0) const;

  /// HitRate@{100,200,300} over the item candidate pool, computed with
  /// twin-tower retrieval (uq embedding against precomputed item matrix).
  void EvaluateHitRate(const data::RetrievalDataset& ds, EvalResult* result,
                       int max_positives = 200) const;

  /// Streaming freshness hooks. `refresh` runs on the training thread at
  /// minibatch boundaries whenever NotifyGraphUpdate() was raised since the
  /// last boundary; it should re-pin the model's dynamic graph view and
  /// return the epoch now visible. Wire both ends with
  /// streaming::AttachTrainingFreshness (which registers NotifyGraphUpdate
  /// as an ingest-pipeline update listener) — mini-batches drawn mid-ingest
  /// then sample freshly arrived edges without an intervening Compact().
  void SetGraphRefreshHook(std::function<uint64_t()> refresh) {
    graph_refresh_ = std::move(refresh);
  }
  /// Thread-safe signal that new delta batches landed (ingest threads).
  void NotifyGraphUpdate() {
    graph_updates_.fetch_add(1, std::memory_order_acq_rel);
  }

 private:
  double RunEpoch(const std::vector<data::Example>& examples, Rng* rng);
  void MaybeRefreshGraphView();

  ScoringModel* model_;
  TrainOptions options_;
  tensor::Adam optimizer_;

  std::function<uint64_t()> graph_refresh_;
  std::atomic<int64_t> graph_updates_{0};
  int64_t consumed_graph_updates_ = 0;
  int64_t graph_refreshes_ = 0;
  uint64_t last_graph_epoch_ = 0;
};

}  // namespace core
}  // namespace zoomer

#endif  // ZOOMER_CORE_TRAINER_H_
