// Focal-relevance scoring (paper eq. 5). The default is the extended-Jaccard
// (Tanimoto) coefficient the paper specifies:
//     e_ij = Fc·Fj / (|Fc|^2 + |Fj|^2 - Fc·Fj)
// The paper notes eq. 5 "can be replaced with other relevance score equations
// like cosine distance", so the scorer is pluggable; cosine and dot-product
// variants are provided and ablated in bench_micro_kernels.
#ifndef ZOOMER_CORE_RELEVANCE_H_
#define ZOOMER_CORE_RELEVANCE_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/graph_view.h"

namespace zoomer {
namespace core {

enum class RelevanceKind { kTanimoto, kCosine, kDot };

/// Stateless scorer between a focal vector and a candidate node's content
/// vector, both of length dim. Higher = more relevant.
class RelevanceScorer {
 public:
  virtual ~RelevanceScorer() = default;
  virtual double Score(const float* focal, const float* candidate,
                       int dim) const = 0;
  virtual std::string name() const = 0;

  /// Scores a node's content vector against the focal vector through any
  /// GraphView — static CSR or streaming delta overlay — so eq. 5 sees the
  /// same feature source the sampler iterates.
  double ScoreNode(const graph::GraphView& g, const std::vector<float>& focal,
                   graph::NodeId node) const {
    return Score(focal.data(), g.content(node), g.content_dim());
  }
};

/// Factory for the built-in scorers.
std::unique_ptr<RelevanceScorer> MakeRelevanceScorer(RelevanceKind kind);

/// Extended Jaccard / Tanimoto similarity (paper eq. 5).
class TanimotoScorer : public RelevanceScorer {
 public:
  double Score(const float* focal, const float* candidate,
               int dim) const override;
  std::string name() const override { return "tanimoto"; }
};

/// Cosine similarity.
class CosineScorer : public RelevanceScorer {
 public:
  double Score(const float* focal, const float* candidate,
               int dim) const override;
  std::string name() const override { return "cosine"; }
};

/// Raw dot product.
class DotScorer : public RelevanceScorer {
 public:
  double Score(const float* focal, const float* candidate,
               int dim) const override;
  std::string name() const override { return "dot"; }
};

}  // namespace core
}  // namespace zoomer

#endif  // ZOOMER_CORE_RELEVANCE_H_
