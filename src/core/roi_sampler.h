// Focal-biased graph sampling for ROI construction (paper Sec. V-C).
//
// For each recommendation request, Zoomer assigns the {user, query} pair as
// focal points, sums their content features into a focal vector Fc, scores
// every neighbor of the ego node with the relevance function (eq. 5), and
// keeps the top-k per hop. The result is the Region-of-Interest subgraph fed
// into the multi-level attention networks. Uniform sampling (GraphSage
// style) is available for baselines/ablations via SamplerKind::kUniform.
//
// Sampling runs over the graph::GraphView interface, so the same code serves
// the offline CSR and the streaming delta overlay: a trainer attached to the
// ingest pipeline scores freshly arrived edges without waiting for a
// compaction. Plain HeteroGraph overloads wrap the CSR adapter for callers
// that never stream.
#ifndef ZOOMER_CORE_ROI_SAMPLER_H_
#define ZOOMER_CORE_ROI_SAMPLER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "core/relevance.h"
#include "graph/graph_view.h"
#include "graph/hetero_graph.h"

namespace zoomer {
namespace core {

enum class SamplerKind {
  kFocalTopK,    // paper: top-k by focal relevance
  kUniform,      // uniform without replacement
  kWeightedEdge, // alias-table draw by edge weight (interaction frequency)
  kRandomWalk,   // PinSage-style: top-k by visit count of short random walks
};

/// One node of the sampled ROI tree.
struct RoiNode {
  graph::NodeId id = -1;
  int depth = 0;        // 0 = ego
  int parent = -1;      // index into RoiSubgraph::nodes (-1 for ego)
  float edge_weight = 1.0f;  // weight of the edge to the parent
  graph::RelationKind kind = graph::RelationKind::kClick;
  double relevance = 0.0;    // focal-relevance score used for selection
};

/// Tree-shaped sampled neighborhood rooted at the ego node. Children of node
/// i are the contiguous range [children_begin[i], children_end[i]).
struct RoiSubgraph {
  std::vector<RoiNode> nodes;           // breadth-first order, nodes[0] = ego
  std::vector<int> children_begin;
  std::vector<int> children_end;

  int size() const { return static_cast<int>(nodes.size()); }
  graph::NodeId ego() const { return nodes.empty() ? -1 : nodes[0].id; }
};

struct RoiSamplerOptions {
  int k = 10;          // neighbors kept per node per hop
  int num_hops = 2;    // paper: 2-hop for Taobao graphs, 1-hop for MovieLens
  int max_nodes = 4096;  // hard budget guard
  SamplerKind kind = SamplerKind::kFocalTopK;
  RelevanceKind relevance = RelevanceKind::kTanimoto;
  /// Exclude the immediate parent from a node's sampled children to avoid
  /// trivially bouncing back along the same edge.
  bool exclude_parent = true;
  /// Per-hop shrink factor on k: the ROI narrows as it deepens (paper
  /// Fig. 5 stage 1 shows a tighter 2-hop expansion). 1.0 = constant k.
  double hop_k_decay = 1.0;
  /// kRandomWalk parameters (PinSage: short walks, visit-count importance).
  int walk_count = 32;
  int walk_length = 3;
};

/// Focal-biased (and baseline) neighborhood sampler.
class RoiSampler {
 public:
  explicit RoiSampler(RoiSamplerOptions options);

  /// Computes the focal vector Fc = sum of focal-node content vectors
  /// (paper Sec. V-B: focal points are the {user, query} pair).
  std::vector<float> FocalVector(const graph::GraphView& g,
                                 const std::vector<graph::NodeId>& focal) const;
  std::vector<float> FocalVector(
      const graph::HeteroGraph& g,
      const std::vector<graph::NodeId>& focal) const {
    return FocalVector(graph::CsrGraphView(g), focal);
  }

  /// Samples the ROI subgraph rooted at `ego` under focal vector `fc`.
  /// Implemented as a batch of one, so single- and batched-ego sampling are
  /// bit-identical by construction.
  RoiSubgraph Sample(const graph::GraphView& g, graph::NodeId ego,
                     const std::vector<float>& fc, Rng* rng) const;
  RoiSubgraph Sample(const graph::HeteroGraph& g, graph::NodeId ego,
                     const std::vector<float>& fc, Rng* rng) const {
    return Sample(graph::CsrGraphView(g), ego, fc, rng);
  }

  /// Frontier-at-once batch expansion: all egos share the focal vector fc
  /// (the serving case — both the user and query egos of one request score
  /// against the same Fc). Hop h of every ego expands in one pass reusing
  /// one NeighborScratch, one per-batch relevance memo (ScoreNode is pure
  /// in (fc, node), so cross-ego repeats are scored once), and — when g is
  /// a dynamic view — the one snapshot the view pinned, instead of
  /// re-resolving per ego. Draw order interleaves egos per hop; with one
  /// ego it degenerates to the classic order, and for deterministic kinds
  /// (kFocalTopK) the per-ego result is identical at any batch size.
  /// Records sampler.batch_size / sampler.batch_latency_us histograms.
  std::vector<RoiSubgraph> SampleBatch(const graph::GraphView& g,
                                       std::span<const graph::NodeId> egos,
                                       const std::vector<float>& fc,
                                       Rng* rng) const;
  std::vector<RoiSubgraph> SampleBatch(const graph::HeteroGraph& g,
                                       std::span<const graph::NodeId> egos,
                                       const std::vector<float>& fc,
                                       Rng* rng) const {
    return SampleBatch(graph::CsrGraphView(g), egos, fc, rng);
  }

  /// Scores a single neighbor against the focal vector (exposed for tests
  /// and the interpretability experiment).
  double Relevance(const graph::GraphView& g, const std::vector<float>& fc,
                   graph::NodeId candidate) const;
  double Relevance(const graph::HeteroGraph& g, const std::vector<float>& fc,
                   graph::NodeId candidate) const {
    return Relevance(graph::CsrGraphView(g), fc, candidate);
  }

  const RoiSamplerOptions& options() const { return options_; }

 private:
  /// Selects up to k(hop) children of `node`, excluding `parent`. The
  /// neighbor block is resolved through `scratch` (reused across calls);
  /// kFocalTopK relevance lookups go through the batch-shared `memo`.
  void SelectChildren(const graph::GraphView& g, graph::NodeId node,
                      graph::NodeId parent, const std::vector<float>& fc,
                      int hop, Rng* rng, graph::NeighborScratch* scratch,
                      std::unordered_map<graph::NodeId, double>* memo,
                      std::vector<RoiNode>* out) const;

  RoiSamplerOptions options_;
  std::unique_ptr<RelevanceScorer> scorer_;
};

}  // namespace core
}  // namespace zoomer

#endif  // ZOOMER_CORE_ROI_SAMPLER_H_
