#include "core/trainer.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/timer.h"

namespace zoomer {
namespace core {

using data::Example;
using tensor::Tensor;

ZoomerTrainer::ZoomerTrainer(ScoringModel* model, TrainOptions options)
    : model_(model),
      options_(options),
      optimizer_(model->Parameters(), options.learning_rate, 0.9f, 0.999f,
                 1e-8f, options.weight_decay) {}

void ZoomerTrainer::MaybeRefreshGraphView() {
  if (!graph_refresh_) return;
  const int64_t seen = graph_updates_.load(std::memory_order_acquire);
  if (seen == consumed_graph_updates_) return;
  consumed_graph_updates_ = seen;
  last_graph_epoch_ = graph_refresh_();
  ++graph_refreshes_;
}

double ZoomerTrainer::RunEpoch(const std::vector<Example>& examples,
                               Rng* rng) {
  const bool trainable = !model_->Parameters().empty();
  double loss_sum = 0.0;
  int64_t count = 0;
  int in_batch = 0;
  if (trainable) optimizer_.ZeroGrad();
  MaybeRefreshGraphView();
  for (const auto& ex : examples) {
    Tensor logit = model_->ScoreLogit(ex, rng);
    Tensor label = Tensor::Scalar(ex.label);
    Tensor loss = options_.use_focal_loss
                      ? FocalBceWithLogits(logit, label, options_.focal_gamma)
                      : BceWithLogits(logit, label);
    loss_sum += loss.item();
    ++count;
    if (trainable) {
      // Scale so a full batch averages example losses.
      Tensor scaled =
          Scale(loss, 1.0f / static_cast<float>(options_.batch_size));
      scaled.Backward();
    }
    if (++in_batch >= options_.batch_size) {
      if (trainable) {
        optimizer_.Step();
        optimizer_.ZeroGrad();
      }
      in_batch = 0;
      // Batch boundary: re-pin the dynamic graph view if ingest landed new
      // delta batches, so the next minibatch samples the fresh edges.
      MaybeRefreshGraphView();
    }
  }
  if (trainable && in_batch > 0) optimizer_.Step();
  return count > 0 ? loss_sum / static_cast<double>(count) : 0.0;
}

TrainResult ZoomerTrainer::Train(const data::RetrievalDataset& ds,
                                 bool eval_per_epoch) {
  TrainResult result;
  // Freshness stats are per-run (a long-lived trainer may Train repeatedly
  // against one pipeline); pending update signals intentionally carry over
  // so pre-run ingest is observed at the first batch boundary.
  graph_refreshes_ = 0;
  last_graph_epoch_ = 0;
  Rng rng(options_.seed);
  WallTimer timer;
  std::vector<Example> examples = ds.train;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    model_->OnEpochBegin(ds, &rng);
    rng.Shuffle(&examples);
    std::vector<Example> epoch_examples = examples;
    if (options_.max_examples_per_epoch > 0 &&
        static_cast<int>(epoch_examples.size()) >
            options_.max_examples_per_epoch) {
      epoch_examples.resize(options_.max_examples_per_epoch);
    }
    EpochStats stats;
    stats.epoch = epoch;
    stats.mean_loss = RunEpoch(epoch_examples, &rng);
    stats.seconds = timer.ElapsedSeconds();
    result.examples_seen += static_cast<int64_t>(epoch_examples.size());
    if (eval_per_epoch) {
      stats.test_auc = Evaluate(ds, /*max_examples=*/2000).auc;
    }
    if (options_.verbose) {
      ZLOG(INFO) << model_->name() << " epoch " << epoch
                 << " loss=" << stats.mean_loss << " t=" << stats.seconds
                 << "s"
                 << (eval_per_epoch ? " auc=" + std::to_string(stats.test_auc)
                                    : "");
    }
    result.epochs.push_back(stats);
  }
  result.total_seconds = timer.ElapsedSeconds();
  // One final catch-up so graph_epoch reflects batches that landed during
  // the tail of the last epoch.
  MaybeRefreshGraphView();
  result.graph_refreshes = graph_refreshes_;
  result.graph_epoch = last_graph_epoch_;
  return result;
}

double ZoomerTrainer::TrainUntilAuc(const data::RetrievalDataset& ds,
                                    double target_auc, int max_epochs) {
  Rng rng(options_.seed);
  WallTimer timer;
  std::vector<Example> examples = ds.train;
  for (int epoch = 0; epoch < max_epochs; ++epoch) {
    model_->OnEpochBegin(ds, &rng);
    rng.Shuffle(&examples);
    std::vector<Example> epoch_examples = examples;
    if (options_.max_examples_per_epoch > 0 &&
        static_cast<int>(epoch_examples.size()) >
            options_.max_examples_per_epoch) {
      epoch_examples.resize(options_.max_examples_per_epoch);
    }
    RunEpoch(epoch_examples, &rng);
    const double auc = Evaluate(ds, /*max_examples=*/1500).auc;
    if (auc >= target_auc) break;
  }
  return timer.ElapsedSeconds();
}

EvalResult ZoomerTrainer::Evaluate(const data::RetrievalDataset& ds,
                                   int max_examples) const {
  EvalResult result;
  Rng rng(options_.seed + 17);
  std::vector<float> scores, labels;
  size_t n = ds.test.size();
  if (max_examples > 0) n = std::min(n, static_cast<size_t>(max_examples));
  scores.reserve(n);
  labels.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const auto& ex = ds.test[i];
    const float logit = model_->ScoreLogit(ex, &rng).item();
    const float p = 1.0f / (1.0f + std::exp(-logit));
    scores.push_back(p);
    labels.push_back(ex.label);
  }
  result.auc = eval::Auc(scores, labels);
  result.mae = eval::Mae(scores, labels);
  result.rmse = eval::Rmse(scores, labels);
  return result;
}

void ZoomerTrainer::EvaluateHitRate(const data::RetrievalDataset& ds,
                                    EvalResult* result,
                                    int max_positives) const {
  Rng rng(options_.seed + 29);
  const size_t pool = ds.all_items.size();
  const int d = model_->embedding_dim();

  // Twin-tower fast path: precompute item embeddings once.
  std::vector<std::vector<float>> item_emb;
  std::vector<size_t> item_index;
  const bool twin = model_->has_twin_tower();
  if (twin) {
    item_emb.resize(pool);
    item_index.assign(ds.graph.num_nodes(), SIZE_MAX);
    for (size_t i = 0; i < pool; ++i) {
      item_emb[i] = model_->ItemEmbeddingInference(ds.all_items[i]);
      item_index[ds.all_items[i]] = i;
    }
  }
  auto cosine = [&](const std::vector<float>& a, const std::vector<float>& b) {
    float dot = 0, na = 0, nb = 0;
    for (int k = 0; k < d; ++k) {
      dot += a[k] * b[k];
      na += a[k] * a[k];
      nb += b[k] * b[k];
    }
    return dot / (std::sqrt(na) * std::sqrt(nb) + 1e-9f);
  };

  std::vector<int> positive_ranks;
  for (const auto& ex : ds.test) {
    if (ex.label < 0.5f) continue;
    if (static_cast<int>(positive_ranks.size()) >= max_positives) break;
    if (twin) {
      const auto uq =
          model_->UserQueryEmbeddingInference(ex.user, ex.query, &rng);
      const size_t target = item_index[ex.item];
      if (target == SIZE_MAX) continue;
      const float target_score = cosine(uq, item_emb[target]);
      int rank = 0;
      for (size_t i = 0; i < pool; ++i) {
        if (i == target) continue;
        if (cosine(uq, item_emb[i]) >= target_score) ++rank;
      }
      positive_ranks.push_back(rank);
    } else {
      std::vector<float> scores;
      model_->ScorePool(ex.user, ex.query, ds.all_items, &rng, &scores);
      float target_score = 0.0f;
      bool found = false;
      for (size_t i = 0; i < pool; ++i) {
        if (ds.all_items[i] == ex.item) {
          target_score = scores[i];
          found = true;
          break;
        }
      }
      if (!found) continue;
      int rank = 0;
      for (size_t i = 0; i < pool; ++i) {
        if (ds.all_items[i] == ex.item) continue;
        if (scores[i] >= target_score) ++rank;
      }
      positive_ranks.push_back(rank);
    }
  }
  for (int k = 0; k < 3; ++k) {
    result->hitrate_at[k] =
        eval::HitRateAtK(positive_ranks, EvalResult::kHitRateKs[k]);
  }
}

}  // namespace core
}  // namespace zoomer
