#include "core/roi_sampler.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "obs/metrics.h"

namespace zoomer {
namespace core {

using graph::GraphView;
using graph::NeighborBlock;
using graph::NeighborScratch;
using graph::NodeId;

namespace {

double ScoreMemoized(const RelevanceScorer& scorer, const GraphView& g,
                     const std::vector<float>& fc, NodeId candidate,
                     std::unordered_map<NodeId, double>* memo) {
  const auto it = memo->find(candidate);
  if (it != memo->end()) return it->second;
  const double s = scorer.ScoreNode(g, fc, candidate);
  memo->emplace(candidate, s);
  return s;
}

}  // namespace

RoiSampler::RoiSampler(RoiSamplerOptions options)
    : options_(options), scorer_(MakeRelevanceScorer(options.relevance)) {
  ZCHECK_GT(options_.k, 0);
  ZCHECK_GE(options_.num_hops, 1);
}

std::vector<float> RoiSampler::FocalVector(
    const GraphView& g, const std::vector<NodeId>& focal) const {
  ZCHECK(!focal.empty());
  std::vector<float> fc(g.content_dim(), 0.0f);
  for (NodeId f : focal) {
    const float* c = g.content(f);
    for (int d = 0; d < g.content_dim(); ++d) fc[d] += c[d];
  }
  return fc;
}

double RoiSampler::Relevance(const GraphView& g, const std::vector<float>& fc,
                             NodeId candidate) const {
  return scorer_->ScoreNode(g, fc, candidate);
}

void RoiSampler::SelectChildren(const GraphView& g, NodeId node,
                                NodeId parent, const std::vector<float>& fc,
                                int hop, Rng* rng, NeighborScratch* scratch,
                                std::unordered_map<NodeId, double>* memo,
                                std::vector<RoiNode>* out) const {
  const int k_at_hop = std::max(
      1, static_cast<int>(options_.k *
                          std::pow(options_.hop_k_decay, hop - 1)));
  const NeighborBlock nb = g.Neighbors(node, scratch);
  const int64_t deg = nb.size();
  if (deg == 0) return;

  auto emit = [&](int64_t pos, double relevance) {
    RoiNode child;
    child.id = nb.ids[pos];
    child.edge_weight = nb.weights[pos];
    child.kind = nb.kinds[pos];
    child.relevance = relevance;
    out->push_back(child);
  };

  switch (options_.kind) {
    case SamplerKind::kFocalTopK: {
      // Score every neighbor against the focal vector (paper eq. 5) and keep
      // the top-k. partial_sort keeps this O(deg log k).
      std::vector<std::pair<double, int64_t>> scored;
      scored.reserve(deg);
      for (int64_t p = 0; p < deg; ++p) {
        if (options_.exclude_parent && nb.ids[p] == parent) continue;
        scored.emplace_back(ScoreMemoized(*scorer_, g, fc, nb.ids[p], memo),
                            p);
      }
      const int take = std::min<int>(k_at_hop, scored.size());
      std::partial_sort(scored.begin(), scored.begin() + take, scored.end(),
                        [](const auto& a, const auto& b) {
                          if (a.first != b.first) return a.first > b.first;
                          return a.second < b.second;  // deterministic tiebreak
                        });
      for (int i = 0; i < take; ++i) emit(scored[i].second, scored[i].first);
      break;
    }
    case SamplerKind::kUniform: {
      // Uniform without replacement over positions.
      std::vector<int64_t> pos(deg);
      std::iota(pos.begin(), pos.end(), int64_t{0});
      rng->Shuffle(&pos);
      int taken = 0;
      for (int64_t p : pos) {
        if (taken >= k_at_hop) break;
        if (options_.exclude_parent && nb.ids[p] == parent) continue;
        emit(p, 0.0);
        ++taken;
      }
      break;
    }
    case SamplerKind::kRandomWalk: {
      // PinSage-style importance sampling: run short random walks from the
      // node (weighted draws through the view) and keep the k most-visited
      // direct neighbors, with visit counts as importance scores.
      std::vector<int> visits(deg, 0);
      for (int w = 0; w < options_.walk_count; ++w) {
        NodeId cur = node;
        for (int step = 0; step < options_.walk_length; ++step) {
          const NodeId nxt = g.SampleNeighbor(cur, rng);
          if (nxt < 0) break;
          if (cur == node) {
            // Count which direct neighbor this walk left through.
            for (int64_t p = 0; p < deg; ++p) {
              if (nb.ids[p] == nxt) {
                ++visits[p];
                break;
              }
            }
          }
          cur = nxt;
        }
      }
      std::vector<std::pair<double, int64_t>> scored;
      scored.reserve(deg);
      for (int64_t p = 0; p < deg; ++p) {
        if (options_.exclude_parent && nb.ids[p] == parent) continue;
        if (visits[p] == 0) continue;
        scored.emplace_back(static_cast<double>(visits[p]), p);
      }
      const int take = std::min<int>(k_at_hop, scored.size());
      std::partial_sort(scored.begin(), scored.begin() + take, scored.end(),
                        [](const auto& a, const auto& b) {
                          if (a.first != b.first) return a.first > b.first;
                          return a.second < b.second;
                        });
      for (int i = 0; i < take; ++i) emit(scored[i].second, scored[i].first);
      break;
    }
    case SamplerKind::kWeightedEdge: {
      // Distinct weighted draws (with bounded retries), batched through the
      // view so the dynamic path resolves its overlay lock once. One extra
      // draw absorbs a possible parent hit.
      const int want = k_at_hop + (options_.exclude_parent ? 1 : 0);
      int taken = 0;
      for (NodeId drawn : g.SampleDistinctNeighbors(node, want, rng)) {
        if (taken >= k_at_hop) break;
        if (options_.exclude_parent && drawn == parent) continue;
        // Locate position for weight/kind metadata (first match).
        int64_t p = -1;
        for (int64_t q = 0; q < deg; ++q) {
          if (nb.ids[q] == drawn) {
            p = q;
            break;
          }
        }
        if (p < 0) continue;
        emit(p, nb.weights[p]);
        ++taken;
      }
      break;
    }
  }
}

RoiSubgraph RoiSampler::Sample(const GraphView& g, NodeId ego,
                               const std::vector<float>& fc, Rng* rng) const {
  return std::move(SampleBatch(g, {&ego, 1}, fc, rng)[0]);
}

std::vector<RoiSubgraph> RoiSampler::SampleBatch(
    const GraphView& g, std::span<const NodeId> egos,
    const std::vector<float>& fc, Rng* rng) const {
  static obs::Histogram* batch_size_hist =
      obs::MetricsRegistry::Global()->GetHistogram("sampler.batch_size");
  static obs::Histogram* batch_latency_hist =
      obs::MetricsRegistry::Global()->GetHistogram("sampler.batch_latency_us");
  const auto t0 = std::chrono::steady_clock::now();

  ZCHECK_EQ(static_cast<int>(fc.size()), g.content_dim());
  std::vector<RoiSubgraph> rois(egos.size());
  // Shared across the batch: one scratch, one relevance memo (all egos
  // score against the same fc), and — when g is a dynamic view — the one
  // snapshot the view pinned, held for the whole expansion.
  NeighborScratch scratch;
  std::unordered_map<NodeId, double> memo;
  std::vector<size_t> frontier_begin(egos.size(), 0);
  for (size_t e = 0; e < egos.size(); ++e) {
    const NodeId ego = egos[e];
    ZCHECK(ego >= 0 && ego < g.num_nodes());
    RoiNode root;
    root.id = ego;
    root.depth = 0;
    root.parent = -1;
    root.relevance = ScoreMemoized(*scorer_, g, fc, ego, &memo);
    rois[e].nodes.push_back(root);
  }

  // Breadth-first, frontier-at-once: hop h of every ego expands before any
  // ego moves to hop h+1, so all hop-h children score in one pass.
  for (int hop = 1; hop <= options_.num_hops; ++hop) {
    for (size_t e = 0; e < egos.size(); ++e) {
      RoiSubgraph& roi = rois[e];
      const size_t frontier_end = roi.nodes.size();
      for (size_t fi = frontier_begin[e]; fi < frontier_end; ++fi) {
        if (roi.size() >= options_.max_nodes) break;
        std::vector<RoiNode> children;
        const NodeId parent_of_node =
            roi.nodes[fi].parent >= 0 ? roi.nodes[roi.nodes[fi].parent].id
                                      : -1;
        SelectChildren(g, roi.nodes[fi].id, parent_of_node, fc, hop, rng,
                       &scratch, &memo, &children);
        for (auto& c : children) {
          if (roi.size() >= options_.max_nodes) break;
          c.depth = hop;
          c.parent = static_cast<int>(fi);
          roi.nodes.push_back(c);
        }
      }
      frontier_begin[e] = frontier_end;
    }
  }

  // Child ranges: nodes are in BFS order and children of one parent are
  // contiguous by construction.
  for (RoiSubgraph& roi : rois) {
    roi.children_begin.assign(roi.size(), 0);
    roi.children_end.assign(roi.size(), 0);
    for (int i = 1; i < roi.size(); ++i) {
      const int p = roi.nodes[i].parent;
      if (roi.children_end[p] == 0) roi.children_begin[p] = i;
      roi.children_end[p] = i + 1;
    }
  }

  batch_size_hist->Record(static_cast<int64_t>(egos.size()));
  batch_latency_hist->Record(std::chrono::duration_cast<std::chrono::microseconds>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count());
  return rois;
}

}  // namespace core
}  // namespace zoomer
