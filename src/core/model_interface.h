// Common interface implemented by ZoomerModel and every baseline
// recommender, so a single trainer/evaluator drives all offline experiments.
#ifndef ZOOMER_CORE_MODEL_INTERFACE_H_
#define ZOOMER_CORE_MODEL_INTERFACE_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "data/dataset.h"
#include "tensor/tensor.h"

namespace zoomer {
namespace core {

/// A twin-tower-style CTR scoring model. Differentiable models return a
/// logit tensor attached to their parameter graph; non-learned models
/// (e.g., Pixie) return a constant tensor and an empty parameter list.
class ScoringModel {
 public:
  virtual ~ScoringModel() = default;

  virtual std::string name() const = 0;

  /// CTR logit for one example (1x1 tensor; may require grad).
  virtual tensor::Tensor ScoreLogit(const data::Example& ex, Rng* rng) = 0;

  /// Trainable parameters (empty for non-learned models).
  virtual std::vector<tensor::Tensor> Parameters() const = 0;

  /// Retrieval embeddings for HitRate@K / ANN serving. Both sides share
  /// embedding_dim(). Models without a twin-tower decomposition may instead
  /// override ScorePool.
  virtual int embedding_dim() const = 0;
  virtual std::vector<float> UserQueryEmbeddingInference(graph::NodeId user,
                                                         graph::NodeId query,
                                                         Rng* rng) = 0;
  virtual std::vector<float> ItemEmbeddingInference(graph::NodeId item) = 0;

  /// Scores a pool of candidate items for one (user, query) request. The
  /// default computes cosine between the tower embeddings; non-twin-tower
  /// models (Pixie) override with their own scoring.
  virtual void ScorePool(graph::NodeId user, graph::NodeId query,
                         const std::vector<graph::NodeId>& pool, Rng* rng,
                         std::vector<float>* scores);

  /// Twin-tower models let the evaluator precompute item embeddings once;
  /// models without that decomposition (e.g., Pixie) return false and are
  /// scored through ScorePool instead.
  virtual bool has_twin_tower() const { return true; }

  /// Hook invoked once per training epoch (e.g., PinnerSage re-clusters its
  /// user medoids). Default: no-op.
  virtual void OnEpochBegin(const data::RetrievalDataset& /*ds*/,
                            Rng* /*rng*/) {}
};

}  // namespace core
}  // namespace zoomer

#endif  // ZOOMER_CORE_MODEL_INTERFACE_H_
