#include "engine/distributed_graph_engine.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/logging.h"
#include "graph/graph_view.h"
#include "obs/metrics.h"
#include "streaming/dynamic_hetero_graph.h"
#include "streaming/graph_delta_log.h"

namespace zoomer {
namespace engine {

using graph::NodeId;

namespace {

/// Distinct weighted draws via the alias table (constant-time per draw);
/// the shared GraphView helper provides the bounded-retry dedup the
/// production engine's draw-with-dedup uses. Takes the view abstraction so
/// the static path (CsrGraphView over the offline HeteroGraph) and the
/// streaming path (SegmentedCsrView over a snapshot's pinned segmented
/// base) share one implementation.
SampleResponse SampleFromCsr(const graph::GraphView& g,
                             const SampleRequest& req) {
  SampleResponse resp;
  if (g.degree(req.node) == 0) return resp;
  Rng rng(req.rng_seed);
  const std::vector<NodeId> seen =
      g.SampleDistinctNeighbors(req.node, req.k, &rng);
  graph::NeighborScratch scratch;
  const graph::NeighborBlock block = g.Neighbors(req.node, &scratch);
  for (NodeId nb : seen) {
    resp.neighbors.push_back(nb);
    float w = 0.0f;
    for (int64_t p = 0; p < block.size(); ++p) {
      if (block.ids[p] == nb) {
        w = block.weights[p];
        break;
      }
    }
    resp.weights.push_back(w);
  }
  return resp;
}

/// Projects a delta batch onto one shard's replica view. Edge events are
/// kept when either endpoint hashes to the shard (ApplyBatch stores a
/// half-edge under both endpoints; the replica only ever serves nodes it
/// owns, so foreign-endpoint half-edges are inert). Node events are kept
/// unconditionally: they are the id-space record, and replica graphs extend
/// their id-space strictly in order — dropping a foreign mint would leave an
/// allocation gap that rejects every later batch.
streaming::DeltaBatch FilterBatchForShard(const streaming::DeltaBatch& b,
                                          int shard, int num_shards) {
  streaming::DeltaBatch out;
  out.epoch = b.epoch;
  out.node_events = b.node_events;
  for (const streaming::EdgeEvent& ev : b.events) {
    if (GraphShard::NodeShard(ev.src, num_shards) == shard ||
        GraphShard::NodeShard(ev.dst, num_shards) == shard) {
      out.events.push_back(ev);
    }
  }
  return out;
}

}  // namespace

GraphShard::GraphShard(const graph::HeteroGraph* g, int shard_id,
                       int num_shards)
    : graph_(g), shard_id_(shard_id), num_shards_(num_shards) {
  ZCHECK(g != nullptr);
  for (NodeId v = 0; v < g->num_nodes(); ++v) {
    if (Owns(v)) owned_.push_back(v);
  }
}

StatusOr<SampleResponse> GraphShard::Sample(const SampleRequest& req) const {
  return SampleFrom(req, dynamic_.load(std::memory_order_acquire));
}

namespace {

/// Streaming-path draw off an already-pinned epoch snapshot: freshly
/// ingested edges (and nodes born online) are sampleable shard-side. The
/// snapshot's base is also the compaction-current CSR, so untouched nodes
/// stay on the cheap alias path without materializing a merged list.
/// Factored out of SampleFrom so SampleManyFrom serves a whole batch under
/// one snapshot pin.
StatusOr<SampleResponse> SampleFromSnapshot(
    const streaming::DynamicHeteroGraph::Snapshot& snap,
    const SampleRequest& req) {
  if (req.node >= snap.num_nodes()) {
    return Status::InvalidArgument("node id out of range");
  }
  if (snap.DeltaDegree(req.node) == 0) {
    if (!snap.InBase(req.node)) return SampleResponse{};  // isolated
    return SampleFromCsr(graph::SegmentedCsrView(snap.base()), req);
  }
  std::vector<graph::NeighborEntry> merged;
  snap.Neighbors(req.node, &merged);
  SampleResponse resp;
  Rng rng(req.rng_seed);
  for (NodeId nb : snap.SampleDistinctNeighbors(req.node, req.k, &rng)) {
    resp.neighbors.push_back(nb);
    float w = 0.0f;
    for (const auto& entry : merged) {
      if (entry.neighbor == nb) {
        w = entry.weight;
        break;
      }
    }
    resp.weights.push_back(w);
  }
  return resp;
}

}  // namespace

StatusOr<SampleResponse> GraphShard::SampleFrom(
    const SampleRequest& req,
    const streaming::DynamicHeteroGraph* view) const {
  if (req.node < 0) {
    return Status::InvalidArgument("node id out of range");
  }
  if (!Owns(req.node)) {
    return Status::FailedPrecondition("node not owned by this shard");
  }
  if (view != nullptr) {
    auto snap = view->MakeSnapshot();
    return SampleFromSnapshot(snap, req);
  }
  if (req.node >= graph_->num_nodes()) {
    return Status::InvalidArgument("node id out of range");
  }
  return SampleFromCsr(graph::CsrGraphView(*graph_), req);
}

std::vector<StatusOr<SampleResponse>> GraphShard::SampleMany(
    std::span<const SampleRequest> reqs) const {
  return SampleManyFrom(reqs, dynamic_.load(std::memory_order_acquire));
}

std::vector<StatusOr<SampleResponse>> GraphShard::SampleManyFrom(
    std::span<const SampleRequest> reqs,
    const streaming::DynamicHeteroGraph* view) const {
  std::vector<StatusOr<SampleResponse>> out;
  out.reserve(reqs.size());
  if (view == nullptr) {
    for (const SampleRequest& req : reqs) out.push_back(SampleFrom(req, nullptr));
    return out;
  }
  // One epoch snapshot (base pin + hot-cache reader pin) for the batch.
  const auto snap = view->MakeSnapshot();
  for (const SampleRequest& req : reqs) {
    if (req.node < 0) {
      out.push_back(Status::InvalidArgument("node id out of range"));
    } else if (!Owns(req.node)) {
      out.push_back(Status::FailedPrecondition("node not owned by this shard"));
    } else {
      out.push_back(SampleFromSnapshot(snap, req));
    }
  }
  return out;
}

size_t GraphShard::MemoryBytes() const {
  // Ownership list plus this shard's slice of the CSR arrays.
  size_t bytes = owned_.size() * sizeof(NodeId);
  for (NodeId v : owned_) {
    bytes += static_cast<size_t>(graph_->degree(v)) *
             (sizeof(NodeId) + sizeof(float) + 1);
  }
  return bytes;
}

DistributedGraphEngine::DistributedGraphEngine(const graph::HeteroGraph* g,
                                               EngineOptions options)
    : graph_(g), options_(options) {
  ZCHECK_GT(options_.num_shards, 0);
  ZCHECK_GT(options_.replication_factor, 0);
  registry_ = options_.registry != nullptr ? options_.registry
                                           : obs::MetricsRegistry::Global();
  sample_requests_ = registry_->GetCounter("engine.sample_requests");
  update_events_ = registry_->GetCounter("engine.update_events");
  sample_latency_us_ = registry_->GetHistogram("engine.sample_latency_us");
  request_latency_us_ = registry_->GetHistogram("engine.request_latency_us");
  sample_batch_size_ = registry_->GetHistogram("engine.sample_batch_size");
  auto track = [this](const std::string& name, const void* view) {
    registered_.emplace_back(name, view);
  };
  registry_->RegisterCounter("engine.stale_fallback_reads",
                             &stale_fallback_reads_);
  track("engine.stale_fallback_reads", &stale_fallback_reads_);
  registry_->RegisterCounter("engine.killed_inflight_failures",
                             &killed_inflight_failures_);
  track("engine.killed_inflight_failures", &killed_inflight_failures_);
  registry_->RegisterGauge("engine.dead_replicas", &dead_replicas_gauge_,
                           obs::GaugeAgg::kSum);
  track("engine.dead_replicas", &dead_replicas_gauge_);

  shard_update_events_ =
      std::make_unique<PaddedCounter[]>(options_.num_shards);
  for (int s = 0; s < options_.num_shards; ++s) {
    for (int r = 0; r < options_.replication_factor; ++r) {
      auto rep = std::make_unique<Replica>();
      rep->shard = std::make_unique<GraphShard>(g, s, options_.num_shards);
      rep->worker = std::make_unique<ThreadPool>(1);
      rep->shard_id = s;
      rep->replica_id = r;
      const std::string suffix =
          ".shard" + std::to_string(s) + ".r" + std::to_string(r);
      // Each gauge exports under its per-replica name and the aggregate:
      // worst-replica lag is the honest fleet lag (max), per-replica queue
      // depths partition the engine's total backlog (sum).
      registry_->RegisterGauge("engine.replica_watermark_lag" + suffix,
                               &rep->lag_gauge);
      track("engine.replica_watermark_lag" + suffix, &rep->lag_gauge);
      registry_->RegisterGauge("engine.replica_watermark_lag",
                               &rep->lag_gauge);
      track("engine.replica_watermark_lag", &rep->lag_gauge);
      registry_->RegisterGauge("engine.queue_depth" + suffix,
                               &rep->queue_gauge);
      track("engine.queue_depth" + suffix, &rep->queue_gauge);
      registry_->RegisterGauge("engine.queue_depth", &rep->queue_gauge,
                               obs::GaugeAgg::kSum);
      track("engine.queue_depth", &rep->queue_gauge);
      replicas_.push_back(std::move(rep));
    }
  }
}

DistributedGraphEngine::~DistributedGraphEngine() {
  shutdown_.store(true, std::memory_order_release);
  for (auto& bus : buses_) {
    {
      std::lock_guard<std::mutex> lock(bus->mu);
    }
    bus->cv.notify_all();
  }
  for (auto& rep : replicas_) {
    if (rep->applier.joinable()) rep->applier.join();
    if (log_ != nullptr && rep->log_consumer >= 0) {
      log_->UnregisterConsumer(rep->log_consumer);
    }
  }
  for (const auto& [name, view] : registered_) {
    registry_->Unregister(name, view);
  }
  // replicas_ destruction drains each worker pool (ThreadPool dtor joins
  // after in-flight samples finish) before freeing the shard and dyn view.
}

void DistributedGraphEngine::AttachDynamicGraph(
    const streaming::DynamicHeteroGraph* dynamic) {
  ZCHECK(buses_.empty())
      << "AttachDynamicGraph is the legacy shared-graph mode; the engine is "
         "already in replica-group (ConnectUpdateFanout) mode";
  for (auto& rep : replicas_) rep->shard->AttachDynamicGraph(dynamic);
}

void DistributedGraphEngine::ConnectUpdateFanout(
    streaming::GraphDeltaLog* log,
    const streaming::DynamicHeteroGraph* primary) {
  ZCHECK(log != nullptr && primary != nullptr);
  ZCHECK(buses_.empty()) << "ConnectUpdateFanout must be called once";
  log_ = log;
  primary_.store(primary, std::memory_order_release);
  buses_.reserve(options_.num_shards);
  for (int s = 0; s < options_.num_shards; ++s) {
    buses_.push_back(std::make_unique<ShardBus>());
  }
  for (auto& rep : replicas_) {
    // Every replica builds its own delta view over the shared immutable
    // base and replays the log independently; its registered consumer
    // cursor pins the log tail it has not applied yet (survives kills).
    rep->dyn = std::make_unique<streaming::DynamicHeteroGraph>(graph_);
    rep->shard->AttachDynamicGraph(rep->dyn.get());
    rep->log_consumer = log_->RegisterConsumer(0);
    Replica* raw = rep.get();
    rep->applier = std::thread([this, raw] { ApplierLoop(raw); });
  }
}

void DistributedGraphEngine::RecordShardUpdate(int shard, int64_t num_events) {
  if (shard < 0 || shard >= options_.num_shards) return;
  shard_update_events_[shard].v.fetch_add(num_events,
                                          std::memory_order_relaxed);
  update_events_->Add(num_events);
}

void DistributedGraphEngine::PublishDelta(int shard, uint64_t epoch,
                                          bool all_shards) {
  if (buses_.empty()) return;  // fanout not connected (legacy mode)
  auto notify = [this, epoch](int s) {
    ShardBus* bus = buses_[s].get();
    {
      std::lock_guard<std::mutex> lock(bus->mu);
      bus->published = std::max(bus->published, epoch);
    }
    bus->cv.notify_all();
  };
  if (all_shards) {
    for (int s = 0; s < options_.num_shards; ++s) notify(s);
  } else if (shard >= 0 && shard < options_.num_shards) {
    notify(shard);
  }
}

void DistributedGraphEngine::RefreshReplicaGauges(Replica* rep) const {
  const streaming::DynamicHeteroGraph* primary =
      primary_.load(std::memory_order_acquire);
  if (primary != nullptr) {
    const uint64_t pw = primary->watermark_epoch();
    const uint64_t w = rep->watermark.load(std::memory_order_acquire);
    rep->lag_gauge.Set(pw > w ? static_cast<double>(pw - w) : 0.0);
  }
  rep->queue_gauge.Set(
      static_cast<double>(rep->inflight.load(std::memory_order_relaxed)));
}

void DistributedGraphEngine::SetDeadGauge() {
  dead_replicas_gauge_.Set(
      static_cast<double>(dead_replicas_.load(std::memory_order_relaxed)));
}

void DistributedGraphEngine::ApplierLoop(Replica* rep) {
  ShardBus* bus = buses_[rep->shard_id].get();
  uint64_t cursor = rep->watermark.load(std::memory_order_relaxed);
  while (!shutdown_.load(std::memory_order_acquire)) {
    {
      std::unique_lock<std::mutex> lock(bus->mu);
      // The timeout doubles as a poll: cross-shard edge batches (dst owned
      // here, src routed elsewhere) and revival only move the *primary*
      // watermark / alive flag, not necessarily this bus.
      bus->cv.wait_for(lock, std::chrono::microseconds(500), [&] {
        return shutdown_.load(std::memory_order_acquire) ||
               (rep->alive.load(std::memory_order_acquire) &&
                bus->published > cursor);
      });
    }
    if (shutdown_.load(std::memory_order_acquire)) break;
    // Keep the lag gauge honest even while dead — a killed replica's lag
    // grows with the primary until ReviveReplica's replay drains it.
    RefreshReplicaGauges(rep);
    if (!rep->alive.load(std::memory_order_acquire)) continue;
    const streaming::DynamicHeteroGraph* primary =
        primary_.load(std::memory_order_acquire);
    // Bound the replay read by the primary's watermark: a watermark-covered
    // epoch is guaranteed fully appended AND applied to the primary, so
    // ReadSince cannot miss a batch that lands in its shard vector late.
    const uint64_t target = primary->watermark_epoch();
    if (target <= cursor) continue;
    const std::vector<streaming::DeltaBatch> batches =
        log_->ReadSince(cursor, target);
    for (const streaming::DeltaBatch& b : batches) {
      if (!rep->alive.load(std::memory_order_acquire)) break;  // killed
      const streaming::DeltaBatch filtered =
          FilterBatchForShard(b, rep->shard_id, options_.num_shards);
      if (!filtered.node_events.empty() || !filtered.events.empty()) {
        const Status st = rep->dyn->ApplyBatch(filtered);
        if (!st.ok()) {
          ZLOG(ERROR) << "replica shard" << rep->shard_id << ".r"
                      << rep->replica_id << " failed to apply epoch "
                      << b.epoch << ": " << st.message();
        }
      }
      cursor = b.epoch;
      rep->watermark.store(cursor, std::memory_order_release);
    }
    if (rep->alive.load(std::memory_order_acquire)) {
      // The full round applied: advance over epoch holes (capacity-rejected
      // mints burn an epoch without a batch) up to the read bound.
      cursor = std::max(cursor, target);
      rep->watermark.store(cursor, std::memory_order_release);
    }
    log_->AdvanceConsumer(rep->log_consumer, cursor);
    RefreshReplicaGauges(rep);
  }
}

void DistributedGraphEngine::KillReplica(int shard, int r) {
  ZCHECK(shard >= 0 && shard < options_.num_shards);
  ZCHECK(r >= 0 && r < options_.replication_factor);
  Replica* rep = replica(shard, r);
  if (rep->alive.exchange(false, std::memory_order_acq_rel)) {
    dead_replicas_.fetch_add(1, std::memory_order_acq_rel);
    SetDeadGauge();
    if (!buses_.empty()) buses_[shard]->cv.notify_all();
    ZLOG(INFO) << "killed replica shard" << shard << ".r" << r;
  }
}

void DistributedGraphEngine::ReviveReplica(int shard, int r) {
  ZCHECK(shard >= 0 && shard < options_.num_shards);
  ZCHECK(r >= 0 && r < options_.replication_factor);
  Replica* rep = replica(shard, r);
  if (!rep->alive.exchange(true, std::memory_order_acq_rel)) {
    dead_replicas_.fetch_sub(1, std::memory_order_acq_rel);
    SetDeadGauge();
    if (!buses_.empty()) buses_[shard]->cv.notify_all();
    ZLOG(INFO) << "revived replica shard" << shard << ".r" << r
               << " (replaying from epoch "
               << rep->watermark.load(std::memory_order_acquire) << ")";
  }
}

bool DistributedGraphEngine::IsReplicaAlive(int shard, int r) const {
  return replica(shard, r)->alive.load(std::memory_order_acquire);
}

uint64_t DistributedGraphEngine::ReplicaWatermark(int shard, int r) const {
  return replica(shard, r)->watermark.load(std::memory_order_acquire);
}

bool DistributedGraphEngine::AwaitReplicaCatchUp(int shard, int r,
                                                 int64_t timeout_micros) const {
  const Replica* rep = replica(shard, r);
  const int64_t deadline = obs::MonotonicMicros() + timeout_micros;
  while (true) {
    const streaming::DynamicHeteroGraph* primary =
        primary_.load(std::memory_order_acquire);
    const uint64_t pw = primary != nullptr ? primary->watermark_epoch() : 0;
    if (rep->watermark.load(std::memory_order_acquire) >= pw) return true;
    if (obs::MonotonicMicros() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

DistributedGraphEngine::RoutedTarget DistributedGraphEngine::RouteToReplica(
    int shard, uint64_t min_epoch) {
  const int rf = options_.replication_factor;
  const bool fanout = !buses_.empty();
  const streaming::DynamicHeteroGraph* primary =
      primary_.load(std::memory_order_acquire);

  // Freshness floor: the caller's read-your-writes epoch, raised by the
  // engine-wide staleness bound when configured (a replica trailing the
  // primary by more than the bound never serves).
  uint64_t floor = min_epoch;
  if (fanout && options_.freshness_bound_epochs > 0 && primary != nullptr) {
    const uint64_t pw = primary->watermark_epoch();
    if (pw > options_.freshness_bound_epochs) {
      floor = std::max(floor, pw - options_.freshness_bound_epochs);
    }
  }

  auto pick = [&](bool check_floor) -> Replica* {
    Replica* best = nullptr;
    int64_t best_load = 0;
    for (int r = 0; r < rf; ++r) {
      Replica* rep = replica(shard, r);
      if (!rep->alive.load(std::memory_order_acquire)) continue;
      if (check_floor && fanout && floor > 0 &&
          rep->watermark.load(std::memory_order_acquire) < floor) {
        continue;
      }
      const int64_t load = rep->inflight.load(std::memory_order_relaxed);
      if (best == nullptr || load < best_load) {
        best = rep;
        best_load = load;
      }
    }
    return best;
  };

  RoutedTarget target;
  target.rep = pick(/*check_floor=*/true);
  if (target.rep == nullptr) {
    // No alive replica satisfies the floor right now: wait a bounded
    // interval for an applier to catch up, then degrade gracefully.
    const int64_t deadline =
        obs::MonotonicMicros() + options_.freshness_wait_micros;
    while (target.rep == nullptr && obs::MonotonicMicros() < deadline) {
      std::this_thread::sleep_for(std::chrono::microseconds(20));
      target.rep = pick(/*check_floor=*/true);
    }
    if (target.rep == nullptr) {
      target.rep = pick(/*check_floor=*/false);
      if (target.rep != nullptr && fanout && floor > 0 && primary != nullptr) {
        // Serve off the primary graph through this replica's worker: the
        // primary's watermark covers every applied epoch, so the floor is
        // met deterministically — at the price of reading the shared view
        // (counted; watch engine.stale_fallback_reads stay near zero).
        target.use_primary = true;
        stale_fallback_reads_.Add(1);
      }
    }
  }
  return target;
}

std::future<StatusOr<SampleResponse>> DistributedGraphEngine::SampleAsync(
    const SampleRequest& req) {
  const int shard = GraphShard::NodeShard(req.node, options_.num_shards);
  const streaming::DynamicHeteroGraph* primary =
      primary_.load(std::memory_order_acquire);
  const RoutedTarget target = RouteToReplica(shard, req.min_epoch);
  Replica* rep = target.rep;
  const bool use_primary = target.use_primary;
  if (rep == nullptr) {
    // The whole replica group is dead — fail fast instead of queueing on a
    // worker that cannot serve.
    std::promise<StatusOr<SampleResponse>> broken;
    broken.set_value(
        Status::Unavailable("all replicas of the owning shard are dead"));
    return broken.get_future();
  }

  rep->requests.fetch_add(1, std::memory_order_relaxed);
  rep->inflight.fetch_add(1, std::memory_order_relaxed);
  rep->queue_gauge.Set(
      static_cast<double>(rep->inflight.load(std::memory_order_relaxed)));
  sample_requests_->Add(1);
  const int rpc_micros = options_.simulated_rpc_micros;
  const int64_t submit_us = obs::MonotonicMicros();
  obs::Histogram* service_hist = sample_latency_us_;
  obs::Histogram* request_hist = request_latency_us_;
  obs::Counter* killed = &killed_inflight_failures_;
  return rep->worker->Submit([rep, req, rpc_micros, use_primary, primary,
                              submit_us, service_hist, request_hist, killed] {
    // The simulated network+serialization delay runs on the worker thread
    // *before* the service-time window opens: it contributes queueing
    // pressure (load), while engine.sample_latency_us stays a pure
    // service-time reading and engine.request_latency_us captures the
    // client-observed total (queue + rpc + service).
    if (rpc_micros > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(rpc_micros));
    }
    StatusOr<SampleResponse> result = [&]() -> StatusOr<SampleResponse> {
      if (!rep->alive.load(std::memory_order_acquire)) {
        // Killed after routing but before service — the detection window.
        killed->Add(1);
        return Status::Unavailable("replica killed while request in flight");
      }
      const int64_t start_us = obs::MonotonicMicros();
      auto r = use_primary ? rep->shard->SampleFrom(req, primary)
                           : rep->shard->Sample(req);
      service_hist->Record(obs::MonotonicMicros() - start_us);
      return r;
    }();
    request_hist->Record(obs::MonotonicMicros() - submit_us);
    rep->inflight.fetch_sub(1, std::memory_order_relaxed);
    rep->queue_gauge.Set(
        static_cast<double>(rep->inflight.load(std::memory_order_relaxed)));
    return result;
  });
}

StatusOr<SampleResponse> DistributedGraphEngine::Sample(
    const SampleRequest& req) {
  return SampleAsync(req).get();
}

std::vector<StatusOr<SampleResponse>> DistributedGraphEngine::SampleMany(
    std::span<const SampleRequest> reqs) {
  std::vector<StatusOr<SampleResponse>> out(
      reqs.size(),
      StatusOr<SampleResponse>(Status::Unavailable("request not routed")));
  if (reqs.empty()) return out;

  // Group request indices by owning shard (order preserved within a group).
  std::vector<std::vector<size_t>> groups(options_.num_shards);
  for (size_t i = 0; i < reqs.size(); ++i) {
    groups[GraphShard::NodeShard(reqs[i].node, options_.num_shards)]
        .push_back(i);
  }

  const streaming::DynamicHeteroGraph* primary =
      primary_.load(std::memory_order_acquire);
  std::vector<std::future<void>> pending;
  for (int s = 0; s < options_.num_shards; ++s) {
    const std::vector<size_t>& idx = groups[s];
    if (idx.empty()) continue;
    // One routing decision per shard-group; the floor is the strictest
    // read-your-writes epoch in the group.
    uint64_t floor = 0;
    for (size_t i : idx) floor = std::max(floor, reqs[i].min_epoch);
    const RoutedTarget target = RouteToReplica(s, floor);
    Replica* rep = target.rep;
    if (rep == nullptr) {
      for (size_t i : idx) {
        out[i] = Status::Unavailable("all replicas of the owning shard are dead");
      }
      continue;
    }
    const int64_t n = static_cast<int64_t>(idx.size());
    rep->requests.fetch_add(n, std::memory_order_relaxed);
    rep->inflight.fetch_add(n, std::memory_order_relaxed);
    rep->queue_gauge.Set(
        static_cast<double>(rep->inflight.load(std::memory_order_relaxed)));
    sample_requests_->Add(n);
    sample_batch_size_->Record(n);
    auto batch = std::make_shared<std::vector<SampleRequest>>();
    batch->reserve(idx.size());
    for (size_t i : idx) batch->push_back(reqs[i]);
    const bool use_primary = target.use_primary;
    const int rpc_micros = options_.simulated_rpc_micros;
    const int64_t submit_us = obs::MonotonicMicros();
    obs::Histogram* service_hist = sample_latency_us_;
    obs::Histogram* request_hist = request_latency_us_;
    obs::Counter* killed = &killed_inflight_failures_;
    // Writes land on disjoint out[] slots per group, and every future is
    // drained below before out is read — so the workers may scatter their
    // group's results directly.
    pending.push_back(rep->worker->Submit([rep, batch, idx, rpc_micros,
                                           use_primary, primary, submit_us,
                                           service_hist, request_hist, killed,
                                           &out] {
      if (rpc_micros > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(rpc_micros));
      }
      if (!rep->alive.load(std::memory_order_acquire)) {
        killed->Add(static_cast<int64_t>(idx.size()));
        for (size_t i : idx) {
          out[i] = Status::Unavailable("replica killed while request in flight");
        }
      } else {
        const int64_t start_us = obs::MonotonicMicros();
        auto results = use_primary
                           ? rep->shard->SampleManyFrom(*batch, primary)
                           : rep->shard->SampleMany(*batch);
        service_hist->Record(obs::MonotonicMicros() - start_us);
        for (size_t j = 0; j < idx.size(); ++j) {
          out[idx[j]] = std::move(results[j]);
        }
      }
      request_hist->Record(obs::MonotonicMicros() - submit_us);
      rep->inflight.fetch_sub(static_cast<int64_t>(idx.size()),
                              std::memory_order_relaxed);
      rep->queue_gauge.Set(
          static_cast<double>(rep->inflight.load(std::memory_order_relaxed)));
    }));
  }
  for (auto& f : pending) f.get();
  return out;
}

EngineStats DistributedGraphEngine::Stats() const {
  EngineStats stats;
  for (const auto& rep : replicas_) {
    const int64_t requests = rep->requests.load(std::memory_order_relaxed);
    stats.requests_per_replica.push_back(requests);
    stats.total_requests += requests;
    ReplicaStatus rs;
    rs.shard = rep->shard_id;
    rs.replica = rep->replica_id;
    rs.alive = rep->alive.load(std::memory_order_acquire);
    rs.watermark = rep->watermark.load(std::memory_order_acquire);
    rs.requests = requests;
    stats.replicas.push_back(rs);
  }
  if (!replicas_.empty()) {
    stats.storage_bytes_per_shard = replicas_[0]->shard->MemoryBytes();
  }
  for (int s = 0; s < options_.num_shards; ++s) {
    const int64_t events =
        shard_update_events_[s].v.load(std::memory_order_relaxed);
    stats.update_events_per_shard.push_back(events);
    stats.total_update_events += events;
  }
  stats.dead_replicas = dead_replicas_.load(std::memory_order_relaxed);
  const streaming::DynamicHeteroGraph* primary =
      primary_.load(std::memory_order_acquire);
  stats.primary_watermark =
      primary != nullptr ? primary->watermark_epoch() : 0;
  stats.stale_fallback_reads = stale_fallback_reads_.Value();
  stats.killed_inflight_failures = killed_inflight_failures_.Value();
  return stats;
}

}  // namespace engine
}  // namespace zoomer
