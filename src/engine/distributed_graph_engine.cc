#include "engine/distributed_graph_engine.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/logging.h"
#include "graph/graph_view.h"
#include "obs/metrics.h"
#include "streaming/dynamic_hetero_graph.h"

namespace zoomer {
namespace engine {

using graph::NodeId;

namespace {

/// Distinct weighted draws via the alias table (constant-time per draw);
/// the shared GraphView helper provides the bounded-retry dedup the
/// production engine's draw-with-dedup uses. Takes the view abstraction so
/// the static path (CsrGraphView over the offline HeteroGraph) and the
/// streaming path (SegmentedCsrView over a snapshot's pinned segmented
/// base) share one implementation.
SampleResponse SampleFromCsr(const graph::GraphView& g,
                             const SampleRequest& req) {
  SampleResponse resp;
  if (g.degree(req.node) == 0) return resp;
  Rng rng(req.rng_seed);
  const std::vector<NodeId> seen =
      g.SampleDistinctNeighbors(req.node, req.k, &rng);
  graph::NeighborScratch scratch;
  const graph::NeighborBlock block = g.Neighbors(req.node, &scratch);
  for (NodeId nb : seen) {
    resp.neighbors.push_back(nb);
    float w = 0.0f;
    for (int64_t p = 0; p < block.size(); ++p) {
      if (block.ids[p] == nb) {
        w = block.weights[p];
        break;
      }
    }
    resp.weights.push_back(w);
  }
  return resp;
}

}  // namespace

GraphShard::GraphShard(const graph::HeteroGraph* g, int shard_id,
                       int num_shards)
    : graph_(g), shard_id_(shard_id), num_shards_(num_shards) {
  ZCHECK(g != nullptr);
  for (NodeId v = 0; v < g->num_nodes(); ++v) {
    if (Owns(v)) owned_.push_back(v);
  }
}

StatusOr<SampleResponse> GraphShard::Sample(const SampleRequest& req) const {
  if (req.node < 0) {
    return Status::InvalidArgument("node id out of range");
  }
  if (!Owns(req.node)) {
    return Status::FailedPrecondition("node not owned by this shard");
  }
  const streaming::DynamicHeteroGraph* dynamic =
      dynamic_.load(std::memory_order_acquire);
  if (dynamic != nullptr) {
    // Streaming path: draw from an epoch snapshot over base + deltas so
    // freshly ingested edges (and nodes born online) are sampleable
    // shard-side. The snapshot's base is also the compaction-current CSR,
    // so untouched nodes stay on the cheap alias path without
    // materializing a merged list.
    auto snap = dynamic->MakeSnapshot();
    if (req.node >= snap.num_nodes()) {
      return Status::InvalidArgument("node id out of range");
    }
    if (snap.DeltaDegree(req.node) == 0) {
      if (!snap.InBase(req.node)) return SampleResponse{};  // isolated
      return SampleFromCsr(graph::SegmentedCsrView(snap.base()), req);
    }
    std::vector<graph::NeighborEntry> merged;
    snap.Neighbors(req.node, &merged);
    SampleResponse resp;
    Rng rng(req.rng_seed);
    for (NodeId nb : snap.SampleDistinctNeighbors(req.node, req.k, &rng)) {
      resp.neighbors.push_back(nb);
      float w = 0.0f;
      for (const auto& entry : merged) {
        if (entry.neighbor == nb) {
          w = entry.weight;
          break;
        }
      }
      resp.weights.push_back(w);
    }
    return resp;
  }
  if (req.node >= graph_->num_nodes()) {
    return Status::InvalidArgument("node id out of range");
  }
  return SampleFromCsr(graph::CsrGraphView(*graph_), req);
}

size_t GraphShard::MemoryBytes() const {
  // Ownership list plus this shard's slice of the CSR arrays.
  size_t bytes = owned_.size() * sizeof(NodeId);
  for (NodeId v : owned_) {
    bytes += static_cast<size_t>(graph_->degree(v)) *
             (sizeof(NodeId) + sizeof(float) + 1);
  }
  return bytes;
}

DistributedGraphEngine::DistributedGraphEngine(const graph::HeteroGraph* g,
                                               EngineOptions options)
    : options_(options) {
  ZCHECK_GT(options_.num_shards, 0);
  ZCHECK_GT(options_.replication_factor, 0);
  obs::MetricsRegistry* reg = options_.registry != nullptr
                                  ? options_.registry
                                  : obs::MetricsRegistry::Global();
  sample_requests_ = reg->GetCounter("engine.sample_requests");
  update_events_ = reg->GetCounter("engine.update_events");
  sample_latency_us_ = reg->GetHistogram("engine.sample_latency_us");
  for (int s = 0; s < options_.num_shards; ++s) {
    shard_update_events_.push_back(std::make_unique<std::atomic<int64_t>>(0));
    for (int r = 0; r < options_.replication_factor; ++r) {
      auto rep = std::make_unique<Replica>();
      rep->shard = std::make_unique<GraphShard>(g, s, options_.num_shards);
      rep->worker = std::make_unique<ThreadPool>(1);
      replicas_.push_back(std::move(rep));
    }
  }
}

void DistributedGraphEngine::AttachDynamicGraph(
    const streaming::DynamicHeteroGraph* dynamic) {
  for (auto& rep : replicas_) rep->shard->AttachDynamicGraph(dynamic);
}

void DistributedGraphEngine::RecordShardUpdate(int shard, int64_t num_events) {
  if (shard < 0 || shard >= options_.num_shards) return;
  shard_update_events_[shard]->fetch_add(num_events,
                                         std::memory_order_relaxed);
  update_events_->Add(num_events);
}

DistributedGraphEngine::~DistributedGraphEngine() = default;

std::future<StatusOr<SampleResponse>> DistributedGraphEngine::SampleAsync(
    const SampleRequest& req) {
  const int shard = GraphShard::NodeShard(req.node, options_.num_shards);
  // Least-loaded replica of the owning shard.
  const int base = shard * options_.replication_factor;
  int best = base;
  int64_t best_load = replicas_[base]->inflight.load();
  for (int r = 1; r < options_.replication_factor; ++r) {
    const int64_t load = replicas_[base + r]->inflight.load();
    if (load < best_load) {
      best_load = load;
      best = base + r;
    }
  }
  Replica* rep = replicas_[best].get();
  rep->requests.fetch_add(1, std::memory_order_relaxed);
  rep->inflight.fetch_add(1, std::memory_order_relaxed);
  sample_requests_->Add(1);
  const int rpc_micros = options_.simulated_rpc_micros;
  obs::Histogram* latency_hist = sample_latency_us_;
  return rep->worker->Submit([rep, req, rpc_micros, latency_hist] {
    if (rpc_micros > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(rpc_micros));
    }
    // Service time on the replica worker (the simulated RPC delay is load,
    // not work — excluded).
    const int64_t start_us = obs::MonotonicMicros();
    auto result = rep->shard->Sample(req);
    latency_hist->Record(obs::MonotonicMicros() - start_us);
    rep->inflight.fetch_sub(1, std::memory_order_relaxed);
    return result;
  });
}

StatusOr<SampleResponse> DistributedGraphEngine::Sample(
    const SampleRequest& req) {
  return SampleAsync(req).get();
}

EngineStats DistributedGraphEngine::Stats() const {
  EngineStats stats;
  for (const auto& rep : replicas_) {
    stats.requests_per_replica.push_back(rep->requests.load());
    stats.total_requests += rep->requests.load();
  }
  if (!replicas_.empty()) {
    stats.storage_bytes_per_shard = replicas_[0]->shard->MemoryBytes();
  }
  for (const auto& counter : shard_update_events_) {
    const int64_t events = counter->load();
    stats.update_events_per_shard.push_back(events);
    stats.total_update_events += events;
  }
  return stats;
}

}  // namespace engine
}  // namespace zoomer
