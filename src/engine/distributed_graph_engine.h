// Distributed graph engine (paper Sec. VI, "Distributed graph engine" built
// on Euler): the graph is hash-partitioned into shards for storage capacity,
// and each shard is a *replica group* — every replica owns an independent
// DynamicHeteroGraph over the shared immutable base plus its own apply
// cursor into the shared GraphDeltaLog. The ingest pipeline applies a batch
// to the primary graph, then publishes its epoch to the owning shard's
// fanout bus; each replica's applier thread replays the log tail up to the
// primary's watermark and advances an explicit per-replica apply watermark
// (exported as "engine.replica_watermark_lag" gauges).
//
// Routing picks the least-loaded *alive* replica of the owning shard,
// subject to a freshness bound: a request may carry a min_epoch floor
// (read-your-writes — a session's reads pin to replicas whose watermark
// covers its own writes), and EngineOptions::freshness_bound_epochs caps
// how far any chosen replica may trail the primary. When no alive replica
// qualifies within a bounded wait, the request is served off the primary
// graph (a counted stale-fallback) so freshness floors are honored even
// mid-recovery.
//
// Failure injection: KillReplica parks a replica's applier and removes it
// from routing (serving degrades to the surviving replicas); its frozen log
// cursor pins the delta-log tail it will need. ReviveReplica resumes the
// applier, which rebuilds state by replaying the log from the last
// watermark — the same replay path a durability tier would use.
#ifndef ZOOMER_ENGINE_DISTRIBUTED_GRAPH_ENGINE_H_
#define ZOOMER_ENGINE_DISTRIBUTED_GRAPH_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/threadpool.h"
#include "graph/hetero_graph.h"
#include "obs/metrics.h"

namespace zoomer {

namespace streaming {
class DynamicHeteroGraph;
class GraphDeltaLog;
}  // namespace streaming

namespace engine {

struct EngineOptions {
  int num_shards = 4;
  int replication_factor = 2;
  /// Simulated per-request network + serialization latency (microseconds);
  /// 0 disables the artificial delay (pure in-memory cost). Applied on the
  /// replica worker thread *before* sampling, so it contributes queueing
  /// pressure (load) without polluting the service-time histogram —
  /// "engine.sample_latency_us" measures the sample alone, while
  /// "engine.request_latency_us" measures submit -> completion (queueing +
  /// simulated RPC + service).
  int simulated_rpc_micros = 0;
  /// Freshness bound for routing (epochs; replica-group mode only): a
  /// replica qualifies for a request only if its apply watermark trails the
  /// primary's by at most this many epochs. 0 = load-only routing (any
  /// alive replica qualifies, unless the request carries min_epoch).
  uint64_t freshness_bound_epochs = 0;
  /// Bounded wait (microseconds) for some alive replica to satisfy a
  /// request's freshness floor before falling back to serving the request
  /// off the primary graph (counted in "engine.stale_fallback_reads").
  int freshness_wait_micros = 5000;
  /// Metrics registry for engine throughput instruments ("engine." names).
  /// Null means the process-global registry.
  obs::MetricsRegistry* registry = nullptr;
};

struct SampleRequest {
  graph::NodeId node = -1;
  int k = 10;
  uint64_t rng_seed = 0;
  /// Read-your-writes floor: route only to replicas whose apply watermark
  /// covers this epoch (0 = no constraint). Stamp it with the delta-log
  /// epoch of the session's own last write (the ingest pipeline's update
  /// listener reports it). In legacy shared-graph mode every replica reads
  /// the primary view, so the floor is trivially met.
  uint64_t min_epoch = 0;
};

struct SampleResponse {
  std::vector<graph::NodeId> neighbors;
  std::vector<float> weights;
};

/// Health + progress of one replica, as reported by EngineStats.
struct ReplicaStatus {
  int shard = 0;
  int replica = 0;  // index within the shard's group
  bool alive = true;
  /// Epochs applied through (replica-group mode; 0 in legacy mode).
  uint64_t watermark = 0;
  int64_t requests = 0;
};

struct EngineStats {
  std::vector<int64_t> requests_per_replica;
  int64_t total_requests = 0;
  size_t storage_bytes_per_shard = 0;
  /// Streaming-update traffic routed to each shard by the ingest pipeline.
  std::vector<int64_t> update_events_per_shard;
  int64_t total_update_events = 0;
  /// Per-replica health and apply progress (shard-major order).
  std::vector<ReplicaStatus> replicas;
  int64_t dead_replicas = 0;
  /// Primary graph's watermark (replica-group mode; 0 in legacy mode).
  uint64_t primary_watermark = 0;
  /// Requests served off the primary because no alive replica met the
  /// freshness floor within the bounded wait.
  int64_t stale_fallback_reads = 0;
  /// Requests that reached a replica killed after they were routed (the
  /// detection window); the router never sends new traffic to a dead one.
  int64_t killed_inflight_failures = 0;
};

/// One storage shard: the subset of nodes whose hash maps to this shard.
/// Replicas share the same node set but serve requests independently.
class GraphShard {
 public:
  GraphShard(const graph::HeteroGraph* g, int shard_id, int num_shards);

  bool Owns(graph::NodeId node) const {
    return NodeShard(node, num_shards_) == shard_id_;
  }
  static int NodeShard(graph::NodeId node, int num_shards) {
    // Knuth multiplicative hash with the high half folded down. The modulo
    // (shard counts are usually powers of two) reads only the product's low
    // bits, which are constant across ids that share a stride divisible by
    // num_shards — the xor-fold mixes the well-shuffled high bits in so
    // strided id ranges still spread evenly.
    uint64_t h = static_cast<uint64_t>(node) * 2654435761ull;
    h ^= h >> 32;
    return static_cast<int>(h % static_cast<uint64_t>(num_shards));
  }

  /// Weighted neighbor sample (alias table) of up to k distinct neighbors.
  /// With a dynamic view attached, draws come from an epoch snapshot over
  /// base + streaming deltas instead of the static CSR.
  StatusOr<SampleResponse> Sample(const SampleRequest& req) const;

  /// Samples from an explicit dynamic view (the engine's primary-fallback
  /// path); nullptr falls back to the static CSR.
  StatusOr<SampleResponse> SampleFrom(
      const SampleRequest& req,
      const streaming::DynamicHeteroGraph* view) const;

  /// Batched sampling: one response per request, in order. With a dynamic
  /// view attached, the whole batch draws under ONE epoch snapshot (one
  /// base pin + one hot-cache reader pin) instead of one MakeSnapshot per
  /// request — the per-replica worker's batch amortization.
  std::vector<StatusOr<SampleResponse>> SampleMany(
      std::span<const SampleRequest> reqs) const;
  std::vector<StatusOr<SampleResponse>> SampleManyFrom(
      std::span<const SampleRequest> reqs,
      const streaming::DynamicHeteroGraph* view) const;

  /// Serve reads through the streaming delta overlay (nullptr restores
  /// static-CSR sampling). The view must outlive this shard. Safe to call
  /// while Sample traffic is in flight (atomic publish).
  void AttachDynamicGraph(const streaming::DynamicHeteroGraph* dynamic) {
    dynamic_.store(dynamic, std::memory_order_release);
  }

  int64_t num_owned_nodes() const { return owned_.size(); }
  size_t MemoryBytes() const;

 private:
  const graph::HeteroGraph* graph_;
  std::atomic<const streaming::DynamicHeteroGraph*> dynamic_{nullptr};
  int shard_id_;
  int num_shards_;
  std::vector<graph::NodeId> owned_;
};

/// Client-facing engine: routes requests to shard replica groups over
/// per-replica worker threads, fans streamed deltas out to per-replica
/// apply threads, and collects load/health statistics.
class DistributedGraphEngine {
 public:
  DistributedGraphEngine(const graph::HeteroGraph* g, EngineOptions options);
  ~DistributedGraphEngine();

  /// Asynchronous sampling RPC; the future resolves on the replica thread.
  /// May block the caller up to freshness_wait_micros while routing when no
  /// alive replica currently satisfies the request's freshness floor.
  std::future<StatusOr<SampleResponse>> SampleAsync(const SampleRequest& req);

  /// Blocking convenience wrapper.
  StatusOr<SampleResponse> Sample(const SampleRequest& req);

  /// Batched sampling: responses in request order. Requests are grouped by
  /// owning shard; each group routes once (floor = the group's max
  /// min_epoch) and runs as ONE task on the chosen replica's worker, which
  /// serves the whole group under one epoch snapshot (GraphShard::
  /// SampleMany). Records engine.sample_batch_size per shard-group.
  std::vector<StatusOr<SampleResponse>> SampleMany(
      std::span<const SampleRequest> reqs);

  EngineStats Stats() const;
  int num_replicas() const { return static_cast<int>(replicas_.size()); }

  /// Legacy shared-graph mode: routes streaming reads of every replica
  /// through one shared dynamic view (no per-replica apply lag — see
  /// ConnectUpdateFanout for the replica-group mode that supersedes this).
  void AttachDynamicGraph(const streaming::DynamicHeteroGraph* dynamic);

  /// Replica-group mode: gives every replica its own DynamicHeteroGraph
  /// over the engine's base graph plus an apply thread consuming `log`
  /// through a registered per-replica cursor, bounded by `primary`'s
  /// watermark (the ingest pipeline's graph). Call once, before ingest
  /// starts and before sampling traffic; `log` and `primary` must outlive
  /// this engine. Mutually exclusive with AttachDynamicGraph.
  void ConnectUpdateFanout(streaming::GraphDeltaLog* log,
                           const streaming::DynamicHeteroGraph* primary);

  /// Called by the ingest pipeline when a delta batch lands on `shard`;
  /// surfaces per-shard update traffic in Stats().
  void RecordShardUpdate(int shard, int64_t num_events);

  /// Called by the ingest pipeline after applying epoch `epoch` to the
  /// primary: wakes the shard's replica appliers (every shard's, when
  /// `all_shards` — node-mint batches grow the global id-space and must
  /// reach every replica). No-op until ConnectUpdateFanout.
  void PublishDelta(int shard, uint64_t epoch, bool all_shards = false);

  /// Failure injection: marks the replica dead — the router skips it, its
  /// applier parks (the frozen log cursor pins the replay tail), and
  /// requests already queued on its worker fail with Unavailable (counted).
  /// Serving continues degraded on the shard's surviving replicas.
  void KillReplica(int shard, int replica);

  /// Recovery: marks the replica alive again; its applier replays the
  /// delta log from the last watermark until it has caught up with the
  /// primary (watch AwaitReplicaCatchUp / the lag gauge return to 0).
  void ReviveReplica(int shard, int replica);

  bool IsReplicaAlive(int shard, int replica) const;

  /// Epochs the replica has applied through (0 outside replica-group mode).
  uint64_t ReplicaWatermark(int shard, int replica) const;

  /// Blocks until the replica's watermark reaches the primary's current
  /// watermark (true) or the timeout elapses (false).
  bool AwaitReplicaCatchUp(int shard, int replica,
                           int64_t timeout_micros) const;

 private:
  /// Cache-line-padded per-shard counter slot: the ingest consumers of
  /// different shards bump adjacent slots concurrently, so sharing a line
  /// would bounce it (the old vector<unique_ptr<atomic>> paid a pointer
  /// chase per update *and* let the allocator pack the atomics together).
  struct alignas(64) PaddedCounter {
    std::atomic<int64_t> v{0};
  };

  struct Replica {
    std::unique_ptr<GraphShard> shard;
    std::atomic<int64_t> requests{0};
    std::atomic<int64_t> inflight{0};
    std::atomic<bool> alive{true};
    // Replica-group (fanout) state; unset in legacy shared-graph mode.
    std::unique_ptr<streaming::DynamicHeteroGraph> dyn;
    std::thread applier;                 // joined by the engine dtor
    std::atomic<uint64_t> watermark{0};  // epochs applied through
    int log_consumer = -1;               // GraphDeltaLog consumer id
    int shard_id = 0;
    int replica_id = 0;  // index within the group
    /// Per-replica gauges, registered under both the per-replica name and
    /// the aggregate ("engine.replica_watermark_lag" max-aggregates,
    /// "engine.queue_depth" sum-aggregates).
    obs::Gauge lag_gauge;
    obs::Gauge queue_gauge;
    /// Declared last: worker tasks read `shard` and `dyn`, so the pool must
    /// drain (ThreadPool dtor joins) before either is destroyed.
    std::unique_ptr<ThreadPool> worker;
  };

  /// Per-shard fanout bus: the ingest pipeline publishes applied epochs
  /// here; replica appliers of the shard block on it. The bus is a wakeup,
  /// not the data path — appliers read the shared log, bounded by the
  /// primary watermark. Appliers also poll on a short timeout, which covers
  /// cross-shard edge batches (an edge's dst may live on another shard than
  /// the src the batch was routed by) without a broadcast per batch.
  struct ShardBus {
    std::mutex mu;
    std::condition_variable cv;
    uint64_t published = 0;  // guarded by mu
  };

  Replica* replica(int shard, int r) {
    return replicas_[static_cast<size_t>(shard) * options_.replication_factor +
                     r]
        .get();
  }
  const Replica* replica(int shard, int r) const {
    return replicas_[static_cast<size_t>(shard) * options_.replication_factor +
                     r]
        .get();
  }

  /// Routing result: the chosen replica (null = whole group dead) and
  /// whether the request must be served off the primary view (freshness
  /// fallback, counted in engine.stale_fallback_reads).
  struct RoutedTarget {
    Replica* rep = nullptr;
    bool use_primary = false;
  };

  /// Shared routing core behind SampleAsync and SampleMany: least-inflight
  /// alive replica of `shard` satisfying the freshness floor, with the
  /// bounded wait and primary fallback documented on SampleAsync.
  RoutedTarget RouteToReplica(int shard, uint64_t min_epoch);

  void ApplierLoop(Replica* rep);
  void RefreshReplicaGauges(Replica* rep) const;
  void SetDeadGauge();

  const graph::HeteroGraph* graph_;
  EngineOptions options_;
  obs::MetricsRegistry* registry_;  // resolved (never null)
  /// Registry-owned throughput instruments (resolved once at construction;
  /// Stats() stays the exact per-engine view from the atomics).
  obs::Counter* sample_requests_ = nullptr;   // engine.sample_requests
  obs::Counter* update_events_ = nullptr;     // engine.update_events
  obs::Histogram* sample_latency_us_ = nullptr;   // engine.sample_latency_us
  obs::Histogram* request_latency_us_ = nullptr;  // engine.request_latency_us
  obs::Histogram* sample_batch_size_ = nullptr;   // engine.sample_batch_size
  /// Per-engine views (registered; Unregistered on destruction).
  obs::Counter stale_fallback_reads_;      // engine.stale_fallback_reads
  obs::Counter killed_inflight_failures_;  // engine.killed_inflight_failures
  obs::Gauge dead_replicas_gauge_;         // engine.dead_replicas
  std::vector<std::pair<std::string, const void*>> registered_;

  std::vector<std::unique_ptr<Replica>> replicas_;  // shard-major layout
  std::unique_ptr<PaddedCounter[]> shard_update_events_;  // num_shards slots

  // Replica-group mode wiring (null until ConnectUpdateFanout).
  streaming::GraphDeltaLog* log_ = nullptr;
  std::atomic<const streaming::DynamicHeteroGraph*> primary_{nullptr};
  std::vector<std::unique_ptr<ShardBus>> buses_;  // one per shard
  std::atomic<bool> shutdown_{false};
  std::atomic<int64_t> dead_replicas_{0};
};

}  // namespace engine
}  // namespace zoomer

#endif  // ZOOMER_ENGINE_DISTRIBUTED_GRAPH_ENGINE_H_
