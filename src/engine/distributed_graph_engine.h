// Distributed graph engine simulation (paper Sec. VI, "Distributed graph
// engine" built on Euler): the graph is hash-partitioned into shards for
// storage capacity, each shard replicated onto multiple (simulated) servers
// for aggregate throughput, and neighbor-sampling requests are routed to the
// replica with the least outstanding load. Within one process, each replica
// is backed by a worker thread draining a request queue, which reproduces
// the queueing behaviour the online serving experiment (Fig. 9) depends on.
#ifndef ZOOMER_ENGINE_DISTRIBUTED_GRAPH_ENGINE_H_
#define ZOOMER_ENGINE_DISTRIBUTED_GRAPH_ENGINE_H_

#include <atomic>
#include <future>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/threadpool.h"
#include "graph/hetero_graph.h"

namespace zoomer {
namespace engine {

struct EngineOptions {
  int num_shards = 4;
  int replication_factor = 2;
  /// Simulated per-request network + serialization latency (microseconds);
  /// 0 disables the artificial delay (pure in-memory cost).
  int simulated_rpc_micros = 0;
};

struct SampleRequest {
  graph::NodeId node = -1;
  int k = 10;
  uint64_t rng_seed = 0;
};

struct SampleResponse {
  std::vector<graph::NodeId> neighbors;
  std::vector<float> weights;
};

struct EngineStats {
  std::vector<int64_t> requests_per_replica;
  int64_t total_requests = 0;
  size_t storage_bytes_per_shard = 0;
};

/// One storage shard: the subset of nodes whose hash maps to this shard.
/// Replicas share the same node set but serve requests independently.
class GraphShard {
 public:
  GraphShard(const graph::HeteroGraph* g, int shard_id, int num_shards);

  bool Owns(graph::NodeId node) const {
    return NodeShard(node, num_shards_) == shard_id_;
  }
  static int NodeShard(graph::NodeId node, int num_shards) {
    // Knuth multiplicative hash for balanced ownership.
    return static_cast<int>((static_cast<uint64_t>(node) * 2654435761ull) %
                            static_cast<uint64_t>(num_shards));
  }

  /// Weighted neighbor sample (alias table) of up to k distinct neighbors.
  StatusOr<SampleResponse> Sample(const SampleRequest& req) const;

  int64_t num_owned_nodes() const { return owned_.size(); }
  size_t MemoryBytes() const;

 private:
  const graph::HeteroGraph* graph_;
  int shard_id_;
  int num_shards_;
  std::vector<graph::NodeId> owned_;
};

/// Client-facing engine: routes requests to shard replicas over per-replica
/// worker threads and collects load statistics.
class DistributedGraphEngine {
 public:
  DistributedGraphEngine(const graph::HeteroGraph* g, EngineOptions options);
  ~DistributedGraphEngine();

  /// Asynchronous sampling RPC; the future resolves on the replica thread.
  std::future<StatusOr<SampleResponse>> SampleAsync(const SampleRequest& req);

  /// Blocking convenience wrapper.
  StatusOr<SampleResponse> Sample(const SampleRequest& req);

  EngineStats Stats() const;
  int num_replicas() const { return static_cast<int>(replicas_.size()); }

 private:
  struct Replica {
    std::unique_ptr<GraphShard> shard;
    std::unique_ptr<ThreadPool> worker;
    std::atomic<int64_t> requests{0};
    std::atomic<int64_t> inflight{0};
  };

  EngineOptions options_;
  std::vector<std::unique_ptr<Replica>> replicas_;  // shard-major layout
};

}  // namespace engine
}  // namespace zoomer

#endif  // ZOOMER_ENGINE_DISTRIBUTED_GRAPH_ENGINE_H_
