// Distributed graph engine simulation (paper Sec. VI, "Distributed graph
// engine" built on Euler): the graph is hash-partitioned into shards for
// storage capacity, each shard replicated onto multiple (simulated) servers
// for aggregate throughput, and neighbor-sampling requests are routed to the
// replica with the least outstanding load. Within one process, each replica
// is backed by a worker thread draining a request queue, which reproduces
// the queueing behaviour the online serving experiment (Fig. 9) depends on.
#ifndef ZOOMER_ENGINE_DISTRIBUTED_GRAPH_ENGINE_H_
#define ZOOMER_ENGINE_DISTRIBUTED_GRAPH_ENGINE_H_

#include <atomic>
#include <future>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/threadpool.h"
#include "graph/hetero_graph.h"

namespace zoomer {
namespace obs {
class Counter;
class Histogram;
class MetricsRegistry;
}  // namespace obs

namespace streaming {
class DynamicHeteroGraph;
}  // namespace streaming

namespace engine {

struct EngineOptions {
  int num_shards = 4;
  int replication_factor = 2;
  /// Simulated per-request network + serialization latency (microseconds);
  /// 0 disables the artificial delay (pure in-memory cost).
  int simulated_rpc_micros = 0;
  /// Metrics registry for engine throughput instruments ("engine." names).
  /// Null means the process-global registry.
  obs::MetricsRegistry* registry = nullptr;
};

struct SampleRequest {
  graph::NodeId node = -1;
  int k = 10;
  uint64_t rng_seed = 0;
};

struct SampleResponse {
  std::vector<graph::NodeId> neighbors;
  std::vector<float> weights;
};

struct EngineStats {
  std::vector<int64_t> requests_per_replica;
  int64_t total_requests = 0;
  size_t storage_bytes_per_shard = 0;
  /// Streaming-update traffic routed to each shard by the ingest pipeline.
  std::vector<int64_t> update_events_per_shard;
  int64_t total_update_events = 0;
};

/// One storage shard: the subset of nodes whose hash maps to this shard.
/// Replicas share the same node set but serve requests independently.
class GraphShard {
 public:
  GraphShard(const graph::HeteroGraph* g, int shard_id, int num_shards);

  bool Owns(graph::NodeId node) const {
    return NodeShard(node, num_shards_) == shard_id_;
  }
  static int NodeShard(graph::NodeId node, int num_shards) {
    // Knuth multiplicative hash for balanced ownership.
    return static_cast<int>((static_cast<uint64_t>(node) * 2654435761ull) %
                            static_cast<uint64_t>(num_shards));
  }

  /// Weighted neighbor sample (alias table) of up to k distinct neighbors.
  /// With a dynamic view attached, draws come from an epoch snapshot over
  /// base + streaming deltas instead of the static CSR.
  StatusOr<SampleResponse> Sample(const SampleRequest& req) const;

  /// Serve reads through the streaming delta overlay (nullptr restores
  /// static-CSR sampling). The view must outlive this shard. Safe to call
  /// while Sample traffic is in flight (atomic publish).
  void AttachDynamicGraph(const streaming::DynamicHeteroGraph* dynamic) {
    dynamic_.store(dynamic, std::memory_order_release);
  }

  int64_t num_owned_nodes() const { return owned_.size(); }
  size_t MemoryBytes() const;

 private:
  const graph::HeteroGraph* graph_;
  std::atomic<const streaming::DynamicHeteroGraph*> dynamic_{nullptr};
  int shard_id_;
  int num_shards_;
  std::vector<graph::NodeId> owned_;
};

/// Client-facing engine: routes requests to shard replicas over per-replica
/// worker threads and collects load statistics.
class DistributedGraphEngine {
 public:
  DistributedGraphEngine(const graph::HeteroGraph* g, EngineOptions options);
  ~DistributedGraphEngine();

  /// Asynchronous sampling RPC; the future resolves on the replica thread.
  std::future<StatusOr<SampleResponse>> SampleAsync(const SampleRequest& req);

  /// Blocking convenience wrapper.
  StatusOr<SampleResponse> Sample(const SampleRequest& req);

  EngineStats Stats() const;
  int num_replicas() const { return static_cast<int>(replicas_.size()); }

  /// Routes streaming reads of every replica through the dynamic delta
  /// overlay (see GraphShard::AttachDynamicGraph).
  void AttachDynamicGraph(const streaming::DynamicHeteroGraph* dynamic);

  /// Called by the ingest pipeline when a delta batch lands on `shard`;
  /// surfaces per-shard update traffic in Stats().
  void RecordShardUpdate(int shard, int64_t num_events);

 private:
  struct Replica {
    std::unique_ptr<GraphShard> shard;
    std::unique_ptr<ThreadPool> worker;
    std::atomic<int64_t> requests{0};
    std::atomic<int64_t> inflight{0};
  };

  EngineOptions options_;
  /// Registry-owned throughput instruments (resolved once at construction;
  /// Stats() stays the exact per-engine view from the atomics above).
  obs::Counter* sample_requests_ = nullptr;   // engine.sample_requests
  obs::Counter* update_events_ = nullptr;     // engine.update_events
  obs::Histogram* sample_latency_us_ = nullptr;  // engine.sample_latency_us
  std::vector<std::unique_ptr<Replica>> replicas_;  // shard-major layout
  std::vector<std::unique_ptr<std::atomic<int64_t>>> shard_update_events_;
};

}  // namespace engine
}  // namespace zoomer

#endif  // ZOOMER_ENGINE_DISTRIBUTED_GRAPH_ENGINE_H_
