// Per-edge-type recency windows over streamed deltas (ROADMAP streaming
// follow-up: "TTL/decay on delta edges to window 1-hour vs 1-day graphs
// online"). Every delta entry carries its event timestamp; a DecaySpec turns
// that age into
//   - a hard TTL cutoff: entries older than ttl_seconds for their relation
//     kind stop being visible through decay-aware snapshots (and are
//     physically garbage-collected by maintenance::TtlDecayPolicy), and
//   - an exponential weight decay with half-life half_life_seconds: an edge
//     observed one half-life ago contributes half its recorded weight to
//     degree-weighted sampling and neighbor merges.
// Base-CSR edges are the offline aggregate and are never windowed — only the
// streamed suffix ages. Two views over one DynamicHeteroGraph can carry
// different specs (e.g. a 1-hour and a 1-day window) and serve both
// freshness horizons from the same stream; timestamps are interpreted
// against an injectable LogicalClock so tests are deterministic.
#ifndef ZOOMER_STREAMING_EDGE_DECAY_H_
#define ZOOMER_STREAMING_EDGE_DECAY_H_

#include <array>
#include <cmath>
#include <cstdint>

#include "graph/hetero_graph.h"

namespace zoomer {
namespace streaming {

struct DecaySpec {
  struct KindWindow {
    /// Entries older than this stop being visible. 0 = never expires.
    int64_t ttl_seconds = 0;
    /// Exponential half-life of the entry's weight. 0 = no decay.
    double half_life_seconds = 0.0;

    bool operator==(const KindWindow&) const = default;
  };

  std::array<KindWindow, graph::kNumRelationKinds> kinds;

  /// Identity comparison — the hot-node cache stamps entries with the spec
  /// their merge was windowed under, so a view with a different horizon
  /// never serves another window's merge.
  bool operator==(const DecaySpec&) const = default;

  /// True if any relation kind has a hard TTL (drives expiry sweeps and
  /// the compaction-time fold filter).
  bool has_ttl() const {
    for (const KindWindow& k : kinds) {
      if (k.ttl_seconds > 0) return true;
    }
    return false;
  }

  /// True if any relation kind expires or decays; inactive specs keep every
  /// read on the raw prefix-sum fast path.
  bool active() const {
    for (const KindWindow& k : kinds) {
      if (k.ttl_seconds > 0 || k.half_life_seconds > 0.0) return true;
    }
    return false;
  }

  bool Expired(graph::RelationKind kind, int64_t age_seconds) const {
    const KindWindow& k = kinds[static_cast<int>(kind)];
    return k.ttl_seconds > 0 && age_seconds >= k.ttl_seconds;
  }

  /// Decayed contribution of a raw weight at the given age. Expiry is not
  /// checked here; callers filter with Expired() first. Events timestamped
  /// in the future (age < 0) count at full weight.
  float DecayedWeight(graph::RelationKind kind, float weight,
                      int64_t age_seconds) const {
    const KindWindow& k = kinds[static_cast<int>(kind)];
    if (k.half_life_seconds <= 0.0 || age_seconds <= 0) return weight;
    return static_cast<float>(
        weight * std::exp2(-static_cast<double>(age_seconds) /
                           k.half_life_seconds));
  }

  /// Uniform window over every relation kind (the common case: one
  /// freshness horizon for all behavior edges).
  static DecaySpec Window(int64_t ttl_seconds, double half_life_seconds) {
    DecaySpec spec;
    for (auto& k : spec.kinds) {
      k.ttl_seconds = ttl_seconds;
      k.half_life_seconds = half_life_seconds;
    }
    return spec;
  }
};

}  // namespace streaming
}  // namespace zoomer

#endif  // ZOOMER_STREAMING_EDGE_DECAY_H_
