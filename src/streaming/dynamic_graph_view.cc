#include "streaming/dynamic_graph_view.h"

namespace zoomer {
namespace streaming {

graph::NeighborBlock DynamicGraphView::Neighbors(
    graph::NodeId id, graph::NeighborScratch* scratch) const {
  // Untouched base nodes (the vast majority between compactions) stay on
  // the zero-copy CSR path, matching the static view's cost exactly. An
  // overlay-born id must resolve through the snapshot even when it has no
  // deltas yet (the base arrays do not cover it).
  if (snapshot_.InBase(id) && !snapshot_.MaybeHasDelta(id)) {
    const graph::SegmentedCsr& base = snapshot_.base();
    return {base.neighbor_ids(id), base.neighbor_weights(id),
            base.neighbor_kinds(id)};
  }
  snapshot_.Neighbors(id, &scratch->ids, &scratch->weights, &scratch->kinds);
  return {scratch->ids, scratch->weights, scratch->kinds};
}

graph::NeighborBlock DynamicGraphView::NeighborsOfType(
    graph::NodeId id, graph::NodeType t,
    graph::NeighborScratch* scratch) const {
  if (snapshot_.InBase(id) && !snapshot_.MaybeHasDelta(id)) {
    return graph::TypedCsrBlock(snapshot_.base(), id, t);
  }
  snapshot_.NeighborsOfType(id, t, &scratch->ids, &scratch->weights,
                            &scratch->kinds);
  return {scratch->ids, scratch->weights, scratch->kinds};
}

}  // namespace streaming
}  // namespace zoomer
