#include "streaming/dynamic_hetero_graph.h"

#include <algorithm>
#include <string>

#include "common/logging.h"
#include "common/timer.h"
#include "graph/graph_view.h"
#include "maintenance/hot_node_cache.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace zoomer {
namespace streaming {

using graph::HeteroGraph;
using graph::NeighborEntry;
using graph::NodeId;
using graph::SegmentedCsr;

DynamicHeteroGraph::DynamicHeteroGraph(const HeteroGraph* base,
                                       DynamicHeteroGraphOptions options)
    : DynamicHeteroGraph(
          std::shared_ptr<const HeteroGraph>(base, [](const HeteroGraph*) {}),
          options) {}

DynamicHeteroGraph::DynamicHeteroGraph(
    std::shared_ptr<const HeteroGraph> base,
    DynamicHeteroGraphOptions options)
    : options_(options),
      overlay_origin_(base != nullptr ? base->num_nodes() : 0),
      mint_origin_(base != nullptr ? base->num_nodes() : 0),
      epoch_chunks_(new std::atomic<EpochChunk*>[kMaxNodeChunks]()),
      record_chunks_(new std::atomic<RecordChunk*>[kMaxNodeChunks]()),
      seg_chunks_(new std::atomic<SegStatChunk*>[kMaxSegChunks]()) {
  ZCHECK(base != nullptr);
  {
    obs::MetricsRegistry* reg = options_.registry != nullptr
                                    ? options_.registry
                                    : obs::MetricsRegistry::Global();
    fold_pause_us_ = reg->GetHistogram("maintenance.fold_pause_us");
    fold_segments_ = reg->GetHistogram("maintenance.fold_segments");
  }
  content_dim_ = base->content_dim();
  zero_content_.assign(static_cast<size_t>(content_dim_), 0.0f);
  int64_t span = options_.segment_span;
  if (span == 0) {
    // Auto: ~16 segments over the base, never finer than 64 rows — small
    // graphs degenerate to one segment (incremental == full fold there).
    const int64_t target = std::max<int64_t>(64, overlay_origin_ / 16);
    span = 64;
    while (span < target) span <<= 1;
  }
  ZCHECK(span > 0 && (span & (span - 1)) == 0)
      << "segment_span must be a power of two";
  segment_span_ = span;
  segment_shift_ = 0;
  while ((int64_t{1} << segment_shift_) < span) ++segment_shift_;
  for (int t = 0; t < graph::kNumNodeTypes; ++t) {
    base_type_counts_[t] =
        base->num_nodes_of_type(static_cast<graph::NodeType>(t));
  }
  EnsureEpochSlots(overlay_origin_);
  // Generation 1 for the initial partition: 0 stays the "beyond coverage"
  // sentinel generation_of() hands out for never-folded overlay ids.
  base_ = std::make_shared<const SegmentedCsr>(*base, span, /*generation=*/1);
  base_generation_.store(1, std::memory_order_release);
}

StatusOr<std::unique_ptr<DynamicHeteroGraph>> DynamicHeteroGraph::Recover(
    const RecoveryImage& image, DynamicHeteroGraphOptions options) {
  if (image.base == nullptr) {
    return Status::InvalidArgument("recovery image has no base");
  }
  const int64_t coverage = image.base->num_nodes();
  if (options.segment_span != 0 &&
      options.segment_span != image.base->segment_span()) {
    return Status::InvalidArgument(
        "options.segment_span disagrees with the checkpointed base");
  }
  if (image.base_generation == 0) {
    return Status::InvalidArgument("base generation must be >= 1");
  }
  for (int64_t s = 0; s < image.base->num_segments(); ++s) {
    if (image.base->segment_generation(s) > image.base_generation) {
      return Status::InvalidArgument(
          "a segment's generation exceeds the recorded base generation");
    }
  }
  if (image.mint_origin < 0 || image.mint_origin > coverage) {
    return Status::InvalidArgument("mint origin outside the base id-space");
  }
  if (static_cast<int64_t>(image.folded_birth_epochs.size()) !=
      coverage - image.mint_origin) {
    return Status::InvalidArgument(
        "folded birth table does not span [mint_origin, base coverage)");
  }
  uint64_t last_birth = 0;
  for (uint64_t b : image.folded_birth_epochs) {
    if (b == 0 || b < last_birth) {
      return Status::InvalidArgument(
          "folded birth epochs must be positive and monotone in id");
    }
    last_birth = b;
  }
  NodeId expect = coverage;
  for (const RestoredNodeRecord& r : image.overlay_records) {
    if (r.id != expect++) {
      return Status::InvalidArgument(
          "overlay records must be contiguous from base coverage");
    }
    if (r.birth_epoch == 0 || r.birth_epoch < last_birth) {
      return Status::InvalidArgument(
          "overlay record birth epochs must be positive and monotone in id");
    }
    last_birth = r.birth_epoch;
    if (r.applied) {
      if (static_cast<int>(r.content.size()) != image.base->content_dim()) {
        return Status::InvalidArgument("restored record content dim mismatch");
      }
      if (static_cast<int>(r.type) < 0 ||
          static_cast<int>(r.type) >= graph::kNumNodeTypes) {
        return Status::InvalidArgument("restored record type out of range");
      }
    } else if (r.birth_epoch <= image.checkpoint_epoch) {
      // An unapplied batch holds the watermark — and SafeTruncateEpoch —
      // below its epoch, so an unapplied record born at or below the
      // checkpoint epoch can only come from a corrupt manifest.
      return Status::InvalidArgument(
          "an unapplied record cannot be born at or below the checkpoint "
          "epoch");
    }
  }
  return std::unique_ptr<DynamicHeteroGraph>(
      new DynamicHeteroGraph(image, options));
}

DynamicHeteroGraph::DynamicHeteroGraph(const RecoveryImage& image,
                                       DynamicHeteroGraphOptions options)
    : options_(options),
      overlay_origin_(image.base->num_nodes()),
      mint_origin_(image.mint_origin),
      epoch_chunks_(new std::atomic<EpochChunk*>[kMaxNodeChunks]()),
      record_chunks_(new std::atomic<RecordChunk*>[kMaxNodeChunks]()),
      seg_chunks_(new std::atomic<SegStatChunk*>[kMaxSegChunks]()) {
  {
    obs::MetricsRegistry* reg = options_.registry != nullptr
                                    ? options_.registry
                                    : obs::MetricsRegistry::Global();
    fold_pause_us_ = reg->GetHistogram("maintenance.fold_pause_us");
    fold_segments_ = reg->GetHistogram("maintenance.fold_segments");
  }
  content_dim_ = image.base->content_dim();
  zero_content_.assign(static_cast<size_t>(content_dim_), 0.0f);
  segment_span_ = image.base->segment_span();
  segment_shift_ = image.base->span_shift();
  folded_birth_epochs_ = image.folded_birth_epochs;
  for (int t = 0; t < graph::kNumNodeTypes; ++t) {
    base_type_counts_[t] =
        image.base->num_nodes_of_type(static_cast<graph::NodeType>(t));
  }
  EnsureEpochSlots(overlay_origin_);
  base_ = image.base;
  base_generation_.store(image.base_generation, std::memory_order_release);
  // Per-segment replay floors, mirrored into the pressure stats so the
  // janitor's staleness view survives the restart.
  replay_floors_.reserve(static_cast<size_t>(image.base->num_segments()));
  for (int64_t s = 0; s < image.base->num_segments(); ++s) {
    const uint64_t floor = image.base->segment(s).folded_epoch();
    replay_floors_.push_back(floor);
    seg_stat(s).folded_epoch.store(floor, std::memory_order_release);
  }
  // Restore the overlay records past base coverage. Applied records carry
  // their payloads (their WAL batches replay as no-ops); unapplied records
  // reserve their id + birth epoch and take their payload from replay.
  {
    std::lock_guard<std::mutex> lock(alloc_mu_);
    for (const RestoredNodeRecord& r : image.overlay_records) {
      const int64_t idx = r.id - overlay_origin_;
      Status st = GrowAllocationLocked(idx + 1, r.birth_epoch);
      ZCHECK(st.ok()) << st.ToString();  // Recover() validated monotonicity
      if (!r.applied) continue;
      OverlayNodeRecord& rec = overlay_record(r.id);
      rec.type = r.type;
      rec.type_claimed = true;
      rec.timestamp = r.timestamp;
      rec.content = r.content;
      rec.slots = r.slots;
      overlay_type_counts_[static_cast<int>(r.type)].fetch_add(
          1, std::memory_order_relaxed);
      rec.applied.store(true, std::memory_order_release);
    }
  }
  AdvanceAppliedNodePrefix();
  // The recovered graph reads exactly as a snapshot at the checkpoint epoch
  // did pre-crash: restored records born above it stay invisible until
  // replay re-applies their batches and the watermark passes their births.
  max_applied_epoch_.store(image.checkpoint_epoch, std::memory_order_release);
  watermark_epoch_.store(image.checkpoint_epoch, std::memory_order_release);
  compacted_through_epoch_ = image.checkpoint_epoch;
}

uint64_t DynamicHeteroGraph::MintBirthEpoch(NodeId id) const {
  if (id < mint_origin_) return 0;  // offline-born: predates every epoch
  if (id < overlay_origin_) {
    return folded_birth_epochs_[static_cast<size_t>(id - mint_origin_)];
  }
  ZCHECK(id < num_nodes_allocated());
  return overlay_record(id).birth_epoch;
}

DynamicHeteroGraph::RestoredNodeRecord DynamicHeteroGraph::SnapshotNodeRecord(
    NodeId id) const {
  ZCHECK(id >= overlay_origin_ && id < num_nodes_allocated());
  const OverlayNodeRecord& rec = overlay_record(id);
  RestoredNodeRecord out;
  out.id = id;
  out.birth_epoch = rec.birth_epoch;  // immutable once published
  if (rec.applied.load(std::memory_order_acquire)) {
    // The payload is immutable once `applied` is set (release/acquire pair
    // with ApplyBatch), so this copy is race-free under live ingest. An
    // unapplied payload may be mid-write — its WAL batch is the durable
    // source instead.
    out.applied = true;
    out.type = rec.type;
    out.timestamp = rec.timestamp;
    out.content = rec.content;
    out.slots = rec.slots;
  }
  return out;
}

DynamicHeteroGraph::~DynamicHeteroGraph() {
  for (size_t c = 0; c < kMaxNodeChunks; ++c) {
    delete epoch_chunks_[c].load(std::memory_order_acquire);
    delete record_chunks_[c].load(std::memory_order_acquire);
  }
  for (size_t c = 0; c < kMaxSegChunks; ++c) {
    delete seg_chunks_[c].load(std::memory_order_acquire);
  }
}

void DynamicHeteroGraph::EnsureEpochSlots(int64_t n) {
  if (n <= 0) return;
  const size_t need = static_cast<size_t>((n - 1) >> kNodeChunkBits) + 1;
  ZCHECK(need <= kMaxNodeChunks) << "id-space exceeds the chunk capacity";
  const int64_t nsegs = ((n - 1) >> segment_shift_) + 1;
  const size_t seg_need = static_cast<size_t>((nsegs - 1) >> kSegChunkBits) + 1;
  ZCHECK(seg_need <= kMaxSegChunks)
      << "segment count exceeds the chunk capacity";
  std::lock_guard<std::mutex> lock(grow_mu_);
  for (size_t c = 0; c < need; ++c) {
    if (epoch_chunks_[c].load(std::memory_order_relaxed) == nullptr) {
      epoch_chunks_[c].store(new EpochChunk(), std::memory_order_release);
    }
  }
  for (size_t c = 0; c < seg_need; ++c) {
    if (seg_chunks_[c].load(std::memory_order_relaxed) == nullptr) {
      seg_chunks_[c].store(new SegStatChunk(), std::memory_order_release);
    }
  }
}

Status DynamicHeteroGraph::GrowAllocationLocked(int64_t new_end,
                                                uint64_t epoch) {
  const int64_t before = overlay_allocated_.load(std::memory_order_relaxed);
  if (new_end <= before) return Status::OK();
  if (before > 0 &&
      overlay_record(overlay_origin_ + before - 1).birth_epoch > epoch) {
    return Status::InvalidArgument(
        "birth epochs must be monotone in id (allocate under the log's "
        "epoch lock)");
  }
  const size_t need =
      static_cast<size_t>((new_end - 1) >> kNodeChunkBits) + 1;
  if (need > kMaxNodeChunks) {
    return Status::OutOfRange("id-space exceeds the chunk capacity");
  }
  for (size_t c = 0; c < need; ++c) {
    if (record_chunks_[c].load(std::memory_order_relaxed) == nullptr) {
      record_chunks_[c].store(new RecordChunk(), std::memory_order_release);
    }
  }
  EnsureEpochSlots(overlay_origin_ + new_end);
  for (int64_t i = before; i < new_end; ++i) {
    overlay_record(overlay_origin_ + i).birth_epoch = epoch;
  }
  overlay_allocated_.store(new_end, std::memory_order_release);
  return Status::OK();
}

NodeId DynamicHeteroGraph::AllocateNodeIds(int count, uint64_t epoch) {
  ZCHECK_GT(count, 0);
  ZCHECK_GT(epoch, 0u) << "node ids are born at a log epoch";
  std::lock_guard<std::mutex> lock(alloc_mu_);
  const int64_t start = overlay_allocated_.load(std::memory_order_relaxed);
  Status st = GrowAllocationLocked(start + count, epoch);
  ZCHECK(st.ok()) << st.ToString();
  return overlay_origin_ + start;
}

StatusOr<NodeId> DynamicHeteroGraph::AllocateNodeIds(
    const std::vector<NodeEvent>& nodes, uint64_t epoch) {
  if (nodes.empty()) {
    return Status::InvalidArgument("typed allocation needs node events");
  }
  if (epoch == 0) {
    return Status::InvalidArgument("node ids are born at a log epoch");
  }
  std::array<int64_t, graph::kNumNodeTypes> add = {0, 0, 0};
  for (const NodeEvent& nv : nodes) ++add[static_cast<int>(nv.type)];
  std::lock_guard<std::mutex> lock(alloc_mu_);
  // Capacity first, allocation second: exhaustion must reject before any id
  // is burned — a stranded allocated-but-unapplied record would freeze the
  // applied prefix (and every later node's visibility) behind it.
  for (int t = 0; t < graph::kNumNodeTypes; ++t) {
    const int64_t cap = options_.max_nodes_per_type[t];
    if (cap > 0 &&
        base_type_counts_[t] +
                overlay_type_counts_[t].load(std::memory_order_relaxed) +
                add[t] >
            cap) {
      return Status::OutOfRange(
          std::string("node capacity exhausted for type ") +
          graph::NodeTypeName(static_cast<graph::NodeType>(t)));
    }
  }
  const int64_t start = overlay_allocated_.load(std::memory_order_relaxed);
  Status st = GrowAllocationLocked(start + static_cast<int64_t>(nodes.size()),
                                   epoch);
  if (!st.ok()) return st;
  for (size_t i = 0; i < nodes.size(); ++i) {
    OverlayNodeRecord& rec =
        overlay_record(overlay_origin_ + start + static_cast<int64_t>(i));
    rec.type = nodes[i].type;
    rec.type_claimed = true;
  }
  for (int t = 0; t < graph::kNumNodeTypes; ++t) {
    if (add[t] != 0) {
      overlay_type_counts_[t].fetch_add(add[t], std::memory_order_acq_rel);
    }
  }
  return overlay_origin_ + start;
}

int64_t DynamicHeteroGraph::VisibleOverlayNodes(uint64_t epoch) const {
  // Binary search over the monotone birth epochs, clamped to the applied
  // prefix: an allocated-but-unapplied record (its batch is still pending,
  // or was rejected) must never become readable.
  int64_t lo = 0;
  int64_t hi = std::min(overlay_allocated_.load(std::memory_order_acquire),
                        applied_node_prefix_.load(std::memory_order_acquire));
  while (lo < hi) {
    const int64_t mid = lo + (hi - lo) / 2;
    if (overlay_record(overlay_origin_ + mid).birth_epoch <= epoch) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void DynamicHeteroGraph::AdvanceAppliedNodePrefix() {
  std::lock_guard<std::mutex> lock(alloc_mu_);
  const int64_t allocated =
      overlay_allocated_.load(std::memory_order_acquire);
  int64_t prefix = applied_node_prefix_.load(std::memory_order_relaxed);
  while (prefix < allocated &&
         overlay_record(overlay_origin_ + prefix)
             .applied.load(std::memory_order_acquire)) {
    ++prefix;
  }
  applied_node_prefix_.store(prefix, std::memory_order_release);
}

std::shared_ptr<const SegmentedCsr> DynamicHeteroGraph::base() const {
  std::shared_lock<std::shared_mutex> lock(base_mu_);
  return base_;
}

std::pair<std::shared_ptr<const SegmentedCsr>, uint64_t>
DynamicHeteroGraph::CapturedBase() const {
  std::shared_lock<std::shared_mutex> lock(base_mu_);
  return {base_, base_generation_.load(std::memory_order_acquire)};
}

void DynamicHeteroGraph::ConfigureDecay(const DecaySpec& spec,
                                        const LogicalClock* clock) {
  ZCHECK(!spec.active() || clock != nullptr)
      << "an active TTL/decay window needs a LogicalClock";
  std::unique_lock<std::shared_mutex> lock(decay_mu_);
  decay_spec_ = spec;
  clock_ = clock;
}

void DynamicHeteroGraph::SetClock(const LogicalClock* clock) {
  std::unique_lock<std::shared_mutex> lock(decay_mu_);
  clock_ = clock;
}

DecaySpec DynamicHeteroGraph::decay_spec() const {
  std::shared_lock<std::shared_mutex> lock(decay_mu_);
  return decay_spec_;
}

void DynamicHeteroGraph::AttachHotNodeCache(
    maintenance::HotNodeOverlayCache* cache) {
  hot_cache_.store(cache, std::memory_order_release);
}

void DynamicHeteroGraph::DetachHotNodeCache(
    maintenance::HotNodeOverlayCache* cache) {
  maintenance::HotNodeOverlayCache* expected = cache;
  hot_cache_.compare_exchange_strong(expected, nullptr,
                                     std::memory_order_acq_rel);
}

DynamicHeteroGraph::Snapshot::Snapshot(
    const DynamicHeteroGraph* owner,
    std::shared_ptr<const SegmentedCsr> base, uint64_t base_generation,
    uint64_t epoch, DecaySpec decay, int64_t as_of)
    : owner_(owner),
      base_(std::move(base)),
      epoch_(epoch),
      base_generation_(base_generation),
      // The pinned id-space. After a fold the new base may already cover
      // overlay nodes this epoch cannot "see" through birth epochs
      // (folding goes by applied state, not snapshot visibility), so the
      // base size is the floor.
      num_nodes_(std::max(base_->num_nodes(),
                          owner->overlay_origin_ +
                              owner->VisibleOverlayNodes(epoch))),
      hot_cache_(owner->hot_cache_.load(std::memory_order_acquire)),
      hot_pin_(hot_cache_ != nullptr ? hot_cache_->PinReaders() : nullptr),
      decay_(decay),
      decay_active_(decay.active()),
      as_of_(as_of) {}

graph::NodeType DynamicHeteroGraph::Snapshot::node_type(NodeId node) const {
  ZCHECK(node >= 0 && node < num_nodes_);
  if (node < base_->num_nodes()) return base_->node_type(node);
  return owner_->overlay_record(node).type;
}

const float* DynamicHeteroGraph::Snapshot::content(NodeId node) const {
  ZCHECK(node >= 0 && node < num_nodes_);
  if (node < base_->num_nodes()) return base_->content(node);
  const OverlayNodeRecord& rec = owner_->overlay_record(node);
  // Defensive zero fallback (payloads are never freed while the graph
  // lives, but an empty vector's data() may be null).
  if (rec.content.empty()) return owner_->zero_content_.data();
  return rec.content.data();
}

std::span<const int64_t> DynamicHeteroGraph::Snapshot::slots(
    NodeId node) const {
  ZCHECK(node >= 0 && node < num_nodes_);
  if (node < base_->num_nodes()) return base_->slots(node);
  const OverlayNodeRecord& rec = owner_->overlay_record(node);
  return {rec.slots.data(), rec.slots.size()};
}

DynamicHeteroGraph::Snapshot DynamicHeteroGraph::SnapshotUnder(
    const DecaySpec* override_window) const {
  DecaySpec spec;
  const LogicalClock* clock = nullptr;
  {
    std::shared_lock<std::shared_mutex> lock(decay_mu_);
    spec = override_window != nullptr ? *override_window : decay_spec_;
    clock = clock_;
  }
  // ConfigureDecay enforces this for the graph default; per-view windows
  // land here, where a missing clock would otherwise silently disable the
  // whole window (age 0 - timestamp never expires anything).
  ZCHECK(!spec.active() || clock != nullptr)
      << "an active TTL/decay window needs a LogicalClock "
         "(SetClock/ConfigureDecay)";
  const int64_t as_of = spec.active() ? clock->NowSeconds() : 0;
  auto [base, generation] = CapturedBase();
  return Snapshot(this, std::move(base), generation, watermark_epoch(), spec,
                  as_of);
}

DynamicHeteroGraph::Snapshot DynamicHeteroGraph::MakeSnapshot() const {
  return SnapshotUnder(nullptr);
}

DynamicHeteroGraph::Snapshot DynamicHeteroGraph::MakeSnapshot(
    const DecaySpec& window) const {
  return SnapshotUnder(&window);
}

void DynamicHeteroGraph::PublishWatermarkLocked() {
  // Issued epochs are strictly increasing, so min(pending) only grows as
  // batches land and the candidate is monotone; the CAS-max keeps the
  // published watermark from ever moving backwards regardless.
  const uint64_t candidate =
      pending_epochs_.empty()
          ? max_applied_epoch_.load(std::memory_order_acquire)
          : *pending_epochs_.begin() - 1;
  uint64_t cur = watermark_epoch_.load(std::memory_order_relaxed);
  while (cur < candidate && !watermark_epoch_.compare_exchange_weak(
                                cur, candidate, std::memory_order_acq_rel)) {
  }
}

void DynamicHeteroGraph::NoteEpochIssued(uint64_t epoch) {
  if (epoch == 0) return;
  std::lock_guard<std::mutex> lock(epoch_mu_);
  pending_epochs_.insert(epoch);
  PublishWatermarkLocked();
}

void DynamicHeteroGraph::AttachParticipant(CompactionParticipant* participant) {
  if (participant == nullptr) return;
  std::lock_guard<std::mutex> lock(participants_mu_);
  for (CompactionParticipant* p : participants_) {
    if (p == participant) return;
  }
  participants_.push_back(participant);
}

void DynamicHeteroGraph::DetachParticipant(CompactionParticipant* participant) {
  std::lock_guard<std::mutex> lock(participants_mu_);
  participants_.erase(
      std::remove(participants_.begin(), participants_.end(), participant),
      participants_.end());
}

size_t DynamicHeteroGraph::VisiblePrefix(const NodeOverlay& ov,
                                         uint64_t at_epoch) {
  auto it = std::upper_bound(
      ov.entries.begin(), ov.entries.end(), at_epoch,
      [](uint64_t e, const DeltaEntry& d) { return e < d.epoch; });
  return static_cast<size_t>(it - ov.entries.begin());
}

Status DynamicHeteroGraph::ApplyBatch(const DeltaBatch& batch) {
  // A rejected batch will never apply: retire its pending-epoch mark on
  // every failure path, or the watermark would freeze below it forever.
  auto reject = [this, &batch](Status st) {
    std::lock_guard<std::mutex> lock(epoch_mu_);
    pending_epochs_.erase(batch.epoch);
    PublishWatermarkLocked();
    return st;
  };
  if (batch.epoch == 0) {
    return reject(Status::InvalidArgument("delta batch has no epoch"));
  }
  auto base = this->base();
  // Validate the whole batch — edges included — before RegisterNodeEvents
  // commits any allocation: a batch rejected after allocating would leave a
  // permanently-unapplied record that blocks the applied-node prefix (and
  // with it every later node's visibility).
  const int64_t n = num_nodes_allocated();
  auto in_batch_node = [&batch](NodeId id) {
    for (const NodeEvent& nv : batch.node_events) {
      if (nv.id == id) return true;
    }
    return false;
  };
  for (const EdgeEvent& ev : batch.events) {
    for (const NodeId endpoint : {ev.src, ev.dst}) {
      if (endpoint >= 0 && endpoint < overlay_origin_) continue;
      // Overlay endpoints must be introduced by this very batch, or already
      // applied at or below this batch's epoch — otherwise a snapshot could
      // surface an edge to an id beyond its pinned num_nodes().
      if (in_batch_node(endpoint)) continue;
      if (endpoint < 0 || endpoint >= n) {
        return reject(Status::OutOfRange("edge event endpoint out of range"));
      }
      const OverlayNodeRecord& rec = overlay_record(endpoint);
      if (rec.birth_epoch > batch.epoch) {
        return reject(Status::InvalidArgument(
            "edge references a node born at a later epoch"));
      }
      if (!rec.applied.load(std::memory_order_acquire)) {
        return reject(Status::InvalidArgument(
            "edge references a never-ingested node id"));
      }
    }
    if (ev.src == ev.dst) {
      return reject(Status::InvalidArgument("self-loops are not allowed"));
    }
    if (!(ev.weight >= 0.0f) || ev.weight > 1e30f) {
      // Rejects negatives, NaN (all comparisons false) and infinities,
      // which would poison the overlay prefix sums.
      return reject(
          Status::InvalidArgument("edge weight must be finite and non-negative"));
    }
  }
  // Register (or, for replay onto a fresh graph, allocate) the batch's node
  // records; validates before mutating, so a rejection leaves no trace.
  if (!batch.node_events.empty()) {
    Status st = RegisterNodeEvents(batch);
    if (!st.ok()) return reject(st);
  }
  // Apply node events before edge events, so a mixed batch introduces a
  // node and its first edges at one visibility instant (the batch epoch).
  bool applied_nodes = false;
  for (const NodeEvent& nv : batch.node_events) {
    if (nv.id < overlay_origin_) continue;  // replayed mint already folded
    OverlayNodeRecord& rec = overlay_record(nv.id);
    if (rec.applied.load(std::memory_order_acquire)) continue;  // replay
    // Per-type accounting: a typed allocation already counted its claim;
    // the legacy untyped path counts here, at apply. A (misused) claim
    // mismatch moves the count rather than double-counting.
    if (!rec.type_claimed) {
      overlay_type_counts_[static_cast<int>(nv.type)].fetch_add(
          1, std::memory_order_acq_rel);
    } else if (rec.type != nv.type) {
      overlay_type_counts_[static_cast<int>(rec.type)].fetch_sub(
          1, std::memory_order_acq_rel);
      overlay_type_counts_[static_cast<int>(nv.type)].fetch_add(
          1, std::memory_order_acq_rel);
    }
    rec.type = nv.type;
    rec.timestamp = nv.timestamp;
    rec.content = nv.content;
    rec.slots = nv.slots;
    rec.applied.store(true, std::memory_order_release);
    applied_nodes = true;
  }
  if (applied_nodes) AdvanceAppliedNodePrefix();
  for (const EdgeEvent& ev : batch.events) {
    // Recovery replay: a half-edge a checkpointed segment already folded
    // must not re-enter the overlay (the next fold would double-count it);
    // the two directions decide independently — seg(src) may have folded
    // this epoch while seg(dst) had not. Inert outside replay (empty
    // floors, and live epochs always exceed every floor).
    if (!ReplayFolded(ev.src, ev.dst, batch.epoch)) {
      AppendHalfEdge(*base, ev.src, {ev.dst, ev.weight, ev.kind}, batch.epoch,
                     ev.timestamp);
    }
    if (!ReplayFolded(ev.dst, ev.src, batch.epoch)) {
      AppendHalfEdge(*base, ev.dst, {ev.src, ev.weight, ev.kind}, batch.epoch,
                     ev.timestamp);
    }
  }
  // Hot-node entries for the touched endpoints are stale now (their overlay
  // version moved); the lookup version check already rejects them, eager
  // invalidation just returns the memory before the next refresh pass.
  if (auto* cache = hot_cache_.load(std::memory_order_acquire)) {
    for (const EdgeEvent& ev : batch.events) {
      cache->Invalidate(ev.src);
      cache->Invalidate(ev.dst);
    }
  }
  // Publish the epoch only after every entry is in place, so snapshots taken
  // at this epoch see the whole batch.
  uint64_t cur = max_applied_epoch_.load(std::memory_order_relaxed);
  while (cur < batch.epoch &&
         !max_applied_epoch_.compare_exchange_weak(
             cur, batch.epoch, std::memory_order_acq_rel)) {
  }
  {
    // Retire the pending mark last: the watermark may only advance past this
    // epoch once its entries are fully visible.
    std::lock_guard<std::mutex> lock(epoch_mu_);
    pending_epochs_.erase(batch.epoch);
    PublishWatermarkLocked();
  }
  return Status::OK();
}

Status DynamicHeteroGraph::RegisterNodeEvents(const DeltaBatch& batch) {
  std::lock_guard<std::mutex> lock(alloc_mu_);
  const int64_t before = overlay_allocated_.load(std::memory_order_relaxed);
  int64_t allocated = before;
  // Pure validation first — ApplyBatch's whole-batch-or-nothing contract.
  for (const NodeEvent& nv : batch.node_events) {
    if (nv.id < overlay_origin_) {
      // A WAL-replayed mint the recovered base already covers (the node
      // folded before the crash): nothing to register, and the apply loop
      // skips it too. Everything else below the origin is a caller bug.
      if (!replay_floors_.empty() && nv.id >= mint_origin_ &&
          MintBirthEpoch(nv.id) == batch.epoch) {
        continue;
      }
      return Status::InvalidArgument("node event id inside the base id-space");
    }
    if (static_cast<int>(nv.content.size()) != content_dim_) {
      return Status::InvalidArgument("node event content dim mismatch");
    }
    const int64_t idx = nv.id - overlay_origin_;
    if (idx < allocated) {
      // Pre-allocated (the pipeline path) or a replayed duplicate: the id
      // must have been born at this batch's epoch, or visibility and
      // adjacency would disagree about when the node appeared.
      if (idx < before && overlay_record(nv.id).birth_epoch != batch.epoch) {
        return Status::InvalidArgument(
            "node event epoch does not match the id's birth epoch");
      }
    } else if (idx == allocated) {
      // Replay / direct-apply path onto a graph that never allocated this
      // id: extend the id-space in order.
      ++allocated;
    } else {
      return Status::InvalidArgument("node event id leaves an allocation gap");
    }
  }
  return GrowAllocationLocked(allocated, batch.epoch);
}

void DynamicHeteroGraph::AppendHalfEdge(const SegmentedCsr& base, NodeId node,
                                        NeighborEntry entry, uint64_t epoch,
                                        int64_t timestamp) {
  LockShard& sh = lock_shards_[ShardFor(node)];
  {
    std::unique_lock<std::shared_mutex> lock(sh.mu);
    auto [it, inserted] = sh.overlays.try_emplace(node);
    NodeOverlay& ov = it->second;
    if (inserted) {
      // One O(degree) pass caches the base weight mass for the two-level
      // base-vs-delta sampling coin. Overlay-born nodes beyond base
      // coverage have no base edges.
      double total = 0.0;
      if (node < base.num_nodes()) {
        for (float w : base.neighbor_weights(node)) total += w;
      }
      ov.base_total_weight = total;
    }
    // Entries stay epoch-ordered; batches almost always arrive in epoch
    // order, so this is an append with a rare short sorted insert.
    size_t pos = ov.entries.size();
    while (pos > 0 && ov.entries[pos - 1].epoch > epoch) --pos;
    ov.entries.insert(ov.entries.begin() + pos,
                      DeltaEntry{entry, epoch, timestamp});
    ov.weight_prefix.resize(ov.entries.size());
    for (size_t i = pos; i < ov.entries.size(); ++i) {
      ov.weight_prefix[i] = (i == 0 ? 0.0 : ov.weight_prefix[i - 1]) +
                            static_cast<double>(ov.entries[i].e.weight);
    }
    // Lifetime traffic of an overlay-born node — the cold-node TTL signal.
    if (node >= overlay_origin_) ++overlay_record(node).lifetime_entries;
  }
  total_entries_.fetch_add(1, std::memory_order_acq_rel);
  SegStat& ss = seg_stat(segment_of(node));
  ss.entries.fetch_add(1, std::memory_order_relaxed);
  ss.writes.fetch_add(1, std::memory_order_relaxed);
  std::atomic<uint64_t>& slot = node_epoch_slot(node);
  uint64_t cur = slot.load(std::memory_order_relaxed);
  while (cur < epoch &&
         !slot.compare_exchange_weak(cur, epoch,
                                     std::memory_order_acq_rel)) {
  }
}

const maintenance::HotNodeCacheEntry* DynamicHeteroGraph::Snapshot::HotEntry(
    NodeId node, uint64_t overlay_version) const {
  if (hot_cache_ == nullptr || overlay_version == 0) return nullptr;
  // Entries are stamped with the generation of the one segment backing the
  // node, so an incremental fold elsewhere leaves this lookup valid.
  return hot_cache_->Find(node, epoch_, overlay_version,
                          base_->generation_of(node), decay_active_, as_of_,
                          decay_);
}

float DynamicHeteroGraph::Snapshot::EntryWeight(const DeltaEntry& d) const {
  if (!decay_active_) return d.e.weight;
  const int64_t age = as_of_ - d.timestamp;
  if (decay_.Expired(d.e.kind, age)) return -1.0f;
  return decay_.DecayedWeight(d.e.kind, d.e.weight, age);
}

template <typename Fn>
void DynamicHeteroGraph::Snapshot::ForEachVisibleDelta(
    const DeltaEntry* entries, size_t prefix, Fn&& fn) const {
  for (size_t i = 0; i < prefix; ++i) {
    const float w = EntryWeight(entries[i]);
    if (w < 0.0f) continue;  // past TTL at as_of
    fn(entries[i], w);
  }
}

bool DynamicHeteroGraph::Snapshot::HasDelta(NodeId node) const {
  return DeltaDegree(node) > 0;
}

int64_t DynamicHeteroGraph::Snapshot::DeltaDegree(NodeId node) const {
  ZCHECK(node >= 0 && node < num_nodes_);
  if (owner_->node_epoch_slot(node).load(std::memory_order_acquire) == 0) {
    return 0;
  }
  const LockShard& sh = owner_->lock_shards_[ShardFor(node)];
  std::shared_lock<std::shared_mutex> lock(sh.mu);
  auto it = sh.overlays.find(node);
  if (it == sh.overlays.end()) return 0;
  const size_t prefix = VisiblePrefix(it->second, epoch_);
  if (!decay_active_) return static_cast<int64_t>(prefix);
  int64_t alive = 0;
  ForEachVisibleDelta(it->second.entries.data(), prefix,
                      [&alive](const DeltaEntry&, float) { ++alive; });
  return alive;
}

int64_t DynamicHeteroGraph::Snapshot::Degree(NodeId node) const {
  const int64_t base_degree = InBase(node) ? base_->degree(node) : 0;
  return base_degree + DeltaDegree(node);
}

double DynamicHeteroGraph::Snapshot::TotalWeight(NodeId node) const {
  ZCHECK(node >= 0 && node < num_nodes_);
  if (owner_->node_epoch_slot(node).load(std::memory_order_acquire) == 0) {
    double total = 0.0;
    if (InBase(node)) {
      for (float w : base_->neighbor_weights(node)) total += w;
    }
    return total;
  }
  const LockShard& sh = owner_->lock_shards_[ShardFor(node)];
  std::shared_lock<std::shared_mutex> lock(sh.mu);
  auto it = sh.overlays.find(node);
  double total = 0.0;
  if (it != sh.overlays.end()) {
    const NodeOverlay& ov = it->second;
    total = ov.base_total_weight;
    const size_t prefix = VisiblePrefix(ov, epoch_);
    if (!decay_active_) {
      if (prefix > 0) total += ov.weight_prefix[prefix - 1];
      return total;
    }
    ForEachVisibleDelta(
        ov.entries.data(), prefix,
        [&total](const DeltaEntry&, float w) { total += w; });
    return total;
  }
  if (InBase(node)) {
    for (float w : base_->neighbor_weights(node)) total += w;
  }
  return total;
}

namespace {

/// Coalescing key shared by the merged-neighbor representations and the
/// segment fold.
int64_t EntryKey(NodeId neighbor, graph::RelationKind kind) {
  return static_cast<int64_t>(neighbor) * graph::kNumRelationKinds +
         static_cast<int>(kind);
}

}  // namespace

template <typename Keep, typename KeyAt, typename Append, typename AddWeight>
void DynamicHeteroGraph::Snapshot::CoalesceVisibleDeltas(
    const NodeOverlay& ov, size_t merged_size, Keep keep, KeyAt key_at,
    Append append, AddWeight add_weight) const {
  const size_t prefix = VisiblePrefix(ov, epoch_);
  size_t n = merged_size;
  if (prefix < 16) {
    // Tiny deltas: linear coalescing, no extra allocation.
    ForEachVisibleDelta(
        ov.entries.data(), prefix, [&](const DeltaEntry& d, float w) {
          if (!keep(d.e)) return;
          const int64_t k = EntryKey(d.e.neighbor, d.e.kind);
          size_t match = n;
          for (size_t j = 0; j < n; ++j) {
            if (key_at(j) == k) {
              match = j;
              break;
            }
          }
          if (match < n) {
            add_weight(match, w);
          } else {
            append(d.e, w);
            ++n;
          }
        });
    return;
  }
  // Hot nodes accumulate thousands of deltas between compactions; index the
  // merged list by (neighbor, kind) so the merge stays linear.
  std::unordered_map<int64_t, size_t> index;
  index.reserve(n + prefix);
  for (size_t j = 0; j < n; ++j) index.emplace(key_at(j), j);
  ForEachVisibleDelta(
      ov.entries.data(), prefix, [&](const DeltaEntry& d, float w) {
        if (!keep(d.e)) return;
        auto [it, inserted] =
            index.try_emplace(EntryKey(d.e.neighbor, d.e.kind), n);
        if (inserted) {
          append(d.e, w);
          ++n;
        } else {
          add_weight(it->second, w);
        }
      });
}

void DynamicHeteroGraph::Snapshot::Neighbors(
    NodeId node, std::vector<NeighborEntry>* out) const {
  ZCHECK(node >= 0 && node < num_nodes_);
  out->clear();
  const uint64_t node_epoch =
      owner_->node_epoch_slot(node).load(std::memory_order_acquire);
  if (const auto* entry = HotEntry(node, node_epoch)) {
    out->reserve(entry->ids.size());
    for (size_t i = 0; i < entry->ids.size(); ++i) {
      out->push_back({entry->ids[i], entry->weights[i], entry->kinds[i]});
    }
    return;
  }
  if (InBase(node)) {
    auto ids = base_->neighbor_ids(node);
    auto weights = base_->neighbor_weights(node);
    auto kinds = base_->neighbor_kinds(node);
    out->reserve(ids.size());
    for (size_t i = 0; i < ids.size(); ++i) {
      out->push_back({ids[i], weights[i], kinds[i]});
    }
  }
  if (node_epoch == 0) return;
  owner_->NoteSegmentRead(node);
  const LockShard& sh = owner_->lock_shards_[ShardFor(node)];
  std::shared_lock<std::shared_mutex> lock(sh.mu);
  auto it = sh.overlays.find(node);
  if (it == sh.overlays.end()) return;
  CoalesceVisibleDeltas(
      it->second, out->size(), [](const NeighborEntry&) { return true; },
      [out](size_t j) {
        return EntryKey((*out)[j].neighbor, (*out)[j].kind);
      },
      [out](const NeighborEntry& e, float w) {
        out->push_back({e.neighbor, w, e.kind});
      },
      [out](size_t j, float w) { (*out)[j].weight += w; });
}

void DynamicHeteroGraph::Snapshot::Neighbors(
    NodeId node, std::vector<NodeId>* ids, std::vector<float>* weights,
    std::vector<graph::RelationKind>* kinds) const {
  ZCHECK(node >= 0 && node < num_nodes_);
  const uint64_t node_epoch =
      owner_->node_epoch_slot(node).load(std::memory_order_acquire);
  if (const auto* entry = HotEntry(node, node_epoch)) {
    ids->assign(entry->ids.begin(), entry->ids.end());
    weights->assign(entry->weights.begin(), entry->weights.end());
    kinds->assign(entry->kinds.begin(), entry->kinds.end());
    return;
  }
  if (InBase(node)) {
    auto base_ids = base_->neighbor_ids(node);
    auto base_weights = base_->neighbor_weights(node);
    auto base_kinds = base_->neighbor_kinds(node);
    ids->assign(base_ids.begin(), base_ids.end());
    weights->assign(base_weights.begin(), base_weights.end());
    kinds->assign(base_kinds.begin(), base_kinds.end());
  } else {
    ids->clear();
    weights->clear();
    kinds->clear();
  }
  if (node_epoch == 0) return;
  owner_->NoteSegmentRead(node);
  const LockShard& sh = owner_->lock_shards_[ShardFor(node)];
  std::shared_lock<std::shared_mutex> lock(sh.mu);
  auto it = sh.overlays.find(node);
  if (it == sh.overlays.end()) return;
  CoalesceVisibleDeltas(
      it->second, ids->size(), [](const NeighborEntry&) { return true; },
      [&](size_t j) { return EntryKey((*ids)[j], (*kinds)[j]); },
      [&](const NeighborEntry& e, float w) {
        ids->push_back(e.neighbor);
        weights->push_back(w);
        kinds->push_back(e.kind);
      },
      [&](size_t j, float w) { (*weights)[j] += w; });
}

void DynamicHeteroGraph::Snapshot::NeighborsOfType(
    NodeId node, graph::NodeType t, std::vector<NodeId>* ids,
    std::vector<float>* weights, std::vector<graph::RelationKind>* kinds) const {
  ZCHECK(node >= 0 && node < num_nodes_);
  if (InBase(node)) {
    // Base neighbor blocks are sorted by (neighbor type, kind), so the typed
    // sub-range is contiguous — copy it without touching the other types.
    const graph::NeighborBlock typed = graph::TypedCsrBlock(*base_, node, t);
    ids->assign(typed.ids.begin(), typed.ids.end());
    weights->assign(typed.weights.begin(), typed.weights.end());
    kinds->assign(typed.kinds.begin(), typed.kinds.end());
  } else {
    ids->clear();
    weights->clear();
    kinds->clear();
  }
  if (owner_->node_epoch_slot(node).load(std::memory_order_acquire) == 0) {
    return;
  }
  owner_->NoteSegmentRead(node);
  const LockShard& sh = owner_->lock_shards_[ShardFor(node)];
  std::shared_lock<std::shared_mutex> lock(sh.mu);
  auto it = sh.overlays.find(node);
  if (it == sh.overlays.end()) return;
  // Only delta entries whose neighbor is of type t take part in the merge —
  // no full-neighborhood resolution. node_type spans base + overlay, since
  // a delta edge may point at a node born after the offline build.
  CoalesceVisibleDeltas(
      it->second, ids->size(),
      [this, t](const NeighborEntry& entry) {
        return node_type(entry.neighbor) == t;
      },
      [&](size_t j) { return EntryKey((*ids)[j], (*kinds)[j]); },
      [&](const NeighborEntry& entry, float w) {
        ids->push_back(entry.neighbor);
        weights->push_back(w);
        kinds->push_back(entry.kind);
      },
      [&](size_t j, float w) { (*weights)[j] += w; });
}

NodeId DynamicHeteroGraph::Snapshot::SampleOverlayLocked(NodeId node,
                                                         const NodeOverlay& ov,
                                                         size_t prefix,
                                                         Rng* rng) const {
  const SegmentedCsr& base = *base_;
  // Overlay-born nodes beyond base coverage have no base block; their
  // base_total_weight is 0 so the weighted coin below never lands on the
  // base side either.
  const int64_t base_degree = InBase(node) ? base.degree(node) : 0;
  if (!decay_active_) {
    const double delta_w = ov.weight_prefix[prefix - 1];
    const double base_w = ov.base_total_weight;
    const double total = base_w + delta_w;
    if (total <= 0.0) {
      // Degenerate all-zero weights: uniform over base + delta positions,
      // matching AliasTable's degenerate behaviour.
      const uint64_t n = static_cast<uint64_t>(base_degree) + prefix;
      if (n == 0) return -1;
      const uint64_t idx = rng->Uniform(n);
      if (idx < static_cast<uint64_t>(base_degree)) {
        return base.neighbor_ids(node)[idx];
      }
      return ov.entries[idx - base_degree].e.neighbor;
    }
    // Two-level alias-resampling: base-vs-delta coin by weight mass, then an
    // O(1) alias draw in the base or an inverse-CDF draw in the delta prefix.
    const double r = rng->UniformDouble() * total;
    if (r < base_w) return base.SampleNeighbor(node, rng);
    const double target = r - base_w;
    auto pos = std::upper_bound(ov.weight_prefix.begin(),
                                ov.weight_prefix.begin() + prefix, target);
    if (pos == ov.weight_prefix.begin() + prefix) --pos;  // fp guard
    return ov.entries[pos - ov.weight_prefix.begin()].e.neighbor;
  }
  // Windowed sampling: the raw prefix sums do not reflect TTL exclusion or
  // decayed mass, so resolve the live entries on the fly (two passes, no
  // allocation). Hot nodes dodge this cost through the overlay cache.
  double delta_w = 0.0;
  int64_t alive = 0;
  ForEachVisibleDelta(ov.entries.data(), prefix,
                      [&](const DeltaEntry&, float w) {
                        delta_w += w;
                        ++alive;
                      });
  if (alive == 0) {
    return base_degree > 0 ? base.SampleNeighbor(node, rng) : -1;
  }
  const double base_w = ov.base_total_weight;
  const double total = base_w + delta_w;
  if (total <= 0.0) {
    const uint64_t n = static_cast<uint64_t>(base_degree) +
                       static_cast<uint64_t>(alive);
    const uint64_t idx = rng->Uniform(n);
    if (idx < static_cast<uint64_t>(base_degree)) {
      return base.neighbor_ids(node)[idx];
    }
    int64_t skip = static_cast<int64_t>(idx) - base_degree;
    NodeId picked = -1;
    ForEachVisibleDelta(ov.entries.data(), prefix,
                        [&](const DeltaEntry& d, float) {
                          if (skip-- == 0) picked = d.e.neighbor;
                        });
    return picked;
  }
  const double r = rng->UniformDouble() * total;
  if (r < base_w) return base.SampleNeighbor(node, rng);
  const double target = r - base_w;
  double cum = 0.0;
  NodeId picked = -1;
  for (size_t i = 0; i < prefix && picked < 0; ++i) {
    const float w = EntryWeight(ov.entries[i]);
    if (w < 0.0f) continue;
    cum += w;
    if (cum > target) picked = ov.entries[i].e.neighbor;
  }
  if (picked >= 0) return picked;
  // fp guard: land on the last live entry.
  for (size_t i = prefix; i-- > 0;) {
    if (EntryWeight(ov.entries[i]) >= 0.0f) return ov.entries[i].e.neighbor;
  }
  return -1;
}

void DynamicHeteroGraph::Snapshot::SampleOverlayBatchLocked(
    NodeId node, const NodeOverlay& ov, size_t prefix, size_t kk, Rng* rng,
    NodeId* dst) const {
  const graph::SegmentedCsr& base = *base_;
  const int64_t base_degree = InBase(node) ? base.degree(node) : 0;
  // Resolve the base row once: segment locate, alias table, id span. Every
  // draw below consumes the Rng exactly like one SampleOverlayLocked call,
  // so batched and single draws stay bit-identical under a fixed seed.
  const graph::AliasTable* base_alias = nullptr;
  std::span<const NodeId> base_ids;
  if (base_degree > 0) {
    const auto& seg = base.segment(base.segment_of(node));
    const int64_t r = node - seg.first_node();
    base_alias = &seg.row_alias(r);
    base_ids = seg.row_neighbor_ids(r);
  }
  if (!decay_active_) {
    const double delta_w = ov.weight_prefix[prefix - 1];
    const double base_w = ov.base_total_weight;
    const double total = base_w + delta_w;
    if (total <= 0.0) {
      // Degenerate all-zero weights: uniform over base + delta positions.
      const uint64_t n = static_cast<uint64_t>(base_degree) + prefix;
      if (n == 0) return;  // rows stay -1
      for (size_t j = 0; j < kk; ++j) {
        const uint64_t idx = rng->Uniform(n);
        dst[j] = idx < static_cast<uint64_t>(base_degree)
                     ? base_ids[idx]
                     : ov.entries[idx - base_degree].e.neighbor;
      }
      return;
    }
    const auto pb = ov.weight_prefix.begin();
    for (size_t j = 0; j < kk; ++j) {
      const double r = rng->UniformDouble() * total;
      if (r < base_w) {
        dst[j] = base_ids[base_alias->SampleUnchecked(rng)];
        continue;
      }
      const double target = r - base_w;
      auto pos = std::upper_bound(pb, pb + prefix, target);
      if (pos == pb + prefix) --pos;  // fp guard
      dst[j] = ov.entries[pos - pb].e.neighbor;
    }
    return;
  }
  // Windowed path: resolve the live entries once into a cumulative-weight
  // list; each draw then binary-searches where the single draw re-scans.
  // Outcomes match the scan exactly: first live entry whose cumulative
  // weight exceeds the target, last live entry as the fp guard.
  std::vector<std::pair<double, NodeId>> live;  // (cumulative weight, nbr)
  double delta_w = 0.0;
  ForEachVisibleDelta(ov.entries.data(), prefix,
                      [&](const DeltaEntry& d, float w) {
                        delta_w += w;
                        live.emplace_back(delta_w, d.e.neighbor);
                      });
  if (live.empty()) {
    if (base_degree == 0) return;  // nothing drawable: rows stay -1
    for (size_t j = 0; j < kk; ++j) {
      dst[j] = base_ids[base_alias->SampleUnchecked(rng)];
    }
    return;
  }
  const double base_w = ov.base_total_weight;
  const double total = base_w + delta_w;
  if (total <= 0.0) {
    const uint64_t n = static_cast<uint64_t>(base_degree) + live.size();
    for (size_t j = 0; j < kk; ++j) {
      const uint64_t idx = rng->Uniform(n);
      dst[j] = idx < static_cast<uint64_t>(base_degree)
                   ? base_ids[idx]
                   : live[idx - base_degree].second;
    }
    return;
  }
  for (size_t j = 0; j < kk; ++j) {
    const double r = rng->UniformDouble() * total;
    if (r < base_w) {
      dst[j] = base_ids[base_alias->SampleUnchecked(rng)];
      continue;
    }
    const double target = r - base_w;
    auto pos = std::upper_bound(
        live.begin(), live.end(), target,
        [](double t, const std::pair<double, NodeId>& p) {
          return t < p.first;
        });
    dst[j] = pos == live.end() ? live.back().second : pos->second;
  }
}

NodeId DynamicHeteroGraph::Snapshot::SampleNeighbor(NodeId node,
                                                    Rng* rng) const {
  ZCHECK(node >= 0 && node < num_nodes_);
  // Lock-free fast path: untouched nodes sample straight off the base CSR
  // (overlay-born nodes without deltas are isolated at this epoch).
  const uint64_t node_epoch =
      owner_->node_epoch_slot(node).load(std::memory_order_acquire);
  if (node_epoch == 0) {
    return InBase(node) ? base_->SampleNeighbor(node, rng) : -1;
  }
  if (const auto* entry = HotEntry(node, node_epoch)) {
    if (entry->ids.empty()) return -1;
    return entry->ids[entry->alias.Sample(rng)];
  }
  // Locked overlay read: feed the adaptive hotness signal (one relaxed add
  // on the already-slow merge path — hot-cache hits above run at ~static
  // cost and are deliberately not counted as fold pressure).
  owner_->NoteSegmentRead(node);
  const LockShard& sh = owner_->lock_shards_[ShardFor(node)];
  std::shared_lock<std::shared_mutex> lock(sh.mu);
  auto it = sh.overlays.find(node);
  if (it == sh.overlays.end()) {
    return InBase(node) ? base_->SampleNeighbor(node, rng) : -1;
  }
  const NodeOverlay& ov = it->second;
  const size_t prefix = VisiblePrefix(ov, epoch_);
  if (prefix == 0) {
    return InBase(node) ? base_->SampleNeighbor(node, rng) : -1;
  }
  return SampleOverlayLocked(node, ov, prefix, rng);
}

void DynamicHeteroGraph::Snapshot::SampleManyNeighbors(
    std::span<const NodeId> nodes, int k, Rng* rng,
    std::vector<NodeId>* out) const {
  const size_t kk = static_cast<size_t>(std::max(k, 0));
  out->assign(nodes.size() * kk, NodeId{-1});
  if (k <= 0) return;
  // Pass 1 (no RNG): resolve every node's epoch slot and mark which lock
  // shards the batch touches, prefetching the slots ahead of their use.
  // Visibility is epoch-gated (VisiblePrefix caps at the pinned epoch), so
  // reading the slots before taking the shard locks observes the same draws
  // the per-node locking order would.
  std::vector<uint64_t> node_epochs(nodes.size());
  bool shard_needed[kNumLockShards] = {};
  for (size_t r = 0; r < nodes.size(); ++r) {
    const NodeId node = nodes[r];
    ZCHECK(node >= 0 && node < num_nodes_);
    if (r + 1 < nodes.size()) {
      __builtin_prefetch(&owner_->node_epoch_slot(nodes[r + 1]), /*rw=*/0,
                         /*locality=*/1);
    }
    node_epochs[r] =
        owner_->node_epoch_slot(node).load(std::memory_order_acquire);
    if (node_epochs[r] != 0) shard_needed[ShardFor(node)] = true;
  }
  // One shared acquisition per touched shard for the whole batch (ascending
  // index, so concurrent batches cannot deadlock) instead of one lock
  // round-trip per delta node. Writers (ApplyBatch / fold invalidation)
  // take unique locks on single shards and simply wait the batch out.
  std::array<std::shared_lock<std::shared_mutex>, kNumLockShards> locks;
  for (int s = 0; s < kNumLockShards; ++s) {
    if (shard_needed[s]) {
      locks[s] = std::shared_lock<std::shared_mutex>(
          owner_->lock_shards_[s].mu);
    }
  }
  // Pass 2: draw in node order (the Rng consumption order the single-draw
  // path defines).
  std::vector<NodeId> row;      // scratch for base-row batched draws
  std::vector<uint32_t> pos(kk);
  for (size_t r = 0; r < nodes.size(); ++r) {
    const NodeId node = nodes[r];
    NodeId* dst = out->data() + r * kk;
    auto draw_from_base = [&] {
      if (!InBase(node)) return;
      base_->SampleManyNeighbors({&node, 1}, k, rng, &row);
      std::copy(row.begin(), row.end(), dst);
    };
    const uint64_t node_epoch = node_epochs[r];
    if (node_epoch == 0) {
      draw_from_base();
      continue;
    }
    if (const auto* entry = HotEntry(node, node_epoch)) {
      if (entry->ids.empty()) continue;
      entry->alias.SampleBatch(rng, {pos.data(), kk});
      for (size_t j = 0; j < kk; ++j) dst[j] = entry->ids[pos[j]];
      continue;
    }
    owner_->NoteSegmentRead(node);
    const LockShard& sh = owner_->lock_shards_[ShardFor(node)];
    auto it = sh.overlays.find(node);
    const size_t prefix =
        it == sh.overlays.end() ? 0 : VisiblePrefix(it->second, epoch_);
    if (prefix == 0) {
      draw_from_base();
      continue;
    }
    // One visible-prefix resolution and one base-row locate for all k draws
    // of this node.
    SampleOverlayBatchLocked(node, it->second, prefix, kk, rng, dst);
  }
}

std::vector<NodeId> DynamicHeteroGraph::Snapshot::SampleDistinctNeighbors(
    NodeId node, int k, Rng* rng) const {
  ZCHECK(node >= 0 && node < num_nodes_);
  std::vector<NodeId> seen;
  if (k <= 0) return seen;
  const int max_attempts = k * 4;
  auto draw_from_base = [&] {
    // Shared bounded-retry dedup draw over the base alias tables; nothing
    // to draw for an overlay-born node with no visible deltas.
    if (!InBase(node)) return;
    seen = graph::SegmentedCsrView(*base_).SampleDistinctNeighbors(node, k,
                                                                   rng);
  };
  const uint64_t node_epoch =
      owner_->node_epoch_slot(node).load(std::memory_order_acquire);
  if (node_epoch == 0) {
    draw_from_base();
    return seen;
  }
  if (const auto* entry = HotEntry(node, node_epoch)) {
    // Batched O(1) alias draws over the materialized merge.
    if (entry->ids.empty()) return seen;
    for (int a = 0; a < max_attempts && static_cast<int>(seen.size()) < k;
         ++a) {
      const NodeId nb = entry->ids[entry->alias.Sample(rng)];
      if (std::find(seen.begin(), seen.end(), nb) == seen.end()) {
        seen.push_back(nb);
      }
    }
    return seen;
  }
  owner_->NoteSegmentRead(node);
  const LockShard& sh = owner_->lock_shards_[ShardFor(node)];
  std::shared_lock<std::shared_mutex> lock(sh.mu);
  auto it = sh.overlays.find(node);
  const size_t prefix =
      it == sh.overlays.end() ? 0 : VisiblePrefix(it->second, epoch_);
  if (prefix == 0) {
    lock.unlock();
    draw_from_base();
    return seen;
  }
  // One lock acquisition and one visible-prefix resolution for the whole
  // batch of draws.
  for (int a = 0; a < max_attempts && static_cast<int>(seen.size()) < k;
       ++a) {
    const NodeId nb = SampleOverlayLocked(node, it->second, prefix, rng);
    if (nb < 0) break;
    if (std::find(seen.begin(), seen.end(), nb) == seen.end()) {
      seen.push_back(nb);
    }
  }
  return seen;
}

std::vector<NodeId> DynamicHeteroGraph::DeltaNodes(int64_t min_entries) const {
  std::vector<NodeId> out;
  for (const auto& sh : lock_shards_) {
    std::shared_lock<std::shared_mutex> lock(sh.mu);
    for (const auto& [node, ov] : sh.overlays) {
      if (static_cast<int64_t>(ov.entries.size()) >= min_entries) {
        out.push_back(node);
      }
    }
  }
  return out;
}

std::vector<NodeId> DynamicHeteroGraph::DeltaNodes(
    const std::function<int64_t(int64_t)>& min_entries_for_segment) const {
  std::vector<NodeId> out;
  for (const auto& sh : lock_shards_) {
    std::shared_lock<std::shared_mutex> lock(sh.mu);
    for (const auto& [node, ov] : sh.overlays) {
      if (static_cast<int64_t>(ov.entries.size()) >=
          min_entries_for_segment(segment_of(node))) {
        out.push_back(node);
      }
    }
  }
  return out;
}

std::vector<NodeId> DynamicHeteroGraph::ExpireDeltas(int64_t now_seconds) {
  const DecaySpec spec = decay_spec();
  std::vector<NodeId> touched;
  if (!spec.has_ttl()) return touched;

  for (auto& sh : lock_shards_) {
    std::unique_lock<std::shared_mutex> lock(sh.mu);
    int64_t removed_in_shard = 0;
    for (auto it = sh.overlays.begin(); it != sh.overlays.end();) {
      NodeOverlay& ov = it->second;
      // std::remove_if is stable, so surviving entries stay epoch-ordered.
      auto new_end = std::remove_if(
          ov.entries.begin(), ov.entries.end(), [&](const DeltaEntry& d) {
            return spec.Expired(d.e.kind, now_seconds - d.timestamp);
          });
      const int64_t removed =
          static_cast<int64_t>(ov.entries.end() - new_end);
      if (removed == 0) {
        ++it;
        continue;
      }
      const NodeId node = it->first;
      ov.entries.erase(new_end, ov.entries.end());
      removed_in_shard += removed;
      seg_stat(segment_of(node))
          .entries.fetch_sub(removed, std::memory_order_relaxed);
      touched.push_back(node);
      if (ov.entries.empty()) {
        // Readers that already saw a non-zero node_epoch take the shard
        // lock, find no overlay, and fall back to the base — same path as
        // after a fold.
        node_epoch_slot(node).store(0, std::memory_order_release);
        it = sh.overlays.erase(it);
        continue;
      }
      ov.weight_prefix.resize(ov.entries.size());
      double cum = 0.0;
      for (size_t i = 0; i < ov.entries.size(); ++i) {
        cum += static_cast<double>(ov.entries[i].e.weight);
        ov.weight_prefix[i] = cum;
      }
      // The overlay version tracks the newest surviving entry (epoch order
      // makes that the back). A concurrent append's CAS-max simply re-raises
      // it.
      node_epoch_slot(node).store(ov.entries.back().epoch,
                                  std::memory_order_release);
      ++it;
    }
    // Subtract while still holding this shard's lock: a concurrent fold
    // (multi-threaded janitor) adjusts total_entries_ under *all* shard
    // locks, so a sweep-wide deferred subtraction could double-count
    // entries the fold already discarded and drive the counter negative
    // for good.
    total_entries_.fetch_sub(removed_in_shard, std::memory_order_acq_rel);
  }
  // Expiry rewrites overlays without bumping their versions, so the hot
  // cache cannot catch it by version check alone — invalidate eagerly.
  if (auto* cache = hot_cache_.load(std::memory_order_acquire)) {
    for (NodeId node : touched) cache->Invalidate(node);
  }
  return touched;
}

namespace {

/// Parks every attached applier at a batch boundary for the duration of a
/// fold; EndQuiesce runs on every exit path (including errors).
class QuiesceGuard {
 public:
  explicit QuiesceGuard(const std::vector<CompactionParticipant*>& participants)
      : participants_(participants) {
    for (CompactionParticipant* p : participants_) p->BeginQuiesce();
  }
  ~QuiesceGuard() {
    for (CompactionParticipant* p : participants_) p->EndQuiesce();
  }
  QuiesceGuard(const QuiesceGuard&) = delete;
  QuiesceGuard& operator=(const QuiesceGuard&) = delete;

 private:
  const std::vector<CompactionParticipant*>& participants_;
};

}  // namespace

StatusOr<uint64_t> DynamicHeteroGraph::Compact() {
  // "Fold all segments": every covered segment plus the whole frontier.
  const int64_t end =
      std::max(base()->num_nodes(), num_nodes_allocated());
  std::vector<int64_t> all;
  for (int64_t s = 0; s * segment_span_ < end; ++s) all.push_back(s);
  return CompactSegments(std::move(all));
}

StatusOr<uint64_t> DynamicHeteroGraph::CompactSegments(
    std::vector<int64_t> segments) {
  // Fold-pause telemetry covers the whole pause as ingest experiences it:
  // quiesce handshake + exclusive shard hold + rebuild. The span's attr is
  // the folded segment count, recorded when the selection is final.
  obs::TraceSpan fold_span("compact_segments");
  WallTimer fold_timer;
  struct PauseRecorder {
    obs::Histogram* pause;
    obs::Histogram* seg_count;
    obs::TraceSpan* span;
    WallTimer* timer;
    const std::vector<int64_t>* segments;
    ~PauseRecorder() {
      const int64_t n = static_cast<int64_t>(segments->size());
      span->set_attr(n);
      seg_count->Record(n);
      pause->Record(static_cast<int64_t>(timer->ElapsedMicros()));
    }
  } pause_recorder{fold_pause_us_, fold_segments_, &fold_span, &fold_timer,
                   &segments};
  std::lock_guard<std::mutex> compact_lock(compact_mu_);
  // Quiescence handshake: park attached pipelines at a batch boundary so no
  // delta batch is mid-apply (and none starts) while the fold runs. Events
  // still queued have no epoch yet; they apply onto the new base afterwards.
  // participants_mu_ stays held through the fold so a participant cannot
  // detach (and die) between BeginQuiesce and EndQuiesce.
  std::lock_guard<std::mutex> participants_lock(participants_mu_);
  QuiesceGuard quiesce(participants_);

  // TTL interaction (resolved before the shard locks — decay_mu_ never
  // nests inside them): entries already past their TTL are invisible to
  // every decay-aware reader and pending garbage collection — folding them
  // would permanently resurrect them as (never-windowed) base edges.
  // Entries still inside their window fold at full raw weight: compaction
  // is how a streamed edge graduates into the un-windowed offline
  // aggregate.
  DecaySpec spec;
  const LogicalClock* clock = nullptr;
  {
    std::shared_lock<std::shared_mutex> decay_lock(decay_mu_);
    spec = decay_spec_;
    clock = clock_;
  }
  const bool drop_expired = spec.has_ttl() && clock != nullptr;
  const bool expire_cold =
      options_.cold_node_ttl_seconds > 0 && clock != nullptr;
  const int64_t now = clock != nullptr ? clock->NowSeconds() : 0;

  // Exclusive hold on every lock shard: no reader or (contract-violating)
  // applier can observe the rebuild half-done. The pause is bounded by the
  // *selected* segments' work, which is the whole point.
  std::vector<std::unique_lock<std::shared_mutex>> locks;
  locks.reserve(kNumLockShards);
  for (auto& sh : lock_shards_) locks.emplace_back(sh.mu);

  // Fold through the *watermark*, not max_applied: an out-of-order shard
  // may be parked on an unapplied batch below max_applied, whose entries
  // would land after this fold yet sit at or below a max_applied floor —
  // crash recovery's replay filter would then drop them as "already
  // folded". At the watermark the floor is exact: every batch at or below
  // it is fully applied, so its entries are in the overlays right now (or
  // folded/expired earlier) and the rebuilt rows absorb all of them.
  // Entries above the watermark are carried over and fold later.
  const uint64_t fold_epoch = watermark_epoch();
  auto old_base = this->base();
  const int64_t covered = old_base->num_nodes();
  // Overlay nodes fold renumber-free: the contiguous applied prefix with
  // birth epoch <= fold_epoch may be appended to the base in id order.
  // Records beyond it (allocated but unapplied, or born above the fold
  // epoch — possible with out-of-order cross-shard appliers) stay overlay
  // nodes, and any delta entry touching them is carried over instead of
  // folded, since a base row cannot reference ids no snapshot may surface.
  const int64_t fold_bound = overlay_origin_ + VisibleOverlayNodes(fold_epoch);
  ZCHECK_GE(fold_bound, covered);
  const int64_t span = segment_span_;

  // Normalize the selection: sort, dedup, clamp to the foldable id-space;
  // any frontier selection folds the whole applied prefix so coverage
  // stays contiguous.
  std::sort(segments.begin(), segments.end());
  segments.erase(std::unique(segments.begin(), segments.end()),
                 segments.end());
  int64_t target_end = covered;
  {
    std::vector<int64_t> kept;
    bool wants_frontier = false;
    for (int64_t s : segments) {
      if (s < 0) continue;
      const int64_t lo = s * span;
      if (lo >= std::max(covered, fold_bound)) continue;
      if ((s + 1) * span > covered && fold_bound > covered) {
        wants_frontier = true;
      }
      kept.push_back(s);
    }
    segments = std::move(kept);
    if (wants_frontier) {
      target_end = fold_bound;
      const int64_t first = covered > 0 ? (covered - 1) >> segment_shift_ : 0;
      const int64_t last = (fold_bound - 1) >> segment_shift_;
      for (int64_t s = first; s <= last; ++s) segments.push_back(s);
      std::sort(segments.begin(), segments.end());
      segments.erase(std::unique(segments.begin(), segments.end()),
                     segments.end());
    }
  }
  auto selected = [&segments](int64_t s) {
    return std::binary_search(segments.begin(), segments.end(), s);
  };

  // Index the overlays of foldable rows in the selection (pointers stay
  // valid through the fold phase; the cleanup phase below re-walks the
  // shards).
  std::unordered_map<NodeId, const NodeOverlay*> dirty;
  for (const auto& sh : lock_shards_) {
    for (const auto& [node, ov] : sh.overlays) {
      if (node < target_end && selected(node >> segment_shift_)) {
        dirty.emplace(node, &ov);
      }
    }
  }
  if (dirty.empty() && target_end == covered) {
    // Nothing to fold in this selection: keep the base — and its pointer
    // identity — untouched.
    for (int64_t s : segments) {
      seg_stat(s).folded_epoch.store(fold_epoch, std::memory_order_release);
    }
    compacted_through_epoch_ = fold_epoch;
    return fold_epoch;
  }

  const uint64_t next_gen =
      base_generation_.load(std::memory_order_acquire) + 1;
  // Global type resolver spanning the old base and applied overlay records
  // (a folded row may reference a neighbor in any segment or still in the
  // overlay).
  auto type_of = [&](NodeId id) -> graph::NodeType {
    if (id < covered) return old_base->node_type(id);
    return overlay_record(id).type;
  };

  int64_t cold_expired = 0;
  std::vector<std::pair<int64_t, std::shared_ptr<const graph::CsrSegment>>>
      rebuilt;
  rebuilt.reserve(segments.size());
  for (int64_t s : segments) {
    const NodeId lo = static_cast<NodeId>(s * span);
    const NodeId hi =
        static_cast<NodeId>(std::min<int64_t>((s + 1) * span, target_end));
    if (lo >= hi) continue;
    const graph::CsrSegment* old_seg =
        s < old_base->num_segments() ? &old_base->segment(s) : nullptr;
    graph::CsrSegmentBuilder builder(lo, hi - lo, content_dim_, next_gen,
                                     type_of, fold_epoch);
    for (NodeId r = lo; r < hi; ++r) {
      const bool in_old = old_seg != nullptr && r < covered;
      auto dit = dirty.find(r);
      const NodeOverlay* ov = dit != dirty.end() ? dit->second : nullptr;
      const size_t prefix = ov != nullptr ? VisiblePrefix(*ov, fold_epoch) : 0;
      if (in_old && prefix == 0) {
        // Untouched row: verbatim copy, alias table reused — the common
        // case even inside a dirty segment.
        builder.CopyRow(*old_seg, r - old_seg->first_node());
        continue;
      }
      // Merge the base row (if any) with the foldable delta entries,
      // coalescing by (neighbor, kind). Weights accumulate in double and
      // round to float once, and entries merge in epoch order — the same
      // deterministic arithmetic whether this row folds in one full pass
      // or across a chain of incremental folds of integer-weight events.
      std::vector<NeighborEntry> merged;
      std::vector<double> weight_acc;
      if (in_old) {
        const int64_t lr = r - old_seg->first_node();
        const auto ids = old_seg->row_neighbor_ids(lr);
        const auto weights = old_seg->row_neighbor_weights(lr);
        const auto kinds = old_seg->row_neighbor_kinds(lr);
        merged.reserve(ids.size() + prefix);
        weight_acc.reserve(ids.size() + prefix);
        for (size_t i = 0; i < ids.size(); ++i) {
          merged.push_back({ids[i], 0.0f, kinds[i]});
          weight_acc.push_back(static_cast<double>(weights[i]));
        }
      }
      if (ov != nullptr) {
        std::unordered_map<int64_t, size_t> index;
        index.reserve(merged.size() + prefix);
        for (size_t j = 0; j < merged.size(); ++j) {
          index.emplace(EntryKey(merged[j].neighbor, merged[j].kind), j);
        }
        for (size_t i = 0; i < prefix; ++i) {
          const DeltaEntry& d = ov->entries[i];
          if (drop_expired && spec.Expired(d.e.kind, now - d.timestamp)) {
            continue;  // dropped, not resurrected as a base edge
          }
          if (d.e.neighbor >= fold_bound) continue;  // carried over
          auto [pos, inserted] = index.try_emplace(
              EntryKey(d.e.neighbor, d.e.kind), merged.size());
          if (inserted) {
            merged.push_back({d.e.neighbor, 0.0f, d.e.kind});
            weight_acc.push_back(static_cast<double>(d.e.weight));
          } else {
            weight_acc[pos->second] += static_cast<double>(d.e.weight);
          }
        }
      }
      for (size_t j = 0; j < merged.size(); ++j) {
        merged[j].weight = static_cast<float>(weight_acc[j]);
      }
      if (in_old) {
        const int64_t lr = r - old_seg->first_node();
        builder.AddRow(old_seg->row_type(lr),
                       {old_seg->row_content(lr),
                        static_cast<size_t>(content_dim_)},
                       old_seg->row_slots(lr), std::move(merged));
        continue;
      }
      // Frontier row: the overlay record is the payload source.
      OverlayNodeRecord& rec = overlay_record(r);
      // Node-TTL groundwork: a cold-start node that never accumulated
      // more than cold_node_max_degree half-edges in its lifetime, aged
      // past the node TTL, and with nothing foldable or carried over,
      // folds as an isolated stub and its record payload is reclaimed.
      bool carried = false;
      if (ov != nullptr) {
        for (size_t i = 0; i < ov->entries.size() && !carried; ++i) {
          const DeltaEntry& d = ov->entries[i];
          if (drop_expired && spec.Expired(d.e.kind, now - d.timestamp)) {
            continue;
          }
          carried |= i >= prefix || d.e.neighbor >= fold_bound;
        }
      }
      const bool cold =
          expire_cold && merged.empty() && !carried &&
          rec.lifetime_entries <= options_.cold_node_max_degree &&
          now - rec.timestamp >= options_.cold_node_ttl_seconds;
      if (cold) {
        // Stub row: the base never inherits the payload or any edges, so
        // the reclaimed storage is everything the fold would otherwise
        // carry forward. The record itself stays intact — snapshots pinned
        // to pre-fold bases read it lock-free, so freeing it here would be
        // a use-after-free; full record reclamation needs snapshot pin
        // tracking (future work).
        builder.AddRow(rec.type,
                       {zero_content_.data(), zero_content_.size()},
                       std::span<const int64_t>{}, {});
        ++cold_expired;
        continue;
      }
      builder.AddRow(rec.type,
                     {rec.content.data(), rec.content.size()},
                     {rec.slots.data(), rec.slots.size()}, std::move(merged));
    }
    rebuilt.emplace_back(s, builder.Build());
  }
  auto new_base = old_base->Successor(rebuilt);

  {
    // The generation bump shares the exclusive section with the base swap,
    // so CapturedBase() always hands snapshots a consistent (base,
    // generation) pair — an old-base snapshot can never pair with rebuilt
    // segments' generations and validate hot-cache entries built over
    // them.
    std::unique_lock<std::shared_mutex> base_lock(base_mu_);
    base_ = new_base;
    base_generation_.store(next_gen, std::memory_order_release);
  }

  // Clear the folded overlays; carry over what the fold could not absorb
  // (entries past the fold epoch or touching a not-yet-foldable node),
  // rebuilt against the new base. Overlays of unselected segments are not
  // touched — their base rows are shared with the old SegmentedCsr.
  int64_t removed_total = 0;
  std::unordered_map<int64_t, int64_t> retained_per_seg;
  for (int64_t s : segments) retained_per_seg.emplace(s, 0);
  for (auto& sh : lock_shards_) {
    for (auto it = sh.overlays.begin(); it != sh.overlays.end();) {
      const NodeId node = it->first;
      const int64_t s = node >> segment_shift_;
      if (!selected(s)) {
        ++it;
        continue;
      }
      NodeOverlay& ov = it->second;
      // Same fold decision as above: entries of rows beyond target_end were
      // not folded (prefix 0); expired entries drop everywhere.
      const size_t prefix =
          node < target_end ? VisiblePrefix(ov, fold_epoch) : 0;
      NodeOverlay next;
      for (size_t i = 0; i < ov.entries.size(); ++i) {
        const DeltaEntry& d = ov.entries[i];
        if (drop_expired && spec.Expired(d.e.kind, now - d.timestamp)) {
          continue;
        }
        if (i < prefix && d.e.neighbor < fold_bound) continue;  // folded
        next.entries.push_back(d);  // filtering keeps the epoch order
      }
      removed_total +=
          static_cast<int64_t>(ov.entries.size() - next.entries.size());
      if (next.entries.empty()) {
        node_epoch_slot(node).store(0, std::memory_order_release);
        it = sh.overlays.erase(it);
        continue;
      }
      retained_per_seg[s] += static_cast<int64_t>(next.entries.size());
      double cum = 0.0;
      next.weight_prefix.reserve(next.entries.size());
      for (const DeltaEntry& d : next.entries) {
        cum += static_cast<double>(d.e.weight);
        next.weight_prefix.push_back(cum);
      }
      if (node < new_base->num_nodes()) {
        double total = 0.0;
        for (float w : new_base->neighbor_weights(node)) total += w;
        next.base_total_weight = total;
      }
      node_epoch_slot(node).store(next.entries.back().epoch,
                                  std::memory_order_release);
      it->second = std::move(next);
      ++it;
    }
  }
  total_entries_.fetch_sub(removed_total, std::memory_order_acq_rel);
  expired_cold_nodes_.fetch_add(cold_expired, std::memory_order_acq_rel);
  for (int64_t s : segments) {
    seg_stat(s).entries.store(retained_per_seg[s], std::memory_order_release);
    seg_stat(s).folded_epoch.store(fold_epoch, std::memory_order_release);
  }
  // Per-segment cache invalidation replaces the old whole-cache flush:
  // snapshots pinned to old *folded* segments stop matching entries
  // (segment-generation mismatch), entries over untouched segments keep
  // serving.
  if (auto* cache = hot_cache_.load(std::memory_order_acquire)) {
    for (int64_t s : segments) {
      cache->InvalidateRange(
          static_cast<NodeId>(s * span),
          static_cast<NodeId>(std::min<int64_t>((s + 1) * span, target_end)));
    }
  }
  compacted_through_epoch_ = fold_epoch;
  return fold_epoch;
}

uint64_t DynamicHeteroGraph::SafeTruncateEpoch() const {
  // Every epoch <= the result is fully accounted for: its entries were
  // folded into some segment, physically expired, or — if still pending in
  // an overlay — hold the minimum below. Unapplied issued batches bound it
  // through the watermark.
  uint64_t safe = watermark_epoch();
  for (const auto& sh : lock_shards_) {
    std::shared_lock<std::shared_mutex> lock(sh.mu);
    for (const auto& [node, ov] : sh.overlays) {
      if (ov.entries.empty()) continue;
      const uint64_t oldest = ov.entries.front().epoch;  // epoch-ordered
      if (oldest > 0 && oldest - 1 < safe) safe = oldest - 1;
    }
  }
  return safe;
}

std::vector<SegmentPressure> DynamicHeteroGraph::SegmentPressures() const {
  auto base = this->base();
  const int64_t covered = base->num_nodes();
  const int64_t applied_bound =
      overlay_origin_ + applied_node_prefix_.load(std::memory_order_acquire);
  const int64_t nsegs = num_segments_allocated();
  std::vector<SegmentPressure> out;
  out.reserve(static_cast<size_t>(nsegs));
  for (int64_t s = 0; s < nsegs; ++s) {
    SegmentPressure p;
    p.segment = s;
    p.first_node = static_cast<NodeId>(s * segment_span_);
    const int64_t end = (s + 1) * segment_span_;
    p.covered_rows =
        std::clamp<int64_t>(covered - p.first_node, 0, segment_span_);
    p.pending_nodes = std::clamp<int64_t>(
        std::min(applied_bound, end) - std::max<int64_t>(covered,
                                                         p.first_node),
        0, segment_span_);
    const SegStat& ss = seg_stat(s);
    p.delta_entries = ss.entries.load(std::memory_order_relaxed);
    p.reads = ss.reads.load(std::memory_order_relaxed);
    p.writes = ss.writes.load(std::memory_order_relaxed);
    p.folded_epoch = ss.folded_epoch.load(std::memory_order_relaxed);
    p.generation = base->generation_of(p.first_node);
    out.push_back(p);
  }
  return out;
}

int64_t DynamicHeteroGraph::num_delta_nodes() const {
  int64_t n = 0;
  for (const auto& sh : lock_shards_) {
    std::shared_lock<std::shared_mutex> lock(sh.mu);
    n += static_cast<int64_t>(sh.overlays.size());
  }
  return n;
}

size_t DynamicHeteroGraph::OverlayMemoryBytes() const {
  size_t bytes = 0;
  for (const auto& sh : lock_shards_) {
    std::shared_lock<std::shared_mutex> lock(sh.mu);
    for (const auto& [node, ov] : sh.overlays) {
      bytes += sizeof(node) + sizeof(NodeOverlay) +
               ov.entries.size() * sizeof(DeltaEntry) +
               ov.weight_prefix.size() * sizeof(double);
    }
  }
  return bytes;
}

}  // namespace streaming
}  // namespace zoomer
