// Dynamic read view over the immutable CSR (paper Sec. VI-VII.E, extended to
// the deployment's continuous-ingestion setting): the offline-built
// HeteroGraph stays untouched while streaming edge events accumulate in
// per-node delta overlays. Readers take epoch-stamped snapshots, so the
// serving-path samplers and aggregators observe a consistent graph while the
// ingestion pipeline keeps applying batches.
//
// Storage layout (incremental compaction): the base is not one monolithic
// CSR but a graph::SegmentedCsr — fixed-span contiguous row ranges, each an
// independently rebuildable immutable segment with its own generation.
// CompactSegments(dirty_set) folds the delta overlays of only the selected
// segments into fresh CsrSegments and publishes a successor SegmentedCsr
// that *shares* every untouched segment, so
//   - the fold pause scales with the dirty fraction, not the graph size,
//   - snapshots pinned before the fold keep reading their old segments
//     (zero-copy spans stay valid — persistent-data-structure sharing), and
//   - hot-node cache entries and serving caches of untouched segments stay
//     valid (entries are stamped with per-segment generations).
// Compact() is now simply "fold all segments"; per-segment folds return the
// fold epoch, but log truncation must use SafeTruncateEpoch() — the largest
// epoch no longer needed by any still-pending overlay entry.
//
// Concurrency design:
//  - Nodes with no deltas (the vast majority at any instant) are read
//    entirely lock-free: a per-node atomic epoch of 0 routes the read to the
//    base CSR without touching any overlay structure.
//  - Overlays live in a fixed set of lock shards (shared_mutex each);
//    appliers take one shard exclusively per touched node, readers take it
//    shared only when the node actually has deltas.
//  - Weighted sampling over base+delta uses two-level alias-resampling:
//    first choose base vs. overlay proportional to their total weights, then
//    draw within the base via its O(1) alias table or within the overlay via
//    an inverse-CDF search over the (small) delta prefix-sum array.
//  - Snapshot isolation: overlay entries are epoch-stamped and kept in epoch
//    order; a snapshot at epoch E only surfaces entries with epoch <= E.
//    Snapshots pin to the *watermark* epoch — the largest epoch below every
//    issued-but-unapplied batch — so cross-shard apply skew can no longer
//    surface a lower-epoch batch to a newer snapshot (epoch issuance is
//    reported through GraphDeltaLog::Append's on_issue callback ->
//    NoteEpochIssued; without tracking the watermark equals the max applied
//    epoch).
//  - CompactSegments/Compact fold applied deltas into rebuilt segments and
//    clear the folded overlays. Attached ingest pipelines are quiesced with
//    a handshake (CompactionParticipant) so a mid-ingest fold cannot split
//    or drop queued-but-unapplied deltas; snapshots taken before a fold
//    keep their (pinned) old base but lose delta visibility for folded
//    nodes, so treat snapshots as short read leases.
//  - TTL/decay windows (ConfigureDecay, or a per-view override passed to
//    MakeSnapshot): delta entries carry their event timestamp; with an
//    active DecaySpec a snapshot captures as_of from the injectable
//    LogicalClock and every read excludes entries past their per-kind TTL
//    and weighs the rest by exponential decay. Base-CSR edges — the offline
//    aggregate — are never windowed. maintenance::TtlDecayPolicy installs
//    the spec and garbage-collects expired entries (ExpireDeltas).
//  - Hot-node overlay cache (AttachHotNodeCache): snapshot reads on
//    delta-heavy nodes first consult maintenance::HotNodeOverlayCache for a
//    pre-merged neighbor list + alias table (O(1) draws instead of the
//    two-level resample); entries are invalidated here on ApplyBatch and
//    expiry, and per folded segment range on CompactSegments (untouched
//    segments keep their entries); entries are version-checked on every
//    lookup against the node's overlay version and its *segment's*
//    generation.
//  - Id-space growth (open universe): NodeEvents append brand-new nodes
//    past the base CSR without copying it. Ids are allocated monotonically
//    in birth epoch (GraphDeltaLog::AppendWithNodes calls AllocateNodeIds
//    under the epoch-issuance lock), records live in chunked append-only
//    storage whose slots never relocate (readers keep raw pointers across
//    growth), and a snapshot's num_nodes() is the longest applied prefix of
//    overlay nodes born at or below its pinned epoch — so a node born
//    mid-epoch is absent from older pinned snapshots and present in newer
//    ones, and samplers never surface an id >= the snapshot's num_nodes().
//    Folding the frontier appends the applied overlay-node prefix to the
//    segmented base renumber-free; folded records are retained so snapshots
//    pinned to the old base keep reading them. Per-type capacity limits
//    (DynamicHeteroGraphOptions::max_nodes_per_type) bound growth on the
//    typed allocation path used by the pipeline; exhaustion is a clean
//    OutOfRange before any id is burned.
//  - Node-TTL groundwork (cold_node_ttl_seconds): an overlay-born node that
//    never accumulated more than cold_node_max_degree half-edges over its
//    lifetime, whose visible entries have all aged out by the time its
//    segment folds, folds to an isolated zero-content stub row — the base
//    never inherits its payload or edges. The overlay record itself is
//    retained (lock-free pinned readers may still hold pointers into it);
//    freeing it too needs snapshot pin tracking and stays future work.
#ifndef ZOOMER_STREAMING_DYNAMIC_HETERO_GRAPH_H_
#define ZOOMER_STREAMING_DYNAMIC_HETERO_GRAPH_H_

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "common/status.h"
#include "graph/hetero_graph.h"
#include "graph/segmented_csr.h"
#include "streaming/edge_decay.h"
#include "streaming/graph_delta_log.h"

namespace zoomer {

namespace maintenance {
class HotNodeOverlayCache;
struct HotNodeCacheEntry;
}  // namespace maintenance

namespace obs {
class Histogram;
class MetricsRegistry;
}  // namespace obs

namespace streaming {

/// A delta applier (the ingest pipeline) that Compact()/CompactSegments()
/// can park at a batch boundary. BeginQuiesce blocks until no batch is
/// mid-apply and prevents new applies until EndQuiesce.
class CompactionParticipant {
 public:
  virtual ~CompactionParticipant() = default;
  virtual void BeginQuiesce() = 0;
  virtual void EndQuiesce() = 0;
};

struct DynamicHeteroGraphOptions {
  /// Rows per base-CSR segment (power of two; fixed for the graph's
  /// lifetime, id-space growth extends coverage in the same span). 0 =
  /// auto: the base partitions into ~16 segments, clamped to >= 64 rows.
  int64_t segment_span = 0;
  /// Per-type cap on the total id-space (base + overlay), enforced by the
  /// typed AllocateNodeIds overload the ingest pipeline routes through.
  /// 0 = unbounded.
  std::array<int64_t, graph::kNumNodeTypes> max_nodes_per_type = {0, 0, 0};
  /// Node-TTL groundwork: an overlay-born node older than this (against the
  /// installed LogicalClock) that never accumulated more than
  /// cold_node_max_degree overlay half-edges in its lifetime, and whose
  /// entries have all expired by fold time, folds as an isolated
  /// zero-content stub row — the base stops carrying its payload and
  /// edges forward (the overlay record stays for pinned readers).
  /// 0 disables.
  int64_t cold_node_ttl_seconds = 0;
  int64_t cold_node_max_degree = 0;
  /// Metrics registry for fold telemetry ("maintenance.fold_pause_us",
  /// "maintenance.fold_segments"). Null means the process-global registry.
  obs::MetricsRegistry* registry = nullptr;
};

/// Per-segment overlay pressure, the signal the incremental
/// maintenance::CompactionPolicy selects dirty segments from.
struct SegmentPressure {
  int64_t segment = 0;
  graph::NodeId first_node = 0;
  /// Rows the current base covers in this segment (0 for a pure-frontier
  /// segment whose overlay-born rows have never folded).
  int64_t covered_rows = 0;
  /// Overlay half-edges pending fold for rows of this segment.
  int64_t delta_entries = 0;
  /// Applied overlay-born nodes in this segment's range awaiting their
  /// first fold.
  int64_t pending_nodes = 0;
  /// Cumulative *locked* overlay reads: snapshot reads of this segment's
  /// rows that paid the shard-lock merge. Hot-node-cache hits run at
  /// ~static cost and are deliberately not counted — they exert no fold
  /// pressure.
  int64_t reads = 0;
  /// Cumulative overlay appends to rows of this segment.
  int64_t writes = 0;
  /// Generation of the backing CsrSegment (0 before first fold of a
  /// frontier segment).
  uint64_t generation = 0;
  /// Epoch this segment last folded through (0 = never).
  uint64_t folded_epoch = 0;
};

class DynamicHeteroGraph {
 private:
  struct DeltaEntry;
  struct NodeOverlay;

 public:
  /// Partitions `base` into the segmented serving CSR (row payloads and
  /// neighbor blocks copied verbatim, so reads match the offline CSR
  /// bit-for-bit). The original HeteroGraph is not referenced afterwards.
  explicit DynamicHeteroGraph(const graph::HeteroGraph* base,
                              DynamicHeteroGraphOptions options = {});
  explicit DynamicHeteroGraph(std::shared_ptr<const graph::HeteroGraph> base,
                              DynamicHeteroGraphOptions options = {});
  ~DynamicHeteroGraph();

  // ---- crash recovery (persist::RecoverFrom) ------------------------------

  /// One overlay-born node as a checkpoint captured it. An unapplied record
  /// carries only its birth epoch — its payload travels in the WAL batch
  /// that minted it (guaranteed past the checkpoint epoch, since an
  /// unapplied batch holds the watermark, and with it SafeTruncateEpoch,
  /// below itself).
  struct RestoredNodeRecord {
    graph::NodeId id = -1;
    uint64_t birth_epoch = 0;
    bool applied = false;
    graph::NodeType type = graph::NodeType::kItem;
    int64_t timestamp = 0;
    std::vector<float> content;
    std::vector<int64_t> slots;
  };

  /// Everything a checkpoint must carry to rebuild this graph:
  /// the segmented base (each segment stamped with the epoch it folded
  /// through — the per-segment replay floor), the checkpoint epoch C
  /// (= SafeTruncateEpoch at capture: every overlay entry pending then has
  /// epoch > C, so base + WAL tail (> C) is the complete state), and the
  /// node-mint record — birth epochs of overlay-born ids the base already
  /// covers (so a replayed WAL half-edge can tell "neighbor was foldable at
  /// my segment's fold" from "neighbor was carried"), plus full records of
  /// ids past base coverage.
  struct RecoveryImage {
    std::shared_ptr<const graph::SegmentedCsr> base;
    /// SafeTruncateEpoch at capture; the recovered graph starts with
    /// epoch() == watermark_epoch() == this, and replay resumes above it.
    uint64_t checkpoint_epoch = 0;
    /// base_generation() at capture (>= every segment's generation).
    uint64_t base_generation = 1;
    /// First overlay-born id ever (the *genesis* base size — after folds,
    /// base coverage exceeds it; ids below were offline-born).
    int64_t mint_origin = 0;
    /// Birth epochs of ids [mint_origin, base->num_nodes()), ascending.
    std::vector<uint64_t> folded_birth_epochs;
    /// Records of ids >= base->num_nodes(), contiguous ascending.
    std::vector<RestoredNodeRecord> overlay_records;
  };

  /// Rebuilds a graph from a checkpoint image. The result reads exactly as
  /// a snapshot at the checkpoint epoch did pre-crash; replaying the WAL
  /// tail (NoteEpochIssued + ApplyBatch per batch, in epoch order — the
  /// normal apply path) then reproduces the pre-crash graph bit-for-bit:
  /// replayed half-edges already absorbed by a segment's fold are filtered
  /// against that segment's replay floor, while entries that had been
  /// carried over (neighbor born above the floor) re-enter the overlay.
  static StatusOr<std::unique_ptr<DynamicHeteroGraph>> Recover(
      const RecoveryImage& image, DynamicHeteroGraphOptions options = {});

  /// First overlay-born id ever minted across this graph's whole restart
  /// lineage (== overlay_origin() for a graph built from an offline
  /// HeteroGraph; <= overlay_origin() after recovery, whose base may
  /// already cover folded mints).
  int64_t mint_origin() const { return mint_origin_; }

  /// Birth epoch of a minted id (0 for offline-born ids below
  /// mint_origin()). Defined for every id below num_nodes_allocated();
  /// this is the lookup replay filtering and checkpoint capture share.
  uint64_t MintBirthEpoch(graph::NodeId id) const;

  /// Point-in-time copy of an overlay record for checkpointing, `id` in
  /// [overlay_origin(), num_nodes_allocated()). Safe concurrent with
  /// ingest: an unapplied record yields only its birth epoch (its payload
  /// is still being written and is recoverable from the WAL instead).
  RestoredNodeRecord SnapshotNodeRecord(graph::NodeId id) const;

  const DynamicHeteroGraphOptions& options() const { return options_; }

  /// Epoch of the newest applied batch (0 before any delta).
  uint64_t epoch() const {
    return max_applied_epoch_.load(std::memory_order_acquire);
  }

  /// Watermark epoch: the largest E such that no issued epoch <= E is still
  /// unapplied. Snapshot() pins here, so out-of-order cross-shard applies
  /// never mutate a live snapshot retroactively. Equals epoch() when no
  /// epochs are pending (or when issuance is not being tracked). Lock-free
  /// read — the pending-set bookkeeping republishes it on every change —
  /// so per-request MakeSnapshot() calls do not serialize across shards.
  uint64_t watermark_epoch() const {
    return watermark_epoch_.load(std::memory_order_acquire);
  }

  /// Marks an epoch as issued-but-not-yet-applied. Pass as Append's
  /// on_issue callback — log.Append(shard, events, [&g](uint64_t e) {
  ///   g.NoteEpochIssued(e); }) — for every batch this graph will apply;
  /// the ingest pipeline does this for you. The matching ApplyBatch clears
  /// the pending mark.
  void NoteEpochIssued(uint64_t epoch);

  /// Allocates `count` contiguous node ids born at `epoch`, growing the
  /// id-space past the base CSR; returns the first id. Birth epochs must be
  /// non-decreasing across calls. This legacy overload carries no type
  /// information, so per-type capacity limits cannot be enforced here (the
  /// types are counted when the records apply); production traffic goes
  /// through the typed overload below. The ids become visible to snapshots
  /// only once their NodeEvents apply.
  graph::NodeId AllocateNodeIds(int count, uint64_t epoch);

  /// Typed allocation: one id per event, enforcing
  /// options().max_nodes_per_type before any id is burned (OutOfRange on
  /// exhaustion — the clean rejection point, since a rejected *apply* after
  /// allocation would strand an unapplied record and freeze node visibility
  /// behind it). Pass this as GraphDeltaLog::AppendWithNodes's allocator
  /// (which invokes it under the epoch-issuance lock) rather than calling
  /// it directly, unless single-threaded (tests).
  StatusOr<graph::NodeId> AllocateNodeIds(const std::vector<NodeEvent>& nodes,
                                          uint64_t epoch);

  /// Upper bound of the allocated id-space: base nodes plus every overlay
  /// id handed out so far (some may still be awaiting their NodeEvent's
  /// apply). Edge events are validated against this bound.
  int64_t num_nodes_allocated() const {
    return overlay_origin_ +
           overlay_allocated_.load(std::memory_order_acquire);
  }

  /// Nodes of type `t` in the id-space: base rows plus overlay allocations
  /// (typed allocations count immediately, untyped ones once applied).
  /// The quantity max_nodes_per_type caps.
  int64_t num_nodes_of_type(graph::NodeType t) const {
    return base_type_counts_[static_cast<int>(t)] +
           overlay_type_counts_[static_cast<int>(t)].load(
               std::memory_order_acquire);
  }

  /// True iff edge events may reference `id`: a base id, or an overlay id
  /// whose NodeEvent has applied (monotone — once true, always true). The
  /// ingest pipeline gates Offer() traffic on this instead of the raw
  /// allocation bound, so an id mid-mint (allocated in AppendWithNodes but
  /// not yet applied) is a counted drop rather than a downstream
  /// ApplyBatch failure.
  bool IsNodeIngested(graph::NodeId id) const {
    if (id < 0 || id >= num_nodes_allocated()) return false;
    if (id < overlay_origin_) return true;
    return overlay_record(id).applied.load(std::memory_order_acquire);
  }

  /// First overlay id (the base CSR's num_nodes() at construction); stable
  /// across folds — folded overlay nodes keep their ids.
  int64_t overlay_origin() const { return overlay_origin_; }

  /// Overlay nodes applied and visible at `epoch` (the contiguous applied
  /// prefix with birth epoch <= epoch).
  int64_t VisibleOverlayNodes(uint64_t epoch) const;

  /// Registers/removes an applier for the fold quiescence handshake.
  /// The participant must stay valid until detached (the ingest pipeline
  /// attaches on construction and detaches on Stop()).
  void AttachParticipant(CompactionParticipant* participant);
  void DetachParticipant(CompactionParticipant* participant);

  /// Installs the graph-default TTL/decay window, evaluated against `clock`
  /// at snapshot creation. Snapshots taken afterwards resolve decay-aware
  /// reads; an inactive spec (all zeros) restores raw reads (and may pass a
  /// clock only, enabling per-view windows without a graph default).
  /// Usually called through maintenance::TtlDecayPolicy. An active spec
  /// requires a clock — windows against event time are meaningless without
  /// a time source.
  void ConfigureDecay(const DecaySpec& spec, const LogicalClock* clock);
  DecaySpec decay_spec() const;

  /// Installs only the time source (keeps the current spec). Required
  /// before any *per-view* window (MakeSnapshot(DecaySpec) /
  /// DynamicGraphView's window constructor) when no TtlDecayPolicy has
  /// configured the graph, and before cold-node TTL folds can trigger.
  void SetClock(const LogicalClock* clock);

  /// Attaches the hot-node overlay cache consulted by snapshot reads on
  /// delta-carrying nodes (nullptr detaches). The cache must outlive this
  /// graph or be detached first; maintenance::HotNodeRefreshPolicy attaches
  /// on construction, keeps entries fresh, and detaches on destruction.
  void AttachHotNodeCache(maintenance::HotNodeOverlayCache* cache);

  /// Detaches `cache` iff it is still the attached one (so a policy tearing
  /// down never un-attaches a replacement installed after it). Snapshots
  /// taken while it was attached keep their pin — the cache must outlive
  /// those regardless.
  void DetachHotNodeCache(maintenance::HotNodeOverlayCache* cache);

  /// Monotonic generation of the base, bumped by every fold (full or
  /// incremental). Newly (re)built segments are stamped with the
  /// post-fold value, so segment generations are mutually consistent; use
  /// Snapshot::segment_generation for per-node cache stamping.
  uint64_t base_generation() const {
    return base_generation_.load(std::memory_order_acquire);
  }

  /// (base, generation) captured in one base_mu_ critical section — folds
  /// bump the generation inside the same exclusive section that swaps the
  /// base, so a capture can never pair an old base with a new generation.
  /// Used by snapshots and by the persist layer's CheckpointWriter.
  std::pair<std::shared_ptr<const graph::SegmentedCsr>, uint64_t>
  CapturedBase() const;

  /// The node's overlay version: epoch of its newest delta entry (0 = no
  /// overlay). Used by the hot-node cache consistency protocol. `node` must
  /// be below num_nodes_allocated().
  uint64_t node_epoch(graph::NodeId node) const {
    return node_epoch_slot(node).load(std::memory_order_acquire);
  }

  /// Nodes whose overlay holds at least `min_entries` delta half-edges —
  /// the hot set the refresh policy materializes.
  std::vector<graph::NodeId> DeltaNodes(int64_t min_entries) const;

  /// As above with a per-segment admission floor: a node qualifies when its
  /// overlay holds at least min_entries_for_segment(segment index) entries.
  /// Lets the hot-node refresh policy admit nodes of read-hammered segments
  /// (SegStat reads) at a lower delta threshold than the fleet default.
  std::vector<graph::NodeId> DeltaNodes(
      const std::function<int64_t(int64_t)>& min_entries_for_segment) const;

  /// Physically removes delta entries past their TTL under the installed
  /// DecaySpec at `now_seconds` (no-op without TTLs). Decay-aware readers
  /// already excluded them, so live snapshots observe no change; raw
  /// (spec-less) snapshots lose the expired entries — same short-read-lease
  /// contract as the folds. Returns the nodes that lost entries and
  /// invalidates their hot-node cache entries (expiry is the one overlay
  /// mutation that does not bump the node's overlay version).
  std::vector<graph::NodeId> ExpireDeltas(int64_t now_seconds);

  /// Applies one delta batch: every event becomes two half-edges in the
  /// endpoints' overlays, stamped with the batch epoch. Validates the whole
  /// batch before applying any of it.
  Status ApplyBatch(const DeltaBatch& batch);

  /// Consistent read view pinned to the current base and epoch. When a
  /// DecaySpec is active (graph-default or per-snapshot override), every
  /// accessor below resolves the *windowed* overlay: delta entries past
  /// their TTL at as_of are invisible and the rest carry decayed weights.
  class Snapshot {
   public:
    const graph::SegmentedCsr& base() const { return *base_; }
    uint64_t epoch() const { return epoch_; }
    uint64_t base_generation() const { return base_generation_; }
    /// Generation of the segment backing `node` in this snapshot's pinned
    /// base (0 for overlay nodes beyond base coverage). The stamp the
    /// hot-node cache keys entry validity on — an incremental fold bumps
    /// only the folded segments' generations, so entries of untouched
    /// segments keep serving across it.
    uint64_t segment_generation(graph::NodeId node) const {
      return base_->generation_of(node);
    }
    bool decay_active() const { return decay_active_; }
    /// Clock reading decay was evaluated at (0 when inactive or clockless).
    int64_t as_of_seconds() const { return as_of_; }
    /// The window this snapshot resolves reads under (inactive when none).
    const DecaySpec& decay_window() const { return decay_; }

    /// Stable id-space of this snapshot: base nodes plus the overlay nodes
    /// born at or below the pinned epoch. Every accessor below (and every
    /// id they surface) stays inside [0, num_nodes()).
    int64_t num_nodes() const { return num_nodes_; }

    /// True for ids the pinned base covers; overlay ids above resolve
    /// through the append-only node records instead.
    bool InBase(graph::NodeId node) const {
      return node < base_->num_nodes();
    }

    /// Node lookups spanning base + overlay. Content/slot storage is
    /// append-only and never relocates, so the returned pointers/spans stay
    /// valid for the lifetime of the owning DynamicHeteroGraph (not merely
    /// this snapshot). A cold-node-TTL stub fold does not violate this:
    /// the record payload is retained; only the folded base row is zeroed.
    graph::NodeType node_type(graph::NodeId node) const;
    const float* content(graph::NodeId node) const;
    std::span<const int64_t> slots(graph::NodeId node) const;

    /// True if the node carries any delta visible at this epoch.
    bool HasDelta(graph::NodeId node) const;
    /// Lock-free conservative check: false means the node definitely has no
    /// delta (readers may then use the base CSR arrays directly); true means
    /// it might. Used by GraphView adapters to keep untouched nodes on the
    /// zero-copy path.
    bool MaybeHasDelta(graph::NodeId node) const {
      return owner_->node_epoch_slot(node).load(std::memory_order_acquire) !=
             0;
    }
    /// Half-edge count: base degree + visible delta entries (parallel-edge
    /// semantics, matching how repeated events accumulate weight).
    int64_t Degree(graph::NodeId node) const;
    int64_t DeltaDegree(graph::NodeId node) const;
    double TotalWeight(graph::NodeId node) const;

    /// Merged neighbor list, coalescing delta entries into matching base
    /// edges by (neighbor, kind) and summing weights.
    void Neighbors(graph::NodeId node,
                   std::vector<graph::NeighborEntry>* out) const;

    /// Overlay-aware neighbor iteration for the sampler (epoch-pinned):
    /// the same merge as Neighbors() resolved into parallel arrays — base
    /// CSR range first, then the coalesced delta suffix — matching the
    /// (ids, weights, kinds) layout GraphView::Neighbors hands out.
    void Neighbors(graph::NodeId node, std::vector<graph::NodeId>* ids,
                   std::vector<float>* weights,
                   std::vector<graph::RelationKind>* kinds) const;

    /// Typed sub-view of the merge: base CSR typed range (contiguous by
    /// construction) plus only the visible delta entries whose neighbor is
    /// of type `t` — no full-neighborhood merge. Feeds edge-attention
    /// grouping, which only compares neighbors of one type.
    void NeighborsOfType(graph::NodeId node, graph::NodeType t,
                         std::vector<graph::NodeId>* ids,
                         std::vector<float>* weights,
                         std::vector<graph::RelationKind>* kinds) const;

    /// One weighted draw over base + visible delta. Returns -1 for nodes
    /// with no edges at this epoch.
    graph::NodeId SampleNeighbor(graph::NodeId node, Rng* rng) const;

    /// Batched weighted draws: k draws per node, row-major into `out` (-1
    /// rows for isolated nodes). Bit-identical to k SampleNeighbor calls
    /// per node in order, but the snapshot stays pinned for the whole
    /// batch, each node costs one epoch-slot load + at most one lock-shard
    /// acquisition + one visible-prefix resolution for all its k draws,
    /// the next node's epoch slot is prefetched one node ahead, and hot /
    /// base rows draw through AliasTable::SampleBatch.
    void SampleManyNeighbors(std::span<const graph::NodeId> nodes, int k,
                             Rng* rng, std::vector<graph::NodeId>* out) const;

    /// Up to k distinct weighted draws with bounded retries (4k attempts),
    /// acquiring the node's lock shard once for the whole batch — use this
    /// on the serving path instead of k calls to SampleNeighbor.
    std::vector<graph::NodeId> SampleDistinctNeighbors(graph::NodeId node,
                                                       int k,
                                                       Rng* rng) const;

   private:
    friend class DynamicHeteroGraph;
    Snapshot(const DynamicHeteroGraph* owner,
             std::shared_ptr<const graph::SegmentedCsr> base,
             uint64_t base_generation, uint64_t epoch, DecaySpec decay,
             int64_t as_of);

    /// Decayed weight of a visible entry, or < 0 when expired at as_of_.
    float EntryWeight(const DeltaEntry& entry) const;

    /// Validated hot-cache entry for `node` (nullptr on miss or no cache) —
    /// the single place the consistency-protocol arguments are assembled.
    /// `overlay_version` is the node_epoch the caller already loaded.
    const maintenance::HotNodeCacheEntry* HotEntry(
        graph::NodeId node, uint64_t overlay_version) const;

    /// Invokes fn(entry, decayed_weight) for every entry of the visible
    /// prefix that survives the TTL window. Caller holds the lock shard.
    template <typename Fn>
    void ForEachVisibleDelta(const DeltaEntry* entries, size_t prefix,
                             Fn&& fn) const;

    /// Shared coalescing core behind the Neighbors overloads: folds the
    /// visible (windowed) delta prefix into a merged list of `merged_size`
    /// base entries via callbacks (keep(entry) filters, key_at(i) ->
    /// coalescing key of merged entry i, append(entry, w), add_weight(i,
    /// w)). Linear probing for tiny deltas, hash-indexed once a node runs
    /// hot.
    template <typename Keep, typename KeyAt, typename Append,
              typename AddWeight>
    void CoalesceVisibleDeltas(const NodeOverlay& ov, size_t merged_size,
                               Keep keep, KeyAt key_at, Append append,
                               AddWeight add_weight) const;

    /// Two-level base+delta draw over a resolved overlay whose visible
    /// prefix is non-empty. Caller must hold the node's lock shard
    /// (shared). Returns -1 only when nothing is drawable.
    graph::NodeId SampleOverlayLocked(graph::NodeId node,
                                      const NodeOverlay& ov, size_t prefix,
                                      Rng* rng) const;

    /// kk overlay draws into dst, bit-identical to kk SampleOverlayLocked
    /// calls in order, with the per-draw invariants hoisted: one segment
    /// locate + alias-row resolution, one weight-mass computation, and (on
    /// the windowed path) one visible-prefix scan serve every draw of the
    /// node. Same locking contract as SampleOverlayLocked.
    void SampleOverlayBatchLocked(graph::NodeId node, const NodeOverlay& ov,
                                  size_t prefix, size_t kk, Rng* rng,
                                  graph::NodeId* dst) const;

    const DynamicHeteroGraph* owner_;
    std::shared_ptr<const graph::SegmentedCsr> base_;
    uint64_t epoch_;
    uint64_t base_generation_;
    int64_t num_nodes_;  // pinned id-space (base + visible overlay nodes)
    maintenance::HotNodeOverlayCache* hot_cache_;  // may be null
    /// Reader pin: keeps cache entries this snapshot may be pointing at
    /// from being reclaimed (copies of the snapshot share it).
    std::shared_ptr<void> hot_pin_;
    DecaySpec decay_;
    bool decay_active_;
    int64_t as_of_;
  };

  /// Snapshot under the graph-default decay window (none if unconfigured).
  Snapshot MakeSnapshot() const;
  /// Snapshot under an explicit window — how two views serve a 1-hour and
  /// a 1-day horizon from the same stream. An active window requires an
  /// installed clock (SetClock / ConfigureDecay): without one the window
  /// could never expire or decay anything, so that misconfiguration is a
  /// hard error rather than a silent no-op.
  Snapshot MakeSnapshot(const DecaySpec& window) const;

  /// Folds every applied delta into the segmented base (duplicate (a, b,
  /// kind) edges coalesced by weight, matching the offline builder's
  /// semantics), clears the folded overlays, and returns the epoch folded
  /// through. Implemented as "fold all segments" — see CompactSegments for
  /// the contract (quiescence, TTL interaction, renumber-free frontier
  /// growth, carried-over entries).
  StatusOr<uint64_t> Compact();

  /// Incremental fold: rebuilds only the selected segments (by index; out
  /// of range or duplicate entries are ignored), folding their rows'
  /// applied deltas and swapping one successor base that shares every
  /// untouched segment. Selecting any frontier segment folds the whole
  /// applied overlay-node prefix (coverage stays contiguous). Attached
  /// participants are quiesced exactly as for Compact(); appliers not
  /// registered as participants must not run concurrently. Under an
  /// installed TTL window, entries already expired at fold time are
  /// dropped (never resurrected as base edges); surviving entries fold at
  /// full raw weight. Delta entries touching a not-yet-foldable node
  /// (allocated but unapplied, or born above the fold epoch) are carried
  /// over into the rebuilt overlay rather than dropped. Returns the fold
  /// epoch; for log truncation use SafeTruncateEpoch(), since unselected
  /// segments may still hold entries of older epochs.
  StatusOr<uint64_t> CompactSegments(std::vector<int64_t> segments);

  /// Largest epoch E such that no overlay entry with epoch <= E is still
  /// pending fold anywhere (every such entry has been folded into a
  /// segment or physically expired) and no issued batch at or below E is
  /// unapplied. GraphDeltaLog::Truncate(SafeTruncateEpoch()) is therefore
  /// always safe, even between incremental folds of different segments.
  uint64_t SafeTruncateEpoch() const;

  /// Current segmented base (changes only at folds; snapshots pin their
  /// own).
  std::shared_ptr<const graph::SegmentedCsr> base() const;

  /// Rows per segment and current segment count covering the *allocated*
  /// id-space (>= base coverage once ids grow past it).
  int64_t segment_span() const { return segment_span_; }
  int64_t num_segments_allocated() const {
    const int64_t n = num_nodes_allocated();
    return n == 0 ? 0 : ((n - 1) >> segment_shift_) + 1;
  }
  int64_t segment_of(graph::NodeId node) const {
    return node >> segment_shift_;
  }

  /// Per-segment overlay pressure over the allocated id-space — the
  /// incremental CompactionPolicy's selection signal (delta counts plus
  /// observed read/write rates).
  std::vector<SegmentPressure> SegmentPressures() const;

  /// Overlay-born nodes the cold-node TTL folded as zero-content stub rows
  /// (the base stopped carrying their payload and edges forward).
  int64_t expired_cold_nodes() const {
    return expired_cold_nodes_.load(std::memory_order_acquire);
  }

  int64_t num_delta_entries() const {
    return total_entries_.load(std::memory_order_acquire);
  }
  int64_t num_delta_nodes() const;
  size_t OverlayMemoryBytes() const;

 private:
  /// Recovery constructor; `image` must already be validated (Recover()).
  DynamicHeteroGraph(const RecoveryImage& image,
                     DynamicHeteroGraphOptions options);

  struct DeltaEntry {
    graph::NeighborEntry e;
    uint64_t epoch;
    int64_t timestamp;  // event time (seconds) for TTL/decay windows
  };

  /// One streamed node. `birth_epoch` is written at allocation (under
  /// alloc_mu_, published through overlay_allocated_); the payload fields
  /// are written once at apply and published through `applied` plus the
  /// watermark, after which the record is immutable — readers therefore
  /// hold pointers into content/slots without locks — which is also why a
  /// cold-node-TTL stub fold leaves the payload untouched (freeing it
  /// would race those readers; it waits for snapshot pin tracking).
  struct OverlayNodeRecord {
    uint64_t birth_epoch = 0;
    std::atomic<bool> applied{false};
    /// Type was claimed at (typed) allocation and already counted against
    /// the per-type capacity; apply must not re-count it.
    bool type_claimed = false;
    graph::NodeType type = graph::NodeType::kItem;
    int64_t timestamp = 0;
    /// Lifetime overlay half-edges ever appended to this node (never
    /// decremented by expiry or folds) — the "accumulated traffic" signal
    /// the cold-node TTL checks. Written under the node's lock shard.
    int64_t lifetime_entries = 0;
    std::vector<float> content;
    std::vector<int64_t> slots;
  };

  /// Per-node overlay: epoch-ordered delta entries plus cumulative weights
  /// for inverse-CDF sampling, and the cached base weight mass for the
  /// base-vs-delta coin flip.
  struct NodeOverlay {
    std::vector<DeltaEntry> entries;
    std::vector<double> weight_prefix;  // weight_prefix[i] = sum entries[0..i]
    double base_total_weight = 0.0;
  };

  static constexpr int kNumLockShards = 16;
  struct LockShard {
    mutable std::shared_mutex mu;
    std::unordered_map<graph::NodeId, NodeOverlay> overlays;
  };

  static int ShardFor(graph::NodeId node) {
    // Fold the product's high half down before the modulo: kNumLockShards
    // is a power of two, so the raw low bits alias strided id ranges onto
    // one lock shard (serializing every overlay op on a single mutex).
    uint64_t h = static_cast<uint64_t>(node) * 2654435761ull;
    h ^= h >> 32;
    return static_cast<int>(h % kNumLockShards);
  }

  void AppendHalfEdge(const graph::SegmentedCsr& base, graph::NodeId node,
                      graph::NeighborEntry entry, uint64_t epoch,
                      int64_t timestamp);

  // ---- chunked, append-only per-id storage ---------------------------------
  // Slots never relocate once a chunk exists, so lock-free readers keep raw
  // references across id-space growth; chunks are allocated on demand under
  // alloc_mu_ (node records, indexed by id - overlay_origin_) or grow_mu_
  // (epoch slots and per-segment stats, indexed by id / segment). This is
  // exactly the indexing that used to run off the end of the fixed
  // base-sized arrays — the ASan CI job guards it now.
  static constexpr int kNodeChunkBits = 12;
  static constexpr int64_t kNodeChunkSize = int64_t{1} << kNodeChunkBits;
  static constexpr int64_t kNodeChunkMask = kNodeChunkSize - 1;
  static constexpr size_t kMaxNodeChunks = size_t{1} << 14;  // 64M ids

  struct EpochChunk {
    std::array<std::atomic<uint64_t>, kNodeChunkSize> slots{};
  };
  struct RecordChunk {
    std::array<OverlayNodeRecord, kNodeChunkSize> records{};
  };

  /// Per-segment counters. Reads/writes are relaxed rate signals; entries
  /// is kept exact under the shard locks that mutate overlays.
  struct SegStat {
    std::atomic<int64_t> entries{0};
    std::atomic<int64_t> reads{0};
    std::atomic<int64_t> writes{0};
    std::atomic<uint64_t> folded_epoch{0};
  };
  static constexpr int kSegChunkBits = 8;
  static constexpr int64_t kSegChunkSize = int64_t{1} << kSegChunkBits;
  static constexpr int64_t kSegChunkMask = kSegChunkSize - 1;
  /// Enough chunks for the smallest span (64 rows) over the full 64M-id
  /// space.
  static constexpr size_t kMaxSegChunks = size_t{1} << 12;
  struct SegStatChunk {
    std::array<SegStat, kSegChunkSize> stats{};
  };

  /// Atomic epoch slot for any id below num_nodes_allocated().
  std::atomic<uint64_t>& node_epoch_slot(graph::NodeId id) const {
    EpochChunk* chunk =
        epoch_chunks_[static_cast<size_t>(id >> kNodeChunkBits)].load(
            std::memory_order_acquire);
    return chunk->slots[static_cast<size_t>(id & kNodeChunkMask)];
  }

  /// Record of overlay id `id` (>= overlay_origin_, < num_nodes_allocated).
  OverlayNodeRecord& overlay_record(graph::NodeId id) const {
    const int64_t idx = id - overlay_origin_;
    RecordChunk* chunk =
        record_chunks_[static_cast<size_t>(idx >> kNodeChunkBits)].load(
            std::memory_order_acquire);
    return chunk->records[static_cast<size_t>(idx & kNodeChunkMask)];
  }

  /// Stats of segment `s` (must be covered by EnsureEpochSlots growth).
  SegStat& seg_stat(int64_t s) const {
    SegStatChunk* chunk =
        seg_chunks_[static_cast<size_t>(s >> kSegChunkBits)].load(
            std::memory_order_acquire);
    return chunk->stats[static_cast<size_t>(s & kSegChunkMask)];
  }

  /// Counts an overlay-path read against the node's segment (relaxed; the
  /// adaptive compaction policy differences these between passes).
  void NoteSegmentRead(graph::NodeId node) const {
    seg_stat(segment_of(node)).reads.fetch_add(1, std::memory_order_relaxed);
  }

  /// Allocates epoch-slot and segment-stat chunks covering ids [0, n).
  /// Thread-safe.
  void EnsureEpochSlots(int64_t n);

  /// Verifies (or, for replay onto a fresh graph, allocates) the records of
  /// a batch's node events; called from ApplyBatch's validation pass.
  Status RegisterNodeEvents(const DeltaBatch& batch);

  /// Shared allocation tail of the AllocateNodeIds overloads and
  /// RegisterNodeEvents: grows the record/epoch-slot chunks to cover
  /// `new_end` overlay records, all born at `epoch`, and publishes the new
  /// bound. Caller holds alloc_mu_.
  Status GrowAllocationLocked(int64_t new_end, uint64_t epoch);

  /// Advances the contiguous applied-record prefix. Takes alloc_mu_.
  void AdvanceAppliedNodePrefix();

  /// Visible-prefix length of a node's overlay at `at_epoch` (entries are
  /// epoch-ordered). Caller must hold the node's lock shard.
  static size_t VisiblePrefix(const NodeOverlay& ov, uint64_t at_epoch);

  /// Current segmented base: swapped only at folds, read (copied) once per
  /// snapshot or batch — never per draw. Shared-mode acquisitions do not
  /// serialize readers against each other, and unlike
  /// std::atomic<shared_ptr>'s internal spinlock the protocol is visible to
  /// ThreadSanitizer, which the CI race job relies on.
  mutable std::shared_mutex base_mu_;
  std::shared_ptr<const graph::SegmentedCsr> base_;  // guarded by base_mu_

  /// Shared body of the MakeSnapshot overloads: resolves the effective
  /// window (override, or the graph default when null) and clock in one
  /// decay_mu_ section, then captures (base, generation) and the watermark.
  Snapshot SnapshotUnder(const DecaySpec* override_window) const;

  DynamicHeteroGraphOptions options_;
  int content_dim_ = 0;
  /// Rows per segment (power of two) and its log2; fixed at construction.
  int64_t segment_span_ = 0;
  int segment_shift_ = 0;
  /// Base-CSR node counts per type at construction (immutable; overlay
  /// growth is tracked separately so capacity checks are O(1)).
  std::array<int64_t, graph::kNumNodeTypes> base_type_counts_ = {0, 0, 0};
  /// Overlay allocations per type (typed path counts at allocation under
  /// alloc_mu_; the legacy untyped path counts at apply).
  mutable std::array<std::atomic<int64_t>, graph::kNumNodeTypes>
      overlay_type_counts_ = {};
  /// All-zero content row (content_dim floats): the payload of cold-node
  /// stub rows in rebuilt segments, and the defensive fallback for empty
  /// record payloads.
  std::vector<float> zero_content_;

  /// First overlay id; fixed at construction (base ids are [0, origin)).
  const int64_t overlay_origin_;
  /// First overlay-born id across the restart lineage (== overlay_origin_
  /// unless recovered); see mint_origin().
  const int64_t mint_origin_;
  /// Birth epochs of folded mints [mint_origin_, overlay_origin_), restored
  /// from the checkpoint manifest. Immutable after construction.
  std::vector<uint64_t> folded_birth_epochs_;
  /// Per-segment replay floors of the recovered base (empty for a fresh
  /// graph — the filter is inert). A replayed half-edge (u -> v, epoch e)
  /// with e <= floor(seg(u)) was folded into u's row iff v was foldable at
  /// that fold, i.e. MintBirthEpoch(v) <= floor — otherwise it was carried
  /// over and must re-enter the overlay. Post-recovery traffic always
  /// carries epochs above every floor (floors <= the last pre-crash epoch,
  /// which the restored log's sequence resumes past), so the filter never
  /// touches live ingest. Immutable after construction.
  std::vector<uint64_t> replay_floors_;

  /// True iff the recovery replay filter decided half-edge (node -> nbr,
  /// epoch) is already folded into node's base row.
  bool ReplayFolded(graph::NodeId node, graph::NodeId nbr,
                    uint64_t epoch) const {
    if (replay_floors_.empty()) return false;
    const int64_t s = segment_of(node);
    if (s >= static_cast<int64_t>(replay_floors_.size())) return false;
    const uint64_t floor = replay_floors_[static_cast<size_t>(s)];
    return epoch <= floor && MintBirthEpoch(nbr) <= floor;
  }

  /// Per-id overlay versions (0 = no overlay), covering base + overlay ids.
  std::unique_ptr<std::atomic<EpochChunk*>[]> epoch_chunks_;
  /// Overlay node records, indexed by id - overlay_origin_. Append-only;
  /// retained across folds so old-base snapshots keep resolving folded
  /// ids (bounded by the number of nodes ever streamed).
  std::unique_ptr<std::atomic<RecordChunk*>[]> record_chunks_;
  /// Per-segment pressure counters, indexed by segment number.
  std::unique_ptr<std::atomic<SegStatChunk*>[]> seg_chunks_;
  /// Records with birth_epoch written (publishes the binary-search bound).
  std::atomic<int64_t> overlay_allocated_{0};
  /// Length of the contiguous prefix of applied records; with the monotone
  /// birth epochs this makes snapshot num_nodes() a pure prefix count.
  std::atomic<int64_t> applied_node_prefix_{0};
  /// Serializes allocation, record-chunk growth, and prefix advancement.
  mutable std::mutex alloc_mu_;
  /// Serializes epoch-slot/segment-stat chunk growth (taken inside
  /// alloc_mu_ sections and at construction; never nested the other way).
  std::mutex grow_mu_;

  std::array<LockShard, kNumLockShards> lock_shards_;
  std::atomic<uint64_t> max_applied_epoch_{0};
  std::atomic<int64_t> total_entries_{0};
  std::atomic<uint64_t> base_generation_{0};  // bumped by every fold
  std::atomic<int64_t> expired_cold_nodes_{0};
  uint64_t compacted_through_epoch_ = 0;  // guarded by compact_mu_
  std::mutex compact_mu_;
  /// Fold telemetry (registry-owned; resolved once at construction).
  obs::Histogram* fold_pause_us_ = nullptr;
  obs::Histogram* fold_segments_ = nullptr;

  /// Graph-default TTL/decay window; copied into every snapshot.
  mutable std::shared_mutex decay_mu_;
  DecaySpec decay_spec_;                          // guarded by decay_mu_
  const LogicalClock* clock_ = nullptr;           // guarded by decay_mu_

  std::atomic<maintenance::HotNodeOverlayCache*> hot_cache_{nullptr};

  /// Recomputes and CAS-max-publishes watermark_epoch_ from the pending
  /// set. Caller must hold epoch_mu_.
  void PublishWatermarkLocked();

  /// Issued-but-unapplied epochs; min(pending) - 1 bounds the watermark.
  mutable std::mutex epoch_mu_;
  std::set<uint64_t> pending_epochs_;  // guarded by epoch_mu_
  std::atomic<uint64_t> watermark_epoch_{0};

  mutable std::mutex participants_mu_;
  std::vector<CompactionParticipant*> participants_;  // guarded above
};

}  // namespace streaming
}  // namespace zoomer

#endif  // ZOOMER_STREAMING_DYNAMIC_HETERO_GRAPH_H_
